(* Config-driven scenario runner: reads an xl.cfg-style file (see
   Domconfig), simulates it, and prints a per-domain report plus ASCII
   plots — the "xl create && xl top" of the simulator.

   Usage: dune exec bin/xl_run.exe -- scenarios/v20_v70.cfg *)

let report (built : Domconfig.built) =
  let module Host = Hypervisor.Host in
  let module Domain = Hypervisor.Domain in
  let host = built.Domconfig.host in
  let duration = built.Domconfig.duration in
  let lo = Sim_time.of_us (Sim_time.to_us duration / 10) in
  let table =
    Table.create
      ~columns:
        [
          ("domain", Table.Left);
          ("credit %", Table.Right);
          ("mean load %", Table.Right);
          ("mean absolute %", Table.Right);
          ("cpu time (s)", Table.Right);
          ("pi exec time (s)", Table.Right);
        ]
  in
  List.iter
    (fun (_, domain, app) ->
      let load = Host.series_domain_load host domain in
      let absolute = Host.series_domain_absolute_load host domain in
      let pi_time =
        match app with
        | Domconfig.App_pi pi -> (
            match Workloads.Pi_app.execution_time pi with
            | Some t -> Table.cell_f (Sim_time.to_sec t)
            | None -> "unfinished")
        | Domconfig.App_web _ | Domconfig.App_none -> "-"
      in
      Table.add_row table
        [
          Domain.name domain;
          Table.cell_f1 (Domain.initial_credit domain);
          Table.cell_f (Series.mean_between load lo duration);
          Table.cell_f (Series.mean_between absolute lo duration);
          Table.cell_f (Sim_time.to_sec (Domain.cpu_time domain));
          pi_time;
        ])
    built.Domconfig.domains;
  print_string (Table.render table);
  Printf.printf "\nfinal frequency: %d MHz   energy: %.1f kJ   mean power: %.1f W\n\n"
    (Cpu_model.Processor.current_freq (Host.processor host))
    (Host.energy_joules host /. 1000.0)
    (Host.mean_watts host);
  let plot = Plot.create ~y_min:0.0 ~y_max:100.0 ~title:"domain loads (%)" () in
  List.iter
    (fun (spec, domain, _) ->
      if not spec.Domconfig.dom0 then Plot.add plot (Host.series_domain_load host domain))
    built.Domconfig.domains;
  print_string (Plot.render plot);
  let fplot = Plot.create ~title:"frequency (MHz)" () in
  Plot.add fplot (Host.series_frequency host);
  print_string (Plot.render fplot)

let () =
  match Sys.argv with
  | [| _; path |] -> (
      match Domconfig.parse_file path with
      | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 1
      | Ok config ->
          Format.printf "parsed configuration:@.%a@." Domconfig.pp_spec config;
          let built = Domconfig.build config in
          Hypervisor.Host.run_for built.Domconfig.host built.Domconfig.duration;
          report built)
  | _ ->
      Printf.eprintf "usage: %s <config-file>\n" Sys.argv.(0);
      exit 2

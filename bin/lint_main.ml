(* Driver for the custom lint pass (dune build @lint): scans the given
   roots (default: lib and bin) and exits nonzero if any rule fires. *)

let () =
  let roots =
    match Array.to_list Sys.argv with _ :: [] | [] -> [ "lib"; "bin" ] | _ :: rest -> rest
  in
  List.iter
    (fun root ->
      if not (Sys.file_exists root) then begin
        Format.eprintf "lint: no such file or directory: %s@." root;
        exit 2
      end)
    roots;
  let issues = Lint.lint_paths roots in
  List.iter (fun i -> Format.printf "%a@." Lint.pp_issue i) issues;
  match issues with
  | [] -> ()
  | _ :: _ ->
      Format.eprintf "lint: %d issue(s) found@." (List.length issues);
      exit 1

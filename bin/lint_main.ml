(* Driver for the custom text lint pass (dune build @lint): scans the
   given roots (default: lib, bin, bench and examples) and exits nonzero
   if any rule fires.  The AST passes live in analyze_main.ml. *)

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: [] | [] -> List.filter Sys.file_exists default_roots
    | _ :: rest ->
        Report.check_roots ~tool:"lint" rest;
        rest
  in
  exit (Report.report ~tool:"lint" (Lint.lint_paths roots))

(* Driver for the AST analysis passes (dune build @analyze): parses every
   compilation unit under the given roots with compiler-libs and runs the
   per-file unit-of-measure, domain-safety and float-reduction checks
   plus the whole-program determinism-effect, lock-discipline,
   allocation-effect and ownership/escape passes (see lib/staticcheck).
   Exits nonzero if any rule fires.

   --sarif FILE            write the issues as SARIF 2.1.0 (written even
                           when clean, so CI can always upload it)
   --sarif-baseline FILE   compare against a committed SARIF baseline:
                           only findings absent from the baseline fail
                           the build; matching is by (file, rule,
                           message), line-insensitive
   --timing FILE           write {"analyze_seconds": …} plus per-pass
                           wall times so the bench manifest can gate
                           analyzer wall-time
   --jobs N                N > 1 runs the interprocedural passes on
                           their own domains; output is byte-identical
                           for every N
   --alloc-roots           print the (* alloc: none *) hot-root keys,
                           one per line, and exit — the static half of
                           the zero-alloc consistency contract
   --shard-roots           print the confinement verdict for every
                           mutable root of the host-state units, one
                           "key<TAB>kind<TAB>class" line per root, and
                           exit — the machine-readable report of the
                           ownership/escape pass
   --explain RULE          print what RULE means, how to fix and how to
                           waive it, then exit *)

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let usage () =
  Format.eprintf
    "usage: analyze_main [--sarif FILE] [--sarif-baseline FILE] [--timing FILE] \
     [--jobs N] [--alloc-roots] [--shard-roots] [--explain RULE] [root ...]@.";
  exit 2

let write_timing ~path seconds passes =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"schema\": \"dvfs-analyze-timing/1\",\n";
      Printf.fprintf oc "  \"analyze_seconds\": %.3f" seconds;
      List.iter
        (fun (name, s) -> Printf.fprintf oc ",\n  \"%s_seconds\": %.3f" name s)
        passes;
      Printf.fprintf oc "\n}\n")

let () =
  let sarif = ref None in
  let baseline = ref None in
  let timing = ref None in
  let jobs = ref 1 in
  let alloc_roots = ref false in
  let shard_roots = ref false in
  let roots = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--explain" :: rule :: _ -> exit (Staticcheck.Explain.explain rule)
    | "--sarif" :: path :: rest ->
        sarif := Some path;
        parse_args rest
    | "--sarif-baseline" :: path :: rest ->
        baseline := Some path;
        parse_args rest
    | "--timing" :: path :: rest ->
        timing := Some path;
        parse_args rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse_args rest
        | _ -> usage ())
    | "--alloc-roots" :: rest ->
        alloc_roots := true;
        parse_args rest
    | "--shard-roots" :: rest ->
        shard_roots := true;
        parse_args rest
    | [ ("--sarif" | "--sarif-baseline" | "--timing" | "--jobs" | "--explain") ] ->
        usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage ()
    | root :: rest ->
        roots := root :: !roots;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots =
    match List.rev !roots with
    | [] -> List.filter Sys.file_exists default_roots
    | roots ->
        Report.check_roots ~tool:"analyze" roots;
        roots
  in
  if !alloc_roots then begin
    List.iter print_endline (Staticcheck.alloc_roots_of_paths roots);
    exit 0
  end;
  if !shard_roots then begin
    List.iter print_endline (Staticcheck.shard_roots_of_paths roots);
    exit 0
  end;
  let t0 = Unix.gettimeofday () in
  let issues, passes =
    Staticcheck.analyze_paths_timed ~jobs:!jobs ~clock:Unix.gettimeofday roots
  in
  let seconds = Unix.gettimeofday () -. t0 in
  Option.iter (fun path -> write_timing ~path seconds passes) !timing;
  Option.iter (fun path -> Staticcheck.Sarif.save ~tool:"staticcheck" issues ~path) !sarif;
  match !baseline with
  | None -> exit (Report.report ~tool:"analyze" issues)
  | Some path ->
      let base =
        match Staticcheck.Sarif.load path with
        | base -> base
        | exception (Sys_error msg | Failure msg) ->
            Format.eprintf "analyze: cannot read baseline %s: %s@." path msg;
            exit 2
      in
      let d = Staticcheck.Sarif.diff_baseline ~baseline:base ~current:issues in
      if d.Staticcheck.Sarif.suppressed > 0 || d.Staticcheck.Sarif.stale > 0 then
        Format.eprintf
          "analyze: baseline %s: %d finding(s) suppressed, %d stale entr(y/ies)@."
          path d.Staticcheck.Sarif.suppressed d.Staticcheck.Sarif.stale;
      exit (Report.report ~tool:"analyze" d.Staticcheck.Sarif.fresh)

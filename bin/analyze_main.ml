(* Driver for the AST analysis passes (dune build @analyze): parses every
   compilation unit under the given roots with compiler-libs and runs the
   unit-of-measure and domain-safety checks (see lib/staticcheck).  Exits
   nonzero if any rule fires; --sarif FILE additionally writes the issues
   as a SARIF 2.1.0 document (written even when clean, so CI can always
   upload it). *)

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let usage () =
  Format.eprintf "usage: analyze_main [--sarif FILE] [root ...]@.";
  exit 2

let () =
  let sarif = ref None in
  let roots = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--sarif" :: path :: rest ->
        sarif := Some path;
        parse_args rest
    | [ "--sarif" ] -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage ()
    | root :: rest ->
        roots := root :: !roots;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots =
    match List.rev !roots with
    | [] -> List.filter Sys.file_exists default_roots
    | roots ->
        Report.check_roots ~tool:"analyze" roots;
        roots
  in
  let issues = Staticcheck.analyze_paths roots in
  Option.iter (fun path -> Staticcheck.Sarif.save ~tool:"staticcheck" issues ~path) !sarif;
  exit (Report.report ~tool:"analyze" issues)

(* CLI runner for the paper's experiments: list them, run a selection or
   all, optionally dumping the figure series as CSV. *)

open Cmdliner

let list_cmd =
  let doc = "List every reproduced experiment." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-16s %-12s %s\n" e.Experiments.Experiment.id
          ("[" ^ e.Experiments.Experiment.paper_ref ^ "]")
          e.Experiments.Experiment.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_experiments ids scale outdir =
  let selected =
    match ids with
    | [] -> Experiments.Registry.all
    | ids ->
        List.map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S; try the list command\n" id;
                exit 2)
          ids
  in
  List.iter
    (fun e ->
      let output = e.Experiments.Experiment.run ~scale in
      Experiments.Experiment.print Format.std_formatter output;
      match outdir with
      | Some dir ->
          List.iter
            (fun path -> Printf.printf "wrote %s\n" path)
            (Experiments.Experiment.save_csvs output ~dir)
      | None -> ())
    selected

let run_cmd =
  let doc = "Run experiments (all when none are named)." in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (see list).")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"S"
          ~doc:"Time compression: 1.0 reproduces paper-length runs, 0.1 is a quick pass.")
  in
  let outdir =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "outdir" ] ~docv:"DIR" ~doc:"Also write each figure's series as CSV.")
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run_experiments $ ids $ scale $ outdir)

let () =
  let doc = "Reproduction experiments for 'DVFS Aware CPU Credit Enforcement'" in
  let info = Cmd.info "dvfs-experiments" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd ]))

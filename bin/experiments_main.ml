(* CLI runner for the paper's experiments: list them, run a selection or
   all, optionally dumping the figure series as CSV. *)

open Cmdliner

let list_cmd =
  let doc = "List every reproduced experiment." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-16s %-12s %s\n" e.Experiments.Experiment.id
          ("[" ^ e.Experiments.Experiment.paper_ref ^ "]")
          e.Experiments.Experiment.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_experiments ids scale outdir =
  let selected =
    match ids with
    | [] -> Experiments.Registry.all
    | ids ->
        List.map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S; try the list command\n" id;
                exit 2)
          ids
  in
  List.iter
    (fun e ->
      let output = Experiments.Experiment.run e ~scale in
      Experiments.Experiment.print Format.std_formatter output;
      match outdir with
      | Some dir ->
          List.iter
            (fun path -> Printf.printf "wrote %s\n" path)
            (Experiments.Experiment.save_csvs output ~dir)
      | None -> ())
    selected

let run_cmd =
  let doc = "Run experiments (all when none are named)." in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (see list).")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"S"
          ~doc:"Time compression: 1.0 reproduces paper-length runs, 0.1 is a quick pass.")
  in
  let outdir =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "outdir" ] ~docv:"DIR" ~doc:"Also write each figure's series as CSV.")
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run_experiments $ ids $ scale $ outdir)

(* run-all: the whole registry on a domain pool, with a JSON manifest. *)

let run_all jobs scale manifest analyze_timing quiet =
  let jobs = match jobs with Some j -> j | None -> Runner.default_pool_size () in
  let analyze_seconds =
    Option.map
      (fun path ->
        try Runner.Manifest.read_analyze_timing path
        with Runner.Manifest.Parse_error msg | Sys_error msg ->
          Printf.eprintf "cannot read analyze timing %s: %s\n" path msg;
          exit 2)
      analyze_timing
  in
  let report =
    try Runner.run_all ~pool_size:jobs ~scale ()
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  if not quiet then Runner.print_outputs Format.std_formatter report;
  Runner.pp_summary Format.std_formatter report;
  (match manifest with
  | Some path ->
      Runner.save_manifest ?analyze_seconds report ~path;
      Printf.printf "wrote manifest %s\n" path
  | None -> ());
  match Runner.failures report with
  | [] -> ()
  | failures ->
      List.iter (fun (id, msg) -> Printf.eprintf "FAILED %s: %s\n" id msg) failures;
      exit 1

let run_all_cmd =
  let doc =
    "Run every experiment, sharded across a pool of domains.  Deterministic: outputs are \
     bit-identical for any $(b,--jobs) value (per-experiment seeds are derived from the \
     experiment id, and outputs print in registry order)."
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker pool size (default: \\$DVFS_JOBS, else the recommended domain count).")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"S"
          ~doc:"Time compression: 1.0 reproduces paper-length runs, 0.1 is a quick pass.")
  in
  let manifest =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"PATH"
          ~doc:"Write a JSON results manifest (id, status, seconds, rows per experiment).")
  in
  let analyze_timing =
    Arg.(
      value
      & opt (some string) None
      & info [ "analyze-timing" ] ~docv:"PATH"
          ~doc:
            "Read an analyzer timing side-file (written by analyze_main --timing) and \
             record its analyze_seconds in the manifest, so the perf gate also catches \
             static-analysis wall-time regressions.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Suppress experiment outputs; print only the timing summary.")
  in
  Cmd.v (Cmd.info "run-all" ~doc)
    Term.(const run_all $ jobs $ scale $ manifest $ analyze_timing $ quiet)

let () =
  let doc = "Reproduction experiments for 'DVFS Aware CPU Credit Enforcement'" in
  let info = Cmd.info "dvfs-experiments" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; run_all_cmd ]))

(* Measured-vs-analytic validation sweep: runs the M/M/c grid against the
   closed-form oracles and prints the pass/fail table.  Exit status 1 when
   any point disagrees, so `dune build @validate` fails loudly. *)

open Cmdliner

let run full jobs horizon warmup csv quiet =
  let jobs = match jobs with Some j -> j | None -> Runner.default_pool_size () in
  let points = if full then Validate.Sweep.default_grid else Validate.Sweep.quick_grid in
  let results =
    try Validate.Sweep.run_grid ~jobs ?horizon ?warmup points
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  if not quiet then begin
    print_string (Table.render (Validate.Sweep.table results));
    Printf.printf
      "%d points, %d jobs; starred columns are the analytic targets; a point\n\
       agrees when each metric is within 3x its batch-means 95%% CI + 5%%\n\
       relative + a dispatch-tick floor of the closed form.\n"
      (List.length points) jobs
  end;
  (match csv with
  | Some path ->
      let out = open_out path in
      output_string out (Validate.Sweep.to_csv results);
      close_out out;
      if not quiet then Printf.printf "wrote %s\n" path
  | None -> ());
  match Validate.Sweep.failures results with
  | [] -> ()
  | bad ->
      List.iter
        (fun r -> Printf.eprintf "DISAGREES %s\n" (Validate.Sweep.point_key r.Validate.Sweep.point))
        bad;
      exit 1

let cmd =
  let doc =
    "Validate the simulator against M/M/1 / M/M/c closed forms.  Runs an open-loop \
     Poisson workload through the real host (credit scheduler + pinned DVFS governor) \
     and compares measured utilization, sojourn time, and queue length with the \
     analytic oracle, whose service rate uses the $(b,ratio*cf) effective capacity.  \
     Deterministic: per-point seeds derive from the point parameters, so output is \
     bit-identical for any $(b,--jobs) value."
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Run the full 36-point grid instead of the quick 3-point sweep.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker pool size (default: \\$DVFS_JOBS, else the recommended domain count).")
  in
  let horizon =
    Arg.(
      value
      & opt (some float) None
      & info [ "horizon" ] ~docv:"SECONDS"
          ~doc:"Measured simulated seconds per point (default 300).")
  in
  let warmup =
    Arg.(
      value
      & opt (some float) None
      & info [ "warmup" ] ~docv:"SECONDS"
          ~doc:"Discarded simulated seconds per point before measuring (default 30).")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH" ~doc:"Also write every point's metrics as CSV.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the table; only set the exit status.")
  in
  Cmd.v
    (Cmd.info "validate" ~doc)
    Term.(const run $ full $ jobs $ horizon $ warmup $ csv $ quiet)

let () = exit (Cmd.eval cmd)

(* Ad-hoc scenario runner: pick a scheduler, a governor and a load level,
   simulate the paper's V20/V70 profile and print the phase summary with
   ASCII plots — the quickest way to explore the system interactively. *)

open Cmdliner

let sched_conv =
  Arg.enum
    [
      ("credit", Experiments.Scenario.Credit);
      ("sedf", Experiments.Scenario.Sedf);
      ("credit2", Experiments.Scenario.Credit2);
      ("pas", Experiments.Scenario.Pas_scheduler);
    ]

let gov_conv =
  Arg.enum
    [
      ("performance", Experiments.Scenario.Performance);
      ("ondemand", Experiments.Scenario.Stock_ondemand);
      ("stable-ondemand", Experiments.Scenario.Stable_ondemand);
      ("powersave", Experiments.Scenario.Powersave);
      ("none", Experiments.Scenario.No_governor);
    ]

let load_conv =
  Arg.enum [ ("exact", Experiments.Scenario.Exact); ("thrashing", Experiments.Scenario.Thrashing) ]

let run sched gov load scale csv =
  let module S = Experiments.Scenario in
  let r = S.run (S.spec ~sched ~gov ~load ~scale ()) in
  let table =
    Table.create
      ~columns:
        [
          ("metric", Table.Left);
          ("phase A", Table.Right);
          ("phase B", Table.Right);
          ("phase C", Table.Right);
        ]
  in
  let row name series =
    Table.add_row table
      (name :: List.map (fun p -> Table.cell_f (S.phase_mean r p series)) [ S.A; S.B; S.C ])
  in
  row "V20 global load %" (S.v20_load r);
  row "V70 global load %" (S.v70_load r);
  row "V20 absolute load %" (S.v20_absolute r);
  row "V70 absolute load %" (S.v70_absolute r);
  row "frequency MHz" (S.frequency r);
  print_string (Table.render table);
  Printf.printf "\nV20 SLA deficit: %.2f pts   energy: %.1f kJ   mean power: %.1f W\n\n"
    (S.sla_deficit r (S.v20 r))
    (Hypervisor.Host.energy_joules (S.host r) /. 1000.0)
    (Hypervisor.Host.mean_watts (S.host r));
  let plot = Plot.create ~y_min:0.0 ~y_max:100.0 ~title:"loads (%)" () in
  Plot.add plot (S.v20_load r);
  Plot.add plot (S.v70_load r);
  print_string (Plot.render plot);
  let fplot = Plot.create ~y_min:0.0 ~y_max:2800.0 ~title:"frequency (MHz)" () in
  Plot.add fplot (S.frequency r);
  print_string (Plot.render fplot);
  match csv with
  | Some path ->
      Series.Frame.save_csv (Hypervisor.Host.frame (S.host r)) path;
      Printf.printf "wrote %s\n" path
  | None -> ()

let () =
  let sched =
    Arg.(value & opt sched_conv Experiments.Scenario.Credit & info [ "s"; "scheduler" ] ~docv:"SCHED")
  in
  let gov =
    Arg.(
      value
      & opt gov_conv Experiments.Scenario.Stable_ondemand
      & info [ "g"; "governor" ] ~docv:"GOV")
  in
  let load =
    Arg.(value & opt load_conv Experiments.Scenario.Exact & info [ "l"; "load" ] ~docv:"LOAD")
  in
  let scale = Arg.(value & opt float 0.2 & info [ "scale" ] ~docv:"S") in
  let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"PATH") in
  let doc = "Simulate the paper's V20/V70 scenario with a chosen configuration" in
  let cmd = Cmd.v (Cmd.info "dvfs-simulate" ~doc) Term.(const run $ sched $ gov $ load $ scale $ csv) in
  exit (Cmd.eval cmd)

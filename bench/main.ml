(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks of the hot paths (one Test.make per
   component: event queue, dispatch tick, scheduler picks, governor steps,
   the PAS equations and evaluation).

   Part 2 — regeneration of every table and figure of the paper: each
   registered experiment runs at full scale and prints the same rows/series
   the paper reports (plus the extension ablations).

   Set BENCH_SCALE to trade fidelity for speed (default 1.0 = paper-length
   runs; 0.1 completes in a few seconds per experiment). *)

open Bechamel
open Toolkit

module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler
module Processor = Cpu_model.Processor
module Sim_time = Sim_engine.Sim_time
module Simulator = Sim_engine.Simulator
module Heap = Sim_engine.Heap
module Prng = Sim_engine.Prng

(* ------------------------------------------------------------------ *)
(* Micro-benchmark fixtures *)

let bench_heap =
  Test.make ~name:"engine/heap push+pop x100"
    (Staged.stage (fun () ->
         let h = Heap.create ~cmp:Int.compare in
         for i = 0 to 99 do
           Heap.push h ((i * 7919) mod 101)
         done;
         while not (Heap.is_empty h) do
           ignore (Heap.pop h)
         done))

let bench_simulator =
  Test.make ~name:"engine/simulator 1000 events"
    (Staged.stage (fun () ->
         let sim = Simulator.create () in
         for i = 1 to 1000 do
           ignore (Simulator.at sim (Sim_time.of_us i) (fun () -> ()))
         done;
         Simulator.run sim))

let bench_prng =
  Test.make ~name:"engine/prng poisson x100"
    (let rng = Prng.create ~seed:42 in
     Staged.stage (fun () ->
         for _ = 1 to 100 do
           ignore (Prng.poisson rng ~mean:5.0)
         done))

let contended_domains () =
  [
    Domain.create ~is_dom0:true ~name:"dom0" ~credit_pct:10.0 (Workloads.Workload.busy_loop ());
    Domain.create ~name:"a" ~credit_pct:20.0 (Workloads.Workload.busy_loop ());
    Domain.create ~name:"b" ~credit_pct:70.0 (Workloads.Workload.busy_loop ());
  ]

let bench_pick name make_sched =
  let sched = make_sched (contended_domains ()) in
  let exclude = Scheduler.Mask.create () in
  Test.make ~name
    (Staged.stage (fun () ->
         match
           sched.Scheduler.pick ~now:Sim_time.zero ~remaining:(Sim_time.of_ms 1) ~exclude
         with
         | Some { Scheduler.domain; _ } ->
             sched.Scheduler.charge ~domain ~now:Sim_time.zero ~used:(Sim_time.of_us 10)
         | None -> ()))

let bench_equations =
  let table = Cpu_model.Arch.optiplex_755.Cpu_model.Arch.freq_table in
  let cal = Cpu_model.Arch.optiplex_755.Cpu_model.Arch.calibration in
  Test.make ~name:"pas/compute_new_freq x100"
    (Staged.stage (fun () ->
         for load = 0 to 100 do
           ignore (Pas.Equations.compute_new_freq table cal ~absolute_load:(float_of_int load))
         done))

let bench_governor =
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let gov = Governors.Stable_ondemand.create processor in
  let now = ref Sim_time.zero in
  Test.make ~name:"governors/stable-ondemand observe"
    (Staged.stage (fun () ->
         now := Sim_time.add !now (Sim_time.of_ms 100);
         gov.Governors.Governor.observe ~now:!now ~busy_fraction:0.42))

let bench_web_app =
  let app =
    Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:0.5) ()
  in
  let w = Workloads.Web_app.workload app in
  let now = ref Sim_time.zero in
  Test.make ~name:"workloads/web-app advance+execute 1ms"
    (Staged.stage (fun () ->
         now := Sim_time.add !now (Sim_time.of_ms 1);
         Workloads.Workload.advance w ~now:!now ~dt:(Sim_time.of_ms 1);
         if Workloads.Workload.has_work w then
           ignore
             (Workloads.Workload.execute w ~now:!now ~cpu_time:(Sim_time.of_ms 1) ~speed:1.0)))

let bench_host_second =
  Test.make ~name:"hypervisor/host 1s simulated (credit, 3 domains)"
    (Staged.stage (fun () ->
         let sim = Simulator.create () in
         let processor = Processor.create Cpu_model.Arch.optiplex_755 in
         let scheduler = Sched_credit.create (contended_domains ()) in
         let host = Hypervisor.Host.create ~sim ~processor ~scheduler () in
         Hypervisor.Host.run_for host (Sim_time.of_sec 1)))

let bench_pas_second =
  Test.make ~name:"hypervisor/host 1s simulated (PAS, 3 domains)"
    (Staged.stage (fun () ->
         let sim = Simulator.create () in
         let processor = Processor.create Cpu_model.Arch.optiplex_755 in
         let pas = Pas.Pas_sched.create ~processor (contended_domains ()) in
         let host =
           Hypervisor.Host.create ~sim ~processor ~scheduler:(Pas.Pas_sched.scheduler pas) ()
         in
         Hypervisor.Host.run_for host (Sim_time.of_sec 1)))

let bench_smp_second =
  Test.make ~name:"hypervisor/smp-host 1s simulated (2 cores)"
    (Staged.stage (fun () ->
         let sim = Simulator.create () in
         let smp = Cpu_model.Smp.create ~cores:2 Cpu_model.Arch.optiplex_755 in
         let scheduler = Sched_credit.create ~host_capacity:2 (contended_domains ()) in
         let host = Hypervisor.Smp_host.create ~sim ~smp ~scheduler () in
         Hypervisor.Smp_host.run_for host (Sim_time.of_sec 1)))

let bench_placement =
  let items =
    List.init 64 (fun i ->
        { Cluster.Placement.id = i; memory_mb = 256 + (i * 37 mod 1800); cpu_pct = 5.0 })
  in
  Test.make ~name:"cluster/pack 64 VMs (FFD)"
    (Staged.stage (fun () ->
         ignore
           (Cluster.Placement.pack Cluster.Placement.First_fit_decreasing ~node_count:16
              ~memory_capacity_mb:8192 ~cpu_capacity_pct:90.0 items)))

let bench_domconfig =
  let text =
    "host scheduler=pas governor=none duration=10\n"
    ^ String.concat "\n"
        (List.init 16 (fun i ->
             Printf.sprintf "domain name=vm%d credit=5 workload=web rate=0.02" i))
  in
  Test.make ~name:"domconfig/parse 16-domain config"
    (Staged.stage (fun () -> ignore (Domconfig.parse text)))

let micro_tests =
  [
    bench_heap;
    bench_simulator;
    bench_prng;
    bench_pick "sched/credit pick+charge" (fun d -> Sched_credit.create d);
    bench_pick "sched/sedf pick+charge" (fun d -> Sched_sedf.create d);
    bench_pick "sched/credit2 pick+charge" (fun d -> Sched_credit2.create d);
    bench_equations;
    bench_governor;
    bench_web_app;
    bench_host_second;
    bench_pas_second;
    bench_smp_second;
    bench_placement;
    bench_domconfig;
  ]

let run_micro_benchmarks () =
  print_endline "== Part 1: micro-benchmarks (Bechamel, OLS ns/run) ==";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let grouped = Test.make_grouped ~name:"dvfs" micro_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      Printf.printf "  %-52s %14.1f ns/run   r2=%.3f\n" name estimate r2)
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Paper regeneration — sharded across a domain pool (DVFS_JOBS; default
   Domain.recommended_domain_count).  Outputs are buffered per job and
   printed in registry order, so stdout is identical for any pool size. *)

let run_experiments scale =
  let jobs = Runner.default_pool_size () in
  Printf.printf "== Part 2: paper tables & figures (scale %.2f, %d job(s)) ==\n\n%!" scale jobs;
  let report = Runner.run_all ~pool_size:jobs ~scale () in
  Runner.print_outputs Format.std_formatter report;
  Runner.pp_summary Format.std_formatter report;
  (match Sys.getenv_opt "DVFS_MANIFEST" with
  | Some path when String.trim path <> "" ->
      Runner.save_manifest report ~path;
      Printf.printf "wrote manifest %s\n" path
  | Some _ | None -> ());
  if Runner.failures report <> [] then exit 1

let () =
  let scale =
    match Sys.getenv_opt "BENCH_SCALE" with
    | Some s -> ( match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> 1.0)
    | None -> 1.0
  in
  run_micro_benchmarks ();
  run_experiments scale

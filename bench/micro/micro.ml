(* Per-subsystem microbenchmarks with an allocation meter, plus the
   manifest regression gate.

   [micro run] measures each hot path in a tight loop and reports ns/op and
   words/op (from [Gc.allocated_bytes] deltas).  The dispatch-tick and
   sample-tick paths are engineered to allocate nothing in steady state;
   [--check] turns that property into an exit code so CI can gate on it.

   [micro compare OLD.json NEW.json] diffs two [BENCH_*.json] manifests
   (schema /1 or /2) through {!Runner.Manifest} and exits non-zero when any
   per-experiment or total metric regressed beyond the tolerance.

   Measurements are wall-clock and machine-dependent; only the words/op
   figures (and the compare gate's generous tolerance) are meant to be
   stable across hosts. *)

module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler
module Host = Hypervisor.Host
module Smp_host = Hypervisor.Smp_host
module Processor = Cpu_model.Processor
module Sim_time = Sim_engine.Sim_time
module Simulator = Sim_engine.Simulator
module Series = Sim_engine.Series
module Calendar = Sim_engine.Calendar
module Open_loop = Workloads.Open_loop

type result = { name : string; ops : int; ns_per_op : float; words_per_op : float }

let word_bytes = float_of_int (Sys.word_size / 8)

(* Warm up, optionally reset (drop warm-up samples while keeping grown
   storage), then measure a tight loop.  The timer is read outside the
   allocation window so its boxes are not billed to [f]; the meter's own
   constant overhead (a few words) is amortised over [ops]. *)
let measure ~name ~ops ?(warmup = 0) ?reset f =
  for _ = 1 to warmup do
    f ()
  done;
  (match reset with Some r -> r () | None -> ());
  Gc.minor ();
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to ops do
    f ()
  done;
  let a1 = Gc.allocated_bytes () in
  let t1 = Unix.gettimeofday () in
  {
    name;
    ops;
    ns_per_op = (t1 -. t0) *. 1e9 /. float_of_int ops;
    words_per_op = (a1 -. a0) /. word_bytes /. float_of_int ops;
  }

(* ------------------------------------------------------------------ *)
(* Fixtures *)

(* Uncapped (credit 0) domains stay eligible without the 30 ms accounting
   refill, so a bench driving [dispatch_tick] directly — outside the event
   queue, where on_account_period never fires — keeps dispatching real work
   on every measured tick instead of decaying to idle picks. *)
let busy_domains () =
  [
    Domain.create ~is_dom0:true ~name:"dom0" ~credit_pct:0.0 (Workloads.Workload.busy_loop ());
    Domain.create ~name:"a" ~credit_pct:0.0 (Workloads.Workload.busy_loop ());
    Domain.create ~name:"b" ~credit_pct:0.0 (Workloads.Workload.busy_loop ());
  ]

let contended_domains () =
  [
    Domain.create ~is_dom0:true ~name:"dom0" ~credit_pct:10.0 (Workloads.Workload.busy_loop ());
    Domain.create ~name:"a" ~credit_pct:20.0 (Workloads.Workload.busy_loop ());
    Domain.create ~name:"b" ~credit_pct:70.0 (Workloads.Workload.busy_loop ());
  ]

let bench_queue_push_pop () =
  measure ~name:"queue/push-pop-1k" ~ops:300 ~warmup:20 (fun () ->
      let sim = Simulator.create () in
      for i = 0 to 999 do
        ignore (Simulator.at sim (Sim_time.of_us ((i * 7919) mod 65536)) (fun () -> ()))
      done;
      Simulator.run sim)

let bench_queue_cancel_compact () =
  let handles = Array.make 1000 None in
  measure ~name:"queue/cancel-compact-1k" ~ops:300 ~warmup:20 (fun () ->
      let sim = Simulator.create () in
      for i = 0 to 999 do
        handles.(i) <-
          Some (Simulator.at sim (Sim_time.of_us ((i * 7919) mod 65536)) (fun () -> ()))
      done;
      (* Cancel 70% — enough to trip the cancelled>live compaction. *)
      for i = 0 to 999 do
        if i mod 10 < 7 then
          match handles.(i) with Some h -> Simulator.cancel sim h | None -> ()
      done;
      Simulator.run sim)

let bench_every_steady () =
  let sim = Simulator.create () in
  ignore (Simulator.every sim (Sim_time.of_ms 1) (fun () -> ()));
  measure ~name:"sim/every-steady" ~ops:200_000 ~warmup:1_000 (fun () ->
      ignore (Simulator.step sim))

let make_host domains =
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let scheduler = Sched_credit.create domains in
  Host.create ~sim ~processor ~scheduler ()

let bench_dispatch_tick () =
  let host = make_host (busy_domains ()) in
  measure ~name:"host/dispatch-tick" ~ops:100_000 ~warmup:1_000 (fun () ->
      Host.Internal.dispatch_tick host ())

(* Capped domains with the 30 ms accounting refill folded in — the cadence
   a simulated host actually runs.  Informational (the refill path builds
   quotas from floats), not part of the zero-alloc gate. *)
let bench_dispatch_tick_capped () =
  let host = make_host (contended_domains ()) in
  let scheduler = Host.scheduler host in
  let ticks = ref 0 in
  measure ~name:"host/dispatch-tick-capped" ~ops:100_000 ~warmup:1_000 (fun () ->
      incr ticks;
      if !ticks mod 30 = 0 then
        scheduler.Scheduler.on_account_period ~now:(Host.now host);
      Host.Internal.dispatch_tick host ())

let bench_sample_tick () =
  let host = make_host (busy_domains ()) in
  let ops = 100_000 in
  (* The warm-up grows every series vector to [ops] capacity; the reset
     empties them without shrinking, so the measured loop appends into
     existing storage and the steady-state sampling path shows through. *)
  measure ~name:"host/sample-tick" ~ops ~warmup:ops
    ~reset:(fun () -> Host.Internal.reset_series host)
    (fun () -> Host.Internal.sample host ())

let bench_smp_dispatch_tick () =
  let sim = Simulator.create () in
  let smp = Cpu_model.Smp.create ~cores:2 Cpu_model.Arch.optiplex_755 in
  let scheduler = Sched_credit.create ~host_capacity:2 (busy_domains ()) in
  let host = Smp_host.create ~sim ~smp ~scheduler () in
  measure ~name:"smp/dispatch-tick" ~ops:100_000 ~warmup:1_000 (fun () ->
      Smp_host.Internal.dispatch_tick host ())

let bench_smp_sample_tick () =
  let sim = Simulator.create () in
  let smp = Cpu_model.Smp.create ~cores:2 Cpu_model.Arch.optiplex_755 in
  let scheduler = Sched_credit.create ~host_capacity:2 (busy_domains ()) in
  let host = Smp_host.create ~sim ~smp ~scheduler () in
  let ops = 100_000 in
  measure ~name:"smp/sample-tick" ~ops ~warmup:ops
    ~reset:(fun () -> Smp_host.Internal.reset_series host)
    (fun () -> Smp_host.Internal.sample host ())

(* Steady-state wheel traffic: every op pushes at a cursor that advances 16
   key units and pops the minimum, so occupancy, bucket spread, and heap
   capacities are all constant after warm-up — any words/op left is a real
   per-op allocation in the push/pop paths. *)
let bench_calendar name () =
  let cal = Calendar.create ~key:(fun x -> x) ~cmp:Int.compare in
  let cursor = ref 0 in
  for _ = 1 to 1024 do
    Calendar.push cal (!cursor * 16);
    incr cursor
  done;
  (* The warm-up must lap the whole wheel (256 buckets x 64 ops per bucket)
     so every slot's heap reaches its steady capacity before measuring. *)
  measure ~name ~ops:100_000 ~warmup:40_000 (fun () ->
      Calendar.push cal (!cursor * 16);
      incr cursor;
      ignore (Calendar.pop_exn cal))

let bench_series_add_cell () =
  let s = Series.create ~name:"bench" in
  let cell = Series.cell () in
  let i = ref 0 in
  let ops = 100_000 in
  measure ~name:"series/add-cell" ~ops ~warmup:ops
    ~reset:(fun () ->
      Series.reset s;
      i := 0)
    (fun () ->
      cell.Series.value <- float_of_int !i;
      Series.add_cell s (Sim_time.of_us !i) cell;
      incr i)

(* Drain mode: a primed backlog is served with [now] frozen, so the
   measured loop never enters arrival injection — the one stage allowed to
   allocate (it draws from the boxed-state Prng) — and words/op isolates
   the pool/ring service path. *)
let bench_openloop_step () =
  let station =
    Open_loop.create ~seed:7 ~servers:2 ~rate:100.0 ~service_mean:100.0 ()
  in
  let now = Sim_time.of_sec 100 in
  let dt = Sim_time.of_ms 1 in
  (* One long prime injects ~10k requests of 100 absolute seconds each —
     backlog for far more service than the measured loop performs. *)
  Open_loop.step station ~now ~dt:(Sim_time.of_us 1) ~speed:1.0;
  measure ~name:"openloop/step" ~ops:100_000 ~warmup:1_000
    ~reset:(fun () -> Open_loop.reset_stats station)
    (fun () -> Open_loop.step station ~now ~dt ~speed:1.0)

let bench_credit_pick () =
  let scheduler = Sched_credit.create (busy_domains ()) in
  let exclude = Scheduler.Mask.create () in
  let now = Sim_time.zero and remaining = Sim_time.of_ms 1 in
  measure ~name:"credit/pick" ~ops:100_000 ~warmup:1_000 (fun () ->
      ignore (scheduler.Scheduler.pick ~now ~remaining ~exclude))

let bench_credit_charge () =
  let domains = contended_domains () in
  let scheduler = Sched_credit.create ~host_capacity:4 domains in
  let domain = List.nth domains 1 in
  let now = Sim_time.zero and used = Sim_time.of_us 10 in
  measure ~name:"credit/charge" ~ops:100_000 ~warmup:1_000 (fun () ->
      scheduler.Scheduler.charge ~domain ~now ~used)

let bench_frame_csv () =
  let frame = Series.Frame.create () in
  for j = 0 to 3 do
    let s = Series.create ~name:(Printf.sprintf "s%d" j) in
    for i = 0 to 511 do
      Series.add s (Sim_time.of_us ((i * 1000) + (j * 250))) (float_of_int ((i * 13) + j))
    done;
    Series.Frame.add_series frame s
  done;
  measure ~name:"series/frame-csv-4x512" ~ops:300 ~warmup:20 (fun () ->
      ignore (Series.Frame.to_csv frame))

let all_benches =
  [
    bench_queue_push_pop;
    bench_queue_cancel_compact;
    bench_every_steady;
    bench_dispatch_tick;
    bench_dispatch_tick_capped;
    bench_sample_tick;
    bench_smp_dispatch_tick;
    bench_smp_sample_tick;
    bench_calendar "calendar/push";
    bench_calendar "calendar/pop";
    bench_series_add_cell;
    bench_openloop_step;
    bench_credit_pick;
    bench_credit_charge;
    bench_frame_csv;
  ]

(* Paths whose steady state must not allocate, each tied to the statically
   annotated hot root it exercises (the key [analyze_main --alloc-roots]
   prints).  The consistency test diffs the two sides: a root without a
   measuring bench and a bench without a proving root both fail, so the
   static prover and this dynamic meter can never drift apart.  words/op
   below the epsilon is measurement noise (the meter's own constant boxes
   amortised over the op count), not a per-op allocation. *)
let zero_alloc_roots =
  [
    ("host/dispatch-tick", "Host.dispatch_tick");
    ("host/sample-tick", "Host.sample");
    ("smp/dispatch-tick", "Smp_host.dispatch_tick");
    ("smp/sample-tick", "Smp_host.sample");
    ("calendar/push", "Calendar.push");
    ("calendar/pop", "Calendar.pop_exn");
    ("series/add-cell", "Series.add_cell");
    ("openloop/step", "Open_loop.step");
    ("credit/pick", "Sched_credit.pick");
    ("credit/charge", "Sched_credit.charge");
  ]

let zero_alloc_names = List.map fst zero_alloc_roots
let zero_alloc_epsilon = 0.01

let results_json results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"dvfs-microbench/1\",\n  \"results\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf buf
        "    {\"name\": \"%s\", \"ops\": %d, \"ns_per_op\": %.1f, \"words_per_op\": %.4f}%s\n"
        r.name r.ops r.ns_per_op r.words_per_op
        (if i = List.length results - 1 then "" else ","))
    results;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let run_benches ~out ~check =
  if Analysis.Config.enabled () then
    print_endline
      "note: the invariant sanitizer is enabled (DVFS_SANITIZE); words/op includes its checks";
  let results = List.map (fun b -> b ()) all_benches in
  Printf.printf "%-28s %12s %12s\n" "benchmark" "ns/op" "words/op";
  List.iter
    (fun r -> Printf.printf "%-28s %12.1f %12.4f\n" r.name r.ns_per_op r.words_per_op)
    results;
  (match out with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (results_json results));
      Printf.printf "wrote %s\n" path
  | None -> ());
  if check then begin
    let offenders =
      List.filter
        (fun r -> List.mem r.name zero_alloc_names && r.words_per_op > zero_alloc_epsilon)
        results
    in
    if offenders <> [] then begin
      List.iter
        (fun r ->
          Printf.eprintf "FAIL %s allocates %.4f words/op (limit %.4f)\n" r.name
            r.words_per_op zero_alloc_epsilon)
        offenders;
      exit 1
    end;
    Printf.printf "zero-alloc check passed (%s)\n" (String.concat ", " zero_alloc_names)
  end

(* ------------------------------------------------------------------ *)
(* Manifest regression gate *)

let compare_manifests ~baseline_path ~current_path ~tolerance =
  let module M = Runner.Manifest in
  let load path =
    try M.load path with
    | M.Parse_error msg ->
        Printf.eprintf "error: %s: %s\n" path msg;
        exit 2
    | Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
  in
  let baseline = load baseline_path and current = load current_path in
  Printf.printf "baseline %s (%s): total %.3fs, %.1f MB alloc\n" baseline_path
    baseline.M.schema baseline.M.total_seconds (M.total_alloc_mb baseline);
  Printf.printf "current  %s (%s): total %.3fs, %.1f MB alloc\n" current_path
    current.M.schema current.M.total_seconds (M.total_alloc_mb current);
  match M.diff ~tolerance ~baseline ~current () with
  | [] -> Printf.printf "no regression beyond %.2fx tolerance\n" tolerance
  | regressions ->
      List.iter
        (fun r -> Format.printf "REGRESSION %a@." M.pp_regression r)
        regressions;
      Printf.eprintf "%d metric(s) regressed beyond %.2fx tolerance\n"
        (List.length regressions) tolerance;
      exit 1

(* ------------------------------------------------------------------ *)
(* CLI *)

let usage () =
  prerr_endline
    "usage: micro run [--out FILE] [--check]\n\
    \       micro roots\n\
    \       micro compare BASELINE.json CURRENT.json [--tolerance T]";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | [ _; "roots" ] ->
      (* The dynamic half of the zero-alloc consistency contract: the hot
         root keys this binary's --check gate measures, in the same
         one-per-line form analyze_main --alloc-roots prints. *)
      List.iter print_endline
        (List.sort_uniq String.compare (List.map snd zero_alloc_roots))
  | _ :: "run" :: rest ->
      let rec parse out check = function
        | [] -> run_benches ~out ~check
        | "--out" :: path :: rest -> parse (Some path) check rest
        | "--check" :: rest -> parse out true rest
        | _ -> usage ()
      in
      parse None false rest
  | _ :: "compare" :: baseline_path :: current_path :: rest ->
      let tolerance =
        match rest with
        | [] -> 1.5
        | [ "--tolerance"; t ] -> (
            match float_of_string_opt t with
            | Some f when f >= 1.0 -> f
            | Some _ | None ->
                prerr_endline "error: --tolerance must be a number >= 1.0";
                exit 2)
        | _ -> usage ()
      in
      compare_manifests ~baseline_path ~current_path ~tolerance
  | _ -> usage ()

module Processor = Cpu_model.Processor
module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler

let inv_conservation =
  Analysis.Invariant.register "pas.credit-conservation" ~equation:"Eq. 4"
    ~doc:
      "after an evaluation, the sum of capped effective credits is exactly the sum of \
       initial credits scaled by 1/(ratio*cf)"

let inv_freq_member =
  Analysis.Invariant.register "pas.freq-in-table" ~equation:"Listing 1.1"
    ~doc:"the processor frequency is always a level of its P-state table"

let inv_busy_fraction =
  Analysis.Invariant.register "pas.busy-fraction"
    ~doc:"utilization samples fed to the evaluation window fall in [0, 1]"

let inv_credit_bounds =
  Analysis.Invariant.register "pas.effective-credit-bounds" ~equation:"Eq. 4"
    ~doc:"every effective credit is finite and non-negative"

type t = {
  processor : Processor.t;
  credit : Scheduler.t; (* the underlying Credit scheduler *)
  domains : Domain.t list;
  window : float array; (* ring of the last 3 utilization samples *)
  mutable filled : int;
  mutable next : int;
  mutable evaluations : int;
  mutable frequency_decisions : int;
  mutable last_absolute_load : float;
  mutable scheduler : Scheduler.t option;
}

let global_load t =
  let n = max 1 t.filled in
  let sum = ref 0.0 in
  for i = 0 to t.filled - 1 do
    sum := !sum +. t.window.(i)
  done;
  !sum /. float_of_int n *. 100.0

(* Post-conditions of an evaluation, checkable at any quiescent point: the
   chosen frequency is a table level, and Listing 1.2 preserved absolute
   capacity — Σ effective = Σ initial / (ratio·cf) over the capped domains
   (Eq. 4 summed).  Public so tests can drive it against corrupted state. *)
let check_invariants t ~now =
  if Analysis.Config.enabled () then begin
    let time_s = Sim_time.to_sec now in
    let table = Processor.freq_table t.processor in
    let freq = Processor.current_freq t.processor in
    Analysis.Check.run inv_freq_member ~time_s ~component:"pas"
      ~detail:(fun () -> Printf.sprintf "current frequency %d MHz is not a table level" freq)
      (Cpu_model.Frequency.mem table freq);
    if Cpu_model.Frequency.mem table freq then begin
      let ratio = Processor.ratio t.processor and cf = Processor.cf t.processor in
      let sum_initial = ref 0.0 and sum_effective = ref 0.0 in
      List.iter
        (fun d ->
          let initial = Domain.initial_credit d in
          if initial > 0.0 then begin
            let eff = t.credit.Scheduler.effective_credit d in
            Analysis.Check.run inv_credit_bounds ~time_s ~component:"pas"
              ~detail:(fun () ->
                Printf.sprintf "domain %s effective credit %.9g" (Domain.name d) eff)
              (Float.is_finite eff && eff >= 0.0);
            sum_initial := !sum_initial +. initial;
            sum_effective := !sum_effective +. eff
          end)
        t.domains;
      let expected = !sum_initial /. (ratio *. cf) in
      Analysis.Check.run inv_conservation ~time_s ~component:"pas"
        ~detail:(fun () ->
          Printf.sprintf
            "sum of effective credits %.9g, expected %.9g (= %.9g / (%.6g * %.6g))"
            !sum_effective expected !sum_initial ratio cf)
        (Float.abs (!sum_effective -. expected) <= 1e-9 *. Float.max 1.0 expected)
    end
  end

(* One PAS evaluation: Listing 1.1 then Listing 1.2. *)
let evaluate t ~now ~busy_fraction =
  if Analysis.Config.enabled () then
    Analysis.Check.within inv_busy_fraction ~time_s:(Sim_time.to_sec now) ~component:"pas"
      ~what:"busy_fraction" ~lo:0.0 ~hi:1.0 busy_fraction;
  t.window.(t.next) <- busy_fraction;
  t.next <- (t.next + 1) mod Array.length t.window;
  if t.filled < Array.length t.window then t.filled <- t.filled + 1;
  t.evaluations <- t.evaluations + 1;
  let table = Processor.freq_table t.processor in
  let calibration = (Processor.arch t.processor).Cpu_model.Arch.calibration in
  let absolute_load =
    Equations.absolute_load ~global_load:(global_load t) ~ratio:(Processor.ratio t.processor)
      ~cf:(Processor.cf t.processor)
  in
  t.last_absolute_load <- absolute_load;
  let new_freq = Equations.compute_new_freq table calibration ~absolute_load in
  let ratio = Cpu_model.Frequency.ratio table new_freq in
  let cf = Cpu_model.Calibration.cf calibration table new_freq in
  List.iter
    (fun d ->
      let initial = Domain.initial_credit d in
      if initial > 0.0 then
        t.credit.Scheduler.set_effective_credit d
          (Equations.compensated_credit ~initial ~ratio ~cf))
    t.domains;
  if new_freq <> Processor.current_freq t.processor then
    t.frequency_decisions <- t.frequency_decisions + 1;
  Processor.set_freq t.processor ~now new_freq;
  check_invariants t ~now

let create ?(window = Sim_time.of_ms 100) ?(account_period = Sim_time.of_ms 30) ~processor
    domains =
  let credit = Sched_credit.create ~account_period domains in
  let t =
    {
      processor;
      credit;
      domains;
      window = Array.make 3 0.0;
      filled = 0;
      next = 0;
      evaluations = 0;
      frequency_decisions = 0;
      last_absolute_load = 0.0;
      scheduler = None;
    }
  in
  let sched =
    Scheduler.make ~name:"pas" ~domains:credit.Scheduler.domains ~pick:credit.Scheduler.pick
      ~charge:credit.Scheduler.charge ~on_account_period:credit.Scheduler.on_account_period
      ~set_effective_credit:credit.Scheduler.set_effective_credit
      ~effective_credit:credit.Scheduler.effective_credit
      ~observe_window:(fun ~now ~busy_fraction -> evaluate t ~now ~busy_fraction)
      ~window_period:window ()
  in
  t.scheduler <- Some sched;
  t

(* unreachable: [create] installs the scheduler before returning. *)
let scheduler t = match t.scheduler with Some s -> s | None -> assert false
let evaluations t = t.evaluations
let frequency_decisions t = t.frequency_decisions
let last_absolute_load t = t.last_absolute_load
let effective_credit t d = t.credit.Scheduler.effective_credit d

module Processor = Cpu_model.Processor
module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler

type t = {
  processor : Processor.t;
  credit : Scheduler.t; (* the underlying Credit scheduler *)
  domains : Domain.t list;
  window : float array; (* ring of the last 3 utilization samples *)
  mutable filled : int;
  mutable next : int;
  mutable evaluations : int;
  mutable frequency_decisions : int;
  mutable last_absolute_load : float;
  mutable scheduler : Scheduler.t option;
}

let global_load t =
  let n = max 1 t.filled in
  let sum = ref 0.0 in
  for i = 0 to t.filled - 1 do
    sum := !sum +. t.window.(i)
  done;
  !sum /. float_of_int n *. 100.0

(* One PAS evaluation: Listing 1.1 then Listing 1.2. *)
let evaluate t ~now ~busy_fraction =
  t.window.(t.next) <- busy_fraction;
  t.next <- (t.next + 1) mod Array.length t.window;
  if t.filled < Array.length t.window then t.filled <- t.filled + 1;
  t.evaluations <- t.evaluations + 1;
  let table = Processor.freq_table t.processor in
  let calibration = (Processor.arch t.processor).Cpu_model.Arch.calibration in
  let absolute_load =
    Equations.absolute_load ~global_load:(global_load t) ~ratio:(Processor.ratio t.processor)
      ~cf:(Processor.cf t.processor)
  in
  t.last_absolute_load <- absolute_load;
  let new_freq = Equations.compute_new_freq table calibration ~absolute_load in
  let ratio = Cpu_model.Frequency.ratio table new_freq in
  let cf = Cpu_model.Calibration.cf calibration table new_freq in
  List.iter
    (fun d ->
      let initial = Domain.initial_credit d in
      if initial > 0.0 then
        t.credit.Scheduler.set_effective_credit d
          (Equations.compensated_credit ~initial ~ratio ~cf))
    t.domains;
  if new_freq <> Processor.current_freq t.processor then
    t.frequency_decisions <- t.frequency_decisions + 1;
  Processor.set_freq t.processor ~now new_freq

let create ?(window = Sim_time.of_ms 100) ?(account_period = Sim_time.of_ms 30) ~processor
    domains =
  let credit = Sched_credit.create ~account_period domains in
  let t =
    {
      processor;
      credit;
      domains;
      window = Array.make 3 0.0;
      filled = 0;
      next = 0;
      evaluations = 0;
      frequency_decisions = 0;
      last_absolute_load = 0.0;
      scheduler = None;
    }
  in
  let sched =
    Scheduler.make ~name:"pas" ~domains:credit.Scheduler.domains ~pick:credit.Scheduler.pick
      ~charge:credit.Scheduler.charge ~on_account_period:credit.Scheduler.on_account_period
      ~set_effective_credit:credit.Scheduler.set_effective_credit
      ~effective_credit:credit.Scheduler.effective_credit
      ~observe_window:(fun ~now ~busy_fraction -> evaluate t ~now ~busy_fraction)
      ~window_period:window ()
  in
  t.scheduler <- Some sched;
  t

let scheduler t = match t.scheduler with Some s -> s | None -> assert false
let evaluations t = t.evaluations
let frequency_decisions t = t.frequency_decisions
let last_absolute_load t = t.last_absolute_load
let effective_credit t d = t.credit.Scheduler.effective_credit d

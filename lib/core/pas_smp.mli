(** PAS on a multi-core host — the §7 perspective ("per-socket DVFS,
    per-core DVFS") realised.

    The policy generalises the single-core PAS evaluation to a frequency
    domain: the domain's absolute load is the frequency-weighted work rate
    of its cores relative to their maximum capacity (averaged over the last
    three windows), Listing 1.1 picks the domain frequency, and Listing 1.2
    rescales every VM credit by [1 / (ratio * cf)] of the {e package}
    frequency.  With per-core DVFS each domain is evaluated independently,
    but credits — which are a host-wide quantity — follow the slowest
    domain so that no VM's guarantee is under-compensated. *)

type t

val create :
  ?window:Sim_time.t ->
  smp:Cpu_model.Smp.t ->
  scheduler:Hypervisor.Scheduler.t ->
  Hypervisor.Domain.t list ->
  t
(** [window] defaults to 100 ms.  [scheduler] must be the scheduler
    installed on the host (its [set_effective_credit] is used). *)

val policy : t -> Hypervisor.Smp_host.dvfs_policy
(** Pass as [?dvfs] to {!Hypervisor.Smp_host.create}. *)

val evaluations : t -> int
val last_absolute_load : t -> float
(** Percent of the host's maximum capacity, from the latest evaluation. *)

val check_invariants : t -> now:Sim_time.t -> unit
(** Evaluates the SMP sanitizer invariants: every frequency domain runs at
    a table level and host-wide credit conservation holds for the slowest
    domain's [ratio * cf] (Eq. 4).  A no-op unless the sanitizer is
    enabled; called automatically after every policy decision. *)

(** User-level PAS implementations — the first two implementation choices of
    §4.1.  The paper notes they are "quite intrusive because of system calls"
    and "may lack reactivity"; the ablation experiment quantifies the
    reactivity gap against the in-hypervisor {!Pas_sched}.

    Both variants are periodic daemons scheduled on the simulator:

    - {!credit_manager}: an (external) ondemand governor keeps managing the
      frequency; the daemon merely watches the frequency and rewrites VM
      credits to compensate it;
    - {!full_manager}: the daemon also samples the host load, chooses the
      frequency itself (through the userspace governor when provided, which
      adds one more period of lag) and rewrites the credits. *)

type daemon

val credit_manager :
  ?period:Sim_time.t ->
  sim:Simulator.t ->
  processor:Cpu_model.Processor.t ->
  scheduler:Hypervisor.Scheduler.t ->
  Hypervisor.Domain.t list ->
  daemon
(** Default period: 1 s (a userland monitoring loop). *)

val full_manager :
  ?period:Sim_time.t ->
  ?userspace:Governors.Userspace.t ->
  sim:Simulator.t ->
  processor:Cpu_model.Processor.t ->
  scheduler:Hypervisor.Scheduler.t ->
  utilization:(unit -> float) ->
  Hypervisor.Domain.t list ->
  daemon
(** [utilization] must behave like {!Hypervisor.Host.utilization_probe}:
    each call returns the busy fraction since the previous call.  Default
    period: 500 ms. *)

val adjustments : daemon -> int
(** Number of periods in which the daemon changed at least one credit. *)

val frequency_requests : daemon -> int
(** Frequency changes requested ([credit_manager]: always 0). *)

val stop : daemon -> unit
(** Cancels the periodic task. *)

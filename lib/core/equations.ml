module Frequency = Cpu_model.Frequency
module Calibration = Cpu_model.Calibration

let frequency_ratio = Frequency.ratio

exception Invalid_speed of { ratio : float; cf : float }

let () =
  Printexc.register_printer (function
    | Invalid_speed { ratio; cf } ->
        Some
          (Printf.sprintf
             "Pas.Equations.Invalid_speed: ratio (%g) * cf (%g) must be positive and finite"
             ratio cf)
    | _ -> None)

(* The negated comparison also rejects NaN, so a poisoned ratio or cf can
   never turn a credit division into inf/NaN silently. *)
let check_speed ratio cf = if not (ratio *. cf > 0.0) then raise (Invalid_speed { ratio; cf })

let absolute_load ~global_load ~ratio ~cf = global_load *. ratio *. cf

let load_at ~absolute_load ~ratio ~cf =
  check_speed ratio cf;
  absolute_load /. (ratio *. cf)

let time_at ~t_max ~ratio ~cf =
  check_speed ratio cf;
  t_max /. (ratio *. cf)

let time_with_credit ~t_init ~c_init ~c_new =
  if not (c_init > 0.0 && c_new > 0.0) then
    invalid_arg "Equations.time_with_credit: credits must be positive";
  t_init *. c_init /. c_new

let compensated_credit ~initial ~ratio ~cf =
  check_speed ratio cf;
  initial /. (ratio *. cf)

let can_absorb table calibration freq ~absolute_load =
  let ratio = Frequency.ratio table freq in
  let cf = Calibration.cf calibration table freq in
  ratio *. 100.0 *. cf > absolute_load

(* Listing 1.1, iterating the frequency table in ascending order. *)
let compute_new_freq table calibration ~absolute_load =
  let levels = Frequency.levels table in
  let chosen = ref (Frequency.max_freq table) in
  (try
     Array.iter
       (fun f ->
         if can_absorb table calibration f ~absolute_load then begin
           chosen := f;
           raise Exit
         end)
       levels
   with Exit -> ());
  !chosen

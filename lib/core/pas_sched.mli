(** The Power-Aware Scheduler (PAS) — the paper's contribution (§4), in its
    in-hypervisor form (the third implementation choice of §4.1, the one the
    paper's results are based on).

    PAS extends the Credit scheduler.  At every evaluation window it

    + averages the last three processor-utilization samples into the
      {e Global load} (footnote 5),
    + converts it to the {e Absolute load} using the current frequency's
      ratio and [cf],
    + picks the lowest frequency that absorbs the absolute load
      (Listing 1.1),
    + rescales {e every} domain's effective credit to
      [C_init / (ratio * cf)] (Listing 1.2) — so an active domain keeps the
      absolute capacity it paid for, and no domain ever receives more,
    + applies the frequency change.

    The credit sum may exceed 100 % at low frequency; the paper notes this
    is intentional (the new limits of lazy domains are simply never
    reached). *)

type t

val create :
  ?window:Sim_time.t ->
  ?account_period:Sim_time.t ->
  processor:Cpu_model.Processor.t ->
  Hypervisor.Domain.t list ->
  t
(** [window] is the utilization sampling period (default 100 ms);
    [account_period] is forwarded to the underlying Credit scheduler. *)

val scheduler : t -> Hypervisor.Scheduler.t
(** Plug this into {!Hypervisor.Host.create}; no separate governor is needed
    (nor allowed — PAS owns the frequency). *)

val evaluations : t -> int
(** Number of windows evaluated so far. *)

val frequency_decisions : t -> int
(** Number of evaluations that changed the processor frequency. *)

val last_absolute_load : t -> float
(** The absolute load (percent) computed at the latest evaluation. *)

val effective_credit : t -> Hypervisor.Domain.t -> float

val check_invariants : t -> now:Sim_time.t -> unit
(** Evaluates the PAS sanitizer invariants against the current state: the
    processor frequency is a table level, every capped effective credit is
    finite and non-negative, and credit conservation holds — the capped
    credits sum to [sum initial / (ratio * cf)] (Eq. 4 summed over
    domains).  A no-op unless the sanitizer is enabled ({!Analysis.enable});
    called automatically at the end of every evaluation window, and exposed
    so tests can drive it against deliberately corrupted state. *)

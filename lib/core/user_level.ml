module Processor = Cpu_model.Processor
module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler

type daemon = {
  sim : Simulator.t;
  handle : Simulator.handle;
  mutable adjustments : int;
  mutable frequency_requests : int;
}

let compensate ~processor ~scheduler ~freq domains =
  let table = Processor.freq_table processor in
  let calibration = (Processor.arch processor).Cpu_model.Arch.calibration in
  let ratio = Cpu_model.Frequency.ratio table freq in
  let cf = Cpu_model.Calibration.cf calibration table freq in
  let changed = ref false in
  List.iter
    (fun d ->
      let initial = Domain.initial_credit d in
      if initial > 0.0 then begin
        let target = Equations.compensated_credit ~initial ~ratio ~cf in
        if Float.abs (scheduler.Scheduler.effective_credit d -. target) > 1e-9 then begin
          scheduler.Scheduler.set_effective_credit d target;
          changed := true
        end
      end)
    domains;
  !changed

let credit_manager ?(period = Sim_time.of_sec 1) ~sim ~processor ~scheduler domains =
  let daemon = ref None in
  let handle =
    Simulator.every sim period (fun () ->
        let freq = Processor.current_freq processor in
        if compensate ~processor ~scheduler ~freq domains then
          match !daemon with Some d -> d.adjustments <- d.adjustments + 1 | None -> ())
  in
  let d = { sim; handle; adjustments = 0; frequency_requests = 0 } in
  daemon := Some d;
  d

let full_manager ?(period = Sim_time.of_ms 500) ?userspace ~sim ~processor ~scheduler
    ~utilization domains =
  let daemon = ref None in
  let table = Processor.freq_table processor in
  let calibration = (Processor.arch processor).Cpu_model.Arch.calibration in
  let handle =
    Simulator.every sim period (fun () ->
        let busy_fraction = utilization () in
        let absolute_load =
          Equations.absolute_load ~global_load:(busy_fraction *. 100.0)
            ~ratio:(Processor.ratio processor) ~cf:(Processor.cf processor)
        in
        let new_freq = Equations.compute_new_freq table calibration ~absolute_load in
        let changed = compensate ~processor ~scheduler ~freq:new_freq domains in
        let freq_changed = new_freq <> Processor.current_freq processor in
        (if freq_changed then
           match userspace with
           | Some us -> Governors.Userspace.request us new_freq
           | None -> Processor.set_freq processor ~now:(Simulator.now sim) new_freq);
        match !daemon with
        | Some d ->
            if changed then d.adjustments <- d.adjustments + 1;
            if freq_changed then d.frequency_requests <- d.frequency_requests + 1
        | None -> ())
  in
  let d = { sim; handle; adjustments = 0; frequency_requests = 0 } in
  daemon := Some d;
  d

let adjustments d = d.adjustments
let frequency_requests d = d.frequency_requests
let stop d = Simulator.cancel d.sim d.handle

(** The paper's proportionality model — equations (1) to (4) of §4.2 as pure
    functions.

    Conventions: loads and credits are percentages (0–100 for loads, credits
    may exceed 100 after compensation); [ratio] is [F_i / F_max]; [cf] is
    the per-frequency calibration factor. *)

exception Invalid_speed of { ratio : float; cf : float }
(** Raised by every function that divides by [ratio * cf] when that product
    is zero, negative or NaN — the division would otherwise return
    [inf]/[NaN] and silently poison credits downstream. *)

val frequency_ratio : Cpu_model.Frequency.table -> Cpu_model.Frequency.mhz -> float
(** [ratio_i = F_i / F_max].  @raise Not_found for a non-level frequency. *)

val absolute_load : global_load:float -> ratio:float -> cf:float -> float
(** The load the processor would show at maximum frequency:
    [Global_load * ratio * cf] (§4, variable definitions). *)

val load_at : absolute_load:float -> ratio:float -> cf:float -> float
(** Inverse of {!absolute_load}: the load a given absolute load represents
    at frequency [i] — eq. (1) rearranged: [L_i = L_max / (ratio_i * cf_i)].
    @raise Invalid_speed if [ratio * cf] is not positive. *)

val time_at : t_max:float -> ratio:float -> cf:float -> float
(** Eq. (2): execution time at frequency [i] of a computation taking
    [t_max] at maximum frequency (same credit): [T_i = T_max / (ratio*cf)].
    @raise Invalid_speed if [ratio * cf] is not positive. *)

val time_with_credit : t_init:float -> c_init:float -> c_new:float -> float
(** Eq. (3): execution time after a credit change (same frequency):
    [T_new = T_init * C_init / C_new].
    @raise Invalid_argument on non-positive credits. *)

val compensated_credit : initial:float -> ratio:float -> cf:float -> float
(** Eq. (4): the credit that restores, at frequency [i], the computing
    capacity the initial credit bought at maximum frequency:
    [C_j = C_init / (ratio_i * cf_i)].  May exceed 100.
    @raise Invalid_speed if [ratio * cf] is not positive. *)

val can_absorb :
  Cpu_model.Frequency.table ->
  Cpu_model.Calibration.t ->
  Cpu_model.Frequency.mhz ->
  absolute_load:float ->
  bool
(** Listing 1.1's test: [ratio_i * 100 * cf_i > absolute_load]. *)

val compute_new_freq :
  Cpu_model.Frequency.table ->
  Cpu_model.Calibration.t ->
  absolute_load:float ->
  Cpu_model.Frequency.mhz
(** Listing 1.1: the lowest frequency whose capacity strictly exceeds the
    absolute load; the maximum frequency if none qualifies. *)

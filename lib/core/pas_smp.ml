module Smp = Cpu_model.Smp
module Frequency = Cpu_model.Frequency
module Calibration = Cpu_model.Calibration
module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler

let inv_conservation =
  Analysis.Invariant.register "pas-smp.credit-conservation" ~equation:"Eq. 4"
    ~doc:
      "after a rescale, capped effective credits sum to the initial sum scaled by \
       1/(ratio*cf) of the slowest frequency domain"

let inv_freq_member =
  Analysis.Invariant.register "pas-smp.freq-in-table" ~equation:"Listing 1.1"
    ~doc:"every frequency domain runs at a level of the package's table"

let inv_core_util =
  Analysis.Invariant.register "pas-smp.core-utilization"
    ~doc:"per-core utilization samples fall in [0, 1]"

type domain_window = { ring : float array; mutable filled : int; mutable next : int }

type t = {
  smp : Smp.t;
  scheduler : Scheduler.t;
  domains : Domain.t list;
  window : Sim_time.t;
  windows : domain_window array; (* one per frequency domain *)
  mutable evaluations : int;
  mutable last_absolute_load : float;
}

let create ?(window = Sim_time.of_ms 100) ~smp ~scheduler domains =
  {
    smp;
    scheduler;
    domains;
    window;
    windows =
      Array.init (Smp.domain_count smp) (fun _ ->
          { ring = Array.make 3 0.0; filled = 0; next = 0 });
    evaluations = 0;
    last_absolute_load = 0.0;
  }

let push_sample w v =
  w.ring.(w.next) <- v;
  w.next <- (w.next + 1) mod Array.length w.ring;
  if w.filled < Array.length w.ring then w.filled <- w.filled + 1

let mean w =
  if w.filled = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to w.filled - 1 do
      sum := !sum +. w.ring.(i)
    done;
    !sum /. float_of_int w.filled
  end

(* Rescale every domain's credit for the slowest frequency domain of the
   package: a host-wide credit must compensate the worst case. *)
let rescale_credits t =
  let table = Smp.freq_table t.smp in
  let cal = (Smp.arch t.smp).Cpu_model.Arch.calibration in
  let slowest = ref (Frequency.max_freq table) in
  for domain = 0 to Smp.domain_count t.smp - 1 do
    let f = Smp.current_freq t.smp ~domain in
    if f < !slowest then slowest := f
  done;
  let ratio = Frequency.ratio table !slowest in
  let cf = Calibration.cf cal table !slowest in
  List.iter
    (fun d ->
      let initial = Domain.initial_credit d in
      if initial > 0.0 then
        t.scheduler.Scheduler.set_effective_credit d
          (Equations.compensated_credit ~initial ~ratio ~cf))
    t.domains

(* Post-conditions of a rescale, mirroring [Pas_sched.check_invariants] for
   the multi-core variant: every frequency domain sits on a table level and
   the host-wide credits compensate for the slowest domain.  Public so tests
   can drive it against corrupted state. *)
let check_invariants t ~now =
  if Analysis.Config.enabled () then begin
    let time_s = Sim_time.to_sec now in
    let table = Smp.freq_table t.smp in
    let cal = (Smp.arch t.smp).Cpu_model.Arch.calibration in
    let all_member = ref true in
    let slowest = ref (Frequency.max_freq table) in
    for domain = 0 to Smp.domain_count t.smp - 1 do
      let f = Smp.current_freq t.smp ~domain in
      Analysis.Check.run inv_freq_member ~time_s ~component:"pas-smp"
        ~detail:(fun () ->
          Printf.sprintf "frequency domain %d at %d MHz, not a table level" domain f)
        (Frequency.mem table f);
      if not (Frequency.mem table f) then all_member := false;
      if f < !slowest then slowest := f
    done;
    if !all_member then begin
      let ratio = Frequency.ratio table !slowest in
      let cf = Calibration.cf cal table !slowest in
      let sum_initial = ref 0.0 and sum_effective = ref 0.0 in
      List.iter
        (fun d ->
          let initial = Domain.initial_credit d in
          if initial > 0.0 then begin
            sum_initial := !sum_initial +. initial;
            sum_effective := !sum_effective +. t.scheduler.Scheduler.effective_credit d
          end)
        t.domains;
      let expected = !sum_initial /. (ratio *. cf) in
      Analysis.Check.run inv_conservation ~time_s ~component:"pas-smp"
        ~detail:(fun () ->
          Printf.sprintf "sum of effective credits %.9g, expected %.9g at %d MHz"
            !sum_effective expected !slowest)
        (Float.abs (!sum_effective -. expected) <= 1e-9 *. Float.max 1.0 expected)
    end
  end

let decide t ~now ~domain ~core_utils =
  if Analysis.Config.enabled () then
    Array.iteri
      (fun core u ->
        Analysis.Check.within inv_core_util ~time_s:(Sim_time.to_sec now)
          ~component:"pas-smp"
          ~what:(Printf.sprintf "core %d utilization" core)
          ~lo:0.0 ~hi:1.0 u)
      core_utils;
  let table = Smp.freq_table t.smp in
  let cal = (Smp.arch t.smp).Cpu_model.Arch.calibration in
  let freq = Smp.current_freq t.smp ~domain in
  let speed = Calibration.effective_speed cal table freq in
  (* Absolute load of this frequency domain, as a percentage of its cores'
     maximum capacity. *)
  let sum_util = Array.fold_left ( +. ) 0.0 core_utils in
  let abs_pct = sum_util *. speed /. float_of_int (Array.length core_utils) *. 100.0 in
  let w = t.windows.(domain) in
  push_sample w abs_pct;
  t.evaluations <- t.evaluations + 1;
  let averaged = mean w in
  t.last_absolute_load <- averaged;
  let new_freq = Equations.compute_new_freq table cal ~absolute_load:averaged in
  Smp.set_freq t.smp ~now ~domain new_freq;
  rescale_credits t;
  check_invariants t ~now

let policy t =
  {
    Hypervisor.Smp_host.policy_name = "pas-smp";
    period = t.window;
    decide = (fun ~now ~domain ~core_utils -> decide t ~now ~domain ~core_utils);
  }

let evaluations t = t.evaluations
let last_absolute_load t = t.last_absolute_load

(** Deterministic pseudo-random number generator (SplitMix64).

    The simulator never uses the global [Random] state: every stochastic
    component owns a [Prng.t] seeded explicitly, so that experiments are
    reproducible bit-for-bit and independent streams can be split off for
    unrelated components. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent stream derived from (and advancing) [t]. *)

val copy : t -> t

val derive : key:string -> t
(** [derive ~key] is a stream that is a pure function of [key] (FNV-1a of
    the bytes feeding a SplitMix64 state): deriving the same key always
    yields the same stream, regardless of call order, interleaving with
    other derivations, or which domain performs the call.  Experiments use
    their id as the key so parallel and serial runs are bit-identical. *)

val derive_seed : key:string -> int
(** First output of [derive ~key] as an [int] — for APIs that take a
    [seed:int] rather than a [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val uniform : t -> lo:float -> hi:float -> float

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool

val exponential : t -> rate:float -> float
(** Exponentially-distributed variate with the given rate (mean [1/rate]). *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto variate, heavy-tailed; used for bursty request sizes. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal variate. *)

val poisson : t -> mean:float -> int
(** Poisson-distributed count.  Uses Knuth's method for small means and a
    normal approximation above 60 to stay O(1). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

type t = int

let zero = 0

let of_us n =
  if n < 0 then invalid_arg "Sim_time.of_us: negative duration";
  n

let of_ms n = of_us (n * 1_000)
let of_sec n = of_us (n * 1_000_000)

let of_sec_f s =
  if Float.is_nan s || s < 0.0 then invalid_arg "Sim_time.of_sec_f: negative";
  int_of_float (Float.round (s *. 1e6))

let to_us t = t
let[@inline] to_ms t = float_of_int t /. 1e3
let[@inline] to_sec t = float_of_int t /. 1e6
let add a b = a + b

let sub a b =
  if a < b then invalid_arg "Sim_time.sub: negative result";
  a - b

let diff a b = abs (a - b)
let ( + ) = add
let ( - ) = sub
let compare = Int.compare
let equal = Int.equal
let min = Stdlib.min
let max = Stdlib.max

let pp ppf t =
  if t >= 1_000_000 then Format.fprintf ppf "%.3fs" (to_sec t)
  else if t >= 1_000 then Format.fprintf ppf "%.3fms" (to_ms t)
  else Format.fprintf ppf "%dus" t

let to_string t = Format.asprintf "%a" pp t

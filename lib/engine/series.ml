type t = { name : string; times : int Vec.t; values : Vec.Floats.t }

let inv_finite =
  Analysis.Invariant.register "series.finite-sample"
    ~doc:"no NaN or infinity is recorded into a measurement series"

let create ~name = { name; times = Vec.create (); values = Vec.Floats.create () }
let name t = t.name
let length t = Vec.length t.times

let[@inline never] bad_time () = invalid_arg "Series.add: non-monotonic time"

(* Sanitizer path: runs only when Analysis.Config is enabled, and the
   checker's interface boxes the sample anyway. *)
(* alloc: cold *)
let[@inline never] checked_push t time value =
  Analysis.Check.finite inv_finite ~time_s:(Sim_time.to_sec time)
    ~component:("series:" ^ t.name) ~what:"sample" value;
  Vec.push t.times time;
  Vec.Floats.push t.values value

(* Inlined so a freshly computed sample value reaches the float vector
   without boxing at the call boundary; the sanitizer path (which must box
   anyway to hand the value to the checker) stays out of line. *)
let[@inline always] add t time value =
  let n = Vec.length t.times in
  if n > 0 && Sim_time.compare time (Vec.get t.times (n - 1)) < 0 then bad_time ();
  if Analysis.Config.enabled () then checked_push t time value
  else begin
    Vec.push t.times time;
    Vec.Floats.push t.values value
  end

type cell = Vec.Floats.cell = { mutable value : float }

let cell = Vec.Floats.cell

(* [add] with the sample delivered through a caller-owned scratch cell, so
   the recording path of a periodic sampler allocates nothing: the fresh
   float is stored into the flat cell (raw store) and copied into the
   float vector by [push_cell] (raw load + store) — it never crosses a
   call boundary as an argument, where it would be boxed without
   cross-module inlining. *)
(* alloc: none *)
let add_cell t time (c : cell) =
  let n = Vec.length t.times in
  if n > 0 && Sim_time.compare time (Vec.get t.times (n - 1)) < 0 then bad_time ();
  if Analysis.Config.enabled () then checked_push t time c.value
  else begin
    Vec.push t.times time;
    Vec.Floats.push_cell t.values c
  end

let times t = Vec.to_array t.times
let values t = Vec.Floats.to_array t.values
let get t i = (Vec.get t.times i, Vec.Floats.get t.values i)

let last_value t =
  let n = length t in
  if n = 0 then None else Some (Vec.Floats.get t.values (n - 1))

let nth_value t i = Vec.Floats.get t.values i

let reset t =
  Vec.reset t.times;
  Vec.Floats.reset t.values

(* Index of the latest sample at or before [time], by binary search. *)
let index_at t time =
  let n = length t in
  if n = 0 || Sim_time.compare (Vec.get t.times 0) time > 0 then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if Sim_time.compare (Vec.get t.times mid) time <= 0 then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

let value_at t time =
  match index_at t time with None -> None | Some i -> Some (Vec.Floats.get t.values i)

let mean t = Vec.Floats.mean t.values

let mean_between t t0 t1 =
  let sum = ref 0.0 and n = ref 0 in
  for i = 0 to length t - 1 do
    let time = Vec.get t.times i in
    if Sim_time.compare time t0 >= 0 && Sim_time.compare time t1 <= 0 then begin
      sum := !sum +. Vec.Floats.get t.values i;
      incr n
    end
  done;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

let map_values f t =
  let out = create ~name:t.name in
  for i = 0 to length t - 1 do
    add out (Vec.get t.times i) (f (Vec.Floats.get t.values i))
  done;
  out

module Frame = struct
  type series = t
  type t = { time_label : string; members : series Vec.t }

  let create ?(time_label = "time_s") () = { time_label; members = Vec.create () }
  let add_series t s = Vec.push t.members s
  let series t = Array.to_list (Vec.to_array t.members)

  (* One k-way merge pass over the member series' time axes.  Each series
     carries a cursor to its next unemitted sample; a row is emitted at the
     minimum cursor time, advancing every cursor sitting at (or duplicated
     on) that instant.  A cell holds the sample before the cursor — exactly
     the latest-at-or-before value the old per-cell binary search computed,
     without building a sorted time-set union first. *)
  let to_csv t =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf t.time_label;
    let k = Vec.length t.members in
    for j = 0 to k - 1 do
      Buffer.add_char buf ',';
      Buffer.add_string buf (name (Vec.get t.members j))
    done;
    Buffer.add_char buf '\n';
    let next = Array.make (max k 1) 0 in
    let emitting = ref true in
    while !emitting do
      let tmin = ref Sim_time.zero and found = ref false in
      for j = 0 to k - 1 do
        let s = Vec.get t.members j in
        if next.(j) < length s then begin
          let tj = Vec.get s.times next.(j) in
          if (not !found) || Sim_time.compare tj !tmin < 0 then begin
            tmin := tj;
            found := true
          end
        end
      done;
      if not !found then emitting := false
      else begin
        let time = !tmin in
        Printf.bprintf buf "%.6f" (Sim_time.to_sec time); (* lint:ignore hot-path-printf: CSV export renders off the recording path *)
        for j = 0 to k - 1 do
          let s = Vec.get t.members j in
          while
            next.(j) < length s
            && Sim_time.compare (Vec.get s.times next.(j)) time <= 0
          do
            next.(j) <- next.(j) + 1
          done;
          Buffer.add_char buf ',';
          if next.(j) > 0 then
            Printf.bprintf buf "%.6f" (* lint:ignore hot-path-printf: CSV export renders off the recording path *)
              (Vec.Floats.get s.values (next.(j) - 1))
        done;
        Buffer.add_char buf '\n'
      end
    done;
    Buffer.contents buf

  let save_csv t path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_csv t))
end

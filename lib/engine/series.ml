type t = { name : string; times : int Vec.t; values : Vec.Floats.t }

let inv_finite =
  Analysis.Invariant.register "series.finite-sample"
    ~doc:"no NaN or infinity is recorded into a measurement series"

let create ~name = { name; times = Vec.create (); values = Vec.Floats.create () }
let name t = t.name
let length t = Vec.length t.times

let add t time value =
  (match Vec.last t.times with
  | Some prev when Sim_time.compare time prev < 0 ->
      invalid_arg "Series.add: non-monotonic time"
  | Some _ | None -> ());
  if Analysis.Config.enabled () then
    Analysis.Check.finite inv_finite ~time_s:(Sim_time.to_sec time)
      ~component:("series:" ^ t.name) ~what:"sample" value;
  Vec.push t.times time;
  Vec.Floats.push t.values value

let times t = Vec.to_array t.times
let values t = Vec.Floats.to_array t.values
let get t i = (Vec.get t.times i, Vec.Floats.get t.values i)

let last_value t =
  let n = length t in
  if n = 0 then None else Some (Vec.Floats.get t.values (n - 1))

(* Index of the latest sample at or before [time], by binary search. *)
let index_at t time =
  let n = length t in
  if n = 0 || Sim_time.compare (Vec.get t.times 0) time > 0 then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if Sim_time.compare (Vec.get t.times mid) time <= 0 then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

let value_at t time =
  match index_at t time with None -> None | Some i -> Some (Vec.Floats.get t.values i)

let mean t = Vec.Floats.mean t.values

let mean_between t t0 t1 =
  let sum = ref 0.0 and n = ref 0 in
  for i = 0 to length t - 1 do
    let time = Vec.get t.times i in
    if Sim_time.compare time t0 >= 0 && Sim_time.compare time t1 <= 0 then begin
      sum := !sum +. Vec.Floats.get t.values i;
      incr n
    end
  done;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

let map_values f t =
  let out = create ~name:t.name in
  for i = 0 to length t - 1 do
    add out (Vec.get t.times i) (f (Vec.Floats.get t.values i))
  done;
  out

module Frame = struct
  type series = t
  type t = { time_label : string; mutable members : series list }

  let create ?(time_label = "time_s") () = { time_label; members = [] }
  let add_series t s = t.members <- t.members @ [ s ]
  let series t = t.members

  let all_times t =
    let module S = Set.Make (Int) in
    let set =
      List.fold_left
        (fun acc s ->
          Array.fold_left (fun acc time -> S.add time acc) acc (times s))
        S.empty t.members
    in
    S.elements set

  let to_csv t =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf t.time_label;
    List.iter
      (fun s ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (name s))
      t.members;
    Buffer.add_char buf '\n';
    List.iter
      (fun time ->
        Buffer.add_string buf (Printf.sprintf "%.6f" (Sim_time.to_sec time));
        List.iter
          (fun s ->
            Buffer.add_char buf ',';
            match value_at s time with
            | Some v -> Buffer.add_string buf (Printf.sprintf "%.6f" v)
            | None -> Buffer.add_string buf "")
          t.members;
        Buffer.add_char buf '\n')
      (all_times t);
    Buffer.contents buf

  let save_csv t path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_csv t))
end

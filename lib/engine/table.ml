type align = Left | Right
type row = Cells of string list | Rule
type t = { headers : string list; aligns : align list; mutable rows : row list }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- t.rows @ [ Cells cells ]

let add_rule t = t.rows <- t.rows @ [ Rule ]

let row_count t =
  List.fold_left (fun n -> function Cells _ -> n + 1 | Rule -> n) 0 t.rows

let render t =
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let note cells = List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells in
  note t.headers;
  List.iter (function Cells cells -> note cells | Rule -> ()) t.rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else match align with Left -> s ^ String.make n ' ' | Right -> String.make n ' ' ^ s
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "-+-";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Cells cells -> emit_cells cells | Rule -> emit_rule ()) t.rows;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
let cell_f v = Printf.sprintf "%.2f" v
let cell_f1 v = Printf.sprintf "%.1f" v
let cell_i v = string_of_int v

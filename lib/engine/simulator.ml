type event = {
  mutable time : Sim_time.t;
  mutable seq : int;
  mutable action : unit -> unit;
  mutable cancelled : bool;
  mutable queued : bool; (* currently sitting in the queue *)
}

type handle = event

type t = {
  mutable clock : Sim_time.t;
  mutable next_seq : int;
  queue : event Calendar.t;
  mutable dead : int; (* cancelled events still occupying queue slots *)
}

let inv_monotonic =
  Analysis.Invariant.register "sim.monotonic-time"
    ~doc:"the event queue never dispatches an event scheduled before the clock"

let cmp_event a b =
  let c = Sim_time.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let event_key ev = Sim_time.to_us ev.time

let create () =
  {
    clock = Sim_time.zero;
    next_seq = 0;
    queue = Calendar.create ~key:event_key ~cmp:cmp_event;
    dead = 0;
  }

let now t = t.clock

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let at t time action =
  if Sim_time.compare time t.clock < 0 then invalid_arg "Simulator.at: time is in the past";
  let ev = { time; seq = fresh_seq t; action; cancelled = false; queued = true } in
  Calendar.push t.queue ev;
  ev

let after t delay action = at t (Sim_time.add t.clock delay) action

let every t ?start period action =
  if Sim_time.equal period Sim_time.zero then invalid_arg "Simulator.every: zero period";
  let start = match start with Some s -> s | None -> Sim_time.add t.clock period in
  if Sim_time.compare start t.clock < 0 then invalid_arg "Simulator.every: start is in the past";
  let cell = { time = start; seq = fresh_seq t; action = ignore; cancelled = false; queued = true } in
  (* One record is re-armed for every firing so a single handle controls the
     whole periodic chain.  The closure is allocated once here; the re-arm
     itself only mutates the cell and re-pushes it. *)
  cell.action <-
    (fun () ->
      action ();
      if not cell.cancelled then begin
        cell.time <- Sim_time.add t.clock period;
        cell.seq <- fresh_seq t;
        cell.queued <- true;
        Calendar.push t.queue cell
      end);
  Calendar.push t.queue cell;
  cell

(* Rebuild the queue without its cancelled entries once they dominate; keeps
   [pending] exact and stops long-lived simulations from dragging a tail of
   dead events through every pop. *)
let compact t =
  Calendar.filter_in_place t.queue (fun ev ->
      if ev.cancelled then begin
        ev.queued <- false;
        false
      end
      else true);
  t.dead <- 0

let cancel t handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    if handle.queued then begin
      t.dead <- t.dead + 1;
      if t.dead > 64 && 2 * t.dead > Calendar.length t.queue then compact t
    end
  end

let pending t = Calendar.length t.queue - t.dead

let step t =
  if Calendar.is_empty t.queue then false
  else begin
    let ev = Calendar.pop_exn t.queue in
    ev.queued <- false;
    if ev.cancelled then begin
      t.dead <- t.dead - 1;
      true
    end
    else begin
      if Analysis.Config.enabled () then
        Analysis.Check.run inv_monotonic ~time_s:(Sim_time.to_sec t.clock)
          ~component:"simulator"
          ~detail:(fun () ->
            Printf.sprintf "event scheduled at %s popped with clock at %s"
              (Sim_time.to_string ev.time) (Sim_time.to_string t.clock))
          (Sim_time.compare ev.time t.clock >= 0);
      t.clock <- Sim_time.max t.clock ev.time;
      ev.action ();
      true
    end
  end

let run_until t t_end =
  (* [next_key] is [max_int] on an empty queue, so the comparison doubles as
     the emptiness test; nothing in this loop allocates. *)
  let t_end_key = Sim_time.to_us t_end in
  while Calendar.next_key t.queue <= t_end_key do
    ignore (step t)
  done;
  t.clock <- Sim_time.max t.clock t_end

let run t = while step t do () done

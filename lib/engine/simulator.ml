type event = {
  mutable time : Sim_time.t;
  mutable seq : int;
  mutable action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = { mutable clock : Sim_time.t; mutable next_seq : int; queue : event Heap.t }

let cmp_event a b =
  let c = Sim_time.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { clock = Sim_time.zero; next_seq = 0; queue = Heap.create ~cmp:cmp_event }
let now t = t.clock

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let at t time action =
  if Sim_time.compare time t.clock < 0 then invalid_arg "Simulator.at: time is in the past";
  let ev = { time; seq = fresh_seq t; action; cancelled = false } in
  Heap.push t.queue ev;
  ev

let after t delay action = at t (Sim_time.add t.clock delay) action

let every t ?start period action =
  if Sim_time.equal period Sim_time.zero then invalid_arg "Simulator.every: zero period";
  let start = match start with Some s -> s | None -> Sim_time.add t.clock period in
  if Sim_time.compare start t.clock < 0 then invalid_arg "Simulator.every: start is in the past";
  let cell = { time = start; seq = fresh_seq t; action = ignore; cancelled = false } in
  (* One record is re-armed for every firing so a single handle controls the
     whole periodic chain. *)
  cell.action <-
    (fun () ->
      action ();
      if not cell.cancelled then begin
        cell.time <- Sim_time.add t.clock period;
        cell.seq <- fresh_seq t;
        Heap.push t.queue cell
      end);
  Heap.push t.queue cell;
  cell

let cancel _t handle = handle.cancelled <- true
let pending t = Heap.length t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- Sim_time.max t.clock ev.time;
      (* A re-armed periodic cell may sit in the heap with a stale position if
         it was popped and pushed again; comparing the stored firing time with
         the heap position is unnecessary because times only move forward. *)
      if not ev.cancelled then ev.action ();
      true

let run_until t t_end =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | Some ev when Sim_time.compare ev.time t_end <= 0 -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  t.clock <- Sim_time.max t.clock t_end

let run t = while step t do () done

(** Plain-text table rendering for experiment reports. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** @raise Invalid_argument on an empty column list. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the column count. *)

val add_rule : t -> unit
(** Inserts a horizontal separator before the next row. *)

val row_count : t -> int
(** Number of data rows added so far (separators excluded). *)

val render : t -> string
val pp : Format.formatter -> t -> unit

val cell_f : float -> string
(** Standard numeric cell formatting: ["%.2f"]. *)

val cell_f1 : float -> string
(** ["%.1f"]. *)

val cell_i : int -> string

(** Bounded in-memory event trace.

    Components record notable transitions (frequency changes, credit updates,
    phase switches); tests assert on the recorded sequence and the CLI can
    dump it.  The buffer is bounded so multi-hour simulations cannot exhaust
    memory — when full, the oldest entries are dropped. *)

type entry = { time : Sim_time.t; source : string; message : string }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 65536 entries. *)

val record : t -> time:Sim_time.t -> source:string -> string -> unit
val recordf : t -> time:Sim_time.t -> source:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val length : t -> int
val dropped : t -> int
(** Number of entries evicted because the buffer was full. *)

val entries : t -> entry list
(** Oldest first. *)

val find : t -> source:string -> entry list
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit

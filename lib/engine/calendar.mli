(** Bucketed calendar queue (timing wheel with an overflow heap).

    A priority queue specialised for the event-queue workload: most pending
    events are short-period recurring timers, so their keys cluster tightly
    around the current minimum.  Keys within a sliding window of
    [256 * 1024] key units (≈ 262 ms at one unit per microsecond) land in a
    256-slot wheel of small binary heaps; keys beyond the window wait in a
    single overflow heap and migrate into the wheel as the window advances.
    For the dominant 1 ms-period timers every operation touches one or two
    buckets, and nothing on the push/pop path allocates once the bucket
    arrays have reached steady-state capacity.

    Ordering is given entirely by [cmp]; [key] must be a non-negative
    integer projection consistent with [cmp]'s most significant component
    (two elements with different keys must compare in key order).  Elements
    with equal keys are ordered by [cmp], so a (time, seq) total order is
    preserved exactly as with a single binary heap. *)

type 'a t

val create : key:('a -> int) -> cmp:('a -> 'a -> int) -> 'a t
(** Fresh empty queue.  [key] must return a non-negative int and agree with
    [cmp] as described above. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Insert an element.  Keys may be arbitrarily far in the future (they go
    to the overflow heap) but must not precede the smallest key ever
    popped by more than the window span; the queue clamps such stragglers
    into the current bucket, which keeps ordering correct because buckets
    are themselves heaps ordered by [cmp]. *)

val next_key : 'a t -> int
(** Key of the minimum element, or [max_int] when empty; allocation-free.
    May advance the internal window cursor (an optimisation, not a
    semantic change). *)

val pop_exn : 'a t -> 'a
(** Remove and return the minimum element; allocation-free in steady
    state.  @raise Invalid_argument when empty. *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Keep only elements satisfying the predicate; O(n).  Used to compact
    cancelled events out of the queue. *)

val to_list : 'a t -> 'a list
(** All elements in unspecified order; does not modify the queue. *)

let inv_finite =
  Analysis.Invariant.register "stats.finite-sample"
    ~doc:"no NaN or infinity enters a running-statistics accumulator"

module Running = struct
  (* The float moments live in an all-float sub-record so every [add]
     stores into a flat float block (a mixed record would box each store).
     The sample count stays an int alongside it: first-sample detection by
     [n = 1] is exact where a NaN sentinel would not be. *)
  type acc = { mutable mean : float; mutable m2 : float; mutable mn : float; mutable mx : float }
  type t = { mutable n : int; acc : acc }

  let create () = { n = 0; acc = { mean = 0.0; m2 = 0.0; mn = nan; mx = nan } }

  (* Sanitizer path: runs only when Analysis.Config is enabled, and the
     checker's interface boxes the sample anyway. *)
  (* alloc: cold *)
  let[@inline never] checked x =
    Analysis.Check.finite inv_finite ~component:"stats.running" ~what:"sample" x

  let[@inline always] update t x =
    t.n <- t.n + 1;
    let a = t.acc in
    let delta = x -. a.mean in
    a.mean <- a.mean +. (delta /. float_of_int t.n);
    a.m2 <- a.m2 +. (delta *. (x -. a.mean));
    if t.n = 1 then begin
      a.mn <- x;
      a.mx <- x
    end
    else begin
      if x < a.mn then a.mn <- x;
      if x > a.mx then a.mx <- x
    end

  let add t x =
    if Analysis.Config.enabled () then checked x;
    update t x

  (* [add] with the sample delivered through a caller-owned scratch cell
     (the [Series.add_cell] idiom): the fresh float is stored into the flat
     cell by the caller and loaded here as a raw float, so it never crosses
     a call boundary as an argument, where it would be boxed without
     cross-module inlining. *)
  let add_cell t (c : Vec.Floats.cell) =
    if Analysis.Config.enabled () then checked c.Vec.Floats.value;
    update t c.Vec.Floats.value

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.acc.mean
  let variance t = if t.n < 2 then 0.0 else t.acc.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.acc.mn
  let max t = t.acc.mx

  let ci95 t =
    if t.n < 2 then infinity
    else 1.96 *. stddev t /. sqrt (float_of_int t.n)

  let reset t =
    t.n <- 0;
    let a = t.acc in
    a.mean <- 0.0;
    a.m2 <- 0.0;
    a.mn <- nan;
    a.mx <- nan

  let copy t =
    {
      n = t.n;
      acc = { mean = t.acc.mean; m2 = t.acc.m2; mn = t.acc.mn; mx = t.acc.mx };
    }

  let merge a b =
    if a.n = 0 then copy b
    else if b.n = 0 then copy a
    else begin
      let n = a.n + b.n in
      let delta = b.acc.mean -. a.acc.mean in
      let fa = float_of_int a.n and fb = float_of_int b.n and fn = float_of_int (a.n + b.n) in
      let mean = a.acc.mean +. (delta *. fb /. fn) in
      let m2 = a.acc.m2 +. b.acc.m2 +. (delta *. delta *. fa *. fb /. fn) in
      {
        n;
        acc = { mean; m2; mn = Stdlib.min a.acc.mn b.acc.mn; mx = Stdlib.max a.acc.mx b.acc.mx };
      }
    end
end

module Summary = struct
  type t = {
    count : int;
    mean : float;
    stddev : float;
    min : float;
    p25 : float;
    p50 : float;
    p75 : float;
    p90 : float;
    p99 : float;
    max : float;
  }

  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then invalid_arg "Stats.Summary.percentile: empty array";
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.Summary.percentile: p out of range";
    if n = 1 then sorted.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
    end

  let quantile_of_unsorted samples p =
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    percentile sorted p

  let of_array samples =
    let n = Array.length samples in
    if n = 0 then invalid_arg "Stats.Summary.of_array: empty array";
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    let running = Running.create () in
    Array.iter (Running.add running) samples;
    {
      count = n;
      mean = Running.mean running;
      stddev = Running.stddev running;
      min = sorted.(0);
      p25 = percentile sorted 25.0;
      p50 = percentile sorted 50.0;
      p75 = percentile sorted 75.0;
      p90 = percentile sorted 90.0;
      p99 = percentile sorted 99.0;
      max = sorted.(n - 1);
    }

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
      t.count t.mean t.stddev t.min t.p50 t.p90 t.p99 t.max
end

module Histogram = struct
  type t = { lo : float; hi : float; width : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Stats.Histogram.create: bins must be positive";
    if hi <= lo then invalid_arg "Stats.Histogram.create: hi must exceed lo";
    { lo; hi; width = (hi -. lo) /. float_of_int bins; counts = Array.make bins 0; total = 0 }

  let add t x =
    let bins = Array.length t.counts in
    let i =
      if x < t.lo then 0
      else if x >= t.hi then bins - 1
      else Stdlib.min (bins - 1) (int_of_float ((x -. t.lo) /. t.width))
    in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let counts t = Array.copy t.counts
  let total t = t.total

  let bin_bounds t i =
    if i < 0 || i >= Array.length t.counts then invalid_arg "Stats.Histogram.bin_bounds";
    let lo = t.lo +. (float_of_int i *. t.width) in
    (lo, lo +. t.width)

  let pp ppf t =
    let max_count = Array.fold_left Stdlib.max 1 t.counts in
    Array.iteri
      (fun i c ->
        let lo, hi = bin_bounds t i in
        let bar = String.make (c * 40 / max_count) '#' in
        Format.fprintf ppf "[%8.2f,%8.2f) %6d %s@." lo hi c bar)
      t.counts
end

(** Discrete-event simulation core.

    A simulator owns a clock and an event queue.  Events scheduled for the
    same instant fire in scheduling order (FIFO), which keeps runs
    deterministic.  Handlers may schedule further events, including at the
    current instant. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t

val now : t -> Sim_time.t
(** Current simulated time. *)

val at : t -> Sim_time.t -> (unit -> unit) -> handle
(** [at sim time f] runs [f] when the clock reaches [time].
    @raise Invalid_argument if [time] is in the past. *)

val after : t -> Sim_time.t -> (unit -> unit) -> handle
(** [after sim delay f] runs [f] at [now sim + delay]. *)

val every : t -> ?start:Sim_time.t -> Sim_time.t -> (unit -> unit) -> handle
(** [every sim ~start period f] runs [f] at [start] (default: one period from
    now) and then every [period].  Cancelling the handle stops the cycle.
    @raise Invalid_argument if [period] is zero. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op.
    Cancelled events are compacted out of the queue once they outnumber the
    live ones, so a cancellation-heavy workload cannot bloat the heap. *)

val pending : t -> int
(** Number of {e live} events still queued.  Cancelled-but-uncollected
    events are excluded, so the count is reliable for assertions. *)

val step : t -> bool
(** Executes the next event.  Returns [false] when the queue is empty.
    Popping a cancelled event counts as a step but runs nothing. *)

val run_until : t -> Sim_time.t -> unit
(** Executes every event scheduled strictly before or at [t_end], then
    advances the clock to exactly [t_end]. *)

val run : t -> unit
(** Runs until the event queue is exhausted. *)

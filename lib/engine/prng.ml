type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (next_int64 t) }
let copy t = { state = t.state }

(* FNV-1a 64-bit over the key bytes, then mixed into a SplitMix64 state.
   A pure function of [key]: no global state is read or advanced, so the
   derived stream is independent of when (or on which domain) the call
   happens — the property the parallel experiment runner relies on. *)
let fnv_offset_basis = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let derive ~key =
  let h = ref fnv_offset_basis in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    key;
  { state = mix64 !h }

let derive_seed ~key = Int64.to_int (next_int64 (derive ~key))

(* A float uniform in [0,1) built from the top 53 bits. *)
let unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound =
  if not (bound > 0.0) then invalid_arg "Prng.float: bound must be positive";
  unit_float t *. bound

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.uniform: hi < lo";
  lo +. (unit_float t *. (hi -. lo))

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: bias is negligible for bounds << 2^64. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~rate =
  if not (rate > 0.0) then invalid_arg "Prng.exponential: rate must be positive";
  -.log1p (-.unit_float t) /. rate

let pareto t ~shape ~scale =
  if not (shape > 0.0 && scale > 0.0) then invalid_arg "Prng.pareto: parameters must be positive";
  scale /. ((1.0 -. unit_float t) ** (1.0 /. shape))

let gaussian t ~mean ~stddev =
  let u1 = 1.0 -. unit_float t in
  let u2 = unit_float t in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let poisson t ~mean =
  if mean < 0.0 then invalid_arg "Prng.poisson: negative mean";
  if mean = 0.0 (* lint:ignore float-eq: exact zero short-circuit *) then 0
  else if mean > 60.0 then
    (* Normal approximation; adequate for load generation. *)
    Stdlib.max 0 (int_of_float (Float.round (gaussian t ~mean ~stddev:(sqrt mean))))
  else begin
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. unit_float t in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(** Named time series.

    A series is an append-only sequence of (time, value) samples; times must
    be non-decreasing.  [Frame] groups several series over a common clock for
    CSV export and plotting (one frame per experiment figure). *)

type t

val create : name:string -> t
val name : t -> string
val length : t -> int

val add : t -> Sim_time.t -> float -> unit
(** @raise Invalid_argument if the time is earlier than the previous sample. *)

type cell = Vec.Floats.cell = { mutable value : float }
(** Reusable scratch slot for {!add_cell} (see {!Vec.Floats.cell}). *)

val cell : unit -> cell

val add_cell : t -> Sim_time.t -> cell -> unit
(** [add_cell t time c] records [c.value] at [time] — like {!add}, but the
    sample travels through the caller-owned flat cell instead of a float
    argument, so a periodic sampler's recording path stays allocation-free
    even without cross-module inlining (no boxing at the call boundary).
    @raise Invalid_argument if the time is earlier than the previous
    sample. *)

val times : t -> Sim_time.t array
val values : t -> float array
val get : t -> int -> Sim_time.t * float

val last_value : t -> float option

val nth_value : t -> int -> float
(** The value of the [i]th sample (0-based) without the pair allocation of
    {!get}.  @raise Invalid_argument on an out-of-range index. *)

val reset : t -> unit
(** Drop all samples but keep the sample storage, so refilling to a similar
    length allocates nothing.  Used by the microbenchmarks to measure the
    steady-state sampling path; times may restart from zero afterwards. *)

val value_at : t -> Sim_time.t -> float option
(** Step interpolation: the value of the latest sample at or before the
    instant, [None] before the first sample. *)

val mean : t -> float
val mean_between : t -> Sim_time.t -> Sim_time.t -> float
(** Mean of samples with time in [\[t0, t1\]]; 0 if none fall in range. *)

val map_values : (float -> float) -> t -> t

module Frame : sig
  type series = t
  type t

  val create : ?time_label:string -> unit -> t
  val add_series : t -> series -> unit
  val series : t -> series list

  val to_csv : t -> string
  (** Header [time,<name>,...]; rows are the union of all sample times with
      step interpolation, times printed in seconds. *)

  val save_csv : t -> string -> unit
  (** Writes [to_csv] to the given path. *)
end

type entry = { time : Sim_time.t; source : string; message : string }

type t = {
  capacity : int;
  buffer : entry option array;
  mutable head : int; (* next write slot *)
  mutable count : int;
  mutable dropped : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buffer = Array.make capacity None; head = 0; count = 0; dropped = 0 }

let record t ~time ~source message =
  if t.count = t.capacity then t.dropped <- t.dropped + 1 else t.count <- t.count + 1;
  t.buffer.(t.head) <- Some { time; source; message };
  t.head <- (t.head + 1) mod t.capacity

let recordf t ~time ~source fmt =
  Format.kasprintf (fun msg -> record t ~time ~source msg) fmt

let length t = t.count
let dropped t = t.dropped

let entries t =
  let start = (t.head - t.count + t.capacity) mod t.capacity in
  List.init t.count (fun i ->
      match t.buffer.((start + i) mod t.capacity) with
      | Some e -> e
      (* unreachable: the first [count] ring slots are always populated. *)
      | None -> assert false)

let find t ~source = List.filter (fun e -> String.equal e.source source) (entries t)

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.head <- 0;
  t.count <- 0;
  t.dropped <- 0

let pp_entry ppf e =
  Format.fprintf ppf "[%a] %s: %s" Sim_time.pp e.time e.source e.message

type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length v = v.size

let check v i =
  if i < 0 || i >= v.size then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

(* Growth is hoisted out of [push] so the common append inlines to a
   bounds test and a store; doubling runs O(log n) times over a vector's
   life. *)
(* alloc: cold *)
let[@inline never] grow v x =
  let cap = Array.length v.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let ndata = Array.make ncap x in
  Array.blit v.data 0 ndata 0 v.size;
  v.data <- ndata

let[@inline] push v x =
  if v.size = Array.length v.data then grow v x;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let clear v =
  v.data <- [||];
  v.size <- 0

let reset v = v.size <- 0

let to_array v = Array.sub v.data 0 v.size

let of_array a =
  let v = create () in
  Array.iter (push v) a;
  v

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let last v = if v.size = 0 then None else Some v.data.(v.size - 1)

module Floats = struct
  type t = { mutable data : float array; mutable size : int }

  let create () = { data = [||]; size = 0 }
  let length v = v.size

  let get v i =
    if i < 0 || i >= v.size then invalid_arg "Vec.Floats: index out of bounds";
    v.data.(i)

  (* Doubling runs O(log n) times over a vector's life. *)
  (* alloc: cold *)
  let[@inline never] grow v =
    let cap = Array.length v.data in
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap 0.0 in
    Array.blit v.data 0 ndata 0 v.size;
    v.data <- ndata

  let[@inline] push v x =
    if v.size = Array.length v.data then grow v;
    v.data.(v.size) <- x;
    v.size <- v.size + 1

  type cell = { mutable value : float }

  let cell () = { value = 0.0 }

  (* Appends [c.value] without a float crossing a call boundary: the cell
     is a flat one-float record, so the caller's store into it and the copy
     into [data] here are both raw float moves.  This keeps the recording
     path allocation-free even when cross-module inlining is off (dev
     builds compile with -opaque), where [push]'s float argument would be
     boxed by the caller. *)
  let push_cell v (c : cell) =
    if v.size = Array.length v.data then grow v;
    v.data.(v.size) <- c.value;
    v.size <- v.size + 1

  let clear v =
    v.data <- [||];
    v.size <- 0

  let reset v = v.size <- 0

  let to_array v = Array.sub v.data 0 v.size

  let iter f v =
    for i = 0 to v.size - 1 do
      f v.data.(i)
    done

  let sum v =
    let s = ref 0.0 in
    for i = 0 to v.size - 1 do
      s := !s +. v.data.(i)
    done;
    !s

  let mean v = if v.size = 0 then 0.0 else sum v /. float_of_int v.size
end

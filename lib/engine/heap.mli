(** Imperative binary min-heap.

    The priority order is given at creation time by a comparison function.
    Used by the event queue; exposed because it is independently useful (the
    SEDF scheduler keeps an EDF heap of runnable domains). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Fresh empty heap ordered by [cmp] (smallest element popped first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val top_exn : 'a t -> 'a
(** Smallest element without removing it; allocation-free.
    @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Keeps only the elements satisfying the predicate and restores the heap
    invariant, in O(n); used by the event queue to compact cancelled
    events. *)

val to_list : 'a t -> 'a list
(** Elements in unspecified order; does not modify the heap. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

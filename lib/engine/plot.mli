(** ASCII line plots of time series.

    Renders one or more series over a shared time axis in a fixed-size
    character grid — enough to eyeball the shape of every figure of the paper
    directly in a terminal; exact values go to CSV via {!Series.Frame}. *)

type t

val create : ?width:int -> ?height:int -> ?y_min:float -> ?y_max:float -> title:string -> unit -> t
(** Defaults: 72x16 grid.  When [y_min]/[y_max] are omitted the range adapts
    to the data (with a minimum span of 1.0). *)

val add : t -> Series.t -> unit
(** Each series is drawn with the next marker of [*+o#@%&=]. *)

val render : t -> string
val pp : Format.formatter -> t -> unit

type t = {
  width : int;
  height : int;
  y_min : float option;
  y_max : float option;
  title : string;
  mutable members : Series.t list;
}

let markers = [| '*'; '+'; 'o'; '#'; '@'; '%'; '&'; '=' |]

let create ?(width = 72) ?(height = 16) ?y_min ?y_max ~title () =
  if width < 8 || height < 4 then invalid_arg "Plot.create: grid too small";
  { width; height; y_min; y_max; title; members = [] }

let add t s = t.members <- t.members @ [ s ]

let data_bounds t =
  let lo = ref infinity and hi = ref neg_infinity in
  let t_lo = ref max_int and t_hi = ref 0 in
  List.iter
    (fun s ->
      Array.iter (fun v -> if v < !lo then lo := v; if v > !hi then hi := v) (Series.values s);
      Array.iter
        (fun time ->
          if time < !t_lo then t_lo := time;
          if time > !t_hi then t_hi := time)
        (Series.times s))
    t.members;
  if !lo > !hi then (0.0, 1.0, 0, 1) else (!lo, !hi, !t_lo, max !t_hi (!t_lo + 1))

let render t =
  let d_lo, d_hi, t_lo, t_hi = data_bounds t in
  let y_lo = match t.y_min with Some v -> v | None -> d_lo in
  let y_hi = match t.y_max with Some v -> v | None -> d_hi in
  let y_hi = if y_hi -. y_lo < 1.0 then y_lo +. 1.0 else y_hi in
  let grid = Array.make_matrix t.height t.width ' ' in
  let plot_row v =
    let frac = (v -. y_lo) /. (y_hi -. y_lo) in
    let r = int_of_float (Float.round (frac *. float_of_int (t.height - 1))) in
    (t.height - 1) - max 0 (min (t.height - 1) r)
  in
  let plot_col time =
    let frac = float_of_int (time - t_lo) /. float_of_int (t_hi - t_lo) in
    max 0 (min (t.width - 1) (int_of_float (Float.round (frac *. float_of_int (t.width - 1)))))
  in
  List.iteri
    (fun si s ->
      let m = markers.(si mod Array.length markers) in
      let times = Series.times s and values = Series.values s in
      (* Sample the series once per column to keep long runs readable. *)
      for col = 0 to t.width - 1 do
        let time =
          t_lo + (col * (t_hi - t_lo) / max 1 (t.width - 1))
        in
        match Series.value_at s time with
        | Some v -> grid.(plot_row v).(col) <- m
        | None -> ()
      done;
      Array.iteri (fun i time -> grid.(plot_row values.(i)).(plot_col time) <- m) times)
    t.members;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf "  %c %s" markers.(si mod Array.length markers) (Series.name s)))
    t.members;
  if t.members <> [] then Buffer.add_char buf '\n';
  for r = 0 to t.height - 1 do
    let v = y_hi -. (float_of_int r /. float_of_int (t.height - 1) *. (y_hi -. y_lo)) in
    Buffer.add_string buf (Printf.sprintf "%8.1f |" v);
    Buffer.add_string buf (String.init t.width (fun c -> grid.(r).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make 9 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make t.width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%9s %-10.1f%*s%.1f (s)\n" "" (Sim_time.to_sec t_lo)
       (t.width - 14) ""
       (Sim_time.to_sec t_hi));
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)

(** Simulated time.

    Time is represented as an integer number of microseconds since the start
    of the simulation.  An integer representation keeps event ordering exact
    (no floating-point drift over long runs) while one microsecond is far
    below every period the simulator uses (the shortest is the 1 ms dispatch
    tick). *)

type t = int
(** Microseconds since simulation start.  Always non-negative. *)

val zero : t

val of_us : int -> t
(** [of_us n] is [n] microseconds.  Raises [Invalid_argument] if [n < 0]. *)

val of_ms : int -> t
val of_sec : int -> t

val of_sec_f : float -> t
(** [of_sec_f s] rounds [s] seconds to the nearest microsecond. *)

val to_us : t -> int
val to_ms : t -> float
val to_sec : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b].  Raises [Invalid_argument] if the result would be
    negative. *)

val diff : t -> t -> t
(** [diff a b] is [abs (a - b)]. *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints a human-readable duration, e.g. ["1.500s"] or ["250us"]. *)

val to_string : t -> string

(* Timing wheel over [n_buckets] slots of [1 lsl shift] key units each, with
   a single overflow heap for keys beyond the window.

   Invariants:
   - [base] is the virtual bucket index (key lsr shift) of the window start;
     the wheel covers virtual buckets [base, base + n_buckets).
   - every overflow element has a virtual bucket >= base + n_buckets, so the
     overflow minimum is never smaller than any wheel element with a
     distinct virtual bucket.  Whenever [base] advances, overflow elements
     whose buckets entered the window are migrated into the wheel — without
     that, an element pushed later into a far wheel slot could be popped
     ahead of an earlier overflow element.
   - [base] only advances to the virtual bucket of the current global
     minimum, so a bucket the cursor has passed is empty and free to be
     reused for keys one window span later.
   - elements whose key precedes the window (possible only through caller
     misuse; the simulator never schedules in the past) are clamped into
     the bucket at [base]: each bucket is a heap ordered by the full [cmp],
     so ordering within the minimal bucket survives clamping. *)

let n_buckets = 256
let slot_mask = n_buckets - 1
let shift = 10 (* 1024 key units per bucket: one dispatch quantum at 1 us/unit *)

type 'a t = {
  key : 'a -> int;
  buckets : 'a Heap.t array;
  overflow : 'a Heap.t;
  mutable base : int; (* virtual bucket index of the window start *)
  mutable size : int; (* wheel + overflow *)
}

let create ~key ~cmp =
  {
    key;
    buckets = Array.init n_buckets (fun _ -> Heap.create ~cmp);
    overflow = Heap.create ~cmp;
    base = 0;
    size = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

(* alloc: none *)
let push t x =
  let vb = t.key x lsr shift in
  if vb - t.base >= n_buckets then Heap.push t.overflow x
  else begin
    let vb = if vb < t.base then t.base else vb in
    Heap.push t.buckets.(vb land slot_mask) x
  end;
  t.size <- t.size + 1

(* Pull every overflow element whose bucket has entered the window.  Called
   after [base] advances; migrated elements land at window offsets >= 1, so
   they can never precede the bucket the advance stopped at. *)
let migrate t =
  let horizon = t.base + n_buckets in
  while
    (not (Heap.is_empty t.overflow)) && t.key (Heap.top_exn t.overflow) lsr shift < horizon
  do
    let x = Heap.pop_exn t.overflow in
    Heap.push t.buckets.(t.key x lsr shift land slot_mask) x
  done

(* First non-empty wheel slot at or after the window start, advancing
   [base] to it; -1 when the whole wheel is empty. *)
let rec scan t i =
  if i = n_buckets then -1
  else begin
    let slot = (t.base + i) land slot_mask in
    if Heap.length t.buckets.(slot) > 0 then begin
      if i > 0 then begin
        t.base <- t.base + i;
        migrate t
      end;
      slot
    end
    else scan t (i + 1)
  end

let locate t =
  if t.size = 0 then -1
  else begin
    let slot = scan t 0 in
    if slot >= 0 then slot
    else begin
      (* Wheel drained; jump the window to the overflow minimum. *)
      t.base <- t.key (Heap.top_exn t.overflow) lsr shift;
      migrate t;
      scan t 0
    end
  end

let next_key t =
  let slot = locate t in
  if slot < 0 then max_int else t.key (Heap.top_exn t.buckets.(slot))

(* alloc: none *)
let pop_exn t =
  let slot = locate t in
  if slot < 0 then invalid_arg "Calendar.pop_exn: empty queue";
  let x = Heap.pop_exn t.buckets.(slot) in
  t.size <- t.size - 1;
  x

let filter_in_place t pred =
  Array.iter (fun h -> Heap.filter_in_place h pred) t.buckets;
  Heap.filter_in_place t.overflow pred;
  let n = ref (Heap.length t.overflow) in
  Array.iter (fun h -> n := !n + Heap.length h) t.buckets;
  t.size <- !n

let to_list t =
  Array.fold_left (fun acc h -> List.rev_append (Heap.to_list h) acc) (Heap.to_list t.overflow) t.buckets

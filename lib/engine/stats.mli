(** Descriptive statistics.

    [Running] accumulates mean/variance online (Welford) without storing
    samples; [Summary] computes percentiles from stored samples; [Histogram]
    bins values for distribution reports. *)

module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit

  val add_cell : t -> Vec.Floats.cell -> unit
  (** {!add} with the sample delivered through a caller-owned scratch cell
      (the [Series.add_cell] idiom), so a periodic recorder's hot path
      never passes a float across a call boundary where it would be
      boxed. *)

  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 with fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** [nan] when empty. *)

  val max : t -> float
  (** [nan] when empty. *)

  val ci95 : t -> float
  (** Normal-approximation half-width of the 95% confidence interval of the
      mean: [1.96 * stddev / sqrt count].  [infinity] with fewer than two
      samples — no spread information means no claim, so a caller comparing
      against a tolerance never rejects on an empty accumulator. *)

  val reset : t -> unit
  (** Forget every sample; the accumulator behaves as freshly created. *)

  val merge : t -> t -> t
  (** Combined statistics of both accumulators (Chan's parallel formula). *)
end

module Summary : sig
  type t = {
    count : int;
    mean : float;
    stddev : float;
    min : float;
    p25 : float;
    p50 : float;
    p75 : float;
    p90 : float;
    p99 : float;
    max : float;
  }

  val of_array : float array -> t
  (** @raise Invalid_argument on an empty array. *)

  val percentile : float array -> float -> float
  (** [percentile sorted p] with [p] in [\[0,100\]], by linear interpolation.
      The array must already be sorted — on unsorted input the result is
      silently meaningless; use {!quantile_of_unsorted} when sortedness is
      not guaranteed.
      @raise Invalid_argument on an empty array or [p] out of range. *)

  val quantile_of_unsorted : float array -> float -> float
  (** {!percentile} on a sorted copy of the input (the original array is
      left untouched), so it is safe on samples in arrival order.
      @raise Invalid_argument on an empty array or [p] out of range. *)

  val pp : Format.formatter -> t -> unit
end

module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  (** @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

  val add : t -> float -> unit
  (** Values outside [\[lo, hi)] are counted in saturated edge bins. *)

  val counts : t -> int array
  val total : t -> int
  val bin_bounds : t -> int -> float * float
  val pp : Format.formatter -> t -> unit
end

(** Growable float/any arrays.

    OCaml 5.1's standard library has no dynamic array (Dynarray arrived in
    5.2), and time-series sampling needs amortised O(1) append, so we provide
    a small one.  ['a t] is a generic vector; [Floats] is an unboxed float
    specialisation used on the hot sampling path. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val clear : 'a t -> unit

val reset : 'a t -> unit
(** Empty the vector but keep its storage, so refilling to a similar size
    allocates nothing.  Note: retained slots keep references to the old
    elements until overwritten; use {!clear} to release them. *)

val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val last : 'a t -> 'a option

module Floats : sig
  type t

  val create : unit -> t
  val length : t -> int
  val get : t -> int -> float
  val push : t -> float -> unit

  type cell = { mutable value : float }
  (** A reusable one-float scratch slot (flat record, so stores into it do
      not box).  Write [value], then hand the cell to {!push_cell}. *)

  val cell : unit -> cell
  (** A fresh cell initialised to [0.]. *)

  val push_cell : t -> cell -> unit
  (** [push_cell v c] appends [c.value].  Equivalent to [push v c.value]
      but guaranteed allocation-free: no float value crosses the call
      boundary, so nothing is boxed even without cross-module inlining. *)

  val clear : t -> unit

  val reset : t -> unit
  (** Empty the vector but keep its storage (floats hold no references, so
      unlike the generic [reset] nothing is retained). *)

  val to_array : t -> float array
  val iter : (float -> unit) -> t -> unit
  val sum : t -> float
  val mean : t -> float
  (** Mean of the elements; 0 for an empty vector. *)
end

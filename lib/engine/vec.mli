(** Growable float/any arrays.

    OCaml 5.1's standard library has no dynamic array (Dynarray arrived in
    5.2), and time-series sampling needs amortised O(1) append, so we provide
    a small one.  ['a t] is a generic vector; [Floats] is an unboxed float
    specialisation used on the hot sampling path. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val clear : 'a t -> unit
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val last : 'a t -> 'a option

module Floats : sig
  type t

  val create : unit -> t
  val length : t -> int
  val get : t -> int -> float
  val push : t -> float -> unit
  val clear : t -> unit
  val to_array : t -> float array
  val iter : (float -> unit) -> t -> unit
  val sum : t -> float
  val mean : t -> float
  (** Mean of the elements; 0 for an empty vector. *)
end

(** Architecture catalog.

    One entry per machine the paper uses: the DELL Optiplex 755 (the main
    testbed, §5.1), the HP Elite 8300's i7-3770 (Table 2), and the Grid5000
    processors of Table 1.  Frequency tables come from the paper's figures
    where shown (the Optiplex exposes 1600/1867/2133/2400/2667 MHz on the
    figures' right axes); the others use the processors' documented nominal
    and minimum frequencies.  Calibration exponents are fitted so that the
    model's [cf_min] equals the value published in Table 1. *)

type t = {
  name : string;
  freq_table : Frequency.table;
  calibration : Calibration.t;
  idle_watts : float;  (** package power at idle, lowest frequency *)
  max_watts : float;  (** package power fully loaded at maximum frequency *)
}

val optiplex_755 : t
(** Intel Core 2 Duo 2.66 GHz — the paper's main testbed.  [cf = 1]: §4.2
    says cf is "very close to 1" on this machine. *)

val elite_8300 : t
(** Intel Core i7-3770 3.4 GHz — Table 1 gives [cf_min = 0.86206]. *)

val xeon_x3440 : t
(** [cf_min = 0.94867]. *)

val xeon_l5420 : t
(** [cf_min = 0.99903]. *)

val xeon_e5_2620 : t
(** [cf_min = 0.80338] — the paper's example of a significantly non-linear
    architecture. *)

val opteron_6164_he : t
(** [cf_min = 0.99508]. *)

val table1_machines : t list
(** The five machines of Table 1, in the paper's column order. *)

val all : t list

val find : string -> t option
(** Case-insensitive lookup by [name]. *)

val cf_min : t -> float
(** The model's calibration factor at the minimum frequency. *)

val pp : Format.formatter -> t -> unit

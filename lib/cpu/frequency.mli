(** Processor frequency tables (P-states).

    Frequencies are in MHz.  A table is the ordered set of frequencies the
    hardware supports — what the paper calls [Freq\[\]] with [Freq\[fmax\]] the
    maximum (§4.2). *)

type mhz = int

type table

val create : mhz list -> table
(** Sorted ascending, duplicates removed.
    @raise Invalid_argument on an empty list or non-positive frequency. *)

val levels : table -> mhz array
(** Ascending. *)

val count : table -> int
val min_freq : table -> mhz
val max_freq : table -> mhz

val mem : table -> mhz -> bool

val index_of : table -> mhz -> int
(** Position of a frequency in the ascending table.
    @raise Not_found if the frequency is not a level of the table. *)

val nth : table -> int -> mhz
(** @raise Invalid_argument if out of range. *)

val ratio : table -> mhz -> float
(** [ratio t f] is [f / max_freq t] — the paper's [ratio_i].
    @raise Not_found if [f] is not a level. *)

val closest : table -> mhz -> mhz
(** The supported level nearest to the requested frequency (ties go to the
    lower level), for userspace-governor style requests. *)

val next_up : table -> mhz -> mhz
(** One level higher, saturating at the maximum. *)

val next_down : table -> mhz -> mhz
(** One level lower, saturating at the minimum. *)

val pp : Format.formatter -> table -> unit

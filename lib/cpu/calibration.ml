type t = Ideal | Exponent of float | Table of (Frequency.mhz * float) list

let ideal = Ideal

let exponent alpha =
  if alpha < 0.0 then invalid_arg "Calibration.exponent: negative exponent";
  Exponent alpha

let table entries =
  List.iter
    (fun (_, v) -> if not (v > 0.0) then invalid_arg "Calibration.table: non-positive cf")
    entries;
  Table entries

let alpha_of_cf_min ~freq_table ~cf_min =
  if not (cf_min > 0.0 && cf_min <= 1.0) then
    invalid_arg "Calibration.alpha_of_cf_min: cf_min must be in (0, 1]";
  if Frequency.count freq_table < 2 then
    invalid_arg "Calibration.alpha_of_cf_min: table needs at least two levels";
  let ratio_min = Frequency.ratio freq_table (Frequency.min_freq freq_table) in
  if cf_min = 1.0 (* lint:ignore float-eq: exact sentinel for the ideal curve *) then 0.0
  else log cf_min /. log ratio_min

let cf t freq_table f =
  let ratio = Frequency.ratio freq_table f in
  match t with
  | Ideal -> 1.0
  | Exponent alpha -> ratio ** alpha
  | Table entries -> ( match List.assoc_opt f entries with Some v -> v | None -> 1.0)

let effective_speed t freq_table f = Frequency.ratio freq_table f *. cf t freq_table f

(** Package power and energy accounting.

    The standard CMOS approximation: dynamic power scales with [V^2 * f] and
    utilization, on top of a static floor.  Voltage is modelled linear in
    frequency between [v_min] and [v_max].  The model drives the energy
    ablation experiments (the paper motivates PAS by energy but reports no
    Joule figures, so this is an extension, not a reproduction target). *)

type model

val model :
  ?v_min:float -> ?v_max:float -> idle_watts:float -> max_watts:float -> unit -> model
(** Defaults: [v_min = 0.8], [v_max = 1.2] (volts, relative scale).
    @raise Invalid_argument if [max_watts < idle_watts] or voltages are not
    positive and ordered. *)

val of_arch : Arch.t -> model

val watts : model -> Frequency.table -> freq:Frequency.mhz -> util:float -> float
(** Instantaneous package power at the given frequency and utilization
    ([util] in [\[0,1\]], clamped). *)

val voltage_ratio : model -> Frequency.table -> Frequency.mhz -> float
(** [v(freq) / v_max] — used by the SMP model to scale per-core leakage
    (static power is roughly proportional to voltage). *)

module Meter : sig
  type t

  val create : model -> Frequency.table -> t

  val record : t -> dt:Sim_time.t -> freq:Frequency.mhz -> util:float -> unit
  (** Accumulates [watts * dt] for an interval during which frequency and
      utilization were constant. *)

  val record_busy : t -> dt:Sim_time.t -> busy:Sim_time.t -> freq:Frequency.mhz -> unit
  (** {!record} with [util = busy / dt] computed inside the meter, keeping
      the per-tick float intermediates unboxed. *)

  val joules : t -> float
  val elapsed : t -> Sim_time.t
  val mean_watts : t -> float
  (** 0 before any interval is recorded. *)
end

type policy = Per_core | Per_package

(* One per frequency domain.  The record is deliberately mixed (the int
   index keeps it out of the flat-float layout) so [speed] is boxed once
   per frequency change and every per-tick read shares that box. *)
type dom_cache = { index : int; mutable speed : float }

(* The running energy total lives in an all-float sub-record so the
   periodic accumulation stores into a flat float block. *)
type energy_acc = { mutable joules : float }

type t = {
  arch : Arch.t;
  cores : int;
  policy : policy;
  domains : Cpufreq.t array; (* one per frequency domain *)
  caches : dom_cache array; (* effective speed per frequency domain *)
  power : Power.model;
  acc : energy_acc;
  mutable elapsed : Sim_time.t;
}

let freq_table t = t.arch.Arch.freq_table

let refresh_cache t cache =
  let f = Cpufreq.current t.domains.(cache.index) in
  cache.speed <- Calibration.effective_speed t.arch.Arch.calibration (freq_table t) f

let create ?(policy = Per_package) ?init_freq ~cores arch =
  if cores < 1 then invalid_arg "Smp.create: cores must be >= 1";
  let table = arch.Arch.freq_table in
  let init = match init_freq with Some f -> f | None -> Frequency.max_freq table in
  let ndomains = match policy with Per_package -> 1 | Per_core -> cores in
  let t =
    {
      arch;
      cores;
      policy;
      domains = Array.init ndomains (fun _ -> Cpufreq.create ~freq_table:table ~init);
      caches = Array.init ndomains (fun index -> { index; speed = 0.0 });
      power = Power.of_arch arch;
      acc = { joules = 0.0 };
      elapsed = Sim_time.zero;
    }
  in
  for domain = 0 to ndomains - 1 do
    refresh_cache t t.caches.(domain)
  done;
  t

let arch t = t.arch
let cores t = t.cores
let policy t = t.policy
let domain_count t = Array.length t.domains

let domain_of_core t core =
  if core < 0 || core >= t.cores then invalid_arg "Smp.domain_of_core: core out of range";
  match t.policy with Per_package -> 0 | Per_core -> core

let cores_of_domain t domain =
  if domain < 0 || domain >= domain_count t then
    invalid_arg "Smp.cores_of_domain: domain out of range";
  match t.policy with
  | Per_package -> List.init t.cores Fun.id
  | Per_core -> [ domain ]

let current_freq t ~domain =
  if domain < 0 || domain >= domain_count t then
    invalid_arg "Smp.current_freq: domain out of range";
  Cpufreq.current t.domains.(domain)

(* [Cpufreq.set] clamps the request, so the cache is rebuilt from the
   read-back frequency. *)
let set_freq t ~now ~domain freq =
  if domain < 0 || domain >= domain_count t then
    invalid_arg "Smp.set_freq: domain out of range";
  Cpufreq.set t.domains.(domain) ~now freq;
  refresh_cache t t.caches.(domain)

let freq_of_core t core = Cpufreq.current t.domains.(domain_of_core t core)
let speed_of_core t core = t.caches.(domain_of_core t core).speed

let total_capacity t =
  let sum = ref 0.0 in
  for core = 0 to t.cores - 1 do
    sum := !sum +. speed_of_core t core
  done;
  !sum

let max_capacity t = float_of_int t.cores

let transitions t =
  Array.fold_left (fun acc d -> acc + Cpufreq.transitions d) 0 t.domains

let record_power t ~dt ~core_utils =
  if Array.length core_utils <> t.cores then
    invalid_arg "Smp.record_power: one utilization per core required";
  (* Each core pays 1/cores of the package's static floor, scaled by its
     voltage (leakage is roughly proportional to V), plus 1/cores of the
     dynamic range scaled by its own V^2*f factor and utilization. *)
  let table = freq_table t in
  let per_core_static = t.arch.Arch.idle_watts /. float_of_int t.cores in
  let per_core_range =
    (t.arch.Arch.max_watts -. t.arch.Arch.idle_watts) /. float_of_int t.cores
  in
  let watts = ref 0.0 in
  for core = 0 to t.cores - 1 do
    let util = core_utils.(core) in
    let freq = freq_of_core t core in
    let full = Power.watts t.power table ~freq ~util in
    let fraction =
      if t.arch.Arch.max_watts = t.arch.Arch.idle_watts then 0.0
      else (full -. t.arch.Arch.idle_watts) /. (t.arch.Arch.max_watts -. t.arch.Arch.idle_watts)
    in
    watts :=
      !watts
      +. (per_core_static *. Power.voltage_ratio t.power table freq)
      +. (fraction *. per_core_range)
  done;
  let watts = !watts in
  t.acc.joules <- t.acc.joules +. (watts *. Sim_time.to_sec dt);
  t.elapsed <- Sim_time.add t.elapsed dt

let energy_joules t = t.acc.joules

let mean_watts t =
  let secs = Sim_time.to_sec t.elapsed in
  if secs = 0.0 (* lint:ignore float-eq: exact zero guards the division *) then 0.0
  else t.acc.joules /. secs

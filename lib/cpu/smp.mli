(** Multi-core processor with per-core or per-package DVFS domains.

    §7 of the paper lists "hyper-threading, multi-core, per-socket DVFS and
    per-core DVFS" as the factors its single-processor prototype ignores;
    this module provides the hardware model for exploring them.  A
    processor has [cores] identical cores grouped into frequency domains:

    - [Per_package]: one DVFS domain spans all cores (the i7-3770 of
      Table 2 — which is why a single saturated core pins the whole
      package at a high frequency);
    - [Per_core]: every core scales independently (modern server parts).

    Capacity conventions extend the single-core model: one core at maximum
    frequency delivers 1.0 absolute work units per second, so the host's
    total capacity is [cores] units/s and a credit of [c]% of the host
    corresponds to [c/100 * cores] units/s. *)

type policy = Per_core | Per_package

type t

val create : ?policy:policy -> ?init_freq:Frequency.mhz -> cores:int -> Arch.t -> t
(** Default policy [Per_package]; initial frequency defaults to the
    maximum.  @raise Invalid_argument if [cores < 1]. *)

val arch : t -> Arch.t
val cores : t -> int
val policy : t -> policy
val freq_table : t -> Frequency.table

val domain_count : t -> int
(** 1 under [Per_package], [cores] under [Per_core]. *)

val domain_of_core : t -> int -> int
(** @raise Invalid_argument on an out-of-range core. *)

val cores_of_domain : t -> int -> int list

val current_freq : t -> domain:int -> Frequency.mhz
val set_freq : t -> now:Sim_time.t -> domain:int -> Frequency.mhz -> unit

val freq_of_core : t -> int -> Frequency.mhz
val speed_of_core : t -> int -> float
(** [ratio * cf] of the core's current frequency. *)

val total_capacity : t -> float
(** Sum of all cores' current speeds, in absolute units/s. *)

val max_capacity : t -> float
(** [float cores] — the capacity with every domain at maximum frequency. *)

val transitions : t -> int
(** Total frequency transitions across all domains. *)

val record_power : t -> dt:Sim_time.t -> core_utils:float array -> unit
(** Accounts energy for an interval; [core_utils.(i)] is core [i]'s busy
    fraction.  Power is the per-core model evaluated at each core's
    frequency, with the static floor paid once per package.
    @raise Invalid_argument if the array length differs from [cores]. *)

val energy_joules : t -> float
val mean_watts : t -> float

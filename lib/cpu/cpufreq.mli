(** The cpufreq driver (paper §2.2).

    Governors do not touch the hardware directly: they call into cpufreq,
    which validates the request against the P-state table, performs the
    switch and keeps the statistics Linux exposes under
    [cpufreq/stats] — per-state residency and the transition count. *)

type t

val create : freq_table:Frequency.table -> init:Frequency.mhz -> t
(** @raise Invalid_argument if [init] is not a level of the table. *)

val freq_table : t -> Frequency.table

val current : t -> Frequency.mhz

val set : t -> now:Sim_time.t -> Frequency.mhz -> unit
(** Switches to the requested level.  Requests for the current frequency are
    no-ops (not counted as transitions).  A frequency that is not an exact
    level is clamped to the closest supported one, like the kernel does.
    @raise Invalid_argument if [now] precedes the previous update. *)

val transitions : t -> int

val residency : t -> now:Sim_time.t -> (Frequency.mhz * Sim_time.t) list
(** Total time spent at each level up to [now], ascending frequency order.
    The sum equals [now]. *)

val residency_ratio : t -> now:Sim_time.t -> Frequency.mhz -> float
(** Fraction of elapsed time spent at the given level; 0 at time zero. *)

val mean_frequency : t -> now:Sim_time.t -> float
(** Residency-weighted average frequency in MHz; the current frequency at
    time zero. *)

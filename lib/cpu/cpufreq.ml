type t = {
  freq_table : Frequency.table;
  mutable current : Frequency.mhz;
  mutable transitions : int;
  mutable last_update : Sim_time.t;
  residency : Sim_time.t array; (* indexed like the ascending level table *)
}

let create ~freq_table ~init =
  if not (Frequency.mem freq_table init) then
    invalid_arg "Cpufreq.create: init is not a supported level";
  {
    freq_table;
    current = init;
    transitions = 0;
    last_update = Sim_time.zero;
    residency = Array.make (Frequency.count freq_table) Sim_time.zero;
  }

let freq_table t = t.freq_table
let current t = t.current

let account t ~now =
  if Sim_time.compare now t.last_update < 0 then
    invalid_arg "Cpufreq: time moved backwards";
  let i = Frequency.index_of t.freq_table t.current in
  t.residency.(i) <- Sim_time.add t.residency.(i) (Sim_time.sub now t.last_update);
  t.last_update <- now

let set t ~now freq =
  let freq = Frequency.closest t.freq_table freq in
  account t ~now;
  if freq <> t.current then begin
    t.current <- freq;
    t.transitions <- t.transitions + 1
  end

let transitions t = t.transitions

let residency t ~now =
  let snapshot = Array.copy t.residency in
  let i = Frequency.index_of t.freq_table t.current in
  snapshot.(i) <- Sim_time.add snapshot.(i) (Sim_time.sub now t.last_update);
  Array.to_list (Array.mapi (fun j d -> (Frequency.nth t.freq_table j, d)) snapshot)

let residency_ratio t ~now freq =
  if Sim_time.equal now Sim_time.zero then 0.0
  else begin
    let d = List.assoc freq (residency t ~now) in
    Sim_time.to_sec d /. Sim_time.to_sec now
  end

let mean_frequency t ~now =
  if Sim_time.equal now Sim_time.zero then float_of_int t.current
  else begin
    let total = Sim_time.to_sec now in
    List.fold_left
      (fun acc (f, d) -> acc +. (float_of_int f *. Sim_time.to_sec d /. total))
      0.0 (residency t ~now)
  end

(** A simulated processor: architecture + cpufreq driver + energy meter.

    Work is measured in {e absolute seconds}: one unit is what the processor
    completes in one second of wall time at its maximum frequency.  At a
    lower frequency [f] the processor delivers [ratio_f * cf_f] units per
    second — the paper's ground-truth performance law (eq. (1)/(2)). *)

type t

val create : ?init_freq:Frequency.mhz -> Arch.t -> t
(** The initial frequency defaults to the architecture's maximum. *)

val arch : t -> Arch.t
val freq_table : t -> Frequency.table
val cpufreq : t -> Cpufreq.t

val current_freq : t -> Frequency.mhz
val set_freq : t -> now:Sim_time.t -> Frequency.mhz -> unit

val ratio : t -> float
(** [current / max]. *)

val cf : t -> float
(** Calibration factor at the current frequency. *)

val cf_at : t -> Frequency.mhz -> float
val ratio_at : t -> Frequency.mhz -> float

val speed : t -> float
(** Absolute work units delivered per second at the current frequency:
    [ratio * cf]. *)

val speed_at : t -> Frequency.mhz -> float

val work_in : t -> Sim_time.t -> float
(** Absolute work completed by running flat-out for the given duration at
    the current frequency. *)

val record_power : t -> dt:Sim_time.t -> util:float -> unit
(** Accounts energy for an interval at the current frequency. *)

val record_busy : t -> dt:Sim_time.t -> busy:Sim_time.t -> unit
(** [record_power] with the utilization derived as [busy / dt] inside the
    meter, so the per-tick accounting path passes no freshly boxed float. *)

val energy_joules : t -> float
val mean_watts : t -> float

type model = { v_min : float; v_max : float; idle_watts : float; max_watts : float }

let model ?(v_min = 0.8) ?(v_max = 1.2) ~idle_watts ~max_watts () =
  if not (v_min > 0.0 && v_max >= v_min) then invalid_arg "Power.model: bad voltage range";
  if max_watts < idle_watts || idle_watts < 0.0 then
    invalid_arg "Power.model: bad power range";
  { v_min; v_max; idle_watts; max_watts }

let of_arch (a : Arch.t) = model ~idle_watts:a.Arch.idle_watts ~max_watts:a.Arch.max_watts ()

(* [voltage] and [watts] are inlined into the per-tick meter paths so their
   float intermediates stay in registers instead of boxing at the call
   boundary. *)
let[@inline always] voltage m table freq =
  let fmin = float_of_int (Frequency.min_freq table)
  and fmax = float_of_int (Frequency.max_freq table) in
  if fmax = fmin then m.v_max
  else m.v_min +. ((m.v_max -. m.v_min) *. (float_of_int freq -. fmin) /. (fmax -. fmin))

let[@inline always] watts m table ~freq ~util =
  (* Clamp with plain comparisons: [Float.max]/[Float.min] are out-of-line
     calls that box the (freshly computed) utilization on every tick. *)
  let util = if util < 0.0 then 0.0 else if util > 1.0 then 1.0 else util in
  let v = voltage m table freq in
  let dyn_scale =
    v *. v *. float_of_int freq /. (m.v_max *. m.v_max *. float_of_int (Frequency.max_freq table))
  in
  m.idle_watts +. ((m.max_watts -. m.idle_watts) *. util *. dyn_scale)

let voltage_ratio m table freq = voltage m table freq /. m.v_max

(* Local copy of [Sim_time.to_sec]'s expression ([to_us] is the identity on
   the int representation, so the result is bit-identical).  Keeps the float
   conversion in this compilation unit: the cross-library call would return
   a freshly boxed float on every metering tick when cross-module inlining
   is off (dev builds compile with -opaque). *)
let[@inline always] sec_of t = float_of_int (Sim_time.to_us t) /. 1e6

module Meter = struct
  (* The running energy total lives in an all-float sub-record: stores into
     a flat float block are unboxed, so the per-tick accumulation allocates
     nothing. *)
  type acc = { mutable joules : float }

  type t = {
    model : model;
    table : Frequency.table;
    acc : acc;
    mutable elapsed : Sim_time.t;
  }

  let create model table =
    { model; table; acc = { joules = 0.0 }; elapsed = Sim_time.zero }

  let record t ~dt ~freq ~util =
    let p = watts t.model t.table ~freq ~util in
    t.acc.joules <- t.acc.joules +. (p *. sec_of dt);
    t.elapsed <- Sim_time.add t.elapsed dt

  let record_busy t ~dt ~busy ~freq =
    let util = sec_of busy /. sec_of dt in
    let p = watts t.model t.table ~freq ~util in
    t.acc.joules <- t.acc.joules +. (p *. sec_of dt);
    t.elapsed <- Sim_time.add t.elapsed dt

  let joules t = t.acc.joules
  let elapsed t = t.elapsed

  let mean_watts t =
    let secs = Sim_time.to_sec t.elapsed in
    if secs = 0.0 (* lint:ignore float-eq: exact zero guards the division *) then 0.0
    else t.acc.joules /. secs
end

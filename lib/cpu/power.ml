type model = { v_min : float; v_max : float; idle_watts : float; max_watts : float }

let model ?(v_min = 0.8) ?(v_max = 1.2) ~idle_watts ~max_watts () =
  if not (v_min > 0.0 && v_max >= v_min) then invalid_arg "Power.model: bad voltage range";
  if max_watts < idle_watts || idle_watts < 0.0 then
    invalid_arg "Power.model: bad power range";
  { v_min; v_max; idle_watts; max_watts }

let of_arch (a : Arch.t) = model ~idle_watts:a.Arch.idle_watts ~max_watts:a.Arch.max_watts ()

let voltage m table freq =
  let fmin = float_of_int (Frequency.min_freq table)
  and fmax = float_of_int (Frequency.max_freq table) in
  if fmax = fmin then m.v_max
  else m.v_min +. ((m.v_max -. m.v_min) *. (float_of_int freq -. fmin) /. (fmax -. fmin))

let watts m table ~freq ~util =
  let util = Float.max 0.0 (Float.min 1.0 util) in
  let v = voltage m table freq in
  let dyn_scale =
    v *. v *. float_of_int freq /. (m.v_max *. m.v_max *. float_of_int (Frequency.max_freq table))
  in
  m.idle_watts +. ((m.max_watts -. m.idle_watts) *. util *. dyn_scale)

let voltage_ratio m table freq = voltage m table freq /. m.v_max

module Meter = struct
  type t = {
    model : model;
    table : Frequency.table;
    mutable joules : float;
    mutable elapsed : Sim_time.t;
  }

  let create model table = { model; table; joules = 0.0; elapsed = Sim_time.zero }

  let record t ~dt ~freq ~util =
    let p = watts t.model t.table ~freq ~util in
    t.joules <- t.joules +. (p *. Sim_time.to_sec dt);
    t.elapsed <- Sim_time.add t.elapsed dt

  let joules t = t.joules
  let elapsed t = t.elapsed

  let mean_watts t =
    let secs = Sim_time.to_sec t.elapsed in
    if secs = 0.0 (* lint:ignore float-eq: exact zero guards the division *) then 0.0
    else t.joules /. secs
end

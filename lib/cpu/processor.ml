(* [cached_ratio]/[cached_cf]/[cached_speed] are derived from the current
   frequency and refreshed on every [set_freq].  Caching them as mutable
   fields of this mixed record means each float is boxed once per frequency
   change; the dispatch hot path then reads the shared box by pointer
   instead of recomputing (and re-boxing) the performance law every tick. *)
type t = {
  arch : Arch.t;
  cpufreq : Cpufreq.t;
  meter : Power.Meter.t;
  mutable cached_ratio : float;
  mutable cached_cf : float;
  mutable cached_speed : float;
}

let freq_table t = t.arch.Arch.freq_table
let current_freq t = Cpufreq.current t.cpufreq
let ratio_at t f = Frequency.ratio (freq_table t) f
let cf_at t f = Calibration.cf t.arch.Arch.calibration (freq_table t) f
let speed_at t f = ratio_at t f *. cf_at t f

let refresh_caches t =
  let f = current_freq t in
  t.cached_ratio <- ratio_at t f;
  t.cached_cf <- cf_at t f;
  t.cached_speed <- speed_at t f

let create ?init_freq arch =
  let table = arch.Arch.freq_table in
  let init = match init_freq with Some f -> f | None -> Frequency.max_freq table in
  let t =
    {
      arch;
      cpufreq = Cpufreq.create ~freq_table:table ~init;
      meter = Power.Meter.create (Power.of_arch arch) table;
      cached_ratio = 0.0;
      cached_cf = 0.0;
      cached_speed = 0.0;
    }
  in
  refresh_caches t;
  t

let arch t = t.arch
let cpufreq t = t.cpufreq

(* [Cpufreq.set] clamps the request to the table, so the caches must be
   rebuilt from the read-back frequency, never from the argument. *)
let set_freq t ~now f =
  Cpufreq.set t.cpufreq ~now f;
  refresh_caches t

let ratio t = t.cached_ratio
let cf t = t.cached_cf
let speed t = t.cached_speed
let work_in t dt = speed t *. Sim_time.to_sec dt

let record_power t ~dt ~util =
  Power.Meter.record t.meter ~dt ~freq:(current_freq t) ~util

let record_busy t ~dt ~busy =
  Power.Meter.record_busy t.meter ~dt ~busy ~freq:(current_freq t)

let energy_joules t = Power.Meter.joules t.meter
let mean_watts t = Power.Meter.mean_watts t.meter

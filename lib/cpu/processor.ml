type t = { arch : Arch.t; cpufreq : Cpufreq.t; meter : Power.Meter.t }

let create ?init_freq arch =
  let table = arch.Arch.freq_table in
  let init = match init_freq with Some f -> f | None -> Frequency.max_freq table in
  {
    arch;
    cpufreq = Cpufreq.create ~freq_table:table ~init;
    meter = Power.Meter.create (Power.of_arch arch) table;
  }

let arch t = t.arch
let freq_table t = t.arch.Arch.freq_table
let cpufreq t = t.cpufreq
let current_freq t = Cpufreq.current t.cpufreq
let set_freq t ~now f = Cpufreq.set t.cpufreq ~now f
let ratio_at t f = Frequency.ratio (freq_table t) f
let cf_at t f = Calibration.cf t.arch.Arch.calibration (freq_table t) f
let ratio t = ratio_at t (current_freq t)
let cf t = cf_at t (current_freq t)
let speed_at t f = ratio_at t f *. cf_at t f
let speed t = speed_at t (current_freq t)
let work_in t dt = speed t *. Sim_time.to_sec dt

let record_power t ~dt ~util =
  Power.Meter.record t.meter ~dt ~freq:(current_freq t) ~util

let energy_joules t = Power.Meter.joules t.meter
let mean_watts t = Power.Meter.mean_watts t.meter

type t = {
  name : string;
  freq_table : Frequency.table;
  calibration : Calibration.t;
  idle_watts : float;
  max_watts : float;
}

let fitted name freqs cf_min ~idle_watts ~max_watts =
  let freq_table = Frequency.create freqs in
  let calibration =
    if cf_min >= 1.0 then Calibration.ideal
    else Calibration.exponent (Calibration.alpha_of_cf_min ~freq_table ~cf_min)
  in
  { name; freq_table; calibration; idle_watts; max_watts }

let optiplex_755 =
  fitted "Intel Core 2 Duo E6750 (Optiplex 755)"
    [ 1600; 1867; 2133; 2400; 2667 ]
    1.0 ~idle_watts:45.0 ~max_watts:95.0

let elite_8300 =
  fitted "Intel Core i7-3770 (Elite 8300)"
    [ 1600; 2000; 2400; 2800; 3100; 3400 ]
    0.86206 ~idle_watts:30.0 ~max_watts:95.0

let xeon_x3440 =
  fitted "Intel Xeon X3440" [ 1200; 2533 ] 0.94867 ~idle_watts:40.0 ~max_watts:110.0

let xeon_l5420 =
  fitted "Intel Xeon L5420" [ 2000; 2500 ] 0.99903 ~idle_watts:35.0 ~max_watts:80.0

let xeon_e5_2620 =
  fitted "Intel Xeon E5-2620" [ 1200; 2000 ] 0.80338 ~idle_watts:45.0 ~max_watts:115.0

let opteron_6164_he =
  fitted "AMD Opteron 6164 HE" [ 800; 1700 ] 0.99508 ~idle_watts:40.0 ~max_watts:105.0

let table1_machines = [ xeon_x3440; xeon_l5420; xeon_e5_2620; opteron_6164_he; elite_8300 ]
let all = optiplex_755 :: table1_machines

let find name =
  let norm s = String.lowercase_ascii s in
  List.find_opt (fun a -> String.equal (norm a.name) (norm name)) all

let cf_min t = Calibration.cf t.calibration t.freq_table (Frequency.min_freq t.freq_table)

let pp ppf t =
  Format.fprintf ppf "%s %a cf_min=%.5f" t.name Frequency.pp t.freq_table (cf_min t)

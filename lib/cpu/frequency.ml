type mhz = int
type table = { levels : mhz array }

let create freqs =
  if freqs = [] then invalid_arg "Frequency.create: empty table";
  List.iter
    (fun f -> if f <= 0 then invalid_arg "Frequency.create: non-positive frequency")
    freqs;
  let levels = List.sort_uniq Int.compare freqs in
  { levels = Array.of_list levels }

let levels t = Array.copy t.levels
let count t = Array.length t.levels
let min_freq t = t.levels.(0)
let max_freq t = t.levels.(Array.length t.levels - 1)
let mem t f = Array.exists (Int.equal f) t.levels

let index_of t f =
  let rec loop i =
    if i >= Array.length t.levels then raise Not_found
    else if t.levels.(i) = f then i
    else loop (i + 1)
  in
  loop 0

let nth t i =
  if i < 0 || i >= Array.length t.levels then invalid_arg "Frequency.nth: out of range";
  t.levels.(i)

let ratio t f =
  if not (mem t f) then raise Not_found;
  float_of_int f /. float_of_int (max_freq t)

let closest t f =
  let best = ref t.levels.(0) in
  Array.iter
    (fun level ->
      let d = abs (level - f) and bd = abs (!best - f) in
      if d < bd || (d = bd && level < !best) then best := level)
    t.levels;
  !best

let next_up t f =
  let i = index_of t f in
  t.levels.(min (i + 1) (Array.length t.levels - 1))

let next_down t f =
  let i = index_of t f in
  t.levels.(max (i - 1) 0)

let pp ppf t =
  Format.fprintf ppf "{%a} MHz"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    t.levels

(** The [cf_i] calibration factor (paper §4.2, eq. (1)).

    The paper models performance as proportional to frequency up to a
    per-frequency, per-architecture correction [cf_i] ("very close to 1" on
    most machines, but 0.80 on a Xeon E5-2620).  [cf_i < 1] means the
    processor is *slower* at frequency [i] than linear scaling predicts —
    typically because uncore/memory clocks scale too.

    Three models are provided:
    - [ideal]: [cf = 1] everywhere (pure linear scaling);
    - [exponent alpha]: [cf_i = ratio_i ** alpha], a one-parameter law that
      matches the published per-architecture [cf_min] values when [alpha] is
      fitted with {!alpha_of_cf_min};
    - [table]: explicit per-frequency values, for measured data. *)

type t

val ideal : t

val exponent : float -> t
(** @raise Invalid_argument on a negative exponent. *)

val table : (Frequency.mhz * float) list -> t
(** Frequencies absent from the list fall back to [cf = 1].
    @raise Invalid_argument on a non-positive [cf] value. *)

val alpha_of_cf_min : freq_table:Frequency.table -> cf_min:float -> float
(** The exponent such that [exponent alpha] yields exactly [cf_min] at the
    table's minimum frequency.
    @raise Invalid_argument if [cf_min] is not in (0, 1], or the table has a
    single level. *)

val cf : t -> Frequency.table -> Frequency.mhz -> float
(** [cf t table f] is [cf_i] for frequency [f].  Always 1.0 at the maximum
    frequency.  @raise Not_found if [f] is not a level of [table]. *)

val effective_speed : t -> Frequency.table -> Frequency.mhz -> float
(** [ratio_i *. cf_i] — the capacity of the processor at [f] relative to its
    capacity at the maximum frequency.  This is the ground-truth performance
    law of the simulated hardware. *)

module Processor = Cpu_model.Processor

type t = {
  processor : Processor.t;
  period : Sim_time.t;
  mutable pending : Cpu_model.Frequency.mhz option;
}

let create ?(period = Sim_time.of_ms 10) processor = { processor; period; pending = None }

let governor t =
  Governor.make ~name:"userspace" ~period:t.period ~observe:(fun ~now ~busy_fraction:_ ->
      match t.pending with
      | Some f ->
          Processor.set_freq t.processor ~now f;
          t.pending <- None;
          Governor.check_freq ~name:"userspace" t.processor ~now
      | None -> ())

let request t f = t.pending <- Some f
let requested t = t.pending

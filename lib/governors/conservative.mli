(** The conservative governor (§2.2): "decreases or increases frequency by
    one level through a range of values supported by the hardware, according
    to the CPU load".  One threshold to climb, a lower one to descend —
    never a jump.  Also used as the VMware-like profile in the Table 2
    platform models (a power manager that follows load sluggishly and
    therefore degrades a capped VM less than stock ondemand). *)

val create :
  ?period:Sim_time.t ->
  ?up_threshold:float ->
  ?down_threshold:float ->
  Cpu_model.Processor.t ->
  Governor.t
(** Defaults: [period] 80 ms, [up_threshold] 0.8, [down_threshold] 0.3.
    @raise Invalid_argument unless [0 < down_threshold < up_threshold <= 1]. *)

module Processor = Cpu_model.Processor
module Frequency = Cpu_model.Frequency

type state = {
  window : float array; (* ring of the last [n] utilization samples *)
  mutable filled : int;
  mutable next : int;
  mutable agreement : int; (* consecutive evaluations requesting [wanted] *)
  mutable wanted : Frequency.mhz;
}

let create ?(period = Sim_time.of_ms 100) ?(up_threshold = 0.8) ?(stability = 3) processor =
  if not (up_threshold > 0.0 && up_threshold <= 1.0) then
    invalid_arg "Stable_ondemand.create: up_threshold out of (0, 1]";
  if stability < 1 then invalid_arg "Stable_ondemand.create: stability must be >= 1";
  let table = Processor.freq_table processor in
  let st =
    {
      window = Array.make 3 0.0;
      filled = 0;
      next = 0;
      agreement = 0;
      wanted = Processor.current_freq processor;
    }
  in
  let mean_util () =
    let n = max 1 st.filled in
    let sum = ref 0.0 in
    for i = 0 to st.filled - 1 do
      sum := !sum +. st.window.(i)
    done;
    !sum /. float_of_int n
  in
  let desired_level absolute_load =
    let levels = Frequency.levels table in
    let chosen = ref (Frequency.max_freq table) in
    (try
       Array.iter
         (fun f ->
           if Processor.speed_at processor f *. up_threshold >= absolute_load then begin
             chosen := f;
             raise Exit
           end)
         levels
     with Exit -> ());
    !chosen
  in
  let observe ~now ~busy_fraction =
    st.window.(st.next) <- busy_fraction;
    st.next <- (st.next + 1) mod Array.length st.window;
    if st.filled < Array.length st.window then st.filled <- st.filled + 1;
    let absolute_load = mean_util () *. Processor.speed processor in
    let desired = desired_level absolute_load in
    let current = Processor.current_freq processor in
    if desired = current then begin
      st.agreement <- 0;
      st.wanted <- current
    end
    else begin
      if desired = st.wanted then st.agreement <- st.agreement + 1
      else begin
        st.wanted <- desired;
        st.agreement <- 1
      end;
      if st.agreement >= stability then begin
        let step =
          if desired > current then Frequency.next_up table current
          else Frequency.next_down table current
        in
        Processor.set_freq processor ~now step;
        st.agreement <- 0
      end
    end;
    Governor.check_freq ~name:"stable-ondemand" processor ~now
  in
  Governor.make ~name:"stable-ondemand" ~period ~observe

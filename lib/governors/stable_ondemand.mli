(** The authors' ondemand governor (§5.4).

    "We implemented our own (ondemand) governor, which is less aggressive
    and more stable, and consequently saves less energy" — the governor used
    for every figure after Fig. 3.  Stability comes from three ingredients:

    - a sampling window (100 ms) longer than the VM scheduler's accounting
      period, so capped-VM burstiness is averaged away;
    - the utilization estimate is the mean of the last three windows (the
      same 3-sample averaging footnote 5 applies to the PAS global load);
    - a target level must be requested for [stability] consecutive
      evaluations before the governor moves, and it moves one P-state per
      step, never jumping. *)

val create :
  ?period:Sim_time.t ->
  ?up_threshold:float ->
  ?stability:int ->
  Cpu_model.Processor.t ->
  Governor.t
(** Defaults: [period] 100 ms, [up_threshold] 0.8, [stability] 3.
    @raise Invalid_argument if the threshold is outside (0, 1] or
    [stability < 1]. *)

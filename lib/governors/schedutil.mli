(** A schedutil-style governor.

    Linux's successor to ondemand (not yet existing at the paper's time,
    included for the governor inventory and the comparison example): no
    thresholds, the target frequency is simply proportional to the
    frequency-invariant utilization with a fixed headroom margin —
    [f_target = margin * util_abs * f_max], rounded up to the next
    supported P-state.  Reacts instantly in both directions, which places
    it between the stock ondemand (aggressive, oscillation-prone) and the
    authors' stable governor on the Fig. 3/Fig. 4 spectrum. *)

val create :
  ?period:Sim_time.t -> ?margin:float -> Cpu_model.Processor.t -> Governor.t
(** Defaults: [period] 10 ms, [margin] 1.25 (Linux's "util + util/4").
    @raise Invalid_argument if [margin < 1]. *)

(** The stock ondemand governor.

    §5.4 of the paper observes that "the default Ondemand governor is quite
    aggressive and unstable" (Fig. 3).  The aggressiveness comes from its
    short sampling window (Linux derives it from the transition latency; a
    few milliseconds on the paper-era hardware) combined with its two-sided
    rule evaluated on every window in isolation:

    - if the window's utilization exceeds [up_threshold], jump straight to
      the maximum frequency;
    - otherwise drop to the lowest frequency that would keep the observed
      absolute load below [up_threshold].

    Because the sampling window is shorter than the VM scheduler's 30 ms
    accounting period, a capped VM that burns its whole allowance in a burst
    at the start of each period makes successive windows read ~100 % then
    ~0 %, and the governor oscillates between the extreme frequencies —
    exactly the saw-tooth of Fig. 3. *)

val create :
  ?period:Sim_time.t ->
  ?up_threshold:float ->
  ?floor:Cpu_model.Frequency.mhz ->
  Cpu_model.Processor.t ->
  Governor.t
(** Defaults: [period] 5 ms, [up_threshold] 0.8, no [floor].

    [floor] models platform power plans (Hyper-V, VMware ESXi "balanced")
    that never descend below a minimum P-state: the governor's choice is
    clamped to at least that level.  A capped VM's served load shrinks with
    the frequency, so a floorless governor ratchets all the way down; the
    floor is what differentiates the platforms' degradation in Table 2.
    @raise Invalid_argument if the threshold is outside (0, 1]. *)

module Processor = Cpu_model.Processor
module Frequency = Cpu_model.Frequency

(* Lowest frequency whose delivered speed keeps the given absolute load
   under the threshold; the maximum frequency if none does. *)
let lowest_sufficient processor ~absolute_load ~threshold =
  let table = Processor.freq_table processor in
  let levels = Frequency.levels table in
  let chosen = ref (Frequency.max_freq table) in
  (try
     Array.iter
       (fun f ->
         if Processor.speed_at processor f *. threshold >= absolute_load then begin
           chosen := f;
           raise Exit
         end)
       levels
   with Exit -> ());
  !chosen

let create ?(period = Sim_time.of_ms 5) ?(up_threshold = 0.8) ?floor processor =
  if not (up_threshold > 0.0 && up_threshold <= 1.0) then
    invalid_arg "Ondemand.create: up_threshold out of (0, 1]";
  let table = Processor.freq_table processor in
  let clamp f = match floor with None -> f | Some fl -> max f (Frequency.closest table fl) in
  let observe ~now ~busy_fraction =
    if busy_fraction >= up_threshold then
      Processor.set_freq processor ~now (Frequency.max_freq table)
    else begin
      (* Convert the windowed utilization into an absolute load before
         choosing the target level, like cpufreq's frequency-invariant
         load tracking. *)
      let absolute_load = busy_fraction *. Processor.speed processor in
      Processor.set_freq processor ~now
        (clamp (lowest_sufficient processor ~absolute_load ~threshold:up_threshold))
    end;
    Governor.check_freq ~name:"ondemand" processor ~now
  in
  Governor.make ~name:"ondemand" ~period ~observe

(** The userspace governor (§2.2): "allows user applications to manually set
    the processor frequency".  The PAS user-level implementation variants
    (§4.1) drive the frequency through this governor. *)

type t

val create : ?period:Sim_time.t -> Cpu_model.Processor.t -> t
(** Default period 10 ms — how often a pending request is applied. *)

val governor : t -> Governor.t

val request : t -> Cpu_model.Frequency.mhz -> unit
(** Asks for a frequency; applied (clamped to the closest supported level)
    at the next observation — modelling the user/kernel boundary crossing. *)

val requested : t -> Cpu_model.Frequency.mhz option
(** The currently pending request, if any. *)

(** DVFS governors (paper §2.2).

    A governor samples processor utilization periodically and sets the
    frequency through the cpufreq driver.  The host feeds it the busy
    fraction of each elapsed sampling window.

    This module defines the governor type and the two trivial policies;
    {!Ondemand}, {!Stable_ondemand}, {!Conservative} and {!Userspace}
    implement the rest. *)

type t = {
  name : string;
  period : Sim_time.t;  (** sampling window length *)
  observe : now:Sim_time.t -> busy_fraction:float -> unit;
      (** Called by the host at the end of every window with the fraction
          of that window the processor was busy, in [\[0, 1\]]. *)
}

val make :
  name:string ->
  period:Sim_time.t ->
  observe:(now:Sim_time.t -> busy_fraction:float -> unit) ->
  t
(** @raise Invalid_argument on a zero period.  The returned governor checks
    the sanitizer invariant [busy_fraction] ∈ [0, 1] before delegating to
    [observe] (a no-op unless {!Analysis.enable} was called). *)

val check_freq : name:string -> Cpu_model.Processor.t -> now:Sim_time.t -> unit
(** Sanitizer hook for governor implementations: asserts that the processor
    currently sits on a level of its P-state table.  A no-op while the
    sanitizer is disabled. *)

val performance : Cpu_model.Processor.t -> t
(** Pins the maximum frequency (§2.2). *)

val powersave : Cpu_model.Processor.t -> t
(** Pins the minimum frequency. *)

module Processor = Cpu_model.Processor
module Frequency = Cpu_model.Frequency

let create ?(period = Sim_time.of_ms 10) ?(margin = 1.25) processor =
  if margin < 1.0 then invalid_arg "Schedutil.create: margin must be >= 1";
  let table = Processor.freq_table processor in
  let observe ~now ~busy_fraction =
    (* Frequency-invariant utilization: busy time weighted by the current
       speed, relative to the maximum-frequency capacity. *)
    let util_abs = busy_fraction *. Processor.speed processor in
    let target = margin *. util_abs *. float_of_int (Frequency.max_freq table) in
    let levels = Frequency.levels table in
    let chosen = ref (Frequency.max_freq table) in
    (try
       Array.iter
         (fun f ->
           if float_of_int f >= target then begin
             chosen := f;
             raise Exit
           end)
         levels
     with Exit -> ());
    Processor.set_freq processor ~now !chosen;
    Governor.check_freq ~name:"schedutil" processor ~now
  in
  Governor.make ~name:"schedutil" ~period ~observe

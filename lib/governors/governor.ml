module Processor = Cpu_model.Processor
module Frequency = Cpu_model.Frequency

let inv_busy_fraction =
  Analysis.Invariant.register "governor.busy-fraction"
    ~doc:"utilization samples handed to a governor fall in [0, 1]"

let inv_freq_member =
  Analysis.Invariant.register "governor.freq-in-table" ~equation:"Listing 1.1"
    ~doc:"a governor decision leaves the processor on a P-state table level"

type t = {
  name : string;
  period : Sim_time.t;
  observe : now:Sim_time.t -> busy_fraction:float -> unit;
}

(* Sanitizer hook shared by every governor: call after a frequency decision
   to assert the processor still sits on a table level. *)
let check_freq ~name processor ~now =
  if Analysis.Config.enabled () then begin
    let freq = Processor.current_freq processor in
    Analysis.Check.run inv_freq_member ~time_s:(Sim_time.to_sec now) ~component:name
      ~detail:(fun () -> Printf.sprintf "frequency %d MHz is not a table level" freq)
      (Frequency.mem (Processor.freq_table processor) freq)
  end

let make ~name ~period ~observe =
  if Sim_time.equal period Sim_time.zero then invalid_arg "Governor.make: zero period";
  (* Every governor shares the [0, 1] busy-fraction invariant, so it is
     enforced here rather than in each implementation. *)
  let observe ~now ~busy_fraction =
    if Analysis.Config.enabled () then
      Analysis.Check.within inv_busy_fraction ~time_s:(Sim_time.to_sec now) ~component:name
        ~what:"busy_fraction" ~lo:0.0 ~hi:1.0 busy_fraction;
    observe ~now ~busy_fraction
  in
  { name; period; observe }

let pinned name processor target =
  make ~name ~period:(Sim_time.of_sec 1) ~observe:(fun ~now ~busy_fraction:_ ->
      Processor.set_freq processor ~now target)

let performance processor =
  pinned "performance" processor (Frequency.max_freq (Processor.freq_table processor))

let powersave processor =
  pinned "powersave" processor (Frequency.min_freq (Processor.freq_table processor))

module Processor = Cpu_model.Processor
module Frequency = Cpu_model.Frequency

type t = {
  name : string;
  period : Sim_time.t;
  observe : now:Sim_time.t -> busy_fraction:float -> unit;
}

let make ~name ~period ~observe =
  if Sim_time.equal period Sim_time.zero then invalid_arg "Governor.make: zero period";
  { name; period; observe }

let pinned name processor target =
  make ~name ~period:(Sim_time.of_sec 1) ~observe:(fun ~now ~busy_fraction:_ ->
      Processor.set_freq processor ~now target)

let performance processor =
  pinned "performance" processor (Frequency.max_freq (Processor.freq_table processor))

let powersave processor =
  pinned "powersave" processor (Frequency.min_freq (Processor.freq_table processor))

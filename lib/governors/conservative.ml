module Processor = Cpu_model.Processor
module Frequency = Cpu_model.Frequency

let create ?(period = Sim_time.of_ms 80) ?(up_threshold = 0.8) ?(down_threshold = 0.3)
    processor =
  if not (0.0 < down_threshold && down_threshold < up_threshold && up_threshold <= 1.0) then
    invalid_arg "Conservative.create: thresholds must satisfy 0 < down < up <= 1";
  let table = Processor.freq_table processor in
  let observe ~now ~busy_fraction =
    let current = Processor.current_freq processor in
    if busy_fraction > up_threshold then
      Processor.set_freq processor ~now (Frequency.next_up table current)
    else if busy_fraction < down_threshold then
      Processor.set_freq processor ~now (Frequency.next_down table current);
    Governor.check_freq ~name:"conservative" processor ~now
  in
  Governor.make ~name:"conservative" ~period ~observe

(** An [xl.cfg]-style textual configuration for simulated hosts.

    Xen administrators describe domains in small key=value config files;
    this module provides the equivalent for the simulator so scenarios can
    be written, versioned and replayed without recompiling.  Format:

    {v
# comments start with '#'
host arch=optiplex-755 scheduler=pas governor=none duration=600

domain name=Dom0  credit=10 dom0=true workload=idle
domain name=V20   credit=20 workload=web rate=0.2 from=50 until=500
domain name=V70   credit=70 workload=pi  work=100 duty=0.5
    v}

    Directives: one [host] line (anywhere; defaults apply if absent) and
    one [domain] line per domain.  Unknown keys are errors — typos in a
    config should never be silently ignored.

    Keys: [host]: [arch] (a {!Cpu_model.Arch.find} name or the shorthands
    [optiplex-755] / [elite-8300]), [scheduler] ([credit]|[sedf]|[credit2]|
    [pas]), [governor] ([performance]|[powersave]|[ondemand]|[stable]|
    [conservative]|[none]), [duration] (seconds).
    [domain]: [name], [credit] (percent), [weight], [dom0] (bool), [vcpus],
    [workload] ([idle]|[busy]|[web]|[pi]) plus per-workload keys: web —
    [rate] (absolute work/s), [from]/[until] (s, optional active window),
    [timeout] (s, default 10), [request_work] (s); pi — [work] (absolute
    s), [duty] (0–1]. *)

type workload_spec =
  | Idle
  | Busy
  | Web of {
      rate : float;
      from_s : float option;
      until_s : float option;
      timeout_s : float;
      request_work : float;
    }
  | Pi of { work : float; duty : float }

type domain_spec = {
  name : string;
  credit : float;
  weight : int;
  dom0 : bool;
  vcpus : int;
  workload : workload_spec;
}

type sched_spec = Credit | Sedf | Credit2 | Pas_sched
type gov_spec = Performance | Powersave | Ondemand | Stable | Conservative | No_governor

type t = {
  arch : Cpu_model.Arch.t;
  scheduler : sched_spec;
  governor : gov_spec;
  duration_s : float;
  domains : domain_spec list;
}

val parse : string -> (t, string) result
(** Parses a whole configuration; the error string carries the offending
    line number. *)

val parse_file : string -> (t, string) result

type app = App_none | App_web of Workloads.Web_app.t | App_pi of Workloads.Pi_app.t
(** Handle to the concrete workload behind a domain, for reporting (request
    statistics, pi execution times). *)

type built = {
  sim : Simulator.t;
  host : Hypervisor.Host.t;
  domains : (domain_spec * Hypervisor.Domain.t * app) list;
  pas : Pas.Pas_sched.t option;
  duration : Sim_time.t;
}

val build : t -> built
(** Instantiates processor, workloads, domains, scheduler and governor.
    Does not run the simulation — call
    [Hypervisor.Host.run_for built.host built.duration]. *)

val pp_spec : Format.formatter -> t -> unit
(** Round-trippable rendering of a parsed configuration. *)

val jobs_env_var : string
(** ["DVFS_JOBS"]. *)

val default_jobs : unit -> int
(** [$DVFS_JOBS] when set, else [Domain.recommended_domain_count ()] —
    both captured once at module initialization (before any worker
    domain spawns), so a run's pool sizing is a constant of the run.
    @raise Invalid_argument if [$DVFS_JOBS] is not a positive integer
    (validated at the call, so misconfiguration fails where the pool is
    sized, not at program load). *)

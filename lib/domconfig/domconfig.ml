module Domain = Hypervisor.Domain
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

type workload_spec =
  | Idle
  | Busy
  | Web of {
      rate : float;
      from_s : float option;
      until_s : float option;
      timeout_s : float;
      request_work : float;
    }
  | Pi of { work : float; duty : float }

type domain_spec = {
  name : string;
  credit : float;
  weight : int;
  dom0 : bool;
  vcpus : int;
  workload : workload_spec;
}

type sched_spec = Credit | Sedf | Credit2 | Pas_sched
type gov_spec = Performance | Powersave | Ondemand | Stable | Conservative | No_governor

type t = {
  arch : Cpu_model.Arch.t;
  scheduler : sched_spec;
  governor : gov_spec;
  duration_s : float;
  domains : domain_spec list;
}

(* ------------------------------------------------------------------ *)
(* Parsing *)

let ( let* ) = Result.bind

let fail lineno fmt = Printf.ksprintf (fun msg -> Error (Printf.sprintf "line %d: %s" lineno msg)) fmt

let split_pairs lineno tokens =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | token :: rest -> (
        match String.index_opt token '=' with
        | Some i when i > 0 ->
            let key = String.sub token 0 i in
            let value = String.sub token (i + 1) (String.length token - i - 1) in
            loop ((key, value) :: acc) rest
        | Some _ | None -> fail lineno "expected key=value, got %S" token)
  in
  loop [] tokens

let lookup pairs key = List.assoc_opt key pairs

let float_of lineno key value =
  match float_of_string_opt value with
  | Some f -> Ok f
  | None -> fail lineno "key %s: %S is not a number" key value

let int_of lineno key value =
  match int_of_string_opt value with
  | Some i -> Ok i
  | None -> fail lineno "key %s: %S is not an integer" key value

let bool_of lineno key value =
  match String.lowercase_ascii value with
  | "true" | "yes" | "1" -> Ok true
  | "false" | "no" | "0" -> Ok false
  | _ -> fail lineno "key %s: %S is not a boolean" key value

let opt_default parse default = function None -> Ok default | Some v -> parse v
let opt_map parse = function None -> Ok None | Some v -> Result.map Option.some (parse v)

let check_known lineno allowed pairs =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) pairs with
  | Some (k, _) -> fail lineno "unknown key %S (allowed: %s)" k (String.concat ", " allowed)
  | None -> Ok ()

let arch_of lineno value =
  (* Tokens cannot contain spaces, so underscores stand for them in full
     catalog names (pp_spec prints that form). *)
  let despaced = String.map (function '_' -> ' ' | c -> c) value in
  let shorthand =
    match String.lowercase_ascii value with
    | "optiplex-755" | "optiplex" -> Some Cpu_model.Arch.optiplex_755
    | "elite-8300" | "i7-3770" -> Some Cpu_model.Arch.elite_8300
    | _ -> ( match Cpu_model.Arch.find value with
             | Some a -> Some a
             | None -> Cpu_model.Arch.find despaced)
  in
  match shorthand with
  | Some a -> Ok a
  | None -> fail lineno "unknown architecture %S" value

let sched_of lineno value =
  match String.lowercase_ascii value with
  | "credit" -> Ok Credit
  | "sedf" -> Ok Sedf
  | "credit2" -> Ok Credit2
  | "pas" -> Ok Pas_sched
  | _ -> fail lineno "unknown scheduler %S" value

let gov_of lineno value =
  match String.lowercase_ascii value with
  | "performance" -> Ok Performance
  | "powersave" -> Ok Powersave
  | "ondemand" -> Ok Ondemand
  | "stable" | "stable-ondemand" -> Ok Stable
  | "conservative" -> Ok Conservative
  | "none" -> Ok No_governor
  | _ -> fail lineno "unknown governor %S" value

let parse_host lineno pairs host =
  let* () =
    check_known lineno [ "arch"; "scheduler"; "governor"; "duration" ] pairs
  in
  let* arch = opt_default (arch_of lineno) host.arch (lookup pairs "arch" |> Option.map Fun.id)
  in
  let* scheduler = opt_default (sched_of lineno) host.scheduler (lookup pairs "scheduler") in
  let* governor = opt_default (gov_of lineno) host.governor (lookup pairs "governor") in
  let* duration_s =
    opt_default (float_of lineno "duration") host.duration_s (lookup pairs "duration")
  in
  if duration_s <= 0.0 then fail lineno "duration must be positive"
  else Ok { host with arch; scheduler; governor; duration_s }

let parse_workload lineno pairs =
  match Option.map String.lowercase_ascii (lookup pairs "workload") with
  | None | Some "idle" -> Ok Idle
  | Some "busy" -> Ok Busy
  | Some "web" ->
      let* rate =
        match lookup pairs "rate" with
        | Some v -> float_of lineno "rate" v
        | None -> fail lineno "web workload requires rate="
      in
      let* from_s = opt_map (float_of lineno "from") (lookup pairs "from") in
      let* until_s = opt_map (float_of lineno "until") (lookup pairs "until") in
      let* timeout_s = opt_default (float_of lineno "timeout") 10.0 (lookup pairs "timeout") in
      let* request_work =
        opt_default (float_of lineno "request_work") 0.005 (lookup pairs "request_work")
      in
      Ok (Web { rate; from_s; until_s; timeout_s; request_work })
  | Some "pi" ->
      let* work =
        match lookup pairs "work" with
        | Some v -> float_of lineno "work" v
        | None -> fail lineno "pi workload requires work="
      in
      let* duty = opt_default (float_of lineno "duty") 1.0 (lookup pairs "duty") in
      Ok (Pi { work; duty })
  | Some other -> fail lineno "unknown workload %S" other

let parse_domain lineno pairs =
  let* () =
    check_known lineno
      [ "name"; "credit"; "weight"; "dom0"; "vcpus"; "workload"; "rate"; "from"; "until";
        "timeout"; "request_work"; "work"; "duty" ]
      pairs
  in
  let* name =
    match lookup pairs "name" with
    | Some n -> Ok n
    | None -> fail lineno "domain requires name="
  in
  let* credit =
    match lookup pairs "credit" with
    | Some v -> float_of lineno "credit" v
    | None -> fail lineno "domain requires credit="
  in
  let* weight = opt_default (int_of lineno "weight") 256 (lookup pairs "weight") in
  let* dom0 = opt_default (bool_of lineno "dom0") false (lookup pairs "dom0") in
  let* vcpus = opt_default (int_of lineno "vcpus") 1 (lookup pairs "vcpus") in
  let* workload = parse_workload lineno pairs in
  Ok { name; credit; weight; dom0; vcpus; workload }

let default_host =
  {
    arch = Cpu_model.Arch.optiplex_755;
    scheduler = Credit;
    governor = Stable;
    duration_s = 600.0;
    domains = [];
  }

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec loop lineno host domains = function
    | [] -> (
        match domains with
        | [] -> Error "no domain directives found"
        | _ -> Ok { host with domains = List.rev domains })
    | line :: rest -> (
        let line = match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let tokens =
          String.split_on_char ' ' (String.trim line)
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun s -> s <> "")
        in
        match tokens with
        | [] -> loop (lineno + 1) host domains rest
        | "host" :: pairs_tokens ->
            let* pairs = split_pairs lineno pairs_tokens in
            let* host = parse_host lineno pairs host in
            loop (lineno + 1) host domains rest
        | "domain" :: pairs_tokens ->
            let* pairs = split_pairs lineno pairs_tokens in
            let* dom = parse_domain lineno pairs in
            if List.exists (fun d -> String.equal d.name dom.name) domains then
              fail lineno "duplicate domain name %S" dom.name
            else loop (lineno + 1) host (dom :: domains) rest
        | directive :: _ -> fail lineno "unknown directive %S" directive)
  in
  loop 1 default_host [] lines

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Building *)

type app = App_none | App_web of Workloads.Web_app.t | App_pi of Workloads.Pi_app.t

type built = {
  sim : Simulator.t;
  host : Hypervisor.Host.t;
  domains : (domain_spec * Hypervisor.Domain.t * app) list;
  pas : Pas.Pas_sched.t option;
  duration : Sim_time.t;
}

let build_workload spec =
  match spec.workload with
  | Idle -> (Workloads.Workload.idle (), App_none)
  | Busy -> (Workloads.Workload.busy_loop (), App_none)
  | Web { rate; from_s; until_s; timeout_s; request_work } ->
      let schedule =
        match (from_s, until_s) with
        | None, None -> Workloads.Phases.constant ~rate
        | from_s, until_s ->
            let active_from =
              Sim_time.max (Sim_time.of_us 1)
                (Sim_time.of_sec_f (Option.value from_s ~default:0.0))
            in
            let active_until = Sim_time.of_sec_f (Option.value until_s ~default:1e9) in
            Workloads.Phases.three_phase ~active_from ~active_until ~rate
      in
      let app =
        Workloads.Web_app.create ~request_work ~timeout:(Sim_time.of_sec_f timeout_s)
          ~rate_schedule:schedule ()
      in
      (Workloads.Web_app.workload app, App_web app)
  | Pi { work; duty } ->
      let app = Workloads.Pi_app.create ~duty_cycle:duty ~work () in
      (Workloads.Pi_app.workload app, App_pi app)

let build t =
  let sim = Simulator.create () in
  let processor = Processor.create t.arch in
  let domains =
    List.map
      (fun spec ->
        let workload, app = build_workload spec in
        ( spec,
          Domain.create ~weight:spec.weight ~is_dom0:spec.dom0 ~vcpus:spec.vcpus
            ~name:spec.name ~credit_pct:spec.credit workload,
          app ))
      t.domains
  in
  let plain = List.map (fun (_, d, _) -> d) domains in
  let scheduler, pas =
    match t.scheduler with
    | Credit -> (Sched_credit.create plain, None)
    | Sedf -> (Sched_sedf.create plain, None)
    | Credit2 -> (Sched_credit2.create plain, None)
    | Pas_sched ->
        let p = Pas.Pas_sched.create ~processor plain in
        (Pas.Pas_sched.scheduler p, Some p)
  in
  let governor =
    match t.governor with
    | Performance -> Some (Governors.Governor.performance processor)
    | Powersave -> Some (Governors.Governor.powersave processor)
    | Ondemand -> Some (Governors.Ondemand.create processor)
    | Stable -> Some (Governors.Stable_ondemand.create processor)
    | Conservative -> Some (Governors.Conservative.create processor)
    | No_governor -> None
  in
  let host = Host.create ~sim ~processor ~scheduler ?governor () in
  { sim; host; domains; pas; duration = Sim_time.of_sec_f t.duration_s }

(* ------------------------------------------------------------------ *)
(* Printing *)

let sched_name = function
  | Credit -> "credit"
  | Sedf -> "sedf"
  | Credit2 -> "credit2"
  | Pas_sched -> "pas"

let gov_name = function
  | Performance -> "performance"
  | Powersave -> "powersave"
  | Ondemand -> "ondemand"
  | Stable -> "stable"
  | Conservative -> "conservative"
  | No_governor -> "none"

let pp_workload ppf = function
  | Idle -> Format.fprintf ppf "workload=idle"
  | Busy -> Format.fprintf ppf "workload=busy"
  | Web { rate; from_s; until_s; timeout_s; request_work } ->
      Format.fprintf ppf "workload=web rate=%g" rate;
      Option.iter (Format.fprintf ppf " from=%g") from_s;
      Option.iter (Format.fprintf ppf " until=%g") until_s;
      Format.fprintf ppf " timeout=%g request_work=%g" timeout_s request_work
  | Pi { work; duty } -> Format.fprintf ppf "workload=pi work=%g duty=%g" work duty

let pp_spec ppf t =
  let arch_token = String.map (function ' ' -> '_' | c -> c) t.arch.Cpu_model.Arch.name in
  Format.fprintf ppf "host arch=%s scheduler=%s governor=%s duration=%g@."
    arch_token (sched_name t.scheduler) (gov_name t.governor) t.duration_s;
  List.iter
    (fun d ->
      Format.fprintf ppf "domain name=%s credit=%g weight=%d%s vcpus=%d %a@." d.name d.credit
        d.weight
        (if d.dom0 then " dom0=true" else "")
        d.vcpus pp_workload d.workload)
    t.domains

(* ------------------------------------------------------------------ *)
(* Host-environment reads, once at startup.

   Domconfig is the blessed config loader: the determinism effect pass
   lets it read the host so nothing simulation-reachable has to.  Both
   values are captured at module initialization — before any worker
   domain spawns — so the pool sizing of a run is a constant of that
   run, not a per-call environment read. *)

let jobs_env_var = "DVFS_JOBS"
let jobs_env_raw = Sys.getenv_opt jobs_env_var
let machine_domain_count = Stdlib.Domain.recommended_domain_count ()

let default_jobs () =
  match jobs_env_raw with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "Runner: %s must be a positive integer, got %S" jobs_env_var s))
  | None -> machine_domain_count

(** Ablation experiments beyond the paper's tables.

    - {!implementation}: §4.1 describes three possible PAS implementations
      (user-level credit management, user-level credit+DVFS management,
      in-hypervisor) and argues the user-level ones "may lack reactivity".
      This experiment provokes a frequency transition mid-run and measures
      how much absolute capacity V20 loses under each variant.

    - {!energy}: the paper motivates PAS by energy but reports no Joule
      figures; this experiment runs the §5.3 profile under every
      scheduler/governor combination and reports energy, mean power and
      SLA deficits, showing PAS pairs credit-scheduler-level energy with
      SEDF-level SLA compliance. *)

val implementation : Experiment.t
val energy : Experiment.t
val all : Experiment.t list

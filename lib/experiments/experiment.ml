type output = {
  id : string;
  title : string;
  summary : Table.t;
  plots : Plot.t list;
  frames : (string * Series.Frame.t) list;
  notes : string list;
}

type t = {
  id : string;
  title : string;
  paper_ref : string;
  run : scale:float -> output;
}

let print ppf (o : output) =
  Format.fprintf ppf "=== %s: %s ===@." o.id o.title;
  Format.fprintf ppf "%a@." Table.pp o.summary;
  List.iter (fun p -> Format.fprintf ppf "%a@." Plot.pp p) o.plots;
  List.iter (fun n -> Format.fprintf ppf "note: %s@." n) o.notes;
  Format.fprintf ppf "@."

let save_csvs (o : output) ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun (stem, frame) ->
      let path = Filename.concat dir (Printf.sprintf "%s-%s.csv" o.id stem) in
      Series.Frame.save_csv frame path;
      path)
    o.frames

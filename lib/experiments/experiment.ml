type output = {
  id : string;
  title : string;
  summary : Table.t;
  plots : Plot.t list;
  frames : (string * Series.Frame.t) list;
  notes : string list;
}

type t = {
  id : string;
  title : string;
  paper_ref : string;
  run : seed:int -> scale:float -> output;
}

(* The canonical seed is a pure function of the experiment id, so a run's
   results cannot depend on which worker domain picks the job up, on pool
   size, or on how many experiments ran before it.  The namespace prefix
   keeps experiment streams disjoint from any other [Prng.derive] user. *)
let default_seed ~id = Prng.derive_seed ~key:("experiment/" ^ id)

let run t ~scale = t.run ~seed:(default_seed ~id:t.id) ~scale

let print ppf (o : output) =
  Format.fprintf ppf "=== %s: %s ===@." o.id o.title;
  Format.fprintf ppf "%a@." Table.pp o.summary;
  List.iter (fun p -> Format.fprintf ppf "%a@." Plot.pp p) o.plots;
  List.iter (fun n -> Format.fprintf ppf "note: %s@." n) o.notes;
  Format.fprintf ppf "@."

let print_to_string (o : output) =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  print ppf o;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* [mkdir -p]: the old single-level [Sys.mkdir] failed on nested output
   directories and raced when two callers created the same directory. *)
let rec mkdir_p dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      invalid_arg (Printf.sprintf "Experiment.save_csvs: %s exists and is not a directory" dir)
  end
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir ->
      (* Lost a creation race with a concurrent worker; the directory is
         there, which is all we needed. *)
      ()
  end

let save_csvs (o : output) ~dir =
  mkdir_p dir;
  List.map
    (fun (stem, frame) ->
      let path = Filename.concat dir (Printf.sprintf "%s-%s.csv" o.id stem) in
      Series.Frame.save_csv frame path;
      path)
    o.frames

(** The execution-profile experiments: Figures 2–10 (§5.3–§5.7).

    All nine figures run the same V20/V70 three-phase scenario and differ
    only in scheduler, governor, load level and whether global or absolute
    loads are plotted.  Each experiment reports phase means of both views
    plus the mean frequency, so every claim the paper attaches to a figure
    can be checked numerically. *)

val fig2 : Experiment.t
(** Credit scheduler, performance governor, exact load: the reference
    profile at maximum frequency. *)

val fig3 : Experiment.t
(** Credit + stock ondemand: the aggressive governor oscillates. *)

val fig4 : Experiment.t
(** Credit + the authors' stable governor: same means, no oscillation. *)

val fig5 : Experiment.t
(** Absolute-load view of fig4: V20 only gets ~12 % absolute while V70 is
    lazy — the fix-credit + DVFS failure (Scenario 1). *)

val fig6 : Experiment.t
(** SEDF, exact load, global loads: V20 climbs to ~33 % thanks to unused
    slices. *)

val fig7 : Experiment.t
(** SEDF, exact load, absolute loads: V20 keeps its 20 % — SEDF "solves"
    the exact case. *)

val fig8 : Experiment.t
(** SEDF, thrashing load: V20 devours ~90 % and pins the frequency at
    maximum — the variable-credit failure (Scenario 2). *)

val fig9 : Experiment.t
(** PAS, thrashing load, global loads: V20 is granted exactly the
    compensated credit (~33 % at 1600 MHz, 20 % at 2667 MHz). *)

val fig10 : Experiment.t
(** PAS, thrashing load, absolute loads: V20 holds 20 % absolute throughout
    while the frequency stays low whenever V70 is lazy. *)

val all : Experiment.t list

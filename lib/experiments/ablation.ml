module Domain = Hypervisor.Domain
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

(* Mean shortfall of a domain's absolute load below its credit, over samples
   in [lo, hi]. *)
let deficit_between host domain lo hi =
  let series = Host.series_domain_absolute_load host domain in
  let credit = Domain.initial_credit domain in
  let times = Series.times series and values = Series.values series in
  let sum = ref 0.0 and n = ref 0 in
  Array.iteri
    (fun i time ->
      if Sim_time.compare time lo >= 0 && Sim_time.compare time hi <= 0 then begin
        sum := !sum +. Float.max 0.0 (credit -. values.(i));
        incr n
      end)
    times;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

(* The reactivity scenario: V20 thrashes from the start; V70 is active until
   [switch], after which the host empties, the frequency drops, and the PAS
   variant under test must promptly raise V20's credit. *)
let implementation_run ~seed:_ ~scale =
  let t sec = Sim_time.of_sec_f (sec *. scale) in
  let switch = t 600.0 and duration = t 1200.0 in
  let run_variant name build =
    let sim = Simulator.create () in
    let processor = Processor.create Cpu_model.Arch.optiplex_755 in
    let v20_app =
      Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:1.0) ()
    in
    let v20 = Domain.create ~name:"V20" ~credit_pct:20.0 (Workloads.Web_app.workload v20_app) in
    let v70_app =
      Workloads.Web_app.create
        ~rate_schedule:
          (Workloads.Phases.three_phase ~active_from:(Sim_time.of_us 1) ~active_until:switch
             ~rate:0.70)
        ()
    in
    let v70 = Domain.create ~name:"V70" ~credit_pct:70.0 (Workloads.Web_app.workload v70_app) in
    let dom0 = Domain.create ~is_dom0:true ~name:"Dom0" ~credit_pct:10.0 (Workloads.Workload.idle ()) in
    let domains = [ dom0; v20; v70 ] in
    let scheduler, governor, arm_daemon = build sim processor domains in
    let host = Host.create ~sim ~processor ~scheduler ?governor () in
    arm_daemon host scheduler (* lint:ignore shard-unknown-flow: the variant's daemon is armed on this host only *);
    Host.run_for host duration;
    let transition = deficit_between host v20 switch (t 660.0) in
    let steady = deficit_between host v20 (t 660.0) (t 1150.0) in
    (name, transition, steady)
  in
  let variants =
    [
      run_variant "in-hypervisor (100 ms)" (fun _sim processor domains ->
          let pas = Pas.Pas_sched.create ~processor domains in
          (Pas.Pas_sched.scheduler pas, None, fun _ _ -> ()));
      run_variant "user-level credit-only (1 s)" (fun sim processor domains ->
          let scheduler = Sched_credit.create domains in
          let governor = Governors.Stable_ondemand.create processor in
          ( scheduler,
            Some governor,
            fun _host sched ->
              ignore (Pas.User_level.credit_manager ~sim ~processor ~scheduler:sched domains)
          ));
      run_variant "user-level credit+DVFS (500 ms)" (fun sim processor domains ->
          let scheduler = Sched_credit.create domains in
          let userspace = Governors.Userspace.create processor in
          let governor = Governors.Userspace.governor userspace in
          ( scheduler,
            Some governor,
            fun host sched ->
              ignore
                (Pas.User_level.full_manager ~sim ~processor ~scheduler:sched ~userspace
                   ~utilization:(Host.utilization_probe host) domains) ));
    ]
  in
  let summary =
    Table.create
      ~columns:
        [
          ("PAS implementation", Table.Left);
          ("V20 deficit, 60 s after switch (pts)", Table.Right);
          ("V20 deficit, steady state (pts)", Table.Right);
        ]
  in
  List.iter
    (fun (name, transition, steady) ->
      Table.add_row summary [ name; Table.cell_f transition; Table.cell_f steady ])
    variants;
  {
    Experiment.id = "ablation-impl";
    title = "Reactivity of the three PAS implementation levels (§4.1)";
    summary;
    plots = [];
    frames = [];
    notes =
      [
        "V70 goes idle mid-run; the frequency drops and V20's credit must be recomputed.";
        "expected: the in-hypervisor variant compensates fastest; user-level variants lag";
      ];
  }

let energy_run ~seed:_ ~scale =
  let configs =
    [
      ("credit + performance", Scenario.Credit, Scenario.Performance);
      ("credit + stock ondemand", Scenario.Credit, Scenario.Stock_ondemand);
      ("credit + stable ondemand", Scenario.Credit, Scenario.Stable_ondemand);
      ("credit2 + stable ondemand", Scenario.Credit2, Scenario.Stable_ondemand);
      ("sedf + stable ondemand", Scenario.Sedf, Scenario.Stable_ondemand);
      ("PAS", Scenario.Pas_scheduler, Scenario.No_governor);
    ]
  in
  let summary =
    Table.create
      ~columns:
        [
          ("configuration", Table.Left);
          ("energy (kJ)", Table.Right);
          ("mean power (W)", Table.Right);
          ("V20 deficit (pts)", Table.Right);
          ("V70 deficit (pts)", Table.Right);
        ]
  in
  List.iter
    (fun (name, sched, gov) ->
      let r = Scenario.run (Scenario.spec ~sched ~gov ~load:Scenario.Thrashing ~scale ()) in
      Table.add_row summary
        [
          name;
          Table.cell_f (Host.energy_joules (Scenario.host r) /. 1000.0);
          Table.cell_f (Host.mean_watts (Scenario.host r));
          Table.cell_f (Scenario.sla_deficit r (Scenario.v20 r));
          Table.cell_f (Scenario.sla_deficit r (Scenario.v70 r));
        ])
    configs;
  {
    Experiment.id = "ablation-energy";
    title = "Energy vs SLA compliance per scheduler/governor (thrashing profile)";
    summary;
    plots = [];
    frames = [];
    notes =
      [
        "expected: stock/stable ondemand save energy but starve V20 (fix credit);";
        "SEDF/credit2 honour demand but burn energy; PAS achieves both goals";
      ];
  }

let implementation =
  {
    Experiment.id = "ablation-impl";
    title = "Reactivity of the three PAS implementation levels (§4.1)";
    paper_ref = "§4.1";
    run = implementation_run;
  }

let energy =
  {
    Experiment.id = "ablation-energy";
    title = "Energy vs SLA compliance per scheduler/governor";
    paper_ref = "§3.2 (motivation)";
    run = energy_run;
  }

let all = [ implementation; energy ]

(** Hosting-center ablation (§2.3 + the §7 perspective).

    Ten VMs with phase-shifted activity share a four-node fleet.  Because
    memory binds first, even a perfectly consolidated fleet is
    CPU-underloaded (§2.3) — so node-level DVFS still pays, and the two
    techniques compose: consolidation turns whole nodes off, PAS trims the
    frequency of the nodes that stay on without breaking any tenant's
    credit.

    Configurations: static placement with no DVFS / with the stable
    ondemand governor / with PAS nodes, and epoch-based consolidation
    (rebalance every 100 s) with PAS nodes.  Reported: fleet energy, mean
    active nodes, migrations, and the fraction of injected work actually
    served (the SLA proxy — under-provisioned tenants time out). *)

val experiment : Experiment.t

(** Table 1 (§5.8): [cf_min] on different processors.

    For each of the five architectures the paper measured on Grid5000 and
    the Elite 8300, run the §5.2 calibration procedure (load measurements at
    maximum and minimum frequency under several Web-app workloads) and
    recover [cf_min].  The measured values must match the published ones —
    the architecture models embed them as ground truth (see DESIGN.md), so
    this experiment validates the measurement procedure end-to-end. *)

val experiment : Experiment.t

val paper_values : (string * float) list
(** Architecture name → the cf_min published in Table 1. *)

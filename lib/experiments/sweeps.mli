(** Parameter sweeps over the design choices DESIGN.md calls out.

    - {!pas_window}: the PAS evaluation window (the paper evaluates "at
      each tick"; our default is 100 ms with 3-sample averaging).  Sweeps
      30 ms – 1 s and measures how much of V20's guarantee is lost around a
      load transition — quantifying the reactivity/overhead trade-off that
      §4.1 discusses qualitatively.

    - {!governor_sampling}: the stock ondemand sampling window (the paper
      blames the governor's aggressiveness for Fig. 3's oscillation).
      Sweeps 2 ms – 200 ms on the V20-alone scenario and reports frequency
      transitions, V20's absolute load and energy — the full
      stability/SLA/energy trade-off surface. *)

val pas_window : Experiment.t
val governor_sampling : Experiment.t
val all : Experiment.t list

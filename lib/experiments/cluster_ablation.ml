module Manager = Cluster.Manager
module Vm = Cluster.Vm
module Web_app = Workloads.Web_app

let duration_s = 1200.0

(* name, credit %, memory MB, demand factor, activity window (s). *)
let tenants =
  [
    ("t1", 20.0, 2048, 1.2, (0.0, 400.0));
    ("t2", 15.0, 1024, 1.0, (0.0, 600.0));
    ("t3", 10.0, 1024, 0.8, (200.0, 800.0));
    ("t4", 20.0, 2048, 1.5, (400.0, 1000.0));
    ("t5", 10.0, 1024, 0.5, (0.0, 1200.0));
    ("t6", 15.0, 1024, 1.0, (600.0, 1200.0));
    ("t7", 10.0, 1024, 2.0, (800.0, 1200.0));
    ("t8", 5.0, 512, 1.0, (0.0, 1200.0));
    ("t9", 20.0, 2048, 0.3, (0.0, 1200.0));
    ("t10", 10.0, 1024, 1.0, (300.0, 900.0));
  ]

let build_vms ~scale =
  List.map
    (fun (name, credit, memory_mb, demand, (t0, t1)) ->
      let rate = credit /. 100.0 *. demand in
      let app =
        Web_app.create ~timeout:(Sim_time.of_sec 10)
          ~rate_schedule:
            (Workloads.Phases.three_phase
               ~active_from:(Sim_time.max (Sim_time.of_us 1) (Sim_time.of_sec_f (t0 *. scale)))
               ~active_until:(Sim_time.of_sec_f (t1 *. scale))
               ~rate)
          ()
      in
      (app, Vm.create ~name ~credit_pct:credit ~memory_mb (Web_app.workload app)))
    tenants

let run_config (label, policy, rebalance_every) ~scale =
  let sim = Simulator.create () in
  let apps_vms = build_vms ~scale in
  let vms = List.map snd apps_vms in
  let manager =
    Manager.create ~node_memory_mb:16_384 ~policy ~sim ~nodes:4 vms
  in
  (match rebalance_every with
  | Some period -> Manager.auto_rebalance manager ~every:(Sim_time.of_sec_f (period *. scale))
  | None -> ());
  (* Sample the active-node count as the run progresses. *)
  let active_samples = ref [] in
  ignore
    (Simulator.every sim
       (Sim_time.of_sec_f (10.0 *. scale))
       (fun () -> active_samples := Manager.active_nodes manager :: !active_samples));
  Manager.run_for manager (Sim_time.of_sec_f (duration_s *. scale));
  let injected =
    List.fold_left (fun acc (app, _) -> acc +. Web_app.injected_work app) 0.0 apps_vms
  in
  let served =
    List.fold_left (fun acc (app, _) -> acc +. Web_app.completed_work app) 0.0 apps_vms
  in
  let mean_active =
    let n = List.length !active_samples in
    if n = 0 then 0.0
    else float_of_int (List.fold_left ( + ) 0 !active_samples) /. float_of_int n
  in
  ( label,
    Manager.energy_joules manager /. 1000.0 /. scale,
    mean_active,
    Manager.migrations manager,
    (if injected = 0.0 (* lint:ignore float-eq: exact zero guards the division *) then
       100.0
     else served /. injected *. 100.0) )

let run ~seed:_ ~scale =
  let configs =
    [
      ("static + performance (no DVFS)", Manager.No_dvfs, None);
      ("static + stable ondemand", Manager.Credit_ondemand, None);
      ("static + PAS nodes", Manager.Pas_nodes, None);
      ("consolidating (100 s) + PAS nodes", Manager.Pas_nodes, Some 100.0);
    ]
  in
  let summary =
    Table.create
      ~columns:
        [
          ("configuration", Table.Left);
          ("fleet energy (kJ, normalised)", Table.Right);
          ("mean active nodes", Table.Right);
          ("migrations", Table.Right);
          ("work served %", Table.Right);
        ]
  in
  List.iter
    (fun config ->
      let label, energy, active, migrations, served = run_config config ~scale in
      Table.add_row summary
        [
          label;
          Table.cell_f energy;
          Table.cell_f active;
          string_of_int migrations;
          Table.cell_f1 served;
        ])
    configs;
  {
    Experiment.id = "ablation-cluster";
    title = "Consolidation x DVFS on a four-node fleet";
    summary;
    plots = [];
    frames = [];
    notes =
      [
        "memory-bound packing leaves nodes CPU-underloaded (2.3), so PAS nodes save";
        "energy on top of consolidation; epoch rebalancing powers nodes off entirely";
        "and keeps the served-work ratio (no tenant starves for its credit)";
      ];
  }

let experiment =
  {
    Experiment.id = "ablation-cluster";
    title = "Consolidation x DVFS on a four-node fleet";
    paper_ref = "§2.3 and §7 (consolidation perspective)";
    run;
  }

module Smp = Cpu_model.Smp
module Smp_host = Hypervisor.Smp_host
module Domain = Hypervisor.Domain

let cores = 2
let base_work = 120.0 (* absolute seconds *)

type config = {
  label : string;
  policy : Smp.policy;
  scheduler : [ `Fix_credit | `Work_conserving ];
  dvfs : [ `Ondemand_max_core | `Performance | `Pas ];
}

let configs =
  [
    { label = "fix credit + perf (baseline)"; policy = Smp.Per_package;
      scheduler = `Fix_credit; dvfs = `Performance };
    { label = "fix credit + ondemand(max-core)"; policy = Smp.Per_package;
      scheduler = `Fix_credit; dvfs = `Ondemand_max_core };
    { label = "work-conserving + ondemand(max-core)"; policy = Smp.Per_package;
      scheduler = `Work_conserving; dvfs = `Ondemand_max_core };
    { label = "work-conserving + per-core ondemand"; policy = Smp.Per_core;
      scheduler = `Work_conserving; dvfs = `Ondemand_max_core };
    { label = "fix credit + PAS-SMP"; policy = Smp.Per_package;
      scheduler = `Fix_credit; dvfs = `Pas };
  ]

let run_config c ~scale =
  let sim = Simulator.create () in
  let smp = Smp.create ~policy:c.policy ~cores Cpu_model.Arch.elite_8300 in
  let pi = Workloads.Pi_app.create ~work:(base_work *. scale) () in
  let v20 =
    Domain.create ~vcpus:1 ~name:"V20" ~credit_pct:20.0 (Workloads.Pi_app.workload pi)
  in
  let v70 = Domain.create ~vcpus:1 ~name:"V70" ~credit_pct:70.0 (Workloads.Workload.idle ()) in
  let dom0 =
    Domain.create ~is_dom0:true ~name:"Dom0" ~credit_pct:10.0 (Workloads.Workload.idle ())
  in
  let domains = [ dom0; v20; v70 ] in
  let scheduler =
    match c.scheduler with
    | `Fix_credit -> Sched_credit.create ~host_capacity:cores domains
    | `Work_conserving -> Sched_credit2.create domains
  in
  let pas =
    match c.dvfs with `Pas -> Some (Pas.Pas_smp.create ~smp ~scheduler domains) | _ -> None
  in
  let dvfs =
    match c.dvfs with
    | `Performance -> Smp_host.performance_policy smp
    | `Ondemand_max_core -> Smp_host.ondemand_max_core smp ~period:(Sim_time.of_ms 100)
    | `Pas -> Pas.Pas_smp.policy (Option.get pas)
  in
  let host = Smp_host.create ~sim ~smp ~scheduler ~dvfs () in
  let limit = Sim_time.of_sec_f (4000.0 *. scale) in
  let chunk = Sim_time.of_sec_f (Float.max 1.0 (5.0 *. scale)) in
  let rec loop () =
    if Workloads.Pi_app.finished pi then ()
    else if Sim_time.compare (Smp_host.now host) limit >= 0 then
      failwith ("Smp_ablation: pi-app did not finish under " ^ c.label)
    else begin
      Smp_host.run_for host chunk;
      loop ()
    end
  in
  loop ();
  let exec_time =
    match Workloads.Pi_app.execution_time pi with
    | Some t -> Sim_time.to_sec t /. scale
    (* unreachable: the loop above runs until the pi app finishes. *)
    | None -> assert false
  in
  let transitions = Smp.transitions smp in
  (exec_time, Smp_host.mean_watts host, transitions)

let run ~seed:_ ~scale =
  let summary =
    Table.create
      ~columns:
        [
          ("configuration", Table.Left);
          ("V20 exec time (s)", Table.Right);
          ("degradation %", Table.Right);
          ("mean power (W)", Table.Right);
          ("freq transitions", Table.Right);
        ]
  in
  let baseline = ref None in
  List.iter
    (fun c ->
      let t, watts, transitions = run_config c ~scale in
      (match c.dvfs with `Performance -> baseline := Some t | _ -> ());
      let degradation =
        match (!baseline, c.scheduler) with
        | Some b, `Fix_credit -> (t -. b) /. t *. 100.0
        | _ -> 0.0
      in
      Table.add_row summary
        [
          c.label;
          Table.cell_f t;
          Table.cell_f1 degradation;
          Table.cell_f1 watts;
          string_of_int transitions;
        ])
    configs;
  {
    Experiment.id = "ablation-smp";
    title = "Two-core host: the Table 2 mechanism, explicit";
    summary;
    plots = [];
    frames = [];
    notes =
      [
        "fix credit under max-core ondemand degrades (no core looks busy, package";
        "clocks down); work-conserving compacts V20 onto one saturated core and the";
        "package stays fast (Table 2's variable-credit column, ~2.5x faster);";
        "PAS-SMP keeps the package slow with zero degradation; per-core DVFS";
        "additionally idles the second core's clock";
      ];
  }

let experiment =
  {
    Experiment.id = "ablation-smp";
    title = "Two-core host: the Table 2 mechanism, explicit";
    paper_ref = "§7 (multi-core / per-core DVFS perspective)";
    run;
  }

module Domain = Hypervisor.Domain
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

(* Shared scenario: V20 thrashes throughout; V70 is busy then goes idle at
   [switch], forcing a frequency drop that the policy must compensate. *)
let transition_scenario ~scale ~build_host =
  let t sec = Sim_time.of_sec_f (sec *. scale) in
  let switch = t 300.0 and duration = t 600.0 in
  let v20_app =
    Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:1.0) ()
  in
  let v20 = Domain.create ~name:"V20" ~credit_pct:20.0 (Workloads.Web_app.workload v20_app) in
  let v70_app =
    Workloads.Web_app.create
      ~rate_schedule:
        (Workloads.Phases.three_phase ~active_from:(Sim_time.of_us 1) ~active_until:switch
           ~rate:0.70)
      ()
  in
  let v70 = Domain.create ~name:"V70" ~credit_pct:70.0 (Workloads.Web_app.workload v70_app) in
  let dom0 = Domain.create ~is_dom0:true ~name:"Dom0" ~credit_pct:10.0 (Workloads.Workload.idle ()) in
  let host = build_host [ dom0; v20; v70 ] in
  Host.run_for host duration;
  (host, v20, switch, duration)

let deficit_between host domain lo hi =
  let series = Host.series_domain_absolute_load host domain in
  let credit = Domain.initial_credit domain in
  let times = Series.times series and values = Series.values series in
  let sum = ref 0.0 and n = ref 0 in
  Array.iteri
    (fun i time ->
      if Sim_time.compare time lo >= 0 && Sim_time.compare time hi <= 0 then begin
        sum := !sum +. Float.max 0.0 (credit -. values.(i));
        incr n
      end)
    times;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

let pas_window_run ~seed:_ ~scale =
  let windows = [ 30; 100; 300; 1000 ] in
  let summary =
    Table.create
      ~columns:
        [
          ("PAS window (ms)", Table.Right);
          ("V20 deficit, 60 s after switch (pts)", Table.Right);
          ("steady deficit (pts)", Table.Right);
          ("PAS evaluations", Table.Right);
        ]
  in
  List.iter
    (fun window_ms ->
      let pas_ref = ref None in
      let host, v20, switch, duration =
        transition_scenario ~scale ~build_host:(fun domains ->
            let sim = Simulator.create () in
            let processor = Processor.create Cpu_model.Arch.optiplex_755 in
            let pas =
              Pas.Pas_sched.create ~window:(Sim_time.of_ms window_ms) ~processor domains
            in
            pas_ref := Some pas;
            Host.create ~sim ~processor ~scheduler:(Pas.Pas_sched.scheduler pas) ())
      in
      let after = Sim_time.add switch (Sim_time.of_sec_f (60.0 *. scale)) in
      let steady_from = Sim_time.add switch (Sim_time.of_sec_f (120.0 *. scale)) in
      Table.add_row summary
        [
          string_of_int window_ms;
          Table.cell_f (deficit_between host v20 switch after);
          Table.cell_f (deficit_between host v20 steady_from duration);
          string_of_int
            (match !pas_ref with Some p -> Pas.Pas_sched.evaluations p | None -> 0);
        ])
    windows;
  {
    Experiment.id = "ablation-window";
    title = "PAS evaluation-window sweep";
    summary;
    plots = [];
    frames = [];
    notes =
      [
        "shorter windows compensate a frequency change faster (smaller transition";
        "deficit) at the cost of more evaluations - the in-hypervisor argument of 4.1";
      ];
  }

let governor_sampling_run ~seed:_ ~scale =
  let periods_ms = [ 2; 5; 20; 100; 200 ] in
  let summary =
    Table.create
      ~columns:
        [
          ("sampling window (ms)", Table.Right);
          ("freq transitions", Table.Right);
          ("V20 absolute load %", Table.Right);
          ("energy (kJ)", Table.Right);
        ]
  in
  List.iter
    (fun period_ms ->
      let t sec = Sim_time.of_sec_f (sec *. scale) in
      let duration = t 600.0 in
      let v20_app =
        Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:0.20) ()
      in
      let v20 =
        Domain.create ~name:"V20" ~credit_pct:20.0 (Workloads.Web_app.workload v20_app)
      in
      let v70 = Domain.create ~name:"V70" ~credit_pct:70.0 (Workloads.Workload.idle ()) in
      let dom0 =
        Domain.create ~is_dom0:true ~name:"Dom0" ~credit_pct:10.0 (Workloads.Workload.idle ())
      in
      let sim = Simulator.create () in
      let processor = Processor.create Cpu_model.Arch.optiplex_755 in
      let scheduler = Sched_credit.create [ dom0; v20; v70 ] in
      let governor = Governors.Ondemand.create ~period:(Sim_time.of_ms period_ms) processor in
      let host = Host.create ~sim ~processor ~scheduler ~governor () in
      Host.run_for host duration;
      let abs = Host.series_domain_absolute_load host v20 in
      Table.add_row summary
        [
          string_of_int period_ms;
          string_of_int (Cpu_model.Cpufreq.transitions (Processor.cpufreq processor));
          Table.cell_f (Series.mean_between abs (t 60.0) duration);
          Table.cell_f (Host.energy_joules host /. 1000.0);
        ])
    periods_ms;
  {
    Experiment.id = "ablation-sampling";
    title = "Stock-ondemand sampling-window sweep (the Fig. 3 oscillation knob)";
    summary;
    plots = [];
    frames = [];
    notes =
      [
        "sub-accounting-period windows (< 30 ms) see the capped VM's burst and flap";
        "between P-states (Fig. 3); longer windows average it away (Fig. 4's cure)";
        "but every fix-credit variant still under-delivers V20's 20% absolute";
      ];
  }

let pas_window =
  {
    Experiment.id = "ablation-window";
    title = "PAS evaluation-window sweep";
    paper_ref = "§4.1 (reactivity discussion)";
    run = pas_window_run;
  }

let governor_sampling =
  {
    Experiment.id = "ablation-sampling";
    title = "Stock-ondemand sampling-window sweep";
    paper_ref = "§5.4 (Fig. 3 vs Fig. 4)";
    run = governor_sampling_run;
  }

let all = [ pas_window; governor_sampling ]

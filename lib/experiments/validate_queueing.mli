(** Queueing-theoretic validation experiment (id: [validate-queueing]).

    Runs the {!Validate.Sweep.quick_grid} — M/M/1 at full speed, M/M/1
    under the powersave governor (the DVFS case, where the oracle's
    service rate is scaled by [ratio * cf]), and M/M/3 — and reports
    measured utilization, sojourn time, and number in system next to the
    closed-form targets with a pass/fail verdict per point.  The golden
    suite pins this output, so a capacity-law or scheduler-accounting
    regression flips a committed verdict. *)

val experiment : Experiment.t

(** §5.2 — verification of the two proportionality assumptions.

    - Equation (1): for several Web-app workloads and every frequency of the
      Optiplex, the recovered [cf = L_max / (L_i * ratio_i)] is constant
      across workloads (and ~1 on this machine).
    - Equation (2): pi-app execution times scale as [1 / (ratio * cf)]
      across frequencies.
    - Equation (3): pi-app execution times scale as [1 / credit] across
      credit allocations at fixed frequency. *)

val experiment : Experiment.t

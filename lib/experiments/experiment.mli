(** Uniform experiment interface.

    Every reproduced table/figure is an {!t}: an identifier, the paper
    reference, and a runner producing an {!output} (summary table, optional
    ASCII plots of the figure's series, CSV frames, free-text notes with the
    paper-vs-measured comparison). *)

type output = {
  id : string;
  title : string;
  summary : Table.t;
  plots : Plot.t list;
  frames : (string * Series.Frame.t) list;  (** (file stem, frame) *)
  notes : string list;
}

type t = {
  id : string;
  title : string;
  paper_ref : string;  (** e.g. "Fig. 5, §5.4" *)
  run : scale:float -> output;
}

val print : Format.formatter -> output -> unit
(** Renders title, summary table, plots and notes. *)

val save_csvs : output -> dir:string -> string list
(** Writes each frame as [dir/<id>-<stem>.csv] (creating [dir]); returns the
    paths written. *)

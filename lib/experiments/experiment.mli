(** Uniform experiment interface.

    Every reproduced table/figure is an {!t}: an identifier, the paper
    reference, and a runner producing an {!output} (summary table, optional
    ASCII plots of the figure's series, CSV frames, free-text notes with the
    paper-vs-measured comparison).

    Determinism contract: an experiment's [run] function must be a pure
    function of [(seed, scale)] — no global mutable state, no wall clock, no
    ambient [Random] — so the parallel runner can execute the registry in any
    order, on any number of domains, and obtain bit-identical outputs.  The
    canonical seed is {!default_seed}, derived from the experiment id alone
    via {!Prng.derive}. *)

type output = {
  id : string;
  title : string;
  summary : Table.t;
  plots : Plot.t list;
  frames : (string * Series.Frame.t) list;  (** (file stem, frame) *)
  notes : string list;
}

type t = {
  id : string;
  title : string;
  paper_ref : string;  (** e.g. "Fig. 5, §5.4" *)
  run : seed:int -> scale:float -> output;
      (** Must be deterministic in [(seed, scale)]; experiments that use no
          randomness ignore [seed]. *)
}

val default_seed : id:string -> int
(** The canonical seed for an experiment: [Prng.derive_seed] of the id under
    an ["experiment/"] namespace.  Independent of run order and pool size. *)

val run : t -> scale:float -> output
(** [run t ~scale] invokes [t.run] with the canonical {!default_seed}. *)

val print : Format.formatter -> output -> unit
(** Renders title, summary table, plots and notes. *)

val print_to_string : output -> string
(** {!print} into a fresh buffer — what the parallel runner stores per job. *)

val save_csvs : output -> dir:string -> string list
(** Writes each frame as [dir/<id>-<stem>.csv] (creating [dir] and any
    missing parents, [mkdir -p] style); returns the paths written.  Safe to
    call twice with the same [dir] (files are overwritten) and from
    concurrent workers targeting the same tree.
    @raise Invalid_argument if [dir] exists and is not a directory. *)

(** Fig. 1 (§5.2): compensation of a frequency reduction with a credit
    allocation.

    pi-app runs at the maximum frequency (2667 MHz) with initial credits 10,
    20, …, 100; then at 2133 MHz with the credits computed by eq. (4)
    ([C / (ratio * cf)], i.e. 13, 25, 38, …).  The two execution-time curves
    must coincide — except where the compensated credit exceeds 100 %, which
    a single CPU cannot deliver (the paper's top-axis values 113 and 125). *)

val experiment : Experiment.t

(** Small measurement rigs shared by the validation, Fig. 1, Table 1 and
    Table 2 experiments: single-purpose hosts with the frequency pinned or a
    specific governor, returning one scalar measurement. *)

val run_pi :
  ?arch:Cpu_model.Arch.t ->
  ?freq:Cpu_model.Frequency.mhz ->
  ?credit:float ->
  ?duty_cycle:float ->
  ?max_sim_time:Sim_time.t ->
  work:float ->
  unit ->
  float
(** Executes one pi-app of [work] absolute seconds in a VM with the given
    credit (default 100) on a host pinned at [freq] (default the maximum),
    with an idle Dom0, under the Credit scheduler.  Returns the execution
    time in seconds.
    @raise Failure if the job does not finish within [max_sim_time]
    (default 20 000 simulated seconds). *)

val measure_load :
  ?arch:Cpu_model.Arch.t ->
  ?freq:Cpu_model.Frequency.mhz ->
  ?warmup:Sim_time.t ->
  ?measure:Sim_time.t ->
  rate:float ->
  unit ->
  float
(** Mean global load (fraction of wall time busy, 0–1) of a host pinned at
    [freq] running a single uncapped VM with a Web-app injecting [rate]
    absolute work per second.  Defaults: 60 s warmup, 240 s measurement. *)

val measure_cf :
  ?arch:Cpu_model.Arch.t ->
  ?rate:float ->
  Cpu_model.Frequency.mhz ->
  float
(** The §5.2 calibration procedure: measure the same workload's load at
    maximum frequency and at the given frequency, then recover
    [cf = L_max / (L_i * ratio_i)] from eq. (1). *)

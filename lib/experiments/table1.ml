module Arch = Cpu_model.Arch
module Frequency = Cpu_model.Frequency

let paper_values =
  [
    (Arch.xeon_x3440.Arch.name, 0.94867);
    (Arch.xeon_l5420.Arch.name, 0.99903);
    (Arch.xeon_e5_2620.Arch.name, 0.80338);
    (Arch.opteron_6164_he.Arch.name, 0.99508);
    (Arch.elite_8300.Arch.name, 0.86206);
  ]

let run ~seed:_ ~scale =
  let measure = Sim_time.of_sec_f (Float.max 20.0 (240.0 *. scale)) in
  let summary =
    Table.create
      ~columns:
        [
          ("processor", Table.Left);
          ("cf_min (paper)", Table.Right);
          ("cf_min (measured)", Table.Right);
          ("error %", Table.Right);
        ]
  in
  List.iter
    (fun arch ->
      let fmin = Frequency.min_freq arch.Arch.freq_table in
      (* Use a rate every architecture can absorb at its minimum frequency. *)
      let rate = 0.10 in
      let l_max =
        Rig.measure_load ~arch ~freq:(Frequency.max_freq arch.Arch.freq_table) ~rate ~measure ()
      in
      let l_min = Rig.measure_load ~arch ~freq:fmin ~rate ~measure () in
      let measured = l_max /. (l_min *. Frequency.ratio arch.Arch.freq_table fmin) in
      let paper = List.assoc arch.Arch.name paper_values in
      Table.add_row summary
        [
          arch.Arch.name;
          Printf.sprintf "%.5f" paper;
          Printf.sprintf "%.5f" measured;
          Table.cell_f ((measured -. paper) /. paper *. 100.0);
        ])
    Arch.table1_machines;
  {
    Experiment.id = "table1";
    title = "cf_min on different processors";
    summary;
    plots = [];
    frames = [];
    notes =
      [
        "the architecture models embed the paper's cf_min as their speed law;";
        "this experiment validates that the measurement procedure of 5.2 recovers them";
      ];
  }

let experiment =
  {
    Experiment.id = "table1";
    title = "cf_min on different processors";
    paper_ref = "Table 1, §5.8";
    run;
  }

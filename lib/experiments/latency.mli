(** Scheduler wake-up latency ablation (id: [ablation-boost]).

    The paper's reference [6] (Cherkasova et al., "Comparison of the three
    CPU schedulers in Xen") is about exactly this: throughput-fair
    schedulers can still have terrible I/O latency.  Xen's Credit scheduler
    answers with BOOST — a freshly woken domain jumps the round-robin queue
    for its next dispatch.

    An interactive domain (closed-loop clients with think times) shares the
    host with a pack of CPU-bound batch domains; we compare response-time
    statistics with BOOST enabled (Xen default, and what PAS inherits) and
    disabled.  Fairness is untouched either way — only latency moves. *)

val experiment : Experiment.t

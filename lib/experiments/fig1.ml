module Frequency = Cpu_model.Frequency

let arch = Cpu_model.Arch.optiplex_755
let reduced_freq = 2133

let run ~seed:_ ~scale =
  let work = Float.max 5.0 (100.0 *. scale) in
  let freq_table = arch.Cpu_model.Arch.freq_table in
  let ratio = Frequency.ratio freq_table reduced_freq in
  let cf = Cpu_model.Calibration.cf arch.Cpu_model.Arch.calibration freq_table reduced_freq in
  let summary =
    Table.create
      ~columns:
        [
          ("initial credit %", Table.Right);
          ("new credit %", Table.Right);
          ("T @ 2667 MHz (s)", Table.Right);
          ("T @ 2133 MHz (s)", Table.Right);
          ("deviation %", Table.Right);
        ]
  in
  let t_max_series = Series.create ~name:"T_at_2667" in
  let t_new_series = Series.create ~name:"T_at_2133_compensated" in
  List.iter
    (fun credit ->
      let new_credit = Pas.Equations.compensated_credit ~initial:credit ~ratio ~cf in
      let t_max = Rig.run_pi ~arch ~credit ~work () in
      (* A single CPU cannot deliver more than 100 %: compensated credits
         above 100 (initial 90/100) are clamped, like a Xen cap on one CPU. *)
      let t_new =
        Rig.run_pi ~arch ~freq:reduced_freq ~credit:(Float.min 100.0 new_credit) ~work ()
      in
      let deviation = (t_new -. t_max) /. t_max *. 100.0 in
      Table.add_row summary
        [
          Table.cell_f1 credit;
          Table.cell_f1 new_credit;
          Table.cell_f t_max;
          Table.cell_f t_new;
          Table.cell_f1 deviation;
        ];
      (* Abuse of the time axis: index the series by the credit value so the
         two curves can be plotted against the paper's X axis. *)
      let x = Sim_time.of_sec_f credit (* lint:ignore unit-call: credit deliberately plotted on the time axis *) in
      Series.add t_max_series x t_max;
      Series.add t_new_series x t_new)
    [ 10.0; 20.0; 30.0; 40.0; 50.0; 60.0; 70.0; 80.0; 90.0; 100.0 ];
  let plot =
    Plot.create ~title:"Fig. 1 — execution time vs initial credit (x axis = credit %)" ()
  in
  Plot.add plot t_max_series;
  Plot.add plot t_new_series;
  let frame = Series.Frame.create ~time_label:"initial_credit" () in
  Series.Frame.add_series frame t_max_series;
  Series.Frame.add_series frame t_new_series;
  {
    Experiment.id = "fig1";
    title = "Compensation of frequency reduction with credit allocation";
    summary;
    plots = [ plot ];
    frames = [ ("curves", frame) ];
    notes =
      [
        "paper: the curves coincide; compensated credits above 100% (initial 90/100)";
        "saturate a single CPU, so those points deviate upward - same ceiling as the paper's axis";
      ];
  }

let experiment =
  {
    Experiment.id = "fig1";
    title = "Compensation of frequency reduction with credit allocation";
    paper_ref = "Fig. 1, §5.2";
    run;
  }

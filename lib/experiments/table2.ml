module Platform = Platforms.Platform
module Domain = Hypervisor.Domain
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

let paper_times =
  [
    ("Hyper-V", (1601.0, 3212.0));
    ("VMware", (1550.0, 2132.0));
    ("Xen/credit", (1559.0, 2599.0));
    ("Xen/PAS", (1559.0, 1560.0));
    ("Xen/SEDF", (616.0, 616.0));
    ("KVM", (599.0, 599.0));
    ("Vbox", (625.0, 625.0));
  ]

(* Xen/Credit at the maximum frequency delivers 20% of the host to V20, so
   Table 2's 1559 s implies ~312 absolute seconds of work; pi-app's ~0.5
   duty cycle comes from the variable-credit platforms' 616 s (one busy
   vCPU on the two-core host). *)
let base_work = 311.8
let duty_cycle = 0.5

let run_one platform ~mode ~scale =
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.elite_8300 in
  let work = base_work *. scale /. platform.Platform.efficiency in
  let pi = Workloads.Pi_app.create ~duty_cycle ~work () in
  let v20 = Domain.create ~name:"V20" ~credit_pct:20.0 (Workloads.Pi_app.workload pi) in
  let v70 = Domain.create ~name:"V70" ~credit_pct:70.0 (Workloads.Workload.idle ()) in
  let dom0_app =
    Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:0.01) ()
  in
  let dom0 =
    Domain.create ~is_dom0:true ~name:"Dom0" ~credit_pct:10.0
      (Workloads.Web_app.workload dom0_app)
  in
  let instance = Platform.instantiate platform ~mode ~processor [ dom0; v20; v70 ] in
  let host =
    Host.create ~sim ~processor ~scheduler:instance.Platform.scheduler
      ?governor:instance.Platform.governor ()
  in
  let limit = Sim_time.of_sec_f (20_000.0 *. scale) in
  let chunk = Sim_time.of_sec_f (Float.max 1.0 (10.0 *. scale)) in
  let rec loop () =
    if Workloads.Pi_app.finished pi then ()
    else if Sim_time.compare (Host.now host) limit >= 0 then
      failwith ("Table2: pi-app did not finish on " ^ platform.Platform.name)
    else begin
      Host.run_for host chunk;
      loop ()
    end
  in
  loop ();
  match Workloads.Pi_app.execution_time pi with
  | Some t -> Sim_time.to_sec t /. scale (* normalise back to paper-scale seconds *)
  (* unreachable: the loop above runs until the pi app finishes. *)
  | None -> assert false

let run ~seed:_ ~scale =
  let summary =
    Table.create
      ~columns:
        [
          ("platform", Table.Left);
          ("family", Table.Left);
          ("Performance (s)", Table.Right);
          ("OnDemand (s)", Table.Right);
          ("degradation %", Table.Right);
          ("paper perf/od/deg", Table.Right);
        ]
  in
  List.iter
    (fun p ->
      let t_perf = run_one p ~mode:Platform.Performance ~scale in
      let t_od = run_one p ~mode:Platform.Ondemand ~scale in
      let degradation = (t_od -. t_perf) /. t_od *. 100.0 in
      let paper_perf, paper_od = List.assoc p.Platform.name paper_times in
      let paper_deg = (paper_od -. paper_perf) /. paper_od *. 100.0 in
      let family =
        match p.Platform.kind with
        | Platform.Fix_credit -> "fix credit"
        | Platform.Variable_credit -> "variable credit"
        | Platform.Power_aware -> "power-aware"
      in
      Table.add_row summary
        [
          p.Platform.name;
          family;
          Table.cell_f t_perf;
          Table.cell_f t_od;
          Table.cell_f1 degradation;
          Printf.sprintf "%.0f/%.0f/%.0f" paper_perf paper_od paper_deg;
        ])
    Platform.catalog;
  {
    Experiment.id = "table2";
    title = "Execution times on different virtualization platforms";
    summary;
    plots = [];
    frames = [];
    notes =
      [
        "expected shape: fix-credit platforms degrade under power management, PAS cancels";
        "the degradation, variable-credit platforms are fast and undegraded but defeat DVFS";
      ];
  }

let experiment =
  {
    Experiment.id = "table2";
    title = "Execution times on different virtualization platforms";
    paper_ref = "Table 2, §5.8";
    run;
  }

module Domain = Hypervisor.Domain
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

let pinned_processor arch freq =
  let freq =
    match freq with
    | Some f -> f
    | None -> Cpu_model.Frequency.max_freq arch.Cpu_model.Arch.freq_table
  in
  Processor.create ~init_freq:freq arch

let run_pi ?(arch = Cpu_model.Arch.optiplex_755) ?freq ?(credit = 100.0) ?(duty_cycle = 1.0)
    ?(max_sim_time = Sim_time.of_sec 20_000) ~work () =
  let sim = Simulator.create () in
  let processor = pinned_processor arch freq in
  let pi = Workloads.Pi_app.create ~duty_cycle ~work () in
  let vm = Domain.create ~name:"vm" ~credit_pct:credit (Workloads.Pi_app.workload pi) in
  let dom0 = Domain.create ~is_dom0:true ~name:"Dom0" ~credit_pct:10.0 (Workloads.Workload.idle ()) in
  let scheduler = Sched_credit.create [ dom0; vm ] in
  let host = Host.create ~sim ~processor ~scheduler () in
  let chunk = Sim_time.of_sec 10 in
  let rec loop () =
    if Workloads.Pi_app.finished pi then ()
    else if Sim_time.compare (Host.now host) max_sim_time >= 0 then
      failwith "Rig.run_pi: job did not finish in time"
    else begin
      Host.run_for host chunk;
      loop ()
    end
  in
  loop ();
  match Workloads.Pi_app.execution_time pi with
  | Some t -> Sim_time.to_sec t
  (* unreachable: the loop above runs until the pi app finishes. *)
  | None -> assert false

let measure_load ?(arch = Cpu_model.Arch.optiplex_755) ?freq ?(warmup = Sim_time.of_sec 60)
    ?(measure = Sim_time.of_sec 240) ~rate () =
  let sim = Simulator.create () in
  let processor = pinned_processor arch freq in
  let app = Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate) () in
  let vm = Domain.create ~name:"vm" ~credit_pct:0.0 (Workloads.Web_app.workload app) in
  let dom0 = Domain.create ~is_dom0:true ~name:"Dom0" ~credit_pct:10.0 (Workloads.Workload.idle ()) in
  let scheduler = Sched_credit.create [ dom0; vm ] in
  let host = Host.create ~sim ~processor ~scheduler () in
  Host.run_for host warmup;
  let probe = Host.utilization_probe host in
  ignore (probe ());
  Host.run_for host measure;
  probe ()

let measure_cf ?(arch = Cpu_model.Arch.optiplex_755) ?(rate = 0.15) freq =
  let table = arch.Cpu_model.Arch.freq_table in
  let l_max = measure_load ~arch ~freq:(Cpu_model.Frequency.max_freq table) ~rate () in
  let l_i = measure_load ~arch ~freq ~rate () in
  let ratio = Cpu_model.Frequency.ratio table freq in
  l_max /. (l_i *. ratio)

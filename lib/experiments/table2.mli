(** Table 2 (§5.8): execution times on different virtualization platforms.

    pi-app runs in V20 (20 % credit) while V70 (70 %) stays lazy, on the
    Elite 8300 (i7-3770), for each platform profile under the performance
    governor and under the platform's power management ("OnDemand" row).
    The degradation is the paper's
    [(T_ondemand - T_performance) / T_ondemand * 100].

    Expected shape: the fix-credit platforms degrade heavily (paper:
    Hyper-V 50 %, VMware 27 %, Xen/Credit 40 %), Xen/PAS cancels the
    degradation, and the variable-credit platforms (Xen/SEDF, KVM, VBox) are
    both much faster (the lazy V70's capacity flows to V20) and undegraded
    — at the price of defeating DVFS. *)

val experiment : Experiment.t

val paper_times : (string * (float * float)) list
(** Platform name → (performance, ondemand) execution times from Table 2. *)

(** The paper's common experimental setup (§5.3).

    Two VMs — V20 (20 % credit) and V70 (70 % credit) — plus Dom0 holding
    the remaining 10 % with the highest priority, on the Optiplex 755.  Each
    VM runs the Web-app under a three-phase inactive/active/inactive
    profile; the active load is either {e exact} (100 % of the VM's
    capacity) or {e thrashing} (exceeding it).

    Default timeline (scaled by [scale]):
    V20 active over [500 s, 5000 s), V70 over [2500 s, 7000 s), total
    7500 s.  Phase A = V20 alone, phase B = both, phase C = V70 alone. *)

type sched_kind = Credit | Sedf | Credit2 | Pas_scheduler
type gov_kind = Performance | Stock_ondemand | Stable_ondemand | Powersave | No_governor
type load_kind = Exact | Thrashing

type spec = {
  sched : sched_kind;
  gov : gov_kind;
  load : load_kind;
  scale : float;  (** time compression: 1.0 = paper-length run *)
}

val spec :
  ?sched:sched_kind -> ?gov:gov_kind -> ?load:load_kind -> ?scale:float -> unit -> spec
(** Defaults: Credit scheduler, stable ondemand, exact load, scale 1.0. *)

type phase = A | B | C

type result

val run : spec -> result

val host : result -> Hypervisor.Host.t
val v20 : result -> Hypervisor.Domain.t
val v70 : result -> Hypervisor.Domain.t
val dom0 : result -> Hypervisor.Domain.t
val pas : result -> Pas.Pas_sched.t option
val duration : result -> Sim_time.t

val phase_bounds : result -> phase -> Sim_time.t * Sim_time.t
(** The inner 80 % of each phase, so transients at phase switches do not
    pollute the means. *)

val phase_mean : result -> phase -> Series.t -> float

val v20_load : result -> Series.t
val v70_load : result -> Series.t
val v20_absolute : result -> Series.t
val v70_absolute : result -> Series.t
val frequency : result -> Series.t

val mean_frequency : result -> phase -> float

val sla_deficit : result -> Hypervisor.Domain.t -> float
(** Mean shortfall (in percentage points) of the domain's absolute load
    below its credit, over the samples where the domain was active —
    the QoS-violation measure motivating the paper. *)

(** Multi-core ablation (§7 perspective: multi-core / per-core DVFS).

    Table 2 ran on a quad-core i7-3770 with package-level DVFS, while the
    simulator's main experiments use the paper's single-processor setup.
    This experiment rebuilds the Table 2 mechanism on an explicit two-core
    host: V20 (one vCPU, CPU-bound pi-app) next to a lazy V70, under

    - fix credit + the Linux multi-core ondemand rule (max over cores):
      V20's 20 % host cap spreads thin, no core looks busy, the package
      clocks down — the degradation of Table 2's left column;
    - work-conserving (Credit2) + same governor: V20 compacts onto one
      core, saturates it, and the max-over-cores rule pins the package at
      maximum — mechanistically the zero-degradation right column, with
      T ≈ 0.4/1.0 of the capped time (the 616 s vs 1559 s ratio);
    - PAS-SMP + fix credit: the package stays slow {e and} V20 finishes in
      the capped-at-max-frequency time — no degradation, least energy;
    - the work-conserving case again under {e per-core} DVFS, showing the
      energy win of scaling only the busy core. *)

val experiment : Experiment.t

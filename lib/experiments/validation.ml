module Frequency = Cpu_model.Frequency

let arch = Cpu_model.Arch.optiplex_755

let run ~seed:_ ~scale =
  let table_dur = Sim_time.of_sec_f (Float.max 20.0 (240.0 *. scale)) in
  let freq_table = arch.Cpu_model.Arch.freq_table in
  let levels = Array.to_list (Frequency.levels freq_table) in
  let rates = [ 0.05; 0.10; 0.15 ] in
  (* Eq. (1): cf recovered from load measurements, per frequency and rate. *)
  let eq1 =
    Table.create
      ~columns:
        (("freq MHz", Table.Left)
        :: List.map (fun r -> (Printf.sprintf "cf @ rate %.2f" r, Table.Right)) rates
        @ [ ("model cf", Table.Right) ])
  in
  List.iter
    (fun f ->
      let cells =
        List.map
          (fun rate ->
            let l_max =
              Rig.measure_load ~arch ~freq:(Frequency.max_freq freq_table) ~rate
                ~measure:table_dur ()
            in
            let l_i = Rig.measure_load ~arch ~freq:f ~rate ~measure:table_dur () in
            Printf.sprintf "%.4f" (l_max /. (l_i *. Frequency.ratio freq_table f)))
          rates
      in
      let model =
        Cpu_model.Calibration.cf arch.Cpu_model.Arch.calibration freq_table f
      in
      Table.add_row eq1 ((string_of_int f :: cells) @ [ Printf.sprintf "%.4f" model ]))
    levels;
  (* Eq. (2): execution-time scaling across frequencies. *)
  let work = Float.max 5.0 (100.0 *. scale) in
  let eq2 =
    Table.create
      ~columns:
        [
          ("freq MHz", Table.Left);
          ("T_i (s)", Table.Right);
          ("T_i * ratio * cf", Table.Right);
          ("T_max (s)", Table.Right);
        ]
  in
  let t_max = Rig.run_pi ~arch ~freq:(Frequency.max_freq freq_table) ~work () in
  List.iter
    (fun f ->
      let t_i = Rig.run_pi ~arch ~freq:f ~work () in
      let ratio = Frequency.ratio freq_table f in
      let cf = Cpu_model.Calibration.cf arch.Cpu_model.Arch.calibration freq_table f in
      Table.add_row eq2
        [
          string_of_int f;
          Table.cell_f t_i;
          Table.cell_f (t_i *. ratio *. cf);
          Table.cell_f t_max;
        ])
    levels;
  (* Eq. (3): execution-time scaling across credits at max frequency. *)
  let eq3 =
    Table.create
      ~columns:
        [
          ("credit %", Table.Left);
          ("T_j (s)", Table.Right);
          ("T_j * C_j / C_init", Table.Right);
          ("T_init (s)", Table.Right);
        ]
  in
  let t_init = Rig.run_pi ~arch ~credit:100.0 ~work () in
  List.iter
    (fun c ->
      let t_s = Rig.run_pi ~arch ~credit:c ~work () in
      Table.add_row eq3
        [
          Table.cell_f1 c;
          Table.cell_f t_s;
          Table.cell_f (t_s *. c /. 100.0);
          Table.cell_f t_init;
        ])
    [ 10.0; 20.0; 40.0; 60.0; 80.0; 100.0 ];
  (* Merge the three tables into one summary (they have different shapes, so
     present eq1 as the summary and the others through notes + extra rows). *)
  let summary =
    Table.create ~columns:[ ("assumption", Table.Left); ("verdict", Table.Left) ]
  in
  Table.add_row summary
    [ "eq (1): load ratio = ratio * cf"; "see cf columns below (constant across rates)" ];
  Table.add_row summary
    [ "eq (2): T_i = T_max / (ratio * cf)"; "T_i * ratio * cf ~= T_max at every level" ];
  Table.add_row summary
    [ "eq (3): T_j = T_init * C_init / C_j"; "T_j * C_j / C_init ~= T_init at every credit" ];
  {
    Experiment.id = "validation";
    title = "Verification of the proportionality assumptions (§5.2)";
    summary;
    plots = [];
    frames = [];
    notes =
      [
        "eq (1) table:\n" ^ Table.render eq1;
        "eq (2) table:\n" ^ Table.render eq2;
        "eq (3) table:\n" ^ Table.render eq3;
      ];
  }

let experiment =
  {
    Experiment.id = "validation";
    title = "Verification of the proportionality assumptions (§5.2)";
    paper_ref = "§5.2, eq. (1)-(3)";
    run;
  }

module Sweep = Validate.Sweep

(* The sweep's per-point seeds derive from the point parameters (see
   Sweep.point_key), so the canonical experiment seed is unused: the rig's
   determinism contract is stronger than the registry's — the same grid
   always measures the same numbers even outside the runner. *)
let run ~seed:_ ~scale =
  let horizon = Float.max 30.0 (300.0 *. scale) in
  let warmup = Float.max 5.0 (30.0 *. scale) in
  (* jobs = 1: the registry runner already shards experiments across
     domains; nesting a second pool inside a worker would oversubscribe. *)
  let results = Sweep.run_grid ~horizon ~warmup Sweep.quick_grid in
  let disagreements = Sweep.failures results in
  {
    Experiment.id = "validate-queueing";
    title = "Queueing-theoretic validation: measured vs M/M/c closed forms";
    summary = Sweep.table results;
    plots = [];
    frames = [];
    notes =
      [
        "starred columns are the analytic M/M/1 / Erlang-C targets with the";
        "oracle's service rate mu = ratio*cf / service_mean at the governor's";
        "pinned frequency (the powersave row is the DVFS case: speed 0.6);";
        "agreement is judged per metric within 3x the batch-means 95% CI plus";
        "5% relative and a dispatch-tick discretisation floor";
        Printf.sprintf "verdicts: %d/%d points agree with the closed forms"
          (List.length results - List.length disagreements)
          (List.length results);
      ];
  }

let experiment =
  {
    Experiment.id = "validate-queueing";
    title = "Queueing-theoretic validation rig";
    paper_ref = "methodology check (cf. eq. (1)-(4) capacity law)";
    run;
  }

module Domain = Hypervisor.Domain
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor
module Closed_loop = Workloads.Closed_loop

let batch_domains = 6

let run_variant ~seed ~boost ~scale =
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  (* Both variants share the seed so they face the same offered load; the
     seed itself is derived from the experiment id by the caller. *)
  let interactive_app =
    Closed_loop.create ~seed ~clients:3 ~think_time:0.2 ~request_work:0.002 ()
  in
  let interactive =
    Domain.create ~name:"interactive" ~credit_pct:10.0 (Closed_loop.workload interactive_app)
  in
  let batch =
    List.init batch_domains (fun i ->
        Domain.create
          ~name:(Printf.sprintf "batch%d" i)
          ~credit_pct:15.0
          (Workloads.Workload.busy_loop ()))
  in
  let scheduler = Sched_credit.create ~boost (interactive :: batch) in
  let host = Host.create ~sim ~processor ~scheduler () in
  Host.run_for host (Sim_time.of_sec_f (Float.max 30.0 (300.0 *. scale)));
  let stats = Closed_loop.response_times interactive_app in
  let batch_share =
    List.fold_left (fun acc d -> acc +. Sim_time.to_sec (Domain.cpu_time d)) 0.0 batch
    /. Sim_time.to_sec (Host.now host)
  in
  ( Stats.Running.mean stats *. 1000.0,
    Stats.Running.max stats *. 1000.0,
    Stats.Running.count stats,
    batch_share *. 100.0 )

let run ~seed ~scale =
  let summary =
    Table.create
      ~columns:
        [
          ("BOOST", Table.Left);
          ("mean response (ms)", Table.Right);
          ("max response (ms)", Table.Right);
          ("requests", Table.Right);
          ("batch share %", Table.Right);
        ]
  in
  let rows =
    [ ("enabled (Xen default)", true); ("disabled", false) ]
  in
  List.iter
    (fun (label, boost) ->
      let mean, worst, count, batch_share = run_variant ~seed ~boost ~scale in
      Table.add_row summary
        [ label; Table.cell_f mean; Table.cell_f worst; string_of_int count;
          Table.cell_f1 batch_share ])
    rows;
  {
    Experiment.id = "ablation-boost";
    title = "Credit BOOST: wake-up latency vs a pack of batch domains";
    summary;
    plots = [];
    frames = [];
    notes =
      [
        "expected: BOOST cuts the interactive domain's response times by skipping";
        "the round-robin queue on wake-up, while the batch domains' CPU share is";
        "unchanged (fairness is preserved; only dispatch order moves)";
      ];
  }

let experiment =
  {
    Experiment.id = "ablation-boost";
    title = "Credit BOOST: wake-up latency";
    paper_ref = "ref. [6] of the paper (Xen scheduler comparison)";
    run;
  }

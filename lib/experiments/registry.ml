let all =
  (Validation.experiment :: Fig1.experiment :: Profile.all)
  @ [ Table1.experiment; Table2.experiment ]
  @ Ablation.all
  @ [ Smp_ablation.experiment; Cluster_ablation.experiment ]
  @ Sweeps.all
  @ [ Latency.experiment; Validate_queueing.experiment ]

let find id = List.find_opt (fun e -> String.equal e.Experiment.id id) all
let ids () = List.map (fun e -> e.Experiment.id) all

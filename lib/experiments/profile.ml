type view = Global | Absolute

let phase_name = function Scenario.A -> "A (V20 alone)" | B -> "B (both)" | C -> "C (V70 alone)"

let make ~id ~title ~paper_ref ~sched ~gov ~load ~view ~expected =
  let run ~seed:_ ~scale =
    let r = Scenario.run (Scenario.spec ~sched ~gov ~load ~scale ()) in
    let columns =
      ("series", Table.Left)
      :: List.map (fun p -> (phase_name p, Table.Right)) [ Scenario.A; B; C ]
    in
    let table = Table.create ~columns in
    let row name series =
      Table.add_row table
        (name
        :: List.map
             (fun p -> Table.cell_f (Scenario.phase_mean r p series))
             [ Scenario.A; B; C ])
    in
    row "V20 global load %" (Scenario.v20_load r);
    row "V70 global load %" (Scenario.v70_load r);
    row "V20 absolute load %" (Scenario.v20_absolute r);
    row "V70 absolute load %" (Scenario.v70_absolute r);
    Table.add_rule table;
    row "frequency MHz" (Scenario.frequency r);
    let load_plot =
      let p = Plot.create ~y_min:0.0 ~y_max:100.0 ~title:(title ^ " — loads (%)") () in
      (match view with
      | Global ->
          Plot.add p (Scenario.v20_load r);
          Plot.add p (Scenario.v70_load r)
      | Absolute ->
          Plot.add p (Scenario.v20_absolute r);
          Plot.add p (Scenario.v70_absolute r));
      p
    in
    let freq_plot =
      let p = Plot.create ~y_min:0.0 ~y_max:2800.0 ~title:(title ^ " — frequency (MHz)") () in
      Plot.add p (Scenario.frequency r);
      p
    in
    let notes =
      expected
      @ [
          Printf.sprintf "V20 SLA deficit: %.2f points; energy: %.0f J; mean power: %.1f W"
            (Scenario.sla_deficit r (Scenario.v20 r))
            (Hypervisor.Host.energy_joules (Scenario.host r))
            (Hypervisor.Host.mean_watts (Scenario.host r));
        ]
      @
      match Scenario.pas r with
      | Some p ->
          [
            Printf.sprintf
              "PAS: %d evaluations, %d frequency decisions, V20 effective credit at end %.1f%%"
              (Pas.Pas_sched.evaluations p)
              (Pas.Pas_sched.frequency_decisions p)
              (Pas.Pas_sched.effective_credit p (Scenario.v20 r));
          ]
      | None -> []
    in
    {
      Experiment.id;
      title;
      summary = table;
      plots = [ load_plot; freq_plot ];
      frames = [ ("series", Hypervisor.Host.frame (Scenario.host r)) ];
      notes;
    }
  in
  { Experiment.id; title; paper_ref; run }

let fig2 =
  make ~id:"fig2" ~title:"Load profile at maximum frequency" ~paper_ref:"Fig. 2, §5.3"
    ~sched:Scenario.Credit ~gov:Scenario.Performance ~load:Scenario.Exact ~view:Global
    ~expected:
      [ "paper: V20 plateaus at 20%, V70 at 70%, frequency pinned at 2667 MHz" ]

let fig3 =
  make ~id:"fig3" ~title:"Credit scheduler under stock ondemand (oscillating)"
    ~paper_ref:"Fig. 3, §5.4" ~sched:Scenario.Credit ~gov:Scenario.Stock_ondemand
    ~load:Scenario.Exact ~view:Global
    ~expected:
      [
        "paper: same plateaus as Fig. 2 but the frequency trace oscillates wildly";
        "check the frequency plot: the mean sits between P-states because of the flapping";
      ]

let fig4 =
  make ~id:"fig4" ~title:"Credit scheduler under the authors' stable governor"
    ~paper_ref:"Fig. 4, §5.4" ~sched:Scenario.Credit ~gov:Scenario.Stable_ondemand
    ~load:Scenario.Exact ~view:Global
    ~expected:
      [ "paper: identical plateaus, stable staircase frequency (1600 MHz in phase A)" ]

let fig5 =
  make ~id:"fig5" ~title:"Absolute loads: fix credit penalises V20" ~paper_ref:"Fig. 5, §5.4"
    ~sched:Scenario.Credit ~gov:Scenario.Stable_ondemand ~load:Scenario.Exact ~view:Absolute
    ~expected:
      [
        "paper: V20 absolute load ~10-12% in phase A (penalised by the low frequency),";
        "climbing to 20% in phase B once V70's activity raises the frequency";
      ]

let fig6 =
  make ~id:"fig6" ~title:"SEDF global loads under exact load" ~paper_ref:"Fig. 6, §5.5"
    ~sched:Scenario.Sedf ~gov:Scenario.Stable_ondemand ~load:Scenario.Exact ~view:Global
    ~expected:
      [ "paper: V20 at ~35% in phase A (unused slices), back to 20% in phase B" ]

let fig7 =
  make ~id:"fig7" ~title:"SEDF absolute loads under exact load" ~paper_ref:"Fig. 7, §5.5"
    ~sched:Scenario.Sedf ~gov:Scenario.Stable_ondemand ~load:Scenario.Exact ~view:Absolute
    ~expected:[ "paper: V20 holds 20% absolute during the entire experiment" ]

let fig8 =
  make ~id:"fig8" ~title:"SEDF under thrashing load: frequency stuck at max"
    ~paper_ref:"Fig. 8, §5.6" ~sched:Scenario.Sedf ~gov:Scenario.Stable_ondemand
    ~load:Scenario.Thrashing ~view:Global
    ~expected:
      [
        "paper: V20 consumes ~85% in phase A, preventing any frequency reduction";
        "(global = absolute here since the frequency never leaves the maximum)";
      ]

let fig9 =
  make ~id:"fig9" ~title:"PAS global loads under thrashing load" ~paper_ref:"Fig. 9, §5.7"
    ~sched:Scenario.Pas_scheduler ~gov:Scenario.No_governor ~load:Scenario.Thrashing
    ~view:Global
    ~expected:
      [
        "paper: V20 granted 33% of credit at 1600 MHz in phase A, 20% at 2667 MHz in phase B";
      ]

let fig10 =
  make ~id:"fig10" ~title:"PAS absolute loads under thrashing load" ~paper_ref:"Fig. 10, §5.7"
    ~sched:Scenario.Pas_scheduler ~gov:Scenario.No_governor ~load:Scenario.Thrashing
    ~view:Absolute
    ~expected:
      [ "paper: V20 holds 20% absolute in every phase; frequency low while V70 is lazy" ]

let all = [ fig2; fig3; fig4; fig5; fig6; fig7; fig8; fig9; fig10 ]

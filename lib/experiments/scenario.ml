module Domain = Hypervisor.Domain
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

type sched_kind = Credit | Sedf | Credit2 | Pas_scheduler
type gov_kind = Performance | Stock_ondemand | Stable_ondemand | Powersave | No_governor
type load_kind = Exact | Thrashing

type spec = { sched : sched_kind; gov : gov_kind; load : load_kind; scale : float }

let spec ?(sched = Credit) ?(gov = Stable_ondemand) ?(load = Exact) ?(scale = 1.0) () =
  if not (scale > 0.0) then invalid_arg "Scenario.spec: scale must be positive";
  { sched; gov; load; scale }

type phase = A | B | C

type result = {
  host : Host.t;
  v20 : Domain.t;
  v70 : Domain.t;
  dom0 : Domain.t;
  pas : Pas.Pas_sched.t option;
  duration : Sim_time.t;
  v20_window : Sim_time.t * Sim_time.t;
  v70_window : Sim_time.t * Sim_time.t;
  phases : (phase * (Sim_time.t * Sim_time.t)) list;
}

(* The thrashing injection rate: well beyond any compensated credit so the
   VM's queue never drains (factor 5 over the exact rate). *)
let thrashing_factor = 5.0

let run s =
  let t sec = Sim_time.of_sec_f (sec *. s.scale) in
  let v20_from = t 500.0 and v20_until = t 5000.0 in
  let v70_from = t 2500.0 and v70_until = t 7000.0 in
  let duration = t 7500.0 in
  let rate_for credit =
    let exact = Workloads.Phases.exact_rate ~credit_pct:credit in
    match s.load with Exact -> exact | Thrashing -> exact *. thrashing_factor
  in
  let web active_from active_until credit =
    (* httperf clients give up after 10 s, so an overloaded phase's backlog
       dies with the phase instead of bleeding into the next one. *)
    Workloads.Web_app.create ~timeout:(Sim_time.of_sec 10)
      ~rate_schedule:
        (Workloads.Phases.three_phase ~active_from ~active_until ~rate:(rate_for credit))
      ()
  in
  let v20_app = web v20_from v20_until 20.0 in
  let v70_app = web v70_from v70_until 70.0 in
  let dom0_app =
    Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:0.01) ()
  in
  let v20 =
    Domain.create ~name:"V20" ~credit_pct:20.0 (Workloads.Web_app.workload v20_app)
  in
  let v70 =
    Domain.create ~name:"V70" ~credit_pct:70.0 (Workloads.Web_app.workload v70_app)
  in
  let dom0 =
    Domain.create ~is_dom0:true ~name:"Dom0" ~credit_pct:10.0
      (Workloads.Web_app.workload dom0_app)
  in
  let domains = [ dom0; v20; v70 ] in
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let scheduler, pas =
    match s.sched with
    | Credit -> (Sched_credit.create domains, None)
    | Sedf -> (Sched_sedf.create domains, None)
    | Credit2 -> (Sched_credit2.create domains, None)
    | Pas_scheduler ->
        let p = Pas.Pas_sched.create ~processor domains in
        (Pas.Pas_sched.scheduler p, Some p)
  in
  let governor =
    match s.gov with
    | Performance -> Some (Governors.Governor.performance processor)
    | Stock_ondemand -> Some (Governors.Ondemand.create processor)
    | Stable_ondemand -> Some (Governors.Stable_ondemand.create processor)
    | Powersave -> Some (Governors.Governor.powersave processor)
    | No_governor -> None
  in
  let host = Host.create ~sim ~processor ~scheduler ?governor () in
  Host.run_for host duration;
  let phases =
    [
      (A, (v20_from, v70_from)); (B, (v70_from, v20_until)); (C, (v20_until, v70_until));
    ]
  in
  { (* lint:ignore shard-escape: the record is consumed by the calling experiment on the same shard *)
    host;
    v20;
    v70;
    dom0;
    pas;
    duration;
    v20_window = (v20_from, v20_until);
    v70_window = (v70_from, v70_until);
    phases;
  }

let host r = r.host
let v20 r = r.v20
let v70 r = r.v70
let dom0 r = r.dom0
let pas r = r.pas
let duration r = r.duration

(* Trim 10 % off both ends of a window so phase-switch transients (queue
   drain, governor settling) do not pollute the means. *)
let inner (lo, hi) =
  let span = Sim_time.to_us (Sim_time.sub hi lo) in
  let margin = span / 10 in
  (Sim_time.add lo (Sim_time.of_us margin), Sim_time.sub hi (Sim_time.of_us margin))

let phase_bounds r p = inner (List.assoc p r.phases)

let phase_mean r p series =
  let lo, hi = phase_bounds r p in
  Series.mean_between series lo hi

let v20_load r = Host.series_domain_load r.host r.v20
let v70_load r = Host.series_domain_load r.host r.v70
let v20_absolute r = Host.series_domain_absolute_load r.host r.v20
let v70_absolute r = Host.series_domain_absolute_load r.host r.v70
let frequency r = Host.series_frequency r.host

let mean_frequency r p = phase_mean r p (frequency r)

let sla_deficit r d =
  let window = if Domain.equal d r.v20 then r.v20_window else r.v70_window in
  let lo, hi = inner window in
  let abs_series = Host.series_domain_absolute_load r.host d in
  let credit = Domain.initial_credit d in
  let times = Series.times abs_series and values = Series.values abs_series in
  let sum = ref 0.0 and n = ref 0 in
  Array.iteri
    (fun i time ->
      if Sim_time.compare time lo >= 0 && Sim_time.compare time hi <= 0 then begin
        sum := !sum +. Float.max 0.0 (credit -. values.(i));
        incr n
      end)
    times;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

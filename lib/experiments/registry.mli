(** All reproduced experiments, in the paper's order. *)

val all : Experiment.t list

val find : string -> Experiment.t option
(** Lookup by experiment id (e.g. ["fig5"], ["table2"]). *)

val ids : unit -> string list

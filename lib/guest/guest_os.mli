(** A guest operating system: a round-robin process scheduler exposed to the
    hypervisor as a single workload.

    When the hypervisor offers the VM some CPU time, the guest OS spreads it
    over its runnable processes in round-robin order with a configurable
    timeslice.  This realises the paper's two-level scheduling: the
    hypervisor is unaware of what runs inside (§2.1). *)

type t

val create : ?timeslice:Sim_time.t -> name:string -> Process.t list -> t
(** Default timeslice: 10 ms.
    @raise Invalid_argument on a zero timeslice. *)

val name : t -> string
val processes : t -> Process.t list

val spawn : t -> Process.t -> unit
(** Adds a process at the end of the run queue. *)

val workload : t -> Workloads.Workload.t
(** The VM-level view the hypervisor schedules. *)

val cpu_time : t -> Sim_time.t
(** Total CPU time consumed by all processes. *)

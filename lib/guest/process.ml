type t = {
  pid : int;
  name : string;
  workload : Workloads.Workload.t;
  mutable cpu_time : Sim_time.t;
}

(* Guest processes are created from parallel experiment runs; pids must
   stay unique across worker domains, so the counter is atomic. *)
let next_pid = Atomic.make 0

let create ~name workload =
  { pid = Atomic.fetch_and_add next_pid 1 + 1; name; workload; cpu_time = Sim_time.zero }

let pid t = t.pid
let name t = t.name
let workload t = t.workload
let cpu_time t = t.cpu_time
let charge t used = t.cpu_time <- Sim_time.add t.cpu_time used
let runnable t = Workloads.Workload.has_work t.workload

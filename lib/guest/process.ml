type t = {
  pid : int;
  name : string;
  workload : Workloads.Workload.t;
  mutable cpu_time : Sim_time.t;
}

let next_pid = ref 0

let create ~name workload =
  incr next_pid;
  { pid = !next_pid; name; workload; cpu_time = Sim_time.zero }

let pid t = t.pid
let name t = t.name
let workload t = t.workload
let cpu_time t = t.cpu_time
let charge t used = t.cpu_time <- Sim_time.add t.cpu_time used
let runnable t = Workloads.Workload.has_work t.workload

(** A process inside a guest OS.

    §2.1 of the paper points out that running an application in a VM
    involves two scheduler levels: the hypervisor schedules VMs, and inside
    each VM a guest OS schedules processes.  A process wraps a workload and
    accounts the CPU time the guest scheduler granted it. *)

type t

val create : name:string -> Workloads.Workload.t -> t

val pid : t -> int
(** Unique across all processes of the program run. *)

val name : t -> string
val workload : t -> Workloads.Workload.t

val cpu_time : t -> Sim_time.t
(** Total CPU time consumed so far. *)

val charge : t -> Sim_time.t -> unit
(** Used by the guest scheduler; adds to {!cpu_time}. *)

val runnable : t -> bool

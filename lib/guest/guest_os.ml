module Workload = Workloads.Workload

type t = {
  name : string;
  timeslice : Sim_time.t;
  mutable procs : Process.t array;
  mutable next : int; (* round-robin pointer *)
}

let create ?(timeslice = Sim_time.of_ms 10) ~name procs =
  if Sim_time.equal timeslice Sim_time.zero then
    invalid_arg "Guest_os.create: zero timeslice";
  { name; timeslice; procs = Array.of_list procs; next = 0 }

let name t = t.name
let processes t = Array.to_list t.procs
let spawn t p = t.procs <- Array.append t.procs [| p |]

let advance t ~now ~dt =
  Array.iter (fun p -> Workload.advance (Process.workload p) ~now ~dt) t.procs

let has_work t () = Array.exists Process.runnable t.procs

(* Round-robin dispatch: offer up to a timeslice to each runnable process in
   turn until the offered CPU time is exhausted or nobody is runnable. *)
let execute t ~now ~cpu_time ~speed =
  let n = Array.length t.procs in
  let remaining = ref cpu_time in
  let consumed = ref Sim_time.zero in
  let idle_scan = ref 0 in
  while Sim_time.compare !remaining Sim_time.zero > 0 && !idle_scan < n do
    let p = t.procs.(t.next mod n) in
    t.next <- (t.next + 1) mod n;
    if Process.runnable p then begin
      let offered = Sim_time.min t.timeslice !remaining in
      let used = Workload.execute (Process.workload p) ~now ~cpu_time:offered ~speed in
      Process.charge p used;
      consumed := Sim_time.add !consumed used;
      remaining := Sim_time.sub !remaining used;
      if Sim_time.equal used Sim_time.zero then incr idle_scan else idle_scan := 0
    end
    else incr idle_scan
  done;
  !consumed

let workload t =
  if Array.length t.procs = 0 then Workload.idle ()
  else
    Workload.make ~name:t.name ~advance:(fun ~now ~dt -> advance t ~now ~dt)
      ~has_work:(has_work t)
      ~execute:(fun ~now ~cpu_time ~speed -> execute t ~now ~cpu_time ~speed)
      ()

let cpu_time t =
  Array.fold_left (fun acc p -> Sim_time.add acc (Process.cpu_time p)) Sim_time.zero t.procs

(** Custom static lint for the simulator's OCaml sources.

    A lightweight, dependency-free pass over the source text (comments,
    string and character literals are blanked before matching), tuned to
    the failure modes that matter for a deterministic fixed-point
    simulator:

    - [float-eq]: [=], [==], [!=] or [<>] with a float literal operand, and
      polymorphic [compare] next to float literals.  Exact float equality
      is almost always a rounding bug in credit/load arithmetic; use a
      tolerance or [Float.compare] deliberately and waive the line.
    - [random]: any use of the global [Random] module.  The simulator's
      runs must be reproducible; randomness goes through [Prng] with an
      explicit seed.
    - [missing-mli]: a [.ml] under a [lib/] directory without a sibling
      [.mli] — every library module must declare its interface.
    - [assert-false]: [assert false] without a nearby comment containing
      "unreachable" explaining why the branch cannot be taken.
    - [mutable-doc]: a [mutable] field exposed in an [.mli] without an
      adjacent doc comment; exposed mutability is an API contract and must
      be documented.
    - [hashtbl-create]: [Hashtbl.create] without a nearby comment (same
      line or the two above) containing "deterministic" or "hash-order".
      Hashtbl iteration order depends on hash seeding and insertion
      history — the AST effect pass flags simulation-reachable iteration
      ([effect-nondet]); this rule makes the discipline explicit where
      the table is built (lookup-only tables are fine, say so).

    The old text-based [experiment-state] rule is subsumed by the AST
    domain-safety pass in [lib/staticcheck] (rules [experiment-state] and
    [domain-capture]), which works on program structure instead of
    column-0 heuristics.

    Any line whose raw text contains ["lint:ignore"] is exempt from the
    line-based rules; issue records, the waiver marker and the report
    format are shared with the AST analyzer through [Report]. *)

type issue = Report.issue = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

val waiver : string
(** The waiver marker, ["lint:ignore"] ({!Report.waiver}). *)

val lint_source : file:string -> string -> issue list
(** Lints one compilation unit given its file name (the [.ml]/[.mli]
    suffix selects the applicable rules) and full contents.  Does not
    touch the file system; the [missing-mli] rule is not applied. *)

val lint_paths : string list -> issue list
(** Walks the given files and directories (recursively, skipping [_build]
    and dot-files), lints every [.ml]/[.mli] found and applies the
    [missing-mli] rule to [lib/] subtrees.  Issues are sorted by file and
    line. *)

val pp_issue : Format.formatter -> issue -> unit

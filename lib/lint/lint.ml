type issue = { file : string; line : int; rule : string; message : string }

let waiver = "lint:ignore"

let pp_issue ppf i =
  Format.fprintf ppf "%s:%d: [%s] %s" i.file i.line i.rule i.message

(* ------------------------------------------------------------------ *)
(* Source preparation: blank comments, string and char literals so the
   rule matchers only ever see code.  Newlines are preserved so line
   numbers survive. *)

let blank_non_code source =
  let n = String.length source in
  let buf = Bytes.of_string source in
  let blank j = if Bytes.get buf j <> '\n' then Bytes.set buf j ' ' in
  let i = ref 0 in
  let depth = ref 0 in
  while !i < n do
    let c = source.[!i] in
    if !depth > 0 then
      if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
        incr depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && source.[!i + 1] = ')' then begin
        decr depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    else if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
      depth := 1;
      blank !i;
      blank (!i + 1);
      i := !i + 2
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        let d = source.[!i] in
        if d = '\\' && !i + 1 < n then begin
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          blank !i;
          incr i;
          if d = '"' then fin := true
        end
      done
    end
    else if c = '\'' then
      (* A char literal ('x', '\n'); a lone quote is a type variable. *)
      if !i + 2 < n && source.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && source.[!j] <> '\'' do
          incr j
        done;
        for k = !i to Stdlib.min !j (n - 1) do
          blank k
        done;
        i := !j + 1
      end
      else if !i + 2 < n && source.[!i + 2] = '\'' then begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      end
      else incr i
    else incr i
  done;
  Bytes.to_string buf

let split_lines s = String.split_on_char '\n' s |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Small token helpers over a single (blanked) line. *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_digit c = c >= '0' && c <= '9'

let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub line i m = sub || loop (i + 1)) in
  m > 0 && loop 0

(* Maximal number/identifier token (dots included: [t.field], [0.0])
   extending right from [i]. *)
let token_at line i =
  let n = String.length line in
  let j = ref i in
  while !j < n && (is_ident_char line.[!j] || line.[!j] = '.') do
    incr j
  done;
  String.sub line i (!j - i)

(* The token ending just left of [i] (exclusive), skipping spaces. Returns
   the token and the index of the character preceding it (or -1). *)
let token_before line i =
  let j = ref (i - 1) in
  while !j >= 0 && line.[!j] = ' ' do
    decr j
  done;
  let stop = !j in
  while !j >= 0 && (is_ident_char line.[!j] || line.[!j] = '.') do
    decr j
  done;
  (String.sub line (!j + 1) (stop - !j), !j)

let token_after line i =
  let n = String.length line in
  let j = ref i in
  while !j < n && line.[!j] = ' ' do
    incr j
  done;
  if !j >= n then "" else token_at line !j

let is_float_literal tok =
  String.length tok > 0
  && is_digit tok.[0]
  && (String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E')

(* Does [word] occur as a standalone token in [line] before position [limit]? *)
let word_before line limit word =
  let wl = String.length word in
  let limit = Stdlib.min limit (String.length line) in
  let rec loop i =
    if i + wl > limit then false
    else if
      String.sub line i wl = word
      && (i = 0 || not (is_ident_char line.[i - 1]))
      && (i + wl >= String.length line || not (is_ident_char line.[i + wl]))
    then true
    else loop (i + 1)
  in
  loop 0

let op_chars = "<>!:+-*/=|&@^%$.~?"

(* ------------------------------------------------------------------ *)
(* Rule: float equality. *)

(* Structural-equality operators on this line: position and whether the
   operator can double as a [let]/field binding ([=] can, [==]/[!=]/[<>]
   cannot). *)
let equality_ops line =
  let n = String.length line in
  let ops = ref [] in
  let i = ref 0 in
  while !i < n do
    (match line.[!i] with
    | '=' ->
        let prev = if !i > 0 then line.[!i - 1] else ' ' in
        if String.contains op_chars prev then incr i
        else if !i + 1 < n && line.[!i + 1] = '=' then begin
          ops := (!i, `Compare_op, 2) :: !ops;
          i := !i + 2
        end
        else begin
          ops := (!i, `Maybe_binding, 1) :: !ops;
          incr i
        end
    | '<' when !i + 1 < n && line.[!i + 1] = '>' ->
        ops := (!i, `Compare_op, 2) :: !ops;
        i := !i + 2
    | '!' when !i + 1 < n && line.[!i + 1] = '=' ->
        ops := (!i, `Compare_op, 2) :: !ops;
        i := !i + 2
    | _ -> incr i);
    ()
  done;
  List.rev !ops

(* A [=] in a binding position: optional-argument default [?(x = …)],
   labelled default [~(x = …)], or record-field assignment
   [{ x = …] / [; x = …] / [with x = …]. *)
let binding_like line pos =
  let lhs, before = token_before line pos in
  if String.length lhs = 0 then true (* continuation line: not a comparison *)
  else begin
    let k = ref before in
    while !k >= 0 && line.[!k] = ' ' do
      decr k
    done;
    if !k < 0 then
      (* Operand starts the line: field on its own line ([x = 0.0;]) or a
         continued expression; treat as a binding unless context proves
         otherwise. *)
      not (String.contains lhs '.')
    else
      match line.[!k] with
      | '(' -> !k > 0 && (line.[!k - 1] = '?' || line.[!k - 1] = '~')
      | '{' | ';' -> true
      | _ ->
          (* [with] introduces record-update fields. *)
          let w, _ = token_before line (!k + 1) in
          String.equal w "with"
  end

let float_eq_issues ~file lines_code =
  let issues = ref [] in
  Array.iteri
    (fun ln line ->
      let ops = equality_ops line in
      let seen_eq = ref false in
      List.iter
        (fun (pos, kind, width) ->
          let lhs, _ = token_before line pos in
          let rhs = token_after line (pos + width) in
          let floaty = is_float_literal lhs || is_float_literal rhs in
          let comparison_context =
            match kind with
            | `Compare_op -> true
            | `Maybe_binding ->
                (!seen_eq
                || word_before line pos "if"
                || word_before line pos "when"
                || word_before line pos "while"
                || word_before line pos "assert"
                || contains_sub (String.sub line 0 pos) "&&"
                || contains_sub (String.sub line 0 pos) "||")
                && not (binding_like line pos)
          in
          if floaty && comparison_context then
            issues :=
              {
                file;
                line = ln + 1;
                rule = "float-eq";
                message =
                  Printf.sprintf
                    "structural equality with float literal (%s %s %s): compare with a \
                     tolerance, or waive with (* %s float-eq *)"
                    (if lhs = "" then "_" else lhs)
                    (String.sub line pos width)
                    (if rhs = "" then "_" else rhs)
                    waiver;
              }
              :: !issues;
          if kind = `Maybe_binding || kind = `Compare_op then seen_eq := true)
        ops;
      (* Polymorphic compare next to a float literal. *)
      let has_float_tok =
        let found = ref false in
        String.iteri
          (fun i c ->
            if
              is_digit c
              && (i = 0 || ((not (is_ident_char line.[i - 1])) && line.[i - 1] <> '.'))
              && is_float_literal (token_at line i)
            then found := true)
          line;
        !found
      in
      if has_float_tok then begin
        let n = String.length line in
        let rec scan i =
          if i + 7 <= n then
            if
              String.sub line i 7 = "compare"
              && (i = 0 || (not (is_ident_char line.[i - 1]) && line.[i - 1] <> '.'))
              && (i + 7 >= n || not (is_ident_char line.[i + 7]))
            then begin
              let prev, _ = token_before line i in
              if not (List.mem prev [ "let"; "val"; "and" ]) then
                issues :=
                  {
                    file;
                    line = ln + 1;
                    rule = "float-eq";
                    message =
                      "polymorphic compare near a float literal: use Float.compare";
                  }
                  :: !issues
            end
            else scan (i + 1)
        in
        scan 0
      end)
    lines_code;
  !issues

(* ------------------------------------------------------------------ *)
(* Rule: global Random module. *)

let random_issues ~file lines_code =
  let issues = ref [] in
  Array.iteri
    (fun ln line ->
      let n = String.length line in
      let rec scan i =
        if i + 7 <= n then
          if
            String.sub line i 7 = "Random."
            && (i = 0 || (not (is_ident_char line.[i - 1]) && line.[i - 1] <> '.'))
          then
            issues :=
              {
                file;
                line = ln + 1;
                rule = "random";
                message =
                  Printf.sprintf "global Random.%s breaks run determinism: use Prng with \
                                  an explicit seed"
                    (token_at line (i + 7));
              }
              :: !issues
          else scan (i + 1)
      in
      scan 0)
    lines_code;
  !issues

(* ------------------------------------------------------------------ *)
(* Rule: bare [assert false]. *)

let assert_false_issues ~file lines_code lines_raw =
  let issues = ref [] in
  Array.iteri
    (fun ln line ->
      let n = String.length line in
      let rec scan i =
        if i + 6 <= n then
          if
            String.sub line i 6 = "assert"
            && (i = 0 || not (is_ident_char line.[i - 1]))
            && String.equal (token_after line (i + 6)) "false"
          then begin
            let documented =
              let lower s = String.lowercase_ascii s in
              let has k = contains_sub (lower lines_raw.(k)) "unreachable" in
              has ln || (ln > 0 && has (ln - 1)) || (ln > 1 && has (ln - 2))
            in
            if not documented then
              issues :=
                {
                  file;
                  line = ln + 1;
                  rule = "assert-false";
                  message =
                    "assert false without an (* unreachable: … *) comment nearby \
                     explaining why the branch cannot be taken";
                }
                :: !issues
          end
          else scan (i + 1)
      in
      scan 0)
    lines_code;
  !issues

(* ------------------------------------------------------------------ *)
(* Rule: undocumented mutable field in an interface. *)

let mutable_doc_issues ~file lines_code lines_raw =
  let issues = ref [] in
  Array.iteri
    (fun ln line ->
      if word_before line (String.length line) "mutable" then begin
        let has_doc k =
          k >= 0 && k < Array.length lines_raw && contains_sub lines_raw.(k) "(**"
        in
        let documented =
          has_doc ln || has_doc (ln - 1) || has_doc (ln - 2) || has_doc (ln - 3)
          || has_doc (ln + 1)
        in
        if not documented then
          issues :=
            {
              file;
              line = ln + 1;
              rule = "mutable-doc";
              message =
                "mutable field exposed in an interface without an adjacent (** … *) doc \
                 comment";
            }
            :: !issues
      end)
    lines_code;
  !issues

(* ------------------------------------------------------------------ *)
(* Rule: top-level mutable state in experiment modules.

   The parallel runner executes experiment [run] closures on arbitrary
   domains in arbitrary order; a module-level [ref]/[Hashtbl]/… shared by
   runs would make results depend on scheduling.  Flag (a) a column-0
   value binding whose right-hand side constructs a mutable value, and
   (b) a [mutable] record field declared in an experiment implementation.
   Locals inside functions are fine and not matched. *)

let mutable_ctors =
  [
    "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create";
    "Atomic.make"; "Array.make"; "Array.init"; "Bytes.create"; "Bytes.make";
  ]

let in_experiments path =
  List.exists (String.equal "experiments") (String.split_on_char '/' path)

let experiment_state_issues ~file lines_code =
  let issues = ref [] in
  let flag ln msg =
    issues := { file; line = ln + 1; rule = "experiment-state"; message = msg } :: !issues
  in
  Array.iteri
    (fun ln line ->
      let n = String.length line in
      (* (a) [let name = <mutable constructor> …] at column 0: a module-level
         value binding (a [let] with parameters never has [=] directly after
         the first token, so function definitions do not match). *)
      if n > 4 && String.sub line 0 4 = "let " then begin
        let name = token_after line 4 in
        if String.length name > 0 && name <> "()" then begin
          let after_name =
            let i = ref 4 in
            while !i < n && line.[!i] = ' ' do incr i done;
            !i + String.length name
          in
          let next = token_after line after_name in
          let eq_pos = ref after_name in
          while !eq_pos < n && line.[!eq_pos] = ' ' do incr eq_pos done;
          if next = "" && !eq_pos < n && line.[!eq_pos] = '='
             && not (!eq_pos + 1 < n && line.[!eq_pos + 1] = '=') then begin
            let rhs = token_after line (!eq_pos + 1) in
            if List.mem rhs mutable_ctors then
              flag ln
                (Printf.sprintf
                   "top-level mutable state (%s = %s …) in an experiment module: runs must \
                    share no mutable globals so the parallel runner stays deterministic"
                   name rhs)
          end
        end
      end;
      (* (b) a [mutable] record field declared in an experiment module. *)
      if word_before line n "mutable" then
        flag ln
          "mutable record field declared in an experiment module: experiment state must \
           live inside the run closure, not at module level")
    lines_code;
  !issues

(* ------------------------------------------------------------------ *)

let lint_source ~file content =
  let code = blank_non_code content in
  let lines_code = split_lines code in
  let lines_raw = split_lines content in
  let issues =
    if Filename.check_suffix file ".mli" then mutable_doc_issues ~file lines_code lines_raw
    else
      float_eq_issues ~file lines_code
      @ random_issues ~file lines_code
      @ assert_false_issues ~file lines_code lines_raw
      @ (if in_experiments file then experiment_state_issues ~file lines_code else [])
  in
  (* The waiver marker exempts a line from every rule. *)
  List.filter
    (fun i ->
      let raw = if i.line - 1 < Array.length lines_raw then lines_raw.(i.line - 1) else "" in
      not (contains_sub raw waiver))
    issues

(* ------------------------------------------------------------------ *)
(* File-system walk + missing-mli. *)

let rec collect path acc =
  let base = Filename.basename path in
  if base = "_build" || (String.length base > 0 && base.[0] = '.') then acc
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> collect (Filename.concat path entry) acc)
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
    path :: acc
  else acc

let in_lib path =
  List.exists (String.equal "lib") (String.split_on_char '/' path)

let lint_paths roots =
  let files =
    List.fold_left (fun acc root -> if Sys.file_exists root then collect root acc else acc)
      [] roots
  in
  let read path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let issues =
    List.concat_map (fun path -> lint_source ~file:path (read path)) files
  in
  let missing =
    List.filter_map
      (fun path ->
        if
          Filename.check_suffix path ".ml"
          && in_lib path
          && not (List.mem (path ^ "i") files)
        then
          Some
            {
              file = path;
              line = 1;
              rule = "missing-mli";
              message = "library module without an interface: add " ^ path ^ "i";
            }
        else None)
      files
  in
  List.sort
    (fun a b ->
      let c = String.compare a.file b.file in
      if c <> 0 then c else Int.compare a.line b.line)
    (issues @ missing)

type issue = Report.issue = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

let waiver = Report.waiver
let pp_issue = Report.pp_issue

(* ------------------------------------------------------------------ *)
(* Source preparation: blank comments, string and char literals so the
   rule matchers only ever see code.  Newlines are preserved so line
   numbers survive. *)

(* A quoted string literal [{|…|}] / [{id|…|id}] starting at [i]: the
   index just past the opening [|], and the delimiter id, if any. *)
let quoted_string_open source i =
  let n = String.length source in
  if i >= n || source.[i] <> '{' then None
  else begin
    let j = ref (i + 1) in
    while
      !j < n && ((source.[!j] >= 'a' && source.[!j] <= 'z') || source.[!j] = '_')
    do
      incr j
    done;
    if !j < n && source.[!j] = '|' then Some (!j + 1, String.sub source (i + 1) (!j - i - 1))
    else None
  end

let blank_non_code source =
  let n = String.length source in
  let buf = Bytes.of_string source in
  let blank j = if Bytes.get buf j <> '\n' then Bytes.set buf j ' ' in
  let i = ref 0 in
  let depth = ref 0 in
  while !i < n do
    let c = source.[!i] in
    if !depth > 0 then
      if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
        incr depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && source.[!i + 1] = ')' then begin
        decr depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    else if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
      depth := 1;
      blank !i;
      blank (!i + 1);
      i := !i + 2
    end
    else if c = '{' && quoted_string_open source !i <> None then begin
      (* [{|…|}] / [{id|…|id}]: contents are verbatim (no escapes); blank
         everything up to and including the matching [|id}]. *)
      let body, id =
        match quoted_string_open source !i with
        | Some r -> r
        (* unreachable: guarded by the condition above *)
        | None -> assert false
      in
      let close = "|" ^ id ^ "}" in
      let m = String.length close in
      let j = ref body in
      while !j + m <= n && String.sub source !j m <> close do
        incr j
      done;
      let stop = Stdlib.min (if !j + m <= n then !j + m else n) n in
      for k = !i to stop - 1 do
        blank k
      done;
      i := stop
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        let d = source.[!i] in
        if d = '\\' && !i + 1 < n then begin
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          blank !i;
          incr i;
          if d = '"' then fin := true
        end
      done
    end
    else if c = '\'' then
      (* A char literal ('x', '\n'); a lone quote is a type variable. *)
      if !i + 2 < n && source.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && source.[!j] <> '\'' do
          incr j
        done;
        for k = !i to Stdlib.min !j (n - 1) do
          blank k
        done;
        i := !j + 1
      end
      else if !i + 2 < n && source.[!i + 2] = '\'' then begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      end
      else incr i
    else incr i
  done;
  Bytes.to_string buf

let split_lines s = String.split_on_char '\n' s |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Small token helpers over a single (blanked) line. *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_digit c = c >= '0' && c <= '9'

let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub line i m = sub || loop (i + 1)) in
  m > 0 && loop 0

(* Maximal number/identifier token (dots included: [t.field], [0.0])
   extending right from [i]. *)
let token_at line i =
  let n = String.length line in
  let j = ref i in
  while !j < n && (is_ident_char line.[!j] || line.[!j] = '.') do
    incr j
  done;
  String.sub line i (!j - i)

(* The token ending just left of [i] (exclusive), skipping spaces. Returns
   the token and the index of the character preceding it (or -1). *)
let token_before line i =
  let j = ref (i - 1) in
  while !j >= 0 && line.[!j] = ' ' do
    decr j
  done;
  let stop = !j in
  while !j >= 0 && (is_ident_char line.[!j] || line.[!j] = '.') do
    decr j
  done;
  (String.sub line (!j + 1) (stop - !j), !j)

let token_after line i =
  let n = String.length line in
  let j = ref i in
  while !j < n && line.[!j] = ' ' do
    incr j
  done;
  if !j >= n then "" else token_at line !j

let is_float_literal tok =
  String.length tok > 0
  && is_digit tok.[0]
  && (String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E')

(* Does [word] occur as a standalone token in [line] before position [limit]? *)
let word_before line limit word =
  let wl = String.length word in
  let limit = Stdlib.min limit (String.length line) in
  let rec loop i =
    if i + wl > limit then false
    else if
      String.sub line i wl = word
      && (i = 0 || not (is_ident_char line.[i - 1]))
      && (i + wl >= String.length line || not (is_ident_char line.[i + wl]))
    then true
    else loop (i + 1)
  in
  loop 0

let op_chars = "<>!:+-*/=|&@^%$.~?"

(* ------------------------------------------------------------------ *)
(* Rule: float equality. *)

(* Structural-equality operators on this line: position and whether the
   operator can double as a [let]/field binding ([=] can, [==]/[!=]/[<>]
   cannot). *)
let equality_ops line =
  let n = String.length line in
  let ops = ref [] in
  let i = ref 0 in
  while !i < n do
    (match line.[!i] with
    | '=' ->
        let prev = if !i > 0 then line.[!i - 1] else ' ' in
        if String.contains op_chars prev then incr i
        else if !i + 1 < n && line.[!i + 1] = '=' then begin
          ops := (!i, `Compare_op, 2) :: !ops;
          i := !i + 2
        end
        else begin
          ops := (!i, `Maybe_binding, 1) :: !ops;
          incr i
        end
    | '<' when !i + 1 < n && line.[!i + 1] = '>' ->
        ops := (!i, `Compare_op, 2) :: !ops;
        i := !i + 2
    | '!' when !i + 1 < n && line.[!i + 1] = '=' ->
        ops := (!i, `Compare_op, 2) :: !ops;
        i := !i + 2
    | _ -> incr i);
    ()
  done;
  List.rev !ops

(* A [=] in a binding position: optional-argument default [?(x = …)],
   labelled default [~(x = …)], or record-field assignment
   [{ x = …] / [; x = …] / [with x = …]. *)
let binding_like line pos =
  let lhs, before = token_before line pos in
  if String.length lhs = 0 then true (* continuation line: not a comparison *)
  else begin
    let k = ref before in
    while !k >= 0 && line.[!k] = ' ' do
      decr k
    done;
    if !k < 0 then
      (* Operand starts the line: field on its own line ([x = 0.0;]) or a
         continued expression; treat as a binding unless context proves
         otherwise. *)
      not (String.contains lhs '.')
    else
      match line.[!k] with
      | '(' -> !k > 0 && (line.[!k - 1] = '?' || line.[!k - 1] = '~')
      | '{' | ';' -> true
      | _ ->
          (* [with] introduces record-update fields. *)
          let w, _ = token_before line (!k + 1) in
          String.equal w "with"
  end

let float_eq_issues ~file lines_code =
  let issues = ref [] in
  Array.iteri
    (fun ln line ->
      let ops = equality_ops line in
      let seen_eq = ref false in
      List.iter
        (fun (pos, kind, width) ->
          let lhs, _ = token_before line pos in
          let rhs = token_after line (pos + width) in
          let floaty = is_float_literal lhs || is_float_literal rhs in
          let comparison_context =
            match kind with
            | `Compare_op -> true
            | `Maybe_binding ->
                (!seen_eq
                || word_before line pos "if"
                || word_before line pos "when"
                || word_before line pos "while"
                || word_before line pos "assert"
                || contains_sub (String.sub line 0 pos) "&&"
                || contains_sub (String.sub line 0 pos) "||")
                && not (binding_like line pos)
          in
          if floaty && comparison_context then
            issues :=
              {
                file;
                line = ln + 1;
                rule = "float-eq";
                message =
                  Printf.sprintf
                    "structural equality with float literal (%s %s %s): compare with a \
                     tolerance, or waive with (* %s float-eq *)"
                    (if lhs = "" then "_" else lhs)
                    (String.sub line pos width)
                    (if rhs = "" then "_" else rhs)
                    waiver;
              }
              :: !issues;
          if kind = `Maybe_binding || kind = `Compare_op then seen_eq := true)
        ops;
      (* Polymorphic compare next to a float literal. *)
      let has_float_tok =
        let found = ref false in
        String.iteri
          (fun i c ->
            if
              is_digit c
              && (i = 0 || ((not (is_ident_char line.[i - 1])) && line.[i - 1] <> '.'))
              && is_float_literal (token_at line i)
            then found := true)
          line;
        !found
      in
      if has_float_tok then begin
        let n = String.length line in
        let rec scan i =
          if i + 7 <= n then
            if
              String.sub line i 7 = "compare"
              && (i = 0 || (not (is_ident_char line.[i - 1]) && line.[i - 1] <> '.'))
              && (i + 7 >= n || not (is_ident_char line.[i + 7]))
            then begin
              let prev, _ = token_before line i in
              if not (List.mem prev [ "let"; "val"; "and" ]) then
                issues :=
                  {
                    file;
                    line = ln + 1;
                    rule = "float-eq";
                    message =
                      "polymorphic compare near a float literal: use Float.compare";
                  }
                  :: !issues
            end
            else scan (i + 1)
        in
        scan 0
      end)
    lines_code;
  !issues

(* ------------------------------------------------------------------ *)
(* Rule: global Random module. *)

let random_issues ~file lines_code =
  let issues = ref [] in
  Array.iteri
    (fun ln line ->
      let n = String.length line in
      let rec scan i =
        if i + 7 <= n then
          if
            String.sub line i 7 = "Random."
            && (i = 0 || (not (is_ident_char line.[i - 1]) && line.[i - 1] <> '.'))
          then
            issues :=
              {
                file;
                line = ln + 1;
                rule = "random";
                message =
                  Printf.sprintf "global Random.%s breaks run determinism: use Prng with \
                                  an explicit seed"
                    (token_at line (i + 7));
              }
              :: !issues
          else scan (i + 1)
      in
      scan 0)
    lines_code;
  !issues

(* ------------------------------------------------------------------ *)
(* Rule: bare [assert false]. *)

let assert_false_issues ~file lines_code lines_raw =
  let issues = ref [] in
  Array.iteri
    (fun ln line ->
      let n = String.length line in
      let rec scan i =
        if i + 6 <= n then
          if
            String.sub line i 6 = "assert"
            && (i = 0 || not (is_ident_char line.[i - 1]))
            && String.equal (token_after line (i + 6)) "false"
          then begin
            let documented =
              let lower s = String.lowercase_ascii s in
              let has k = contains_sub (lower lines_raw.(k)) "unreachable" in
              has ln || (ln > 0 && has (ln - 1)) || (ln > 1 && has (ln - 2))
            in
            if not documented then
              issues :=
                {
                  file;
                  line = ln + 1;
                  rule = "assert-false";
                  message =
                    "assert false without an (* unreachable: … *) comment nearby \
                     explaining why the branch cannot be taken";
                }
                :: !issues
          end
          else scan (i + 1)
      in
      scan 0)
    lines_code;
  !issues

(* ------------------------------------------------------------------ *)
(* Rule: new [Hashtbl.create] without an iteration-order comment.  The
   effect pass flags hash-order {e iteration} reachable from simulation
   entry points; this rule makes the discipline explicit at construction
   time — a table is fine if someone wrote down that it is lookup-only
   (or sorted before iteration). *)

let hashtbl_create_issues ~file lines_code lines_raw =
  let issues = ref [] in
  let needle = "Hashtbl.create" in
  let m = String.length needle in
  Array.iteri
    (fun ln line ->
      let n = String.length line in
      let rec scan i =
        if i + m <= n then
          if
            String.sub line i m = needle
            && (i = 0 || (not (is_ident_char line.[i - 1]) && line.[i - 1] <> '.'))
          then begin
            let documented =
              let has k =
                k >= 0
                && k < Array.length lines_raw
                &&
                let lower = String.lowercase_ascii lines_raw.(k) in
                contains_sub lower "deterministic" || contains_sub lower "hash-order"
              in
              has ln || has (ln - 1) || has (ln - 2)
            in
            if not documented then
              issues :=
                {
                  file;
                  line = ln + 1;
                  rule = "hashtbl-create";
                  message =
                    "Hashtbl.create without a nearby (* deterministic: … *) or \
                     hash-order comment: iteration order is seed/history-dependent — \
                     say the table is lookup-only (or sorted before iteration), or \
                     use an assoc list / Map";
                }
                :: !issues
          end
          else scan (i + 1)
      in
      scan 0)
    lines_code;
  !issues

(* ------------------------------------------------------------------ *)
(* Rule: formatted printing in a file that declares an allocation-free
   hot path.  The allocation prover bounds what the annotated roots may
   reach, but printing creeps in from debug sessions through cold helpers
   and fresh branches; in hot-path files it is flagged outright — cold
   failure paths raise through invalid_arg/failwith with static messages,
   and reporting belongs to callers outside the hot module.  The file
   gate is the standalone marker line the allocation pass reads, matched
   exactly so prose mentions of the grammar do not arm the rule. *)

let declares_hot_path lines_raw =
  Array.exists
    (fun line -> String.equal (String.trim line) "(* alloc: none *)")
    lines_raw

let hot_path_printf_issues ~file lines_code lines_raw =
  if not (declares_hot_path lines_raw) then []
  else begin
    let issues = ref [] in
    let needles = [ "Printf."; "Format."; "print_" ] in
    Array.iteri
      (fun ln line ->
        List.iter
          (fun needle ->
            let m = String.length needle in
            let n = String.length line in
            let rec scan i =
              if i + m <= n then
                if
                  String.sub line i m = needle
                  && (i = 0 || (not (is_ident_char line.[i - 1]) && line.[i - 1] <> '.'))
                then
                  issues :=
                    {
                      file;
                      line = ln + 1;
                      rule = "hot-path-printf";
                      message =
                        Printf.sprintf
                          "%s%s call in a file with an allocation-free hot path: move \
                           the printing out of the hot module or raise with a static \
                           message, or waive with (* %s hot-path-printf: reason *)"
                          needle
                          (token_at line (i + m))
                          waiver;
                    }
                    :: !issues
                else scan (i + 1)
            in
            scan 0)
          needles)
      lines_code;
    !issues
  end

(* ------------------------------------------------------------------ *)
(* Rule: undocumented mutable field in an interface. *)

let mutable_doc_issues ~file lines_code lines_raw =
  let issues = ref [] in
  Array.iteri
    (fun ln line ->
      if word_before line (String.length line) "mutable" then begin
        let has_doc k =
          k >= 0 && k < Array.length lines_raw && contains_sub lines_raw.(k) "(**"
        in
        let documented =
          has_doc ln || has_doc (ln - 1) || has_doc (ln - 2) || has_doc (ln - 3)
          || has_doc (ln + 1)
        in
        if not documented then
          issues :=
            {
              file;
              line = ln + 1;
              rule = "mutable-doc";
              message =
                "mutable field exposed in an interface without an adjacent (** … *) doc \
                 comment";
            }
            :: !issues
      end)
    lines_code;
  !issues

(* ------------------------------------------------------------------ *)
(* The old text-based [experiment-state] rule (top-level mutable state in
   experiment modules) lived here until PR 3; it is subsumed by the AST
   domain-safety pass in [lib/staticcheck], which resolves module aliases
   and nesting instead of matching column-0 [let]s. *)

let lint_source ~file content =
  let code = blank_non_code content in
  let lines_code = split_lines code in
  let lines_raw = split_lines content in
  let issues =
    if Filename.check_suffix file ".mli" then mutable_doc_issues ~file lines_code lines_raw
    else
      float_eq_issues ~file lines_code
      @ random_issues ~file lines_code
      @ assert_false_issues ~file lines_code lines_raw
      @ hashtbl_create_issues ~file lines_code lines_raw
      @ hot_path_printf_issues ~file lines_code lines_raw
  in
  (* The waiver marker exempts a line from every rule. *)
  Report.drop_waived ~source:content issues

(* ------------------------------------------------------------------ *)
(* File-system walk + missing-mli. *)

let in_lib path =
  List.exists (String.equal "lib") (String.split_on_char '/' path)

let lint_paths roots =
  let files = Report.collect_sources roots in
  let issues =
    List.concat_map (fun path -> lint_source ~file:path (Report.read_file path)) files
  in
  let missing =
    List.filter_map
      (fun path ->
        if
          Filename.check_suffix path ".ml"
          && in_lib path
          && not (List.mem (path ^ "i") files)
        then
          Some
            {
              file = path;
              line = 1;
              rule = "missing-mli";
              message = "library module without an interface: add " ^ path ^ "i";
            }
        else None)
      files
  in
  Report.sort (issues @ missing)

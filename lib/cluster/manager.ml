module Domain = Hypervisor.Domain
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

type policy = Credit_ondemand | Pas_nodes | No_dvfs

type node = {
  index : int;
  mutable host : Host.t option; (* None = standby *)
  mutable off_since : Sim_time.t option;
  mutable standby_joules : float;
  mutable retired_joules : float; (* energy of decommissioned host instances *)
}

type vm_state = {
  vm : Vm.t;
  mutable node : int;
  mutable cpu_snapshot : Sim_time.t; (* Domain.cpu_time at the last rebalance *)
  mutable demand_pct : float; (* measured share used by the next packing *)
}

type t = {
  arch : Cpu_model.Arch.t;
  node_memory_mb : int;
  cpu_budget_pct : float;
  standby_watts : float;
  strategy : Placement.strategy;
  policy : policy;
  sim : Simulator.t;
  node_states : node array;
  vms : vm_state array;
  mutable migrations : int;
  mutable last_rebalance : Sim_time.t;
}

let now t = Simulator.now t.sim

(* -- node power-state bookkeeping ---------------------------------- *)

let settle_standby t node =
  match node.off_since with
  | Some since ->
      let dt = Sim_time.to_sec (Sim_time.diff (now t) since) in
      node.standby_joules <- node.standby_joules +. (t.standby_watts *. dt);
      node.off_since <- Some (now t)
  | None -> ()

(* shard: boundary — decommission epoch: retires the node's host and its energy counter *)
let power_off t node =
  (match node.host with
  | Some host ->
      node.retired_joules <- node.retired_joules +. Host.energy_joules host;
      Host.stop host;
      node.host <- None
  | None -> ());
  if node.off_since = None then node.off_since <- Some (now t)

(* shard: boundary — commission epoch: builds the node's host around the placed VM set *)
let build_host t node vms =
  settle_standby t node;
  node.off_since <- None;
  let dom0 =
    Domain.create ~is_dom0:true
      ~name:(Printf.sprintf "Dom0.%d" node.index)
      ~credit_pct:10.0 (Workloads.Workload.idle ())
  in
  let domains = dom0 :: List.map (fun st -> Vm.domain st.vm) vms in
  let processor = Processor.create t.arch in
  let scheduler, governor =
    match t.policy with
    | Credit_ondemand ->
        (Sched_credit.create domains, Some (Governors.Stable_ondemand.create processor))
    | No_dvfs -> (Sched_credit.create domains, Some (Governors.Governor.performance processor))
    | Pas_nodes ->
        (Pas.Pas_sched.scheduler (Pas.Pas_sched.create ~processor domains), None)
  in
  node.host <- Some (Host.create ~sim:t.sim ~processor ~scheduler ?governor ())

(* -- packing -------------------------------------------------------- *)

(* shard: boundary — packing input: reads VM size/credit into plain placement items *)
let items_of t =
  Array.to_list
    (Array.mapi
       (fun i st ->
         {
           Placement.id = i;
           memory_mb = Vm.memory_mb st.vm;
           (* Pack on the larger of measured demand and a floor, but never
              beyond the credit: the credit is what the node must be able
              to honour. *)
           cpu_pct = Float.min (Vm.credit_pct st.vm) (Float.max 2.0 st.demand_pct);
         })
       t.vms)

(* shard: boundary — migration epoch: moves VMs between nodes, rebuilding their hosts *)
let apply_assignment t assignment ~count_migrations =
  (* Which nodes change? Rebuild only those (plus newly-empty ones off). *)
  let moved = ref 0 in
  Array.iteri
    (fun i st ->
      if st.node <> assignment.(i) then begin
        incr moved;
        st.node <- assignment.(i)
      end)
    t.vms;
  if count_migrations then t.migrations <- t.migrations + !moved;
  Array.iter
    (fun node ->
      let members =
        Array.to_list t.vms |> List.filter (fun st -> st.node = node.index)
      in
      (* Hosts are immutable in their domain set, so any node whose set is
         non-empty gets a fresh host; empty ones power off.  Rebuilding an
         unchanged node is avoided only when nothing moved at all. *)
      power_off t node;
      if members <> [] then build_host t node members)
    t.node_states

let pack t =
  Placement.pack t.strategy ~node_count:(Array.length t.node_states)
    ~memory_capacity_mb:t.node_memory_mb ~cpu_capacity_pct:t.cpu_budget_pct (items_of t)

(* shard: boundary — rebalance epoch: samples per-domain CPU time to refresh demand *)
let rebalance t =
  (* Refresh demand estimates from the elapsed interval. *)
  let dt = Sim_time.to_sec (Sim_time.diff (now t) t.last_rebalance) in
  if dt > 0.0 then
    Array.iter
      (fun st ->
        let used = Sim_time.diff (Domain.cpu_time (Vm.domain st.vm)) st.cpu_snapshot in
        st.cpu_snapshot <- Domain.cpu_time (Vm.domain st.vm);
        st.demand_pct <- Sim_time.to_sec used /. dt *. 100.0)
      t.vms;
  t.last_rebalance <- now t;
  match pack t with
  | Some assignment -> apply_assignment t assignment ~count_migrations:true
  | None -> failwith "Manager.rebalance: no feasible assignment"

let auto_rebalance t ~every = ignore (Simulator.every t.sim every (fun () -> rebalance t))

(* shard: boundary — fleet construction: seeds demand estimates from VM credits *)
let create ?(arch = Cpu_model.Arch.optiplex_755) ?(node_memory_mb = 16_384)
    ?(cpu_budget_pct = 90.0) ?(standby_watts = 5.0) ?(strategy = Placement.First_fit_decreasing)
    ?(policy = Pas_nodes) ~sim ~nodes vms =
  if nodes <= 0 then invalid_arg "Manager.create: nodes must be positive";
  let t =
    {
      arch;
      node_memory_mb;
      cpu_budget_pct;
      standby_watts;
      strategy;
      policy;
      sim;
      node_states =
        Array.init nodes (fun index ->
            {
              index;
              host = None;
              off_since = Some (Simulator.now sim);
              standby_joules = 0.0;
              retired_joules = 0.0;
            });
      vms =
        Array.of_list
          (List.map
             (fun vm ->
               { vm; node = -1; cpu_snapshot = Sim_time.zero; demand_pct = Vm.credit_pct vm })
             vms);
      migrations = 0;
      last_rebalance = Simulator.now sim;
    }
  in
  (match pack t with
  | Some assignment -> apply_assignment t assignment ~count_migrations:false
  | None -> failwith "Manager.create: VMs do not fit on the fleet");
  t

let run_for t duration = Simulator.run_until t.sim (Sim_time.add (now t) duration)
let nodes t = Array.length t.node_states

let active_nodes t =
  Array.fold_left (fun acc n -> if n.host <> None then acc + 1 else acc) 0 t.node_states

(* shard: boundary — VM identity lookup across the cluster's placement table *)
let state_of t vm =
  match Array.find_opt (fun st -> Vm.equal st.vm vm) t.vms with
  | Some st -> st
  | None -> raise Not_found

let node_of_vm t vm = (state_of t vm).node
let migrations t = t.migrations

(* shard: boundary — fleet-wide energy reduction over per-node host counters *)
let energy_joules t =
  Array.fold_left
    (fun acc node ->
      let standby_now =
        match node.off_since with
        | Some since -> t.standby_watts *. Sim_time.to_sec (Sim_time.diff (now t) since)
        | None -> 0.0
      in
      let running = match node.host with Some h -> Host.energy_joules h | None -> 0.0 in
      acc +. node.retired_joules +. node.standby_joules +. standby_now +. running)
    0.0 t.node_states

(* shard: boundary — reads a VM's domain CPU time for the measured-share metric *)
let vm_cpu_share t vm =
  let st = state_of t vm in
  let dt = Sim_time.to_sec (Sim_time.diff (now t) t.last_rebalance) in
  if dt = 0.0 (* lint:ignore float-eq: exact zero guards the division *) then 0.0
  else begin
    let used = Sim_time.diff (Domain.cpu_time (Vm.domain st.vm)) st.cpu_snapshot in
    Sim_time.to_sec used /. dt
  end

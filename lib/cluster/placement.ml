type item = { id : int; memory_mb : int; cpu_pct : float }
type strategy = First_fit | First_fit_decreasing | Best_fit

type bin = { mutable mem_used : int; mutable cpu_used : float }

let validate ~node_count ~memory_capacity_mb ~cpu_capacity_pct items =
  if node_count <= 0 then invalid_arg "Placement.pack: node_count must be positive";
  if memory_capacity_mb <= 0 then invalid_arg "Placement.pack: memory capacity must be positive";
  if not (cpu_capacity_pct > 0.0) then invalid_arg "Placement.pack: cpu capacity must be positive";
  List.iter
    (fun item ->
      if item.memory_mb > memory_capacity_mb || item.cpu_pct > cpu_capacity_pct then
        invalid_arg "Placement.pack: item exceeds a single node's capacity")
    items

let fits bin ~memory_capacity_mb ~cpu_capacity_pct item =
  bin.mem_used + item.memory_mb <= memory_capacity_mb
  && bin.cpu_used +. item.cpu_pct <= cpu_capacity_pct +. 1e-9

(* shard: boundary — placement epoch: pure packing over plain items, no host state *)
let pack strategy ~node_count ~memory_capacity_mb ~cpu_capacity_pct items =
  validate ~node_count ~memory_capacity_mb ~cpu_capacity_pct items;
  let bins = Array.init node_count (fun _ -> { mem_used = 0; cpu_used = 0.0 }) in
  let order =
    let indexed = List.mapi (fun pos item -> (pos, item)) items in
    match strategy with
    | First_fit | Best_fit -> indexed
    | First_fit_decreasing ->
        List.sort (fun (_, a) (_, b) -> Int.compare b.memory_mb a.memory_mb) indexed
  in
  let assignment = Array.make (List.length items) (-1) in
  let place (pos, item) =
    let candidate =
      match strategy with
      | First_fit | First_fit_decreasing ->
          let rec first i =
            if i >= node_count then None
            else if fits bins.(i) ~memory_capacity_mb ~cpu_capacity_pct item then Some i
            else first (i + 1)
          in
          first 0
      | Best_fit ->
          let best = ref None in
          Array.iteri
            (fun i bin ->
              if fits bin ~memory_capacity_mb ~cpu_capacity_pct item then begin
                let residual = memory_capacity_mb - bin.mem_used - item.memory_mb in
                match !best with
                | Some (_, r) when r <= residual -> ()
                | Some _ | None -> best := Some (i, residual)
              end)
            bins;
          Option.map fst !best
    in
    match candidate with
    | None -> false
    | Some i ->
        bins.(i).mem_used <- bins.(i).mem_used + item.memory_mb;
        bins.(i).cpu_used <- bins.(i).cpu_used +. item.cpu_pct;
        assignment.(pos) <- i;
        true
  in
  if List.for_all place order then Some assignment else None

let pack_exn strategy ~node_count ~memory_capacity_mb ~cpu_capacity_pct items =
  match pack strategy ~node_count ~memory_capacity_mb ~cpu_capacity_pct items with
  | Some a -> a
  | None -> failwith "Placement.pack_exn: no feasible assignment"

let nodes_used assignment =
  let module S = Set.Make (Int) in
  S.cardinal (Array.fold_left (fun acc node -> S.add node acc) S.empty assignment)

(** VM-to-node bin packing.

    Pure combinatorial core of the consolidation manager.  Memory is the
    hard constraint (§2.3); the CPU dimension is a configurable budget
    (credits may be oversubscribed deliberately — pass a budget above 100 to
    allow it). *)

type item = { id : int; memory_mb : int; cpu_pct : float }

type strategy =
  | First_fit  (** first node with room, in node order *)
  | First_fit_decreasing  (** classic FFD by memory *)
  | Best_fit  (** node left with the least residual memory *)

val pack :
  strategy ->
  node_count:int ->
  memory_capacity_mb:int ->
  cpu_capacity_pct:float ->
  item list ->
  int array option
(** [pack strategy ~node_count ~memory_capacity_mb ~cpu_capacity_pct items]
    assigns each item to a node such that no node exceeds either capacity,
    preferring to fill low-numbered nodes (so unused nodes can be switched
    off).  The result maps the position of each item in the input list to a
    node index; [None] if no assignment was found.
    @raise Invalid_argument on non-positive capacities or node count, or on
    an item exceeding a single node's capacity. *)

val pack_exn :
  strategy ->
  node_count:int ->
  memory_capacity_mb:int ->
  cpu_capacity_pct:float ->
  item list ->
  int array
(** @raise Failure when no assignment exists. *)

val nodes_used : int array -> int
(** Number of distinct nodes in an assignment. *)

(** Consolidation manager with DVFS-aware nodes.

    The paper's closing perspective (§7): "energy aware resource management
    strategies which would coordinate VM scheduling, frequency scaling and
    memory management in a hosting center".  The manager owns a fixed fleet
    of identical nodes and a set of VMs, packs the VMs onto the fewest
    nodes that fit by memory (and a CPU-credit budget), switches empty
    nodes to standby (VOVO), and optionally re-packs periodically from
    measured demand — live migration at epoch granularity.

    Each active node is a full {!Hypervisor.Host} running either the plain
    Credit scheduler with the stable ondemand governor, or PAS.  Workloads
    and domains persist across migrations: moving a VM rebuilds the hosts
    involved but the VM's request queue travels with it (migration downtime
    is not modelled; migrations are counted instead). *)

type policy = Credit_ondemand | Pas_nodes | No_dvfs

type t

val create :
  ?arch:Cpu_model.Arch.t ->
  ?node_memory_mb:int ->
  ?cpu_budget_pct:float ->
  ?standby_watts:float ->
  ?strategy:Placement.strategy ->
  ?policy:policy ->
  sim:Simulator.t ->
  nodes:int ->
  Vm.t list ->
  t
(** Defaults: Optiplex nodes, 16384 MB, CPU budget 90 % (Dom0 keeps 10),
    5 W standby, First_fit_decreasing, [Pas_nodes].  Performs the initial
    placement immediately.
    @raise Failure if the VMs do not fit on the fleet. *)

val run_for : t -> Sim_time.t -> unit

val rebalance : t -> unit
(** Re-packs from each VM's measured CPU demand since the last rebalance
    (floored at 2 % so an idle VM keeps a foothold), rebuilding only the
    nodes whose VM set changed.  @raise Failure if repacking is infeasible
    (the previous placement is kept in that case). *)

val auto_rebalance : t -> every:Sim_time.t -> unit
(** Schedules {!rebalance} periodically on the manager's simulator. *)

val nodes : t -> int
val active_nodes : t -> int
val node_of_vm : t -> Vm.t -> int
(** @raise Not_found for a foreign VM. *)

val migrations : t -> int
(** VMs moved by rebalances so far (the initial placement is free). *)

val energy_joules : t -> float
(** Fleet-wide: all retired and running hosts plus standby energy of
    switched-off nodes, up to the current instant. *)

val vm_cpu_share : t -> Vm.t -> float
(** The VM's measured CPU-time share of one node since the last rebalance
    (the demand signal the next rebalance will use). *)

(** A virtual machine as the hosting-center manager sees it: a domain plus
    the memory it permanently occupies.

    §2.3 of the paper: memory is the consolidation bottleneck — "any VM,
    even idle, needs physical memory, which limits the number of VMs that
    can be executed on a host".  The memory figure is therefore a hard
    packing constraint, unlike the CPU credit which can be oversubscribed. *)

type t

val create :
  ?vcpus:int ->
  name:string ->
  credit_pct:float ->
  memory_mb:int ->
  Workloads.Workload.t ->
  t
(** @raise Invalid_argument on a non-positive memory size (credit and vcpus
    are validated by {!Hypervisor.Domain.create}). *)

val domain : t -> Hypervisor.Domain.t
val name : t -> string
val credit_pct : t -> float
val memory_mb : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type t = { domain : Hypervisor.Domain.t; memory_mb : int }

let create ?vcpus ~name ~credit_pct ~memory_mb workload =
  if memory_mb <= 0 then invalid_arg "Vm.create: memory must be positive";
  { domain = Hypervisor.Domain.create ?vcpus ~name ~credit_pct workload; memory_mb }

let domain t = t.domain
let name t = Hypervisor.Domain.name t.domain
let credit_pct t = Hypervisor.Domain.initial_credit t.domain
let memory_mb t = t.memory_mb
let equal a b = Hypervisor.Domain.equal a.domain b.domain

let pp ppf t =
  Format.fprintf ppf "%s(credit=%.0f%% mem=%dMB)" (name t) (credit_pct t) t.memory_mb

type kind = Fix_credit | Variable_credit | Power_aware

type power_profile =
  | Stock_ondemand
  | Smooth_ondemand of {
      up_threshold : float;
      period : Sim_time.t;
      floor : Cpu_model.Frequency.mhz option;
    }
  | Integrated

type t = { name : string; kind : kind; power : power_profile; efficiency : float }
type mode = Performance | Ondemand

let smooth ?floor threshold =
  Smooth_ondemand { up_threshold = threshold; period = Sim_time.of_ms 200; floor }

(* Efficiency factors come from the Performance row of Table 2, normalising
   Xen/Credit to 1: T_platform = T_xen / efficiency for the same setup.
   P-state floors model the platforms' power plans: Hyper-V's balanced plan
   parks around 2000 MHz under a light capped load (degradation ~50 %),
   ESXi's around 2800 MHz (~27 %); Xen's stock ondemand has no floor and
   oscillates instead. *)
let hyper_v =
  { name = "Hyper-V"; kind = Fix_credit; power = smooth ~floor:2000 0.45; efficiency = 0.974 }
let vmware_esxi =
  { name = "VMware"; kind = Fix_credit; power = smooth ~floor:2800 0.30; efficiency = 1.006 }
let xen_credit = { name = "Xen/credit"; kind = Fix_credit; power = Stock_ondemand; efficiency = 1.0 }
let xen_pas = { name = "Xen/PAS"; kind = Power_aware; power = Integrated; efficiency = 1.0 }
let xen_sedf = { name = "Xen/SEDF"; kind = Variable_credit; power = smooth 0.45; efficiency = 1.012 }
let kvm = { name = "KVM"; kind = Variable_credit; power = smooth 0.45; efficiency = 1.041 }
let virtualbox = { name = "Vbox"; kind = Variable_credit; power = smooth 0.45; efficiency = 0.998 }

let catalog = [ hyper_v; vmware_esxi; xen_credit; xen_pas; xen_sedf; kvm; virtualbox ]

let find name =
  let norm = String.lowercase_ascii in
  List.find_opt (fun p -> String.equal (norm p.name) (norm name)) catalog

type instance = {
  scheduler : Hypervisor.Scheduler.t;
  governor : Governors.Governor.t option;
  pas : Pas.Pas_sched.t option;
}

let instantiate t ~mode ~processor domains =
  match (mode, t.kind) with
  | Performance, (Fix_credit | Power_aware) ->
      {
        scheduler = Sched_credit.create domains;
        governor = Some (Governors.Governor.performance processor);
        pas = None;
      }
  | Performance, Variable_credit ->
      {
        scheduler = Sched_sedf.create domains;
        governor = Some (Governors.Governor.performance processor);
        pas = None;
      }
  | Ondemand, Power_aware ->
      let pas = Pas.Pas_sched.create ~processor domains in
      { scheduler = Pas.Pas_sched.scheduler pas; governor = None; pas = Some pas }
  | Ondemand, (Fix_credit | Variable_credit) ->
      let scheduler =
        match t.kind with
        | Fix_credit -> Sched_credit.create domains
        | Variable_credit | Power_aware -> Sched_sedf.create domains
      in
      let governor =
        match t.power with
        | Stock_ondemand -> Governors.Ondemand.create processor
        | Smooth_ondemand { up_threshold; period; floor } ->
            Governors.Ondemand.create ~period ~up_threshold ?floor processor
        (* unreachable: the [Integrated] case is handled by the PAS branch above. *)
        | Integrated -> assert false
      in
      { scheduler; governor = Some governor; pas = None }

(** Virtualization-platform profiles for Table 2 (§5.8).

    The paper runs the V20/V70 scenario on seven platform configurations
    (Hyper-V Server 2012, VMware ESXi 5, Xen/Credit, Xen/PAS, Xen/SEDF, KVM,
    VirtualBox) on an HP Elite 8300.  We cannot run those hypervisors, so
    each becomes a profile over the simulator's building blocks:

    - its {e scheduler family} — fix credit (Hyper-V, VMware, Xen/Credit),
      variable credit (Xen/SEDF, KVM, VirtualBox) or power-aware (Xen/PAS);
    - its {e power-management profile} under the "OnDemand" column:
      Xen's stock governor is the bursty short-window ondemand; Hyper-V and
      VMware ship smoother managers modelled as long-window ondemand with a
      platform-specific threshold; the work-conserving platforms compact the
      busy vCPU onto one core whose saturation holds the shared frequency
      domain high — modelled as a low up-threshold (0.45 < the ~50 % duty
      of pi-app);
    - an {e efficiency} factor (virtualization overhead) calibrated from the
      Performance-governor column of Table 2 (Xen/Credit = 1). *)

type kind = Fix_credit | Variable_credit | Power_aware

type power_profile =
  | Stock_ondemand  (** Xen's aggressive 5 ms-window governor *)
  | Smooth_ondemand of {
      up_threshold : float;
      period : Sim_time.t;
      floor : Cpu_model.Frequency.mhz option;
          (** minimum P-state of the platform's power plan *)
    }
  | Integrated  (** PAS: frequency control lives in the scheduler *)

type t = {
  name : string;
  kind : kind;
  power : power_profile;
  efficiency : float;  (** relative capacity vs Xen/Credit *)
}

type mode = Performance | Ondemand
(** The two rows of Table 2. *)

val hyper_v : t
val vmware_esxi : t
val xen_credit : t
val xen_pas : t
val xen_sedf : t
val kvm : t
val virtualbox : t

val catalog : t list
(** Table 2's column order: fix-credit platforms first. *)

val find : string -> t option

(** {1 Instantiation} *)

type instance = {
  scheduler : Hypervisor.Scheduler.t;
  governor : Governors.Governor.t option;
  pas : Pas.Pas_sched.t option;  (** present for {!Power_aware} platforms *)
}

val instantiate :
  t -> mode:mode -> processor:Cpu_model.Processor.t -> Hypervisor.Domain.t list -> instance
(** Builds the scheduler and governor this platform uses in the given mode.
    Power-aware platforms return no governor (PAS owns the frequency) —
    except in [Performance] mode, where the frequency is pinned and plain
    Credit is used, matching the paper's Table 2 row. *)

(** Abstract CPU workloads.

    A workload is what runs inside a VM (or inside a guest process).  The
    hypervisor drives it with two calls per dispatch tick:

    - [advance ~now ~dt] lets the workload generate demand (request arrivals,
      compute-burst tokens) for the elapsed interval, whether or not the VM
      was scheduled;
    - [execute ~now ~cpu_time ~speed] offers it up to [cpu_time] of processor
      time at [speed] absolute-work-units per second and returns how much of
      that time it actually consumed.

    Work is measured in {e absolute seconds} (processor seconds at maximum
    frequency), so a workload's demand is frequency-independent while the
    time it takes depends on the frequency — exactly the split the paper's
    equations (1)–(3) rely on. *)

type t

val make :
  name:string ->
  ?advance:(now:Sim_time.t -> dt:Sim_time.t -> unit) ->
  has_work:(unit -> bool) ->
  execute:(now:Sim_time.t -> cpu_time:Sim_time.t -> speed:float -> Sim_time.t) ->
  unit ->
  t
(** [execute] must return a duration no larger than [cpu_time]; the runtime
    checks this and raises [Invalid_argument] otherwise (a workload consuming
    more time than offered would corrupt the scheduler's accounting). *)

val name : t -> string

val advance : t -> now:Sim_time.t -> dt:Sim_time.t -> unit

val has_work : t -> bool
(** True when the workload would use CPU if scheduled right now. *)

val execute : t -> now:Sim_time.t -> cpu_time:Sim_time.t -> speed:float -> Sim_time.t
(** @raise Invalid_argument if [speed <= 0]. *)

val idle : unit -> t
(** A workload that never runs — for lazy VMs that exist but demand nothing. *)

val busy_loop : unit -> t
(** A workload with unbounded demand — consumes everything it is offered. *)

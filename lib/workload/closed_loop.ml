type client = {
  mutable wakes_at : Sim_time.t; (* end of the current think period *)
  mutable thinking : bool;
}

type request = { client : int; submitted : Sim_time.t; mutable remaining : float }

type t = {
  think_time : float;
  request_work : float;
  rng : Prng.t;
  clients : client array;
  queue : request Queue.t;
  mutable completed : int;
  response : Stats.Running.t;
}

(* Zero mean think time is the saturated-client limit (resubmit the instant
   a response arrives), so the exponential draw degenerates to 0. *)
let think_delay ~rng ~think_time =
  if think_time = 0.0 (* lint:ignore float-eq: exact zero is the saturated-client sentinel *)
  then 0.0
  else Prng.exponential rng ~rate:(1.0 /. think_time)

let create ?(seed = 424242) ~clients ~think_time ~request_work () =
  if clients <= 0 then invalid_arg "Closed_loop.create: clients must be positive";
  if not (think_time >= 0.0) then
    invalid_arg "Closed_loop.create: think_time must be non-negative";
  if not (request_work > 0.0) then
    invalid_arg "Closed_loop.create: request_work must be positive";
  let rng = Prng.create ~seed in
  {
    think_time;
    request_work;
    rng;
    clients =
      Array.init clients (fun _ ->
          {
            wakes_at = Sim_time.of_sec_f (think_delay ~rng ~think_time);
            thinking = true;
          });
    queue = Queue.create ();
    completed = 0;
    response = Stats.Running.create ();
  }

(* Move clients whose think period ended into the request queue. *)
let advance t ~now ~dt:_ =
  Array.iteri
    (fun i c ->
      if c.thinking && Sim_time.compare c.wakes_at now <= 0 then begin
        c.thinking <- false;
        Queue.push { client = i; submitted = now; remaining = t.request_work } t.queue
      end)
    t.clients

let has_work t () = not (Queue.is_empty t.queue)

let execute t ~now ~cpu_time ~speed =
  let budget = ref (Sim_time.to_sec cpu_time *. speed) in
  let used_work = ref 0.0 in
  let continue = ref true in
  while !continue && not (Queue.is_empty t.queue) do
    let req = Queue.peek t.queue in
    if req.remaining <= !budget then begin
      budget := !budget -. req.remaining;
      used_work := !used_work +. req.remaining;
      ignore (Queue.pop t.queue);
      t.completed <- t.completed + 1;
      Stats.Running.add t.response (Sim_time.to_sec now -. Sim_time.to_sec req.submitted);
      let c = t.clients.(req.client) in
      c.thinking <- true;
      c.wakes_at <-
        Sim_time.add now
          (Sim_time.of_sec_f (think_delay ~rng:t.rng ~think_time:t.think_time))
    end
    else begin
      req.remaining <- req.remaining -. !budget;
      used_work := !used_work +. !budget;
      budget := 0.0;
      continue := false
    end
  done;
  Sim_time.min cpu_time (Sim_time.of_sec_f (!used_work /. speed))

let workload t =
  Workload.make ~name:"closed-loop" ~advance:(fun ~now ~dt -> advance t ~now ~dt)
    ~has_work:(has_work t)
    ~execute:(fun ~now ~cpu_time ~speed -> execute t ~now ~cpu_time ~speed)
    ()

let completed_requests t = t.completed
let response_times t = t.response

let thinking_clients t ~now =
  Array.fold_left
    (fun acc c -> if c.thinking && Sim_time.compare c.wakes_at now > 0 then acc + 1 else acc)
    0 t.clients

let offered_load t =
  if t.think_time = 0.0 (* lint:ignore float-eq: saturated clients offer unbounded load *)
  then infinity
  else float_of_int (Array.length t.clients) *. t.request_work /. t.think_time

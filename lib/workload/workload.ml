type t = {
  name : string;
  advance : now:Sim_time.t -> dt:Sim_time.t -> unit;
  has_work : unit -> bool;
  execute : now:Sim_time.t -> cpu_time:Sim_time.t -> speed:float -> Sim_time.t;
}

let make ~name ?(advance = fun ~now:_ ~dt:_ -> ()) ~has_work ~execute () =
  { name; advance; has_work; execute }

let name t = t.name
let advance t ~now ~dt = t.advance ~now ~dt
let has_work t = t.has_work ()

let execute t ~now ~cpu_time ~speed =
  if not (speed > 0.0) then invalid_arg "Workload.execute: speed must be positive";
  let used = t.execute ~now ~cpu_time ~speed in
  if Sim_time.compare used cpu_time > 0 then
    invalid_arg
      (Printf.sprintf "Workload.execute: %s consumed more time than offered" t.name);
  used

let idle () =
  make ~name:"idle" ~has_work:(fun () -> false)
    ~execute:(fun ~now:_ ~cpu_time:_ ~speed:_ -> Sim_time.zero)
    ()

let busy_loop () =
  make ~name:"busy-loop" ~has_work:(fun () -> true)
    ~execute:(fun ~now:_ ~cpu_time ~speed:_ -> cpu_time)
    ()

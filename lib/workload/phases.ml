let exact_rate ~credit_pct =
  if credit_pct < 0.0 || credit_pct > 100.0 then
    invalid_arg "Phases.exact_rate: credit out of [0, 100]";
  credit_pct /. 100.0

let thrashing_rate ?(factor = 3.0) ~credit_pct () =
  if factor <= 1.0 then invalid_arg "Phases.thrashing_rate: factor must exceed 1";
  exact_rate ~credit_pct *. factor

let constant ~rate = [ (Sim_time.zero, rate) ]

let three_phase ~active_from ~active_until ~rate =
  if Sim_time.compare active_until active_from <= 0 then
    invalid_arg "Phases.three_phase: empty active window";
  if Sim_time.equal active_from Sim_time.zero then
    [ (Sim_time.zero, rate); (active_until, 0.0) ]
  else [ (Sim_time.zero, 0.0); (active_from, rate); (active_until, 0.0) ]

let steps schedule =
  (* Reuse Web_app's validation by constructing a throwaway instance. *)
  ignore (Web_app.create ~rate_schedule:schedule ());
  schedule

(** Closed-loop interactive clients (httperf's session mode).

    The paper's injector is open-loop (requests arrive regardless of
    completions).  Interactive latency, however, is a closed-loop
    phenomenon: each of [clients] users thinks for an exponentially
    distributed time, submits one request, waits for its completion and
    thinks again.  Offered load self-throttles under slow service, and the
    response-time distribution — rather than throughput — is the metric.
    Used by the scheduler-latency experiments (Credit BOOST). *)

type t

val create :
  ?seed:int ->
  clients:int ->
  think_time:float ->
  request_work:float ->
  unit ->
  t
(** [think_time] is the mean think time in seconds; [request_work] the
    service demand per request in absolute seconds.  [think_time = 0.0] is
    the saturated-client limit: every client resubmits the instant its
    previous response completes, so offered load is unbounded and the CPU
    never idles (the machine-repairman model with zero think time).
    @raise Invalid_argument on negative [think_time] or non-positive
    [clients]/[request_work]. *)

val workload : t -> Workload.t

val completed_requests : t -> int
val response_times : t -> Stats.Running.t
(** Seconds from submission to completion. *)

val thinking_clients : t -> now:Sim_time.t -> int
(** Clients currently in their think phase (diagnostic). *)

val offered_load : t -> float
(** The asymptotic absolute work rate if service were instantaneous:
    [clients * request_work / think_time].  With a single client this is the
    work rate of its think/submit cycle, an upper bound on what the client
    can actually offer once service time is non-zero.  [infinity] when
    [think_time = 0.0] (saturated clients). *)

(** The paper's [pi-app]: a CPU-bound batch job computing an approximation of
    π (§5.1).  It carries a fixed amount of absolute work; the measured
    output is its execution time, which is what Fig. 1, Table 2 and the
    proportionality validations (eq. (2)/(3)) observe.

    [duty_cycle] models an application that cannot keep a whole host CPU
    busy (a single guest process among guest-level overheads): the job
    accumulates CPU-time demand at [duty_cycle] seconds per second of wall
    time, so even on an idle work-conserving host it consumes at most that
    fraction of the processor.  The paper's Table 2 measurements imply a
    duty cycle of about 0.5 for pi-app on the Elite 8300 (SEDF finishes in
    616 s what the 20 %-capped run does in 1559 s). *)

type t

val create : ?duty_cycle:float -> work:float -> unit -> t
(** [work] in absolute seconds; [duty_cycle] in (0, 1], default 1.
    @raise Invalid_argument on a non-positive work amount or a duty cycle
    outside (0, 1]. *)

val workload : t -> Workload.t

val total_work : t -> float
val remaining_work : t -> float
val finished : t -> bool

val start_time : t -> Sim_time.t option
(** Time of the first execution, [None] if it never ran. *)

val finish_time : t -> Sim_time.t option

val execution_time : t -> Sim_time.t option
(** [finish - start], the paper's measured quantity. *)

val reset : t -> unit
(** Restores the full work amount so the job can be run again. *)

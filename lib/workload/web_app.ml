type arrival = Deterministic | Poisson of Prng.t

type request = { arrived : Sim_time.t; mutable remaining : float }

(* The per-tick float counters live in an all-float sub-record so the
   advance/execute hot paths store into a flat float block instead of
   boxing a fresh float per update of a mixed record. *)
type acc = {
  mutable carry : float; (* fractional request accumulation (deterministic) *)
  mutable injected_work : float;
  mutable completed_work : float;
}

type t = {
  request_work : float;
  arrival : arrival;
  timeout : Sim_time.t option;
  schedule : (Sim_time.t * float) array;
  queue : request Queue.t;
  acc : acc;
  mutable injected : int;
  mutable completed : int;
  mutable timed_out : int;
  response : Stats.Running.t;
}

let validate_schedule schedule =
  let rec check = function
    | [] | [ _ ] -> ()
    | (t0, _) :: ((t1, _) :: _ as rest) ->
        if Sim_time.compare t0 t1 >= 0 then
          invalid_arg "Web_app.create: schedule must be sorted strictly by time";
        check rest
  in
  check schedule;
  List.iter
    (fun (_, r) -> if r < 0.0 then invalid_arg "Web_app.create: negative rate")
    schedule

let create ?(request_work = 0.005) ?(arrival = Deterministic) ?timeout ~rate_schedule () =
  if not (request_work > 0.0) then invalid_arg "Web_app.create: request_work must be positive";
  (match timeout with
  | Some d when Sim_time.equal d Sim_time.zero -> invalid_arg "Web_app.create: zero timeout"
  | Some _ | None -> ());
  validate_schedule rate_schedule;
  {
    request_work;
    arrival;
    timeout;
    schedule = Array.of_list rate_schedule;
    queue = Queue.create ();
    acc = { carry = 0.0; injected_work = 0.0; completed_work = 0.0 };
    injected = 0;
    completed = 0;
    timed_out = 0;
    response = Stats.Running.create ();
  }

let current_rate t ~now =
  let rate = ref 0.0 in
  for i = 0 to Array.length t.schedule - 1 do
    let time, r = t.schedule.(i) in
    if Sim_time.compare time now <= 0 then rate := r
  done;
  !rate

let inject t ~now n =
  for _ = 1 to n do
    Queue.push { arrived = now; remaining = t.request_work } t.queue;
    t.injected <- t.injected + 1;
    t.acc.injected_work <- t.acc.injected_work +. t.request_work
  done

(* Drop queued requests older than the timeout (httperf clients give up);
   the head of the queue may be in service, but a real client's abandonment
   aborts the request wherever it is. *)
let expire t ~now =
  match t.timeout with
  | None -> ()
  | Some limit ->
      let continue = ref true in
      while (not (Queue.is_empty t.queue)) && !continue do
        let req = Queue.peek t.queue in
        if Sim_time.compare (Sim_time.diff now req.arrived) limit > 0 then begin
          ignore (Queue.pop t.queue);
          t.timed_out <- t.timed_out + 1
        end
        else continue := false
      done

let advance t ~now ~dt =
  expire t ~now;
  let rate = current_rate t ~now in
  if rate > 0.0 then begin
    let expected = rate *. Sim_time.to_sec dt /. t.request_work in
    match t.arrival with
    | Deterministic ->
        t.acc.carry <- t.acc.carry +. expected;
        let n = int_of_float t.acc.carry in
        t.acc.carry <- t.acc.carry -. float_of_int n;
        inject t ~now n
    | Poisson rng -> inject t ~now (Prng.poisson rng ~mean:expected)
  end

let has_work t () = not (Queue.is_empty t.queue)

let execute t ~now ~cpu_time ~speed =
  let budget = ref (Sim_time.to_sec cpu_time *. speed) in
  let used_work = ref 0.0 in
  let continue = ref true in
  while !continue && not (Queue.is_empty t.queue) do
    let req = Queue.peek t.queue in
    if req.remaining <= !budget then begin
      budget := !budget -. req.remaining;
      used_work := !used_work +. req.remaining;
      req.remaining <- 0.0;
      ignore (Queue.pop t.queue);
      t.completed <- t.completed + 1;
      t.acc.completed_work <- t.acc.completed_work +. t.request_work;
      Stats.Running.add t.response (Sim_time.to_sec now -. Sim_time.to_sec req.arrived)
    end
    else begin
      req.remaining <- req.remaining -. !budget;
      used_work := !used_work +. !budget;
      budget := 0.0;
      continue := false
    end
  done;
  Sim_time.min cpu_time (Sim_time.of_sec_f (!used_work /. speed))

let workload t =
  Workload.make ~name:"web-app" ~advance:(fun ~now ~dt -> advance t ~now ~dt)
    ~has_work:(has_work t)
    ~execute:(fun ~now ~cpu_time ~speed -> execute t ~now ~cpu_time ~speed)
    ()

let queue_length t = Queue.length t.queue

let queued_work t = Queue.fold (fun acc req -> acc +. req.remaining) 0.0 t.queue

let injected_requests t = t.injected
let completed_requests t = t.completed
let injected_work t = t.acc.injected_work
let completed_work t = t.acc.completed_work
let response_times t = t.response

let timed_out_requests t = t.timed_out

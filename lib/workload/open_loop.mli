(** Open-loop Poisson request source — an M/M/c station on the simulator.

    Unlike {!Closed_loop}, arrivals do not wait for completions: requests
    arrive in a Poisson stream of the configured [rate] regardless of how
    the system keeps up, each carrying an exponentially distributed service
    demand with mean [service_mean] absolute seconds.  That makes the
    station's steady state exactly an M/M/c queue, so its measured
    utilization, mean sojourn time, and mean number in system have
    closed-form targets — the property the validation rig
    ([lib/validate]) exploits.

    Two driving modes share the same arrival stream and statistics:

    - {b Workload mode} ([workload], [servers = 1] only): behaves like any
      other {!Workload.t} and is placed inside a VM on a real host, so
      service passes through the credit scheduler, governor, and
      [ratio*cf] capacity law.
    - {b Station mode} ([step], any [servers]): the caller ticks the
      station directly with an explicit [speed]; each of the [c] servers
      independently serves the FIFO queue.  Used for the M/M/c sweeps
      where the host model has no multi-server analogue.

    Arrival instants are exact floats (not quantised to the driving tick)
    and completion instants are reconstructed sub-tick from the work
    consumed, so measurement bias is bounded by one tick of visibility
    delay. *)

type t

val create :
  ?seed:int -> ?servers:int -> rate:float -> service_mean:float -> unit -> t
(** [rate] is the Poisson arrival rate in requests per second;
    [service_mean] the mean service demand per request in absolute seconds
    (processor seconds at full speed); [servers] (default 1) the number of
    parallel servers in station mode.
    @raise Invalid_argument on non-positive parameters. *)

val workload : t -> Workload.t
(** Single-server workload-mode adapter.
    @raise Invalid_argument when [servers <> 1]. *)

val step : t -> now:Sim_time.t -> dt:Sim_time.t -> speed:float -> unit
(** Station mode: inject the arrivals due by [now], then let every server
    spend up to [dt] of wall time serving at [speed] work units per
    second.  Completions inside the interval free the server for the next
    queued request immediately.
    @raise Invalid_argument if [speed <= 0]. *)

val reset_stats : t -> unit
(** Zero the counters and statistics (for discarding a warm-up interval)
    while keeping the queue contents, in-flight requests, and random
    stream untouched. *)

val servers : t -> int

val arrivals : t -> int
(** Requests injected so far (since the last [reset_stats]). *)

val completed_requests : t -> int

val busy_time : t -> float
(** Cumulative busy wall-seconds summed over all servers; divide by
    elapsed time × servers for mean utilization. *)

val in_system : t -> int
(** Requests currently queued or in service. *)

val sojourn_times : t -> Stats.Running.t
(** Per-request time from arrival to completion, seconds. *)

val sojourn_samples : t -> float array
(** Sojourn times in completion order (for batch-means analysis). *)

val queue_seen : t -> Stats.Running.t
(** Number in system sampled at each arrival instant; by PASTA its mean
    estimates the time-average number in system L. *)

val queue_seen_samples : t -> float array
(** Arrival-instant system sizes in arrival order. *)

(* The remaining-work counter is per-tick mutable float state; keeping it
   in an all-float sub-record makes the execute-path store unboxed. *)
type progress = { mutable remaining : float }

type t = {
  total_work : float;
  duty_cycle : float;
  progress : progress;
  mutable tokens : Sim_time.t; (* accumulated CPU-time demand *)
  mutable start_time : Sim_time.t option;
  mutable finish_time : Sim_time.t option;
}

(* Demand tokens saturate at one accounting-period's worth so a long idle
   stretch cannot be repaid as a burst exceeding the duty cycle. *)
let token_cap = Sim_time.of_ms 30

let create ?(duty_cycle = 1.0) ~work () =
  if not (work > 0.0) then invalid_arg "Pi_app.create: work must be positive";
  if not (duty_cycle > 0.0 && duty_cycle <= 1.0) then
    invalid_arg "Pi_app.create: duty_cycle must be in (0, 1]";
  {
    total_work = work;
    duty_cycle;
    progress = { remaining = work };
    tokens = Sim_time.zero;
    start_time = None;
    finish_time = None;
  }

let advance t ~now:_ ~dt =
  if t.progress.remaining > 0.0 then begin
    let earned = Sim_time.of_sec_f (t.duty_cycle *. Sim_time.to_sec dt) in
    t.tokens <- Sim_time.min token_cap (Sim_time.add t.tokens earned)
  end

let has_work t () = t.progress.remaining > 0.0 && Sim_time.compare t.tokens Sim_time.zero > 0

let execute t ~now ~cpu_time ~speed =
  if t.progress.remaining <= 0.0 then Sim_time.zero
  else begin
    (match t.start_time with None -> t.start_time <- Some now | Some _ -> ());
    (* Round the finishing slice up to the clock resolution, otherwise a
       residue smaller than one microsecond of work could never complete. *)
    let time_to_finish =
      Sim_time.max (Sim_time.of_us 1) (Sim_time.of_sec_f (t.progress.remaining /. speed))
    in
    let used = Sim_time.min cpu_time (Sim_time.min t.tokens time_to_finish) in
    t.tokens <- Sim_time.sub t.tokens used;
    t.progress.remaining <- t.progress.remaining -. (Sim_time.to_sec used *. speed);
    if t.progress.remaining <= 1e-9 then begin
      t.progress.remaining <- 0.0;
      match t.finish_time with
      | None -> t.finish_time <- Some (Sim_time.add now used)
      | Some _ -> ()
    end;
    used
  end

let workload t =
  Workload.make ~name:"pi-app" ~advance:(fun ~now ~dt -> advance t ~now ~dt)
    ~has_work:(has_work t)
    ~execute:(fun ~now ~cpu_time ~speed -> execute t ~now ~cpu_time ~speed)
    ()

let total_work t = t.total_work
let remaining_work t = t.progress.remaining
let finished t = t.progress.remaining <= 0.0
let start_time t = t.start_time
let finish_time t = t.finish_time

let execution_time t =
  match (t.start_time, t.finish_time) with
  | Some s, Some f -> Some (Sim_time.sub f s)
  | _ -> None

let reset t =
  t.progress.remaining <- t.total_work;
  t.tokens <- Sim_time.zero;
  t.start_time <- None;
  t.finish_time <- None

(** Rate-schedule builders for the paper's execution profiles (§5.3).

    The evaluation drives each VM with a three-phase
    inactive / active / inactive profile; during the active phase the
    injector produces either an {e exact} load (100 % of the VM's capacity
    but not more) or a {e thrashing} load (exceeding the capacity). *)

val exact_rate : credit_pct:float -> float
(** The absolute work rate that saturates a VM sold [credit_pct] percent of
    the processor at maximum frequency: [credit_pct / 100].
    @raise Invalid_argument if the credit is outside \[0, 100\]. *)

val thrashing_rate : ?factor:float -> credit_pct:float -> unit -> float
(** A rate exceeding the VM's capacity by [factor] (default 3.0).
    @raise Invalid_argument if [factor <= 1]. *)

val constant : rate:float -> (Sim_time.t * float) list
(** Active at [rate] from time zero, forever. *)

val three_phase :
  active_from:Sim_time.t -> active_until:Sim_time.t -> rate:float -> (Sim_time.t * float) list
(** Inactive, then [rate] during [\[active_from, active_until)], then
    inactive again.
    @raise Invalid_argument if [active_until <= active_from]. *)

val steps : (Sim_time.t * float) list -> (Sim_time.t * float) list
(** Validates and returns an arbitrary stepwise schedule (sorted, rates
    non-negative) — convenience for custom scenarios.
    @raise Invalid_argument like {!Web_app.create}. *)

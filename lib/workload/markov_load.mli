(** Markov-modulated load: a two-state (ON/OFF) arrival process.

    The paper's injector (httperf) produces steady rates per phase; real
    tenant traffic is burstier.  This modulator flips a {!Web_app}-style
    rate between a burst rate and an idle rate with exponentially
    distributed sojourn times — the classic Markov-modulated Poisson
    process when combined with Poisson arrivals.  Used by the
    hosting-center example and the failure-injection tests to stress
    governors with realistic burstiness. *)

type t

val create :
  ?seed:int ->
  on_rate:float ->
  off_rate:float ->
  mean_on:float ->
  mean_off:float ->
  unit ->
  t
(** [on_rate]/[off_rate] are absolute work rates in the two states;
    [mean_on]/[mean_off] are the states' mean durations in seconds.
    The process starts OFF.
    @raise Invalid_argument on negative rates or non-positive durations. *)

val workload : t -> request_work:float -> Workload.t
(** Materialise as a workload: requests of [request_work] absolute seconds
    arrive at the current state's rate (deterministic accumulation, like
    {!Web_app}'s [Deterministic] arrival — burstiness comes from the state
    flips). *)

val state_at : t -> now:Sim_time.t -> [ `On | `Off ]
(** Current modulation state (after advancing to [now]). *)

val transitions : t -> int
(** Number of state flips so far. *)

val completed_work : t -> float
val injected_work : t -> float
val queued_work : t -> float

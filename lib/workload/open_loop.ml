(* Open-loop Poisson request source (an M/M/c station).  Arrival times are
   kept as exact floats (not quantised to the dispatch tick) and completion
   instants are reconstructed sub-tick from the work consumed, so measured
   sojourn times carry at most the one-tick visibility delay of the host
   loop — small enough for the validation rig's confidence intervals to
   absorb.

   Requests live in an int-indexed parallel-array pool ([arrived] and
   [remaining] are flat float arrays) instead of per-request heap records:
   the waiting line is a ring of pool indices and a server holds the index
   it is serving (-1 when idle), so the steady-state service paths ([step],
   [execute]) move ints and raw floats only and allocate nothing.
   Allocation is confined to arrival injection ([sync_arrivals], which
   draws from the boxed-state Prng by construction) and the O(log n)
   pool/ring capacity doublings. *)

(* All-float sub-record: stores into it are raw float moves, and it doubles
   as the box-free hand-off of the current instant into [sync_arrivals]
   (the [Series.cell] idiom applied to an argument). *)
type acc = {
  mutable next_arrival : float; (* exact instant of the next injection *)
  mutable busy : float; (* cumulative server-busy seconds, all servers *)
  mutable clock : float; (* now_s hand-off slot for [sync_arrivals] *)
}

type t = {
  rate : float;
  service_mean : float;
  service_rate : float; (* 1.0 /. service_mean, precomputed at creation *)
  servers : int;
  rng : Prng.t;
  mutable arrived : float array; (* pool: exact arrival instant, seconds *)
  mutable remaining : float array; (* pool: absolute work still to serve *)
  mutable free : int array; (* stack of free pool slots *)
  mutable free_top : int;
  mutable ring : int array; (* FIFO of waiting request indices *)
  mutable head : int; (* monotonic cursors; slot = cursor land (cap - 1) *)
  mutable tail : int;
  in_service : int array; (* station mode: pool index per server, -1 idle *)
  acc : acc;
  mutable arrivals : int;
  mutable completed : int;
  sojourn : Stats.Running.t;
  sojourn_log : Vec.Floats.t;
  seen : Stats.Running.t; (* number in system seen by each arrival *)
  seen_log : Vec.Floats.t;
  scratch : Vec.Floats.cell; (* box-free sample hand-off, reused *)
}

let pool_init = 16

let create ?(seed = 271828) ?(servers = 1) ~rate ~service_mean () =
  if not (rate > 0.0) then invalid_arg "Open_loop.create: rate must be positive";
  if not (service_mean > 0.0) then
    invalid_arg "Open_loop.create: service_mean must be positive";
  if servers < 1 then invalid_arg "Open_loop.create: servers must be positive";
  let rng = Prng.create ~seed in
  {
    rate;
    service_mean;
    service_rate = 1.0 /. service_mean;
    servers;
    rng;
    arrived = Array.make pool_init 0.0;
    remaining = Array.make pool_init 0.0;
    (* Stack top holds slot 0, so slots are first handed out in index
       order. *)
    free = Array.init pool_init (fun i -> pool_init - 1 - i);
    free_top = pool_init;
    ring = Array.make pool_init (-1);
    head = 0;
    tail = 0;
    in_service = Array.make servers (-1);
    acc = { next_arrival = Prng.exponential rng ~rate; busy = 0.0; clock = 0.0 };
    arrivals = 0;
    completed = 0;
    sojourn = Stats.Running.create ();
    sojourn_log = Vec.Floats.create ();
    seen = Stats.Running.create ();
    seen_log = Vec.Floats.create ();
    scratch = Vec.Floats.cell ();
  }

(* Local copy of [Sim_time.to_sec]'s expression ([to_us] is the identity on
   the int representation, so the result is bit-identical); keeps the float
   conversion in this unit instead of boxing at a cross-library call on
   every tick (dev builds compile with -opaque). *)
let[@inline always] sec_of time = float_of_int (Sim_time.to_us time) /. 1e6

let waiting t = t.tail - t.head

let in_service_count t =
  let n = ref 0 in
  for k = 0 to Array.length t.in_service - 1 do
    if t.in_service.(k) >= 0 then incr n
  done;
  !n

let in_system t = waiting t + in_service_count t

(* Ring doubling runs O(log n) times over the station's life; the
   steady-state enqueue pays only the occupancy test. *)
(* alloc: cold *)
let[@inline never] grow_ring t =
  let cap = Array.length t.ring in
  let nring = Array.make (cap * 2) (-1) in
  for i = 0 to cap - 1 do
    nring.(i) <- t.ring.((t.head + i) land (cap - 1))
  done;
  t.ring <- nring;
  t.head <- 0;
  t.tail <- cap

let enqueue t idx =
  if t.tail - t.head = Array.length t.ring then grow_ring t;
  t.ring.(t.tail land (Array.length t.ring - 1)) <- idx;
  t.tail <- t.tail + 1

let dequeue t =
  let idx = t.ring.(t.head land (Array.length t.ring - 1)) in
  t.head <- t.head + 1;
  idx

(* Pool doubling runs O(log n) times over the station's life. *)
(* alloc: cold *)
let[@inline never] grow_pool t =
  let cap = Array.length t.arrived in
  let narrived = Array.make (cap * 2) 0.0 in
  let nremaining = Array.make (cap * 2) 0.0 in
  Array.blit t.arrived 0 narrived 0 cap;
  Array.blit t.remaining 0 nremaining 0 cap;
  t.arrived <- narrived;
  t.remaining <- nremaining;
  let nfree = Array.make (cap * 2) 0 in
  Array.blit t.free 0 nfree 0 t.free_top;
  (* The new slots [cap, 2*cap) join the stack top-down so the lowest new
     index is handed out first. *)
  for i = 0 to cap - 1 do
    nfree.(t.free_top + i) <- (2 * cap) - 1 - i
  done;
  t.free <- nfree;
  t.free_top <- t.free_top + cap

let acquire t =
  if t.free_top = 0 then grow_pool t;
  t.free_top <- t.free_top - 1;
  t.free.(t.free_top)

(* Inject every arrival whose exact instant has been reached; [acc.clock]
   carries the current instant (stored by the caller as a raw float).  The
   number in system is sampled just before each arrival joins: by PASTA the
   mean of those samples estimates the time-average number in system L. *)
(* Arrival injection draws from the boxed-state Prng, which allocates per
   draw by construction; a drained station never enters the loop, so the
   service paths pay only the two flat-float loads of the test. *)
(* alloc: cold *)
let[@inline never] sync_arrivals t =
  while t.acc.next_arrival <= t.acc.clock do
    let seen = float_of_int (in_system t) in
    Stats.Running.add t.seen seen;
    Vec.Floats.push t.seen_log seen;
    let idx = acquire t in
    t.arrived.(idx) <- t.acc.next_arrival;
    t.remaining.(idx) <- Prng.exponential t.rng ~rate:t.service_rate;
    enqueue t idx;
    t.arrivals <- t.arrivals + 1;
    t.acc.next_arrival <- t.acc.next_arrival +. Prng.exponential t.rng ~rate:t.rate
  done

(* Completion samples travel through the scratch cell (the
   [Series.add_cell] idiom) so the service paths record without boxing;
   the pool slot returns to the free stack immediately. *)
let[@inline always] complete t idx ~finished =
  t.completed <- t.completed + 1;
  let c = t.scratch in
  c.Vec.Floats.value <- finished -. t.arrived.(idx);
  Stats.Running.add_cell t.sojourn c;
  Vec.Floats.push_cell t.sojourn_log c;
  t.free.(t.free_top) <- idx;
  t.free_top <- t.free_top + 1

let advance t ~now ~dt:_ =
  t.acc.clock <- sec_of now;
  sync_arrivals t

let has_work t () = t.tail - t.head > 0

(* Single-server FIFO service of the offered slice (workload mode); the
   ring head stays queued while in service, exactly like the old
   Queue.peek-based loop. *)
let execute t ~now ~cpu_time ~speed =
  let now_s = sec_of now in
  let budget = ref (sec_of cpu_time *. speed) in
  let used_work = ref 0.0 in
  let continue = ref true in
  while !continue && t.tail - t.head > 0 do
    let idx = t.ring.(t.head land (Array.length t.ring - 1)) in
    if t.remaining.(idx) <= !budget then begin
      budget := !budget -. t.remaining.(idx);
      used_work := !used_work +. t.remaining.(idx);
      t.head <- t.head + 1;
      complete t idx ~finished:(now_s +. (!used_work /. speed))
    end
    else begin
      t.remaining.(idx) <- t.remaining.(idx) -. !budget;
      used_work := !used_work +. !budget;
      budget := 0.0;
      continue := false
    end
  done;
  t.acc.busy <- t.acc.busy +. (!used_work /. speed);
  Sim_time.min cpu_time (Sim_time.of_sec_f (!used_work /. speed))

let workload t =
  if t.servers <> 1 then
    invalid_arg "Open_loop.workload: a multi-server station must be driven by step";
  Workload.make ~name:"open-loop"
    ~advance:(fun ~now ~dt -> advance t ~now ~dt)
    ~has_work:(has_work t)
    ~execute:(fun ~now ~cpu_time ~speed -> execute t ~now ~cpu_time ~speed)
    ()

(* Station mode: every server independently spends up to [dt] of wall time
   serving at [speed] work units per second, pulling the next waiting
   request whenever it frees mid-interval. *)
(* alloc: none *)
let step t ~now ~dt ~speed =
  if not (speed > 0.0) then invalid_arg "Open_loop.step: speed must be positive";
  let now_s = sec_of now in
  t.acc.clock <- now_s;
  sync_arrivals t;
  let dt_sec = sec_of dt in
  for k = 0 to t.servers - 1 do
    let budget = ref dt_sec in
    let continue = ref true in
    while !continue do
      let idx = t.in_service.(k) in
      if idx < 0 then begin
        if t.tail - t.head = 0 then continue := false
        else t.in_service.(k) <- dequeue t
      end
      else begin
        let possible = !budget *. speed in
        if t.remaining.(idx) <= possible then begin
          let spent = t.remaining.(idx) /. speed in
          budget := !budget -. spent;
          t.acc.busy <- t.acc.busy +. spent;
          t.in_service.(k) <- -1;
          complete t idx ~finished:(now_s +. (dt_sec -. !budget))
        end
        else begin
          t.remaining.(idx) <- t.remaining.(idx) -. possible;
          t.acc.busy <- t.acc.busy +. !budget;
          budget := 0.0;
          continue := false
        end
      end
    done
  done

let reset_stats t =
  t.arrivals <- 0;
  t.completed <- 0;
  t.acc.busy <- 0.0;
  Stats.Running.reset t.sojourn;
  Stats.Running.reset t.seen;
  Vec.Floats.clear t.sojourn_log;
  Vec.Floats.clear t.seen_log

let servers t = t.servers
let arrivals t = t.arrivals
let completed_requests t = t.completed
let busy_time t = t.acc.busy
let sojourn_times t = t.sojourn
let sojourn_samples t = Vec.Floats.to_array t.sojourn_log
let queue_seen t = t.seen
let queue_seen_samples t = Vec.Floats.to_array t.seen_log

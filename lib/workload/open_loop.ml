(* Open-loop Poisson request source (an M/M/c station).  Arrival times are
   kept as exact floats (not quantised to the dispatch tick) and completion
   instants are reconstructed sub-tick from the work consumed, so measured
   sojourn times carry at most the one-tick visibility delay of the host
   loop — small enough for the validation rig's confidence intervals to
   absorb. *)

type request = {
  arrived : float; (* exact arrival instant, seconds *)
  mutable remaining : float; (* absolute work still to serve *)
}

type t = {
  rate : float;
  service_mean : float;
  servers : int;
  rng : Prng.t;
  queue : request Queue.t; (* waiting (workload mode: head is in service) *)
  in_service : request option array; (* station mode: one slot per server *)
  mutable next_arrival : float;
  mutable arrivals : int;
  mutable completed : int;
  mutable busy : float; (* cumulative server-busy seconds, all servers *)
  sojourn : Stats.Running.t;
  sojourn_log : Vec.Floats.t;
  seen : Stats.Running.t; (* number in system seen by each arrival *)
  seen_log : Vec.Floats.t;
}

let create ?(seed = 271828) ?(servers = 1) ~rate ~service_mean () =
  if not (rate > 0.0) then invalid_arg "Open_loop.create: rate must be positive";
  if not (service_mean > 0.0) then
    invalid_arg "Open_loop.create: service_mean must be positive";
  if servers < 1 then invalid_arg "Open_loop.create: servers must be positive";
  let rng = Prng.create ~seed in
  {
    rate;
    service_mean;
    servers;
    rng;
    queue = Queue.create ();
    in_service = Array.make servers None;
    next_arrival = Prng.exponential rng ~rate;
    arrivals = 0;
    completed = 0;
    busy = 0.0;
    sojourn = Stats.Running.create ();
    sojourn_log = Vec.Floats.create ();
    seen = Stats.Running.create ();
    seen_log = Vec.Floats.create ();
  }

let in_service_count t =
  let n = ref 0 in
  Array.iter (function Some _ -> incr n | None -> ()) t.in_service;
  !n

let in_system t = Queue.length t.queue + in_service_count t

(* Inject every arrival whose exact instant has been reached.  The number
   in system is sampled just before each arrival joins: by PASTA the mean
   of those samples estimates the time-average number in system L. *)
let sync_arrivals t ~now_s =
  while t.next_arrival <= now_s do
    let seen = float_of_int (in_system t) in
    Stats.Running.add t.seen seen;
    Vec.Floats.push t.seen_log seen;
    Queue.push
      {
        arrived = t.next_arrival;
        remaining = Prng.exponential t.rng ~rate:(1.0 /. t.service_mean);
      }
      t.queue;
    t.arrivals <- t.arrivals + 1;
    t.next_arrival <- t.next_arrival +. Prng.exponential t.rng ~rate:t.rate
  done

let complete t req ~finished =
  t.completed <- t.completed + 1;
  let sojourn = finished -. req.arrived in
  Stats.Running.add t.sojourn sojourn;
  Vec.Floats.push t.sojourn_log sojourn

let advance t ~now ~dt:_ = sync_arrivals t ~now_s:(Sim_time.to_sec now)

let has_work t () = not (Queue.is_empty t.queue)

(* Single-server FIFO service of the offered slice (workload mode). *)
let execute t ~now ~cpu_time ~speed =
  let now_s = Sim_time.to_sec now in
  let budget = ref (Sim_time.to_sec cpu_time *. speed) in
  let used_work = ref 0.0 in
  let continue = ref true in
  while !continue && not (Queue.is_empty t.queue) do
    let req = Queue.peek t.queue in
    if req.remaining <= !budget then begin
      budget := !budget -. req.remaining;
      used_work := !used_work +. req.remaining;
      ignore (Queue.pop t.queue);
      complete t req ~finished:(now_s +. (!used_work /. speed))
    end
    else begin
      req.remaining <- req.remaining -. !budget;
      used_work := !used_work +. !budget;
      budget := 0.0;
      continue := false
    end
  done;
  t.busy <- t.busy +. (!used_work /. speed);
  Sim_time.min cpu_time (Sim_time.of_sec_f (!used_work /. speed))

let workload t =
  if t.servers <> 1 then
    invalid_arg "Open_loop.workload: a multi-server station must be driven by step";
  Workload.make ~name:"open-loop"
    ~advance:(fun ~now ~dt -> advance t ~now ~dt)
    ~has_work:(has_work t)
    ~execute:(fun ~now ~cpu_time ~speed -> execute t ~now ~cpu_time ~speed)
    ()

(* Station mode: every server independently spends up to [dt] of wall time
   serving at [speed] work units per second, pulling the next waiting
   request whenever it frees mid-interval. *)
let step t ~now ~dt ~speed =
  if not (speed > 0.0) then invalid_arg "Open_loop.step: speed must be positive";
  let now_s = Sim_time.to_sec now in
  sync_arrivals t ~now_s;
  let dt_sec = Sim_time.to_sec dt in
  for k = 0 to t.servers - 1 do
    let budget = ref dt_sec in
    let continue = ref true in
    while !continue do
      match t.in_service.(k) with
      | None ->
          if Queue.is_empty t.queue then continue := false
          else t.in_service.(k) <- Some (Queue.pop t.queue)
      | Some req ->
          let possible = !budget *. speed in
          if req.remaining <= possible then begin
            let spent = req.remaining /. speed in
            budget := !budget -. spent;
            t.busy <- t.busy +. spent;
            t.in_service.(k) <- None;
            complete t req ~finished:(now_s +. (dt_sec -. !budget))
          end
          else begin
            req.remaining <- req.remaining -. possible;
            t.busy <- t.busy +. !budget;
            budget := 0.0;
            continue := false
          end
    done
  done

let reset_stats t =
  t.arrivals <- 0;
  t.completed <- 0;
  t.busy <- 0.0;
  Stats.Running.reset t.sojourn;
  Stats.Running.reset t.seen;
  Vec.Floats.clear t.sojourn_log;
  Vec.Floats.clear t.seen_log

let servers t = t.servers
let arrivals t = t.arrivals
let completed_requests t = t.completed
let busy_time t = t.busy
let sojourn_times t = t.sojourn
let sojourn_samples t = Vec.Floats.to_array t.sojourn_log
let queue_seen t = t.seen
let queue_seen_samples t = Vec.Floats.to_array t.seen_log

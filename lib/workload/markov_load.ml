type t = {
  on_rate : float;
  off_rate : float;
  mean_on : float;
  mean_off : float;
  rng : Prng.t;
  mutable state : [ `On | `Off ];
  mutable next_flip : Sim_time.t;
  mutable transitions : int;
  mutable pending : float; (* queued absolute work *)
  mutable carry : float; (* sub-request accumulation *)
  mutable injected : float;
  mutable completed : float;
}

let create ?(seed = 7919) ~on_rate ~off_rate ~mean_on ~mean_off () =
  if on_rate < 0.0 || off_rate < 0.0 then invalid_arg "Markov_load.create: negative rate";
  if not (mean_on > 0.0 && mean_off > 0.0) then
    invalid_arg "Markov_load.create: sojourn means must be positive";
  let rng = Prng.create ~seed in
  let first_off = Prng.exponential rng ~rate:(1.0 /. mean_off) in
  {
    on_rate;
    off_rate;
    mean_on;
    mean_off;
    rng;
    state = `Off;
    next_flip = Sim_time.of_sec_f first_off;
    transitions = 0;
    pending = 0.0;
    carry = 0.0;
    injected = 0.0;
    completed = 0.0;
  }

let flip t =
  t.transitions <- t.transitions + 1;
  let mean = match t.state with `Off -> t.mean_on | `On -> t.mean_off in
  t.state <- (match t.state with `Off -> `On | `On -> `Off);
  let sojourn = Prng.exponential t.rng ~rate:(1.0 /. mean) in
  t.next_flip <- Sim_time.add t.next_flip (Sim_time.of_sec_f (Float.max 1e-6 sojourn))

let advance_state t ~now =
  while Sim_time.compare t.next_flip now <= 0 do
    flip t
  done

let rate t = match t.state with `On -> t.on_rate | `Off -> t.off_rate

let state_at t ~now =
  advance_state t ~now;
  t.state

let workload t ~request_work =
  if not (request_work > 0.0) then invalid_arg "Markov_load.workload: request_work";
  let advance ~now ~dt =
    advance_state t ~now;
    t.carry <- t.carry +. (rate t *. Sim_time.to_sec dt);
    if t.carry >= request_work then begin
      let n = Float.to_int (t.carry /. request_work) in
      let work = float_of_int n *. request_work in
      t.carry <- t.carry -. work;
      t.pending <- t.pending +. work;
      t.injected <- t.injected +. work
    end
  in
  let has_work () = t.pending > 0.0 in
  let execute ~now:_ ~cpu_time ~speed =
    let budget = Sim_time.to_sec cpu_time *. speed in
    let used_work = Float.min budget t.pending in
    t.pending <- t.pending -. used_work;
    t.completed <- t.completed +. used_work;
    Sim_time.min cpu_time (Sim_time.of_sec_f (used_work /. speed))
  in
  Workload.make ~name:"markov-load" ~advance ~has_work ~execute ()

let transitions t = t.transitions
let completed_work t = t.completed
let injected_work t = t.injected
let queued_work t = t.pending

(** The VM-scheduler plug-in interface.

    A scheduler is a record of closures so that Credit, SEDF, Credit2 and
    PAS can be swapped into the host without a functor ceremony.  The host
    calls, in order, on each dispatch tick: {!pick} (possibly several times
    as workloads drain), then {!charge} for the time actually consumed; and
    {!on_account_period} every accounting period (Xen: 30 ms).

    [set_effective_credit]/[effective_credit] expose the run-time credit a
    DVFS-aware policy manipulates (the paper's Listing 1.2 calls
    [setCredit]); schedulers without that notion may ignore it.

    [observe_window] lets a scheduler that embeds DVFS policy (PAS) receive
    processor-utilization samples: the host calls it every [window_period]
    with the busy fraction of the elapsed window. *)

(** Reusable set of domains, indexed by {!Domain.id}.  The host keeps one
    mask per instance and clears it at the top of every dispatch tick, so
    the pick loop passes exclusions without building a list. *)
module Mask : sig
  type t

  val create : unit -> t
  (** Fresh empty mask.  Grows on demand; no domain-count up front. *)

  val clear : t -> unit
  (** Remove every member (the per-tick reset). *)

  val add : t -> Domain.t -> unit
  val mem : t -> Domain.t -> bool

  val of_list : Domain.t list -> t
  (** Convenience for tests and one-off callers. *)
end

type slice = { domain : Domain.t; mutable max_slice : Sim_time.t }
(** A dispatch decision: run [domain] for at most [max_slice].  Schedulers
    may return the same slice record (and its [option] wrapper) from every
    [pick] call, mutating [max_slice] in place — callers must consume the
    decision before asking for the next one and must not retain it. *)

type t = {
  name : string;
  domains : unit -> Domain.t list;
  pick : now:Sim_time.t -> remaining:Sim_time.t -> exclude:Mask.t -> slice option;
      (** Choose whom to run for (part of) the current tick.  [exclude]
          holds domains that already declined CPU this tick; the scheduler
          must not return them, and must never return a zero-length slice. *)
  charge : domain:Domain.t -> now:Sim_time.t -> used:Sim_time.t -> unit;
  on_account_period : now:Sim_time.t -> unit;
  set_effective_credit : Domain.t -> float -> unit;
  effective_credit : Domain.t -> float;
  observe_window : (now:Sim_time.t -> busy_fraction:float -> unit) option;
  window_period : Sim_time.t;
}

val make :
  name:string ->
  domains:(unit -> Domain.t list) ->
  pick:(now:Sim_time.t -> remaining:Sim_time.t -> exclude:Mask.t -> slice option) ->
  charge:(domain:Domain.t -> now:Sim_time.t -> used:Sim_time.t -> unit) ->
  ?on_account_period:(now:Sim_time.t -> unit) ->
  ?set_effective_credit:(Domain.t -> float -> unit) ->
  ?effective_credit:(Domain.t -> float) ->
  ?observe_window:(now:Sim_time.t -> busy_fraction:float -> unit) ->
  ?window_period:Sim_time.t ->
  unit ->
  t
(** Defaults: account period and credit setters are no-ops,
    [effective_credit] falls back to the domain's initial credit, no window
    observation, [window_period] 100 ms. *)

val excluded : Domain.t -> Mask.t -> bool
(** Membership helper for implementing [pick]; same as {!Mask.mem} with the
    arguments flipped. *)

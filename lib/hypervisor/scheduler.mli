(** The VM-scheduler plug-in interface.

    A scheduler is a record of closures so that Credit, SEDF, Credit2 and
    PAS can be swapped into the host without a functor ceremony.  The host
    calls, in order, on each dispatch tick: {!pick} (possibly several times
    as workloads drain), then {!charge} for the time actually consumed; and
    {!on_account_period} every accounting period (Xen: 30 ms).

    [set_effective_credit]/[effective_credit] expose the run-time credit a
    DVFS-aware policy manipulates (the paper's Listing 1.2 calls
    [setCredit]); schedulers without that notion may ignore it.

    [observe_window] lets a scheduler that embeds DVFS policy (PAS) receive
    processor-utilization samples: the host calls it every [window_period]
    with the busy fraction of the elapsed window. *)

type slice = { domain : Domain.t; max_slice : Sim_time.t }
(** A dispatch decision: run [domain] for at most [max_slice]. *)

type t = {
  name : string;
  domains : unit -> Domain.t list;
  pick : now:Sim_time.t -> remaining:Sim_time.t -> exclude:Domain.t list -> slice option;
      (** Choose whom to run for (part of) the current tick.  [exclude]
          lists domains that already declined CPU this tick; the scheduler
          must not return them, and must never return a zero-length slice. *)
  charge : domain:Domain.t -> now:Sim_time.t -> used:Sim_time.t -> unit;
  on_account_period : now:Sim_time.t -> unit;
  set_effective_credit : Domain.t -> float -> unit;
  effective_credit : Domain.t -> float;
  observe_window : (now:Sim_time.t -> busy_fraction:float -> unit) option;
  window_period : Sim_time.t;
}

val make :
  name:string ->
  domains:(unit -> Domain.t list) ->
  pick:(now:Sim_time.t -> remaining:Sim_time.t -> exclude:Domain.t list -> slice option) ->
  charge:(domain:Domain.t -> now:Sim_time.t -> used:Sim_time.t -> unit) ->
  ?on_account_period:(now:Sim_time.t -> unit) ->
  ?set_effective_credit:(Domain.t -> float -> unit) ->
  ?effective_credit:(Domain.t -> float) ->
  ?observe_window:(now:Sim_time.t -> busy_fraction:float -> unit) ->
  ?window_period:Sim_time.t ->
  unit ->
  t
(** Defaults: account period and credit setters are no-ops,
    [effective_credit] falls back to the domain's initial credit, no window
    observation, [window_period] 100 ms. *)

val excluded : Domain.t -> Domain.t list -> bool
(** Membership helper for implementing [pick]. *)

module Smp = Cpu_model.Smp
module Frequency = Cpu_model.Frequency
module Calibration = Cpu_model.Calibration

type dvfs_policy = {
  policy_name : string;
  period : Sim_time.t;
  decide : now:Sim_time.t -> domain:int -> core_utils:float array -> unit;
}

let lowest_sufficient smp ~absolute_load ~threshold =
  let table = Smp.freq_table smp in
  let cal = (Smp.arch smp).Cpu_model.Arch.calibration in
  let levels = Frequency.levels table in
  let chosen = ref (Frequency.max_freq table) in
  (try
     Array.iter
       (fun f ->
         if Calibration.effective_speed cal table f *. threshold >= absolute_load then begin
           chosen := f;
           raise Exit
         end)
       levels
   with Exit -> ());
  !chosen

let ondemand_max_core ?(up_threshold = 0.8) smp ~period =
  let table = Smp.freq_table smp in
  let cal = (Smp.arch smp).Cpu_model.Arch.calibration in
  let decide ~now ~domain ~core_utils =
    let busiest = Array.fold_left Float.max 0.0 core_utils in
    let freq = Smp.current_freq smp ~domain in
    let target =
      if busiest >= up_threshold then Frequency.max_freq table
      else begin
        let speed = Calibration.effective_speed cal table freq in
        lowest_sufficient smp ~absolute_load:(busiest *. speed) ~threshold:up_threshold
      end
    in
    Smp.set_freq smp ~now ~domain target
  in
  { policy_name = "ondemand-max-core"; period; decide }

let performance_policy smp =
  let table = Smp.freq_table smp in
  {
    policy_name = "performance";
    period = Sim_time.of_sec 1;
    decide =
      (fun ~now ~domain ~core_utils:_ ->
        Smp.set_freq smp ~now ~domain (Frequency.max_freq table));
  }

type domain_state = {
  domain : Domain.t;
  mutable work : float; (* absolute work delivered *)
  mutable tick_used : Sim_time.t; (* CPU time consumed this tick *)
  load : Series.t;
  absolute : Series.t;
  mutable last_cpu_time : Sim_time.t;
  mutable last_work : float;
}

type t = {
  sim : Simulator.t;
  smp : Smp.t;
  scheduler : Scheduler.t;
  quantum : Sim_time.t;
  sample_period : Sim_time.t;
  doms : domain_state array;
  core_busy : Sim_time.t array;
  freq_series : Series.t array; (* one per DVFS domain *)
}

let sim t = t.sim
let smp t = t.smp
let scheduler t = t.scheduler
let domains t = Array.to_list (Array.map (fun st -> st.domain) t.doms)
let now t = Simulator.now t.sim

let state t d =
  match Array.find_opt (fun st -> Domain.equal st.domain d) t.doms with
  | Some st -> st
  | None -> raise Not_found

(* One dispatch tick over all cores.  Each domain may consume at most
   [vcpus * quantum] CPU time per tick (its parallelism bound). *)
let dispatch_tick t () =
  let current = now t in
  let quantum = t.quantum in
  Array.iter
    (fun st ->
      st.tick_used <- Sim_time.zero;
      Workloads.Workload.advance (Domain.workload st.domain) ~now:current ~dt:quantum)
    t.doms;
  let drained = ref [] in
  let parallelism_cap st =
    Sim_time.of_us (Domain.vcpus st.domain * Sim_time.to_us quantum)
  in
  for core = 0 to Smp.cores t.smp - 1 do
    let speed = Smp.speed_of_core t.smp core in
    let remaining = ref quantum in
    let continue = ref true in
    while !continue && Sim_time.compare !remaining Sim_time.zero > 0 do
      let exclude =
        !drained
        @ (Array.to_list t.doms
          |> List.filter_map (fun st ->
                 if Sim_time.compare st.tick_used (parallelism_cap st) >= 0 then
                   Some st.domain
                 else None))
      in
      match t.scheduler.Scheduler.pick ~now:current ~remaining:!remaining ~exclude with
      | None -> continue := false
      | Some { Scheduler.domain; max_slice } ->
          let st = state t domain in
          let headroom = Sim_time.sub (parallelism_cap st) st.tick_used in
          let offered = Sim_time.min (Sim_time.min max_slice !remaining) headroom in
          if Sim_time.equal offered Sim_time.zero then drained := domain :: !drained
          else begin
            let used =
              Workloads.Workload.execute (Domain.workload domain) ~now:current
                ~cpu_time:offered ~speed
            in
            if Sim_time.compare used Sim_time.zero > 0 then begin
              t.scheduler.Scheduler.charge ~domain ~now:current ~used;
              Domain.charge domain used;
              st.tick_used <- Sim_time.add st.tick_used used;
              st.work <- st.work +. (Sim_time.to_sec used *. speed);
              t.core_busy.(core) <- Sim_time.add t.core_busy.(core) used;
              remaining := Sim_time.sub !remaining used
            end;
            if Sim_time.compare used offered < 0 then drained := domain :: !drained
          end
    done
  done

let sample t () =
  let current = now t in
  let dt = Sim_time.to_sec t.sample_period in
  let host_time = dt *. float_of_int (Smp.cores t.smp) in
  Array.iter
    (fun st ->
      let used = Sim_time.diff (Domain.cpu_time st.domain) st.last_cpu_time in
      st.last_cpu_time <- Domain.cpu_time st.domain;
      let work_done = st.work -. st.last_work in
      st.last_work <- st.work;
      Series.add st.load current (Sim_time.to_sec used /. host_time *. 100.0);
      Series.add st.absolute current (work_done /. host_time *. 100.0))
    t.doms;
  Array.iteri
    (fun domain series ->
      Series.add series current (float_of_int (Smp.current_freq t.smp ~domain)))
    t.freq_series

let create ?(quantum = Sim_time.of_ms 1) ?(account_period = Sim_time.of_ms 30)
    ?(sample_period = Sim_time.of_sec 1) ~sim ~smp ~scheduler ?dvfs () =
  let doms =
    Array.of_list
      (List.map
         (fun d ->
           {
             domain = d;
             work = 0.0;
             tick_used = Sim_time.zero;
             load = Series.create ~name:(Domain.name d ^ ".load");
             absolute = Series.create ~name:(Domain.name d ^ ".absolute");
             last_cpu_time = Domain.cpu_time d;
             last_work = 0.0;
           })
         (scheduler.Scheduler.domains ()))
  in
  let t =
    {
      sim;
      smp;
      scheduler;
      quantum;
      sample_period;
      doms;
      core_busy = Array.make (Smp.cores smp) Sim_time.zero;
      freq_series =
        Array.init (Smp.domain_count smp) (fun i ->
            Series.create ~name:(Printf.sprintf "freq_domain%d" i));
    }
  in
  ignore (Simulator.every sim quantum (dispatch_tick t));
  ignore
    (Simulator.every sim account_period (fun () ->
         scheduler.Scheduler.on_account_period ~now:(now t)));
  ignore (Simulator.every sim sample_period (sample t));
  (* Energy accounting window: 10 ms granularity using window_busy deltas. *)
  let energy_period = Sim_time.of_ms 10 in
  let last_energy = Array.make (Smp.cores smp) Sim_time.zero in
  ignore
    (Simulator.every sim energy_period (fun () ->
         let utils =
           Array.mapi
             (fun c last ->
               let delta = Sim_time.diff t.core_busy.(c) last in
               last_energy.(c) <- t.core_busy.(c);
               Sim_time.to_sec delta /. Sim_time.to_sec energy_period)
             last_energy
         in
         Smp.record_power smp ~dt:energy_period ~core_utils:utils));
  (match dvfs with
  | Some policy ->
      let last = Array.make (Smp.cores smp) Sim_time.zero in
      ignore
        (Simulator.every sim policy.period (fun () ->
             let utils =
               Array.mapi
                 (fun c l ->
                   let delta = Sim_time.diff t.core_busy.(c) l in
                   last.(c) <- t.core_busy.(c);
                   Sim_time.to_sec delta /. Sim_time.to_sec policy.period)
                 last
             in
             for domain = 0 to Smp.domain_count smp - 1 do
               let members = Smp.cores_of_domain smp domain in
               let core_utils = Array.of_list (List.map (fun c -> utils.(c)) members) in
               policy.decide ~now:(now t) ~domain ~core_utils
             done))
  | None -> ());
  t

let run_for t duration = Simulator.run_until t.sim (Sim_time.add (now t) duration)
let core_busy t core = t.core_busy.(core)

let total_busy t =
  Array.fold_left (fun acc b -> Sim_time.add acc b) Sim_time.zero t.core_busy

let domain_work t d = (state t d).work
let series_domain_load t d = (state t d).load
let series_domain_absolute_load t d = (state t d).absolute

let series_domain_frequency t ~domain =
  if domain < 0 || domain >= Array.length t.freq_series then
    invalid_arg "Smp_host.series_domain_frequency: domain out of range";
  t.freq_series.(domain)

let energy_joules t = Smp.energy_joules t.smp
let mean_watts t = Smp.mean_watts t.smp

module Smp = Cpu_model.Smp
module Frequency = Cpu_model.Frequency
module Calibration = Cpu_model.Calibration

type dvfs_policy = {
  policy_name : string;
  period : Sim_time.t;
  decide : now:Sim_time.t -> domain:int -> core_utils:float array -> unit;
}

let lowest_sufficient smp ~absolute_load ~threshold =
  let table = Smp.freq_table smp in
  let cal = (Smp.arch smp).Cpu_model.Arch.calibration in
  let levels = Frequency.levels table in
  let chosen = ref (Frequency.max_freq table) in
  (try
     Array.iter
       (fun f ->
         if Calibration.effective_speed cal table f *. threshold >= absolute_load then begin
           chosen := f;
           raise Exit
         end)
       levels
   with Exit -> ());
  !chosen

let ondemand_max_core ?(up_threshold = 0.8) smp ~period =
  let table = Smp.freq_table smp in
  let cal = (Smp.arch smp).Cpu_model.Arch.calibration in
  let decide ~now ~domain ~core_utils =
    let busiest = Array.fold_left Float.max 0.0 core_utils in
    let freq = Smp.current_freq smp ~domain in
    let target =
      if busiest >= up_threshold then Frequency.max_freq table
      else begin
        let speed = Calibration.effective_speed cal table freq in
        lowest_sufficient smp ~absolute_load:(busiest *. speed) ~threshold:up_threshold
      end
    in
    Smp.set_freq smp ~now ~domain target
  in
  { policy_name = "ondemand-max-core"; period; decide }

let performance_policy smp =
  let table = Smp.freq_table smp in
  {
    policy_name = "performance";
    period = Sim_time.of_sec 1;
    decide =
      (fun ~now ~domain ~core_utils:_ ->
        Smp.set_freq smp ~now ~domain (Frequency.max_freq table));
  }

(* Per-domain work counters live in an all-float sub-record so the per-tick
   accumulation stores into a flat float block instead of boxing. *)
type work_acc = { mutable work : float; mutable last_work : float }

type domain_state = {
  domain : Domain.t;
  cap : Sim_time.t; (* vcpus * quantum: the parallelism bound per tick *)
  acc : work_acc;
  mutable tick_used : Sim_time.t; (* CPU time consumed this tick *)
  load : Series.t;
  absolute : Series.t;
  mutable last_cpu_time : Sim_time.t;
}

type t = {
  sim : Simulator.t;
  smp : Smp.t;
  scheduler : Scheduler.t;
  quantum : Sim_time.t;
  sample_period : Sim_time.t;
  doms : domain_state array;
  core_busy : Sim_time.t array;
  freq_series : Series.t array; (* one per DVFS domain *)
  exclude : Scheduler.Mask.t; (* scratch exclusion set reused every tick *)
  scratch : Series.cell; (* box-free sample hand-off, reused every sample *)
}

(* Local copy of [Sim_time.to_sec]'s expression ([to_us] is the identity on
   the int representation, so the result is bit-identical); keeps the float
   conversion in this unit instead of boxing at a cross-library call on
   every tick (dev builds compile with -opaque). *)
let[@inline always] sec_of time = float_of_int (Sim_time.to_us time) /. 1e6

let sim t = t.sim
let smp t = t.smp
let scheduler t = t.scheduler
let domains t = Array.to_list (Array.map (fun st -> st.domain) t.doms)
let now t = Simulator.now t.sim

let rec index_of doms d i =
  if i >= Array.length doms then raise Not_found
  else if Domain.equal doms.(i).domain d then i
  else index_of doms d (i + 1)

let state t d = t.doms.(index_of t.doms d 0)

(* The pick/execute/charge loop of one core's share of a dispatch tick.
   The exclusion mask is maintained incrementally: a domain is marked when
   it drains (consumes less than offered, or is offered nothing) and when
   it crosses its parallelism cap.  [tick_used] only grows within a tick,
   so this is equivalent to the cap scan the old list-building code ran
   before every pick — without allocating a fresh list per pick. *)
let rec core_loop t ~core ~current ~speed ~remaining =
  if Sim_time.compare remaining Sim_time.zero > 0 then
    match t.scheduler.Scheduler.pick ~now:current ~remaining ~exclude:t.exclude with
    | None -> ()
    | Some slice ->
        let domain = slice.Scheduler.domain in
        let st = t.doms.(index_of t.doms domain 0) in
        let headroom = Sim_time.sub st.cap st.tick_used in
        let offered =
          Sim_time.min (Sim_time.min slice.Scheduler.max_slice remaining) headroom
        in
        if Sim_time.equal offered Sim_time.zero then begin
          Scheduler.Mask.add t.exclude domain;
          core_loop t ~core ~current ~speed ~remaining
        end
        else begin
          let used =
            Workloads.Workload.execute (Domain.workload domain) ~now:current
              ~cpu_time:offered ~speed
          in
          if Sim_time.compare used offered < 0 then Scheduler.Mask.add t.exclude domain;
          if Sim_time.compare used Sim_time.zero > 0 then begin
            t.scheduler.Scheduler.charge ~domain ~now:current ~used;
            Domain.charge domain used;
            st.tick_used <- Sim_time.add st.tick_used used;
            if Sim_time.compare st.tick_used st.cap >= 0 then
              Scheduler.Mask.add t.exclude domain;
            st.acc.work <- st.acc.work +. (sec_of used *. speed);
            t.core_busy.(core) <- Sim_time.add t.core_busy.(core) used;
            core_loop t ~core ~current ~speed ~remaining:(Sim_time.sub remaining used)
          end
          else core_loop t ~core ~current ~speed ~remaining
        end

(* One dispatch tick over all cores.  Each domain may consume at most
   [vcpus * quantum] CPU time per tick (its parallelism bound). *)
(* alloc: none *)
let dispatch_tick t () =
  let current = now t in
  let quantum = t.quantum in
  for i = 0 to Array.length t.doms - 1 do
    let st = t.doms.(i) in
    st.tick_used <- Sim_time.zero;
    Workloads.Workload.advance (Domain.workload st.domain) ~now:current ~dt:quantum
  done;
  Scheduler.Mask.clear t.exclude;
  for core = 0 to Smp.cores t.smp - 1 do
    (* [speed_of_core] hands back the frequency domain's cached boxed
       float, shared by every execute call on this core this tick. *)
    let speed = Smp.speed_of_core t.smp core in
    core_loop t ~core ~current ~speed ~remaining:quantum
  done

(* As in [Host.sample], freshly computed samples travel through the scratch
   cell so the sampling tick allocates nothing in steady state. *)
(* alloc: none *)
let sample t () =
  let current = now t in
  let dt = sec_of t.sample_period in
  let host_time = dt *. float_of_int (Smp.cores t.smp) in
  let cell = t.scratch in
  for i = 0 to Array.length t.doms - 1 do
    let st = t.doms.(i) in
    let used = Sim_time.diff (Domain.cpu_time st.domain) st.last_cpu_time in
    st.last_cpu_time <- Domain.cpu_time st.domain;
    let work_done = st.acc.work -. st.acc.last_work in
    st.acc.last_work <- st.acc.work;
    cell.Series.value <- sec_of used /. host_time *. 100.0;
    Series.add_cell st.load current cell;
    cell.Series.value <- work_done /. host_time *. 100.0;
    Series.add_cell st.absolute current cell
  done;
  for domain = 0 to Array.length t.freq_series - 1 do
    cell.Series.value <- float_of_int (Smp.current_freq t.smp ~domain);
    Series.add_cell t.freq_series.(domain) current cell
  done

let create ?(quantum = Sim_time.of_ms 1) ?(account_period = Sim_time.of_ms 30)
    ?(sample_period = Sim_time.of_sec 1) ~sim ~smp ~scheduler ?dvfs () =
  let doms =
    Array.of_list
      (List.map
         (fun d ->
           {
             domain = d;
             cap = Sim_time.of_us (Domain.vcpus d * Sim_time.to_us quantum);
             acc = { work = 0.0; last_work = 0.0 };
             tick_used = Sim_time.zero;
             load = Series.create ~name:(Domain.name d ^ ".load");
             absolute = Series.create ~name:(Domain.name d ^ ".absolute");
             last_cpu_time = Domain.cpu_time d;
           })
         (scheduler.Scheduler.domains ()))
  in
  let t =
    {
      sim;
      smp;
      scheduler;
      quantum;
      sample_period;
      doms;
      core_busy = Array.make (Smp.cores smp) Sim_time.zero;
      freq_series =
        Array.init (Smp.domain_count smp) (fun i ->
            Series.create ~name:(Printf.sprintf "freq_domain%d" i)); (* lint:ignore hot-path-printf: one-time series naming at creation *)
      exclude = Scheduler.Mask.create ();
      scratch = Series.cell ();
    }
  in
  ignore (Simulator.every sim quantum (dispatch_tick t));
  ignore
    (Simulator.every sim account_period (fun () ->
         scheduler.Scheduler.on_account_period ~now:(now t)));
  ignore (Simulator.every sim sample_period (sample t));
  (* Energy accounting window: 10 ms granularity using core_busy deltas.
     The cursor and utilization arrays are allocated once here and reused
     every window ([Smp.record_power] does not retain [core_utils]). *)
  let energy_period = Sim_time.of_ms 10 in
  let ncores = Smp.cores smp in
  let last_energy = Array.make ncores Sim_time.zero in
  let energy_utils = Array.make ncores 0.0 in
  ignore
    (Simulator.every sim energy_period (fun () ->
         for c = 0 to ncores - 1 do
           let delta = Sim_time.diff t.core_busy.(c) last_energy.(c) in
           last_energy.(c) <- t.core_busy.(c);
           energy_utils.(c) <- sec_of delta /. sec_of energy_period
         done;
         Smp.record_power smp ~dt:energy_period ~core_utils:energy_utils));
  (match dvfs with
  | Some policy ->
      let last = Array.make ncores Sim_time.zero in
      let window_utils = Array.make ncores 0.0 in
      (* Member core lists and the per-domain utilization buffers handed to
         [decide] are precomputed; [decide] must not retain [core_utils]
         across windows. *)
      let members =
        Array.init (Smp.domain_count smp) (fun d ->
            Array.of_list (Smp.cores_of_domain smp d))
      in
      let member_utils =
        Array.map (fun m -> Array.make (Array.length m) 0.0) members
      in
      ignore
        (Simulator.every sim policy.period (fun () ->
             for c = 0 to ncores - 1 do
               let delta = Sim_time.diff t.core_busy.(c) last.(c) in
               last.(c) <- t.core_busy.(c);
               window_utils.(c) <- sec_of delta /. sec_of policy.period
             done;
             for domain = 0 to Array.length members - 1 do
               let m = members.(domain) in
               let utils = member_utils.(domain) in
               for i = 0 to Array.length m - 1 do
                 utils.(i) <- window_utils.(m.(i))
               done;
               policy.decide ~now:(now t) ~domain ~core_utils:utils
             done))
  | None -> ());
  t

let run_for t duration = Simulator.run_until t.sim (Sim_time.add (now t) duration)
let core_busy t core = t.core_busy.(core)

let total_busy t =
  Array.fold_left (fun acc b -> Sim_time.add acc b) Sim_time.zero t.core_busy

let domain_work t d = (state t d).acc.work
let series_domain_load t d = (state t d).load
let series_domain_absolute_load t d = (state t d).absolute

let series_domain_frequency t ~domain =
  if domain < 0 || domain >= Array.length t.freq_series then
    invalid_arg "Smp_host.series_domain_frequency: domain out of range";
  t.freq_series.(domain)

let energy_joules t = Smp.energy_joules t.smp
let mean_watts t = Smp.mean_watts t.smp

module Internal = struct
  let dispatch_tick = dispatch_tick
  let sample = sample

  let reset_series t =
    Array.iter Series.reset t.freq_series;
    Array.iter
      (fun st ->
        Series.reset st.load;
        Series.reset st.absolute)
      t.doms
end

type slice = { domain : Domain.t; max_slice : Sim_time.t }

type t = {
  name : string;
  domains : unit -> Domain.t list;
  pick : now:Sim_time.t -> remaining:Sim_time.t -> exclude:Domain.t list -> slice option;
  charge : domain:Domain.t -> now:Sim_time.t -> used:Sim_time.t -> unit;
  on_account_period : now:Sim_time.t -> unit;
  set_effective_credit : Domain.t -> float -> unit;
  effective_credit : Domain.t -> float;
  observe_window : (now:Sim_time.t -> busy_fraction:float -> unit) option;
  window_period : Sim_time.t;
}

let make ~name ~domains ~pick ~charge ?(on_account_period = fun ~now:_ -> ())
    ?(set_effective_credit = fun _ _ -> ()) ?effective_credit ?observe_window
    ?(window_period = Sim_time.of_ms 100) () =
  let effective_credit =
    match effective_credit with Some f -> f | None -> Domain.initial_credit
  in
  {
    name;
    domains;
    pick;
    charge;
    on_account_period;
    set_effective_credit;
    effective_credit;
    observe_window;
    window_period;
  }

let excluded d exclude = List.exists (Domain.equal d) exclude

module Mask = struct
  (* One byte per domain id.  Domain ids are small sequential ints, so a
     Bytes buffer doubles as a dense set with O(1) membership and a
     [Bytes.fill] clear; the host reuses one mask for every dispatch tick,
     so the hot path never allocates. *)
  type t = { mutable bits : Bytes.t }

  let create () = { bits = Bytes.make 64 '\000' }

  (* The mask doubles O(log n) times as domain ids grow; the per-tick add
     pays only the length test. *)
  (* alloc: cold *)
  let[@inline never] grow t want =
    let cap = ref (Bytes.length t.bits) in
    while want >= !cap do
      cap := !cap * 2
    done;
    let bigger = Bytes.make !cap '\000' in
    Bytes.blit t.bits 0 bigger 0 (Bytes.length t.bits);
    t.bits <- bigger

  let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

  let add t d =
    let id = Domain.id d in
    if id >= Bytes.length t.bits then grow t id;
    Bytes.set t.bits id '\001'

  let mem t d =
    let id = Domain.id d in
    id < Bytes.length t.bits && Bytes.get t.bits id <> '\000'

  let of_list ds =
    let t = create () in
    List.iter (add t) ds;
    t
end

type slice = { domain : Domain.t; mutable max_slice : Sim_time.t }

type t = {
  name : string;
  domains : unit -> Domain.t list;
  pick : now:Sim_time.t -> remaining:Sim_time.t -> exclude:Mask.t -> slice option;
  charge : domain:Domain.t -> now:Sim_time.t -> used:Sim_time.t -> unit;
  on_account_period : now:Sim_time.t -> unit;
  set_effective_credit : Domain.t -> float -> unit;
  effective_credit : Domain.t -> float;
  observe_window : (now:Sim_time.t -> busy_fraction:float -> unit) option;
  window_period : Sim_time.t;
}

let make ~name ~domains ~pick ~charge ?(on_account_period = fun ~now:_ -> ())
    ?(set_effective_credit = fun _ _ -> ()) ?effective_credit ?observe_window
    ?(window_period = Sim_time.of_ms 100) () =
  let effective_credit =
    match effective_credit with Some f -> f | None -> Domain.initial_credit
  in
  {
    name;
    domains;
    pick;
    charge;
    on_account_period;
    set_effective_credit;
    effective_credit;
    observe_window;
    window_period;
  }

let excluded d exclude = Mask.mem exclude d

type t = {
  id : int;
  name : string;
  initial_credit : float;
  weight : int;
  is_dom0 : bool;
  vcpus : int;
  workload : Workloads.Workload.t;
  mutable cpu_time : Sim_time.t;
}

(* Domains are created from parallel experiment runs; ids must stay
   unique across worker domains, so the counter is atomic. *)
let next_id = Atomic.make 0

let create ?(weight = 256) ?(is_dom0 = false) ?(vcpus = 1) ~name ~credit_pct workload =
  if credit_pct < 0.0 || credit_pct > 100.0 then
    invalid_arg "Domain.create: credit out of [0, 100]";
  if weight <= 0 then invalid_arg "Domain.create: weight must be positive";
  if vcpus < 1 then invalid_arg "Domain.create: vcpus must be >= 1";
  {
    id = Atomic.fetch_and_add next_id 1 + 1;
    name;
    initial_credit = credit_pct;
    weight;
    is_dom0;
    vcpus;
    workload;
    cpu_time = Sim_time.zero;
  }

let id t = t.id
let name t = t.name
let initial_credit t = t.initial_credit
let uncapped t =
  t.initial_credit = 0.0 (* lint:ignore float-eq: credit 0 is the exact uncapped sentinel *)
let weight t = t.weight
let is_dom0 t = t.is_dom0
let vcpus t = t.vcpus
let workload t = t.workload
let runnable t = Workloads.Workload.has_work t.workload
let cpu_time t = t.cpu_time
let charge t used = t.cpu_time <- Sim_time.add t.cpu_time used
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let pp ppf t =
  Format.fprintf ppf "%s(id=%d credit=%.1f%%%s)" t.name t.id t.initial_credit
    (if t.is_dom0 then " dom0" else "")

(** A domain (virtual machine) as the hypervisor sees it.

    Each domain is created with a CPU credit — the percentage of the
    processor's capacity {e at maximum frequency} that its owner bought
    (§3.1: the credit corresponds to an SLA).  A credit of 0 means
    "uncapped": no guarantee, but the domain may soak up otherwise-unused
    slices (the Xen Credit scheduler's null-credit special case).

    The domain's workload is opaque to the hypervisor (two-level
    scheduling): the hypervisor only asks whether the domain would run and
    offers it CPU time. *)

type t

val create :
  ?weight:int ->
  ?is_dom0:bool ->
  ?vcpus:int ->
  name:string ->
  credit_pct:float ->
  Workloads.Workload.t ->
  t
(** Default weight 256 (Xen's default), [is_dom0] false, one vCPU.
    [vcpus] bounds the domain's parallelism on an SMP host (a single-host
    run ignores it).
    @raise Invalid_argument if the credit is outside \[0, 100\], the
    weight is not positive, or [vcpus < 1]. *)

val id : t -> int
(** Unique across the program run. *)

val name : t -> string

val initial_credit : t -> float
(** The credit the domain was created with — the paper's [C_init], never
    modified afterwards. *)

val uncapped : t -> bool
(** True when the initial credit is 0. *)

val weight : t -> int
val is_dom0 : t -> bool

val vcpus : t -> int
(** Number of virtual CPUs; caps how many physical cores may run this
    domain simultaneously. *)

val workload : t -> Workloads.Workload.t

val runnable : t -> bool
(** The domain has work it would execute if scheduled now. *)

val cpu_time : t -> Sim_time.t
(** Cumulative CPU time granted by the hypervisor. *)

val charge : t -> Sim_time.t -> unit

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

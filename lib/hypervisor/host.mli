(** A physical host: one processor, a set of domains, a VM scheduler and
    (optionally) a DVFS governor, driven by the discrete-event simulator.

    On every dispatch tick (default 1 ms) the host advances all workloads,
    then repeatedly asks the scheduler whom to run until the tick is spent
    or nobody runnable remains.  Every accounting period (Xen: 30 ms) the
    scheduler refreshes its credit state.  Utilization windows are delivered
    to the governor and/or the scheduler's own DVFS observer (PAS).

    Metrics follow the paper's §4 definitions:
    - {e VM global load} — the domain's contribution to processor load
      (busy fraction of wall time);
    - {e Global load} — their sum;
    - {e Absolute load} — [Global load * ratio * cf], the load the same
      work would represent at maximum frequency. *)

type config = {
  quantum : Sim_time.t;  (** dispatch tick, default 1 ms *)
  account_period : Sim_time.t;  (** credit accounting, default 30 ms *)
  sample_period : Sim_time.t;  (** metric sampling, default 1 s *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?trace:Trace.t ->
  sim:Simulator.t ->
  processor:Cpu_model.Processor.t ->
  scheduler:Scheduler.t ->
  ?governor:Governors.Governor.t ->
  unit ->
  t
(** Builds the host and arms its periodic events on [sim].  The simulation
    starts when the caller runs [sim]. *)

val sim : t -> Simulator.t
val processor : t -> Cpu_model.Processor.t
val scheduler : t -> Scheduler.t
val config : t -> config
val domains : t -> Domain.t list

val run_for : t -> Sim_time.t -> unit
(** Advances the simulation by the given duration. *)

val stop : t -> unit
(** Cancels the host's periodic events; the host stops dispatching and
    sampling.  Used when a cluster manager decommissions or rebuilds a
    node mid-simulation. *)

val now : t -> Sim_time.t

val total_busy : t -> Sim_time.t
(** Cumulative busy CPU time since the start. *)

val utilization_probe : t -> unit -> float
(** [utilization_probe host] returns a fresh probe: each call to the probe
    yields the busy fraction of the wall time elapsed since the probe's
    previous call (1.0 on the very first call of an always-busy host).
    Used by user-level PAS daemons and governors alike. *)

(** {1 Recorded series}

    Sampled every [sample_period]; loads are percentages. *)

val series_frequency : t -> Series.t
val series_global_load : t -> Series.t
val series_absolute_load : t -> Series.t

val series_domain_load : t -> Domain.t -> Series.t
(** The domain's VM global load.  @raise Not_found for a foreign domain. *)

val series_domain_absolute_load : t -> Domain.t -> Series.t
(** The domain's contribution converted to absolute load. *)

val frame : t -> Series.Frame.t
(** All series of this host bundled for CSV export. *)

val energy_joules : t -> float
val mean_watts : t -> float

(** {1 Microbenchmark hooks}

    Direct entry points to the host's periodic actions, so [bench/micro]
    can drive one dispatch or sample tick in isolation (outside the event
    queue) and measure its time and allocation.  Not for simulation logic:
    the simulator fires these through the handles armed by {!create}. *)
module Internal : sig
  val dispatch_tick : t -> unit -> unit
  (** One dispatch tick at the current simulated time. *)

  val sample : t -> unit -> unit
  (** One metric-sampling tick at the current simulated time. *)

  val reset_series : t -> unit
  (** Drops all recorded samples but keeps their storage ({!Series.reset}),
      so a benchmark can sample in a loop without unbounded growth and
      measure the steady state of the sampling path. *)
end

(** A multi-core host (§7 perspective: multi-core and per-core/per-socket
    DVFS).

    The dispatch model generalises {!Host}: on every tick each core is
    offered to the scheduler in turn; a domain may occupy at most
    [Domain.vcpus] cores' worth of CPU time per tick, and quotas are
    percentages of the {e whole} host (pass the core count as the
    scheduler's [host_capacity]).

    DVFS is driven per frequency domain by a {!dvfs_policy} callback, fed
    the per-core busy fractions of every window — enough to express the
    Linux multi-core ondemand rule ("the domain's load is the {e maximum}
    over its cores"), which is what makes a work-conserving scheduler on a
    per-package part immune to Scenario 1 (one saturated core keeps the
    whole package fast, Table 2's variable-credit column). *)

type dvfs_policy = {
  policy_name : string;
  period : Sim_time.t;
  decide : now:Sim_time.t -> domain:int -> core_utils:float array -> unit;
      (** Called once per window per frequency domain; [core_utils] holds
          the busy fraction of each core {e of that domain}. *)
}

val ondemand_max_core :
  ?up_threshold:float -> Cpu_model.Smp.t -> period:Sim_time.t -> dvfs_policy
(** The Linux rule: take the busiest core of the domain, convert to an
    absolute load, pick the lowest sufficient frequency (jump to maximum
    above the threshold, default 0.8). *)

val performance_policy : Cpu_model.Smp.t -> dvfs_policy
(** Pins every domain at maximum frequency. *)

type t

val create :
  ?quantum:Sim_time.t ->
  ?account_period:Sim_time.t ->
  ?sample_period:Sim_time.t ->
  sim:Simulator.t ->
  smp:Cpu_model.Smp.t ->
  scheduler:Scheduler.t ->
  ?dvfs:dvfs_policy ->
  unit ->
  t
(** Defaults match {!Host.default_config}. *)

val sim : t -> Simulator.t
val smp : t -> Cpu_model.Smp.t
val scheduler : t -> Scheduler.t
val domains : t -> Domain.t list
val now : t -> Sim_time.t
val run_for : t -> Sim_time.t -> unit

val core_busy : t -> int -> Sim_time.t
(** Cumulative busy time of one core. *)

val total_busy : t -> Sim_time.t

val domain_work : t -> Domain.t -> float
(** Absolute work delivered to the domain so far (CPU time weighted by the
    speed of the core it ran on). *)

val series_domain_load : t -> Domain.t -> Series.t
(** Percent of the whole host's {e time} (all cores) consumed. *)

val series_domain_absolute_load : t -> Domain.t -> Series.t
(** Percent of the host's {e maximum capacity} actually delivered —
    frequency-weighted, the SMP generalisation of the paper's absolute
    load. *)

val series_domain_frequency : t -> domain:int -> Series.t
(** Frequency of one DVFS domain over time.
    @raise Invalid_argument on an out-of-range domain. *)

val energy_joules : t -> float
val mean_watts : t -> float

(** {1 Microbenchmark hooks}

    SMP analogue of {!Host.Internal}: direct entry points to the periodic
    actions so [bench/micro] can measure one tick in isolation. *)
module Internal : sig
  val dispatch_tick : t -> unit -> unit
  (** One multi-core dispatch tick at the current simulated time. *)

  val sample : t -> unit -> unit
  (** One metric-sampling tick at the current simulated time. *)

  val reset_series : t -> unit
  (** Drops all recorded samples but keeps their storage
      ({!Series.reset}). *)
end

module Processor = Cpu_model.Processor

let inv_tick_util =
  Analysis.Invariant.register "host.tick-utilization"
    ~doc:"the busy share of every dispatch tick falls in [0, 1]"

type config = {
  quantum : Sim_time.t;
  account_period : Sim_time.t;
  sample_period : Sim_time.t;
}

let default_config =
  {
    quantum = Sim_time.of_ms 1;
    account_period = Sim_time.of_ms 30;
    sample_period = Sim_time.of_sec 1;
  }

type domain_metrics = {
  domain : Domain.t;
  load : Series.t;
  absolute : Series.t;
  mutable last_cpu_time : Sim_time.t;
}

type t = {
  sim : Simulator.t;
  processor : Processor.t;
  scheduler : Scheduler.t;
  config : config;
  trace : Trace.t option;
  mutable handles : Simulator.handle list;
  mutable total_busy : Sim_time.t;
  freq_series : Series.t;
  global_series : Series.t;
  absolute_series : Series.t;
  domain_metrics : domain_metrics array;
  doms : Domain.t array; (* the scheduler's domain set, cached at creation *)
  exclude : Scheduler.Mask.t; (* scratch exclusion set reused every tick *)
  scratch : Series.cell; (* box-free sample hand-off, reused every sample *)
  mutable probe_last_busy : Sim_time.t; (* shared window/governor probe state *)
  mutable probe_last_time : Sim_time.t;
}

let sim t = t.sim
let processor t = t.processor
let scheduler t = t.scheduler
let config t = t.config
let domains t = t.scheduler.Scheduler.domains ()
let now t = Simulator.now t.sim
let total_busy t = t.total_busy

(* Local copy of [Sim_time.to_sec]'s expression ([to_us] is the identity on
   the int representation, so the result is bit-identical).  The
   cross-library call would return a freshly boxed float on every tick when
   cross-module inlining is off (dev builds compile with -opaque). *)
let[@inline always] sec_of time = float_of_int (Sim_time.to_us time) /. 1e6

let utilization_probe t =
  let last_busy = ref t.total_busy and last_time = ref (now t) in
  fun () ->
    let busy = Sim_time.diff t.total_busy !last_busy in
    let elapsed = Sim_time.diff (now t) !last_time in
    last_busy := t.total_busy;
    last_time := now t;
    if Sim_time.equal elapsed Sim_time.zero then 0.0
    else sec_of busy /. sec_of elapsed

(* The built-in window/governor probe: same sampling rule as
   {!utilization_probe}, but the cursor lives in the host record, so arming
   the periodic observers allocates no ref cells and the per-window call
   touches no closure environment. *)
let probe_window t =
  let busy = Sim_time.diff t.total_busy t.probe_last_busy in
  let elapsed = Sim_time.diff (now t) t.probe_last_time in
  t.probe_last_busy <- t.total_busy;
  t.probe_last_time <- now t;
  if Sim_time.equal elapsed Sim_time.zero then 0.0
  else sec_of busy /. sec_of elapsed

(* The pick/execute/charge loop of one dispatch tick, written as a
   module-level tail recursion over immediate ints so the per-tick hot path
   allocates nothing: the scheduler returns a reused slice cell, exclusions
   go through the scratch mask, and [speed] is the processor's cached boxed
   float passed by pointer. *)
let rec tick_loop t ~current ~speed ~remaining ~busy =
  if Sim_time.compare remaining Sim_time.zero <= 0 then busy
  else
    match t.scheduler.Scheduler.pick ~now:current ~remaining ~exclude:t.exclude with
    | None -> busy
    | Some slice ->
        let domain = slice.Scheduler.domain in
        let offered = Sim_time.min slice.Scheduler.max_slice remaining in
        if Sim_time.equal offered Sim_time.zero then begin
          Scheduler.Mask.add t.exclude domain;
          tick_loop t ~current ~speed ~remaining ~busy
        end
        else begin
          let used =
            Workloads.Workload.execute (Domain.workload domain) ~now:current
              ~cpu_time:offered ~speed
          in
          (* A domain that consumes less than it is offered has drained its
             demand and sits out the rest of the tick (also the safety net
             against zero-length-progress livelock). *)
          if Sim_time.compare used offered < 0 then Scheduler.Mask.add t.exclude domain;
          if Sim_time.compare used Sim_time.zero > 0 then begin
            t.scheduler.Scheduler.charge ~domain ~now:current ~used;
            Domain.charge domain used;
            tick_loop t ~current ~speed
              ~remaining:(Sim_time.sub remaining used)
              ~busy:(Sim_time.add busy used)
          end
          else tick_loop t ~current ~speed ~remaining ~busy
        end

(* Off-by-default sanitizer: the enabled check stays in the caller, so the
   tick pays one branch when sanitizers are off. *)
(* alloc: cold *)
let[@inline never] check_tick_util ~current ~util =
  if Float.is_finite util && util >= 0.0 && util <= 1.0 then
    Analysis.Check.pass inv_tick_util
  else
    Analysis.Check.fail inv_tick_util ~time_s:(Sim_time.to_sec current) ~component:"host"
      (Printf.sprintf "tick utilization = %.9g outside [0, 1]" util) (* lint:ignore hot-path-printf: cold sanitizer failure message *)

(* One dispatch tick: advance workloads, then hand out the tick to domains
   as the scheduler directs. *)
(* alloc: none *)
let dispatch_tick t () =
  let current = now t in
  let quantum = t.config.quantum in
  let speed = Processor.speed t.processor in
  for i = 0 to Array.length t.doms - 1 do
    Workloads.Workload.advance (Domain.workload t.doms.(i)) ~now:current ~dt:quantum
  done;
  Scheduler.Mask.clear t.exclude;
  let busy = tick_loop t ~current ~speed ~remaining:quantum ~busy:Sim_time.zero in
  t.total_busy <- Sim_time.add t.total_busy busy;
  if Analysis.Config.enabled () then
    check_tick_util ~current ~util:(sec_of busy /. sec_of quantum);
  Processor.record_busy t.processor ~dt:quantum ~busy

(* Trace runs are observability runs, not perf runs; the [match t.trace]
   dispatch stays in the caller. *)
(* alloc: cold *)
let[@inline never] trace_freq_change t tr ~current ~freq =
  let n = Series.length t.freq_series in
  if n > 0 then begin
    let prev = Series.nth_value t.freq_series (n - 1) in
    if int_of_float prev <> freq then
      Trace.recordf tr ~time:current ~source:"dvfs" "frequency %d -> %d MHz"
        (int_of_float prev) freq
  end

(* Samples travel through the host's scratch cell ({!Series.add_cell}):
   each freshly computed float is stored into the flat cell and copied into
   the series' float vector without ever being a call argument, so the
   sampling tick allocates nothing in steady state. *)
(* alloc: none *)
let sample t () =
  let current = now t in
  let dt = sec_of t.config.sample_period in
  let ratio = Processor.ratio t.processor and cf = Processor.cf t.processor in
  let cell = t.scratch in
  let global = ref 0.0 in
  for i = 0 to Array.length t.domain_metrics - 1 do
    let m = t.domain_metrics.(i) in
    let used = Sim_time.diff (Domain.cpu_time m.domain) m.last_cpu_time in
    m.last_cpu_time <- Domain.cpu_time m.domain;
    let load_pct = sec_of used /. dt *. 100.0 in
    global := !global +. load_pct;
    cell.Series.value <- load_pct;
    Series.add_cell m.load current cell;
    cell.Series.value <- load_pct *. ratio *. cf;
    Series.add_cell m.absolute current cell
  done;
  let freq = Processor.current_freq t.processor in
  (match t.trace with
  | Some tr -> trace_freq_change t tr ~current ~freq
  | None -> ());
  cell.Series.value <- float_of_int freq;
  Series.add_cell t.freq_series current cell;
  cell.Series.value <- !global;
  Series.add_cell t.global_series current cell;
  cell.Series.value <- !global *. ratio *. cf;
  Series.add_cell t.absolute_series current cell

let create ?(config = default_config) ?trace ~sim ~processor ~scheduler ?governor () =
  let doms = Array.of_list (scheduler.Scheduler.domains ()) in
  let domain_metrics =
    Array.map
      (fun d ->
        {
          domain = d;
          load = Series.create ~name:(Domain.name d ^ ".load");
          absolute = Series.create ~name:(Domain.name d ^ ".absolute");
          last_cpu_time = Domain.cpu_time d;
        })
      doms
  in
  let t =
    {
      sim;
      processor;
      scheduler;
      config;
      trace;
      handles = [];
      total_busy = Sim_time.zero;
      freq_series = Series.create ~name:"freq_mhz";
      global_series = Series.create ~name:"global_load";
      absolute_series = Series.create ~name:"absolute_load";
      domain_metrics;
      doms;
      exclude = Scheduler.Mask.create ();
      scratch = Series.cell ();
      probe_last_busy = Sim_time.zero;
      probe_last_time = Simulator.now sim;
    }
  in
  let arm handle = t.handles <- handle :: t.handles in
  arm (Simulator.every sim config.quantum (dispatch_tick t));
  arm
    (Simulator.every sim config.account_period (fun () ->
         scheduler.Scheduler.on_account_period ~now:(now t)));
  arm (Simulator.every sim config.sample_period (sample t));
  (match scheduler.Scheduler.observe_window with
  | Some observe ->
      arm
        (Simulator.every sim scheduler.Scheduler.window_period (fun () ->
             observe ~now:(now t) ~busy_fraction:(probe_window t)))
  | None -> ());
  (match governor with
  | Some gov ->
      arm
        (Simulator.every sim gov.Governors.Governor.period (fun () ->
             gov.Governors.Governor.observe ~now:(now t) ~busy_fraction:(probe_window t)))
  | None -> ());
  (match trace with
  | Some tr ->
      Trace.recordf tr ~time:(Simulator.now sim) ~source:"host" "host created (%s)"
        scheduler.Scheduler.name
  | None -> ());
  t

let run_for t duration = Simulator.run_until t.sim (Sim_time.add (now t) duration)

let stop t =
  List.iter (Simulator.cancel t.sim) t.handles;
  t.handles <- []

let series_frequency t = t.freq_series
let series_global_load t = t.global_series
let series_absolute_load t = t.absolute_series

let rec metrics_index metrics d i =
  if i >= Array.length metrics then raise Not_found
  else if Domain.equal metrics.(i).domain d then i
  else metrics_index metrics d (i + 1)

let metrics_for t d = t.domain_metrics.(metrics_index t.domain_metrics d 0)
let series_domain_load t d = (metrics_for t d).load
let series_domain_absolute_load t d = (metrics_for t d).absolute

let frame t =
  let frame = Series.Frame.create () in
  Series.Frame.add_series frame t.freq_series;
  Array.iter
    (fun m ->
      Series.Frame.add_series frame m.load;
      Series.Frame.add_series frame m.absolute)
    t.domain_metrics;
  Series.Frame.add_series frame t.global_series;
  Series.Frame.add_series frame t.absolute_series;
  frame

let energy_joules t = Processor.energy_joules t.processor
let mean_watts t = Processor.mean_watts t.processor

module Internal = struct
  let dispatch_tick = dispatch_tick
  let sample = sample

  let reset_series t =
    Series.reset t.freq_series;
    Series.reset t.global_series;
    Series.reset t.absolute_series;
    Array.iter
      (fun m ->
        Series.reset m.load;
        Series.reset m.absolute)
      t.domain_metrics
end

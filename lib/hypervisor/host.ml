module Processor = Cpu_model.Processor

let inv_tick_util =
  Analysis.Invariant.register "host.tick-utilization"
    ~doc:"the busy share of every dispatch tick falls in [0, 1]"

type config = {
  quantum : Sim_time.t;
  account_period : Sim_time.t;
  sample_period : Sim_time.t;
}

let default_config =
  {
    quantum = Sim_time.of_ms 1;
    account_period = Sim_time.of_ms 30;
    sample_period = Sim_time.of_sec 1;
  }

type domain_metrics = {
  domain : Domain.t;
  load : Series.t;
  absolute : Series.t;
  mutable last_cpu_time : Sim_time.t;
}

type t = {
  sim : Simulator.t;
  processor : Processor.t;
  scheduler : Scheduler.t;
  config : config;
  trace : Trace.t option;
  mutable handles : Simulator.handle list;
  mutable total_busy : Sim_time.t;
  freq_series : Series.t;
  global_series : Series.t;
  absolute_series : Series.t;
  domain_metrics : domain_metrics list;
}

let sim t = t.sim
let processor t = t.processor
let scheduler t = t.scheduler
let config t = t.config
let domains t = t.scheduler.Scheduler.domains ()
let now t = Simulator.now t.sim
let total_busy t = t.total_busy

let utilization_probe t =
  let last_busy = ref t.total_busy and last_time = ref (now t) in
  fun () ->
    let busy = Sim_time.diff t.total_busy !last_busy in
    let elapsed = Sim_time.diff (now t) !last_time in
    last_busy := t.total_busy;
    last_time := now t;
    if Sim_time.equal elapsed Sim_time.zero then 0.0
    else Sim_time.to_sec busy /. Sim_time.to_sec elapsed

(* One dispatch tick: advance workloads, then hand out the tick to domains
   as the scheduler directs.  A domain that consumes less than it is offered
   has drained its demand and is excluded for the rest of the tick (also the
   safety net against zero-length-progress livelock). *)
let dispatch_tick t () =
  let current = now t in
  let quantum = t.config.quantum in
  let speed = Processor.speed t.processor in
  List.iter
    (fun d -> Workloads.Workload.advance (Domain.workload d) ~now:current ~dt:quantum)
    (domains t);
  let remaining = ref quantum in
  let busy = ref Sim_time.zero in
  let exclude = ref [] in
  let continue = ref true in
  while !continue && Sim_time.compare !remaining Sim_time.zero > 0 do
    match t.scheduler.Scheduler.pick ~now:current ~remaining:!remaining ~exclude:!exclude with
    | None -> continue := false
    | Some { Scheduler.domain; max_slice } ->
        let offered = Sim_time.min max_slice !remaining in
        if Sim_time.equal offered Sim_time.zero then exclude := domain :: !exclude
        else begin
          let used =
            Workloads.Workload.execute (Domain.workload domain) ~now:current
              ~cpu_time:offered ~speed
          in
          if Sim_time.compare used Sim_time.zero > 0 then begin
            t.scheduler.Scheduler.charge ~domain ~now:current ~used;
            Domain.charge domain used;
            busy := Sim_time.add !busy used;
            remaining := Sim_time.sub !remaining used
          end;
          if Sim_time.compare used offered < 0 then exclude := domain :: !exclude
        end
  done;
  t.total_busy <- Sim_time.add t.total_busy !busy;
  let util = Sim_time.to_sec !busy /. Sim_time.to_sec quantum in
  if Analysis.Config.enabled () then
    Analysis.Check.within inv_tick_util ~time_s:(Sim_time.to_sec current) ~component:"host"
      ~what:"tick utilization" ~lo:0.0 ~hi:1.0 util;
  Processor.record_power t.processor ~dt:quantum ~util

let sample t () =
  let current = now t in
  let dt = Sim_time.to_sec t.config.sample_period in
  let ratio = Processor.ratio t.processor and cf = Processor.cf t.processor in
  let global = ref 0.0 in
  List.iter
    (fun m ->
      let used = Sim_time.diff (Domain.cpu_time m.domain) m.last_cpu_time in
      m.last_cpu_time <- Domain.cpu_time m.domain;
      let load_pct = Sim_time.to_sec used /. dt *. 100.0 in
      global := !global +. load_pct;
      Series.add m.load current load_pct;
      Series.add m.absolute current (load_pct *. ratio *. cf))
    t.domain_metrics;
  let freq = Processor.current_freq t.processor in
  (match (t.trace, Series.last_value t.freq_series) with
  | Some tr, Some prev when int_of_float prev <> freq ->
      Trace.recordf tr ~time:current ~source:"dvfs" "frequency %d -> %d MHz"
        (int_of_float prev) freq
  | Some _, _ | None, _ -> ());
  Series.add t.freq_series current (float_of_int freq);
  Series.add t.global_series current !global;
  Series.add t.absolute_series current (!global *. ratio *. cf)

let create ?(config = default_config) ?trace ~sim ~processor ~scheduler ?governor () =
  let domain_metrics =
    List.map
      (fun d ->
        {
          domain = d;
          load = Series.create ~name:(Domain.name d ^ ".load");
          absolute = Series.create ~name:(Domain.name d ^ ".absolute");
          last_cpu_time = Domain.cpu_time d;
        })
      (scheduler.Scheduler.domains ())
  in
  let t =
    {
      sim;
      processor;
      scheduler;
      config;
      trace;
      handles = [];
      total_busy = Sim_time.zero;
      freq_series = Series.create ~name:"freq_mhz";
      global_series = Series.create ~name:"global_load";
      absolute_series = Series.create ~name:"absolute_load";
      domain_metrics;
    }
  in
  let arm handle = t.handles <- handle :: t.handles in
  arm (Simulator.every sim config.quantum (dispatch_tick t));
  arm
    (Simulator.every sim config.account_period (fun () ->
         scheduler.Scheduler.on_account_period ~now:(now t)));
  arm (Simulator.every sim config.sample_period (sample t));
  (match scheduler.Scheduler.observe_window with
  | Some observe ->
      let probe = utilization_probe t in
      arm
        (Simulator.every sim scheduler.Scheduler.window_period (fun () ->
             observe ~now:(now t) ~busy_fraction:(probe ())))
  | None -> ());
  (match governor with
  | Some gov ->
      let probe = utilization_probe t in
      arm
        (Simulator.every sim gov.Governors.Governor.period (fun () ->
             gov.Governors.Governor.observe ~now:(now t) ~busy_fraction:(probe ())))
  | None -> ());
  (match trace with
  | Some tr ->
      Trace.recordf tr ~time:(Simulator.now sim) ~source:"host" "host created (%s)"
        scheduler.Scheduler.name
  | None -> ());
  t

let run_for t duration = Simulator.run_until t.sim (Sim_time.add (now t) duration)

let stop t =
  List.iter (Simulator.cancel t.sim) t.handles;
  t.handles <- []

let series_frequency t = t.freq_series
let series_global_load t = t.global_series
let series_absolute_load t = t.absolute_series

let metrics_for t d =
  match List.find_opt (fun m -> Domain.equal m.domain d) t.domain_metrics with
  | Some m -> m
  | None -> raise Not_found

let series_domain_load t d = (metrics_for t d).load
let series_domain_absolute_load t d = (metrics_for t d).absolute

let frame t =
  let frame = Series.Frame.create () in
  Series.Frame.add_series frame t.freq_series;
  List.iter
    (fun m ->
      Series.Frame.add_series frame m.load;
      Series.Frame.add_series frame m.absolute)
    t.domain_metrics;
  Series.Frame.add_series frame t.global_series;
  Series.Frame.add_series frame t.absolute_series;
  frame

let energy_joules t = Processor.energy_joules t.processor
let mean_watts t = Processor.mean_watts t.processor

(** Registry of checkable invariants.

    An invariant is registered once (typically at module initialisation of
    the component that enforces it) and then exercised through
    {!Check.run}.  The registry keeps per-invariant counters so a run can
    report how often each property was actually evaluated — a check that
    was never exercised is as suspicious as one that failed.

    Registration is idempotent by name: registering an already-known name
    returns the existing entry (documentation is kept from the first
    registration), so two instances of the same component share one
    counter. *)

type t

val register : ?equation:string -> ?doc:string -> string -> t
(** [register name] adds [name] to the registry or returns the existing
    entry.  [equation] names the paper equation the invariant enforces
    (e.g. ["Eq. 4"]); [doc] is a one-line description. *)

val name : t -> string
val equation : t -> string option
val doc : t -> string option

val checks : t -> int
(** Number of times the invariant was evaluated while the sanitizer was
    enabled. *)

val violations : t -> int
(** Number of failed evaluations. *)

val record_check : t -> ok:bool -> unit
(** Bump the counters; used by {!Check.run}. *)

val all : unit -> t list
(** Every registered invariant, in registration order. *)

val find : string -> t option

val reset_counters : unit -> unit
(** Zero every invariant's counters (the registry itself is kept). *)

val pp_summary : Format.formatter -> unit -> unit
(** One line per registered invariant: name, equation, checks, violations. *)

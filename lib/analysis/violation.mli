(** An invariant violation observed by the runtime sanitizer.

    A violation carries enough context to act on it without re-running the
    simulation: the invariant's registered name, the component that was
    executing the check, the simulated time (seconds; [nan] when no clock
    was in scope) and a human-readable detail string. *)

type t = {
  invariant : string;  (** Registered name, e.g. ["pas.credit-conservation"]. *)
  component : string;  (** Emitting component, e.g. ["pas"] or ["series:freq_mhz"]. *)
  time_s : float;  (** Simulated time in seconds; [nan] when unknown. *)
  detail : string;  (** Free-form description of the observed state. *)
}

exception Error of t
(** Raised by the [Fail_fast] policy. *)

val make : invariant:string -> component:string -> time_s:float -> detail:string -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

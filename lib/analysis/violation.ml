type t = { invariant : string; component : string; time_s : float; detail : string }

exception Error of t

let make ~invariant ~component ~time_s ~detail = { invariant; component; time_s; detail }

let pp ppf t =
  if Float.is_nan t.time_s then
    Format.fprintf ppf "[t=?] %s: invariant %S violated: %s" t.component t.invariant t.detail
  else
    Format.fprintf ppf "[t=%.6fs] %s: invariant %S violated: %s" t.time_s t.component
      t.invariant t.detail

let to_string t = Format.asprintf "%a" pp t

let () =
  Printexc.register_printer (function
    | Error v -> Some ("Analysis.Violation.Error: " ^ to_string v)
    | _ -> None)

type policy = Fail_fast | Collect | Warn

(* Sanitizer state is shared across runner domains: the flag and policy
   are atomics (the [enabled] fast path must stay one plain load, no
   allocation), the violation sink is guarded by [collected_mu]. *)
let enabled_flag = Atomic.make false
let current_policy = Atomic.make Fail_fast
let collected_mu = Mutex.create ()
let collected : Violation.t list ref = ref []

let enabled () = Atomic.get enabled_flag

let enable ?(policy = Fail_fast) () =
  Atomic.set current_policy policy;
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false
let policy () = Atomic.get current_policy
let set_policy p = Atomic.set current_policy p
let violations () = Mutex.protect collected_mu (fun () -> List.rev !collected)
let clear () = Mutex.protect collected_mu (fun () -> collected := [])

let record v =
  Mutex.protect collected_mu (fun () -> collected := v :: !collected);
  match Atomic.get current_policy with
  | Fail_fast -> raise (Violation.Error v)
  | Collect -> ()
  | Warn -> Format.eprintf "sanitizer: %a@." Violation.pp v

let env_var = "DVFS_SANITIZE"

let () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some value -> (
      match String.lowercase_ascii (String.trim value) with
      | "" | "0" | "off" | "false" -> ()
      | "1" | "on" | "true" | "fail" | "fail-fast" | "fail_fast" -> enable ~policy:Fail_fast ()
      | "collect" -> enable ~policy:Collect ()
      | "warn" -> enable ~policy:Warn ()
      | other ->
          Format.eprintf "sanitizer: unknown %s value %S (expected off|fail|collect|warn)@."
            env_var other)

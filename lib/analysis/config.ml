type policy = Fail_fast | Collect | Warn

let enabled_flag = ref false
let current_policy = ref Fail_fast
let collected : Violation.t list ref = ref []

let enabled () = !enabled_flag

let enable ?(policy = Fail_fast) () =
  enabled_flag := true;
  current_policy := policy

let disable () = enabled_flag := false
let policy () = !current_policy
let set_policy p = current_policy := p
let violations () = List.rev !collected
let clear () = collected := []

let record v =
  collected := v :: !collected;
  match !current_policy with
  | Fail_fast -> raise (Violation.Error v)
  | Collect -> ()
  | Warn -> Format.eprintf "sanitizer: %a@." Violation.pp v

let env_var = "DVFS_SANITIZE"

let () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some value -> (
      match String.lowercase_ascii (String.trim value) with
      | "" | "0" | "off" | "false" -> ()
      | "1" | "on" | "true" | "fail" | "fail-fast" | "fail_fast" -> enable ~policy:Fail_fast ()
      | "collect" -> enable ~policy:Collect ()
      | "warn" -> enable ~policy:Warn ()
      | other ->
          Format.eprintf "sanitizer: unknown %s value %S (expected off|fail|collect|warn)@."
            env_var other)

type t = {
  name : string;
  equation : string option;
  doc : string option;
  mutable checks : int;
  mutable violations : int;
}

(* Registration order is part of the reporting contract, so the registry is
   an ordered list rather than a hash table; it holds a handful of entries
   and is only scanned at registration and reporting time. *)
let registry : t list ref = ref []

let find name = List.find_opt (fun i -> String.equal i.name name) !registry

let register ?equation ?doc name =
  match find name with
  | Some existing -> existing
  | None ->
      let inv = { name; equation; doc; checks = 0; violations = 0 } in
      registry := !registry @ [ inv ];
      inv

let name t = t.name
let equation t = t.equation
let doc t = t.doc
let checks t = t.checks
let violations t = t.violations

let record_check t ~ok =
  t.checks <- t.checks + 1;
  if not ok then t.violations <- t.violations + 1

let all () = !registry

let reset_counters () =
  List.iter
    (fun i ->
      i.checks <- 0;
      i.violations <- 0)
    !registry

let pp_summary ppf () =
  List.iter
    (fun i ->
      Format.fprintf ppf "%-36s %-8s checks=%-8d violations=%d@." i.name
        (match i.equation with Some e -> e | None -> "-")
        i.checks i.violations)
    !registry

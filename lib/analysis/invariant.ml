type t = {
  name : string;
  equation : string option;
  doc : string option;
  checks : int Atomic.t;
  violations : int Atomic.t;
}

(* Registration order is part of the reporting contract, so the registry is
   an ordered list rather than a hash table; it holds a handful of entries
   and is only scanned at registration and reporting time.  Invariants are
   exercised from runner worker domains, so the registry is guarded by
   [registry_mu] and the per-invariant counters are atomic (the
   [record_check] hot path stays allocation-free). *)
let registry_mu = Mutex.create ()
let registry : t list ref = ref []

let find name =
  Mutex.protect registry_mu (fun () ->
      List.find_opt (fun i -> String.equal i.name name) !registry)

let register ?equation ?doc name =
  Mutex.protect registry_mu (fun () ->
      match List.find_opt (fun i -> String.equal i.name name) !registry with
      | Some existing -> existing
      | None ->
          let inv =
            {
              name;
              equation;
              doc;
              checks = Atomic.make 0;
              violations = Atomic.make 0;
            }
          in
          registry := !registry @ [ inv ];
          inv)

let name t = t.name
let equation t = t.equation
let doc t = t.doc
let checks t = Atomic.get t.checks
let violations t = Atomic.get t.violations

let record_check t ~ok =
  Atomic.incr t.checks;
  if not ok then Atomic.incr t.violations

let all () = Mutex.protect registry_mu (fun () -> !registry)

let reset_counters () =
  List.iter
    (fun i ->
      Atomic.set i.checks 0;
      Atomic.set i.violations 0)
    (all ())

let pp_summary ppf () =
  List.iter
    (fun i ->
      Format.fprintf ppf "%-36s %-8s checks=%-8d violations=%d@." i.name
        (match i.equation with Some e -> e | None -> "-")
        (Atomic.get i.checks) (Atomic.get i.violations))
    (all ())

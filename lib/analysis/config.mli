(** Sanitizer runtime state: the enabled flag, the violation policy and the
    collected-violation sink.

    The sanitizer is {e off} by default so instrumented hot paths cost one
    boolean load.  It can be switched on programmatically
    ({!enable} / {!Analysis.enable}) or through the [DVFS_SANITIZE]
    environment variable, read once at program start:

    - ["0"], ["off"] (or unset): disabled;
    - ["1"], ["on"], ["fail"], ["fail-fast"], ["fail_fast"]: {!Fail_fast};
    - ["collect"]: {!Collect};
    - ["warn"]: {!Warn}. *)

type policy =
  | Fail_fast  (** Raise {!Violation.Error} at the first violation. *)
  | Collect  (** Accumulate violations; inspect with {!violations}. *)
  | Warn  (** Print each violation on [stderr] and continue. *)

val enabled : unit -> bool

val enable : ?policy:policy -> unit -> unit
(** Default policy: [Fail_fast]. *)

val disable : unit -> unit
val policy : unit -> policy
val set_policy : policy -> unit

val record : Violation.t -> unit
(** Apply the current policy to a violation.  Collected violations are kept
    even if the policy later changes. *)

val violations : unit -> Violation.t list
(** Violations collected so far (all policies record here before acting),
    oldest first. *)

val clear : unit -> unit
(** Drop collected violations. *)

val env_var : string
(** ["DVFS_SANITIZE"]. *)

(** Runtime invariant sanitizer for the DVFS/credit simulator.

    The simulator's correctness rests on a handful of numeric properties
    the paper states but nothing enforces: credit compensation preserves
    absolute capacity (Eq. 4), chosen frequencies are members of the
    processor's P-state table (Listing 1.1), utilization fractions stay in
    [0, 1], simulated time is monotonic, and no NaN/infinity reaches the
    measurement sinks.  This library gives those properties names
    ({!Invariant.register}), cheap evaluation points ({!Check.run}) and a
    reporting policy ({!policy}).

    The sanitizer is {b off by default}; when off, every instrumented site
    costs one boolean load.  Enable it with {!enable} or the
    [DVFS_SANITIZE] environment variable (["fail"], ["collect"] or
    ["warn"]; see {!Config}). *)

module Violation = Violation
module Invariant = Invariant
module Check = Check
module Config = Config

type policy = Config.policy = Fail_fast | Collect | Warn

val enable : ?policy:policy -> unit -> unit
(** Turn the sanitizer on (default policy: [Fail_fast]). *)

val disable : unit -> unit
val enabled : unit -> bool
val policy : unit -> policy
val set_policy : policy -> unit

val violations : unit -> Violation.t list
(** Violations recorded so far, oldest first. *)

val clear : unit -> unit
(** Drop recorded violations and zero the per-invariant counters. *)

val report : Format.formatter -> unit -> unit
(** Per-invariant check/violation counters followed by the recorded
    violations. *)

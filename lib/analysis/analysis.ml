module Violation = Violation
module Invariant = Invariant
module Check = Check
module Config = Config

type policy = Config.policy = Fail_fast | Collect | Warn

let enable = Config.enable
let disable = Config.disable
let enabled = Config.enabled
let policy = Config.policy
let set_policy = Config.set_policy
let violations = Config.violations

let clear () =
  Config.clear ();
  Invariant.reset_counters ()

let report ppf () =
  Format.fprintf ppf "--- sanitizer report ---@.";
  Invariant.pp_summary ppf ();
  match Config.violations () with
  | [] -> Format.fprintf ppf "no violations recorded@."
  | vs ->
      Format.fprintf ppf "%d violation(s):@." (List.length vs);
      List.iter (fun v -> Format.fprintf ppf "  %a@." Violation.pp v) vs

(* Non-capturing hot-path variants: [pass] takes no optional arguments and
   allocates nothing, so a tick-rate call site can record a successful
   evaluation without building a detail thunk; the failure branch is cold
   and may spend freely on its message. *)
let pass inv = if Config.enabled () then Invariant.record_check inv ~ok:true

let fail inv ?(time_s = Float.nan) ?(component = "") detail =
  if Config.enabled () then begin
    Invariant.record_check inv ~ok:false;
    Config.record (Violation.make ~invariant:(Invariant.name inv) ~component ~time_s ~detail)
  end

let run inv ?(time_s = Float.nan) ?(component = "") ?detail ok =
  if Config.enabled () then begin
    Invariant.record_check inv ~ok;
    if not ok then begin
      let detail = match detail with Some f -> f () | None -> "condition is false" in
      Config.record
        (Violation.make ~invariant:(Invariant.name inv) ~component ~time_s ~detail)
    end
  end

let finite inv ?time_s ?component ?(what = "value") x =
  run inv ?time_s ?component
    ~detail:(fun () -> Printf.sprintf "%s is not finite: %h" what x)
    (Float.is_finite x)

let within inv ?time_s ?component ?(what = "value") ~lo ~hi x =
  run inv ?time_s ?component
    ~detail:(fun () -> Printf.sprintf "%s = %.9g outside [%.9g, %.9g]" what x lo hi)
    (Float.is_finite x && x >= lo && x <= hi)

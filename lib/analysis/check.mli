(** Evaluating invariants.

    Every entry point is a no-op while the sanitizer is disabled, so
    instrumentation can stay in hot paths unconditionally.  Call sites that
    must compute the checked condition should still guard the computation
    with [Analysis.enabled ()] to keep the disabled cost at one boolean
    load. *)

val pass : Invariant.t -> unit
(** Record a successful evaluation.  No optional arguments and no detail
    thunk, so the call allocates nothing — the variant for per-tick hot
    paths.  A no-op while the sanitizer is disabled. *)

val fail : Invariant.t -> ?time_s:float -> ?component:string -> string -> unit
(** Record a failed evaluation with an already-built detail message and hand
    the violation to the configured policy.  The counterpart of {!pass} for
    the (cold) failure branch, which may allocate freely. *)

val run :
  Invariant.t ->
  ?time_s:float ->
  ?component:string ->
  ?detail:(unit -> string) ->
  bool ->
  unit
(** [run inv ok] records an evaluation of [inv]; when [ok] is [false] a
    {!Violation.t} is built ([detail] is only forced then) and handed to
    the configured policy.  [time_s] defaults to [nan] (no clock in
    scope). *)

val finite :
  Invariant.t ->
  ?time_s:float ->
  ?component:string ->
  ?what:string ->
  float ->
  unit
(** [finite inv x] is [run inv (Float.is_finite x)] with a detail message
    naming [what] and the offending value — the NaN/infinity tripwire for
    series and statistics sinks. *)

val within :
  Invariant.t ->
  ?time_s:float ->
  ?component:string ->
  ?what:string ->
  lo:float ->
  hi:float ->
  float ->
  unit
(** [within inv ~lo ~hi x] checks [lo <= x <= hi] (and finiteness). *)

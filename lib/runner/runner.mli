(** Parallel experiment runner.

    Shards the experiment registry across a pool of OCaml domains.  Three
    properties the callers (bench, CLI, tests) rely on:

    - {b Determinism}: each job's result depends only on its experiment id
      and the scale — every experiment runs with the canonical seed
      [Experiment.default_seed], derived from the id by {!Prng.derive} —
      and results are reported in registry order.  Outputs are therefore
      bit-identical for any pool size, including the serial case.
    - {b Failure isolation}: an experiment raising is recorded as a
      [Failed] job; the other jobs still run to completion.  Check
      {!failures} (the CLI exits non-zero when it is non-empty).
    - {b Accounting}: per-job wall-clock, CPU seconds and allocated bytes,
      plus a machine-readable JSON manifest ({!manifest_json}) for the
      [BENCH_*.json] perf trajectory.  CPU-time and allocation figures come
      from process-wide counters ([Sys.time], [Gc.allocated_bytes]) and are
      approximate when several domains run concurrently. *)

module Manifest = Manifest
(** Manifest reader + regression differ (see {!module-Manifest}). *)

type status = Done | Failed of string  (** [Failed] carries [Printexc.to_string]. *)

type job = {
  id : string;
  title : string;
  status : status;
  seconds : float;  (** wall clock *)
  cpu_seconds : float;
  alloc_mb : float;
  minor_words : float;  (** minor-heap words allocated ([Gc.quick_stat] delta) *)
  major_words : float;  (** major-heap words allocated, including promotions *)
  rows : int;  (** data rows in the summary table *)
  rendered : string;  (** [Experiment.print] output; [""] when failed *)
}

type report = {
  jobs : job list;  (** registry order, independent of completion order *)
  pool_size : int;  (** domains actually used *)
  scale : float;
  total_seconds : float;
}

val failures : report -> (string * string) list
(** [(id, error)] for every failed job, registry order. *)

val jobs_env_var : string
(** ["DVFS_JOBS"]. *)

val default_pool_size : unit -> int
(** [$DVFS_JOBS] when set, else [Domain.recommended_domain_count ()] —
    both captured once at program start by [Domconfig], the blessed
    config loader, so the pool sizing is a constant of the run.
    @raise Invalid_argument if [$DVFS_JOBS] is not a positive integer. *)

val run_all :
  ?pool_size:int -> ?scale:float -> ?experiments:Experiments.Experiment.t list -> unit -> report
(** Runs [experiments] (default: the full registry) on [pool_size] domains
    (default: {!default_pool_size}, capped at the number of experiments).
    @raise Invalid_argument on a non-positive [pool_size] or [scale]. *)

val manifest_json : ?strip_timings:bool -> ?analyze_seconds:float -> report -> string
(** JSON manifest (schema [dvfs-bench-manifest/2], which extends [/1] with
    per-experiment [minor_words]/[major_words]; {!Manifest} reads both).
    [analyze_seconds] adds the optional static-analyzer wall-time key
    ({!Manifest} reads it back; manifests written without it are unchanged
    byte-for-byte, so old baselines stay comparable).  With
    [~strip_timings:true] every timing/allocation field is zeroed, making
    manifests of identical registry runs byte-comparable. *)

val save_manifest :
  ?strip_timings:bool -> ?analyze_seconds:float -> report -> path:string -> unit

val print_outputs : Format.formatter -> report -> unit
(** Every job's rendered experiment output, registry order; failed jobs
    print a [FAILED] header with the error instead. *)

val pp_summary : Format.formatter -> report -> unit
(** Human-readable per-job timing table plus totals. *)

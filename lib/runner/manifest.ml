(* Reader and differ for the BENCH_*.json trajectory manifests.

   The writer ({!Runner.manifest_json}) emits a deliberately flat schema,
   so a small hand-rolled JSON parser keeps the repo dependency-free.  The
   parser handles the full JSON value grammar (minus \u surrogate pairs,
   decoded as '?') — enough for any manifest plus headroom for schema
   growth. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.text
    && match c.text.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> parse_error "expected %c at offset %d, found %c" ch c.pos x
  | None -> parse_error "expected %c at offset %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if c.pos >= String.length c.text then parse_error "unterminated string";
    let ch = c.text.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if c.pos >= String.length c.text then parse_error "unterminated escape";
        let esc = c.text.[c.pos] in
        c.pos <- c.pos + 1;
        (match esc with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            if c.pos + 4 > String.length c.text then parse_error "truncated \\u escape";
            let hex = String.sub c.text c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some v -> v
              | None -> parse_error "bad \\u escape %S" hex
            in
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?'
        | _ -> parse_error "bad escape \\%c" esc);
        loop ())
    | ch -> Buffer.add_char buf ch; loop ()
  in
  loop ()

let parse_number c =
  let start = c.pos in
  let numeric ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < String.length c.text && numeric c.text.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> parse_error "bad number %S at offset %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin expect c '}'; Obj [] end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> expect c ','; members ((key, v) :: acc)
          | Some '}' -> expect c '}'; Obj (List.rev ((key, v) :: acc))
          | _ -> parse_error "expected , or } at offset %d" c.pos
        in
        members []
      end
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin expect c ']'; Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> expect c ','; elements (v :: acc)
          | Some ']' -> expect c ']'; Arr (List.rev (v :: acc))
          | _ -> parse_error "expected , or ] at offset %d" c.pos
        in
        elements []
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse_json text =
  let c = { text; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length text then parse_error "trailing input at offset %d" c.pos;
  v

(* ------------------------------------------------------------------ *)
(* Manifest extraction *)

type experiment = {
  id : string;
  status : string;
  seconds : float;
  cpu_seconds : float;
  alloc_mb : float;
  minor_words : float; (* 0 in schema /1 manifests *)
  major_words : float; (* 0 in schema /1 manifests *)
  rows : int;
}

type t = {
  schema : string;
  scale : float;
  jobs : int;
  host_domains : int;
  total_seconds : float;
  analyze_seconds : float; (* 0 when the manifest has no analyzer timing *)
  experiments : experiment list;
}

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let str_field ?default obj key =
  match (member key obj, default) with
  | Some (Str s), _ -> s
  | Some _, _ -> parse_error "field %S is not a string" key
  | None, Some d -> d
  | None, None -> parse_error "missing field %S" key

let num_field ?default obj key =
  match (member key obj, default) with
  | Some (Num f), _ -> f
  | Some _, _ -> parse_error "field %S is not a number" key
  | None, Some d -> d
  | None, None -> parse_error "missing field %S" key

let supported_schemas = [ "dvfs-bench-manifest/1"; "dvfs-bench-manifest/2" ]

let of_string text =
  let root = parse_json text in
  let schema = str_field root "schema" in
  if not (List.mem schema supported_schemas) then
    parse_error "unsupported schema %S (expected one of: %s)" schema
      (String.concat ", " supported_schemas);
  let experiments =
    match member "experiments" root with
    | Some (Arr items) ->
        List.map
          (fun item ->
            {
              id = str_field item "id";
              status = str_field item "status";
              seconds = num_field item "seconds";
              cpu_seconds = num_field item "cpu_seconds";
              alloc_mb = num_field item "alloc_mb";
              (* Schema /1 predates the word counters; read them as 0 so
                 old trajectory files stay loadable. *)
              minor_words = num_field ~default:0.0 item "minor_words";
              major_words = num_field ~default:0.0 item "major_words";
              rows = int_of_float (num_field ~default:0.0 item "rows");
            })
          items
    | Some _ -> parse_error "field \"experiments\" is not an array"
    | None -> parse_error "missing field \"experiments\""
  in
  {
    schema;
    scale = num_field ~default:1.0 root "scale";
    jobs = int_of_float (num_field ~default:1.0 root "jobs");
    host_domains = int_of_float (num_field ~default:1.0 root "host_domains");
    total_seconds = num_field ~default:0.0 root "total_seconds";
    (* Optional in both schemas: a manifest written without @analyze
       timing (older trajectory files, manual runs) loads as 0. *)
    analyze_seconds = num_field ~default:0.0 root "analyze_seconds";
    experiments;
  }

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* The analyzer timing side-file written by [analyze_main --timing]. *)
let read_analyze_timing path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let root = parse_json text in
  let schema = str_field root "schema" in
  if not (String.equal schema "dvfs-analyze-timing/1") then
    parse_error "unsupported analyze-timing schema %S" schema;
  num_field root "analyze_seconds"

let total_alloc_mb t =
  List.fold_left (fun acc e -> acc +. e.alloc_mb) 0.0 t.experiments

(* ------------------------------------------------------------------ *)
(* Regression diff *)

type regression = {
  exp_id : string;
  metric : string;
  baseline : float;
  current : float;
  ratio : float;
}

(* Below these floors a metric is dominated by measurement noise and is
   not worth gating on. *)
let seconds_floor = 0.05
let alloc_floor_mb = 1.0

let diff ?(tolerance = 1.5) ~baseline ~current () =
  if not (tolerance >= 1.0) then invalid_arg "Manifest.diff: tolerance must be >= 1.0";
  let regressions = ref [] in
  let check exp_id metric ~floor ~old_v ~new_v =
    if old_v > floor && new_v > old_v *. tolerance then
      regressions :=
        { exp_id; metric; baseline = old_v; current = new_v; ratio = new_v /. old_v }
        :: !regressions
  in
  check "(total)" "total_seconds" ~floor:seconds_floor ~old_v:baseline.total_seconds
    ~new_v:current.total_seconds;
  check "(total)" "analyze_seconds" ~floor:seconds_floor
    ~old_v:baseline.analyze_seconds ~new_v:current.analyze_seconds;
  List.iter
    (fun (b : experiment) ->
      match List.find_opt (fun e -> String.equal e.id b.id) current.experiments with
      | None -> ()
      | Some c ->
          if String.equal b.status "ok" && String.equal c.status "ok" then begin
            check b.id "seconds" ~floor:seconds_floor ~old_v:b.seconds ~new_v:c.seconds;
            check b.id "alloc_mb" ~floor:alloc_floor_mb ~old_v:b.alloc_mb ~new_v:c.alloc_mb
          end)
    baseline.experiments;
  List.rev !regressions

let pp_regression ppf r =
  Format.fprintf ppf "%s %s: %.3f -> %.3f (%.2fx)" r.exp_id r.metric r.baseline r.current
    r.ratio

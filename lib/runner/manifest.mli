(** Reader and regression differ for [BENCH_*.json] manifests.

    The writer is {!Runner.manifest_json}; this module is the other half of
    the perf-trajectory loop: load a checked-in baseline manifest, load a
    fresh run, and list the metrics that regressed beyond a tolerance.  It
    reads both schema versions — [dvfs-bench-manifest/2] (adds per-experiment
    [minor_words]/[major_words]) and the older [/1], whose missing word
    counters load as [0.].

    Parsing is a self-contained recursive-descent JSON reader (no external
    dependency); it accepts any well-formed JSON document, so schema growth
    does not require touching the parser. *)

exception Parse_error of string
(** Raised on malformed JSON, an unsupported [schema] tag, or a missing /
    mistyped required field.  The message includes a byte offset or field
    name. *)

type experiment = {
  id : string;
  status : string;  (** ["ok"] or ["failed"] *)
  seconds : float;  (** wall clock *)
  cpu_seconds : float;
  alloc_mb : float;
  minor_words : float;  (** [0.] when loaded from a schema [/1] manifest *)
  major_words : float;  (** [0.] when loaded from a schema [/1] manifest *)
  rows : int;
}

type t = {
  schema : string;
  scale : float;
  jobs : int;
  host_domains : int;
  total_seconds : float;
  analyze_seconds : float;
      (** wall time of the [@analyze] static-analysis build, [0.] when the
          manifest carries no analyzer timing (older trajectory files) *)
  experiments : experiment list;
}

val of_string : string -> t
(** @raise Parse_error on malformed or unsupported input. *)

val load : string -> t
(** Reads and parses the file at the given path.
    @raise Parse_error on malformed or unsupported input.
    @raise Sys_error when the file cannot be read. *)

val total_alloc_mb : t -> float
(** Sum of [alloc_mb] over all experiments. *)

val read_analyze_timing : string -> float
(** Reads the [analyze_seconds] value from a [dvfs-analyze-timing/1]
    side-file (written by [analyze_main --timing]).
    @raise Parse_error on malformed or unsupported input.
    @raise Sys_error when the file cannot be read. *)

(** A metric that grew beyond the tolerance between two manifests. *)
type regression = {
  exp_id : string;  (** experiment id, or ["(total)"] for run-wide metrics *)
  metric : string;  (** ["seconds"], ["alloc_mb"] or ["total_seconds"] *)
  baseline : float;
  current : float;
  ratio : float;  (** [current /. baseline] *)
}

val diff : ?tolerance:float -> baseline:t -> current:t -> unit -> regression list
(** Metrics of [current] that exceed [baseline] by more than [tolerance]
    (a ratio; default [1.5], i.e. 50% head-room).  Compared per experiment
    present in both manifests with status ["ok"]: [seconds] and [alloc_mb],
    plus the run-wide [total_seconds] and [analyze_seconds] (the analyzer
    wall-time gate; skipped when either side carries no timing, since [0.]
    is below the noise floor).  Baseline values below a small noise
    floor are skipped, so sub-50ms experiments never trip the gate on
    scheduling jitter.  Experiments present on only one side are ignored —
    registry growth must not fail the perf gate.
    @raise Invalid_argument when [tolerance < 1.0]. *)

val pp_regression : Format.formatter -> regression -> unit
(** ["<id> <metric>: <old> -> <new> (<ratio>x)"]. *)

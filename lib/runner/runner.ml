module Experiment = Experiments.Experiment
module Manifest = Manifest

type status = Done | Failed of string

type job = {
  id : string;
  title : string;
  status : status;
  seconds : float;
  cpu_seconds : float;
  alloc_mb : float;
  minor_words : float;
  major_words : float;
  rows : int;
  rendered : string;
}

type report = {
  jobs : job list;
  pool_size : int;
  scale : float;
  total_seconds : float;
}

let failures r =
  List.filter_map (fun j -> match j.status with Failed m -> Some (j.id, m) | Done -> None) r.jobs

let jobs_env_var = Domconfig.jobs_env_var

(* Delegates to the blessed config loader, which captured $DVFS_JOBS and
   the machine topology once at startup — keeps the pool sizing out of
   the effect pass's simulation-reachable ambient reads. *)
let default_pool_size () = Domconfig.default_jobs ()

(* Wall clock, CPU clock and GC counters below feed timing metadata only
   (job seconds/alloc in reports and manifests); [strip_timings] zeroes
   them before any byte-for-byte comparison, so they are deliberately
   waived from the determinism effect pass. *)
let now () = Unix.gettimeofday () (* lint:ignore effect-nondet: timing metadata *)

(* One experiment, in whatever domain picked it up.  Everything the caller
   needs — including the rendered report and the failure, if any — comes
   back as an immutable [job]; an exception must never escape, or it would
   take the whole worker (and its remaining share of the queue) with it. *)
let run_job ~scale (e : Experiment.t) =
  let t0 = now () and c0 = Sys.time () and a0 = Gc.allocated_bytes () in (* lint:ignore effect-nondet: timing metadata *)
  let g0 = Gc.quick_stat () in (* lint:ignore effect-nondet: timing metadata *)
  let status, rows, rendered =
    match Experiment.run e ~scale with
    | output ->
        (Done, Sim_engine.Table.row_count output.Experiment.summary, Experiment.print_to_string output)
    | exception exn -> (Failed (Printexc.to_string exn), 0, "")
  in
  let g1 = Gc.quick_stat () in (* lint:ignore effect-nondet: timing metadata *)
  {
    id = e.Experiment.id;
    title = e.Experiment.title;
    status;
    seconds = now () -. t0;
    cpu_seconds = Sys.time () -. c0; (* lint:ignore effect-nondet: timing metadata *)
    alloc_mb = (Gc.allocated_bytes () -. a0) /. 1_048_576.0; (* lint:ignore effect-nondet: timing metadata *)
    minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
    major_words = g1.Gc.major_words -. g0.Gc.major_words;
    rows;
    rendered;
  }

let run_all ?pool_size ?(scale = 1.0) ?experiments () =
  if not (scale > 0.0) then invalid_arg "Runner.run_all: scale must be positive";
  let experiments =
    Array.of_list (match experiments with Some es -> es | None -> Experiments.Registry.all)
  in
  let n = Array.length experiments in
  let requested = match pool_size with Some p -> p | None -> default_pool_size () in
  if requested < 1 then invalid_arg "Runner.run_all: pool_size must be positive";
  let pool_size = Stdlib.min requested (Stdlib.max n 1) in
  let t0 = now () in
  (* One atomic cell per job: the array itself is written only at creation,
     and each result is published through its cell, so the hand-off to the
     joining domain never relies on plain-array visibility (flagged by the
     domain-capture analysis pass). *)
  let results = Array.init n (fun _ -> Atomic.make None) in
  (* Self-scheduling shard: each worker claims the next unclaimed index.
     Assignment order is non-deterministic, but each job's result depends
     only on (id, scale) — the seed is derived from the id — and results
     land in registry order, so the report is identical for any pool. *)
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        Atomic.set results.(i) (Some (run_job ~scale experiments.(i)));
        loop ()
      end
    in
    loop ()
  in
  if pool_size = 1 then worker ()
  else begin
    let domains = List.init (pool_size - 1) (fun _ -> Stdlib.Domain.spawn worker) in
    worker ();
    List.iter Stdlib.Domain.join domains
  end;
  let jobs =
    Array.to_list
      (Array.map
         (fun cell ->
           match Atomic.get cell with
           | Some job -> job
           (* unreachable: the workers only return once [next] has passed
              [n], and each claimed index is filled before the next claim. *)
           | None -> assert false)
         results)
  in
  { jobs; pool_size; scale; total_seconds = now () -. t0 }

(* ------------------------------------------------------------------ *)
(* JSON manifest.  Flat enough to emit by hand; [strip_timings] zeroes the
   wall-clock/cpu/alloc fields so two runs of the same registry can be
   compared byte-for-byte. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let manifest_json ?(strip_timings = false) ?analyze_seconds r =
  let buf = Buffer.create 2048 in
  let time v = if strip_timings then 0.0 else v in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"dvfs-bench-manifest/2\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %g,\n" r.scale);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" r.pool_size);
  Buffer.add_string buf
    (Printf.sprintf "  \"host_domains\": %d,\n" (Stdlib.Domain.recommended_domain_count ()));
  Buffer.add_string buf (Printf.sprintf "  \"total_seconds\": %.3f,\n" (time r.total_seconds));
  (* Optional key, still schema /2: manifests written without analyzer
     timing stay byte-identical to what PR 4 produced. *)
  Option.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "  \"analyze_seconds\": %.3f,\n" (time s)))
    analyze_seconds;
  Buffer.add_string buf "  \"experiments\": [\n";
  List.iteri
    (fun i j ->
      let status, error =
        match j.status with Done -> ("ok", "") | Failed m -> ("failed", Printf.sprintf ", \"error\": \"%s\"" (json_escape m))
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"id\": \"%s\", \"status\": \"%s\"%s, \"seconds\": %.3f, \"cpu_seconds\": %.3f, \
            \"alloc_mb\": %.1f, \"minor_words\": %.0f, \"major_words\": %.0f, \"rows\": %d}%s\n"
           (json_escape j.id) status error (time j.seconds) (time j.cpu_seconds)
           (if strip_timings then 0.0 else j.alloc_mb)
           (time j.minor_words) (time j.major_words) j.rows
           (if i = List.length r.jobs - 1 then "" else ",")))
    r.jobs;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let save_manifest ?strip_timings ?analyze_seconds r ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (manifest_json ?strip_timings ?analyze_seconds r))

let print_outputs ppf r =
  List.iter
    (fun j ->
      match j.status with
      | Done -> Format.pp_print_string ppf j.rendered
      | Failed msg -> Format.fprintf ppf "=== %s: FAILED ===@.%s@.@." j.id msg)
    r.jobs

let pp_summary ppf r =
  let failed = List.length (failures r) in
  Format.fprintf ppf "ran %d experiments on %d domain(s) in %.1fs wall (%0.1fs cpu)@."
    (List.length r.jobs) r.pool_size r.total_seconds
    ((* lint:ignore float-fold-order: jobs is in registry order, not completion order *) List.fold_left
       (fun acc j -> acc +. j.cpu_seconds)
       0.0 r.jobs);
  List.iter
    (fun j ->
      Format.fprintf ppf "  %-18s %-6s %6.1fs wall %6.1fs cpu %8.0f MB alloc %4d rows@." j.id
        (match j.status with Done -> "ok" | Failed _ -> "FAILED")
        j.seconds j.cpu_seconds j.alloc_mb j.rows)
    r.jobs;
  if failed > 0 then Format.fprintf ppf "  %d experiment(s) FAILED@." failed

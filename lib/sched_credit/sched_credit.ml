module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler

let inv_credit =
  Analysis.Invariant.register "credit.effective-credit-bounds"
    ~doc:"effective credits handed to the Credit scheduler are finite and non-negative"

let inv_quota =
  Analysis.Invariant.register "credit.quota-nonneg"
    ~doc:"a domain's remaining quota never goes negative"

type dom_state = {
  domain : Domain.t;
  mutable effective_credit : float; (* percent; the cap the policy may move *)
  mutable quota : Sim_time.t; (* CPU time left this accounting period *)
  mutable was_runnable : bool; (* for wake detection (BOOST) *)
  mutable boosted : bool; (* woke recently: dispatched ahead of the pack *)
}

type t = {
  account_period : Sim_time.t;
  host_capacity : int; (* physical cores: quotas are % of the whole host *)
  boost : bool;
  doms : dom_state array;
  mutable rr : int; (* round-robin pointer over capped domains *)
  mutable rr_uncapped : int;
  mutable rr_boost : int;
}

let quota_of t credit =
  Sim_time.of_sec_f
    (credit /. 100.0 *. Sim_time.to_sec t.account_period *. float_of_int t.host_capacity)

let refill t st = st.quota <- quota_of t st.effective_credit

let state t d =
  match Array.find_opt (fun st -> Domain.equal st.domain d) t.doms with
  | Some st -> st
  | None -> invalid_arg "Sched_credit: unknown domain"

(* A capped domain is eligible when runnable, not excluded and holding
   quota; an uncapped one merely needs to be runnable. *)
let eligible_capped st ~exclude =
  (not (Domain.uncapped st.domain))
  && Domain.runnable st.domain
  && (not (Scheduler.excluded st.domain exclude))
  && Sim_time.compare st.quota Sim_time.zero > 0

let eligible_uncapped st ~exclude =
  Domain.uncapped st.domain
  && Domain.runnable st.domain
  && not (Scheduler.excluded st.domain exclude)

(* Rotating scan starting after the round-robin pointer. *)
let rr_find t ptr pred =
  let n = Array.length t.doms in
  let rec loop i =
    if i >= n then None
    else begin
      let idx = (ptr + 1 + i) mod n in
      if pred t.doms.(idx) then Some idx else loop (i + 1)
    end
  in
  loop 0

(* Wake detection: a domain that just became runnable gets BOOST priority
   (Xen's latency fix for I/O-bound domains) until its next dispatch. *)
let detect_wakes t =
  Array.iter
    (fun st ->
      let runnable = Domain.runnable st.domain in
      if t.boost && runnable && not st.was_runnable then st.boosted <- true;
      st.was_runnable <- runnable)
    t.doms

let pick t ~now:_ ~remaining ~exclude =
  detect_wakes t;
  let slice_of st cap =
    Some { Scheduler.domain = st.domain; max_slice = Sim_time.min cap remaining }
  in
  (* Dom0 first: strictly highest priority. *)
  let dom0 =
    Array.find_opt
      (fun st -> Domain.is_dom0 st.domain && eligible_capped st ~exclude)
      t.doms
  in
  match dom0 with
  | Some st -> slice_of st st.quota
  | None -> (
      match
        rr_find t t.rr_boost (fun st ->
            st.boosted && (not (Domain.is_dom0 st.domain)) && eligible_capped st ~exclude)
      with
      | Some idx ->
          t.rr_boost <- idx;
          let st = t.doms.(idx) in
          slice_of st st.quota
      | None -> (
          match
            rr_find t t.rr (fun st ->
                (not (Domain.is_dom0 st.domain)) && eligible_capped st ~exclude)
          with
          | Some idx ->
              t.rr <- idx;
              let st = t.doms.(idx) in
              slice_of st st.quota
          | None -> (
              match rr_find t t.rr_uncapped (eligible_uncapped ~exclude) with
              | Some idx ->
                  t.rr_uncapped <- idx;
                  slice_of t.doms.(idx) remaining
              | None -> None)))

let charge t ~domain ~now ~used =
  let st = state t domain in
  st.boosted <- false; (* the low-latency dispatch happened; back in the pack *)
  st.quota <- (if Sim_time.compare used st.quota >= 0 then Sim_time.zero
               else Sim_time.sub st.quota used);
  if Analysis.Config.enabled () then
    Analysis.Check.run inv_quota ~time_s:(Sim_time.to_sec now) ~component:"sched-credit"
      ~detail:(fun () ->
        Printf.sprintf "domain %s quota %s after charge" (Domain.name domain)
          (Sim_time.to_string st.quota))
      (Sim_time.compare st.quota Sim_time.zero >= 0)

let on_account_period t ~now:_ = Array.iter (refill t) t.doms

let set_effective_credit t d credit =
  if Analysis.Config.enabled () then
    Analysis.Check.run inv_credit ~component:"sched-credit"
      ~detail:(fun () ->
        Printf.sprintf "domain %s assigned effective credit %.9g" (Domain.name d) credit)
      (Float.is_finite credit && credit >= 0.0);
  if credit < 0.0 then invalid_arg "Sched_credit.set_effective_credit: negative credit";
  let st = state t d in
  let old_quota = quota_of t st.effective_credit in
  let new_quota = quota_of t credit in
  st.effective_credit <- credit;
  (* Adjust the in-flight quota by the cap delta so a mid-period raise takes
     effect immediately (Listing 1.2 applies at scheduler ticks, not period
     boundaries). *)
  if Sim_time.compare new_quota old_quota >= 0 then
    st.quota <- Sim_time.add st.quota (Sim_time.sub new_quota old_quota)
  else begin
    let cut = Sim_time.sub old_quota new_quota in
    st.quota <-
      (if Sim_time.compare cut st.quota >= 0 then Sim_time.zero
       else Sim_time.sub st.quota cut)
  end

let effective_credit t d = (state t d).effective_credit

let create ?(account_period = Sim_time.of_ms 30) ?(host_capacity = 1) ?(boost = true) domains =
  if Sim_time.equal account_period Sim_time.zero then
    invalid_arg "Sched_credit.create: zero account period";
  if host_capacity < 1 then invalid_arg "Sched_credit.create: host_capacity must be >= 1";
  let ids = List.map Domain.id domains in
  if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
    invalid_arg "Sched_credit.create: duplicate domains";
  let t =
    {
      account_period;
      host_capacity;
      boost;
      doms =
        Array.of_list
          (List.map
             (fun d ->
               {
                 domain = d;
                 effective_credit = Domain.initial_credit d;
                 quota = Sim_time.zero;
                 was_runnable = false;
                 boosted = false;
               })
             domains);
      rr = 0;
      rr_uncapped = 0;
      rr_boost = 0;
    }
  in
  Array.iter (refill t) t.doms;
  Scheduler.make ~name:"credit"
    ~domains:(fun () -> Array.to_list (Array.map (fun st -> st.domain) t.doms))
    ~pick:(fun ~now ~remaining ~exclude -> pick t ~now ~remaining ~exclude)
    ~charge:(fun ~domain ~now ~used -> charge t ~domain ~now ~used)
    ~on_account_period:(fun ~now -> on_account_period t ~now)
    ~set_effective_credit:(set_effective_credit t)
    ~effective_credit:(effective_credit t) ()

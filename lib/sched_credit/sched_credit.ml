module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler

let inv_credit =
  Analysis.Invariant.register "credit.effective-credit-bounds"
    ~doc:"effective credits handed to the Credit scheduler are finite and non-negative"

let inv_quota =
  Analysis.Invariant.register "credit.quota-nonneg"
    ~doc:"a domain's remaining quota never goes negative"

type dom_state = {
  domain : Domain.t;
  mutable effective_credit : float; (* percent; the cap the policy may move *)
  mutable quota : Sim_time.t; (* CPU time left this accounting period *)
  mutable was_runnable : bool; (* for wake detection (BOOST) *)
  mutable boosted : bool; (* woke recently: dispatched ahead of the pack *)
  cell : Scheduler.slice; (* reusable dispatch decision, one per domain *)
  cell_opt : Scheduler.slice option; (* [Some cell], preallocated *)
}

type t = {
  account_period : Sim_time.t;
  host_capacity : int; (* physical cores: quotas are % of the whole host *)
  boost : bool;
  doms : dom_state array;
  mutable rr : int; (* round-robin pointer over capped domains *)
  mutable rr_uncapped : int;
  mutable rr_boost : int;
}

let quota_of t credit =
  Sim_time.of_sec_f
    (credit /. 100.0 *. Sim_time.to_sec t.account_period *. float_of_int t.host_capacity)

let refill t st = st.quota <- quota_of t st.effective_credit

let rec index_of doms d i =
  if i >= Array.length doms then -1
  else if Domain.equal doms.(i).domain d then i
  else index_of doms d (i + 1)

let state t d =
  let i = index_of t.doms d 0 in
  if i < 0 then invalid_arg "Sched_credit: unknown domain";
  t.doms.(i)

(* A capped domain is eligible when runnable, not excluded and holding
   quota; an uncapped one merely needs to be runnable. *)
let eligible_capped st exclude =
  (not (Domain.uncapped st.domain))
  && Domain.runnable st.domain
  && (not (Scheduler.Mask.mem exclude st.domain))
  && Sim_time.compare st.quota Sim_time.zero > 0

let eligible_uncapped st exclude =
  Domain.uncapped st.domain
  && Domain.runnable st.domain
  && not (Scheduler.Mask.mem exclude st.domain)

(* Rotating scan starting after the round-robin pointer; -1 when nobody
   matches.  The predicates are top-level functions so the per-tick pick
   path builds no closures. *)
let rec rr_find doms exclude ptr n i pred =
  if i >= n then -1
  else begin
    let idx = (ptr + 1 + i) mod n in
    if pred doms.(idx) exclude then idx else rr_find doms exclude ptr n (i + 1) pred
  end

let pred_boost st exclude =
  st.boosted && (not (Domain.is_dom0 st.domain)) && eligible_capped st exclude

let pred_capped st exclude =
  (not (Domain.is_dom0 st.domain)) && eligible_capped st exclude

(* Wake detection: a domain that just became runnable gets BOOST priority
   (Xen's latency fix for I/O-bound domains) until its next dispatch. *)
let detect_wakes t =
  for i = 0 to Array.length t.doms - 1 do
    let st = t.doms.(i) in
    let runnable = Domain.runnable st.domain in
    if t.boost && runnable && not st.was_runnable then st.boosted <- true;
    st.was_runnable <- runnable
  done

let rec find_dom0 doms exclude i =
  if i >= Array.length doms then -1
  else begin
    let st = doms.(i) in
    if Domain.is_dom0 st.domain && eligible_capped st exclude then i
    else find_dom0 doms exclude (i + 1)
  end

(* The per-domain slice record is reused across picks (see the contract in
   Scheduler.slice): write the cap, hand back the preallocated option. *)
let slice_of st cap ~remaining =
  st.cell.Scheduler.max_slice <- Sim_time.min cap remaining;
  st.cell_opt

(* alloc: none *)
let pick t ~now:_ ~remaining ~exclude =
  detect_wakes t;
  (* Dom0 first: strictly highest priority. *)
  let i0 = find_dom0 t.doms exclude 0 in
  if i0 >= 0 then begin
    let st = t.doms.(i0) in
    slice_of st st.quota ~remaining
  end
  else begin
    let n = Array.length t.doms in
    let ib = rr_find t.doms exclude t.rr_boost n 0 pred_boost in
    if ib >= 0 then begin
      t.rr_boost <- ib;
      let st = t.doms.(ib) in
      slice_of st st.quota ~remaining
    end
    else begin
      let ic = rr_find t.doms exclude t.rr n 0 pred_capped in
      if ic >= 0 then begin
        t.rr <- ic;
        let st = t.doms.(ic) in
        slice_of st st.quota ~remaining
      end
      else begin
        let iu = rr_find t.doms exclude t.rr_uncapped n 0 eligible_uncapped in
        if iu >= 0 then begin
          t.rr_uncapped <- iu;
          slice_of t.doms.(iu) remaining ~remaining
        end
        else None
      end
    end
  end

(* Off-by-default sanitizer: the enabled check stays in the caller, so the
   charge path pays one branch when sanitizers are off. *)
(* alloc: cold *)
let[@inline never] check_quota st ~domain ~now =
  if Sim_time.compare st.quota Sim_time.zero >= 0 then Analysis.Check.pass inv_quota
  else
    Analysis.Check.fail inv_quota ~time_s:(Sim_time.to_sec now) ~component:"sched-credit"
      (Printf.sprintf "domain %s quota %s after charge" (* lint:ignore hot-path-printf: cold sanitizer failure message *)
         (Domain.name domain) (Sim_time.to_string st.quota))

(* alloc: none *)
let charge t ~domain ~now ~used =
  let st = state t domain in
  st.boosted <- false; (* the low-latency dispatch happened; back in the pack *)
  st.quota <- (if Sim_time.compare used st.quota >= 0 then Sim_time.zero
               else Sim_time.sub st.quota used);
  if Analysis.Config.enabled () then check_quota st ~domain ~now

let on_account_period t ~now:_ = Array.iter (refill t) t.doms

let set_effective_credit t d credit =
  if Analysis.Config.enabled () then
    Analysis.Check.run inv_credit ~component:"sched-credit"
      ~detail:(fun () ->
        Printf.sprintf "domain %s assigned effective credit %.9g" (* lint:ignore hot-path-printf: lazy detail built only on failure *)
          (Domain.name d) credit)
      (Float.is_finite credit && credit >= 0.0);
  if credit < 0.0 then invalid_arg "Sched_credit.set_effective_credit: negative credit";
  let st = state t d in
  let old_quota = quota_of t st.effective_credit in
  let new_quota = quota_of t credit in
  st.effective_credit <- credit;
  (* Adjust the in-flight quota by the cap delta so a mid-period raise takes
     effect immediately (Listing 1.2 applies at scheduler ticks, not period
     boundaries). *)
  if Sim_time.compare new_quota old_quota >= 0 then
    st.quota <- Sim_time.add st.quota (Sim_time.sub new_quota old_quota)
  else begin
    let cut = Sim_time.sub old_quota new_quota in
    st.quota <-
      (if Sim_time.compare cut st.quota >= 0 then Sim_time.zero
       else Sim_time.sub st.quota cut)
  end

let effective_credit t d = (state t d).effective_credit

let create ?(account_period = Sim_time.of_ms 30) ?(host_capacity = 1) ?(boost = true) domains =
  if Sim_time.equal account_period Sim_time.zero then
    invalid_arg "Sched_credit.create: zero account period";
  if host_capacity < 1 then invalid_arg "Sched_credit.create: host_capacity must be >= 1";
  let ids = List.map Domain.id domains in
  if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
    invalid_arg "Sched_credit.create: duplicate domains";
  let t =
    {
      account_period;
      host_capacity;
      boost;
      doms =
        Array.of_list
          (List.map
             (fun d ->
               let cell = { Scheduler.domain = d; max_slice = Sim_time.zero } in
               {
                 domain = d;
                 effective_credit = Domain.initial_credit d;
                 quota = Sim_time.zero;
                 was_runnable = false;
                 boosted = false;
                 cell;
                 cell_opt = Some cell;
               })
             domains);
      rr = 0;
      rr_uncapped = 0;
      rr_boost = 0;
    }
  in
  Array.iter (refill t) t.doms;
  Scheduler.make ~name:"credit"
    ~domains:(fun () -> Array.to_list (Array.map (fun st -> st.domain) t.doms))
    ~pick:(fun ~now ~remaining ~exclude -> pick t ~now ~remaining ~exclude)
    ~charge:(fun ~domain ~now ~used -> charge t ~domain ~now ~used)
    ~on_account_period:(fun ~now -> on_account_period t ~now)
    ~set_effective_credit:(set_effective_credit t)
    ~effective_credit:(effective_credit t) ()

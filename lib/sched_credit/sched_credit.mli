(** The Xen Credit scheduler, used as the paper's {e fix credit} scheduler
    (§3.1).

    Each domain's credit is a hard cap: per accounting period (30 ms in
    Xen) a domain may consume at most [credit% × period] of CPU time, and
    unused time is {e not} redistributed — the processor idles instead
    (non-work-conserving).  This is what makes the host look underloaded to
    a DVFS governor when a domain is lazy (Scenario 1, §3.2).

    Three special cases follow Xen:
    - Dom0 has strictly highest priority (§5.3: Dom0 is configured with the
      highest priority);
    - a domain created with a null credit has no cap and soaks up slices no
      capped domain wants, with no guarantee (§3.1);
    - a domain waking from idle gets BOOST priority for its next dispatch
      (Xen's latency fix for I/O-bound domains — cf. the scheduler
      comparison the paper cites as [6]); disable with [~boost:false].

    The {e effective} credit is what {!Scheduler.t.set_effective_credit}
    manipulates; the PAS policy rescales it as the frequency moves, while
    the {e initial} credit remains the sold SLA. *)

val create :
  ?account_period:Sim_time.t ->
  ?host_capacity:int ->
  ?boost:bool ->
  Hypervisor.Domain.t list ->
  Hypervisor.Scheduler.t
(** [account_period] must equal the host's accounting period (default
    30 ms) — quotas are refilled on {!Hypervisor.Scheduler.t.on_account_period}.
    [host_capacity] is the host's core count (default 1): a credit is a
    percentage of the {e whole} host, so quotas scale with it.
    @raise Invalid_argument on duplicate domains, a zero period, or
    [host_capacity < 1]. *)

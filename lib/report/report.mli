(** Shared reporting machinery for the source checkers.

    Both the text lint ([lib/lint]) and the AST analyzer
    ([lib/staticcheck]) produce the same flat issue records, honour the
    same ["lint:ignore"] waiver marker, walk the tree the same way and
    exit with the same convention (0 clean, 1 issues, 2 usage error).
    This module is that common ground, so a CI consumer never has to
    care which of the two passes produced a line. *)

type issue = { file : string; line : int; rule : string; message : string }

val waiver : string
(** The waiver marker, ["lint:ignore"].  A source line whose raw text
    contains it is exempt from every line-based rule of every checker. *)

val pp_issue : Format.formatter -> issue -> unit
(** ["file:line: [rule] message"] — the one report format. *)

val sort : issue list -> issue list
(** By file, then line, then rule. *)

val drop_waived :
  ?symbols:(issue -> string list) -> source:string -> issue list -> issue list
(** Removes issues whose raw source line contains {!waiver}.

    When [symbols] is given, the file is additionally scanned for
    file-scoped symbol waivers of the form [lint:ignore RULE @Path]
    (anywhere in the file): an issue is dropped when such a waiver's rule
    matches the issue's rule and its path matches {e any} spelling the
    checker supplies via [symbols issue] — so a waiver written against a
    re-exported module-alias path (e.g. [@Analysis.Config.collected])
    matches the canonical declaration ([@Config.collected]) and vice
    versa, provided the checker lists both spellings. *)

val read_file : string -> string
(** Whole file, binary-exact. *)

val collect_sources : string list -> string list
(** Walks the given files and directories recursively (skipping [_build]
    and dot-files) and returns every [.ml]/[.mli] found.  Roots that do
    not exist are ignored; validate them first with {!check_roots}. *)

val check_roots : tool:string -> string list -> unit
(** Exits with code 2 (printing to stderr) if any root does not exist. *)

val report : tool:string -> issue list -> int
(** Prints every issue on stdout with {!pp_issue}, then an issue-count
    summary on stderr when non-empty.  Returns the process exit code:
    0 for a clean report, 1 otherwise — the one exit-code convention. *)

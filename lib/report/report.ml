type issue = { file : string; line : int; rule : string; message : string }

let waiver = "lint:ignore"

let pp_issue ppf i =
  Format.fprintf ppf "%s:%d: [%s] %s" i.file i.line i.rule i.message

let compare_issue a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else String.compare a.rule b.rule

let sort issues = List.sort compare_issue issues

let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub line i m = sub || loop (i + 1)) in
  m > 0 && loop 0

let find_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec loop i =
    if i + m > n then None
    else if String.sub line i m = sub then Some i
    else loop (i + 1)
  in
  if m = 0 then None else loop 0

(* File-scoped symbol waivers: [lint:ignore RULE @Path] anywhere in the
   file waives RULE for that symbol, under whatever spelling the checker
   supplies (canonical key or module-alias path).  The interprocedural
   passes report at declaration sites possibly far from where the author
   decided the state is fine, so a line waiver is not always placeable. *)
let symbol_waivers source =
  let strip_token t =
    let stop = ref (String.length t) in
    (try
       String.iteri
         (fun i c ->
           match c with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '\'' | '-' -> ()
           | _ ->
               stop := i;
               raise Exit)
         t
     with Exit -> ());
    String.sub t 0 !stop
  in
  List.concat_map
    (fun line ->
      match find_sub line waiver with
      | None -> []
      | Some i -> (
          let rest =
            String.sub line
              (i + String.length waiver)
              (String.length line - i - String.length waiver)
          in
          let tokens =
            String.split_on_char ' ' rest |> List.filter (fun t -> t <> "")
          in
          match tokens with
          | rule :: sym :: _ when String.length sym > 1 && sym.[0] = '@' ->
              let rule = strip_token rule in
              let sym =
                strip_token (String.sub sym 1 (String.length sym - 1))
              in
              if rule = "" || sym = "" then [] else [ (rule, sym) ]
          | _ -> []))
    (String.split_on_char '\n' source)

let drop_waived ?(symbols = fun _ -> []) ~source issues =
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let sym_waivers = symbol_waivers source in
  List.filter
    (fun i ->
      let raw =
        if i.line >= 1 && i.line - 1 < Array.length lines then lines.(i.line - 1) else ""
      in
      let line_waived = contains_sub raw waiver in
      let symbol_waived =
        sym_waivers <> []
        && List.exists
             (fun s -> List.mem (i.rule, s) sym_waivers)
             (symbols i)
      in
      not (line_waived || symbol_waived))
    issues

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec collect path acc =
  let base = Filename.basename path in
  if base = "_build" || (String.length base > 0 && base.[0] = '.') then acc
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> collect (Filename.concat path entry) acc)
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
    path :: acc
  else acc

let collect_sources roots =
  List.fold_left
    (fun acc root -> if Sys.file_exists root then collect root acc else acc)
    [] roots

let check_roots ~tool roots =
  List.iter
    (fun root ->
      if not (Sys.file_exists root) then begin
        Format.eprintf "%s: no such file or directory: %s@." tool root;
        exit 2
      end)
    roots

let report ~tool issues =
  List.iter (fun i -> Format.printf "%a@." pp_issue i) issues;
  match issues with
  | [] -> 0
  | _ :: _ ->
      Format.eprintf "%s: %d issue(s) found@." tool (List.length issues);
      1

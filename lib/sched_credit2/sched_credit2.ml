module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler

(* The virtual runtime lives in a single-field float record so the per-tick
   charge updates store into a flat float block instead of boxing a fresh
   float for a mixed-field record. *)
type vclock = { mutable vtime : float (* weighted virtual runtime, seconds *) }

type dom_state = {
  domain : Domain.t;
  weight : float;
  vclock : vclock;
  mutable was_runnable : bool;
  cell : Scheduler.slice; (* reusable dispatch decision *)
  cell_opt : Scheduler.slice option;
}

type t = { doms : dom_state array; rate_limit : Sim_time.t }

let rec index_of doms d i =
  if i >= Array.length doms then -1
  else if Domain.equal doms.(i).domain d then i
  else index_of doms d (i + 1)

let state t d =
  let i = index_of t.doms d 0 in
  if i < 0 then invalid_arg "Sched_credit2: unknown domain";
  t.doms.(i)

let weight_of d =
  let c = Domain.initial_credit d in
  if c > 0.0 then c *. 256.0 /. 100.0 else float_of_int (Domain.weight d)

(* A domain waking from idle has its virtual clock brought up to the
   runnable minimum so it cannot monopolise the CPU to "repay" its sleep. *)
let on_wakeups t =
  let min_runnable = ref infinity in
  for i = 0 to Array.length t.doms - 1 do
    let st = t.doms.(i) in
    if st.was_runnable && Domain.runnable st.domain then
      min_runnable := Float.min !min_runnable st.vclock.vtime
  done;
  for i = 0 to Array.length t.doms - 1 do
    let st = t.doms.(i) in
    let runnable = Domain.runnable st.domain in
    if runnable && not st.was_runnable && !min_runnable < infinity then
      st.vclock.vtime <- Float.max st.vclock.vtime !min_runnable;
    st.was_runnable <- runnable
  done

let pick t ~now:_ ~remaining ~exclude =
  on_wakeups t;
  (* Lowest virtual runtime wins; the first domain in array order wins
     ties, exactly as the old option-accumulating scan did. *)
  let best = ref (-1) in
  for i = 0 to Array.length t.doms - 1 do
    let st = t.doms.(i) in
    if
      Domain.runnable st.domain
      && (not (Scheduler.Mask.mem exclude st.domain))
      && (!best < 0 || st.vclock.vtime < t.doms.(!best).vclock.vtime)
    then best := i
  done;
  if !best < 0 then None
  else begin
    let st = t.doms.(!best) in
    st.cell.Scheduler.max_slice <- Sim_time.min t.rate_limit remaining;
    st.cell_opt
  end

let charge t ~domain ~now:_ ~used =
  let st = state t domain in
  st.vclock.vtime <- st.vclock.vtime +. (Sim_time.to_sec used *. 256.0 /. st.weight)

let create ?(rate_limit = Sim_time.of_ms 1) domains =
  let ids = List.map Domain.id domains in
  if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
    invalid_arg "Sched_credit2.create: duplicate domains";
  let t =
    {
      rate_limit;
      doms =
        Array.of_list
          (List.map
             (fun d ->
               let cell = { Scheduler.domain = d; max_slice = Sim_time.zero } in
               {
                 domain = d;
                 weight = weight_of d;
                 vclock = { vtime = 0.0 };
                 was_runnable = false;
                 cell;
                 cell_opt = Some cell;
               })
             domains);
    }
  in
  Scheduler.make ~name:"credit2"
    ~domains:(fun () -> Array.to_list (Array.map (fun st -> st.domain) t.doms))
    ~pick:(fun ~now ~remaining ~exclude -> pick t ~now ~remaining ~exclude)
    ~charge:(fun ~domain ~now ~used -> charge t ~domain ~now ~used)
    ()

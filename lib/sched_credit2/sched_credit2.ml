module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler

type dom_state = {
  domain : Domain.t;
  weight : float;
  mutable vtime : float; (* weighted virtual runtime, seconds *)
  mutable was_runnable : bool;
}

type t = { doms : dom_state array; rate_limit : Sim_time.t }

let state t d =
  match Array.find_opt (fun st -> Domain.equal st.domain d) t.doms with
  | Some st -> st
  | None -> invalid_arg "Sched_credit2: unknown domain"

let weight_of d =
  let c = Domain.initial_credit d in
  if c > 0.0 then c *. 256.0 /. 100.0 else float_of_int (Domain.weight d)

(* A domain waking from idle has its virtual clock brought up to the
   runnable minimum so it cannot monopolise the CPU to "repay" its sleep. *)
let on_wakeups t =
  let min_runnable = ref infinity in
  Array.iter
    (fun st ->
      if st.was_runnable && Domain.runnable st.domain then
        min_runnable := Float.min !min_runnable st.vtime)
    t.doms;
  Array.iter
    (fun st ->
      let runnable = Domain.runnable st.domain in
      if runnable && not st.was_runnable && !min_runnable < infinity then
        st.vtime <- Float.max st.vtime !min_runnable;
      st.was_runnable <- runnable)
    t.doms

let pick t ~now:_ ~remaining ~exclude =
  on_wakeups t;
  let best = ref None in
  Array.iter
    (fun st ->
      if Domain.runnable st.domain && not (Scheduler.excluded st.domain exclude) then
        match !best with
        | Some b when b.vtime <= st.vtime -> ()
        | Some _ | None -> best := Some st)
    t.doms;
  match !best with
  | Some st ->
      Some { Scheduler.domain = st.domain; max_slice = Sim_time.min t.rate_limit remaining }
  | None -> None

let charge t ~domain ~now:_ ~used =
  let st = state t domain in
  st.vtime <- st.vtime +. (Sim_time.to_sec used *. 256.0 /. st.weight)

let create ?(rate_limit = Sim_time.of_ms 1) domains =
  let ids = List.map Domain.id domains in
  if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
    invalid_arg "Sched_credit2.create: duplicate domains";
  let t =
    {
      rate_limit;
      doms =
        Array.of_list
          (List.map
             (fun d ->
               { domain = d; weight = weight_of d; vtime = 0.0; was_runnable = false })
             domains);
    }
  in
  Scheduler.make ~name:"credit2"
    ~domains:(fun () -> Array.to_list (Array.map (fun st -> st.domain) t.doms))
    ~pick:(fun ~now ~remaining ~exclude -> pick t ~now ~remaining ~exclude)
    ~charge:(fun ~domain ~now ~used -> charge t ~domain ~now ~used)
    ()

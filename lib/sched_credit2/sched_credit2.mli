(** A Credit2-style scheduler.

    §3.1 mentions Xen's Credit2, "an updated version of Credit ... currently
    available in a beta version", which the paper excludes from its
    experiments; it is provided here to complete the scheduler inventory and
    for the ablation benches.  Credit2 is weight-based and work-conserving
    with no caps, so it behaves as a {e variable credit} scheduler in the
    paper's taxonomy; we model it as weighted virtual-time fair sharing
    (each domain's virtual clock advances inversely to its weight) with a
    rate limit per dispatch grant.

    Domain weights are taken from [credit% × 256 / 100] when the domain has
    a credit, so the same V20/V70 setups keep their 2:7 share. *)

val create :
  ?rate_limit:Sim_time.t -> Hypervisor.Domain.t list -> Hypervisor.Scheduler.t
(** [rate_limit] bounds one grant (default 1 ms).
    @raise Invalid_argument on duplicate domains. *)

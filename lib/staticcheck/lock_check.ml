(* Interprocedural lock-discipline inference.

   For every structure-level unsynchronized mutable root that is shared —
   reachable from a spawn closure or from a simulation entry point (the
   runner executes those on worker domains) — infer the guarding
   discipline from its access sites:

   - every access under the same [Mutex.protect] mutex  -> consistent;
   - state built from [Atomic.make]/[Mutex.create]       -> synchronized,
     skipped up front;
   - never written anywhere                              -> a read-only
     table, domain-confined by construction, skipped;
   - otherwise: mixed guarded/bare access, two different mutexes, or no
     discipline at all -> reported at the declaration site.

   A plain-unguarded root the per-file domain-capture rule already flags
   is suppressed here so one bug surfaces under one rule.  The second
   component of the result maps each issue to every spelling of the root
   seen in the source (canonical key, in-unit path, alias-qualified uses)
   so file-scoped symbol waivers match whichever spelling the author
   writes. *)

type access = {
  aline : int;
  aguard : string option;  (* normalized mutex key, [None] = bare *)
  awritten : bool;
  aspelled : string;  (* the path as written at the use site *)
  ashared : bool;  (* from a spawn closure or an entry-reachable node *)
}

type racc = {
  runit : Callgraph.unit_info;
  root : Ast_util.root;
  rpath : string;
  mutable accs : access list;
}

let check g =
  (* deterministic: lookup-only table keyed by node name, never iterated *)
  let index = Hashtbl.create 256 in
  let nodes =
    Callgraph.fold_funs g [] (fun acc ~fkey ~funit ~body -> (fkey, funit, body) :: acc)
    |> List.rev
  in
  List.iteri (fun i (k, _, _) -> Hashtbl.replace index k i) nodes;
  let n = List.length nodes in
  let node_refs =
    Array.of_list (List.map (fun (_, _, body) -> Ast_util.guarded_refs body) nodes)
  in
  let node_unit = Array.of_list (List.map (fun (_, u, _) -> u) nodes) in
  (* --- entry-reachability over resolved call edges --- *)
  let out = Array.make (max n 1) [] in
  Array.iteri
    (fun i refs ->
      List.iter
        (fun (path, _, _, _) ->
          match Callgraph.resolve g ~cur:node_unit.(i) path with
          | Callgraph.Fun { fkey; _ } -> (
              match Hashtbl.find_opt index fkey with
              | Some j when i <> j -> out.(i) <- j :: out.(i)
              | _ -> ())
          | _ -> ())
        refs)
    node_refs;
  let reachable = Array.make (max n 1) false in
  let q = Queue.create () in
  List.iter
    (fun k ->
      match Hashtbl.find_opt index k with
      | Some i when not reachable.(i) ->
          reachable.(i) <- true;
          Queue.add i q
      | _ -> ())
    (Callgraph.entry_keys g);
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    List.iter
      (fun j ->
        if not reachable.(j) then begin
          reachable.(j) <- true;
          Queue.add j q
        end)
      out.(i)
  done;
  (* --- collect access sites on unsynchronized roots --- *)
  let roots : (string * racc) list ref = ref [] in
  let record ~cur ~shared (path, line, guard, written) =
    match Callgraph.resolve g ~cur path with
    | Callgraph.Root { rkey; runit; root; rpath } when not root.Ast_util.rsync ->
        let r =
          match List.assoc_opt rkey !roots with
          | Some r -> r
          | None ->
              let r = { runit; root; rpath; accs = [] } in
              roots := (rkey, r) :: !roots;
              r
        in
        let aguard =
          Option.map
            (fun gp ->
              match Callgraph.resolve g ~cur gp with
              | Callgraph.Root { rkey; _ } -> rkey
              | Callgraph.Fun { fkey; _ } -> fkey
              | Callgraph.External p -> Ast_util.dotted p)
            guard
        in
        r.accs <-
          { aline = line; aguard; awritten = written; aspelled = Ast_util.dotted path; ashared = shared }
          :: r.accs
    | _ -> ()
  in
  Array.iteri
    (fun i refs -> List.iter (record ~cur:node_unit.(i) ~shared:reachable.(i)) refs)
    node_refs;
  List.iter
    (fun u ->
      List.iter
        (fun (_, closure) ->
          List.iter (record ~cur:u ~shared:true) (Ast_util.guarded_refs closure))
        u.Callgraph.ulocals.Ast_util.spawns)
    (Callgraph.unit_infos g);
  (* --- classify --- *)
  let results = ref [] in
  List.iter
    (fun (rkey, r) ->
      let shared = List.exists (fun a -> a.ashared) r.accs in
      let written = List.exists (fun a -> a.awritten) r.accs in
      if shared && written then begin
        let mutexes =
          List.filter_map (fun a -> a.aguard) r.accs |> List.sort_uniq String.compare
        in
        let bare = List.filter (fun a -> a.aguard = None) r.accs in
        let decl = Printf.sprintf "%s (%s, declared line %d)" rkey r.root.Ast_util.rkind r.root.Ast_util.rline in
        let fix =
          Printf.sprintf
            "guard every access with one mutex, switch to Atomic, or waive with (* \
             lint:ignore lock-discipline @%s *)"
            rkey
        in
        let finding =
          match (mutexes, bare) with
          | [], _ ->
              if List.mem rkey r.runit.Callgraph.ucaptured then None
                (* domain-capture already reports this root *)
              else
                Some
                  (Printf.sprintf
                     "shared mutable state %s is written from parallel simulation \
                      code with no guarding discipline (no mutex, not atomic, not \
                      domain-confined): %s"
                     decl fix)
          | _ :: _ :: _, _ ->
              Some
                (Printf.sprintf
                   "shared mutable state %s is guarded by %d different mutexes (%s) \
                    — a single mutex must own it: %s"
                   decl (List.length mutexes)
                   (String.concat ", " mutexes)
                   fix)
          | [ m ], _ :: _ ->
              Some
                (Printf.sprintf
                   "shared mutable state %s has mixed locking: %d access(es) under \
                    mutex %s but %d bare (e.g. line %d): %s"
                   decl
                   (List.length r.accs - List.length bare)
                   m (List.length bare)
                   (List.fold_left (fun acc a -> min acc a.aline) max_int bare)
                   fix)
          | [ _ ], [] -> None (* consistent: one mutex guards every access *)
        in
        match finding with
        | None -> ()
        | Some message ->
            let issue =
              {
                Report.file = r.runit.Callgraph.ufile;
                line = r.root.Ast_util.rline;
                rule = "lock-discipline";
                message;
              }
            in
            let spellings =
              rkey :: r.rpath :: List.map (fun a -> a.aspelled) r.accs
              |> List.sort_uniq String.compare
            in
            results := (issue, spellings) :: !results
      end)
    !roots;
  let results = List.sort compare !results in
  let issues = List.map fst results in
  let spellings_of issue =
    match List.assoc_opt issue results with Some l -> l | None -> []
  in
  (issues, spellings_of)

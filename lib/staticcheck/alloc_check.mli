(** Interprocedural allocation-effect analysis ([alloc-in-hot-path],
    [alloc-unknown-callee]).

    Classifies every structure-level binding into the lattice
    [NoAlloc < BoundedAlloc < Alloc] by a least-fixpoint solve over the
    cross-module call graph, seeded from allocating constructs (closure
    creation, tuple/record/array/list construction, partial application,
    [Printf]/[Format], [ref], string concatenation, boxed int64
    arithmetic, boxed-float returns crossing compilation-unit
    boundaries) and a whitelist of known allocation-free primitives.
    Roots are the hot-path entry points annotated [(* alloc: none *)];
    every function reachable from a root must solve to [NoAlloc], and
    each violation reports the allocating expression's line plus the
    full root -> ... -> site call chain.  [(* alloc: cold *)] marks a
    binding as a trusted cold path (amortized growth, off-by-default
    sanitizers), excluded from the traversal. *)

type alloc_class = NoAlloc | Bounded | Alloc

val class_name : alloc_class -> string
val rank : alloc_class -> int
val join : alloc_class -> alloc_class -> alloc_class
val leq : alloc_class -> alloc_class -> bool

val solve :
  n:int -> base:alloc_class array -> edges:(int * int) list -> alloc_class array
(** Least fixpoint of [cls i = join base(i) (join over (i,j) edges of
    cls j)]; exposed pure so the property tests can check monotonicity
    under edge addition directly. *)

val check : sources:(string * string) list -> Callgraph.t -> Report.issue list
(** Runs the analysis over the call graph.  [sources] maps the graph's
    file names to raw contents — annotations live in comments, which the
    parsetree does not carry.  Issues are sorted and deduplicated. *)

val annotated_keys : sources:(string * string) list -> Callgraph.t -> string list
(** The sorted [(* alloc: none *)] root keys ([Unit.dotted.path]) — the
    static half of the static/dynamic consistency contract. *)

val consistency : annotated:string list -> benched:string list -> string list
(** Cross-checks the annotated roots against the 0-words/op microbench
    targets: one message per root lacking a bench entry and per bench
    target lacking an annotation.  Empty iff the two views agree. *)

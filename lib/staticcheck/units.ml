type t = Mhz | Credits | Pct | Frac | Seconds | Joules | Watts

let to_string = function
  | Mhz -> "MHz"
  | Credits -> "credits"
  | Pct -> "percent"
  | Frac -> "fraction in [0,1]"
  | Seconds -> "seconds"
  | Joules -> "joules"
  | Watts -> "watts"

(* Credits are percentages of full-speed capacity (Eq. 4), so the two mix
   freely; everything else is pairwise incompatible. *)
let compatible a b =
  a = b
  || match (a, b) with Credits, Pct | Pct, Credits -> true | _ -> false

(* Longest suffixes first, so [_seconds] wins over [_s]. *)
let suffixes =
  [
    ("_credits", Credits);
    ("_credit", Credits);
    ("_percent", Pct);
    ("_pct", Pct);
    ("_fraction", Frac);
    ("_frac", Frac);
    ("_seconds", Seconds);
    ("_secs", Seconds);
    ("_sec", Seconds);
    ("_mhz", Mhz);
    ("_freq", Mhz);
    ("_joules", Joules);
    ("_watts", Watts);
    ("_s", Seconds);
    ("_j", Joules);
    ("_w", Watts);
  ]

let words =
  [
    ("mhz", Mhz);
    ("freq", Mhz);
    ("credit", Credits);
    ("credits", Credits);
    ("pct", Pct);
    ("frac", Frac);
    ("ratio", Frac);
    ("cf", Frac);
    ("joules", Joules);
    ("watts", Watts);
  ]

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  m <= n && String.sub s (n - m) m = suffix

let of_ident name =
  let name = String.lowercase_ascii name in
  match List.assoc_opt name words with
  | Some u -> Some u
  | None ->
      List.find_map
        (fun (suffix, u) -> if ends_with ~suffix name then Some u else None)
        suffixes

(* ------------------------------------------------------------------ *)

type entry = {
  path : string list;
  labels : (string * t) list;
  positional : (int * t) list;
  result : t option;
}

type registry = entry list

(* Merging, with the existing (seeded) entry winning on conflicts, so a
   suffix-less [.mli] declaration can never erase a hand-seeded unit. *)
let add registry entry =
  match List.partition (fun e -> e.path = entry.path) registry with
  | [], _ -> entry :: registry
  | old :: _, rest ->
      let keep_new assoc old_assoc =
        List.filter (fun (k, _) -> not (List.mem_assoc k old_assoc)) assoc
      in
      {
        path = entry.path;
        labels = old.labels @ keep_new entry.labels old.labels;
        positional = old.positional @ keep_new entry.positional old.positional;
        result = (match old.result with Some _ -> old.result | None -> entry.result);
      }
      :: rest

(* [entry.path] must be a suffix of the call path: a call can be more
   qualified than the entry ([Pas.Equations.load_at] matches
   [Equations.load_at]) but never less, so a bare [set] in unrelated code
   does not match [Cpufreq.set]. *)
let path_matches ~entry ~call =
  let rec prefix = function
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: xs, y :: ys -> String.equal x y && prefix (xs, ys)
  in
  prefix (List.rev entry, List.rev call)

let find_call registry call =
  List.find_opt (fun e -> path_matches ~entry:e.path ~call) registry

let e ?(labels = []) ?(positional = []) ?result path =
  { path; labels; positional; result }

(* Eq. (1)–(4) and the entry points that feed them.  Label names like
   [~initial] or [~t_max] carry no suffix, so these units cannot be
   inferred and must be seeded. *)
let builtin =
  [
    (* lib/core/equations.mli — the paper's proportionality model *)
    e [ "Equations"; "absolute_load" ]
      ~labels:[ ("global_load", Pct); ("ratio", Frac); ("cf", Frac) ]
      ~result:Pct;
    e [ "Equations"; "load_at" ]
      ~labels:[ ("absolute_load", Pct); ("ratio", Frac); ("cf", Frac) ]
      ~result:Pct;
    e [ "Equations"; "time_at" ]
      ~labels:[ ("t_max", Seconds); ("ratio", Frac); ("cf", Frac) ]
      ~result:Seconds;
    e [ "Equations"; "time_with_credit" ]
      ~labels:[ ("t_init", Seconds); ("c_init", Credits); ("c_new", Credits) ]
      ~result:Seconds;
    e [ "Equations"; "compensated_credit" ]
      ~labels:[ ("initial", Credits); ("ratio", Frac); ("cf", Frac) ]
      ~result:Credits;
    e [ "Equations"; "can_absorb" ]
      ~labels:[ ("absolute_load", Pct) ]
      ~positional:[ (2, Mhz) ];
    e [ "Equations"; "compute_new_freq" ]
      ~labels:[ ("absolute_load", Pct) ]
      ~result:Mhz;
    e [ "Equations"; "frequency_ratio" ] ~positional:[ (1, Mhz) ] ~result:Frac;
    (* lib/cpu/frequency.mli *)
    e [ "Frequency"; "ratio" ] ~positional:[ (1, Mhz) ] ~result:Frac;
    e [ "Frequency"; "min_freq" ] ~result:Mhz;
    e [ "Frequency"; "max_freq" ] ~result:Mhz;
    e [ "Frequency"; "nth" ] ~result:Mhz;
    e [ "Frequency"; "closest" ] ~positional:[ (1, Mhz) ] ~result:Mhz;
    e [ "Frequency"; "next_up" ] ~positional:[ (1, Mhz) ] ~result:Mhz;
    e [ "Frequency"; "next_down" ] ~positional:[ (1, Mhz) ] ~result:Mhz;
    (* lib/cpu/calibration.mli *)
    e [ "Calibration"; "cf" ] ~positional:[ (2, Mhz) ] ~result:Frac;
    e [ "Calibration"; "effective_speed" ] ~positional:[ (2, Mhz) ] ~result:Frac;
    e [ "Calibration"; "alpha_of_cf_min" ] ~labels:[ ("cf_min", Frac) ];
    (* lib/cpu/cpufreq.mli *)
    e [ "Cpufreq"; "current" ] ~result:Mhz;
    e [ "Cpufreq"; "set" ] ~positional:[ (1, Mhz) ];
    e [ "Cpufreq"; "mean_frequency" ] ~result:Mhz;
    e [ "Cpufreq"; "residency_ratio" ] ~positional:[ (1, Mhz) ] ~result:Frac;
    (* lib/core/pas_sched.mli / pas_smp.mli *)
    e [ "Pas_sched"; "last_absolute_load" ] ~result:Pct;
    e [ "Pas_sched"; "effective_credit" ] ~result:Credits;
    e [ "Pas_smp"; "last_absolute_load" ] ~result:Pct;
    e [ "Pas_smp"; "effective_credit" ] ~result:Credits;
    (* lib/cpu/power.mli *)
    e [ "Power"; "model" ] ~labels:[ ("idle_watts", Watts); ("max_watts", Watts) ];
    e [ "Power"; "watts" ] ~labels:[ ("freq", Mhz); ("util", Frac) ] ~result:Watts;
    e [ "Power"; "voltage_ratio" ] ~positional:[ (2, Mhz) ] ~result:Frac;
    e [ "Meter"; "record" ] ~labels:[ ("freq", Mhz); ("util", Frac) ];
    e [ "Meter"; "joules" ] ~result:Joules;
    e [ "Meter"; "mean_watts" ] ~result:Watts;
    (* lib/engine/sim_time.mli *)
    e [ "Sim_time"; "to_sec" ] ~result:Seconds;
    e [ "Sim_time"; "of_sec_f" ] ~positional:[ (0, Seconds) ];
    (* lib/experiments/rig.mli — scalar measurement rigs; run_pi returns
       the measured execution time (Table 2's "T (s)" columns) *)
    e [ "Rig"; "run_pi" ] ~result:Seconds;
  ]

(* ------------------------------------------------------------------ *)
(* Registry entries from an interface: walk every [val] declaration's
   arrow spine; labels declare their unit by name, the result declares
   its unit by the value's name. *)

let rec arrow_labels acc n ty =
  match ty.Parsetree.ptyp_desc with
  | Parsetree.Ptyp_arrow (label, _, rest) ->
      let acc, n =
        match label with
        | Asttypes.Labelled l | Asttypes.Optional l -> (
            match of_ident l with
            | Some u -> ((l, u) :: acc, n)
            | None -> (acc, n))
        | Asttypes.Nolabel -> (acc, n + 1)
      in
      arrow_labels acc n rest
  | _ -> acc

let of_interface ~module_name signature =
  List.filter_map
    (fun item ->
      match item.Parsetree.psig_desc with
      | Parsetree.Psig_value vd ->
          let name = vd.Parsetree.pval_name.Asttypes.txt in
          let labels = List.rev (arrow_labels [] 0 vd.Parsetree.pval_type) in
          (* [of_pct]-style constructors return the abstract type, not the
             unit their name mentions; only [to_…]/plain accessors count. *)
          let result =
            if String.length name >= 3 && String.sub name 0 3 = "of_" then None
            else of_ident name
          in
          if labels = [] && result = None then None
          else Some { path = [ module_name; name ]; labels; positional = []; result }
      | _ -> None)
    signature

(** Order-determinism of floating-point reductions ([float-fold-order]).

    Float [+.]/[*.] are not associative, so a reduction is reproducible
    only over a fixed iteration order.  Flags float accumulation inside
    [Hashtbl.fold]/[Hashtbl.iter] closures, and list/array/seq folds
    that accumulate floats while drawing from [Hashtbl.to_seq*] or from
    a parallel runner's [jobs] field.  Deliberate, order-audited
    reductions waive with [(* lint:ignore float-fold-order: reason *)]. *)

val rule : string

val check : file:string -> Parsetree.structure -> Report.issue list
(** Per-file scan; issues are reported at the application site. *)

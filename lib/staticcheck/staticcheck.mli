(** AST-level static analysis for the simulator (dune build @analyze).

    Where [lib/lint] pattern-matches blanked source text, this engine
    parses every compilation unit with the compiler's own parser
    ([compiler-libs]) and runs structural passes over the parsetrees:

    {b Per file}:

    - the {b unit-of-measure checker} ({!Unit_check}): [unit-arith],
      [unit-call], [unit-binding] — cross-unit arithmetic, comparisons,
      mismatched arguments to the Eq. (1)–(4) entry points and
      suffix-contradicting bindings, driven by the {!Units} vocabulary
      and a registry seeded from the [.mli] declarations it walks;
    - the {b domain-safety pass} ({!Domain_check}): [domain-capture],
      [experiment-state] — unsynchronized mutable state reachable from
      spawned closures, and structure-level mutable state in experiment
      modules;
    - the {b float-reduction pass} ({!Fold_check}): [float-fold-order] —
      non-associative float accumulation over hash-ordered iteration or
      parallel job results.

    {b Whole program}, over the cross-module call graph ({!Callgraph})
    of every unit analyzed together:

    - the {b determinism effect pass} ({!Effect_check}):
      [effect-nondet], [effect-ambient] — classifies every binding into
      [Pure < SeededRandom < Ambient < Nondet] and reports any
      non-seeded effect reachable from a simulation entry point, with
      the full call chain in the message;
    - the {b lock-discipline pass} ({!Lock_check}): [lock-discipline] —
      infers, per shared mutable root, whether accesses follow one
      discipline (one mutex, atomic, domain-confined/read-only) and
      flags mixed or unguarded access;
    - the {b allocation-effect pass} ({!Alloc_check}):
      [alloc-in-hot-path], [alloc-unknown-callee] — classifies every
      binding into [NoAlloc < BoundedAlloc < Alloc] and proves the
      [(* alloc: none *)]-annotated hot roots allocation-free, with the
      full root → … → site chain on every violation;
    - the {b ownership/escape pass} ({!Ownership_check}):
      [shard-escape], [shard-unknown-flow] — classifies every binding
      into [HostConfined < ShardConfined < BoundaryChannel < Escaping]
      and proves the mutable state of the host-state units confinable to
      one shard, with cross-host coupling declared by
      [(* shard: boundary *)] markers and the constructor → … →
      escape-site chain on every violation.

    A file that does not parse yields a single [parse-error] issue.
    Line waivers (["lint:ignore"]), file-scoped symbol waivers
    ([lint:ignore RULE @Path] — matching any source spelling of the
    root) and the issue/report format are shared with the text lint
    through [Report].  [analyze_main --explain RULE] ({!Explain})
    documents every rule. *)

module Units = Units
module Unit_check = Unit_check
module Domain_check = Domain_check
module Ast_util = Ast_util
module Callgraph = Callgraph
module Effect_check = Effect_check
module Lock_check = Lock_check
module Alloc_check = Alloc_check
module Ownership_check = Ownership_check
module Fold_check = Fold_check
module Explain = Explain
module Sarif = Sarif

val analyze_source :
  ?registry:Units.registry -> file:string -> string -> Report.issue list
(** Analyzes one [.ml] compilation unit given its file name and full
    contents — the whole-program passes run on the singleton unit, so a
    self-contained fixture exercises every rule.  [.mli] inputs yield no
    issues (interfaces only feed the registry).  [registry] defaults to
    {!Units.builtin}.  Waived lines are already filtered; issues are
    sorted. *)

val registry_of_paths : string list -> Units.registry
(** {!Units.builtin} extended with {!Units.of_interface} entries from
    every [.mli] under the given roots. *)

val analyze_paths : string list -> Report.issue list
(** Walks the given files and directories like [Lint.lint_paths], builds
    the registry from every interface found, then analyzes every
    implementation — per-file passes plus the whole-program effect,
    lock-discipline and allocation-effect passes over all units
    together.  Issues are sorted by file and line. *)

val analyze_paths_timed :
  ?jobs:int ->
  ?clock:(unit -> float) ->
  string list ->
  Report.issue list * (string * float) list
(** Like {!analyze_paths}, also returning per-pass wall times
    [("parse" | "effect" | "lock" | "alloc" | "ownership" | "perfile") *
    seconds].  [jobs > 1] runs the four interprocedural passes on their
    own domains; the issue list is byte-identical for every [jobs] value
    (passes are pure and joined in a fixed order).  [clock] supplies the
    timer (the driver passes [Unix.gettimeofday]; without it the times
    are all 0). *)

val alloc_roots_of_paths : string list -> string list
(** The sorted [(* alloc: none *)] hot-root keys under the given roots —
    what the static/dynamic consistency test compares against the
    microbench zero-alloc targets. *)

val shard_roots_of_paths : string list -> string list
(** The machine-readable confinement report behind
    [analyze --shard-roots]: one tab-separated [key kind class] line per
    mutable root of the host-state units under the given roots, sorted
    by key ({!Ownership_check.roots}). *)

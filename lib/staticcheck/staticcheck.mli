(** AST-level static analysis for the simulator (dune build @analyze).

    Where [lib/lint] pattern-matches blanked source text, this engine
    parses every compilation unit with the compiler's own parser
    ([compiler-libs]) and runs structural passes with per-rule state over
    the parsetree:

    - the {b unit-of-measure checker} ({!Unit_check}): [unit-arith],
      [unit-call], [unit-binding] — cross-unit arithmetic, comparisons,
      mismatched arguments to the Eq. (1)–(4) entry points
      ([Equations], [Pas_sched], [Cpufreq], [Frequency], …) and
      suffix-contradicting bindings, driven by the {!Units} vocabulary
      and a registry seeded from the [.mli] declarations it walks;
    - the {b domain-safety pass} ({!Domain_check}): [domain-capture],
      [experiment-state] — unsynchronized mutable state reachable from
      closures spawned on other domains, and structure-level mutable
      state in experiment modules, by reachability over the AST
      (module aliases and nesting resolved, [Atomic]/[Mutex] exempt).

    A file that does not parse yields a single [parse-error] issue.  The
    ["lint:ignore"] waiver marker and the issue/report format are shared
    with the text lint through [Report]. *)

module Units = Units
module Unit_check = Unit_check
module Domain_check = Domain_check
module Sarif = Sarif

val analyze_source :
  ?registry:Units.registry -> file:string -> string -> Report.issue list
(** Analyzes one [.ml] compilation unit given its file name and full
    contents; [.mli] inputs yield no issues (interfaces only feed the
    registry).  [registry] defaults to {!Units.builtin}.  Waived lines
    are already filtered; issues are sorted. *)

val registry_of_paths : string list -> Units.registry
(** {!Units.builtin} extended with {!Units.of_interface} entries from
    every [.mli] under the given roots. *)

val analyze_paths : string list -> Report.issue list
(** Walks the given files and directories like [Lint.lint_paths], builds
    the registry from every interface found, then analyzes every
    implementation.  Issues are sorted by file and line. *)

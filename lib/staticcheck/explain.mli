(** Rule documentation behind [analyze_main --explain RULE]: what each
    rule (text lint and AST analyzer alike) means, how to fix a finding
    and how to waive one. *)

val find : string -> string option
(** The explanation text for a rule id, if known. *)

val explain : string -> int
(** Prints the explanation (or the known-rule list to stderr) and
    returns the process exit code: 0 when the rule is known, 2
    otherwise. *)

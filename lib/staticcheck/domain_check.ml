open Ast_util

(* Unsynchronized roots reachable from one spawn closure, through
   structure-level and function-local helper bodies, module aliases
   resolved.  [locals] is keyed by base name only: the walk can look
   through [Domain.spawn worker] where [worker] is a [let] local to the
   enclosing function. *)
let reachable_roots ~decls ~locals closure =
  let visited = ref [] and found = ref [] in
  let rec visit paths =
    List.iter
      (fun p ->
        let p = resolve decls.aliases p in
        let key = dotted p in
        if not (List.mem key !visited) then begin
          visited := key :: !visited;
          (match List.assoc_opt key decls.roots with
          | Some r when not r.rsync ->
              if not (List.mem_assoc key !found) then found := (key, r) :: !found
          | Some _ | None -> ());
          (match p with
          | [ x ] -> (
              (match List.assoc_opt x locals.local_roots with
              | Some r when not r.rsync ->
                  if not (List.mem_assoc x !found) then found := (x, r) :: !found
              | Some _ | None -> ());
              match List.assoc_opt x locals.local_funs with
              | Some body -> visit (free_paths body)
              | None -> ())
          | _ -> ());
          match List.assoc_opt key decls.funs with
          | Some body -> visit (free_paths body)
          | None -> ()
        end)
      paths
  in
  visit (free_paths closure);
  List.rev !found

let check ~file str =
  let decls = scan_structure str in
  let locals = scan_expressions str in
  let issues = ref [] in
  let flag line rule message = issues := { Report.file; line; rule; message } :: !issues in
  (* --- domain-capture: reachability from every spawn closure --- *)
  List.iter
    (fun (spawn_line, closure) ->
      List.iter
        (fun (name, r) ->
          flag spawn_line "domain-capture"
            (Printf.sprintf
               "closure spawned on a domain reaches unsynchronized mutable state %s \
                (%s, line %d): share it through Atomic/Mutex or keep it inside the \
                closure"
               name r.rkind r.rline))
        (reachable_roots ~decls ~locals closure))
    locals.spawns;
  (* --- experiment-state: structure-level mutable state in experiment
     modules, at any nesting depth --- *)
  if in_experiments file then begin
    List.iter
      (fun (name, r) ->
        if not r.rsync then
          flag r.rline "experiment-state"
            (Printf.sprintf
               "structure-level mutable state (%s = %s …) in an experiment module: \
                runs must share no mutable globals so the parallel runner stays \
                deterministic"
               name r.rkind))
      decls.roots;
    List.iter
      (fun line ->
        flag line "experiment-state"
          "mutable record field declared in an experiment module: experiment state \
           must live inside the run closure, not at module level")
      decls.fields
  end;
  !issues

(* The structure-level root keys this pass reports for [str] — the
   lock-discipline pass suppresses its plain-unguarded finding for these,
   so one bug does not surface under two rules. *)
let captured_root_keys str =
  let decls = scan_structure str in
  let locals = scan_expressions str in
  List.concat_map
    (fun (_, closure) -> List.map fst (reachable_roots ~decls ~locals closure))
    locals.spawns
  |> List.sort_uniq String.compare

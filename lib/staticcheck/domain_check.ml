open Parsetree
module S = Set.Make (String)

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let rec flatten (l : Longident.t) =
  match l with
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (l, s) -> Option.map (fun p -> p @ [ s ]) (flatten l)
  | Longident.Lapply _ -> None

let strip_stdlib = function "Stdlib" :: (_ :: _ as rest) -> rest | p -> p

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Option.map strip_stdlib (flatten txt)
  | _ -> None

let dotted = String.concat "."

(* ------------------------------------------------------------------ *)
(* Mutable-state constructors.  Synchronized state (atomics, mutexes,
   arrays whose every cell is an atomic) is recorded but never flagged. *)

let unsync_ctors =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Buffer"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Array"; "make_matrix" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
  ]

let sync_ctors =
  [
    [ "Atomic"; "make" ];
    [ "Mutex"; "create" ];
    [ "Condition"; "create" ];
    [ "Semaphore"; "Counting"; "make" ];
    [ "Semaphore"; "Binary"; "make" ];
  ]

(* [Some (ctor, synchronized)] when [e] constructs mutable state. *)
let rec mutable_ctor e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> mutable_ctor e
  | Pexp_array (_ :: _) -> Some ("[| … |]", false)
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | None -> None
      | Some p ->
          if List.mem p sync_ctors then Some (dotted p, true)
          else if List.mem p unsync_ctors then
            let cell_sync =
              (* [Array.make n (Atomic.make …)] or
                 [Array.init n (fun _ -> Atomic.make …)]: the array itself
                 is only written at creation; the cells synchronize. *)
              (p = [ "Array"; "make" ] || p = [ "Array"; "init" ])
              && List.exists
                   (fun (_, a) ->
                     let cell =
                       match a.pexp_desc with
                       | Pexp_fun (_, _, _, body) -> body
                       | _ -> a
                     in
                     match mutable_ctor cell with
                     | Some (_, true) -> true
                     | _ -> false)
                   args
            in
            Some (dotted p, cell_sync)
          else None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* What the file declares: structure-level mutable roots (at any module
   nesting depth), module aliases, structure-level value bindings (the
   reachability graph's nodes), mutable record fields. *)

type root = { rline : int; rkind : string; rsync : bool }

type decls = {
  mutable roots : (string * root) list;  (** dotted path -> root *)
  mutable aliases : (string list * string list) list;
  mutable funs : (string * expression) list;  (** dotted path -> rhs *)
  mutable fields : int list;  (** lines of [mutable] record fields *)
}

let rec scan_structure prefix decls str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = name; _ } -> (
                  let path = prefix @ [ name ] in
                  match mutable_ctor vb.pvb_expr with
                  | Some (kind, sync) ->
                      decls.roots <-
                        ( dotted path,
                          { rline = line_of vb.pvb_loc; rkind = kind; rsync = sync } )
                        :: decls.roots
                  | None -> decls.funs <- (dotted path, vb.pvb_expr) :: decls.funs)
              | _ -> ())
            vbs
      | Pstr_module mb -> scan_module prefix decls mb
      | Pstr_recmodule mbs -> List.iter (scan_module prefix decls) mbs
      | Pstr_type (_, tds) ->
          List.iter
            (fun td ->
              match td.ptype_kind with
              | Ptype_record fields ->
                  List.iter
                    (fun f ->
                      if f.pld_mutable = Asttypes.Mutable then
                        decls.fields <- line_of f.pld_loc :: decls.fields)
                    fields
              | _ -> ())
            tds
      | _ -> ())
    str

and scan_module prefix decls mb =
  match mb.pmb_name.Asttypes.txt with
  | None -> ()
  | Some name -> (
      let rec strip me =
        match me.pmod_desc with Pmod_constraint (me, _) -> strip me | _ -> me
      in
      match (strip mb.pmb_expr).pmod_desc with
      | Pmod_structure str -> scan_structure (prefix @ [ name ]) decls str
      | Pmod_ident { txt; _ } -> (
          match flatten txt with
          | Some target -> decls.aliases <- (prefix @ [ name ], target) :: decls.aliases
          | None -> ())
      | _ -> ())

(* Chase module aliases: rewrite the longest alias prefix of [path],
   bounded so alias cycles cannot loop. *)
let resolve aliases path =
  let rec prefix_of a p =
    match (a, p) with
    | [], rest -> Some rest
    | x :: xs, y :: ys when String.equal x y -> prefix_of xs ys
    | _ -> None
  in
  let step path =
    List.fold_left
      (fun best (a, target) ->
        match (best, prefix_of a path) with
        | Some _, _ -> best
        | None, Some rest when rest <> [] -> Some (target @ rest)
        | None, _ -> None)
      None aliases
  in
  let rec chase path fuel =
    if fuel = 0 then path
    else match step path with Some path' -> chase path' (fuel - 1) | None -> path
  in
  chase path 8

(* ------------------------------------------------------------------ *)
(* Free identifiers of an expression: every referenced path whose head is
   not locally bound.  References made under [Mutex.protect] are skipped —
   that capture is synchronized by construction. *)

let pat_vars p =
  let vs = ref S.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> vs := S.add txt !vs
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  !vs

let is_mutex_protect f =
  match ident_path f with Some [ "Mutex"; "protect" ] -> true | _ -> false

let free_paths expr =
  let acc = ref [] in
  let env = ref S.empty in
  let rec handler iter e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match flatten txt with
        | Some [ x ] when S.mem x !env -> ()
        | Some p -> acc := strip_stdlib p :: !acc
        | None -> ())
    | Pexp_let (rf, vbs, body) ->
        let saved = !env in
        let bound =
          List.fold_left (fun s vb -> S.union s (pat_vars vb.pvb_pat)) S.empty vbs
        in
        if rf = Asttypes.Recursive then env := S.union saved bound;
        List.iter (fun vb -> iter.Ast_iterator.expr iter vb.pvb_expr) vbs;
        env := S.union saved bound;
        iter.Ast_iterator.expr iter body;
        env := saved
    | Pexp_fun (_, default, pat, body) ->
        let saved = !env in
        Option.iter (iter.Ast_iterator.expr iter) default;
        env := S.union saved (pat_vars pat);
        iter.Ast_iterator.expr iter body;
        env := saved
    | Pexp_function cases -> cases_handler iter cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        iter.Ast_iterator.expr iter scrut;
        cases_handler iter cases
    | Pexp_for (pat, lo, hi, _, body) ->
        let saved = !env in
        iter.Ast_iterator.expr iter lo;
        iter.Ast_iterator.expr iter hi;
        env := S.union saved (pat_vars pat);
        iter.Ast_iterator.expr iter body;
        env := saved
    | Pexp_apply (f, _) when is_mutex_protect f -> ()
    | _ -> Ast_iterator.default_iterator.expr iter e
  and cases_handler iter cases =
    List.iter
      (fun c ->
        let saved = !env in
        env := S.union saved (pat_vars c.pc_lhs);
        Option.iter (iter.Ast_iterator.expr iter) c.pc_guard;
        iter.Ast_iterator.expr iter c.pc_rhs;
        env := saved)
      cases
  in
  let it = { Ast_iterator.default_iterator with expr = handler } in
  it.expr it expr;
  !acc

(* ------------------------------------------------------------------ *)
(* Spawn sites and function-local mutable bindings, anywhere in the file. *)

let is_spawn path =
  let rec last2 = function
    | [ a; b ] -> Some (a, b)
    | _ :: rest -> last2 rest
    | [] -> None
  in
  match last2 path with
  | Some ("Domain", "spawn") | Some ("Thread", "create") -> true
  | _ -> false

let scan_expressions str =
  let spawns = ref [] and local_roots = ref [] in
  let local_fun_bodies = Hashtbl.create 8 in
  let handler iter e =
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = name; _ } -> (
                match mutable_ctor vb.pvb_expr with
                | Some (kind, sync) ->
                    local_roots :=
                      ( name,
                        { rline = line_of vb.pvb_loc; rkind = kind; rsync = sync } )
                      :: !local_roots
                | None -> (
                    match vb.pvb_expr.pexp_desc with
                    | Pexp_fun _ | Pexp_function _ ->
                        if not (Hashtbl.mem local_fun_bodies name) then
                          Hashtbl.add local_fun_bodies name vb.pvb_expr
                    | _ -> ()))
            | _ -> ())
          vbs
    | Pexp_apply (f, args) -> (
        match ident_path f with
        | Some p when is_spawn p -> (
            match List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args with
            | Some (_, closure) -> spawns := (line_of e.pexp_loc, closure) :: !spawns
            | None -> ())
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr iter e
  in
  let it = { Ast_iterator.default_iterator with expr = handler } in
  it.structure it str;
  (!spawns, !local_roots, local_fun_bodies)

(* ------------------------------------------------------------------ *)

let in_experiments path =
  List.exists (String.equal "experiments") (String.split_on_char '/' path)

let check ~file str =
  let decls = { roots = []; aliases = []; funs = []; fields = [] } in
  scan_structure [] decls str;
  (* [local_roots]/[local_fun_bodies] are keyed by base name only: the
     reachability walk can look through [Domain.spawn worker] where
     [worker] is a [let] local to the enclosing function. *)
  let spawns, local_roots, local_fun_bodies = scan_expressions str in
  let issues = ref [] in
  let flag line rule message = issues := { Report.file; line; rule; message } :: !issues in
  (* --- domain-capture: reachability from every spawn closure --- *)
  List.iter
    (fun (spawn_line, closure) ->
      let visited = Hashtbl.create 8 and found = Hashtbl.create 8 in
      let rec visit paths =
        List.iter
          (fun p ->
            let p = resolve decls.aliases p in
            let key = dotted p in
            if not (Hashtbl.mem visited key) then begin
              Hashtbl.add visited key ();
              (match List.assoc_opt key decls.roots with
              | Some r when not r.rsync -> Hashtbl.replace found (key, r.rline) r
              | Some _ | None -> ());
              (match p with
              | [ x ] -> (
                  (match List.assoc_opt x local_roots with
                  | Some r when not r.rsync -> Hashtbl.replace found (x, r.rline) r
                  | Some _ | None -> ());
                  match Hashtbl.find_opt local_fun_bodies x with
                  | Some body -> visit (free_paths body)
                  | None -> ())
              | _ -> ());
              match List.assoc_opt key decls.funs with
              | Some body -> visit (free_paths body)
              | None -> ()
            end)
          paths
      in
      visit (free_paths closure);
      Hashtbl.iter
        (fun (name, _) r ->
          flag spawn_line "domain-capture"
            (Printf.sprintf
               "closure spawned on a domain reaches unsynchronized mutable state %s \
                (%s, line %d): share it through Atomic/Mutex or keep it inside the \
                closure"
               name r.rkind r.rline))
        found)
    spawns;
  (* --- experiment-state: structure-level mutable state in experiment
     modules, at any nesting depth --- *)
  if in_experiments file then begin
    List.iter
      (fun (name, r) ->
        if not r.rsync then
          flag r.rline "experiment-state"
            (Printf.sprintf
               "structure-level mutable state (%s = %s …) in an experiment module: \
                runs must share no mutable globals so the parallel runner stays \
                deterministic"
               name r.rkind))
      decls.roots;
    List.iter
      (fun line ->
        flag line "experiment-state"
          "mutable record field declared in an experiment module: experiment state \
           must live inside the run closure, not at module level")
      decls.fields
  end;
  !issues

(** Unit-of-measure pass over the parsetree.

    Infers a unit for every expression it can (identifier and record-field
    suffixes, registry-known calls, unit-preserving operators — see
    {!Units}) and flags structural mixing:

    - [unit-arith]: [+], [-], [+.], [-.] or a comparison between operands
      of incompatible units (adding MHz to credits, comparing a fraction
      to a percentage, …).  Multiplication and division are exempt —
      that is how Eq. (1)–(4) legitimately combine quantities — but stay
      unit-transparent for inference: scaling by a fraction preserves the
      unit, and the quotient of two same-unit quantities is a fraction.
    - [unit-call]: an argument whose inferred unit contradicts what the
      callee declares — by registry entry ({!Units.builtin} plus
      [.mli]-derived entries) for both labelled and positional arguments,
      or by the label's own suffix for any labelled argument anywhere.
    - [unit-binding]: [let name_u = expr] where [expr]'s inferred unit
      contradicts the binding's suffix.

    The waiver filter is applied by the caller ([Staticcheck]). *)

val check :
  registry:Units.registry -> file:string -> Parsetree.structure -> Report.issue list

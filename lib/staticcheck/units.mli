(** The unit-of-measure vocabulary of the simulator.

    The hot paths juggle five incompatible physical quantities — frequency
    (MHz), CPU credits, load percentages, fractions in [\[0,1\]] (ratios,
    calibration factors), seconds, and the energy pair joules/watts.  The
    paper's Eq. (1)–(4) mix them only through multiplication by
    dimensionless ratios; adding or comparing across units is always a
    bug.  Units are carried by naming convention:

    - identifier {e suffixes}: [_mhz], [_credits]/[_credit], [_pct] /
      [_percent], [_frac]/[_fraction], [_s]/[_sec]/[_secs]/[_seconds],
      [_j]/[_joules], [_w]/[_watts];
    - {e well-known words}: [ratio] and [cf] are fractions, [mhz]/[credit]/
      [credits]/[pct]/[frac]/[joules]/[watts] denote themselves.

    Credits are denominated in percent of full-speed capacity (Eq. 4's
    compensated credit may exceed 100), so [Credits] and [Pct] are
    mutually {!compatible}; every other pair is not — in particular
    [Frac] vs [Pct], the off-by-×100 the PAS compensation rule
    [C_new = C_init / (ratio * cf)] is most easily corrupted by.

    A {!registry} maps known entry points ([Equations], [Pas_sched],
    [Cpufreq], [Frequency], [Calibration], [Power], …) to the units of
    their labelled and positional arguments and of their result.  The
    {!builtin} registry seeds the Eq. (1)–(4) signatures whose label
    names ([~initial], [~t_max], …) carry no suffix; {!of_interface}
    extends it from any [.mli], following the declaration conventions
    ([val duration_s : …] declares a seconds-valued result, a labelled
    argument [~freq_mhz:…] declares an MHz parameter). *)

type t = Mhz | Credits | Pct | Frac | Seconds | Joules | Watts

val to_string : t -> string
(** Human name used in messages, e.g. ["MHz"], ["fraction in [0,1]"]. *)

val compatible : t -> t -> bool
(** Equality, except [Credits]/[Pct] which are interchangeable. *)

val of_ident : string -> t option
(** Unit of an identifier or argument label, by suffix or well-known
    word; [None] when the name carries no unit. *)

type entry = {
  path : string list;
      (** Qualified name, e.g. [["Equations"; "compensated_credit"]].  A
          call site matches when the entry path is a suffix of the
          (possibly longer-qualified) call path. *)
  labels : (string * t) list;  (** units of labelled arguments *)
  positional : (int * t) list;
      (** units of positional arguments, 0-based over [Nolabel] slots *)
  result : t option;
}

type registry

val builtin : registry
(** The hand-seeded Eq. (1)–(4) entry points and the frequency /
    calibration / power accessors. *)

val add : registry -> entry -> registry

val find_call : registry -> string list -> entry option
(** Entry whose [path] is a suffix of the given call path; the call must
    be at least as qualified as the entry. *)

val of_interface : module_name:string -> Parsetree.signature -> entry list
(** Entries derived from [val] declarations: labelled-argument units from
    the label names, the result unit from the value's own name.  Only
    declarations contributing at least one unit are returned. *)

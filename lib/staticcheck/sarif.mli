(** SARIF 2.1.0 serialization of analyzer issues, for CI upload.

    One run, one [tool.driver] named after the analyzer, one result per
    issue with the rule id, the message and a [physicalLocation] region
    pointing at the flagged line.  The rule table is deduplicated from
    the issues present. *)

val to_string : tool:string -> Report.issue list -> string
(** The complete SARIF document, valid JSON. *)

val save : tool:string -> Report.issue list -> path:string -> unit

val of_string : string -> Report.issue list
(** Parses a SARIF document (hand-rolled JSON reader, no external
    dependency) back into issues — every result of every run.  Raises
    [Failure] on malformed input. *)

val load : string -> Report.issue list
(** {!of_string} on a file. *)

type diff = {
  fresh : Report.issue list;  (** in current but not in the baseline *)
  suppressed : int;  (** current findings matched by the baseline *)
  stale : int;  (** baseline entries no longer found (fixed) *)
}

val diff_baseline : baseline:Report.issue list -> current:Report.issue list -> diff
(** Matches findings by (file, rule, message), deliberately ignoring the
    line so unrelated edits that shift a waived legacy finding do not
    break CI.  Only [fresh] findings should fail a gated build. *)

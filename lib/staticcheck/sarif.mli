(** SARIF 2.1.0 serialization of analyzer issues, for CI upload.

    One run, one [tool.driver] named after the analyzer, one result per
    issue with the rule id, the message and a [physicalLocation] region
    pointing at the flagged line.  The rule table is deduplicated from
    the issues present. *)

val to_string : tool:string -> Report.issue list -> string
(** The complete SARIF document, valid JSON. *)

val save : tool:string -> Report.issue list -> path:string -> unit

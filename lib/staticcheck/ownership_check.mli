(** Interprocedural ownership/escape analysis for per-host state.

    Proves which mutable state reachable from the host-state units
    ([Host], [Smp_host], [Vm], [Domain]) is confinable to a single
    shard of the planned sharded cluster runtime.  Structure-level
    bindings are classified into the confinement lattice

    {v HostConfined < ShardConfined < BoundaryChannel < Escaping v}

    by a least-fixpoint solve over reversed {!Callgraph} edges (a callee
    inherits the worst class of its callers); every mutable field and
    contained mutable structure of the host-state records is then
    reported with the join of its accessors' classes.  Cross-host
    coupling points are declared with a standalone
    [(* shard: boundary *)] marker on (or directly above) the binding —
    the same grammar as [(* alloc: none *)].  Escape witnesses — host
    state reached from a cluster unit outside a declared boundary,
    host-bound locals captured by spawned closures or stored in global
    tables, host values returned through a simulation entry — are
    reported as [shard-escape]; flows the resolver cannot follow are
    [shard-unknown-flow].  Messages carry the shortest
    constructor/API -> ... -> escape-site call chain. *)

type confinement = Host_confined | Shard_confined | Boundary_channel | Escaping

val class_name : confinement -> string
(** ["HostConfined"], ["ShardConfined"], ["BoundaryChannel"],
    ["Escaping"]. *)

val rank : confinement -> int
val join : confinement -> confinement -> confinement
val leq : confinement -> confinement -> bool

val solve :
  n:int -> base:confinement array -> edges:(int * int) list -> confinement array
(** Least fixpoint of [cls i = join base.(i) (join over (i,j) in edges of
    cls j)].  Exposed separately so the property tests can check
    monotonicity (more edges never lower a class) and that the result is
    a fixpoint above [base]. *)

val boundary_keys : sources:(string * string) list -> Callgraph.t -> string list
(** Sorted node keys carrying a [(* shard: boundary *)] marker, scraped
    from [sources] ([(file, content)] pairs). *)

val check : sources:(string * string) list -> Callgraph.t -> Report.issue list
(** The [shard-escape] / [shard-unknown-flow] findings. *)

type root_report = {
  okey : string;  (** ["Host.t.handles"], ["Domain.next_id"] *)
  ofile : string;
  oline : int;
  okind : string;  (** what makes it a root: container kind, embed, … *)
  oclass : confinement;
}

val roots : sources:(string * string) list -> Callgraph.t -> root_report list
(** Confinement verdict for every mutable root of the host-state units,
    sorted by key — the machine-readable report behind
    [analyze --shard-roots]. *)

(* Cross-module call graph over the parsed compilation units.

   Nodes are structure-level bindings, named [Unit.path] after the unit's
   capitalized file name and the (possibly nested, dotted) binding path.
   References are resolved syntactically: module aliases are chased with
   [Ast_util.resolve], a path like [Analysis.Config.enabled] falls through
   the re-exporting unit into the canonical one, and [Stdlib]-qualified
   spellings are normalized.  Anything that does not land on a scanned
   binding stays [External] — the effect pass classifies those against its
   primitive tables. *)

type unit_info = {
  ufile : string;
  uname : string;
  udecls : Ast_util.decls;
  ulocals : Ast_util.locals;
  ucaptured : string list;
      (* full keys of roots the domain-capture rule already reports *)
}

type t = { units : (string * unit_info) list }

let module_name_of file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let key u path = u.uname ^ "." ^ path

let build parsed =
  let units =
    List.fold_left
      (fun acc (file, str) ->
        let uname = module_name_of file in
        if List.mem_assoc uname acc then acc (* first unit wins on collisions *)
        else
          let u =
            {
              ufile = file;
              uname;
              udecls = Ast_util.scan_structure str;
              ulocals = Ast_util.scan_expressions str;
              ucaptured = [];
            }
          in
          let u =
            { u with ucaptured = List.map (key u) (Domain_check.captured_root_keys str) }
          in
          (uname, u) :: acc)
      [] parsed
  in
  { units = List.rev units }

let unit_infos t = List.map snd t.units
let find_unit t name = List.assoc_opt name t.units

type target =
  | Fun of { fkey : string; funit : unit_info; body : Parsetree.expression }
  | Root of { rkey : string; runit : unit_info; root : Ast_util.root; rpath : string }
  | External of string list

let rec drop n = function
  | l when n = 0 -> l
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

let lookup u path_dotted =
  match List.assoc_opt path_dotted u.udecls.Ast_util.funs with
  | Some body -> Some (Fun { fkey = key u path_dotted; funit = u; body })
  | None -> (
      match List.assoc_opt path_dotted u.udecls.Ast_util.roots with
      | Some root ->
          Some (Root { rkey = key u path_dotted; runit = u; root; rpath = path_dotted })
      | None -> None)

(* Resolution: alias-chase in the current unit, try the full dotted path
   locally, then through any [include] recorded at a prefix of the path
   ([include Defaults] re-exports [Defaults]'s bindings at that level),
   then scan left-to-right for the first component naming a scanned unit
   and resolve the remainder there — recursing (fuel-bounded) so a
   re-exported alias like [Analysis.Config.enabled] lands on the
   canonical [Config.enabled]. *)
let rec strip_prefix pre path =
  match (pre, path) with
  | [], rest -> Some rest
  | x :: xs, y :: ys when String.equal x y -> strip_prefix xs ys
  | _ -> None

let resolve t ~cur path =
  let rec go cur path fuel =
    if fuel = 0 then External path
    else
      let path = Ast_util.resolve cur.udecls.Ast_util.aliases path in
      match lookup cur (Ast_util.dotted path) with
      | Some target -> target
      | None -> (
          let via_include =
            List.fold_left
              (fun found (ipre, target) ->
                match found with
                | Some _ -> found
                | None -> (
                    match strip_prefix ipre path with
                    | Some (_ :: _ as rest) -> (
                        match go cur (target @ rest) (fuel - 1) with
                        | External _ -> None
                        | t -> Some t)
                    | Some [] | None -> None))
              None cur.udecls.Ast_util.includes
          in
          match via_include with
          | Some target -> target
          | None -> (
              match path with
              | [] | [ _ ] -> External path
              | _ ->
                  let n = List.length path in
                  let rec scan i =
                    if i >= n - 1 then External path
                    else
                      match find_unit t (List.nth path i) with
                      | None -> scan (i + 1)
                      | Some u -> (
                          let rest =
                            Ast_util.resolve u.udecls.Ast_util.aliases (drop (i + 1) path)
                          in
                          match lookup u (Ast_util.dotted rest) with
                          | Some target -> target
                          | None -> (
                              match go u rest (fuel - 1) with
                              | External _ -> scan (i + 1)
                              | target -> target))
                  in
                  scan 0))
  in
  go cur path 8

let fold_funs t init f =
  List.fold_left
    (fun acc (_, u) ->
      List.fold_left
        (fun acc (path, body) -> f acc ~fkey:(key u path) ~funit:u ~body)
        acc u.udecls.Ast_util.funs)
    init t.units

(* Simulation entry points: the parallel runner's job bodies, the
   experiment registry, [Experiment.run], and — so single-file fixtures
   and new experiment modules are covered without registry edits — any
   top-level [run]/[experiment]/[all] in a file under an [experiments]
   directory. *)
let entry_keys t =
  let keys =
    List.concat_map
      (fun (_, u) ->
        List.filter_map
          (fun (path, _) ->
            let entry =
              match (u.uname, path) with
              | "Runner", ("run_all" | "run_job") -> true
              | "Registry", "all" -> true
              | "Experiment", "run" -> true
              | _, ("run" | "experiment" | "all") -> Ast_util.in_experiments u.ufile
              | _ -> false
            in
            if entry then Some (key u path) else None)
          u.udecls.Ast_util.funs)
      t.units
  in
  List.sort_uniq String.compare keys

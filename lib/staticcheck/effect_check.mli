(** Interprocedural determinism-effect analysis.

    Classifies every call-graph node into the effect lattice
    [Pure < SeededRandom < Ambient < Nondet] and reports every
    [Ambient]/[Nondet] primitive use reachable from a simulation entry
    point ({!Callgraph.entry_keys}).  Issues are located at the primitive
    use site — so a line waiver on that site works — and carry the full
    entry → … → node call chain in the message.

    Rules: [effect-nondet] (wall clock, global [Random], hash-order
    iteration, [Domain.self], GC counters) and [effect-ambient]
    (environment variables, host filesystem, machine topology, outside
    the blessed config-loader units). *)

type effect_class = Pure | Seeded | Ambient | Nondet

val class_name : effect_class -> string
val rank : effect_class -> int
val join : effect_class -> effect_class -> effect_class
val leq : effect_class -> effect_class -> bool

val solve :
  n:int ->
  base:effect_class array ->
  edges:(int * int) list ->
  effect_class array
(** Least fixpoint of effect propagation over a caller → callee edge
    list: [eff i = join base.(i) (join of eff j over edges (i, j))].
    Exposed separately so the property tests can check that the solution
    is monotone under edge addition. *)

val classify_external : string list -> (effect_class * string) option
(** Effect of a primitive path that resolves to no scanned binding
    ([Some (class, description)]), [None] when effect-free. *)

val check : Callgraph.t -> Report.issue list

(* Rule documentation behind [analyze_main --explain RULE].  One entry
   per rule either checker (text lint or AST analyzer) can emit, so the
   CI log's rule id is always one command away from its rationale and
   its waiver spelling. *)

let rules =
  [
    ( "parse-error",
      "The file is not parseable as OCaml, so no AST pass ran on it.\n\
       Fix the syntax error; the analyzer reports the parser's location." );
    ( "unit-arith",
      "Arithmetic or comparison mixes two different units of measure\n\
       (for example seconds + joules), inferred from the _s/_j/_pct/_mhz…\n\
       suffix vocabulary and the .mli registry.\n\
       Fix: convert explicitly, or rename a misleading binding.\n\
       Waive: (* lint:ignore unit-arith: reason *) on the flagged line." );
    ( "unit-call",
      "An argument's inferred unit contradicts the unit the callee's\n\
       signature (Equations, Pas_sched, Cpufreq, …) declares for that\n\
       position.  Fix the value or the name; waive with\n\
       (* lint:ignore unit-call: reason *)." );
    ( "unit-binding",
      "A binding's name suffix contradicts the unit of its right-hand\n\
       side (let power_j = …_watts).  Rename one side, or waive with\n\
       (* lint:ignore unit-binding: reason *)." );
    ( "domain-capture",
      "A closure passed to Domain.spawn/Thread.create reaches\n\
       unsynchronized mutable state declared outside it (directly,\n\
       through aliases, or through same-unit helper calls).  Two domains\n\
       mutating that state race.\n\
       Fix: share it through Atomic/Mutex, or keep it closure-local.\n\
       References under Mutex.protect are already exempt." );
    ( "experiment-state",
      "A module under experiments/ declares structure-level mutable\n\
       state or a mutable record field.  Experiment run closures execute\n\
       on arbitrary runner domains in arbitrary order; module-level\n\
       state makes runs order-dependent.\n\
       Fix: move the state inside the run closure." );
    ( "effect-nondet",
      "Code reachable from a simulation entry point (Runner.run_job,\n\
       Registry.all, Experiment.run, experiments/*) uses a primitive\n\
       whose result varies run to run: wall clock (Unix.gettimeofday,\n\
       Sys.time), global Random, hash-order iteration (Hashtbl.iter/\n\
       fold/to_seq), Domain.self, or GC counters.  Simulated results\n\
       must be a pure function of (seed, scale) or shard outputs can\n\
       never be compared.\n\
       The message shows the full entry → … → use call chain.\n\
       Fix: derive randomness with Prng.derive, sort before iterating,\n\
       hoist timing into the driver; waive a deliberate use with\n\
       (* lint:ignore effect-nondet: reason *) on the use site." );
    ( "effect-ambient",
      "Code reachable from a simulation entry point reads the host\n\
       environment: env vars (Sys.getenv), the filesystem (open_in,\n\
       Sys.readdir, …) or machine topology\n\
       (Domain.recommended_domain_count) outside the blessed config\n\
       loaders.  Same-seed runs on two hosts may then diverge.\n\
       Fix: read the host once in the driver and pass values in; waive\n\
       with (* lint:ignore effect-ambient: reason *) on the use site." );
    ( "lock-discipline",
      "A structure-level mutable root shared with parallel code has no\n\
       consistent guarding discipline: accesses mix Mutex.protect and\n\
       bare use, use two different mutexes, or are entirely unguarded\n\
       (and not Atomic, not read-only, not already reported by\n\
       domain-capture).  Reported at the declaration line.\n\
       Fix: guard every access with one mutex or switch to Atomic.\n\
       Waive for one root, file-scoped, under any of its spellings:\n\
       (* lint:ignore lock-discipline @Config.collected *)." );
    ( "float-eq",
      "Floating-point = or <> comparison; simulator quantities are\n\
       accumulated floats, exact comparison is order-dependent.\n\
       Fix: compare against a tolerance.\n\
       Waive: (* lint:ignore float-eq: reason *)." );
    ( "random",
      "Direct use of the global Random module; the parallel runner\n\
       requires experiment-keyed determinism.\n\
       Fix: use Prng.derive / Prng.derive_seed." );
    ( "assert-false",
      "assert false without an adjacent (* unreachable: … *) comment\n\
       explaining why the branch cannot happen." );
    ( "mutable-doc",
      "A mutable field or ref lacks the ownership comment that says\n\
       which domain/lock owns it." );
    ( "missing-mli",
      "A library module has no interface file; every lib/ module ships\n\
       a .mli so the public surface is deliberate." );
    ( "alloc-in-hot-path",
      "An allocating construct (closure, tuple/record/array/list\n\
       construction, partial application, Printf/Format, ref, string\n\
       concatenation, boxed int64 arithmetic, or a freshly computed\n\
       float returned across a compilation-unit boundary) is reachable\n\
       from a hot-path root annotated (* alloc: none *).  The message\n\
       shows the full root → … → site call chain; the zero-alloc\n\
       invariant is also enforced dynamically by bench/micro --check.\n\
       Fix: reuse a preallocated cell (Series.add_cell idiom), add a\n\
       local [@inline always] copy of a cross-unit float helper, or\n\
       hoist cold work behind an [@inline never] helper marked\n\
       (* alloc: cold *).\n\
       Waive: (* lint:ignore alloc-in-hot-path: reason *) on the line." );
    ( "alloc-unknown-callee",
      "A call reachable from an (* alloc: none *) hot root cannot be\n\
       proven allocation-free: the callee does not resolve to a scanned\n\
       binding or a known primitive, or the call is indirect through a\n\
       record field outside the dispatch contract (scheduler\n\
       pick/charge, workload advance/has_work/execute, queue key/cmp,\n\
       …).  Unknown callees default to allocating — the proof must\n\
       cover every call.\n\
       Fix: qualify the call so it resolves, extend the known-free\n\
       primitive table if it provably does not allocate, route dispatch\n\
       through a contract field, or mark the callee (* alloc: cold *).\n\
       Waive: (* lint:ignore alloc-unknown-callee: reason *)." );
    ( "hot-path-printf",
      "A Printf/Format/print_ call in a file that declares an\n\
       (* alloc: none *) hot path.  Formatted printing allocates and\n\
       tends to creep from debug sessions into tick code; keep it out\n\
       of hot-path files entirely (cold failure paths raise through\n\
       invalid_arg/failwith instead).\n\
       Fix: move the printing to a caller outside the hot module, or\n\
       raise with a static message.\n\
       Waive: (* lint:ignore hot-path-printf: reason *) on the line." );
    ( "shard-escape",
      "Host-owned mutable state (anything reachable from a Host.t,\n\
       Smp_host.t, Vm.t or Domain.t) can alias across hosts: a cluster\n\
       unit touches host state outside a declared boundary function, a\n\
       spawned closure captures a host-bound local (the shard-pool idiom\n\
       creates its hosts inside the worker), a simulation entry returns\n\
       host state, or a host value is stored in a global table.  The\n\
       planned sharded runtime gives each worker domain its own hosts\n\
       and calendar queue; escaping state would race across shards.\n\
       The message shows the constructor/API → … → escape-site chain.\n\
       Fix: confine the value to one host, or declare a legitimate\n\
       cross-host coupling point with (* shard: boundary *) on (or\n\
       directly above) the binding — the placement/migration epoch\n\
       channels in lib/cluster are the model.\n\
       Waive: (* lint:ignore shard-escape: reason *) on the line." );
    ( "shard-unknown-flow",
      "A host-bound value flows where the ownership pass cannot follow:\n\
       an argument to a call that does not resolve to any scanned\n\
       binding, or through an indirect record-field call.  Unknown\n\
       flows default to escaping — the confinement proof must cover\n\
       every flow.\n\
       Fix: qualify the call so it resolves to a scanned binding, or\n\
       keep host-owned values out of unresolved calls.\n\
       Waive: (* lint:ignore shard-unknown-flow: reason *)." );
    ( "float-fold-order",
      "Non-associative float accumulation (+. or *.) over an iteration\n\
       whose order is not fixed: a Hashtbl.fold/iter closure, a fold\n\
       over Hashtbl.to_seq*, or a fold over the parallel runner's jobs.\n\
       Hash order is salted per run and completion order is\n\
       scheduling-dependent, so the sum differs between runs.\n\
       Fix: fold a sorted snapshot, or accumulate in a fixed order\n\
       (the runner's jobs list is registry-ordered — say so).\n\
       Waive: (* lint:ignore float-fold-order: reason *) on the line." );
    ( "hashtbl-create",
      "A new Hashtbl.create without a nearby comment (same line or the\n\
       two lines above) containing \"deterministic\" or \"hash-order\"\n\
       acknowledging iteration-order discipline.  Hashtbl iteration\n\
       order depends on hash seeding and insertion history, which the\n\
       effect pass flags when simulation-reachable (effect-nondet);\n\
       lookup-only tables are fine — say so in the comment.\n\
       Fix: add e.g. (* deterministic: lookup-only, never iterated *),\n\
       or use an assoc list / Map for iterated collections." );
  ]

let find rule = List.assoc_opt rule rules

let explain rule =
  match find rule with
  | Some text ->
      Printf.printf "%s\n\n%s\n" rule text;
      0
  | None ->
      Printf.eprintf "unknown rule %S; known rules:\n" rule;
      List.iter (fun (r, _) -> Printf.eprintf "  %s\n" r) rules;
      2

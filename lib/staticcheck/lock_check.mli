(** Interprocedural lock-discipline inference.

    Infers, for every structure-level unsynchronized mutable root shared
    with parallel code (reachable from a spawn closure or a simulation
    entry point), the guarding discipline of its access sites: one mutex
    for every access (consistent), mixed guarded/bare access, two or more
    different mutexes, or no discipline at all.  Read-only tables (no
    syntactic write anywhere) and [Atomic]/[Mutex] state are exempt;
    plain-unguarded roots already reported by the per-file
    [domain-capture] rule are suppressed so one bug surfaces under one
    rule.

    Rule: [lock-discipline], reported at the root's declaration line.

    The second component maps each returned issue to every source
    spelling of its root (canonical [Unit.path] key, in-unit path,
    alias-qualified uses) — feed it to [Report.drop_waived ~symbols] so a
    file-scoped [lint:ignore lock-discipline @Path] waiver matches
    whichever spelling the author writes. *)

val check : Callgraph.t -> Report.issue list * (Report.issue -> string list)

(** Shared parsetree machinery for the AST analysis passes.

    Everything the per-file domain-safety pass ({!Domain_check}) and the
    interprocedural passes ({!Effect_check}, {!Lock_check}) agree on lives
    here: identifier flattening, the mutable-state constructor vocabulary,
    the structure scanner that collects a file's top-level declarations
    (mutable roots, module aliases, function bodies), module-alias
    resolution, and the free-reference walks. *)

val line_of : Location.t -> int

val flatten : Longident.t -> string list option
(** [A.B.c] as [["A"; "B"; "c"]]; [None] for functor applications. *)

val strip_stdlib : string list -> string list
(** Drops a leading ["Stdlib"] from a non-trivial path. *)

val ident_path : Parsetree.expression -> string list option
(** The flattened ([Stdlib]-stripped) path of an identifier expression. *)

val dotted : string list -> string

val in_experiments : string -> bool
(** Whether a file path has an ["experiments"] directory component. *)

val mutable_ctor : Parsetree.expression -> (string * bool) option
(** [Some (ctor, synchronized)] when the expression constructs mutable
    state: [ref]/[Hashtbl.create]/[Array.make]/array literals… are
    unsynchronized; [Atomic.make]/[Mutex.create]/… (and arrays whose
    every cell is an atomic) are synchronized. *)

type root = { rline : int; rkind : string; rsync : bool }

type field_decl = {
  ftype : string;  (** dotted path of the declaring record type *)
  fname : string;
  fline : int;
  fmut : bool;
  fheads : string list;
      (** outermost-to-innermost type-constructor heads through
          single-argument constructors: [Trace.t option] gives
          [["option"; "Trace.t"]] *)
}

type decls = {
  mutable roots : (string * root) list;  (** dotted path -> root *)
  mutable aliases : (string list * string list) list;
  mutable funs : (string * Parsetree.expression) list;  (** dotted path -> rhs *)
  mutable flines : (string * int) list;  (** dotted fun path -> binding line *)
  mutable fields : int list;  (** lines of [mutable] record fields *)
  mutable tfields : field_decl list;  (** every record-field declaration *)
  mutable includes : (string list * string list) list;
      (** [include M]: prefix where it appears -> included module path *)
}

val scan_structure : Parsetree.structure -> decls
(** Structure-level declarations at any module nesting depth; nested
    names are dotted ([Frame.add]), module aliases recorded for
    {!resolve}.  [include M] records an include entry (and an inline
    [include struct … end] is scanned in place); [include F (X)] is
    opaque. *)

val resolve : (string list * string list) list -> string list -> string list
(** Chases module aliases: rewrites the longest alias prefix, bounded so
    alias cycles cannot loop. *)

type guard = string list option
(** The innermost [Mutex.protect] mutex path guarding a reference. *)

val is_write_op : string list -> bool
(** Whether an applied identifier mutates its argument ([:=], [incr],
    [Hashtbl.replace], [Queue.push], …). *)

val free_paths : Parsetree.expression -> string list list
(** Free referenced paths; subtrees under [Mutex.protect] are skipped
    entirely (domain-capture semantics: that capture is synchronized by
    construction). *)

val free_refs : Parsetree.expression -> (string list * int) list
(** Free referenced paths with source lines, including references under
    [Mutex.protect] — the call-graph edge set of the effect analysis. *)

val guarded_refs : Parsetree.expression -> (string list * int * guard * bool) list
(** Like {!free_refs}, and each reference carries the innermost
    [Mutex.protect] mutex guarding it (if any) and whether the reference
    is a syntactic write ({!is_write_op} application argument or
    [Pexp_setfield] target) — the lock-discipline pass's evidence. *)

val is_spawn : string list -> bool
(** [Domain.spawn] / [Thread.create]. *)

type locals = {
  spawns : (int * Parsetree.expression) list;
  local_roots : (string * root) list;
  local_funs : (string * Parsetree.expression) list;
}

val scan_expressions : Parsetree.structure -> locals
(** Spawn sites, function-local mutable bindings and function-local
    helper bodies anywhere in the file, keyed by base name (first
    binding wins). *)

open Parsetree

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let rec flatten (l : Longident.t) =
  match l with
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (l, s) -> Option.map (fun p -> p @ [ s ]) (flatten l)
  | Longident.Lapply _ -> None

let strip_stdlib = function "Stdlib" :: (_ :: _ as rest) -> rest | p -> p

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Option.map strip_stdlib (flatten txt)
  | _ -> None

let rec last = function [ x ] -> Some x | _ :: rest -> last rest | [] -> None

let positionals args =
  List.filter_map (function Asttypes.Nolabel, a -> Some a | _ -> None) args

(* Unit-transparent single-argument wrappers. *)
let passthrough =
  [
    [ "float_of_int" ]; [ "int_of_float" ]; [ "truncate" ];
    [ "Float"; "of_int" ]; [ "Float"; "to_int" ]; [ "Float"; "abs" ];
    [ "Float"; "round" ]; [ "abs_float" ]; [ "abs" ]; [ "floor" ]; [ "ceil" ];
    [ "ref" ]; [ "!" ]; [ "~-" ]; [ "~-." ]; [ "~+" ]; [ "~+." ];
  ]

let merging =
  [
    [ "min" ]; [ "max" ]; [ "Float"; "min" ]; [ "Float"; "max" ];
    [ "+" ]; [ "-" ]; [ "+." ]; [ "-." ];
  ]

(* The unit of an expression, when the naming conventions and the registry
   pin one down.  [None] means "unknown", never "dimensionless". *)
let rec unit_of registry e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match flatten txt with
      | Some p -> Option.bind (last p) Units.of_ident
      | None -> None)
  | Pexp_field (_, { txt; _ }) -> (
      match flatten txt with
      | Some p -> Option.bind (last p) Units.of_ident
      | None -> None)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e)
  | Pexp_newtype (_, e) | Pexp_sequence (_, e) | Pexp_let (_, _, e)
  | Pexp_letmodule (_, _, e) ->
      unit_of registry e
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | None -> None
      | Some p -> (
          match (p, positionals args) with
          | _, [ a ] when List.mem p passthrough -> unit_of registry a
          | _, [ a; b ] when List.mem p merging -> (
              match (unit_of registry a, unit_of registry b) with
              | Some u, Some v -> if Units.compatible u v then Some u else None
              | (Some _ as u), None | None, (Some _ as u) -> u
              | None, None -> None)
          | ([ "*." ] | [ "*" ]), [ a; b ] -> (
              (* scaling by a fraction preserves the unit *)
              match (unit_of registry a, unit_of registry b) with
              | Some Units.Frac, (Some _ as u) | (Some _ as u), Some Units.Frac -> u
              | _ -> None)
          | ([ "/." ] | [ "/" ]), [ a; b ] -> (
              match (unit_of registry a, unit_of registry b) with
              | Some u, Some v when Units.compatible u v -> Some Units.Frac
              | (Some _ as u), Some Units.Frac -> u
              | _ -> None)
          | _, _ -> (
              match Units.find_call registry p with
              | Some entry -> entry.Units.result
              | None -> (
                  (* [to_sec]-style conversions declare their result unit *)
                  match last p with
                  | Some fn when String.length fn > 3 && String.sub fn 0 3 = "to_" ->
                      Units.of_ident fn
                  | _ -> None))))
  | _ -> None

let arith_ops = [ "+"; "-"; "+."; "-." ]
let cmp_ops = [ "="; "=="; "<>"; "!="; "<"; ">"; "<="; ">=" ]

let describe e u =
  let what =
    match ident_path e with
    | Some p -> String.concat "." p
    | None -> (
        match e.pexp_desc with
        | Pexp_field (_, { txt; _ }) -> (
            match flatten txt with Some p -> String.concat "." p | None -> "this operand")
        | _ -> "this operand")
  in
  Printf.sprintf "%s : %s" what (Units.to_string u)

let check ~registry ~file str =
  let issues = ref [] in
  let flag line rule message = issues := { Report.file; line; rule; message } :: !issues in
  let check_apply e f args =
    (* cross-unit arithmetic and comparison *)
    (match (ident_path f, positionals args) with
    | Some [ op ], [ a; b ] when List.mem op arith_ops || List.mem op cmp_ops -> (
        match (unit_of registry a, unit_of registry b) with
        | Some u, Some v when not (Units.compatible u v) ->
            flag (line_of e.pexp_loc) "unit-arith"
              (Printf.sprintf
                 "(%s) mixes incompatible units: %s vs %s — convert explicitly or \
                  waive with (* %s unit-arith *)"
                 op (describe a u) (describe b v) Report.waiver)
        | _ -> ())
    | _ -> ());
    (* argument units against the registry and against label suffixes *)
    let entry = Option.bind (ident_path f) (Units.find_call registry) in
    let callee =
      match ident_path f with Some p -> String.concat "." p | None -> "call"
    in
    let pos_index = ref (-1) in
    List.iter
      (fun (label, arg) ->
        match label with
        | Asttypes.Labelled l | Asttypes.Optional l -> (
            let expected =
              match entry with
              | Some en -> (
                  match List.assoc_opt l en.Units.labels with
                  | Some u -> Some u
                  | None -> Units.of_ident l)
              | None -> Units.of_ident l
            in
            match (expected, unit_of registry arg) with
            | Some u, Some v when not (Units.compatible u v) ->
                flag (line_of arg.pexp_loc) "unit-call"
                  (Printf.sprintf
                     "~%s of %s expects %s, got %s — convert explicitly or waive \
                      with (* %s unit-call *)"
                     l callee (Units.to_string u) (describe arg v) Report.waiver)
            | _ -> ())
        | Asttypes.Nolabel -> (
            incr pos_index;
            match entry with
            | Some en -> (
                match List.assoc_opt !pos_index en.Units.positional with
                | Some u -> (
                    match unit_of registry arg with
                    | Some v when not (Units.compatible u v) ->
                        flag (line_of arg.pexp_loc) "unit-call"
                          (Printf.sprintf
                             "argument %d of %s expects %s, got %s — convert \
                              explicitly or waive with (* %s unit-call *)"
                             (!pos_index + 1) callee (Units.to_string u)
                             (describe arg v) Report.waiver)
                    | _ -> ())
                | None -> ())
            | None -> ()))
      args
  in
  let expr_handler iter e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> check_apply e f args
    | _ -> ());
    Ast_iterator.default_iterator.expr iter e
  in
  let vb_handler iter vb =
    (match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = name; _ } -> (
        match (Units.of_ident name, unit_of registry vb.pvb_expr) with
        | Some u, Some v when not (Units.compatible u v) ->
            flag (line_of vb.pvb_loc) "unit-binding"
              (Printf.sprintf
                 "%s is bound to a value in %s but its suffix declares %s — rename \
                  the binding or convert, or waive with (* %s unit-binding *)"
                 name (Units.to_string v) (Units.to_string u) Report.waiver)
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.value_binding iter vb
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = expr_handler;
      value_binding = vb_handler;
    }
  in
  it.structure it str;
  !issues

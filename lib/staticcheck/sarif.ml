let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ~tool issues =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rules =
    List.sort_uniq String.compare (List.map (fun i -> i.Report.rule) issues)
  in
  add "{\n";
  add "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  add "  \"version\": \"2.1.0\",\n";
  add "  \"runs\": [\n";
  add "    {\n";
  add "      \"tool\": {\n";
  add "        \"driver\": {\n";
  add "          \"name\": \"%s\",\n" (escape tool);
  add "          \"rules\": [\n";
  List.iteri
    (fun i r ->
      add "            {\"id\": \"%s\"}%s\n" (escape r)
        (if i = List.length rules - 1 then "" else ","))
    rules;
  add "          ]\n";
  add "        }\n";
  add "      },\n";
  add "      \"results\": [\n";
  List.iteri
    (fun i issue ->
      add
        "        {\"ruleId\": \"%s\", \"level\": \"error\", \"message\": {\"text\": \
         \"%s\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": \
         {\"uri\": \"%s\"}, \"region\": {\"startLine\": %d}}}]}%s\n"
        (escape issue.Report.rule) (escape issue.Report.message)
        (escape issue.Report.file) issue.Report.line
        (if i = List.length issues - 1 then "" else ","))
    issues;
  add "      ]\n";
  add "    }\n";
  add "  ]\n";
  add "}\n";
  Buffer.contents buf

let save ~tool issues ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~tool issues))

(* ------------------------------------------------------------------ *)
(* Reading SARIF back: a minimal JSON parser (no external dependency —
   same policy as the manifest reader) sufficient for documents this
   module writes, and a baseline differ for CI. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "SARIF: %s at offset %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "bad \\u escape";
                   let code =
                     int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                   in
                   pos := !pos + 4;
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else Buffer.add_char buf '?' (* non-ASCII: lossy, unused *)
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            loop ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let issue_of_result r =
  let str = function Some (Str s) -> Some s | _ -> None in
  let rule = str (member "ruleId" r) in
  let message = str (Option.bind (member "message" r) (member "text")) in
  let location =
    match member "locations" r with Some (Arr (l :: _)) -> Some l | _ -> None
  in
  let physical = Option.bind location (member "physicalLocation") in
  let file = str (Option.bind physical (member "artifactLocation") |> fun a -> Option.bind a (member "uri")) in
  let line =
    match Option.bind physical (member "region") |> fun r -> Option.bind r (member "startLine") with
    | Some (Num f) -> int_of_float f
    | _ -> 1
  in
  match (rule, message, file) with
  | Some rule, Some message, Some file -> Some { Report.file; line; rule; message }
  | _ -> None

let of_string text =
  let doc = parse_json text in
  match member "runs" doc with
  | Some (Arr runs) ->
      List.concat_map
        (fun run ->
          match member "results" run with
          | Some (Arr results) -> List.filter_map issue_of_result results
          | _ -> [])
        runs
  | _ -> failwith "SARIF: no runs array"

let load path = of_string (Report.read_file path)

(* Baseline comparison for CI: an issue is "the same finding" when file,
   rule and message all match — the line is deliberately ignored so that
   unrelated edits shifting a legacy finding do not break the build. *)
type diff = { fresh : Report.issue list; suppressed : int; stale : int }

let diff_baseline ~baseline ~current =
  let key i = (i.Report.file, i.Report.rule, i.Report.message) in
  let bkeys = List.map key baseline in
  let ckeys = List.map key current in
  {
    fresh = List.filter (fun i -> not (List.mem (key i) bkeys)) current;
    suppressed = List.length (List.filter (fun i -> List.mem (key i) bkeys) current);
    stale = List.length (List.filter (fun k -> not (List.mem k ckeys)) bkeys);
  }

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ~tool issues =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rules =
    List.sort_uniq String.compare (List.map (fun i -> i.Report.rule) issues)
  in
  add "{\n";
  add "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  add "  \"version\": \"2.1.0\",\n";
  add "  \"runs\": [\n";
  add "    {\n";
  add "      \"tool\": {\n";
  add "        \"driver\": {\n";
  add "          \"name\": \"%s\",\n" (escape tool);
  add "          \"rules\": [\n";
  List.iteri
    (fun i r ->
      add "            {\"id\": \"%s\"}%s\n" (escape r)
        (if i = List.length rules - 1 then "" else ","))
    rules;
  add "          ]\n";
  add "        }\n";
  add "      },\n";
  add "      \"results\": [\n";
  List.iteri
    (fun i issue ->
      add
        "        {\"ruleId\": \"%s\", \"level\": \"error\", \"message\": {\"text\": \
         \"%s\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": \
         {\"uri\": \"%s\"}, \"region\": {\"startLine\": %d}}}]}%s\n"
        (escape issue.Report.rule) (escape issue.Report.message)
        (escape issue.Report.file) issue.Report.line
        (if i = List.length issues - 1 then "" else ","))
    issues;
  add "      ]\n";
  add "    }\n";
  add "  ]\n";
  add "}\n";
  Buffer.contents buf

let save ~tool issues ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~tool issues))

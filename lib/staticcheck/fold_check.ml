(* Order-determinism of floating-point reductions.

   Float addition and multiplication are not associative, so a reduction
   is only reproducible if its iteration order is fixed.  Two orders in
   this codebase are not: [Hashtbl] iteration (hash-order, salted per
   run) and the parallel runner's per-job results (completion order of
   worker domains — the [jobs] array is ordered by job id, but folding a
   collection derived from a parallel run deserves a declared order).
   This per-file pass flags float accumulation over either: a
   [Hashtbl.fold]/[Hashtbl.iter] whose closure applies [+.] or [*.], and
   a list/array/seq fold or iteration that both accumulates floats and
   draws from a hash-ordered sequence ([Hashtbl.to_seq*]) or a [jobs]
   field.  Deliberate reductions waive with
   [(* lint:ignore float-fold-order: reason *)]. *)

open Parsetree

let rule = "float-fold-order"

let hash_heads = [ "Hashtbl.fold"; "Hashtbl.iter" ]

let fold_heads =
  [
    "List.fold_left"; "List.fold_right"; "Array.fold_left"; "Array.fold_right";
    "Seq.fold_left"; "List.iter"; "Array.iter"; "Seq.iter";
  ]

let hash_seq_heads =
  [ "Hashtbl.to_seq"; "Hashtbl.to_seq_keys"; "Hashtbl.to_seq_values" ]

let float_ops = [ [ "+." ]; [ "*." ] ]

let contains pred e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if pred e then found := true;
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let accumulates_float e =
  contains
    (fun e ->
      match Ast_util.ident_path e with
      | Some p -> List.mem p float_ops
      | None -> false)
    e

let head_in heads e =
  match Ast_util.ident_path e with
  | Some p -> List.mem (Ast_util.dotted p) heads
  | None -> false

let draws_hash_order e = contains (head_in hash_seq_heads) e

let draws_job_results e =
  contains
    (fun e ->
      match e.pexp_desc with
      | Pexp_field (_, lid) -> (
          match Ast_util.flatten lid.Asttypes.txt with
          | Some p -> (
              match List.rev p with "jobs" :: _ -> true | _ -> false)
          | None -> false)
      | _ -> false)
    e

let check ~file str =
  let issues = ref [] in
  let report line message =
    issues := { Report.file; line; rule; message } :: !issues
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) when head_in hash_heads f ->
              if List.exists (fun (_, a) -> accumulates_float a) args then
                report
                  (Ast_util.line_of e.pexp_loc)
                  "non-associative float accumulation over hash-ordered iteration; \
                   the result depends on the salted hash order: fold a sorted \
                   snapshot instead, or waive with (* lint:ignore float-fold-order: \
                   reason *)"
          | Pexp_apply (f, args) when head_in fold_heads f ->
              let acc = List.exists (fun (_, a) -> accumulates_float a) args in
              let hash = List.exists (fun (_, a) -> draws_hash_order a) args in
              let jobs = List.exists (fun (_, a) -> draws_job_results a) args in
              if acc && (hash || jobs) then
                report
                  (Ast_util.line_of e.pexp_loc)
                  (if hash then
                     "non-associative float accumulation over a hash-ordered \
                      sequence; the result depends on the salted hash order: fold a \
                      sorted snapshot instead, or waive with (* lint:ignore \
                      float-fold-order: reason *)"
                   else
                     "non-associative float accumulation over parallel job results; \
                      state the iteration order (job-id order is deterministic, \
                      completion order is not), then waive with (* lint:ignore \
                      float-fold-order: reason *)")
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it str;
  List.rev !issues

(* Interprocedural allocation-effect analysis.

   Every structure-level binding is a call-graph node; nodes are
   classified into an allocation lattice

       NoAlloc  <  BoundedAlloc  <  Alloc

   seeded from a table of allocating constructs (closure creation,
   tuple/record/array/list construction, partial application,
   Printf/Format, ref cells, string concatenation, boxed int64
   arithmetic) and a whitelist of known allocation-free primitives
   (Atomic.get/set, int/float arithmetic on locals, mutable-field
   stores, Array.unsafe_get/set).  [BoundedAlloc] is the one-box-per-call
   class: a freshly computed float returned across a compilation-unit
   boundary is boxed by the callee under dune's dev-profile [-opaque]
   (same-unit calls inline and stay unboxed — the reason the hot modules
   carry local [sec_of] copies of [Sim_time.to_sec]).

   Roots are hot-path entry points annotated [(* alloc: none *)] on the
   binding line or the line above.  Classes propagate caller <- callee to
   a least fixpoint; every function reachable from a root must solve to
   [NoAlloc], and each offending construct is reported at its source line
   with the full root -> ... -> site call chain ([alloc-in-hot-path]), or
   as [alloc-unknown-callee] when a callee cannot be resolved or an
   indirect call goes through a record field outside the dispatch
   contract below.  [(* alloc: cold *)] excludes a binding from the
   traversal: amortized growth ([Vec.grow], [Heap.grow]), off-by-default
   sanitizer/trace paths, and arrival-side [Prng] draws are declared cold
   at their definition and trusted at call sites.

   Deliberate approximations (the dynamic gate [bench/micro --check]
   covers what the model trusts):

   - float/int64 {e arguments} crossing a call boundary also box; the
     tree's cell idiom ([Series.add_cell], [Vec.Floats.push_cell]) moves
     floats through preallocated mutable records instead, so the model
     only tracks boxed {e returns} via the [float_returning] table;
   - indirect calls through the contract field labels (scheduler [pick]/
     [charge], workload [advance]/[execute], queue [key]/[cmp], ...) are
     trusted at the call site; the implementations the benches exercise
     carry their own [(* alloc: none *)] annotations and are proven as
     independent roots;
   - a local [ref] is free when [Simplif.eliminate_ref] provably unboxes
     it: used only via [!]/[:=]/[incr]/[decr], never under a nested
     closure, never passed or returned. *)

open Parsetree

type alloc_class = NoAlloc | Bounded | Alloc

let class_name = function
  | NoAlloc -> "NoAlloc"
  | Bounded -> "BoundedAlloc"
  | Alloc -> "Alloc"

let rank = function NoAlloc -> 0 | Bounded -> 1 | Alloc -> 2
let join a b = if rank a >= rank b then a else b
let leq a b = rank a <= rank b

(* Least fixpoint of [cls i = join base(i) (join over edges (i,j) of
   cls j)]; standalone over plain arrays so the property tests can check
   monotonicity under edge addition directly (same shape as
   [Effect_check.solve]). *)
let solve ~n ~base ~edges =
  let cls = Array.copy base in
  ignore n;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (i, j) ->
        let v = join cls.(i) cls.(j) in
        if rank v > rank cls.(i) then begin
          cls.(i) <- v;
          changed := true
        end)
      edges
  done;
  cls

(* ------------------------------------------------------------------ *)
(* Annotation grammar: [(* alloc: none *)] / [(* alloc: cold *)] on the
   binding line or the line directly above ([(* alloc: cold: reason *)]
   also matches).  Comments are invisible to the parsetree, so the raw
   source is threaded in and matched against the binding lines recorded
   in [Ast_util.decls.flines]. *)

type marker = Hot | Cold

let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub line i m = sub || loop (i + 1)) in
  m > 0 && loop 0

let markers_of_source content =
  let lines = Array.of_list (String.split_on_char '\n' content) in
  let get ln = if ln < 1 || ln > Array.length lines then "" else lines.(ln - 1) in
  (* On the binding line a substring suffices (trailing marker after the
     [let]); on the line above, the marker must open the line's comment —
     prose mentioning the grammar (docs, this very file) must not turn
     bindings into roots. *)
  let classify l =
    if contains_sub l "alloc: none" then Some Hot
    else if contains_sub l "alloc: cold" then Some Cold
    else None
  in
  let leading l =
    let l = String.trim l in
    let starts p =
      String.length l >= String.length p && String.sub l 0 (String.length p) = p
    in
    if starts "(* alloc: none" then Some Hot
    else if starts "(* alloc: cold" then Some Cold
    else None
  in
  fun ln ->
    match classify (get ln) with Some m -> Some m | None -> leading (get (ln - 1))

(* ------------------------------------------------------------------ *)
(* Primitive tables. *)

(* Indirect calls through these record-field labels are the hot dispatch
   contract: scheduler/workload/queue plumbing whose implementations are
   proven as independent annotated roots (Sched_credit.pick/charge) or
   covered by the dynamic gate. *)
let contract_labels =
  [
    "pick"; "charge"; "on_account_period"; "advance"; "has_work"; "execute";
    "key"; "cmp"; "action";
  ]

(* Applications of these heads never return: the whole subtree is a
   failure path, skipped including arguments (so
   [invalid_arg (Printf.sprintf ...)] guards stay free). *)
let divergent_prims = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit" ]

(* Known allocation-free application heads (dotted, [Stdlib]-stripped).
   Int/float arithmetic is free because intermediate floats stay unboxed
   inside a function body; boxing happens only at call/store boundaries,
   which the walker models separately. *)
let free_prims =
  [
    (* int/float/bool operators *)
    "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "succ"; "pred"; "abs"; "+."; "-."; "*."; "/."; "**"; "~-"; "~-."; "~+"; "~+.";
    "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "compare"; "min"; "max";
    "not"; "&&"; "||"; "&"; "or"; "ignore"; "fst"; "snd";
    (* ref cell access (the cell's creation is what allocates) *)
    "!"; ":="; "incr"; "decr";
    (* application operators are rewritten, kept for direct partial use *)
    "@@"; "|>";
    (* unboxed float intrinsics *)
    "sqrt"; "exp"; "log"; "log1p"; "log10"; "expm1"; "sin"; "cos"; "tan";
    "atan"; "atan2"; "asin"; "acos"; "sinh"; "cosh"; "tanh"; "floor"; "ceil";
    "copysign"; "mod_float"; "ldexp"; "float_of_int"; "float"; "int_of_float";
    "truncate"; "int_of_char"; "char_of_int";
    (* module primitives *)
    "Array.length"; "Array.get"; "Array.set"; "Array.unsafe_get";
    "Array.unsafe_set"; "Array.fill"; "Array.blit";
    "Bytes.length"; "Bytes.get"; "Bytes.set"; "Bytes.unsafe_get";
    "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit"; "Bytes.unsafe_fill";
    "Bytes.unsafe_blit";
    "String.length"; "String.get"; "String.unsafe_get"; "String.equal";
    "String.compare";
    "Atomic.get"; "Atomic.set"; "Atomic.incr"; "Atomic.decr";
    "Atomic.fetch_and_add"; "Atomic.compare_and_set"; "Atomic.exchange";
    "Int.compare"; "Int.equal"; "Int.min"; "Int.max"; "Int.abs";
    "Int64.to_int"; "Char.code";
    "Float.compare"; "Float.equal"; "Float.is_nan"; "Float.is_finite";
    "Float.is_integer"; "Float.of_int"; "Float.to_int";
    "Mutex.lock"; "Mutex.unlock";
    "Queue.is_empty"; "Queue.length"; "Queue.peek"; "Queue.pop"; "Queue.take";
    "Queue.clear";
    "Hashtbl.find"; "Hashtbl.mem"; "Hashtbl.length";
    "List.length"; "List.mem"; "List.memq"; "List.hd"; "List.tl"; "List.iter";
    "Option.is_none"; "Option.is_some"; "Option.get"; "Option.value";
    "Sys.opaque_identity";
  ]

(* Known allocators, for sharper messages than the unknown-callee
   default (exact names, then prefixes). *)
let alloc_prims =
  [
    ("^", "string concatenation");
    ("@", "list append");
    ("ref", "ref cell allocation");
    ("string_of_int", "int-to-string conversion");
    ("string_of_float", "float-to-string conversion");
    ("string_of_bool", "bool-to-string conversion");
    ("Float.min", "Float.min boxes its float arguments (use a comparison chain)");
    ("Float.max", "Float.max boxes its float arguments (use a comparison chain)");
    ("Gc.allocated_bytes", "Gc.allocated_bytes returns a fresh boxed float");
    ("Hashtbl.find_opt", "Hashtbl.find_opt wraps the result in Some");
    ("Queue.push", "Queue.push allocates a queue cell");
    ("Queue.add", "Queue.add allocates a queue cell");
  ]

let alloc_prefixes =
  [
    ("Printf.", "formatted printing allocates");
    ("Format.", "formatted printing allocates");
    ("Int64.", "boxed int64 arithmetic");
    ("Int32.", "boxed int32 arithmetic");
    ("Nativeint.", "boxed nativeint arithmetic");
    ("Buffer.", "buffer building allocates");
    ("List.", "list building allocates");
    ("Array.", "array building allocates");
    ("String.", "string building allocates");
    ("Bytes.", "bytes building allocates");
    ("Hashtbl.", "hash-table mutation allocates");
    ("Option.", "option building allocates");
  ]

(* Scanned functions whose result is a freshly computed float: calling
   them across a compilation-unit boundary boxes the return under
   [-opaque].  Functions returning an already-boxed float (cached
   [Processor.speed]/[ratio]/[cf] fields, [Smp.speed_of_core]) do not
   allocate and are deliberately absent. *)
let float_returning =
  [
    "Sim_time.to_sec"; "Sim_time.to_ms";
    "Prng.unit_float"; "Prng.float"; "Prng.uniform"; "Prng.exponential";
    "Prng.gaussian"; "Prng.pareto";
    "Stats.Running.mean"; "Stats.Running.variance"; "Stats.Running.stddev";
    "Vec.Floats.sum"; "Vec.Floats.mean";
  ]

(* ------------------------------------------------------------------ *)
(* The witness walker: one pass over a function body collecting
   allocating constructs (with class, rule and line) plus every
   referenced path (the conservative call-graph edge set — a function
   passed as a value gets an edge like a direct call). *)

type witness = { wrule : string; wcls : alloc_class; wline : int; wdesc : string }

type head =
  | Hfun of { fkey : string; arity : int; crossbox : bool }
  | Hdiv
  | Hfree
  | Halloc of string
  | Hunknown of string

(* Required (non-optional) leading parameters of a binding's RHS. *)
let rec arity_of e =
  match e.pexp_desc with
  | Pexp_fun (Asttypes.Optional _, _, _, body) -> arity_of body
  | Pexp_fun (_, _, _, body) -> 1 + arity_of body
  | Pexp_function _ -> 1
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> arity_of body
  | _ -> 0

let ident_is x e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident y; _ } -> String.equal x y
  | _ -> false

(* [Simplif.eliminate_ref] eligibility for [let x = ref init in body]:
   every occurrence of [x] is the direct argument of [!]/[:=]/[incr]/
   [decr], and never under a nested closure. *)
let ref_eliminable x body =
  let ok = ref true in
  let lam = ref false in
  let handler it e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident y; _ } when String.equal x y -> ok := false
    | Pexp_apply (f, args)
      when (match Ast_util.ident_path f with
           | Some [ ("!" | ":=" | "incr" | "decr") ] -> true
           | _ -> false)
           && List.exists (fun (_, a) -> ident_is x a) args ->
        if !lam then ok := false;
        List.iter (fun (_, a) -> if not (ident_is x a) then it.Ast_iterator.expr it a) args
    | Pexp_fun _ | Pexp_function _ ->
        let saved = !lam in
        lam := true;
        Ast_iterator.default_iterator.expr it e;
        lam := saved
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr = handler } in
  it.expr it body;
  !ok

let is_ref_make e =
  match e.pexp_desc with
  | Pexp_apply (f, [ (Asttypes.Nolabel, init) ]) when Ast_util.ident_path f = Some [ "ref" ]
    ->
      Some init
  | _ -> None

(* Peel the binding's own leading parameter chain; optional-argument
   defaults evaluate per call, so they are part of the walked core. *)
let rec peel defaults e =
  match e.pexp_desc with
  | Pexp_fun (_, d, _, body) -> peel (Option.to_list d @ defaults) body
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> peel defaults body
  | Pexp_function cases ->
      (defaults, List.concat_map (fun c -> Option.to_list c.pc_guard @ [ c.pc_rhs ]) cases)
  | _ -> (defaults, [ e ])

let walk ~classify ~on_ref body =
  let ws = ref [] in
  let line e = Ast_util.line_of e.pexp_loc in
  let add ?(rule = "alloc-in-hot-path") cls e desc =
    ws := { wrule = rule; wcls = cls; wline = line e; wdesc = desc } :: !ws
  in
  let rec go e =
    match e.pexp_desc with
    | Pexp_ident _ -> (
        match Ast_util.ident_path e with Some p -> on_ref p | None -> ())
    | Pexp_constant _ -> ()
    | Pexp_fun _ | Pexp_function _ ->
        (* a closure block per evaluation; the body escapes the hot-path
           proof, so creation itself is the violation *)
        add Alloc e "closure creation"
    | Pexp_tuple parts ->
        add Alloc e "tuple construction";
        List.iter go parts
    | Pexp_record (fields, base) ->
        add Alloc e "record construction";
        List.iter (fun (_, v) -> go v) fields;
        Option.iter go base
    | Pexp_array [] -> ()
    | Pexp_array parts ->
        add Alloc e "array literal";
        List.iter go parts
    | Pexp_construct (_, None) | Pexp_variant (_, None) -> ()
    | Pexp_construct (lid, Some arg) ->
        let name =
          match Ast_util.flatten lid.Asttypes.txt with
          | Some p -> Ast_util.dotted p
          | None -> "?"
        in
        add Alloc e (Printf.sprintf "constructor %s application" name);
        go arg
    | Pexp_variant (tag, Some arg) ->
        add Alloc e (Printf.sprintf "polymorphic variant `%s application" tag);
        go arg
    | Pexp_lazy _ ->
        add Alloc e "lazy suspension"
    | Pexp_object _ | Pexp_new _ | Pexp_override _ ->
        add Alloc e "object allocation"
    | Pexp_pack _ -> add Alloc e "first-class module allocation"
    | Pexp_letop _ -> add Alloc e "binding-operator chain allocates closures"
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
      ->
        ()
    | Pexp_assert cond -> go cond
    | Pexp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, is_ref_make vb.pvb_expr) with
            | Ppat_var { txt = x; _ }, Some init when ref_eliminable x body ->
                (* the ref is compiled to a mutable local: only the
                   initializer can allocate *)
                go init
            | _ -> go vb.pvb_expr)
          vbs;
        go body
    | Pexp_apply (f0, args0) -> (
        let f, args =
          match (Ast_util.ident_path f0, args0) with
          | Some [ "@@" ], [ (Asttypes.Nolabel, g); (Asttypes.Nolabel, x) ] ->
              (g, [ (Asttypes.Nolabel, x) ])
          | Some [ "|>" ], [ (Asttypes.Nolabel, x); (Asttypes.Nolabel, g) ] ->
              (g, [ (Asttypes.Nolabel, x) ])
          | _ -> (f0, args0)
        in
        let go_args () = List.iter (fun (_, a) -> go a) args in
        match f.pexp_desc with
        | Pexp_ident _ -> (
            match Ast_util.ident_path f with
            | None -> go_args ()
            | Some p -> (
                match classify p with
                | Hdiv -> () (* failure path: never returns, skip subtree *)
                | Hfree -> go_args ()
                | Halloc desc ->
                    add Alloc f desc;
                    go_args ()
                | Hunknown d ->
                    add ~rule:"alloc-unknown-callee" Alloc f
                      (Printf.sprintf "call to unresolved %s" d);
                    go_args ()
                | Hfun { fkey; arity; crossbox } ->
                    on_ref p;
                    if List.length args < arity then
                      add Alloc f (Printf.sprintf "partial application of %s" fkey);
                    if crossbox then
                      add Bounded f
                        (Printf.sprintf
                           "boxed float return of %s crosses a compilation-unit \
                            boundary (add a local [@inline always] copy)"
                           fkey);
                    go_args ()))
        | Pexp_field (obj, lid) ->
            let label =
              match Ast_util.flatten lid.Asttypes.txt with
              | Some p -> List.nth p (List.length p - 1)
              | None -> "?"
            in
            if not (List.mem label contract_labels) then
              add ~rule:"alloc-unknown-callee" Alloc f
                (Printf.sprintf
                   "indirect call through field .%s outside the dispatch contract"
                   label);
            go obj;
            go_args ()
        | _ ->
            go f;
            go_args ())
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        go scrut;
        List.iter
          (fun c ->
            Option.iter go c.pc_guard;
            go c.pc_rhs)
          cases
    | Pexp_ifthenelse (c, t, e) ->
        go c;
        go t;
        Option.iter go e
    | Pexp_sequence (a, b) ->
        go a;
        go b
    | Pexp_while (c, b) ->
        go c;
        go b
    | Pexp_for (_, lo, hi, _, b) ->
        go lo;
        go hi;
        go b
    | Pexp_field (o, _) -> go o
    | Pexp_setfield (o, _, v) ->
        go o;
        go v
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_poly (e, _) -> go e
    | Pexp_open (_, e)
    | Pexp_letmodule (_, _, e)
    | Pexp_letexception (_, e)
    | Pexp_newtype (_, e) ->
        go e
    | Pexp_send (o, _) -> go o
    | Pexp_setinstvar (_, e) -> go e
    | Pexp_extension _ | Pexp_unreachable -> ()
  in
  let defaults, cores = peel [] body in
  List.iter go defaults;
  List.iter go cores;
  List.rev !ws

(* ------------------------------------------------------------------ *)
(* Annotated roots / cold nodes from the raw sources. *)

let annotations g ~sources =
  (* deterministic: [cold] is lookup-only, never iterated *)
  let hot = ref [] and cold = Hashtbl.create 16 in
  List.iter
    (fun u ->
      match List.assoc_opt u.Callgraph.ufile sources with
      | None -> ()
      | Some content ->
          let marker = markers_of_source content in
          List.iter
            (fun (path, ln) ->
              match marker ln with
              | Some Hot -> hot := Callgraph.key u path :: !hot
              | Some Cold -> Hashtbl.replace cold (Callgraph.key u path) ()
              | None -> ())
            u.Callgraph.udecls.Ast_util.flines)
    (Callgraph.unit_infos g);
  (List.sort_uniq String.compare !hot, cold)

let annotated_keys ~sources g = fst (annotations g ~sources)

let advice = function
  | "alloc-unknown-callee" ->
      "resolve it: add the callee to the known-free table if it provably does \
       not allocate, route the dispatch through a contract field, or waive with \
       (* lint:ignore alloc-unknown-callee: reason *)"
  | _ ->
      "hot paths annotated (* alloc: none *) must stay allocation-free — reuse \
       a preallocated cell, hoist the work behind an [@inline never] (* alloc: \
       cold *) helper, or waive with (* lint:ignore alloc-in-hot-path: reason *)"

let check ~sources g =
  let hot_keys, cold = annotations g ~sources in
  (* deterministic: lookup-only tables keyed by node name, never iterated *)
  let index = Hashtbl.create 256 in
  let nodes =
    Callgraph.fold_funs g [] (fun acc ~fkey ~funit ~body -> (fkey, funit, body) :: acc)
    |> List.rev
  in
  List.iteri (fun i (k, _, _) -> Hashtbl.replace index k i) nodes;
  let n = List.length nodes in
  (* deterministic: lookup-only, never iterated *)
  let arity = Hashtbl.create 256 in
  List.iter (fun (k, _, body) -> Hashtbl.replace arity k (arity_of body)) nodes;
  let base = Array.make (max n 1) NoAlloc in
  let witnesses = Array.make (max n 1) [] in
  let edges = ref [] in
  List.iteri
    (fun i (fkey_i, funit, body) ->
      if not (Hashtbl.mem cold fkey_i) then begin
        let classify p =
          let d = Ast_util.dotted p in
          match Callgraph.resolve g ~cur:funit p with
          | Callgraph.Fun { fkey; funit = tu; _ } ->
              if Hashtbl.mem cold fkey then Hfree
              else
                Hfun
                  {
                    fkey;
                    arity = (match Hashtbl.find_opt arity fkey with Some a -> a | None -> 0);
                    crossbox =
                      (not (String.equal tu.Callgraph.uname funit.Callgraph.uname))
                      && List.mem fkey float_returning;
                  }
          | Callgraph.Root _ -> Hunknown d
          | Callgraph.External p ->
              let d = Ast_util.dotted p in
              if List.mem d divergent_prims then Hdiv
              else if List.mem d free_prims then Hfree
              else (
                match List.assoc_opt d alloc_prims with
                | Some desc -> Halloc desc
                | None -> (
                    match
                      List.find_opt
                        (fun (pre, _) ->
                          String.length d > String.length pre
                          && String.sub d 0 (String.length pre) = pre)
                        alloc_prefixes
                    with
                    | Some (_, desc) -> Halloc (Printf.sprintf "call to %s (%s)" d desc)
                    | None ->
                        if List.length p = 1 then
                          (* unqualified and unresolved: a local binding *)
                          Hfree
                        else Hunknown d))
        in
        let on_ref p =
          match Callgraph.resolve g ~cur:funit p with
          | Callgraph.Fun { fkey; _ } when not (Hashtbl.mem cold fkey) -> (
              match Hashtbl.find_opt index fkey with
              | Some j -> if i <> j then edges := (i, j) :: !edges
              | None -> ())
          | _ -> ()
        in
        witnesses.(i) <- walk ~classify ~on_ref body;
        base.(i) <-
          List.fold_left (fun acc w -> join acc w.wcls) NoAlloc witnesses.(i)
      end)
    nodes;
  let cls = solve ~n ~base ~edges:!edges in
  (* Multi-source BFS from the annotated roots (sorted, so the reported
     chain is deterministic); parents give the shortest root -> node
     chain. *)
  let out = Array.make (max n 1) [] in
  List.iter (fun (i, j) -> out.(i) <- j :: out.(i)) !edges;
  Array.iteri (fun i l -> out.(i) <- List.sort_uniq compare l) out;
  let parent = Array.make (max n 1) (-2) in
  let q = Queue.create () in
  List.iter
    (fun k ->
      match Hashtbl.find_opt index k with
      | Some i when parent.(i) = -2 ->
          parent.(i) <- -1;
          Queue.add i q
      | _ -> ())
    hot_keys;
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    List.iter
      (fun j ->
        if parent.(j) = -2 then begin
          parent.(j) <- i;
          Queue.add j q
        end)
      out.(i)
  done;
  let name_of i = match List.nth nodes i with k, _, _ -> k in
  let rec chain i acc =
    let acc = name_of i :: acc in
    if parent.(i) < 0 then acc else chain parent.(i) acc
  in
  let issues = ref [] in
  List.iteri
    (fun i (_, funit, _) ->
      (* a reached node's direct witnesses are exactly what lifted its
         fixpoint class above NoAlloc, so reporting them covers [cls] *)
      if parent.(i) >= -1 && rank cls.(i) > rank NoAlloc then
        List.iter
          (fun w ->
            let trail = String.concat " → " (chain i []) in
            issues :=
              {
                Report.file = funit.Callgraph.ufile;
                line = w.wline;
                rule = w.wrule;
                message =
                  Printf.sprintf "%s (%s) reached from hot root via %s: %s" w.wdesc
                    (class_name w.wcls) trail (advice w.wrule);
              }
              :: !issues)
          witnesses.(i))
    nodes;
  List.sort_uniq compare !issues

(* ------------------------------------------------------------------ *)
(* Static/dynamic consistency: the annotated roots and the 0-words/op
   microbench targets must name the same set of functions. *)

let consistency ~annotated ~benched =
  let a = List.sort_uniq String.compare annotated in
  let b = List.sort_uniq String.compare benched in
  List.filter_map
    (fun k ->
      if List.mem k b then None
      else
        Some
          (Printf.sprintf
             "annotated root %s has no 0-words/op microbench entry (add it to \
              bench/micro zero_alloc_roots)"
             k))
    a
  @ List.filter_map
      (fun k ->
        if List.mem k a then None
        else
          Some
            (Printf.sprintf
               "microbench zero-alloc target %s lacks an (* alloc: none *) \
                annotation on its binding"
               k))
      b

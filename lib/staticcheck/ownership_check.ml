(* Interprocedural ownership/escape analysis for per-host state.

   The ROADMAP's sharding refactor — thousands of hosts across the
   OCaml 5 domain pool with per-shard calendar queues — is only safe if
   every mutable value reachable from a [Host.t]/[Smp_host.t]/[Vm.t]/
   [Domain.t] is owned by exactly one host, and cross-host coupling
   flows solely through the migration/placement epoch channels in
   lib/cluster.  This pass proves which state is shard-confinable.

   Every structure-level binding is a call-graph node; nodes are
   classified into the confinement lattice

       HostConfined < ShardConfined < BoundaryChannel < Escaping

   by the same least-fixpoint solve as [Effect_check]/[Alloc_check],
   over reversed call edges: a callee inherits the worst class of its
   callers, so the class at a field accessor summarizes every context
   that can reach the state it touches.  Seeds:

   - [ShardConfined] at the simulation entry points
     ({!Callgraph.entry_keys}): state reached from there lives on
     whichever worker domain (shard) runs the experiment;
   - [BoundaryChannel] at functions annotated [(* shard: boundary *)]
     (binding line or the line above — same standalone-marker grammar as
     [(* alloc: none *)]): the declared migration/placement epoch
     channels in lib/cluster;
   - [Escaping] at any function with an escape witness.

   Escape witnesses ([shard-escape]) are anything that can alias
   host-owned state across hosts: a reference to host state from a
   cluster unit outside an annotated boundary function, capture of a
   host-bound local in a [Domain.spawn]/[Thread.create] closure (the
   legal shard-pool idiom creates its hosts {e inside} the worker
   closure, capturing nothing), a host-owned value in tail position of a
   simulation entry (returned through the entry boundary), and a
   host-owned value stored into a structure-level mutable root (a global
   table).  [shard-unknown-flow] is the can't-prove case: a host-bound
   local passed to a call that resolves to no scanned binding, or
   through an indirect record-field call.  Each finding carries the
   shortest host-API -> ... -> escape-site chain, rooted at a
   constructor when one reaches the site.

   Roots — every mutable field and contained mutable structure of the
   host-state units — are collected from the record-field declarations
   ({!Ast_util.field_decl}): [mutable] fields, fields of known mutable
   containers (Series, Trace, arrays, masks, processor state, ...),
   fields embedding another host-state unit's [t].  Because the four
   host-state types are abstract in their interfaces, their fields are
   only touched inside the declaring unit, so a root's accessors are the
   declaring unit's functions mentioning the field label, and

       class(root) = floor(root) ⊔ join over accessors a of solve(a)

   with floor [ShardConfined] for fields that alias the shard's
   simulator (calendar queue, event handles) and [HostConfined]
   otherwise; an embedded root additionally joins the target unit's own
   class.  Deliberate approximations: field labels match per unit, not
   per record type; workload/scheduler closure records are treated as
   opaque host-confined containers; host-bound locals are recognized
   only when [let]-bound directly to a host-state constructor. *)

open Parsetree

type confinement = Host_confined | Shard_confined | Boundary_channel | Escaping

let class_name = function
  | Host_confined -> "HostConfined"
  | Shard_confined -> "ShardConfined"
  | Boundary_channel -> "BoundaryChannel"
  | Escaping -> "Escaping"

let rank = function
  | Host_confined -> 0
  | Shard_confined -> 1
  | Boundary_channel -> 2
  | Escaping -> 3

let join a b = if rank a >= rank b then a else b
let leq a b = rank a <= rank b

(* Least fixpoint of [cls i = join base(i) (join over edges (i,j) of
   cls j)]; standalone over plain arrays so the property tests can check
   monotonicity under edge addition directly (same shape as
   [Effect_check.solve] and [Alloc_check.solve]). *)
let solve ~n ~base ~edges =
  let cls = Array.copy base in
  ignore n;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (i, j) ->
        let v = join cls.(i) cls.(j) in
        if rank v > rank cls.(i) then begin
          cls.(i) <- v;
          changed := true
        end)
      edges
  done;
  cls

(* ------------------------------------------------------------------ *)
(* The host-state units and their constructors. *)

let host_units = [ "Domain"; "Host"; "Smp_host"; "Vm" ]
let is_host_unit u = List.mem u.Callgraph.uname host_units
let ctor_names = [ "create" ]

let last_component key =
  match List.rev (String.split_on_char '.' key) with x :: _ -> x | [] -> key

let in_cluster file =
  List.exists (String.equal "cluster") (String.split_on_char '/' file)

(* ------------------------------------------------------------------ *)
(* Boundary annotation grammar: [(* shard: boundary *)] on the binding
   line or the line directly above (a trailing reason also matches).
   Same scraping discipline as the alloc markers: on the binding line a
   substring suffices; on the line above the marker must open the
   comment, so prose mentioning the grammar does not declare channels. *)

let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub line i m = sub || loop (i + 1)) in
  m > 0 && loop 0

(* A waived line ([lint:ignore] anywhere on it, the same test
   [Report.drop_waived] applies) must not seed [Escaping] either — the
   author audited that flow, and a waived witness would otherwise still
   poison every class downstream of the solve. *)
let waived_line content =
  let lines = Array.of_list (String.split_on_char '\n' content) in
  fun ln ->
    ln >= 1 && ln <= Array.length lines && contains_sub lines.(ln - 1) Report.waiver

let boundary_marker content =
  let lines = Array.of_list (String.split_on_char '\n' content) in
  let get ln = if ln < 1 || ln > Array.length lines then "" else lines.(ln - 1) in
  let opener = "(* shard: boundary" in
  let leading l =
    let l = String.trim l in
    String.length l >= String.length opener
    && String.sub l 0 (String.length opener) = opener
  in
  fun ln -> contains_sub (get ln) "shard: boundary" || leading (get (ln - 1))

let boundary_keys ~sources g =
  let keys =
    List.concat_map
      (fun u ->
        match List.assoc_opt u.Callgraph.ufile sources with
        | None -> []
        | Some content ->
            let marked = boundary_marker content in
            List.filter_map
              (fun (path, ln) -> if marked ln then Some (Callgraph.key u path) else None)
              u.Callgraph.udecls.Ast_util.flines)
      (Callgraph.unit_infos g)
  in
  List.sort_uniq String.compare keys

(* ------------------------------------------------------------------ *)
(* Root vocabulary: which record fields of a host-state unit are mutable
   state.  [fheads] is matched outer to inner, so [Domain.t array] is an
   embed and [Trace.t option] a container.  The simulator fields floor at
   [ShardConfined]: the calendar queue and its handles are shared with
   every co-located host of the shard by design. *)

let container_kinds =
  [
    ("array", "array", Host_confined);
    ("ref", "ref cell", Host_confined);
    ("Queue.t", "queue", Host_confined);
    ("Stack.t", "stack", Host_confined);
    ("Hashtbl.t", "hash table", Host_confined);
    ("Buffer.t", "buffer", Host_confined);
    ("Bytes.t", "byte buffer", Host_confined);
    ("Atomic.t", "atomic cell", Host_confined);
    ("Mutex.t", "mutex", Host_confined);
    ("Series.t", "metrics series", Host_confined);
    ("Series.cell", "series scratch cell", Host_confined);
    ("Trace.t", "event trace", Host_confined);
    ("Mask.t", "scratch mask", Host_confined);
    ("Running.t", "running-stats accumulator", Host_confined);
    ("Floats.t", "float vector", Host_confined);
    ("Processor.t", "DVFS processor state", Host_confined);
    ("Smp.t", "SMP processor state", Host_confined);
    ("Scheduler.t", "scheduler dispatch record", Host_confined);
    ("Workload.t", "workload closure state", Host_confined);
    ("Simulator.t", "shard calendar queue", Shard_confined);
    ("Simulator.handle", "shard event handle", Shard_confined);
  ]

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let head_matches key head = head = key || ends_with ~suffix:("." ^ key) head

let embed_unit_of head =
  List.find_opt (fun u -> head_matches (u ^ ".t") head) host_units

let container_of head =
  List.find_map
    (fun (k, kind, floor) -> if head_matches k head then Some (kind, floor) else None)
    container_kinds

(* [Some (kind, floor, embed)] when the field is a mutable root of its
   host-state unit. *)
let field_root (f : Ast_util.field_decl) =
  match List.find_map embed_unit_of f.Ast_util.fheads with
  | Some target ->
      Some (Printf.sprintf "embedded %s.t" target, Host_confined, Some target)
  | None -> (
      match List.find_map container_of f.Ast_util.fheads with
      | Some (kind, floor) -> Some (kind, floor, None)
      | None -> if f.Ast_util.fmut then Some ("mutable field", Host_confined, None) else None)

(* ------------------------------------------------------------------ *)
(* Witness scanning. *)

type witness = { wrule : string; wline : int; wdesc : string }

(* External heads a host-bound value may flow into without an
   [shard-unknown-flow] finding: divergence, discard, identity-level
   plumbing.  Everything else unresolved defaults to escaping — the
   proof must cover every flow. *)
let safe_externals =
  [
    "ignore"; "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit";
    "fst"; "snd"; "="; "<>"; "=="; "!="; "compare"; "!"; "incr"; "decr"; "not";
    "Option.get"; "Option.value"; "Option.iter"; "Option.map"; "Option.is_none";
    "Option.is_some";
  ]

let rec tails e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, b) | Pexp_newtype (_, b) | Pexp_constraint (b, _) -> tails b
  | Pexp_function cases -> List.concat_map (fun c -> tails c.pc_rhs) cases
  | Pexp_let (_, _, b)
  | Pexp_sequence (_, b)
  | Pexp_open (_, b)
  | Pexp_letmodule (_, _, b)
  | Pexp_letexception (_, b) ->
      tails b
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.concat_map (fun c -> tails c.pc_rhs) cases
  | Pexp_ifthenelse (_, t, e) -> tails t @ (match e with Some e -> tails e | None -> [])
  | _ -> [ e ]

let advice = function
  | "shard-unknown-flow" ->
      "qualify the call so it resolves to a scanned binding, keep host-owned \
       values out of unresolved calls, or waive with (* lint:ignore \
       shard-unknown-flow: reason *)"
  | _ ->
      "confine the value to one host, declare the coupling point with (* shard: \
       boundary *) on a cluster channel, or waive with (* lint:ignore \
       shard-escape: reason *)"

(* ------------------------------------------------------------------ *)
(* The analysis proper. *)

type root_report = {
  okey : string;  (** ["Host.t.handles"], ["Domain.next_id"] *)
  ofile : string;
  oline : int;
  okind : string;
  oclass : confinement;
}

module S = Set.Make (String)

let analyze ~sources g =
  let nodes =
    Callgraph.fold_funs g [] (fun acc ~fkey ~funit ~body -> (fkey, funit, body) :: acc)
    |> List.rev
  in
  (* deterministic: lookup-only table keyed by node name, never iterated *)
  let index = Hashtbl.create 256 in
  List.iteri (fun i (k, _, _) -> Hashtbl.replace index k i) nodes;
  let n = List.length nodes in
  let boundary = boundary_keys ~sources g in
  let entries = Callgraph.entry_keys g in
  let base = Array.make (max n 1) Host_confined in
  let witnesses = Array.make (max n 1) [] in
  let labels = Array.make (max n 1) S.empty in
  let edges = ref [] in
  let root_access = ref [] in
  List.iteri
    (fun i (fkey, funit, body) ->
      let resolve p = Callgraph.resolve g ~cur:funit p in
      let host_fun p =
        match resolve p with
        | Callgraph.Fun { fkey; funit = tu; _ } when is_host_unit tu -> Some fkey
        | _ -> None
      in
      let is_ctor p =
        match host_fun p with
        | Some fk -> List.mem (last_component fk) ctor_names
        | None -> false
      in
      (* Host-bound locals: [let h = Host.create …] anywhere in the body
         (name-level, not scope-level — a deliberate over-approximation). *)
      let rec ctor_app e =
        match e.pexp_desc with
        | Pexp_constraint (e, _) -> ctor_app e
        | Pexp_apply (f, _) -> (
            match Ast_util.ident_path f with Some p -> is_ctor p | None -> false)
        | _ -> false
      in
      let bound = ref S.empty in
      let bind_it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_let (_, vbs, _) ->
                  List.iter
                    (fun vb ->
                      match vb.pvb_pat.ppat_desc with
                      | Ppat_var { txt = name; _ } when ctor_app vb.pvb_expr ->
                          bound := S.add name !bound
                      | _ -> ())
                    vbs
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      bind_it.expr bind_it body;
      let is_host_expr e =
        ctor_app e
        ||
        match Ast_util.ident_path e with
        | Some [ x ] -> S.mem x !bound
        | _ -> false
      in
      let ws = ref [] in
      let waived =
        match List.assoc_opt funit.Callgraph.ufile sources with
        | Some content -> waived_line content
        | None -> fun _ -> false
      in
      let witness wrule wline wdesc =
        if not (waived wline) then ws := { wrule; wline; wdesc } :: !ws
      in
      (* Edges (reversed: callee inherits caller), cluster-flow witnesses,
         global-root accessors, field labels of host-unit nodes. *)
      let boundary_here = List.mem fkey boundary in
      let cluster_unit = in_cluster funit.Callgraph.ufile && not (is_host_unit funit) in
      List.iter
        (fun (path, line) ->
          match resolve path with
          | Callgraph.Fun { fkey = callee; funit = tu; _ } ->
              (match Hashtbl.find_opt index callee with
              | Some j -> if i <> j then edges := (j, i) :: !edges
              | None -> ());
              if cluster_unit && (not boundary_here) && is_host_unit tu then
                witness "shard-escape" line
                  (Printf.sprintf
                     "cluster unit reaches host state through %s outside a declared \
                      boundary"
                     callee)
          | Callgraph.Root { rkey; runit = tu; _ } ->
              root_access := (rkey, i) :: !root_access;
              if cluster_unit && (not boundary_here) && is_host_unit tu then
                witness "shard-escape" line
                  (Printf.sprintf
                     "cluster unit reaches host state through %s outside a declared \
                      boundary"
                     rkey)
          | Callgraph.External _ -> ())
        (Ast_util.free_refs body);
      if is_host_unit funit then begin
        let add_label lid =
          match Ast_util.flatten lid with
          | Some p -> labels.(i) <- S.add (last_component (Ast_util.dotted p)) labels.(i)
          | None -> ()
        in
        let lab_it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun it e ->
                (match e.pexp_desc with
                | Pexp_field (_, lid) | Pexp_setfield (_, lid, _) ->
                    add_label lid.Asttypes.txt
                | Pexp_record (fields, _) ->
                    List.iter (fun (lid, _) -> add_label lid.Asttypes.txt) fields
                | _ -> ());
                Ast_iterator.default_iterator.expr it e);
            pat =
              (fun it p ->
                (match p.ppat_desc with
                | Ppat_record (fields, _) ->
                    List.iter (fun (lid, _) -> add_label lid.Asttypes.txt) fields
                | _ -> ());
                Ast_iterator.default_iterator.pat it p);
          }
        in
        lab_it.expr lab_it body
      end;
      (* Spawn capture, global registration, unknown flows. *)
      let rec closure_captures visited fps acc =
        List.fold_left
          (fun (visited, acc) fp ->
            match fp with
            | [ x ] ->
                if S.mem x visited then (visited, acc)
                else
                  let visited = S.add x visited in
                  if S.mem x !bound then (visited, S.add x acc)
                  else (
                    match
                      List.assoc_opt x funit.Callgraph.ulocals.Ast_util.local_funs
                    with
                    | Some b -> closure_captures visited (Ast_util.free_paths b) acc
                    | None -> (visited, acc))
            | _ -> (visited, acc))
          (visited, acc) fps
      in
      let wit_it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              let line = Ast_util.line_of e.pexp_loc in
              (match e.pexp_desc with
              | Pexp_apply (f, args) -> (
                  match Ast_util.ident_path f with
                  | Some p when Ast_util.is_spawn p -> (
                      match
                        List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args
                      with
                      | Some (_, closure) ->
                          let _, captured =
                            closure_captures S.empty (Ast_util.free_paths closure)
                              S.empty
                          in
                          S.iter
                            (fun x ->
                              witness "shard-escape" line
                                (Printf.sprintf
                                   "host-owned value %s captured by a spawned domain \
                                    closure (the shard-pool idiom creates its hosts \
                                    inside the worker)"
                                   x))
                            captured
                      | None -> ())
                  | Some p when Ast_util.is_write_op p -> (
                      let global_target =
                        List.find_map
                          (fun (_, a) ->
                            match Ast_util.ident_path a with
                            | Some ap -> (
                                match resolve ap with
                                | Callgraph.Root { rkey; _ } -> Some rkey
                                | _ -> None)
                            | None -> None)
                          args
                      in
                      match global_target with
                      | Some rkey when List.exists (fun (_, a) -> is_host_expr a) args
                        ->
                          witness "shard-escape" line
                            (Printf.sprintf
                               "host-owned value registered in global table %s" rkey)
                      | _ -> ())
                  | Some p -> (
                      match resolve p with
                      | Callgraph.External ep
                        when not (List.mem (Ast_util.dotted ep) safe_externals) ->
                          List.iter
                            (fun (_, a) ->
                              match Ast_util.ident_path a with
                              | Some [ x ] when S.mem x !bound ->
                                  witness "shard-unknown-flow" line
                                    (Printf.sprintf
                                       "host-owned value %s passed to unresolved %s"
                                       x (Ast_util.dotted ep))
                              | _ -> ())
                            args
                      | _ -> ())
                  | None -> (
                      match f.pexp_desc with
                      | Pexp_field (_, lid) ->
                          let label =
                            match Ast_util.flatten lid.Asttypes.txt with
                            | Some p -> last_component (Ast_util.dotted p)
                            | None -> "?"
                          in
                          List.iter
                            (fun (_, a) ->
                              match Ast_util.ident_path a with
                              | Some [ x ] when S.mem x !bound ->
                                  witness "shard-unknown-flow" line
                                    (Printf.sprintf
                                       "host-owned value %s passed through indirect \
                                        call .%s"
                                       x label)
                              | _ -> ())
                            args
                      | _ -> ()))
              | Pexp_setfield (target, _, v) when is_host_expr v -> (
                  match Ast_util.ident_path target with
                  | Some tp -> (
                      match resolve tp with
                      | Callgraph.Root { rkey; _ } ->
                          witness "shard-escape" line
                            (Printf.sprintf
                               "host-owned value stored into global mutable %s" rkey)
                      | _ -> ())
                  | None -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      wit_it.expr wit_it body;
      (* Return through a simulation-entry boundary. *)
      if List.mem fkey entries then
        List.iter
          (fun t ->
            let direct = is_host_expr t in
            let nested =
              match t.pexp_desc with
              | Pexp_record (fields, _) ->
                  List.exists (fun (_, v) -> is_host_expr v) fields
              | Pexp_tuple parts -> List.exists is_host_expr parts
              | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> is_host_expr a
              | _ -> false
            in
            if direct || nested then
              witness "shard-escape" (Ast_util.line_of t.pexp_loc)
                "host-owned state returned through a simulation-entry boundary")
          (tails body);
      witnesses.(i) <- List.sort_uniq compare !ws;
      let b = if witnesses.(i) <> [] then Escaping else Host_confined in
      let b = if boundary_here then join b Boundary_channel else b in
      let b = if List.mem fkey entries then join b Shard_confined else b in
      base.(i) <- b)
    nodes;
  let cls = solve ~n ~base ~edges:!edges in
  (* Shortest host-API → … → escape-site chains: multi-source BFS over
     the reversed edges (API function toward its callers), constructors
     enqueued first so chains prefer a constructor head. *)
  let out = Array.make (max n 1) [] in
  List.iter (fun (j, i) -> out.(j) <- i :: out.(j)) !edges;
  Array.iteri (fun i l -> out.(i) <- List.sort_uniq compare l) out;
  let parent = Array.make (max n 1) (-2) in
  let q = Queue.create () in
  let api_keys =
    List.filter_map
      (fun (k, u, _) -> if is_host_unit u then Some k else None)
      nodes
    |> List.sort String.compare
  in
  let ctors, accessors =
    List.partition (fun k -> List.mem (last_component k) ctor_names) api_keys
  in
  List.iter
    (fun k ->
      match Hashtbl.find_opt index k with
      | Some i when parent.(i) = -2 ->
          parent.(i) <- -1;
          Queue.add i q
      | _ -> ())
    (ctors @ accessors);
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    List.iter
      (fun j ->
        if parent.(j) = -2 then begin
          parent.(j) <- i;
          Queue.add j q
        end)
      out.(i)
  done;
  let name_of i = match List.nth nodes i with k, _, _ -> k in
  let rec chain i acc =
    let acc = name_of i :: acc in
    if parent.(i) < 0 then acc else chain parent.(i) acc
  in
  let issues = ref [] in
  List.iteri
    (fun i (fkey, funit, _) ->
      List.iter
        (fun w ->
          let trail =
            if parent.(i) >= -1 then String.concat " → " (chain i []) else fkey
          in
          issues :=
            {
              Report.file = funit.Callgraph.ufile;
              line = w.wline;
              rule = w.wrule;
              message =
                Printf.sprintf "%s; host state flows %s: %s" w.wdesc trail
                  (advice w.wrule);
            }
            :: !issues)
        witnesses.(i))
    nodes;
  (* Root classification. *)
  let units = List.filter is_host_unit (Callgraph.unit_infos g) in
  let unit_nodes u =
    List.concat
      (List.mapi
         (fun i (_, funit, _) ->
           if funit.Callgraph.uname = u.Callgraph.uname then [ i ] else [])
         nodes)
  in
  let flow_of_label u_nodes label =
    List.fold_left
      (fun acc i -> if S.mem label labels.(i) then join acc cls.(i) else acc)
      Host_confined u_nodes
  in
  let field_roots u =
    let u_nodes = unit_nodes u in
    List.filter_map
      (fun (f : Ast_util.field_decl) ->
        match field_root f with
        | None -> None
        | Some (kind, floor, embed) ->
            let flow = flow_of_label u_nodes f.Ast_util.fname in
            Some
              ( {
                  okey =
                    Printf.sprintf "%s.%s.%s" u.Callgraph.uname f.Ast_util.ftype
                      f.Ast_util.fname;
                  ofile = u.Callgraph.ufile;
                  oline = f.Ast_util.fline;
                  okind = kind;
                  oclass = join floor flow;
                },
                embed ))
      (List.rev u.Callgraph.udecls.Ast_util.tfields)
  in
  let global_roots u =
    List.map
      (fun (path, (r : Ast_util.root)) ->
        let rkey = Callgraph.key u path in
        let flow =
          List.fold_left
            (fun acc (k, i) -> if String.equal k rkey then join acc cls.(i) else acc)
            Host_confined !root_access
        in
        ( {
            okey = rkey;
            ofile = u.Callgraph.ufile;
            oline = r.Ast_util.rline;
            okind = Printf.sprintf "global %s" r.Ast_util.rkind;
            oclass = flow;
          },
          None ))
      (List.rev u.Callgraph.udecls.Ast_util.roots)
  in
  let with_embeds = List.concat_map (fun u -> field_roots u @ global_roots u) units in
  (* One level of embedding: the overall class of a unit joins its
     non-embedded roots, and an embedded root joins its target unit's
     overall class (the embed graph here — Vm/Host → Domain — is flat). *)
  let overall u =
    List.fold_left
      (fun acc (r, embed) ->
        if embed = None && String.length r.okey > String.length u
           && String.sub r.okey 0 (String.length u + 1) = u ^ "."
        then join acc r.oclass
        else acc)
      Host_confined with_embeds
  in
  let roots =
    List.map
      (fun (r, embed) ->
        match embed with
        | None -> r
        | Some target -> { r with oclass = join r.oclass (overall target) })
      with_embeds
    |> List.sort (fun a b -> String.compare a.okey b.okey)
  in
  (List.sort_uniq compare !issues, roots)

let check ~sources g = fst (analyze ~sources g)
let roots ~sources g = snd (analyze ~sources g)

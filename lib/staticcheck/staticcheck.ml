module Units = Units
module Unit_check = Unit_check
module Domain_check = Domain_check
module Ast_util = Ast_util
module Callgraph = Callgraph
module Effect_check = Effect_check
module Lock_check = Lock_check
module Explain = Explain
module Sarif = Sarif

let parse_with parser ~file content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf file;
  parser lexbuf

let parse_error_issue ~file exn =
  let line =
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
        report.Location.main.Location.loc.Location.loc_start.Lexing.pos_lnum
    | Some `Already_displayed | None -> 1
  in
  {
    Report.file;
    line;
    rule = "parse-error";
    message = Printf.sprintf "not parseable as OCaml: %s" (Printexc.to_string exn);
  }

let module_name_of file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* Every pass over a set of sources: per-file unit-of-measure and
   domain-safety checks, then the interprocedural effect and
   lock-discipline passes over the call graph of all units together.
   Waivers are applied per file — line waivers for everything, plus
   file-scoped symbol waivers ([lint:ignore RULE @Path]) with the
   spellings the lock pass supplies. *)
let run_passes ~registry sources =
  let parsed, errors =
    List.fold_left
      (fun (parsed, errors) (file, content) ->
        match parse_with Parse.implementation ~file content with
        | exception exn -> (parsed, parse_error_issue ~file exn :: errors)
        | str -> ((file, content, str) :: parsed, errors))
      ([], []) sources
  in
  let parsed = List.rev parsed in
  let g = Callgraph.build (List.map (fun (f, _, str) -> (f, str)) parsed) in
  let lock_issues, lock_symbols = Lock_check.check g in
  let global = Effect_check.check g @ lock_issues in
  let issues =
    List.concat_map
      (fun (file, content, str) ->
        let per_file =
          Unit_check.check ~registry ~file str @ Domain_check.check ~file str
        in
        let of_this_file = List.filter (fun i -> i.Report.file = file) global in
        Report.drop_waived ~symbols:lock_symbols ~source:content
          (per_file @ of_this_file))
      parsed
  in
  Report.sort (errors @ issues)

let analyze_source ?(registry = Units.builtin) ~file content =
  if Filename.check_suffix file ".mli" then []
  else run_passes ~registry [ (file, content) ]

let registry_of_paths roots =
  let files = Report.collect_sources roots in
  List.fold_left
    (fun registry file ->
      if not (Filename.check_suffix file ".mli") then registry
      else
        match parse_with Parse.interface ~file (Report.read_file file) with
        | exception _ -> registry (* the .ml analysis reports parse errors *)
        | signature ->
            List.fold_left Units.add registry
              (Units.of_interface ~module_name:(module_name_of file) signature))
    Units.builtin files

let analyze_paths roots =
  let registry = registry_of_paths roots in
  let sources =
    List.filter_map
      (fun file ->
        if Filename.check_suffix file ".ml" then Some (file, Report.read_file file)
        else None)
      (Report.collect_sources roots)
  in
  run_passes ~registry sources

module Units = Units
module Unit_check = Unit_check
module Domain_check = Domain_check
module Ast_util = Ast_util
module Callgraph = Callgraph
module Effect_check = Effect_check
module Lock_check = Lock_check
module Alloc_check = Alloc_check
module Ownership_check = Ownership_check
module Fold_check = Fold_check
module Explain = Explain
module Sarif = Sarif

let parse_with parser ~file content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf file;
  parser lexbuf

let parse_error_issue ~file exn =
  let line =
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
        report.Location.main.Location.loc.Location.loc_start.Lexing.pos_lnum
    | Some `Already_displayed | None -> 1
  in
  {
    Report.file;
    line;
    rule = "parse-error";
    message = Printf.sprintf "not parseable as OCaml: %s" (Printexc.to_string exn);
  }

let module_name_of file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* Every pass over a set of sources: per-file unit-of-measure and
   domain-safety checks, then the interprocedural effect, lock-discipline
   and allocation-effect passes over the call graph of all units
   together.  Waivers are applied per file — line waivers for
   everything, plus file-scoped symbol waivers ([lint:ignore RULE
   @Path]) with the spellings the lock pass supplies.

   [jobs > 1] runs the four interprocedural passes on their own
   domains (parsing stays serial: the compiler-libs lexer/parser keep
   global state).  The passes are pure over the immutable graph and are
   joined in a fixed order, so the issue list — and any SARIF rendered
   from it — is byte-identical for every [jobs] value.  [clock] (the
   driver passes [Unix.gettimeofday]; this library does not link unix)
   enables the per-pass wall-time figures in the second component. *)
let run_passes_timed ?(jobs = 1) ?clock ~registry sources =
  let now () = match clock with Some f -> f () | None -> 0.0 in
  let timed name f =
    let t0 = now () in
    let r = f () in
    (r, (name, now () -. t0))
  in
  let (parsed, errors, g), t_parse =
    timed "parse" (fun () ->
        let parsed, errors =
          List.fold_left
            (fun (parsed, errors) (file, content) ->
              match parse_with Parse.implementation ~file content with
              | exception exn -> (parsed, parse_error_issue ~file exn :: errors)
              | str -> ((file, content, str) :: parsed, errors))
            ([], []) sources
        in
        let parsed = List.rev parsed in
        let g = Callgraph.build (List.map (fun (f, _, str) -> (f, str)) parsed) in
        (parsed, errors, g))
  in
  let srcs = List.map (fun (f, c, _) -> (f, c)) parsed in
  let run4 f1 f2 f3 f4 =
    if jobs > 1 then begin
      let d2 = Domain.spawn f2 and d3 = Domain.spawn f3 and d4 = Domain.spawn f4 in
      let r1 = f1 () in
      (r1, Domain.join d2, Domain.join d3, Domain.join d4)
    end
    else (f1 (), f2 (), f3 (), f4 ())
  in
  let ( (effect_issues, t_eff),
        ((lock_issues, lock_symbols), t_lock),
        (alloc_issues, t_alloc),
        (ownership_issues, t_own) ) =
    run4
      (fun () -> timed "effect" (fun () -> Effect_check.check g))
      (fun () -> timed "lock" (fun () -> Lock_check.check g))
      (fun () -> timed "alloc" (fun () -> Alloc_check.check ~sources:srcs g))
      (fun () -> timed "ownership" (fun () -> Ownership_check.check ~sources:srcs g))
  in
  let global = effect_issues @ lock_issues @ alloc_issues @ ownership_issues in
  let issues, t_perfile =
    timed "perfile" (fun () ->
        List.concat_map
          (fun (file, content, str) ->
            let per_file =
              Unit_check.check ~registry ~file str
              @ Domain_check.check ~file str
              @ Fold_check.check ~file str
            in
            let of_this_file = List.filter (fun i -> i.Report.file = file) global in
            Report.drop_waived ~symbols:lock_symbols ~source:content
              (per_file @ of_this_file))
          parsed)
  in
  (Report.sort (errors @ issues), [ t_parse; t_eff; t_lock; t_alloc; t_own; t_perfile ])

let run_passes ~registry sources = fst (run_passes_timed ~registry sources)

let analyze_source ?(registry = Units.builtin) ~file content =
  if Filename.check_suffix file ".mli" then []
  else run_passes ~registry [ (file, content) ]

let registry_of_paths roots =
  let files = Report.collect_sources roots in
  List.fold_left
    (fun registry file ->
      if not (Filename.check_suffix file ".mli") then registry
      else
        match parse_with Parse.interface ~file (Report.read_file file) with
        | exception _ -> registry (* the .ml analysis reports parse errors *)
        | signature ->
            List.fold_left Units.add registry
              (Units.of_interface ~module_name:(module_name_of file) signature))
    Units.builtin files

let sources_of_paths roots =
  List.filter_map
    (fun file ->
      if Filename.check_suffix file ".ml" then Some (file, Report.read_file file)
      else None)
    (Report.collect_sources roots)

let analyze_paths_timed ?jobs ?clock roots =
  let registry = registry_of_paths roots in
  run_passes_timed ?jobs ?clock ~registry (sources_of_paths roots)

let analyze_paths roots = fst (analyze_paths_timed roots)

let parsed_of_paths roots =
  List.filter_map
    (fun (file, content) ->
      match parse_with Parse.implementation ~file content with
      | exception _ -> None
      | str -> Some (file, content, str))
    (sources_of_paths roots)

(* The static half of the static/dynamic zero-alloc consistency
   contract: every [(* alloc: none *)] root key under the given roots. *)
let alloc_roots_of_paths roots =
  let parsed = parsed_of_paths roots in
  let g = Callgraph.build (List.map (fun (f, _, str) -> (f, str)) parsed) in
  Alloc_check.annotated_keys ~sources:(List.map (fun (f, c, _) -> (f, c)) parsed) g

(* The confinement verdicts behind [analyze --shard-roots]: one line per
   mutable root of the host-state units, [key \t kind \t class]. *)
let shard_roots_of_paths roots =
  let parsed = parsed_of_paths roots in
  let g = Callgraph.build (List.map (fun (f, _, str) -> (f, str)) parsed) in
  let sources = List.map (fun (f, c, _) -> (f, c)) parsed in
  List.map
    (fun (r : Ownership_check.root_report) ->
      Printf.sprintf "%s\t%s\t%s" r.Ownership_check.okey r.Ownership_check.okind
        (Ownership_check.class_name r.Ownership_check.oclass))
    (Ownership_check.roots ~sources g)

module Units = Units
module Unit_check = Unit_check
module Domain_check = Domain_check
module Sarif = Sarif

let parse_with parser ~file content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf file;
  parser lexbuf

let parse_error_issue ~file exn =
  let line =
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
        report.Location.main.Location.loc.Location.loc_start.Lexing.pos_lnum
    | Some `Already_displayed | None -> 1
  in
  {
    Report.file;
    line;
    rule = "parse-error";
    message = Printf.sprintf "not parseable as OCaml: %s" (Printexc.to_string exn);
  }

let module_name_of file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let analyze_source ?(registry = Units.builtin) ~file content =
  if Filename.check_suffix file ".mli" then []
  else
    match parse_with Parse.implementation ~file content with
    | exception exn -> [ parse_error_issue ~file exn ]
    | str ->
        let issues =
          Unit_check.check ~registry ~file str @ Domain_check.check ~file str
        in
        Report.sort (Report.drop_waived ~source:content issues)

let registry_of_paths roots =
  let files = Report.collect_sources roots in
  List.fold_left
    (fun registry file ->
      if not (Filename.check_suffix file ".mli") then registry
      else
        match parse_with Parse.interface ~file (Report.read_file file) with
        | exception _ -> registry (* the .ml analysis reports parse errors *)
        | signature ->
            List.fold_left Units.add registry
              (Units.of_interface ~module_name:(module_name_of file) signature))
    Units.builtin files

let analyze_paths roots =
  let registry = registry_of_paths roots in
  let files = Report.collect_sources roots in
  Report.sort
    (List.concat_map
       (fun file ->
         if Filename.check_suffix file ".ml" then
           analyze_source ~registry ~file (Report.read_file file)
         else [])
       files)

(** Cross-module call graph over a set of parsed compilation units.

    Shared substrate of the interprocedural passes: {!Effect_check} walks
    it to propagate determinism effects from simulation entry points, and
    {!Lock_check} walks it to decide which mutable roots are reached from
    parallel code.  Nodes are structure-level bindings keyed
    ["Unit.dotted.path"]; resolution is purely syntactic (module aliases
    chased, re-exports followed across units, [Stdlib.] stripped). *)

type unit_info = {
  ufile : string;  (** source path as given to the analyzer *)
  uname : string;  (** capitalized basename, the OCaml unit name *)
  udecls : Ast_util.decls;
  ulocals : Ast_util.locals;
  ucaptured : string list;
      (** full keys of roots the per-file domain-capture rule already
          reports for this unit *)
}

type t

val build : (string * Parsetree.structure) list -> t
(** Scan every [(file, structure)] once.  On duplicate unit names the
    first file wins. *)

val unit_infos : t -> unit_info list
val find_unit : t -> string -> unit_info option

val key : unit_info -> string -> string
(** ["Unit.path"] node key. *)

type target =
  | Fun of { fkey : string; funit : unit_info; body : Parsetree.expression }
  | Root of { rkey : string; runit : unit_info; root : Ast_util.root; rpath : string }
  | External of string list
      (** not declared by any scanned unit; the alias-resolved path is
          classified against the effect pass's primitive tables *)

val resolve : t -> cur:unit_info -> string list -> target
(** Resolve a referenced path seen in unit [cur]: module aliases chased,
    [include]d modules searched at the prefix where the include appears,
    re-exports followed across units.  Functor applications are opaque —
    paths through [module M = F (X)] stay [External]. *)

val fold_funs :
  t ->
  'a ->
  ('a ->
  fkey:string ->
  funit:unit_info ->
  body:Parsetree.expression ->
  'a) ->
  'a

val entry_keys : t -> string list
(** Simulation entry points, sorted: [Runner.run_all]/[Runner.run_job],
    [Registry.all], [Experiment.run], and top-level
    [run]/[experiment]/[all] bindings in files under an [experiments]
    directory. *)

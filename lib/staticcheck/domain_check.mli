(** Domain-safety pass: unsynchronized mutable state reachable from
    parallel code, computed over the typed AST instead of text patterns.

    Two rules:

    - [domain-capture]: a closure passed to [Domain.spawn] (or
      [Thread.create]) from which an unsynchronized mutable binding
      declared outside the closure is reachable — directly, through a
      module alias, or transitively through calls to other top-level
      functions of the same compilation unit.  State built from
      [Atomic.make] / [Mutex.create] (including arrays of atomics) is
      synchronized and exempt, and references made under
      [Mutex.protect] are not counted.

    - [experiment-state]: in a [.ml] under an [experiments] directory,
      any structure-level binding (at any module nesting depth, so
      aliased and nested state is found where the old text rule's
      column-0 heuristic was blind) that constructs unsynchronized
      mutable state, and any [mutable] record field.  Experiment [run]
      closures execute on arbitrary runner domains in arbitrary order
      and must share no mutable globals.

    The waiver filter is applied by the caller ([Staticcheck]). *)

val check : file:string -> Parsetree.structure -> Report.issue list

val captured_root_keys : Parsetree.structure -> string list
(** The dotted structure-level root keys [check] would report under
    [domain-capture] for this file, sorted.  {!Lock_check} consults this
    to avoid double-reporting a plain-unguarded root that the capture
    rule already flags. *)

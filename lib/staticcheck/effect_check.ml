(* Interprocedural determinism-effect analysis.

   Every structure-level binding is a call-graph node; nodes are
   classified into an effect lattice

       Pure  <  Seeded  <  Ambient  <  Nondet

   where [Seeded] is randomness derived from the experiment seed
   ([Prng.*] — deterministic by construction), [Ambient] is a read of the
   host environment (env vars, filesystem, machine topology) and [Nondet]
   is anything whose result varies run-to-run on the same host (wall
   clock, global [Random], hash-order iteration, domain identity, GC
   counters).  Effects propagate caller <- callee to a fixpoint; any
   [Ambient]/[Nondet] primitive use reachable from a simulation entry
   point is reported at the use site, with the full call chain from the
   entry in the message.  A result produced only through [Pure] and
   [Seeded] nodes is a pure function of (seed, scale) — the property the
   sharded simulator needs. *)

type effect_class = Pure | Seeded | Ambient | Nondet

let class_name = function
  | Pure -> "Pure"
  | Seeded -> "SeededRandom"
  | Ambient -> "Ambient"
  | Nondet -> "Nondet"

let rank = function Pure -> 0 | Seeded -> 1 | Ambient -> 2 | Nondet -> 3
let join a b = if rank a >= rank b then a else b
let leq a b = rank a <= rank b

(* Least fixpoint of [eff i = join base(i) (join over edges (i,j) of
   eff j)].  Kept as a standalone function over plain arrays so the
   property tests can check monotonicity under edge addition directly. *)
let solve ~n ~base ~edges =
  let eff = Array.copy base in
  ignore n;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (i, j) ->
        let v = join eff.(i) eff.(j) in
        if rank v > rank eff.(i) then begin
          eff.(i) <- v;
          changed := true
        end)
      edges
  done;
  eff

(* Units whose insides are exempt: blessed configuration loaders read the
   host on purpose, before simulation starts. *)
let blessed_units = [ "Domconfig" ]

let rec last2 = function
  | [ a; b ] -> Some (a, b)
  | _ :: rest -> last2 rest
  | [] -> None

(* Classification of a path that resolves to no scanned binding. *)
let classify_external path =
  if List.mem "Prng" path then Some (Seeded, "seed-derived randomness")
  else
    match path with
    | "Random" :: _ -> Some (Nondet, "global Random state")
    | [ ("open_in" | "open_in_bin") ] -> Some (Ambient, "file read")
    | _ -> (
        match last2 path with
        | Some ("Random", _) -> Some (Nondet, "global Random state")
        | Some ("Unix", ("gettimeofday" | "time")) | Some ("Sys", "time") ->
            Some (Nondet, "wall-clock read")
        | Some
            ( "Hashtbl",
              ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") ) ->
            Some (Nondet, "hash-order iteration")
        | Some ("Domain", "self") -> Some (Nondet, "domain identity")
        | Some
            ( "Gc",
              ( "stat" | "quick_stat" | "counters" | "allocated_bytes"
              | "minor_words" | "major_words" ) ) ->
            Some (Nondet, "GC counter read")
        | Some (("Sys" | "Unix"), ("getenv" | "getenv_opt"))
        | Some ("Unix", "environment") ->
            Some (Ambient, "environment read")
        | Some ("Sys", ("file_exists" | "readdir" | "is_directory" | "getcwd" | "command"))
          ->
            Some (Ambient, "host filesystem read")
        | Some ("Domain", "recommended_domain_count") ->
            Some (Ambient, "machine-topology read")
        | _ -> None)

type witness = { wclass : effect_class; wdesc : string; wpath : string; wline : int }

let advice = function
  | Nondet ->
      "simulated results must be a pure function of (seed, scale) — derive \
       randomness with Prng.derive, sort before iterating, or waive with (* \
       lint:ignore effect-nondet: reason *)"
  | _ ->
      "hoist environment/host reads into the driver before jobs start, or waive \
       with (* lint:ignore effect-ambient: reason *)"

let check g =
  (* deterministic: lookup-only tables keyed by node name, never iterated *)
  let index = Hashtbl.create 256 in
  let nodes =
    Callgraph.fold_funs g [] (fun acc ~fkey ~funit ~body -> (fkey, funit, body) :: acc)
    |> List.rev
  in
  List.iteri (fun i (k, _, _) -> Hashtbl.replace index k i) nodes;
  let n = List.length nodes in
  let base = Array.make n Pure in
  let witnesses = Array.make n [] in
  let edges = ref [] in
  List.iteri
    (fun i (_, funit, body) ->
      List.iter
        (fun (path, line) ->
          if List.mem "Prng" path then
            base.(i) <- join base.(i) Seeded
          else
            match Callgraph.resolve g ~cur:funit path with
            | Callgraph.Fun { fkey; funit = tu; _ } ->
                if not (List.mem tu.Callgraph.uname blessed_units) then (
                  match Hashtbl.find_opt index fkey with
                  | Some j -> if i <> j then edges := (i, j) :: !edges
                  | None -> ())
            | Callgraph.Root _ -> ()
            | Callgraph.External p -> (
                match classify_external p with
                | Some (cls, desc) ->
                    base.(i) <- join base.(i) cls;
                    if rank cls >= rank Ambient then
                      witnesses.(i) <-
                        { wclass = cls; wdesc = desc; wpath = Ast_util.dotted p; wline = line }
                        :: witnesses.(i)
                | None -> ()))
        (Ast_util.free_refs body))
    nodes;
  let eff = solve ~n ~base ~edges:!edges in
  (* Multi-source BFS from the entry points (sorted, so the reported chain
     is deterministic); parents give the shortest entry -> node chain. *)
  let out = Array.make (max n 1) [] in
  List.iter (fun (i, j) -> out.(i) <- j :: out.(i)) !edges;
  Array.iteri (fun i l -> out.(i) <- List.sort_uniq compare l) out;
  let parent = Array.make (max n 1) (-2) in
  let q = Queue.create () in
  List.iter
    (fun k ->
      match Hashtbl.find_opt index k with
      | Some i when parent.(i) = -2 ->
          parent.(i) <- -1;
          Queue.add i q
      | _ -> ())
    (Callgraph.entry_keys g);
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    List.iter
      (fun j ->
        if parent.(j) = -2 then begin
          parent.(j) <- i;
          Queue.add j q
        end)
      out.(i)
  done;
  let name_of i = match List.nth nodes i with k, _, _ -> k in
  let rec chain i acc =
    let acc = name_of i :: acc in
    if parent.(i) < 0 then acc else chain parent.(i) acc
  in
  let issues = ref [] in
  List.iteri
    (fun i (_, funit, _) ->
      (* a reached node's direct witnesses are exactly what lifted its
         fixpoint class above Seeded, so reporting them covers [eff] *)
      if parent.(i) >= -1 && rank eff.(i) >= rank Ambient then
        List.iter
          (fun w ->
            let rule =
              if w.wclass = Nondet then "effect-nondet" else "effect-ambient"
            in
            let trail = String.concat " → " (chain i []) in
            issues :=
              {
                Report.file = funit.Callgraph.ufile;
                line = w.wline;
                rule;
                message =
                  Printf.sprintf "%s (%s) reached from simulation entry via %s: %s"
                    w.wpath w.wdesc trail (advice w.wclass);
              }
              :: !issues)
          witnesses.(i))
    nodes;
  List.sort_uniq compare !issues

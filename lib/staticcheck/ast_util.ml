open Parsetree
module S = Set.Make (String)

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let rec flatten (l : Longident.t) =
  match l with
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (l, s) -> Option.map (fun p -> p @ [ s ]) (flatten l)
  | Longident.Lapply _ -> None

let strip_stdlib = function "Stdlib" :: (_ :: _ as rest) -> rest | p -> p

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Option.map strip_stdlib (flatten txt)
  | _ -> None

let dotted = String.concat "."

let in_experiments path =
  List.exists (String.equal "experiments") (String.split_on_char '/' path)

(* ------------------------------------------------------------------ *)
(* Mutable-state constructors.  Synchronized state (atomics, mutexes,
   arrays whose every cell is an atomic) is recorded but never flagged. *)

let unsync_ctors =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Buffer"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Array"; "make_matrix" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
  ]

let sync_ctors =
  [
    [ "Atomic"; "make" ];
    [ "Mutex"; "create" ];
    [ "Condition"; "create" ];
    [ "Semaphore"; "Counting"; "make" ];
    [ "Semaphore"; "Binary"; "make" ];
  ]

(* [Some (ctor, synchronized)] when [e] constructs mutable state. *)
let rec mutable_ctor e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> mutable_ctor e
  | Pexp_array (_ :: _) -> Some ("[| … |]", false)
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | None -> None
      | Some p ->
          if List.mem p sync_ctors then Some (dotted p, true)
          else if List.mem p unsync_ctors then
            let cell_sync =
              (* [Array.make n (Atomic.make …)] or
                 [Array.init n (fun _ -> Atomic.make …)]: the array itself
                 is only written at creation; the cells synchronize. *)
              (p = [ "Array"; "make" ] || p = [ "Array"; "init" ])
              && List.exists
                   (fun (_, a) ->
                     let cell =
                       match a.pexp_desc with
                       | Pexp_fun (_, _, _, body) -> body
                       | _ -> a
                     in
                     match mutable_ctor cell with
                     | Some (_, true) -> true
                     | _ -> false)
                   args
            in
            Some (dotted p, cell_sync)
          else None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* What a file declares: structure-level mutable roots (at any module
   nesting depth), module aliases, structure-level value bindings (the
   reachability graph's nodes), record-field declarations, includes. *)

type root = { rline : int; rkind : string; rsync : bool }

(* One record-field declaration.  [fheads] is the chain of outermost
   type-constructor heads of the field's type, outer to inner through
   single-argument constructors ([Trace.t option] gives
   [["option"; "Trace.t"]]) — how the ownership pass recognizes embedded
   host state and known mutable containers without type inference. *)
type field_decl = {
  ftype : string;  (** dotted path of the declaring record type *)
  fname : string;
  fline : int;
  fmut : bool;
  fheads : string list;
}

type decls = {
  mutable roots : (string * root) list;  (** dotted path -> root *)
  mutable aliases : (string list * string list) list;
  mutable funs : (string * expression) list;  (** dotted path -> rhs *)
  mutable flines : (string * int) list;  (** dotted fun path -> binding line *)
  mutable fields : int list;  (** lines of [mutable] record fields *)
  mutable tfields : field_decl list;  (** every record-field declaration *)
  mutable includes : (string list * string list) list;
      (** [include M]: prefix where it appears -> included module path *)
}

let rec type_heads ct =
  match ct.ptyp_desc with
  | Ptyp_constr (lid, args) -> (
      match flatten lid.Asttypes.txt with
      | None -> []
      | Some p ->
          let head = dotted (strip_stdlib p) in
          head :: (match args with [ a ] -> type_heads a | _ -> []))
  | Ptyp_alias (ct, _) | Ptyp_poly (_, ct) -> type_heads ct
  | _ -> []

let rec scan_structure_into prefix decls str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = name; _ } -> (
                  let path = prefix @ [ name ] in
                  match mutable_ctor vb.pvb_expr with
                  | Some (kind, sync) ->
                      decls.roots <-
                        ( dotted path,
                          { rline = line_of vb.pvb_loc; rkind = kind; rsync = sync } )
                        :: decls.roots
                  | None ->
                      decls.funs <- (dotted path, vb.pvb_expr) :: decls.funs;
                      decls.flines <-
                        (dotted path, line_of vb.pvb_loc) :: decls.flines)
              | _ -> ())
            vbs
      | Pstr_module mb -> scan_module prefix decls mb
      | Pstr_recmodule mbs -> List.iter (scan_module prefix decls) mbs
      | Pstr_type (_, tds) ->
          List.iter
            (fun td ->
              match td.ptype_kind with
              | Ptype_record fields ->
                  let ftype = dotted (prefix @ [ td.ptype_name.Asttypes.txt ]) in
                  List.iter
                    (fun f ->
                      let fmut = f.pld_mutable = Asttypes.Mutable in
                      if fmut then decls.fields <- line_of f.pld_loc :: decls.fields;
                      decls.tfields <-
                        {
                          ftype;
                          fname = f.pld_name.Asttypes.txt;
                          fline = line_of f.pld_loc;
                          fmut;
                          fheads = type_heads f.pld_type;
                        }
                        :: decls.tfields)
                    fields
              | _ -> ())
            tds
      | Pstr_include incl -> (
          let rec strip me =
            match me.pmod_desc with Pmod_constraint (me, _) -> strip me | _ -> me
          in
          match (strip incl.pincl_mod).pmod_desc with
          | Pmod_structure str -> scan_structure_into prefix decls str
          | Pmod_ident { txt; _ } -> (
              match flatten txt with
              | Some target -> decls.includes <- (prefix, target) :: decls.includes
              | None -> ())
          | _ -> () (* functor application etc.: opaque *))
      | _ -> ())
    str

and scan_module prefix decls mb =
  match mb.pmb_name.Asttypes.txt with
  | None -> ()
  | Some name -> (
      let rec strip me =
        match me.pmod_desc with Pmod_constraint (me, _) -> strip me | _ -> me
      in
      match (strip mb.pmb_expr).pmod_desc with
      | Pmod_structure str -> scan_structure_into (prefix @ [ name ]) decls str
      | Pmod_ident { txt; _ } -> (
          match flatten txt with
          | Some target -> decls.aliases <- (prefix @ [ name ], target) :: decls.aliases
          | None -> ())
      | _ -> ())

let scan_structure str =
  let decls =
    {
      roots = [];
      aliases = [];
      funs = [];
      flines = [];
      fields = [];
      tfields = [];
      includes = [];
    }
  in
  scan_structure_into [] decls str;
  decls

(* Chase module aliases: rewrite the longest alias prefix of [path],
   bounded so alias cycles cannot loop. *)
let resolve aliases path =
  let rec prefix_of a p =
    match (a, p) with
    | [], rest -> Some rest
    | x :: xs, y :: ys when String.equal x y -> prefix_of xs ys
    | _ -> None
  in
  let step path =
    List.fold_left
      (fun best (a, target) ->
        match (best, prefix_of a path) with
        | Some _, _ -> best
        | None, Some rest when rest <> [] -> Some (target @ rest)
        | None, _ -> None)
      None aliases
  in
  let rec chase path fuel =
    if fuel = 0 then path
    else match step path with Some path' -> chase path' (fuel - 1) | None -> path
  in
  chase path 8

(* ------------------------------------------------------------------ *)
(* Free identifiers of an expression: every referenced path whose head is
   not locally bound, with the source line of the reference and, when
   [protect = `Track], the path of the innermost [Mutex.protect] mutex
   guarding it.  With [protect = `Skip], subtrees under [Mutex.protect]
   are not visited at all — the domain-capture semantics: that capture is
   synchronized by construction. *)

let pat_vars p =
  let vs = ref S.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> vs := S.add txt !vs
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  !vs

let is_mutex_protect f =
  match ident_path f with Some [ "Mutex"; "protect" ] -> true | _ -> false

type guard = string list option

(* Applications whose arguments mutate state: a root passed (syntactically)
   to one of these counts as written, which is what separates a shared
   read-only table from state that actually needs a locking discipline. *)
let is_write_op p =
  let rec last2 = function
    | [ a; b ] -> Some (a, b)
    | _ :: rest -> last2 rest
    | [] -> None
  in
  match p with
  | [ ":=" ] | [ "incr" ] | [ "decr" ] -> true
  | _ -> (
      match last2 p with
      | Some ("Array", ("set" | "unsafe_set" | "fill" | "blit"))
      | Some ("Bytes", ("set" | "unsafe_set" | "fill" | "blit"))
      | Some
          ( "Hashtbl",
            ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace") )
      | Some ("Queue", ("push" | "add" | "pop" | "take" | "clear" | "transfer"))
      | Some ("Stack", ("push" | "pop" | "clear"))
      | Some
          ( "Buffer",
            ( "add_string" | "add_char" | "add_bytes" | "add_buffer" | "clear"
            | "reset" | "truncate" ) ) ->
          true
      | _ -> false)

let walk_refs ~protect expr =
  let acc = ref [] in
  let env = ref S.empty in
  let guard : guard ref = ref None in
  let emit ?(written = false) e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match flatten txt with
        | Some [ x ] when S.mem x !env -> ()
        | Some p -> acc := (strip_stdlib p, line_of e.pexp_loc, !guard, written) :: !acc
        | None -> ())
    | _ -> ()
  in
  let rec handler iter e =
    match e.pexp_desc with
    | Pexp_ident _ -> emit e
    | Pexp_let (rf, vbs, body) ->
        let saved = !env in
        let bound =
          List.fold_left (fun s vb -> S.union s (pat_vars vb.pvb_pat)) S.empty vbs
        in
        if rf = Asttypes.Recursive then env := S.union saved bound;
        List.iter (fun vb -> iter.Ast_iterator.expr iter vb.pvb_expr) vbs;
        env := S.union saved bound;
        iter.Ast_iterator.expr iter body;
        env := saved
    | Pexp_fun (_, default, pat, body) ->
        let saved = !env in
        Option.iter (iter.Ast_iterator.expr iter) default;
        env := S.union saved (pat_vars pat);
        iter.Ast_iterator.expr iter body;
        env := saved
    | Pexp_function cases -> cases_handler iter cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        iter.Ast_iterator.expr iter scrut;
        cases_handler iter cases
    | Pexp_for (pat, lo, hi, _, body) ->
        let saved = !env in
        iter.Ast_iterator.expr iter lo;
        iter.Ast_iterator.expr iter hi;
        env := S.union saved (pat_vars pat);
        iter.Ast_iterator.expr iter body;
        env := saved
    | Pexp_apply (f, args) when is_mutex_protect f -> (
        match protect with
        | `Skip -> ()
        | `Track ->
            (* [Mutex.protect m thunk]: references inside [thunk] are
               guarded by [m]; the mutex argument itself is a plain use. *)
            let mutex =
              List.find_map
                (fun (l, a) -> if l = Asttypes.Nolabel then ident_path a else None)
                args
            in
            List.iteri
              (fun i (l, a) ->
                let is_mutex_arg = l = Asttypes.Nolabel && i = 0 in
                if is_mutex_arg then iter.Ast_iterator.expr iter a
                else begin
                  let saved_guard = !guard in
                  (match mutex with Some m -> guard := Some m | None -> ());
                  iter.Ast_iterator.expr iter a;
                  guard := saved_guard
                end)
              args)
    | Pexp_apply (f, args)
      when match ident_path f with Some p -> is_write_op p | None -> false ->
        iter.Ast_iterator.expr iter f;
        List.iter
          (fun (_, a) ->
            match a.pexp_desc with
            | Pexp_ident _ -> emit ~written:true a
            | _ -> iter.Ast_iterator.expr iter a)
          args
    | Pexp_setfield (target, _, v) ->
        (match target.pexp_desc with
        | Pexp_ident _ -> emit ~written:true target
        | _ -> iter.Ast_iterator.expr iter target);
        iter.Ast_iterator.expr iter v
    | _ -> Ast_iterator.default_iterator.expr iter e
  and cases_handler iter cases =
    List.iter
      (fun c ->
        let saved = !env in
        env := S.union saved (pat_vars c.pc_lhs);
        Option.iter (iter.Ast_iterator.expr iter) c.pc_guard;
        iter.Ast_iterator.expr iter c.pc_rhs;
        env := saved)
      cases
  in
  let it = { Ast_iterator.default_iterator with expr = handler } in
  it.expr it expr;
  List.rev !acc

let free_paths expr = List.map (fun (p, _, _, _) -> p) (walk_refs ~protect:`Skip expr)

let free_refs expr =
  List.map (fun (p, l, _, _) -> (p, l)) (walk_refs ~protect:`Track expr)

let guarded_refs expr = walk_refs ~protect:`Track expr

(* ------------------------------------------------------------------ *)
(* Spawn sites and function-local mutable bindings, anywhere in a file. *)

let is_spawn path =
  let rec last2 = function
    | [ a; b ] -> Some (a, b)
    | _ :: rest -> last2 rest
    | [] -> None
  in
  match last2 path with
  | Some ("Domain", "spawn") | Some ("Thread", "create") -> true
  | _ -> false

type locals = {
  spawns : (int * expression) list;
  local_roots : (string * root) list;
  local_funs : (string * expression) list;
}

let scan_expressions str =
  let spawns = ref [] and local_roots = ref [] and local_funs = ref [] in
  let seen_local = ref S.empty in
  let handler iter e =
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = name; _ } -> (
                match mutable_ctor vb.pvb_expr with
                | Some (kind, sync) ->
                    local_roots :=
                      ( name,
                        { rline = line_of vb.pvb_loc; rkind = kind; rsync = sync } )
                      :: !local_roots
                | None -> (
                    match vb.pvb_expr.pexp_desc with
                    | Pexp_fun _ | Pexp_function _ ->
                        if not (S.mem name !seen_local) then begin
                          seen_local := S.add name !seen_local;
                          local_funs := (name, vb.pvb_expr) :: !local_funs
                        end
                    | _ -> ()))
            | _ -> ())
          vbs
    | Pexp_apply (f, args) -> (
        match ident_path f with
        | Some p when is_spawn p -> (
            match List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args with
            | Some (_, closure) -> spawns := (line_of e.pexp_loc, closure) :: !spawns
            | None -> ())
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr iter e
  in
  let it = { Ast_iterator.default_iterator with expr = handler } in
  it.structure it str;
  { spawns = !spawns; local_roots = !local_roots; local_funs = !local_funs }

(** Batch-means confidence intervals for steady-state simulation output.

    Per-request samples from a queueing simulation are autocorrelated, so
    the naive [stddev/sqrt n] interval is far too tight.  The standard
    remedy (Law & Kelton) is batch means: split the run into [b]
    contiguous batches, whose means are approximately independent, and
    build a Student-t interval over them.  This is what makes the
    validation rig's tolerance {e statistical} — a wider CI on a noisier
    run, rather than a magic epsilon. *)

type t = {
  mean : float;  (** grand mean of the batch means *)
  half_width : float;
      (** 95% half-width; [infinity] when fewer than two full batches of
          data exist, so a tolerance check never rejects for lack of
          samples *)
  batches : int;  (** batches actually used (0 when insufficient data) *)
  count : int;  (** raw samples supplied *)
}

val t_critical : df:int -> float
(** Two-sided 95% Student-t critical value; exact for [df <= 30], 1.96
    beyond.  @raise Invalid_argument when [df < 1]. *)

val batch_means : ?batches:int -> float array -> t
(** [batch_means ~batches samples] (default 20 batches).  The effective
    batch count is reduced so every batch holds at least two samples; a
    trailing remainder shorter than one batch is dropped.
    @raise Invalid_argument when [batches < 2]. *)

val within : t -> target:float -> bool
(** Whether [target] lies inside the interval. *)

val pp : Format.formatter -> t -> unit

type t = { mean : float; half_width : float; batches : int; count : int }

(* Two-sided 95% critical values of Student's t for 1..30 degrees of
   freedom; beyond 30 the normal value 1.96 is close enough (the exact
   t_30 is 2.042). *)
let t_crit_95 =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_critical ~df =
  if df < 1 then invalid_arg "Ci.t_critical: df must be positive";
  if df <= Array.length t_crit_95 then t_crit_95.(df - 1) else 1.96

let mean_of samples lo hi =
  let acc = ref 0.0 in
  for i = lo to hi - 1 do
    acc := !acc +. samples.(i)
  done;
  !acc /. float_of_int (hi - lo)

(* Correlated-sample CI by the method of batch means: split the series
   into [batches] contiguous equal batches (a trailing remainder of fewer
   than [batch] samples is dropped) and treat the batch means as
   approximately independent.  With fewer than two batches' worth of data
   the half-width is [infinity]: no spread estimate means no claim, so a
   tolerance check never rejects on insufficient data. *)
let batch_means ?(batches = 20) samples =
  if batches < 2 then invalid_arg "Ci.batch_means: batches must be at least 2";
  let n = Array.length samples in
  let b = Stdlib.min batches (n / 2) in
  if b < 2 then
    {
      mean = (if n = 0 then 0.0 else mean_of samples 0 n);
      half_width = infinity;
      batches = 0;
      count = n;
    }
  else begin
    let batch = n / b in
    let stats = Stats.Running.create () in
    for k = 0 to b - 1 do
      Stats.Running.add stats (mean_of samples (k * batch) ((k + 1) * batch))
    done;
    {
      mean = Stats.Running.mean stats;
      half_width =
        t_critical ~df:(b - 1) *. Stats.Running.stddev stats /. sqrt (float_of_int b);
      batches = b;
      count = n;
    }
  end

let within t ~target = Float.abs (t.mean -. target) <= t.half_width

let pp ppf t =
  Format.fprintf ppf "%.4g ± %.2g (%d batches over %d samples)" t.mean t.half_width
    t.batches t.count

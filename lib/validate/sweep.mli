(** Measured-vs-analytic sweep harness.

    Each grid {!point} drives the {e real} simulator — an
    {!Workloads.Open_loop} Poisson source against the credit scheduler,
    host dispatch loop, and a pinned DVFS governor — then compares the
    measured utilization, mean sojourn time, and mean number in system
    against the {!Oracle} closed forms, with a {!Ci} batch-means interval
    deciding agreement.  The oracle's service rate is
    [mu = speed / service_mean] where [speed = ratio * cf] at the
    governor's pinned frequency: a capacity-law bug therefore flips the
    pass/fail table even though both sides are "correct" in isolation.

    Single-server points run through the whole hypervisor stack
    (workload mode); multi-server points tick the station directly on the
    event queue (station mode), since the host model is single-core.

    Every point's seed derives from its parameters via {!Prng.derive_seed},
    so the sweep is bit-identical for any [jobs] count. *)

type policy = Performance | Powersave
(** Which trivial governor pins the host frequency: maximum or minimum. *)

val policy_name : policy -> string

type point = {
  rate : float;  (** Poisson arrival rate, requests per second *)
  service_mean : float;  (** mean service demand, absolute seconds *)
  servers : int;
  policy : policy;
}

val point_key : point -> string
(** Stable seed-derivation key, a pure function of the parameters. *)

val point :
  rho:float -> service_mean:float -> servers:int -> policy:policy -> point
(** Builds a point from a target per-server utilization: the arrival rate
    is [rho * speed * servers / service_mean] at the policy's effective
    speed, so the same [rho] exercises both frequencies.
    @raise Invalid_argument unless [rho] is in (0, 1). *)

val speed_of_policy : policy -> float
(** Effective capacity [ratio * cf] at the policy's pinned frequency on
    the paper's Optiplex 755 testbed (1.0 at maximum, 0.6 at minimum). *)

type measurement = {
  util : Ci.t;  (** per-window busy fraction (divided by server count) *)
  sojourn : Ci.t;  (** per-request time in system, seconds *)
  n_sys : Ci.t;  (** number in system seen at arrival instants (PASTA) *)
  completed : int;
}

val measure : ?horizon:float -> ?warmup:float -> point -> measurement
(** Runs the point for [warmup] simulated seconds (default 30, discarded)
    plus [horizon] seconds (default 300, measured). *)

type tolerance = {
  sigma : float;  (** CI half-width multiplier *)
  rel : float;  (** relative slack on the analytic target *)
  util_floor : float;  (** absolute utilization slack *)
  time_floor : float;
      (** absolute sojourn slack in seconds — covers the one-tick arrival
          visibility delay; the number-in-system floor is
          [rate * time_floor + 0.03] by Little's law *)
}

val default_tolerance : tolerance

type verdict = {
  metric : string;  (** ["util"], ["sojourn"] or ["n_sys"] *)
  measured : float;
  half_width : float;
  oracle : float;
  ok : bool;
}

type result = {
  point : point;
  speed : float;
  completed : int;
  verdicts : verdict list;
  pass : bool;  (** every verdict agreed *)
}

val assess :
  ?tolerance:tolerance -> ?mu_scale:float -> point -> measurement -> result
(** Compares a measurement against the closed form with service rate
    [mu_scale * speed / service_mean].  [mu_scale] (default 1) perturbs
    the oracle only — the injected-bug test sets it to 0.8 to demonstrate
    that a mis-scaled service rate flips the table. *)

val run_point :
  ?horizon:float ->
  ?warmup:float ->
  ?tolerance:tolerance ->
  ?mu_scale:float ->
  point ->
  result

val quick_grid : point list
(** Three points covering M/M/1 at full speed, M/M/1 under the powersave
    governor (the DVFS case), and M/M/3 — the [@validatecheck] sweep. *)

val default_grid : point list
(** The full 36-point grid: rho 0.3/0.5/0.7 x service 50/100 ms x
    1/2/4 servers x both policies. *)

val run_grid :
  ?jobs:int ->
  ?horizon:float ->
  ?warmup:float ->
  ?tolerance:tolerance ->
  ?mu_scale:float ->
  point list ->
  result list
(** Runs the points on [jobs] domains (default 1), results in grid order
    regardless of pool size.  Per-point seeds derive from {!point_key},
    so the output is bit-identical for any [jobs].
    @raise Invalid_argument when [jobs < 1]. *)

val failures : result list -> result list

val verdict_of : result -> string -> verdict
(** @raise Invalid_argument on an unknown metric name. *)

val table : result list -> Table.t
(** Pass/fail report: measured next to analytic ([*] columns) per point. *)

val csv_header : string

val to_csv : result list -> string
(** One line per point under {!csv_header}, [%.6g] formatting — the
    byte-stable artifact the determinism tests compare. *)

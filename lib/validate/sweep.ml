module Processor = Cpu_model.Processor
module Arch = Cpu_model.Arch
module Frequency = Cpu_model.Frequency
module Calibration = Cpu_model.Calibration
module Vm = Hypervisor.Domain
module Host = Hypervisor.Host
module Open_loop = Workloads.Open_loop

type policy = Performance | Powersave

let policy_name = function Performance -> "performance" | Powersave -> "powersave"

type point = {
  rate : float;
  service_mean : float;
  servers : int;
  policy : policy;
}

let point_key p =
  Printf.sprintf "validate/%.6g/%.6g/%d/%s" p.rate p.service_mean p.servers
    (policy_name p.policy)

(* The paper's main testbed; cf = 1 there, so the effective speed at the
   minimum frequency is exactly the frequency ratio 1600/2667 = 0.6. *)
let arch = Arch.optiplex_755

let freq_of_policy = function
  | Performance -> Frequency.max_freq arch.Arch.freq_table
  | Powersave -> Frequency.min_freq arch.Arch.freq_table

let speed_of_policy policy =
  Calibration.effective_speed arch.Arch.calibration arch.Arch.freq_table
    (freq_of_policy policy)

let point ~rho ~service_mean ~servers ~policy =
  if not (rho > 0.0 && rho < 1.0) then
    invalid_arg "Sweep.point: rho must be in (0, 1)";
  let speed = speed_of_policy policy in
  {
    rate = rho *. speed *. float_of_int servers /. service_mean;
    service_mean;
    servers;
    policy;
  }

type measurement = {
  util : Ci.t;
  sojourn : Ci.t;
  n_sys : Ci.t;
  completed : int;
}

let util_windows = 32

let measure ?(horizon = 300.0) ?(warmup = 30.0) p =
  if not (horizon > 0.0) then invalid_arg "Sweep.measure: horizon must be positive";
  if not (warmup >= 0.0) then invalid_arg "Sweep.measure: warmup must be non-negative";
  let seed = Prng.derive_seed ~key:(point_key p) in
  let sim = Simulator.create () in
  let source =
    Open_loop.create ~seed ~servers:p.servers ~rate:p.rate
      ~service_mean:p.service_mean ()
  in
  let util_log = Vec.Floats.create () in
  let window = horizon /. float_of_int util_windows in
  if p.servers = 1 then begin
    (* Through the whole stack: VM on a credit-scheduled host whose
       governor pins the policy's frequency, so service passes the
       paper's ratio*cf capacity law. *)
    let freq = freq_of_policy p.policy in
    let processor = Processor.create ~init_freq:freq arch in
    let governor =
      match p.policy with
      | Performance -> Governors.Governor.performance processor
      | Powersave -> Governors.Governor.powersave processor
    in
    let vm = Vm.create ~name:"open-loop" ~credit_pct:0.0 (Open_loop.workload source) in
    let scheduler = Sched_credit.create [ vm ] in
    let host = Host.create ~sim ~processor ~scheduler ~governor () in
    Host.run_for host (Sim_time.of_sec_f warmup);
    Open_loop.reset_stats source;
    let probe = Host.utilization_probe host in
    ignore
      (Simulator.every sim (Sim_time.of_sec_f window) (fun () ->
           Vec.Floats.push util_log (probe ())));
    Host.run_for host (Sim_time.of_sec_f horizon)
  end
  else begin
    (* Station mode: the host model is single-core, so multi-server points
       tick the station directly on the event queue at the host's dispatch
       quantum, with the policy's effective speed applied uniformly. *)
    let speed = speed_of_policy p.policy in
    let quantum = Sim_time.of_ms 1 in
    ignore
      (Simulator.every sim quantum (fun () ->
           Open_loop.step source ~now:(Simulator.now sim) ~dt:quantum ~speed));
    Simulator.run_until sim (Sim_time.of_sec_f warmup);
    Open_loop.reset_stats source;
    let served = ref 0.0 in
    ignore
      (Simulator.every sim (Sim_time.of_sec_f window) (fun () ->
           let busy = Open_loop.busy_time source in
           Vec.Floats.push util_log
             ((busy -. !served) /. (window *. float_of_int p.servers));
           served := busy));
    Simulator.run_until sim (Sim_time.of_sec_f (warmup +. horizon))
  end;
  {
    util = Ci.batch_means ~batches:8 (Vec.Floats.to_array util_log);
    sojourn = Ci.batch_means (Open_loop.sojourn_samples source);
    n_sys = Ci.batch_means (Open_loop.queue_seen_samples source);
    completed = Open_loop.completed_requests source;
  }

type tolerance = {
  sigma : float;
  rel : float;
  util_floor : float;
  time_floor : float;
}

(* [time_floor] absorbs the dispatch-tick quantisation: arrivals become
   visible to the server only at 1 ms boundaries, adding up to one tick of
   deterministic delay to every sojourn (and [rate * time_floor] phantom
   requests to the queue seen at arrivals). *)
let default_tolerance =
  { sigma = 3.0; rel = 0.05; util_floor = 0.015; time_floor = 0.004 }

type verdict = {
  metric : string;
  measured : float;
  half_width : float;
  oracle : float;
  ok : bool;
}

type result = {
  point : point;
  speed : float;
  completed : int;
  verdicts : verdict list;
  pass : bool;
}

let check tol ~metric ~floor (ci : Ci.t) ~target =
  let slack = (tol.sigma *. ci.Ci.half_width) +. (tol.rel *. Float.abs target) +. floor in
  {
    metric;
    measured = ci.Ci.mean;
    half_width = ci.Ci.half_width;
    oracle = target;
    ok = Float.abs (ci.Ci.mean -. target) <= slack;
  }

let assess ?(tolerance = default_tolerance) ?(mu_scale = 1.0) p (m : measurement) =
  let speed = speed_of_policy p.policy in
  let mu = mu_scale *. speed /. p.service_mean in
  let o = Oracle.mmc ~lambda:p.rate ~mu ~servers:p.servers in
  let verdicts =
    [
      check tolerance ~metric:"util" ~floor:tolerance.util_floor m.util
        ~target:o.Oracle.rho;
      check tolerance ~metric:"sojourn" ~floor:tolerance.time_floor m.sojourn
        ~target:o.Oracle.sojourn;
      check tolerance ~metric:"n_sys"
        ~floor:((p.rate *. tolerance.time_floor) +. 0.03)
        m.n_sys ~target:o.Oracle.n_sys;
    ]
  in
  {
    point = p;
    speed;
    completed = m.completed;
    verdicts;
    pass = List.for_all (fun v -> v.ok) verdicts;
  }

let run_point ?horizon ?warmup ?tolerance ?mu_scale p =
  assess ?tolerance ?mu_scale p (measure ?horizon ?warmup p)

let quick_grid =
  [
    point ~rho:0.5 ~service_mean:0.1 ~servers:1 ~policy:Performance;
    (* The DVFS case: at the minimum frequency the oracle's service rate
       is scaled by ratio*cf = 0.6, so a capacity-law bug shows up as a
       queueing-delay mismatch here. *)
    point ~rho:0.6 ~service_mean:0.1 ~servers:1 ~policy:Powersave;
    point ~rho:0.5 ~service_mean:0.05 ~servers:3 ~policy:Performance;
  ]

let default_grid =
  List.concat_map
    (fun rho ->
      List.concat_map
        (fun service_mean ->
          List.concat_map
            (fun servers ->
              List.map
                (fun policy -> point ~rho ~service_mean ~servers ~policy)
                [ Performance; Powersave ])
            [ 1; 2; 4 ])
        [ 0.05; 0.1 ])
    [ 0.3; 0.5; 0.7 ]

let run_grid ?(jobs = 1) ?horizon ?warmup ?tolerance ?mu_scale points =
  if jobs < 1 then invalid_arg "Sweep.run_grid: jobs must be positive";
  let points = Array.of_list points in
  let n = Array.length points in
  (* One atomic cell per point, published by whichever worker claims the
     index — the same hand-off pattern as Runner.run_all, so the result
     list is in grid order for any pool size and each point's seed is a
     pure function of its parameters. *)
  let results = Array.init n (fun _ -> Atomic.make None) in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        Atomic.set results.(i)
          (Some (run_point ?horizon ?warmup ?tolerance ?mu_scale points.(i)));
        loop ()
      end
    in
    loop ()
  in
  let pool = Stdlib.min jobs (Stdlib.max n 1) in
  if pool = 1 then worker ()
  else begin
    let domains = List.init (pool - 1) (fun _ -> Stdlib.Domain.spawn worker) in
    worker ();
    List.iter Stdlib.Domain.join domains
  end;
  Array.to_list
    (Array.map
       (fun cell ->
         match Atomic.get cell with
         | Some r -> r
         (* unreachable: workers return only once [next] has passed [n],
            and each claimed index is filled before the next claim. *)
         | None -> assert false)
       results)

let failures results = List.filter (fun r -> not r.pass) results

let verdict_of r metric =
  match List.find_opt (fun v -> String.equal v.metric metric) r.verdicts with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Sweep.verdict_of: no %s verdict" metric)

let table results =
  let t =
    Table.create
      ~columns:
        [
          ("arrivals/s", Table.Right);
          ("service (ms)", Table.Right);
          ("c", Table.Right);
          ("policy", Table.Left);
          ("speed", Table.Right);
          ("util", Table.Right);
          ("util*", Table.Right);
          ("W (ms)", Table.Right);
          ("W* (ms)", Table.Right);
          ("L", Table.Right);
          ("L*", Table.Right);
          ("requests", Table.Right);
          ("verdict", Table.Left);
        ]
  in
  List.iter
    (fun r ->
      let util_v = verdict_of r "util" in
      let sojourn_v = verdict_of r "sojourn" in
      let n_sys_v = verdict_of r "n_sys" in
      Table.add_row t
        [
          Printf.sprintf "%.2f" r.point.rate;
          Printf.sprintf "%.1f" (r.point.service_mean *. 1000.0);
          string_of_int r.point.servers;
          policy_name r.point.policy;
          Printf.sprintf "%.3f" r.speed;
          Printf.sprintf "%.3f" util_v.measured;
          Printf.sprintf "%.3f" util_v.oracle;
          Printf.sprintf "%.1f" (sojourn_v.measured *. 1000.0);
          Printf.sprintf "%.1f" (sojourn_v.oracle *. 1000.0);
          Printf.sprintf "%.2f" n_sys_v.measured;
          Printf.sprintf "%.2f" n_sys_v.oracle;
          string_of_int r.completed;
          (if r.pass then "agrees" else "DISAGREES");
        ])
    results;
  t

let csv_header =
  "rate,service_mean,servers,policy,speed,completed,util,util_hw,util_oracle,sojourn,sojourn_hw,sojourn_oracle,n_sys,n_sys_hw,n_sys_oracle,pass"

let to_csv results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      let util_v = verdict_of r "util" in
      let sojourn_v = verdict_of r "sojourn" in
      let n_sys_v = verdict_of r "n_sys" in
      Buffer.add_string buf
        (Printf.sprintf
           "%.6g,%.6g,%d,%s,%.6g,%d,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%b\n"
           r.point.rate r.point.service_mean r.point.servers
           (policy_name r.point.policy)
           r.speed r.completed util_v.measured util_v.half_width util_v.oracle
           sojourn_v.measured sojourn_v.half_width sojourn_v.oracle
           n_sys_v.measured n_sys_v.half_width n_sys_v.oracle r.pass))
    results;
  Buffer.contents buf

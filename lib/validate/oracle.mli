(** Closed-form queueing oracles.

    Dependency-free steady-state results the validation rig compares the
    simulator against: M/M/1, M/M/c (via the Erlang-C waiting probability),
    and the machine-repairman model matching {!Workloads.Closed_loop}.
    Rates are per second; times in seconds.  All formulas are textbook
    (e.g. Kleinrock vol. 1) — the value here is that they are computed
    outside the simulator, from the {e parameters} only. *)

exception Unstable of string
(** Raised when the offered load saturates the servers ([rho >= 1]) and no
    steady state exists. *)

type metrics = {
  rho : float;  (** per-server utilization [lambda / (c * mu)] *)
  n_sys : float;  (** mean number in system, L *)
  n_queue : float;  (** mean number waiting, Lq *)
  sojourn : float;  (** mean time in system, W (seconds) *)
  waiting : float;  (** mean time in queue, Wq (seconds) *)
}

val mm1 : lambda:float -> mu:float -> metrics
(** Single server: [rho = lambda/mu], [L = rho/(1-rho)],
    [W = 1/(mu-lambda)].
    @raise Unstable when [lambda >= mu].
    @raise Invalid_argument on non-positive rates. *)

val erlang_c : lambda:float -> mu:float -> servers:int -> float
(** Probability that an arrival has to queue in M/M/c (the Erlang-C
    formula), with offered load [a = lambda/mu] spread over [servers].
    @raise Unstable when [a >= servers]. *)

val mmc : lambda:float -> mu:float -> servers:int -> metrics
(** M/M/c steady state: [Lq = P_wait * rho / (1-rho)] with
    [P_wait = erlang_c], then Little's law for the times.  Coincides with
    {!mm1} when [servers = 1].
    @raise Unstable when the system is saturated. *)

type repairman = {
  utilization : float;  (** server busy fraction *)
  throughput : float;  (** completions per second *)
  in_system : float;  (** mean clients waiting or in service *)
  response : float;  (** mean submit-to-completion time, seconds *)
}

val machine_repairman :
  clients:int -> think_time:float -> service_time:float -> repairman
(** The M/M/1//N finite-population model behind {!Workloads.Closed_loop}:
    [clients] users alternate exponential think periods (mean
    [think_time]) with exponential service demands (mean [service_time])
    at a single server.  [think_time = 0.0] is the saturated limit:
    utilization 1, throughput [1/service_time], response
    [clients * service_time].
    @raise Invalid_argument on a negative [think_time] or non-positive
    [clients]/[service_time]. *)

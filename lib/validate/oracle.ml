exception Unstable of string

let unstable fmt = Printf.ksprintf (fun s -> raise (Unstable s)) fmt

type metrics = {
  rho : float;
  n_sys : float;
  n_queue : float;
  sojourn : float;
  waiting : float;
}

let check_rates ~what ~lambda ~mu =
  if not (lambda > 0.0) then
    invalid_arg (Printf.sprintf "Oracle.%s: lambda must be positive" what);
  if not (mu > 0.0) then
    invalid_arg (Printf.sprintf "Oracle.%s: mu must be positive" what)

let mm1 ~lambda ~mu =
  check_rates ~what:"mm1" ~lambda ~mu;
  let rho = lambda /. mu in
  if rho >= 1.0 then unstable "M/M/1 unstable: rho = %g >= 1" rho;
  {
    rho;
    n_sys = rho /. (1.0 -. rho);
    n_queue = rho *. rho /. (1.0 -. rho);
    sojourn = 1.0 /. (mu -. lambda);
    waiting = rho /. (mu -. lambda);
  }

(* Erlang-C: probability an arrival must wait in M/M/c, with offered load
   a = lambda/mu and per-server utilization rho = a/c.  The sum accumulates
   a^k/k! incrementally; after the loop [term] holds a^c/c!. *)
let erlang_c ~lambda ~mu ~servers =
  check_rates ~what:"erlang_c" ~lambda ~mu;
  if servers < 1 then invalid_arg "Oracle.erlang_c: servers must be positive";
  let a = lambda /. mu in
  let rho = a /. float_of_int servers in
  if rho >= 1.0 then unstable "M/M/%d unstable: rho = %g >= 1" servers rho;
  let sum = ref 0.0 in
  let term = ref 1.0 in
  for k = 1 to servers do
    sum := !sum +. !term;
    term := !term *. a /. float_of_int k
  done;
  let tail = !term /. (1.0 -. rho) in
  tail /. (!sum +. tail)

let mmc ~lambda ~mu ~servers =
  if servers = 1 then mm1 ~lambda ~mu
  else begin
    let p_wait = erlang_c ~lambda ~mu ~servers in
    let a = lambda /. mu in
    let rho = a /. float_of_int servers in
    let n_queue = p_wait *. rho /. (1.0 -. rho) in
    let waiting = n_queue /. lambda in
    {
      rho;
      n_sys = n_queue +. a;
      n_queue;
      sojourn = waiting +. (1.0 /. mu);
      waiting;
    }
  end

type repairman = {
  utilization : float;
  throughput : float;
  in_system : float;
  response : float;
}

let machine_repairman ~clients ~think_time ~service_time =
  if clients < 1 then invalid_arg "Oracle.machine_repairman: clients must be positive";
  if not (think_time >= 0.0) then
    invalid_arg "Oracle.machine_repairman: think_time must be non-negative";
  if not (service_time > 0.0) then
    invalid_arg "Oracle.machine_repairman: service_time must be positive";
  let n = clients in
  if think_time = 0.0 (* lint:ignore float-eq: exact saturated-client limit *)
  then
    (* Saturated clients: the server never idles, one request completes per
       service time, and all N clients are always in the system. *)
    {
      utilization = 1.0;
      throughput = 1.0 /. service_time;
      in_system = float_of_int n;
      response = float_of_int n *. service_time;
    }
  else begin
    (* M/M/1//N: p_k proportional to N!/(N-k)! * (S/T)^k, normalised.  The
       recurrence multiplies by the remaining-client count, so no factorial
       overflows. *)
    let r = service_time /. think_time in
    let p = Array.make (n + 1) 0.0 in
    p.(0) <- 1.0;
    for k = 1 to n do
      p.(k) <- p.(k - 1) *. float_of_int (n - k + 1) *. r
    done;
    let total = Array.fold_left ( +. ) 0.0 p in
    let busy = 1.0 -. (p.(0) /. total) in
    let in_system = ref 0.0 in
    Array.iteri (fun k pk -> in_system := !in_system +. (float_of_int k *. pk /. total)) p;
    let throughput = busy /. service_time in
    {
      utilization = busy;
      throughput;
      in_system = !in_system;
      response = !in_system /. throughput (* Little's law *);
    }
  end

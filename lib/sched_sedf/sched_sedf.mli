(** The Xen SEDF (Simple Earliest Deadline First) scheduler, the paper's
    {e variable credit} scheduler (§3.1).

    Each domain is configured with a triplet [(s, p, b)]: it is guaranteed
    [s] of CPU time within every period of length [p], and when [b]
    (extratime) is set it may additionally receive slices no reserved domain
    claims.  Guaranteed slices are dispatched earliest-deadline-first; spare
    capacity is shared round-robin among extratime domains, which makes the
    scheduler work-conserving — the behaviour behind both Fig. 6/7 (SEDF
    rescues an exact-loaded VM from a frequency reduction) and Fig. 8 (a
    thrashing VM devours the host and defeats DVFS).

    The credit percentage of the paper's experiments maps to
    [s = credit/100 × p]. *)

val create :
  ?period:Sim_time.t ->
  ?extra:bool ->
  ?extra_slice:Sim_time.t ->
  Hypervisor.Domain.t list ->
  Hypervisor.Scheduler.t
(** [period] is every domain's [p] (default 100 ms); [extra] sets the [b]
    flag of all domains (default true — variable credit); [extra_slice]
    bounds one extratime grant for round-robin fairness (default 1 ms).
    @raise Invalid_argument on duplicate domains or a zero period. *)

module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler

type dom_state = {
  domain : Domain.t;
  extra : bool;
  mutable slice : Sim_time.t; (* guaranteed CPU time per period *)
  mutable credit_pct : float; (* the credit the slice was derived from *)
  mutable deadline : Sim_time.t; (* end of the current period *)
  mutable slice_remaining : Sim_time.t;
  cell : Scheduler.slice; (* reusable dispatch decision *)
  cell_opt : Scheduler.slice option;
}

type t = {
  period : Sim_time.t;
  extra_slice : Sim_time.t;
  doms : dom_state array;
  mutable rr_extra : int;
}

let slice_of t pct = Sim_time.of_sec_f (pct /. 100.0 *. Sim_time.to_sec t.period)

let rec index_of doms d i =
  if i >= Array.length doms then -1
  else if Domain.equal doms.(i).domain d then i
  else index_of doms d (i + 1)

let state t d =
  let i = index_of t.doms d 0 in
  if i < 0 then invalid_arg "Sched_sedf: unknown domain";
  t.doms.(i)

(* Lazily roll a domain forward to the period containing [now]; a domain
   that slept across several periods gets no back-pay (slices do not
   accumulate). *)
let refresh t st ~now =
  if Sim_time.compare now st.deadline >= 0 then begin
    let late = Sim_time.to_us (Sim_time.sub now st.deadline) in
    let periods = (late / Sim_time.to_us t.period) + 1 in
    st.deadline <- Sim_time.add st.deadline (Sim_time.of_us (periods * Sim_time.to_us t.period));
    st.slice_remaining <- st.slice
  end

(* Extratime: spare capacity round-robin among willing domains. *)
let rec extra_scan t exclude n i =
  if i >= n then -1
  else begin
    let idx = (t.rr_extra + 1 + i) mod n in
    let st = t.doms.(idx) in
    if
      st.extra
      && Domain.runnable st.domain
      && not (Scheduler.Mask.mem exclude st.domain)
    then idx
    else extra_scan t exclude n (i + 1)
  end

let pick t ~now ~remaining ~exclude =
  for i = 0 to Array.length t.doms - 1 do
    refresh t t.doms.(i) ~now
  done;
  (* EDF over domains still holding a guaranteed slice; the first domain in
     array order wins deadline ties. *)
  let best = ref (-1) in
  for i = 0 to Array.length t.doms - 1 do
    let st = t.doms.(i) in
    if
      Domain.runnable st.domain
      && (not (Scheduler.Mask.mem exclude st.domain))
      && Sim_time.compare st.slice_remaining Sim_time.zero > 0
      && (!best < 0 || Sim_time.compare st.deadline t.doms.(!best).deadline < 0)
    then best := i
  done;
  if !best >= 0 then begin
    let st = t.doms.(!best) in
    st.cell.Scheduler.max_slice <- Sim_time.min st.slice_remaining remaining;
    st.cell_opt
  end
  else begin
    let idx = extra_scan t exclude (Array.length t.doms) 0 in
    if idx < 0 then None
    else begin
      t.rr_extra <- idx;
      let st = t.doms.(idx) in
      st.cell.Scheduler.max_slice <- Sim_time.min t.extra_slice remaining;
      st.cell_opt
    end
  end

let charge t ~domain ~now:_ ~used =
  let st = state t domain in
  st.slice_remaining <-
    (if Sim_time.compare used st.slice_remaining >= 0 then Sim_time.zero
     else Sim_time.sub st.slice_remaining used)

let set_effective_credit t d pct =
  if pct < 0.0 then invalid_arg "Sched_sedf.set_effective_credit: negative credit";
  let st = state t d in
  st.credit_pct <- pct;
  st.slice <- slice_of t pct

let effective_credit t d = (state t d).credit_pct

let create ?(period = Sim_time.of_ms 100) ?(extra = true) ?(extra_slice = Sim_time.of_ms 1)
    domains =
  if Sim_time.equal period Sim_time.zero then invalid_arg "Sched_sedf.create: zero period";
  let ids = List.map Domain.id domains in
  if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
    invalid_arg "Sched_sedf.create: duplicate domains";
  let t =
    {
      period;
      extra_slice;
      doms = [||];
      rr_extra = 0;
    }
  in
  let doms =
    Array.of_list
      (List.map
         (fun d ->
           let pct = Domain.initial_credit d in
           let cell = { Scheduler.domain = d; max_slice = Sim_time.zero } in
           {
             domain = d;
             extra;
             slice = slice_of t pct;
             credit_pct = pct;
             deadline = period;
             slice_remaining = slice_of t pct;
             cell;
             cell_opt = Some cell;
           })
         domains)
  in
  let t = { t with doms } in
  Scheduler.make ~name:"sedf"
    ~domains:(fun () -> Array.to_list (Array.map (fun st -> st.domain) t.doms))
    ~pick:(fun ~now ~remaining ~exclude -> pick t ~now ~remaining ~exclude)
    ~charge:(fun ~domain ~now ~used -> charge t ~domain ~now ~used)
    ~set_effective_credit:(set_effective_credit t)
    ~effective_credit:(effective_credit t) ()

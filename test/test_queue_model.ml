(* Model-based test of the calendar event queue.

   A reference scheduler — a plain unordered list scanned for the minimal
   (time, seq) entry, with the same fresh-seq discipline as [Simulator] —
   is driven through the same random interleavings of schedule / cancel /
   recurring / run_until operations.  The firing order and the [pending]
   count must match exactly: the calendar buckets, the overflow heap and
   cancelled-event compaction are all implementation detail the model must
   not be able to observe. *)

let check_int = Alcotest.(check int)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Reference model *)

module Model = struct
  type entry = {
    id : int;
    mutable time : int; (* microseconds *)
    mutable seq : int;
    period : int option; (* Some p for recurring entries *)
    mutable cancelled : bool;
  }

  type t = {
    mutable clock : int;
    mutable next_seq : int;
    mutable entries : entry list; (* queued, unordered *)
  }

  let create () = { clock = 0; next_seq = 0; entries = [] }

  let fresh_seq m =
    let s = m.next_seq in
    m.next_seq <- s + 1;
    s

  let schedule m ~id ~time ~period =
    let e = { id; time; seq = fresh_seq m; period; cancelled = false } in
    m.entries <- e :: m.entries;
    e

  (* Cancelling an entry that already fired (and was removed) is a no-op,
     as in [Simulator.cancel]. *)
  let cancel e = e.cancelled <- true

  let pending m = List.length (List.filter (fun e -> not e.cancelled) m.entries)

  (* Next live entry at or before [horizon] in (time, seq) order. *)
  let next_due m horizon =
    List.fold_left
      (fun best e ->
        if e.cancelled || e.time > horizon then best
        else
          match best with
          | Some b when (b.time, b.seq) <= (e.time, e.seq) -> best
          | _ -> Some e)
      None m.entries

  let run_until m horizon log =
    let rec loop () =
      match next_due m horizon with
      | None -> ()
      | Some e ->
          m.clock <- max m.clock e.time;
          log e.id;
          (match e.period with
          | Some p ->
              (* Mirror [Simulator.every]'s re-arm: the same entry is kept,
                 with a fresh seq, one period after the fire instant. *)
              e.time <- m.clock + p;
              e.seq <- fresh_seq m
          | None -> m.entries <- List.filter (fun x -> x != e) m.entries);
          loop ()
    in
    loop ();
    m.clock <- max m.clock horizon
end

(* ------------------------------------------------------------------ *)
(* Operation sequences *)

type op =
  | Schedule of int (* delay in µs from current clock *)
  | Recur of int (* period in µs, >= 1 *)
  | Cancel of int (* index into the handle table, mod its size *)
  | RunFor of int (* advance the clock by this many µs *)

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (frequency
         [
           (* Delays up to 5 s span many calendar buckets and reach the
              overflow region beyond the bucketed window. *)
           (5, map (fun d -> Schedule d) (int_range 0 5_000_000));
           (2, map (fun p -> Recur p) (int_range 1 10_000));
           (3, map (fun i -> Cancel i) (int_range 0 200));
           (3, map (fun d -> RunFor d) (int_range 0 50_000));
         ]))

let pp_op = function
  | Schedule d -> Printf.sprintf "Schedule %d" d
  | Recur p -> Printf.sprintf "Recur %d" p
  | Cancel i -> Printf.sprintf "Cancel %d" i
  | RunFor d -> Printf.sprintf "RunFor %d" d

let arbitrary_ops =
  QCheck.make gen_ops ~print:(fun ops -> String.concat "; " (List.map pp_op ops))

let queue_matches_model ops =
  let sim = Simulator.create () in
  let model = Model.create () in
  let sim_log = ref [] and model_log = ref [] in
  let handles = ref [] and model_handles = ref [] in
  let recurring = ref [] and model_recurring = ref [] in
  let next_id = ref 0 in
  let check_point label =
    if Simulator.pending sim <> Model.pending model then
      QCheck.Test.fail_reportf "pending mismatch after %s: queue %d, model %d" label
        (Simulator.pending sim) (Model.pending model);
    if !sim_log <> !model_log then
      QCheck.Test.fail_reportf "firing order mismatch after %s: queue [%s], model [%s]"
        label
        (String.concat ";" (List.rev_map string_of_int !sim_log))
        (String.concat ";" (List.rev_map string_of_int !model_log))
  in
  List.iter
    (fun op ->
      match op with
      | Schedule delay ->
          let id = !next_id in
          incr next_id;
          let time = Sim_time.add (Simulator.now sim) (Sim_time.of_us delay) in
          let h = Simulator.at sim time (fun () -> sim_log := id :: !sim_log) in
          handles := h :: !handles;
          let e =
            Model.schedule model ~id ~time:(Sim_time.to_us time) ~period:None
          in
          model_handles := e :: !model_handles
      | Recur period ->
          let id = !next_id in
          incr next_id;
          let h =
            Simulator.every sim (Sim_time.of_us period) (fun () ->
                sim_log := id :: !sim_log)
          in
          handles := h :: !handles;
          recurring := h :: !recurring;
          let e =
            Model.schedule model ~id
              ~time:(Sim_time.to_us (Simulator.now sim) + period)
              ~period:(Some period)
          in
          model_handles := e :: !model_handles;
          model_recurring := e :: !model_recurring
      | Cancel i ->
          let hs = !handles and ms = !model_handles in
          let n = List.length hs in
          if n > 0 then begin
            let i = i mod n in
            Simulator.cancel sim (List.nth hs i);
            Model.cancel (List.nth ms i)
          end
      | RunFor delay ->
          let horizon = Sim_time.add (Simulator.now sim) (Sim_time.of_us delay) in
          Simulator.run_until sim horizon;
          Model.run_until model (Sim_time.to_us horizon) (fun id ->
              model_log := id :: !model_log);
          check_point (pp_op op))
    ops;
  (* Final drain: stop the recurring chains (they never terminate), then run
     far enough past the largest schedulable delay that every surviving
     one-shot fires through both schedulers. *)
  List.iter (fun h -> Simulator.cancel sim h) !recurring;
  List.iter Model.cancel !model_recurring;
  let horizon = Sim_time.add (Simulator.now sim) (Sim_time.of_us 6_000_000) in
  Simulator.run_until sim horizon;
  Model.run_until model (Sim_time.to_us horizon) (fun id ->
      model_log := id :: !model_log);
  check_point "final drain";
  true

(* ------------------------------------------------------------------ *)
(* Regression: a recurring timer must survive queue compaction.  Mass
   cancellation trips the cancelled>live rebuild inside [cancel]; the
   re-armed cell of an active [every] chain must be carried over. *)

let every_survives_compact () =
  let sim = Simulator.create () in
  let fires = ref 0 in
  let timer = Simulator.every sim (Sim_time.of_ms 1) (fun () -> incr fires) in
  (* Fire a few times so the cell sitting in the queue is a re-armed one. *)
  Simulator.run_until sim (Sim_time.of_ms 3);
  check_int "fires before compaction" 3 !fires;
  let handles =
    List.init 200 (fun i ->
        Simulator.at sim (Sim_time.of_ms (100 + i)) (fun () -> ()))
  in
  check_int "live before cancellation" 201 (Simulator.pending sim);
  (* 200 dead vs 1 live: far past the dead > 64 && 2*dead > length
     threshold, so the cancellations force the in-place rebuild. *)
  List.iter (fun h -> Simulator.cancel sim h) handles;
  check_int "compaction keeps the live cell" 1 (Simulator.pending sim);
  Simulator.run_until sim (Sim_time.of_ms 10);
  check_int "timer still fires after compaction" 10 !fires;
  (* The handle still controls the surviving chain, not a stale cell. *)
  Simulator.cancel sim timer;
  Simulator.run_until sim (Sim_time.of_ms 20);
  check_int "cancelled after compaction stays silent" 10 !fires;
  check_int "queue drains clean" 0 (Simulator.pending sim)

let () =
  Alcotest.run "queue_model"
    [
      ( "model",
        [
          qtest "calendar queue matches sorted-list reference" arbitrary_ops
            queue_matches_model;
        ] );
      ( "regressions",
        [ Alcotest.test_case "every survives compact" `Quick every_survives_compact ] );
    ]

(* Tests for the guest OS layer: processes and round-robin scheduling. *)

module Workload = Workloads.Workload
module Process = Guest.Process
module Guest_os = Guest.Guest_os

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float_eps eps = Alcotest.(check (float eps))
let ms = Sim_time.of_ms

let process_identity () =
  let a = Process.create ~name:"a" (Workload.idle ()) in
  let b = Process.create ~name:"b" (Workload.idle ()) in
  check_bool "unique pids" true (Process.pid a <> Process.pid b);
  Alcotest.(check string) "name" "a" (Process.name a);
  check_bool "idle not runnable" false (Process.runnable a)

let process_charge () =
  let p = Process.create ~name:"p" (Workload.busy_loop ()) in
  check_int "zero" 0 (Sim_time.to_us (Process.cpu_time p));
  Process.charge p (ms 3);
  Process.charge p (ms 2);
  check_int "accumulates" 5_000 (Sim_time.to_us (Process.cpu_time p));
  check_bool "busy runnable" true (Process.runnable p)

let guest_round_robin_fair () =
  let a = Process.create ~name:"a" (Workload.busy_loop ()) in
  let b = Process.create ~name:"b" (Workload.busy_loop ()) in
  let os = Guest_os.create ~timeslice:(ms 2) ~name:"guest" [ a; b ] in
  let w = Guest_os.workload os in
  (* Offer 100 ms; both processes are CPU-hungry so they should split it. *)
  let used = Workload.execute w ~now:Sim_time.zero ~cpu_time:(ms 100) ~speed:1.0 in
  check_int "all consumed" 100_000 (Sim_time.to_us used);
  let ta = Sim_time.to_sec (Process.cpu_time a) and tb = Sim_time.to_sec (Process.cpu_time b) in
  check_float_eps 0.003 "fair split" ta tb;
  check_int "total tracked" 100_000 (Sim_time.to_us (Guest_os.cpu_time os))

let guest_skips_idle_process () =
  let busy = Process.create ~name:"busy" (Workload.busy_loop ()) in
  let idle = Process.create ~name:"idle" (Workload.idle ()) in
  let os = Guest_os.create ~name:"guest" [ idle; busy ] in
  let w = Guest_os.workload os in
  let used = Workload.execute w ~now:Sim_time.zero ~cpu_time:(ms 10) ~speed:1.0 in
  check_int "busy got everything" 10_000 (Sim_time.to_us (Process.cpu_time busy));
  check_int "idle got nothing" 0 (Sim_time.to_us (Process.cpu_time idle));
  check_int "used all" 10_000 (Sim_time.to_us used)

let guest_not_runnable_when_all_idle () =
  let os = Guest_os.create ~name:"guest" [ Process.create ~name:"i" (Workload.idle ()) ] in
  check_bool "idle guest" false (Workload.has_work (Guest_os.workload os))

let guest_empty_is_idle () =
  let os = Guest_os.create ~name:"guest" [] in
  check_bool "no processes" false (Workload.has_work (Guest_os.workload os))

let guest_spawn () =
  let os = Guest_os.create ~name:"guest" [] in
  Guest_os.spawn os (Process.create ~name:"late" (Workload.busy_loop ()));
  check_int "one process" 1 (List.length (Guest_os.processes os))

let guest_advance_propagates () =
  let pi = Workloads.Pi_app.create ~work:0.001 () in
  let p = Process.create ~name:"pi" (Workloads.Pi_app.workload pi) in
  let os = Guest_os.create ~name:"guest" [ p ] in
  let w = Guest_os.workload os in
  check_bool "no tokens before advance" false (Workload.has_work w);
  Workload.advance w ~now:Sim_time.zero ~dt:(ms 5);
  check_bool "tokens after advance" true (Workload.has_work w);
  ignore (Workload.execute w ~now:Sim_time.zero ~cpu_time:(ms 5) ~speed:1.0);
  check_bool "finished through two levels" true (Workloads.Pi_app.finished pi)

let guest_zero_timeslice () =
  Alcotest.check_raises "timeslice" (Invalid_argument "Guest_os.create: zero timeslice")
    (fun () -> ignore (Guest_os.create ~timeslice:Sim_time.zero ~name:"g" []))

let () =
  Alcotest.run "guest"
    [
      ( "process",
        [
          Alcotest.test_case "identity" `Quick process_identity;
          Alcotest.test_case "charge" `Quick process_charge;
        ] );
      ( "guest_os",
        [
          Alcotest.test_case "round robin fair" `Quick guest_round_robin_fair;
          Alcotest.test_case "skips idle process" `Quick guest_skips_idle_process;
          Alcotest.test_case "all idle" `Quick guest_not_runnable_when_all_idle;
          Alcotest.test_case "empty guest" `Quick guest_empty_is_idle;
          Alcotest.test_case "spawn" `Quick guest_spawn;
          Alcotest.test_case "advance propagates" `Quick guest_advance_propagates;
          Alcotest.test_case "zero timeslice" `Quick guest_zero_timeslice;
        ] );
    ]

(* The AST analysis passes (lib/staticcheck): the unit-of-measure checker,
   the domain-safety pass, the SARIF serializer and the standalone driver
   behind [dune build @analyze].

   Fixtures are in-memory snippets, one per rule, positive and negative —
   each intentionally-broken fixture must trigger exactly its rule and
   nothing else.  The SARIF output is parsed back with a minimal JSON
   reader (no JSON library in the tree) to check it is well-formed and
   round-trips the issue count. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let analyze ?(file = "lib/fake/fake.ml") src = Staticcheck.analyze_source ~file src
let rules issues = List.sort_uniq compare (List.map (fun i -> i.Report.rule) issues)

let check_rules msg expected src = Alcotest.(check (list string)) msg expected (rules (analyze src))

(* ----- unit-of-measure checker ----- *)

let test_unit_arith () =
  check_rules "cross-unit add flagged" [ "unit-arith" ]
    "let f freq_mhz time_s = freq_mhz + time_s\n";
  check_rules "cross-unit subtract flagged" [ "unit-arith" ]
    "let g energy_joules idle_watts = energy_joules -. idle_watts\n";
  check_rules "cross-unit comparison flagged" [ "unit-arith" ]
    "let too_hot load_pct time_s = load_pct > time_s\n";
  check_rules "same unit is fine" [] "let f a_mhz b_mhz = a_mhz + b_mhz\n";
  check_rules "credits and percent mix freely" []
    "let f credit_pct extra_credits = credit_pct +. extra_credits\n";
  check_rules "scaling by a fraction preserves the unit" []
    "let f ratio time_s = time_s *. ratio +. time_s\n";
  check_rules "quotient of same unit is a fraction" []
    "let share_frac time_s total_seconds = time_s /. total_seconds\n";
  check_rules "unknown operands stay silent" [] "let f a b = a + b\n"

let test_unit_call () =
  check_rules "seconds into ~initial:credits flagged" [ "unit-call" ]
    "let f ~ratio ~cf t_max_s =\n\
    \  Pas.Equations.compensated_credit ~initial:t_max_s ~ratio ~cf\n";
  check_rules "percent into ~initial:credits is fine" []
    "let f ~ratio ~cf credit_pct =\n\
    \  Pas.Equations.compensated_credit ~initial:credit_pct ~ratio ~cf\n";
  check_rules "seconds into Cpufreq.set's MHz argument flagged" [ "unit-call" ]
    "let f cpu time_s = Cpufreq.set cpu time_s\n";
  check_rules "MHz into Cpufreq.set is fine" []
    "let f cpu new_freq = Cpufreq.set cpu new_freq\n";
  check_rules "label suffix checks calls outside the registry" [ "unit-call" ]
    "let f time_s = Totally.unknown ~freq_mhz:time_s ()\n";
  check_rules "bare set does not match the Cpufreq.set entry" []
    "let f cpu time_s = set cpu time_s\n"

let test_unit_binding () =
  check_rules "joules suffix on a seconds value flagged" [ "unit-binding" ]
    "let t_j = Sim_time.to_sec now\n";
  check_rules "seconds suffix on a seconds value is fine" []
    "let t_s = Sim_time.to_sec now\n";
  check_rules "registry result propagates to the binding" [ "unit-binding" ]
    "let best_mhz = Rig.run_pi ~arch ~work ()\n";
  check_rules "suffixless binding is fine" [] "let best = Rig.run_pi ~arch ~work ()\n"

let test_unit_waiver () =
  check_rules "waived line is exempt" []
    "let t_j = Sim_time.to_sec now (* lint:ignore unit-binding: axis abuse *)\n"

let test_parse_error () =
  check_rules "unparseable file yields exactly parse-error" [ "parse-error" ]
    "let = in\n"

(* ----- domain-safety pass ----- *)

let test_domain_capture () =
  check_rules "spawned closure reaching a top-level ref flagged" [ "domain-capture" ]
    "let counter = ref 0\nlet go () = Domain.spawn (fun () -> incr counter)\n";
  check_rules "Thread.create counts as a spawn" [ "domain-capture" ]
    "let hits = Hashtbl.create 8\n\
     let go () = Thread.create (fun () -> Hashtbl.clear hits) ()\n";
  check_rules "reachability through a named local worker" [ "domain-capture" ]
    "let hits = Hashtbl.create 8\n\
     let go () =\n\
    \  let worker () = Hashtbl.clear hits in\n\
    \  Domain.spawn worker\n";
  check_rules "atomic state is fine" []
    "let counter = Atomic.make 0\nlet go () = Domain.spawn (fun () -> Atomic.incr counter)\n";
  check_rules "array of atomics is fine" []
    "let cells = Array.init 4 (fun _ -> Atomic.make 0)\n\
     let go () = Domain.spawn (fun () -> Atomic.incr cells.(0))\n";
  check_rules "capture under Mutex.protect is fine" []
    "let m = Mutex.create ()\n\
     let counter = ref 0\n\
     let go () = Domain.spawn (fun () -> Mutex.protect m (fun () -> incr counter))\n";
  check_rules "state created inside the closure is fine" []
    "let go () = Domain.spawn (fun () -> let acc = ref 0 in incr acc; !acc)\n";
  check_rules "mutable state without a spawn is fine" []
    "let counter = ref 0\nlet bump () = incr counter\n";
  check_rules "waiver on the spawn line applies" []
    "let counter = ref 0\n\
     let go () = Domain.spawn (fun () -> incr counter) (* lint:ignore domain-capture: test rig *)\n"

let test_domain_capture_module_alias () =
  check_rules "capture through a module alias is resolved" [ "domain-capture" ]
    "module State = struct\n\
    \  let n = ref 0\n\
     end\n\
     module S = State\n\
     let go () = Domain.spawn (fun () -> incr S.n)\n"

(* The acceptance fixture for subsuming the old text rule: mutable state
   declared inside a nested module and reached through a module alias.
   The retired text scan only matched column-zero [let … = ref …] lines,
   so this exact source was invisible to it — the AST pass must flag it
   (and the text lint must stay silent, proving where the rule now lives). *)
let test_experiment_state_alias () =
  let src =
    "module State = struct\n\
    \  let cache = ref []\n\
     end\n\
     module S = State\n\
     let lookup () = !S.cache\n"
  in
  Alcotest.(check (list string)) "nested mutable global flagged under experiments/"
    [ "experiment-state" ]
    (rules (analyze ~file:"lib/experiments/fake.ml" src));
  check_bool "text lint no longer owns the rule" true
    (Lint.lint_source ~file:"lib/experiments/fake.ml" src = []);
  check_rules "same source outside experiments/ is fine" [] src

let test_experiment_state () =
  let exp ~file src = rules (Staticcheck.analyze_source ~file src) in
  check_bool "top-level ref flagged" true
    (exp ~file:"lib/experiments/fake.ml" "let cache = ref []\n" = [ "experiment-state" ]);
  check_bool "mutable record field flagged" true
    (exp ~file:"lib/experiments/fake.ml" "type t = {\n  mutable hits : int;\n}\n"
    = [ "experiment-state" ]);
  check_bool "atomic is fine" true
    (exp ~file:"lib/experiments/fake.ml" "let seq = Atomic.make 0\n" = []);
  check_bool "ref local to a function is fine" true
    (exp ~file:"lib/experiments/fake.ml"
       "let f xs =\n  let sum = ref 0.0 in\n  List.iter (fun x -> sum := !sum +. x) xs\n"
    = []);
  check_bool "waiver applies" true
    (exp ~file:"lib/experiments/fake.ml"
       "let cache = ref [] (* lint:ignore experiment-state: build-time only *)\n"
    = [])

(* ----- interprocedural determinism effect pass -----

   Fixtures are single units, but the whole-program passes run on them
   through [analyze_source], so an entry-bearing file name (a unit called
   [Runner] with a [run_all], or a [run] under an [experiments]
   directory) exercises the call graph, the effect fixpoint and the
   chain reconstruction end to end. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  loop 0

let test_effect_nondet_chain () =
  let src =
    "let stamp () = Unix.gettimeofday ()\n\
     let helper () = stamp ()\n\
     let run_all () = helper ()\n"
  in
  let issues = analyze ~file:"lib/fake/runner.ml" src in
  Alcotest.(check (list string)) "wall clock reachable from the entry"
    [ "effect-nondet" ] (rules issues);
  (match issues with
  | [ i ] ->
      check_int "reported at the primitive use site" 1 i.Report.line;
      check_bool "chain starts at the entry" true (contains i.Report.message "Runner.run_all");
      check_bool "chain walks through the helper" true
        (contains i.Report.message "Runner.run_all → Runner.helper → Runner.stamp")
  | _ -> Alcotest.fail "expected exactly one issue");
  (* the same primitive in a function no entry reaches is not reported *)
  check_rules "unreachable nondet stays silent" []
    "let stamp () = Unix.gettimeofday ()\nlet unrelated x = x + 1\n"

let test_effect_hash_order () =
  let src =
    "let table = Hashtbl.create 8\n\
     let sum () = Hashtbl.fold (fun _ v acc -> acc + v) table 0\n\
     let run_all () = sum ()\n"
  in
  let issues = analyze ~file:"lib/fake/runner.ml" src in
  Alcotest.(check (list string)) "hash-order iteration is nondet"
    [ "effect-nondet" ] (rules issues);
  match issues with
  | [ i ] -> check_int "located at the fold" 2 i.Report.line
  | _ -> Alcotest.fail "expected exactly one issue"

let test_effect_ambient () =
  Alcotest.(check (list string)) "environment read from an entry"
    [ "effect-ambient" ]
    (rules (analyze ~file:"lib/fake/runner.ml" "let run_all () = Sys.getenv_opt \"HOME\"\n"));
  (* a top-level [run] under experiments/ is an entry point too *)
  Alcotest.(check (list string)) "experiments run is an entry"
    [ "effect-ambient" ]
    (rules (analyze ~file:"lib/experiments/fake.ml" "let run () = Sys.readdir \".\"\n"))

let test_effect_seeded_clean () =
  Alcotest.(check (list string)) "derived Prng draws are seeded, not flagged" []
    (rules
       (analyze ~file:"lib/fake/runner.ml"
          "let draw rng = Prng.float rng 1.0\nlet run_all () = draw (Prng.create 42)\n"))

let test_effect_waiver () =
  Alcotest.(check (list string)) "line waiver on the use site applies" []
    (rules
       (analyze ~file:"lib/fake/runner.ml"
          "let stamp () = Unix.gettimeofday () (* lint:ignore effect-nondet: timing only *)\n\
           let run_all () = stamp ()\n"))

(* ----- interprocedural lock-discipline pass ----- *)

let test_lock_mixed () =
  let src =
    "let m = Mutex.create ()\n\
     let counter = ref 0\n\
     let bump () = Mutex.protect m (fun () -> incr counter)\n\
     let run_all () = bump (); incr counter\n"
  in
  let issues = analyze ~file:"lib/fake/runner.ml" src in
  Alcotest.(check (list string)) "mixed guarded/bare access" [ "lock-discipline" ] (rules issues);
  match issues with
  | [ i ] ->
      check_int "reported at the root declaration" 2 i.Report.line;
      check_bool "message says mixed" true (contains i.Report.message "mixed locking")
  | _ -> Alcotest.fail "expected exactly one issue"

let test_lock_two_mutexes () =
  let src =
    "let m1 = Mutex.create ()\n\
     let m2 = Mutex.create ()\n\
     let counter = ref 0\n\
     let a () = Mutex.protect m1 (fun () -> incr counter)\n\
     let b () = Mutex.protect m2 (fun () -> incr counter)\n\
     let run_all () = a (); b ()\n"
  in
  let issues = analyze ~file:"lib/fake/runner.ml" src in
  Alcotest.(check (list string)) "two different mutexes" [ "lock-discipline" ] (rules issues);
  match issues with
  | [ i ] -> check_bool "message counts the mutexes" true (contains i.Report.message "2 different mutexes")
  | _ -> Alcotest.fail "expected exactly one issue"

let test_lock_clean_disciplines () =
  Alcotest.(check (list string)) "one mutex for every access is clean" []
    (rules
       (analyze ~file:"lib/fake/runner.ml"
          "let m = Mutex.create ()\n\
           let counter = ref 0\n\
           let bump () = Mutex.protect m (fun () -> incr counter)\n\
           let run_all () = bump ()\n"));
  Alcotest.(check (list string)) "atomic state is clean" []
    (rules
       (analyze ~file:"lib/fake/runner.ml"
          "let counter = Atomic.make 0\nlet run_all () = Atomic.incr counter\n"));
  Alcotest.(check (list string)) "read-only table is exempt" []
    (rules
       (analyze ~file:"lib/fake/runner.ml"
          "let names = [| \"a\"; \"b\" |]\nlet run_all () = names.(0)\n"))

let test_lock_unguarded () =
  let src = "let counter = ref 0\nlet run_all () = incr counter\n" in
  let issues = analyze ~file:"lib/fake/runner.ml" src in
  Alcotest.(check (list string)) "unguarded shared write" [ "lock-discipline" ] (rules issues);
  (match issues with
  | [ i ] ->
      check_bool "message says no discipline" true
        (contains i.Report.message "no guarding discipline")
  | _ -> Alcotest.fail "expected exactly one issue");
  (* a root the per-file domain-capture rule already reports surfaces
     under that one rule only, never twice *)
  check_rules "spawn-captured root reports once, as domain-capture"
    [ "domain-capture" ]
    "let counter = ref 0\nlet go () = Domain.spawn (fun () -> incr counter)\n"

(* Symbol waivers: [lint:ignore lock-discipline @Path] anywhere in the
   file, matching any source spelling of the root — the canonical
   [Unit.path] key, the in-unit path, or an alias-qualified use. *)
let test_lock_symbol_waiver () =
  let body =
    "module Config = struct\n\
    \  let collected = ref []\n\
     end\n\
     module C = Config\n\
     let run_all () = C.collected := [ 1 ]\n"
  in
  Alcotest.(check (list string)) "unwaived aliased root is flagged"
    [ "lock-discipline" ]
    (rules (analyze ~file:"lib/fake/runner.ml" body));
  List.iter
    (fun spelling ->
      Alcotest.(check (list string))
        (Printf.sprintf "waiver spelled %s applies" spelling) []
        (rules
           (analyze ~file:"lib/fake/runner.ml"
              (Printf.sprintf "(* lint:ignore lock-discipline @%s: test rig *)\n%s" spelling body))))
    [ "Runner.Config.collected"; "Config.collected"; "C.collected" ];
  (* a waiver for a different rule or root does not leak *)
  Alcotest.(check (list string)) "other-rule waiver does not apply"
    [ "lock-discipline" ]
    (rules
       (analyze ~file:"lib/fake/runner.ml"
          ("(* lint:ignore effect-nondet @C.collected *)\n" ^ body)));
  Alcotest.(check (list string)) "other-root waiver does not apply"
    [ "lock-discipline" ]
    (rules
       (analyze ~file:"lib/fake/runner.ml"
          ("(* lint:ignore lock-discipline @Other.path *)\n" ^ body)))

let test_symbol_waiver_report_level () =
  let issue = { Report.file = "f.ml"; line = 5; rule = "lock-discipline"; message = "m" } in
  let source = "let x = 1\n(* lint:ignore lock-discipline @Analysis.Config.collected *)\n" in
  let symbols _ = [ "Config.collected"; "Analysis.Config.collected" ] in
  check_int "alias spelling waives the canonical issue" 0
    (List.length (Report.drop_waived ~symbols ~source [ issue ]));
  check_int "no symbols listed keeps the issue" 1
    (List.length (Report.drop_waived ~symbols:(fun _ -> []) ~source [ issue ]));
  check_int "plain drop_waived ignores symbol waivers" 1
    (List.length (Report.drop_waived ~source [ issue ]))

(* ----- interprocedural allocation-effect pass -----

   Roots are [(* alloc: none *)] annotations in the fixture source (the
   marker line sits directly above the binding); the pass runs through
   [analyze_source] like the effect fixtures, so annotation scraping,
   the call graph, the lattice solve and the chain reconstruction are
   exercised end to end. *)

let test_alloc_chain () =
  let src =
    "let build x = Some x\n\
     let helper x = build x\n\
     (* alloc: none *)\n\
     let hot x = helper x\n"
  in
  let issues = analyze src in
  Alcotest.(check (list string)) "allocation reachable from the root"
    [ "alloc-in-hot-path" ] (rules issues);
  (match issues with
  | [ i ] ->
      check_int "reported at the allocating expression" 1 i.Report.line;
      check_bool "chain walks root → helper → site" true
        (contains i.Report.message "Fake.hot → Fake.helper → Fake.build");
      check_bool "witness names the construct" true
        (contains i.Report.message "constructor Some application")
  | _ -> Alcotest.fail "expected exactly one issue");
  check_rules "the same allocation with no root stays silent" []
    "let build x = Some x\nlet helper x = build x\nlet hot x = helper x\n";
  (* several witnesses across several lines arrive sorted *)
  let many =
    analyze "let a x = Some x\nlet b x = [ x ]\n(* alloc: none *)\nlet hot x = b (a x)\n"
  in
  check_bool "fixture yields several issues" true (List.length many > 1);
  check_bool "issues arrive sorted by (file, line, rule)" true (many = Report.sort many)

let test_alloc_unknown_callee () =
  let issues = analyze "(* alloc: none *)\nlet hot x = Mystery.frob x\n" in
  Alcotest.(check (list string)) "unresolved cross-unit callee"
    [ "alloc-unknown-callee" ] (rules issues);
  (match issues with
  | [ i ] ->
      check_int "at the call site" 2 i.Report.line;
      check_bool "names the callee" true (contains i.Report.message "Mystery.frob")
  | _ -> Alcotest.fail "expected exactly one issue");
  check_rules "dispatch through a contract field is allowed" []
    "(* alloc: none *)\nlet hot t = t.charge 1\n";
  check_rules "dispatch through a non-contract field is unknown"
    [ "alloc-unknown-callee" ]
    "(* alloc: none *)\nlet hot t = t.callback 1\n"

let test_alloc_clean_idioms () =
  check_rules "eliminable ref compiles to a mutable local" []
    "(* alloc: none *)\n\
     let hot n =\n\
    \  let acc = ref 0 in\n\
    \  for i = 0 to n do acc := !acc + i done;\n\
    \  !acc\n";
  check_rules "a cold callee is excluded from the traversal" []
    "(* amortized growth *)\n\
     (* alloc: cold *)\n\
     let slow x = Some x\n\
     (* alloc: none *)\n\
     let hot x = match slow x with Some y -> y | None -> 0\n";
  check_rules "failure paths are exempt, formatted guard included" []
    "(* alloc: none *)\n\
     let hot x = if x < 0 then invalid_arg (Printf.sprintf \"%d\" x) else x + 1\n";
  check_rules "whitelisted primitives are free" []
    "(* alloc: none *)\nlet hot a i = Array.unsafe_set a i (sqrt (Array.unsafe_get a i))\n"

let test_alloc_violating_idioms () =
  check_rules "closure passed to a free iterator still allocates"
    [ "alloc-in-hot-path" ]
    "(* alloc: none *)\nlet hot l = List.iter (fun y -> ignore y) l\n";
  check_rules "partial application allocates" [ "alloc-in-hot-path" ]
    "let add a b = a + b\n(* alloc: none *)\nlet hot x = add x\n";
  check_rules "formatted printing allocates" [ "alloc-in-hot-path" ]
    "(* alloc: none *)\nlet hot x = Printf.printf \"%d\" x\n"

let test_alloc_waiver () =
  check_rules "waiver on the allocating line applies" []
    "(* alloc: none *)\nlet hot x = Some x (* lint:ignore alloc-in-hot-path: test rig *)\n";
  check_rules "waiver on the unknown call site applies" []
    "(* alloc: none *)\n\
     let hot x = Mystery.frob x (* lint:ignore alloc-unknown-callee: proven free *)\n"

(* The Bounded tier: a freshly computed float returned across a
   compilation-unit boundary boxes under -opaque, so cross-unit calls to
   the tree's known float-returning functions are flagged; the same call
   inside one unit stays free. *)
let test_alloc_crossbox () =
  let dir = Filename.temp_file "allocbox" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write name content =
    let oc = open_out (Filename.concat dir name) in
    output_string oc content;
    close_out oc
  in
  write "sim_time.ml" "let to_sec t = float_of_int t /. 1e6\n";
  write "caller.ml" "(* alloc: none *)\nlet hot t = Sim_time.to_sec t\n";
  let issues = Staticcheck.analyze_paths [ dir ] in
  Alcotest.(check (list string)) "boxed cross-unit float return"
    [ "alloc-in-hot-path" ] (rules issues);
  (match issues with
  | [ i ] ->
      check_bool "advice names the local-copy fix" true
        (contains i.Report.message "[@inline always]")
  | _ -> Alcotest.fail "expected exactly one issue");
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir;
  check_rules "the same call within one unit does not box" []
    "let to_sec t = float_of_int t /. 1e6\n(* alloc: none *)\nlet hot t = to_sec t\n"

(* The static/dynamic contract ([Alloc_check.consistency]): the
   annotated roots and the microbench 0-words/op targets must name the
   same functions, and each mismatch direction yields its own message. *)
let test_alloc_consistency () =
  let consistency = Staticcheck.Alloc_check.consistency in
  check_int "agreeing views are clean" 0
    (List.length (consistency ~annotated:[ "B.g"; "A.f" ] ~benched:[ "A.f"; "B.g" ]));
  (match consistency ~annotated:[ "A.f"; "C.h" ] ~benched:[ "A.f" ] with
  | [ m ] ->
      check_bool "annotated root without a bench entry" true
        (contains m "C.h" && contains m "microbench")
  | _ -> Alcotest.fail "expected exactly one message");
  (match consistency ~annotated:[ "A.f" ] ~benched:[ "A.f"; "D.k" ] with
  | [ m ] ->
      check_bool "bench target without an annotation" true
        (contains m "D.k" && contains m "annotation")
  | _ -> Alcotest.fail "expected exactly one message");
  check_int "both directions fail together" 2
    (List.length (consistency ~annotated:[ "A.f" ] ~benched:[ "B.g" ]))

(* ----- effect lattice: qcheck properties over the exposed solver ----- *)

let classes = [| Staticcheck.Effect_check.Pure; Seeded; Ambient; Nondet |]

let solve_input =
  QCheck.(
    quad (int_range 1 8) (small_list (int_range 0 3))
      (small_list (pair (int_range 0 7) (int_range 0 7)))
      (small_list (pair (int_range 0 7) (int_range 0 7))))

let solve_fixture (n, codes, e1, e2) =
  let base =
    Array.init n (fun i ->
        classes.(match List.nth_opt codes i with Some c -> c | None -> i mod 4))
  in
  let clamp = List.filter (fun (a, b) -> a < n && b < n) in
  (n, base, clamp e1, clamp e2)

let test_solve_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"solve is monotone under edge addition" solve_input
       (fun input ->
         let n, base, e1, e2 = solve_fixture input in
         let s1 = Staticcheck.Effect_check.solve ~n ~base ~edges:e1 in
         let s2 = Staticcheck.Effect_check.solve ~n ~base ~edges:(e1 @ e2) in
         Array.for_all2 Staticcheck.Effect_check.leq s1 s2))

let test_solve_fixpoint =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"solve is a fixpoint above base" solve_input
       (fun input ->
         let n, base, e1, _ = solve_fixture input in
         let s = Staticcheck.Effect_check.solve ~n ~base ~edges:e1 in
         Array.for_all2 Staticcheck.Effect_check.leq base s
         && List.for_all
              (fun (caller, callee) -> Staticcheck.Effect_check.leq s.(callee) s.(caller))
              e1))

(* The same properties over the allocation lattice's solver. *)

let alloc_classes = [| Staticcheck.Alloc_check.NoAlloc; Bounded; Alloc |]

let alloc_fixture (n, codes, e1, e2) =
  let base =
    Array.init n (fun i ->
        alloc_classes.(match List.nth_opt codes i with Some c -> c mod 3 | None -> i mod 3))
  in
  let clamp = List.filter (fun (a, b) -> a < n && b < n) in
  (n, base, clamp e1, clamp e2)

let test_alloc_solve_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"alloc solve is monotone under edge addition"
       solve_input (fun input ->
         let n, base, e1, e2 = alloc_fixture input in
         let s1 = Staticcheck.Alloc_check.solve ~n ~base ~edges:e1 in
         let s2 = Staticcheck.Alloc_check.solve ~n ~base ~edges:(e1 @ e2) in
         Array.for_all2 Staticcheck.Alloc_check.leq s1 s2))

let test_alloc_solve_fixpoint =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"alloc solve is a fixpoint above base" solve_input
       (fun input ->
         let n, base, e1, _ = alloc_fixture input in
         let s = Staticcheck.Alloc_check.solve ~n ~base ~edges:e1 in
         Array.for_all2 Staticcheck.Alloc_check.leq base s
         && List.for_all
              (fun (caller, callee) -> Staticcheck.Alloc_check.leq s.(callee) s.(caller))
              e1))

(* ----- ownership/escape pass -----

   Single-unit fixtures use an entry-bearing or host-unit file name
   (host.ml is the [Host] unit); cross-unit fixtures (cluster flows,
   boundary annotations, re-exports) write a temp tree and run
   [analyze_paths] on it. *)

let with_tmp_tree files f =
  let dir = Filename.temp_file "staticcheck" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let created = ref [] in
  List.iter
    (fun (rel, content) ->
      let path = Filename.concat dir rel in
      let parent = Filename.dirname path in
      if not (Sys.file_exists parent) then begin
        Sys.mkdir parent 0o755;
        created := parent :: !created
      end;
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      created := path :: !created)
    files;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.is_directory p then Sys.rmdir p else Sys.remove p)
        !created;
      Sys.rmdir dir)
    (fun () -> f dir)

let test_ownership_spawn_capture () =
  Alcotest.(check (list string)) "host-bound local captured by a spawn"
    [ "shard-escape" ]
    (rules
       (analyze ~file:"lib/fake/host.ml"
          "let create () = ref 0\n\
           let bad () = let h = create () in Domain.spawn (fun () -> ignore !h)\n"));
  Alcotest.(check (list string)) "shard-pool idiom: host created inside the worker" []
    (rules
       (analyze ~file:"lib/fake/host.ml"
          "let create () = ref 0\n\
           let ok () = Domain.spawn (fun () -> let h = create () in ignore !h)\n"))

let test_ownership_entry_return () =
  Alcotest.(check (list string)) "host returned through a simulation entry"
    [ "shard-escape" ]
    (rules
       (analyze ~file:"lib/experiments/vm.ml"
          "let create () = ref 0\nlet run () = create ()\n"));
  Alcotest.(check (list string)) "host consumed inside the entry is fine" []
    (rules
       (analyze ~file:"lib/experiments/vm.ml"
          "let create () = ref 0\nlet run () = let v = create () in ignore v; 42\n"))

let test_ownership_global_registration () =
  Alcotest.(check (list string)) "host stored in a global table"
    [ "shard-escape" ]
    (rules
       (analyze ~file:"lib/fake/host.ml"
          "let table = Hashtbl.create 8\n\
           let create () = ref 0\n\
           let register () = let h = create () in Hashtbl.add table \"h\" h\n"))

let test_ownership_unknown_flow () =
  Alcotest.(check (list string)) "host passed to an unresolved callee"
    [ "shard-unknown-flow" ]
    (rules
       (analyze ~file:"lib/fake/host.ml"
          "let create () = ref 0\nlet leak () = let h = create () in Stash.keep h\n"));
  Alcotest.(check (list string)) "discarding a host is fine" []
    (rules
       (analyze ~file:"lib/fake/host.ml"
          "let create () = ref 0\nlet fine () = let h = create () in ignore h\n"))

let shard_rules issues =
  rules
    (List.filter
       (fun i -> i.Report.rule = "shard-escape" || i.Report.rule = "shard-unknown-flow")
       issues)

let test_ownership_cluster_boundary () =
  let host = "let create () = ref 0\nlet poke h = incr h\n" in
  with_tmp_tree
    [ ("host.ml", host); ("cluster/manager.ml", "let touch h = Host.poke h\n") ]
    (fun dir ->
      match
        List.filter
          (fun i -> i.Report.rule = "shard-escape")
          (Staticcheck.analyze_paths [ dir ])
      with
      | [ i ] ->
          check_bool "witness names the host API" true (contains i.Report.message "Host.poke");
          check_bool "chain reaches the cluster caller" true
            (contains i.Report.message "Host.poke → Manager.touch")
      | _ -> Alcotest.fail "expected exactly one shard-escape");
  with_tmp_tree
    [
      ("host.ml", host);
      ( "cluster/manager.ml",
        "(* shard: boundary — declared test channel *)\nlet touch h = Host.poke h\n" );
    ]
    (fun dir ->
      Alcotest.(check (list string)) "annotated boundary function is legal" []
        (shard_rules (Staticcheck.analyze_paths [ dir ])))

(* The machine-readable confinement report: classes flow from the
   simulation entry (ShardConfined) and through a declared cluster
   boundary (BoundaryChannel) into exactly the fields those paths
   touch. *)
let test_ownership_shard_roots () =
  with_tmp_tree
    [
      ( "host.ml",
        "type t = { mutable n : int; series : float array }\n\
         let create () = { n = 0; series = [||] }\n\
         let bump t = t.n <- t.n + 1\n" );
      ( "experiments/exp.ml",
        "let run () = let h = Host.create () in Host.bump h; 0\n" );
      ( "cluster/mgr.ml",
        "(* shard: boundary — test channel *)\nlet drain h = Host.bump h\n" );
    ]
    (fun dir ->
      let lines = Staticcheck.shard_roots_of_paths [ dir ] in
      Alcotest.(check (list string)) "verdict per mutable root, sorted"
        [
          "Host.t.n\tmutable field\tBoundaryChannel";
          "Host.t.series\tarray\tShardConfined";
        ]
        lines)

(* ----- callgraph resolution edge cases ----- *)

let test_callgraph_include () =
  (* [include Impl] re-exports [Impl.stamp] at the top level; the entry's
     bare [stamp ()] call must land on it (and carry the nondet effect). *)
  let issues =
    analyze ~file:"lib/fake/runner.ml"
      "module Impl = struct\n\
      \  let stamp () = Unix.gettimeofday ()\n\
       end\n\
       include Impl\n\
       let run_all () = stamp ()\n"
  in
  Alcotest.(check (list string)) "call through include resolves" [ "effect-nondet" ]
    (rules issues);
  (match issues with
  | [ i ] ->
      check_bool "chain lands on the included binding" true
        (contains i.Report.message "Runner.run_all → Runner.Impl.stamp")
  | _ -> Alcotest.fail "expected exactly one issue");
  (* the same shape one module level down *)
  Alcotest.(check (list string)) "nested include resolves" [ "effect-nondet" ]
    (rules
       (analyze ~file:"lib/fake/runner.ml"
          "module Defaults = struct\n\
          \  let stamp () = Unix.gettimeofday ()\n\
           end\n\
           module M = struct\n\
          \  include Defaults\n\
           end\n\
           let run_all () = M.stamp ()\n"))

let test_callgraph_functor () =
  (* functor applications are opaque: paths through [F (X)] stay
     External, with no finding and no crash *)
  Alcotest.(check (list string)) "functor application is opaque" []
    (rules
       (analyze ~file:"lib/fake/runner.ml"
          "module F (X : sig val v : int end) = struct\n\
          \  let get () = X.v\n\
           end\n\
           module M = F (struct let v = 1 end)\n\
           let run_all () = M.get ()\n"))

let test_callgraph_reexport () =
  (* alias chase + cross-unit fall-through + nested module path: the
     spawn in [b.ml] reaches [A.Inner.gauge] through [module A2 = A] *)
  with_tmp_tree
    [
      ("a.ml", "module Inner = struct\n  let gauge = ref 0\nend\n");
      ("b.ml", "module A2 = A\nlet go () = Domain.spawn (fun () -> A2.Inner.gauge := 1)\n");
    ]
    (fun dir ->
      let issues = Staticcheck.analyze_paths [ dir ] in
      check_bool "nested re-exported root is reached" true
        (List.exists
           (fun i ->
             i.Report.rule = "lock-discipline" && contains i.Report.file "a.ml")
           issues))

(* ----- float-fold-order ----- *)

let test_fold_order () =
  check_rules "hashtbl fold accumulating floats" [ "float-fold-order" ]
    "let total h = Hashtbl.fold (fun _ v acc -> acc +. v) h 0.0\n";
  check_rules "hashtbl iter accumulating floats" [ "float-fold-order" ]
    "let total h = let s = ref 0.0 in Hashtbl.iter (fun _ v -> s := !s +. v) h; !s\n";
  check_rules "seq fold over a hash-ordered sequence" [ "float-fold-order" ]
    "let total h = Seq.fold_left ( +. ) 0.0 (Hashtbl.to_seq_values h)\n";
  check_rules "fold over parallel job results" [ "float-fold-order" ]
    "let total r = List.fold_left (fun acc j -> acc +. j) 0.0 r.jobs\n";
  check_rules "integer fold over a hashtbl is fine" []
    "let count h = Hashtbl.fold (fun _ _ acc -> acc + 1) h 0\n";
  check_rules "float fold over a plain list is fine" []
    "let total l = List.fold_left ( +. ) 0.0 l\n";
  check_rules "waived deliberate reduction" []
    "let total h = Hashtbl.fold (fun _ v acc -> acc +. v) h 0.0 (* lint:ignore \
     float-fold-order: audited *)\n"

(* The same qcheck properties over the confinement lattice's solver. *)

let ownership_classes =
  [|
    Staticcheck.Ownership_check.Host_confined; Shard_confined; Boundary_channel;
    Escaping;
  |]

let ownership_fixture (n, codes, e1, e2) =
  let base =
    Array.init n (fun i ->
        ownership_classes.(match List.nth_opt codes i with Some c -> c | None -> i mod 4))
  in
  let clamp = List.filter (fun (a, b) -> a < n && b < n) in
  (n, base, clamp e1, clamp e2)

let test_ownership_solve_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"ownership solve is monotone under edge addition"
       solve_input (fun input ->
         let n, base, e1, e2 = ownership_fixture input in
         let s1 = Staticcheck.Ownership_check.solve ~n ~base ~edges:e1 in
         let s2 = Staticcheck.Ownership_check.solve ~n ~base ~edges:(e1 @ e2) in
         Array.for_all2 Staticcheck.Ownership_check.leq s1 s2))

let test_ownership_solve_fixpoint =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"ownership solve is a fixpoint above base"
       solve_input (fun input ->
         let n, base, e1, _ = ownership_fixture input in
         let s = Staticcheck.Ownership_check.solve ~n ~base ~edges:e1 in
         Array.for_all2 Staticcheck.Ownership_check.leq base s
         && List.for_all
              (fun (caller, callee) ->
                Staticcheck.Ownership_check.leq s.(callee) s.(caller))
              e1))

(* ----- SARIF: minimal JSON reader and round-trip ----- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then (
      pos := !pos + m;
      v)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "dangling escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let code =
                     match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   Buffer.add_char buf (if code < 128 then Char.chr code else '?')
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (
          incr pos;
          J_obj [])
        else
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (key, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members_loop ()
            | Some '}' -> incr pos
            | _ -> fail "expected , or } in object"
          in
          members_loop ();
          J_obj (List.rev !members)
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (
          incr pos;
          J_list [])
        else
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items_loop ()
            | Some ']' -> incr pos
            | _ -> fail "expected , or ] in array"
          in
          items_loop ();
          J_list (List.rev !items)
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr pos
        done;
        if !pos = start then fail "unexpected character"
        else (
          match float_of_string_opt (String.sub s start (!pos - start)) with
          | Some f -> J_num f
          | None -> fail "bad number")
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | J_obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> Alcotest.failf "missing JSON key %S" key)
  | _ -> Alcotest.failf "expected an object holding %S" key

let as_list = function
  | J_list l -> l
  | _ -> Alcotest.fail "expected a JSON array"

let as_str = function
  | J_str s -> s
  | _ -> Alcotest.fail "expected a JSON string"

let sarif_results doc = as_list (member "results" (List.hd (as_list (member "runs" doc))))

let test_sarif_roundtrip () =
  (* three issues across two rules: results must round-trip 1:1, the rule
     table must deduplicate *)
  let issues =
    analyze
      "let f freq_mhz time_s = freq_mhz + time_s\n\
       let g load_pct dur_s = load_pct -. dur_s\n\
       let t_j = Sim_time.to_sec now\n"
  in
  check_int "fixture yields three issues" 3 (List.length issues);
  let doc = parse_json (Staticcheck.Sarif.to_string ~tool:"staticcheck" issues) in
  check_bool "sarif version" true (as_str (member "version" doc) = "2.1.0");
  let run = List.hd (as_list (member "runs" doc)) in
  let driver = member "driver" (member "tool" run) in
  check_bool "tool name" true (as_str (member "name" driver) = "staticcheck");
  let results = sarif_results doc in
  check_int "one result per issue" (List.length issues) (List.length results);
  let rule_ids = List.sort_uniq compare (List.map (fun r -> as_str (member "ruleId" r)) results) in
  Alcotest.(check (list string)) "rule ids survive" [ "unit-arith"; "unit-binding" ] rule_ids;
  check_int "rule table deduplicated" 2 (List.length (as_list (member "rules" driver)));
  List.iter
    (fun r ->
      let loc = List.hd (as_list (member "locations" r)) in
      let phys = member "physicalLocation" loc in
      check_bool "artifact is the analyzed file" true
        (as_str (member "uri" (member "artifactLocation" phys)) = "lib/fake/fake.ml");
      check_bool "region has a line" true
        (match member "startLine" (member "region" phys) with
        | J_num l -> l >= 1.0
        | _ -> false))
    results

let test_sarif_clean () =
  let doc = parse_json (Staticcheck.Sarif.to_string ~tool:"staticcheck" []) in
  check_int "clean report still parses, with zero results" 0
    (List.length (sarif_results doc))

let test_sarif_escaping () =
  (* messages reach SARIF through the JSON escaper; quotes, backslashes and
     newlines must survive the round trip *)
  let issue =
    { Report.file = "lib/fake/fake.ml"; line = 3; rule = "unit-arith";
      message = "tricky \"quoted\" \\ and\nnewline" }
  in
  let doc = parse_json (Staticcheck.Sarif.to_string ~tool:"staticcheck" [ issue ]) in
  let msg = as_str (member "text" (member "message" (List.hd (sarif_results doc)))) in
  check_bool "message round-trips" true (msg = issue.Report.message)

(* The analyzer's own SARIF reader ([Sarif.of_string]) closes the
   baseline loop: what [to_string] writes must load back 1:1, multi-byte
   UTF-8 (the → in chain messages) and escapes included. *)
let test_sarif_parse_roundtrip () =
  let issues =
    [
      { Report.file = "lib/a/a.ml"; line = 3; rule = "effect-nondet";
        message = "Unix.gettimeofday (wall clock) reached via Runner.run_all → Runner.now: fix" };
      { Report.file = "lib/b/b.ml"; line = 9; rule = "lock-discipline";
        message = "tricky \"quoted\" \\ and\nnewline" };
    ]
  in
  let back = Staticcheck.Sarif.of_string (Staticcheck.Sarif.to_string ~tool:"t" issues) in
  check_bool "issues load back byte-identical" true (back = issues);
  check_bool "malformed input raises" true
    (match Staticcheck.Sarif.of_string "{\"runs\": " with
    | exception Failure _ -> true
    | _ -> false)

let test_sarif_baseline_diff () =
  let mk file line rule message = { Report.file; line; rule; message } in
  let baseline = [ mk "a.ml" 10 "r1" "m1"; mk "gone.ml" 5 "r2" "m2" ] in
  let current = [ mk "a.ml" 42 "r1" "m1"; mk "new.ml" 7 "r3" "m3" ] in
  let d = Staticcheck.Sarif.diff_baseline ~baseline ~current in
  check_bool "line drift still suppresses" true
    (d.Staticcheck.Sarif.fresh = [ mk "new.ml" 7 "r3" "m3" ]);
  check_int "one finding suppressed" 1 d.Staticcheck.Sarif.suppressed;
  check_int "one baseline entry stale" 1 d.Staticcheck.Sarif.stale;
  let empty = Staticcheck.Sarif.diff_baseline ~baseline:[] ~current in
  check_int "empty baseline suppresses nothing" 2
    (List.length empty.Staticcheck.Sarif.fresh)

(* Every rule either checker can emit has an --explain entry. *)
let test_explain_coverage () =
  List.iter
    (fun rule ->
      check_bool (rule ^ " is documented") true (Staticcheck.Explain.find rule <> None))
    [
      "parse-error"; "unit-arith"; "unit-call"; "unit-binding"; "domain-capture";
      "experiment-state"; "effect-nondet"; "effect-ambient"; "lock-discipline";
      "alloc-in-hot-path"; "alloc-unknown-callee"; "float-eq"; "random";
      "assert-false"; "mutable-doc"; "hashtbl-create"; "hot-path-printf";
      "shard-escape"; "shard-unknown-flow"; "float-fold-order";
    ];
  check_bool "unknown rule has no entry" true (Staticcheck.Explain.find "no-such-rule" = None)

(* The acceptance check, mirroring the lint one: the standalone driver
   (what [dune build @analyze] runs) exits 0 on a clean tree, nonzero on a
   planted violation, and always leaves a parseable SARIF file behind. *)
let test_driver_exit_code () =
  let exe =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/analyze_main.exe"
  in
  let dir = Filename.temp_file "analyzecheck" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write name content =
    let oc = open_out (Filename.concat dir name) in
    output_string oc content;
    close_out oc
  in
  let sarif_path = Filename.concat dir "out.sarif" in
  let run args =
    Sys.command
      (Filename.quote_command exe args ~stdout:Filename.null ~stderr:Filename.null)
  in
  write "clean.ml" "let ok x = x + 1\n";
  check_int "clean tree exits 0" 0 (run [ dir ]);
  write "planted.ml" "let f freq_mhz time_s = freq_mhz + time_s\n";
  check_bool "planted unit-arith exits nonzero" true (run [ "--sarif"; sarif_path; dir ] <> 0);
  let doc = parse_json (Report.read_file sarif_path) in
  check_int "driver sarif round-trips the issue count" 1 (List.length (sarif_results doc));
  check_bool "usage error exits 2" true (run [ "--bogus"; dir ] = 2);
  check_int "--explain known rule exits 0" 0 (run [ "--explain"; "lock-discipline" ]);
  check_int "--explain unknown rule exits 2" 2 (run [ "--explain"; "no-such-rule" ]);
  (* baseline mode: the SARIF just written is the planted finding, so
     replaying it as the baseline makes the same tree clean; a second
     planted finding is fresh and fails again *)
  check_int "identical baseline suppresses the finding" 0
    (run [ "--sarif-baseline"; sarif_path; dir ]);
  write "planted2.ml" "let t_j = Sim_time.to_sec now\n";
  check_bool "fresh finding beyond the baseline exits nonzero" true
    (run [ "--sarif-baseline"; sarif_path; dir ] <> 0);
  check_int "missing baseline file exits 2" 2
    (run [ "--sarif-baseline"; Filename.concat dir "nope.sarif"; dir ]);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* The zero-alloc prover end to end through the driver: a planted
   hot-path allocation fails the build with the chain in the SARIF
   message, the report is byte-identical across repeated runs and every
   --jobs value, --alloc-roots prints the annotated keys, the per-pass
   timing covers the alloc pass, and every new rule has an --explain
   entry. *)
let test_driver_alloc_determinism () =
  let exe =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/analyze_main.exe"
  in
  let dir = Filename.temp_file "alloccheck" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write name content =
    let oc = open_out (Filename.concat dir name) in
    output_string oc content;
    close_out oc
  in
  let run ?stdout args =
    Sys.command
      (Filename.quote_command exe args
         ~stdout:(Option.value stdout ~default:Filename.null)
         ~stderr:Filename.null)
  in
  write "hot.ml"
    "let build x = Some x\n\
     (* alloc: none *)\n\
     let hot x = build x\n\
     (* alloc: none *)\n\
     let sample t = t + 1\n";
  write "units.ml" "let f freq_mhz time_s = freq_mhz + time_s\n";
  let sarif_of name args =
    let path = Filename.concat dir name in
    check_bool "planted allocation exits nonzero" true
      (run ([ "--sarif"; path ] @ args @ [ dir ]) <> 0);
    Report.read_file path
  in
  let s1 = sarif_of "r1.sarif" [] in
  let s2 = sarif_of "r2.sarif" [] in
  check_bool "repeated runs are byte-identical" true (String.equal s1 s2);
  List.iter
    (fun jobs ->
      let s = sarif_of ("j" ^ jobs ^ ".sarif") [ "--jobs"; jobs ] in
      check_bool ("--jobs " ^ jobs ^ " is byte-identical") true (String.equal s1 s))
    [ "1"; "2"; "4" ];
  check_bool "chain message reaches the SARIF report" true
    (contains s1 "Hot.hot → Hot.build");
  let roots_path = Filename.concat dir "roots.txt" in
  check_int "--alloc-roots exits 0" 0 (run ~stdout:roots_path [ "--alloc-roots"; dir ]);
  check_bool "both annotated keys print sorted" true
    (String.equal (Report.read_file roots_path) "Hot.hot\nHot.sample\n");
  let timing_path = Filename.concat dir "t.json" in
  ignore (run [ "--timing"; timing_path; dir ]);
  let tj = Report.read_file timing_path in
  check_bool "per-pass timing covers the alloc pass" true
    (contains tj "\"alloc_seconds\"" && contains tj "dvfs-analyze-timing/1");
  List.iter
    (fun rule ->
      check_int ("--explain " ^ rule ^ " exits 0") 0 (run [ "--explain"; rule ]))
    [ "alloc-in-hot-path"; "alloc-unknown-callee"; "hot-path-printf" ];
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* Satellite of the shard prover: the committed SARIF baseline must be
   empty — every legacy finding has been fixed or carries an in-source
   waiver, so a fresh finding can never hide behind the baseline. *)
let test_baseline_is_empty () =
  let path =
    Filename.concat (Filename.dirname Sys.executable_name) "../analysis-baseline.sarif"
  in
  check_int "committed analysis baseline carries no findings" 0
    (List.length (Staticcheck.Sarif.load path))

(* The ownership pass end to end through the driver: a planted cluster
   flow fails the build with the constructor→escape chain in the SARIF
   message, the report is byte-identical across repeated runs and every
   --jobs value, --shard-roots prints the per-root confinement verdicts,
   and the per-pass timing covers the ownership pass. *)
let test_driver_shard_determinism () =
  let exe =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/analyze_main.exe"
  in
  let dir = Filename.temp_file "shardcheck" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Sys.mkdir (Filename.concat dir "cluster") 0o755;
  let write name content =
    let oc = open_out (Filename.concat dir name) in
    output_string oc content;
    close_out oc
  in
  let run ?stdout args =
    Sys.command
      (Filename.quote_command exe args
         ~stdout:(Option.value stdout ~default:Filename.null)
         ~stderr:Filename.null)
  in
  write "host.ml"
    "type t = { mutable n : int }\n\
     let create () = { n = 0 }\n\
     let bump t = t.n <- t.n + 1\n";
  write (Filename.concat "cluster" "mgr.ml") "let touch h = Host.bump h\n";
  let sarif_of name args =
    let path = Filename.concat dir name in
    check_bool "planted cluster flow exits nonzero" true
      (run ([ "--sarif"; path ] @ args @ [ dir ]) <> 0);
    Report.read_file path
  in
  let s1 = sarif_of "r1.sarif" [] in
  let s2 = sarif_of "r2.sarif" [] in
  check_bool "repeated runs are byte-identical" true (String.equal s1 s2);
  List.iter
    (fun jobs ->
      let s = sarif_of ("j" ^ jobs ^ ".sarif") [ "--jobs"; jobs ] in
      check_bool ("--jobs " ^ jobs ^ " is byte-identical") true (String.equal s1 s))
    [ "1"; "2"; "4" ];
  check_bool "escape chain reaches the SARIF report" true
    (contains s1 "shard-escape" && contains s1 "Host.bump → Mgr.touch");
  let roots_path = Filename.concat dir "roots.txt" in
  check_int "--shard-roots exits 0" 0 (run ~stdout:roots_path [ "--shard-roots"; dir ]);
  check_bool "verdict names the mutable root and its class" true
    (contains (Report.read_file roots_path) "Host.t.n\tmutable field\t");
  let timing_path = Filename.concat dir "t.json" in
  ignore (run [ "--timing"; timing_path; dir ]);
  check_bool "per-pass timing covers the ownership pass" true
    (contains (Report.read_file timing_path) "\"ownership_seconds\"");
  Array.iter
    (fun f ->
      let p = Filename.concat dir f in
      if not (Sys.is_directory p) then Sys.remove p)
    (Sys.readdir dir);
  Sys.remove (Filename.concat dir "cluster/mgr.ml");
  Sys.rmdir (Filename.concat dir "cluster");
  Sys.rmdir dir

let () =
  Alcotest.run "staticcheck"
    [
      ( "units",
        [
          Alcotest.test_case "cross-unit arithmetic" `Quick test_unit_arith;
          Alcotest.test_case "mismatched calls" `Quick test_unit_call;
          Alcotest.test_case "contradicting bindings" `Quick test_unit_binding;
          Alcotest.test_case "waiver" `Quick test_unit_waiver;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "domains",
        [
          Alcotest.test_case "spawn captures" `Quick test_domain_capture;
          Alcotest.test_case "module aliases" `Quick test_domain_capture_module_alias;
          Alcotest.test_case "experiment state" `Quick test_experiment_state;
          Alcotest.test_case "aliased experiment state" `Quick test_experiment_state_alias;
        ] );
      ( "effects",
        [
          Alcotest.test_case "nondet call chain" `Quick test_effect_nondet_chain;
          Alcotest.test_case "hash-order iteration" `Quick test_effect_hash_order;
          Alcotest.test_case "ambient reads" `Quick test_effect_ambient;
          Alcotest.test_case "seeded draws are clean" `Quick test_effect_seeded_clean;
          Alcotest.test_case "use-site waiver" `Quick test_effect_waiver;
          test_solve_monotone;
          test_solve_fixpoint;
        ] );
      ( "locks",
        [
          Alcotest.test_case "mixed guarded/bare" `Quick test_lock_mixed;
          Alcotest.test_case "two mutexes" `Quick test_lock_two_mutexes;
          Alcotest.test_case "clean disciplines" `Quick test_lock_clean_disciplines;
          Alcotest.test_case "unguarded shared write" `Quick test_lock_unguarded;
          Alcotest.test_case "symbol waivers" `Quick test_lock_symbol_waiver;
          Alcotest.test_case "symbol waiver matching" `Quick test_symbol_waiver_report_level;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "hot-path chain" `Quick test_alloc_chain;
          Alcotest.test_case "unknown callee" `Quick test_alloc_unknown_callee;
          Alcotest.test_case "clean idioms" `Quick test_alloc_clean_idioms;
          Alcotest.test_case "violating idioms" `Quick test_alloc_violating_idioms;
          Alcotest.test_case "waivers" `Quick test_alloc_waiver;
          Alcotest.test_case "cross-unit float boxing" `Quick test_alloc_crossbox;
          Alcotest.test_case "static/dynamic consistency" `Quick test_alloc_consistency;
          Alcotest.test_case "driver determinism" `Quick test_driver_alloc_determinism;
          test_alloc_solve_monotone;
          test_alloc_solve_fixpoint;
        ] );
      ( "ownership",
        [
          Alcotest.test_case "spawn capture" `Quick test_ownership_spawn_capture;
          Alcotest.test_case "entry return" `Quick test_ownership_entry_return;
          Alcotest.test_case "global registration" `Quick test_ownership_global_registration;
          Alcotest.test_case "unknown flow" `Quick test_ownership_unknown_flow;
          Alcotest.test_case "cluster boundary" `Quick test_ownership_cluster_boundary;
          Alcotest.test_case "shard roots report" `Quick test_ownership_shard_roots;
          Alcotest.test_case "driver determinism" `Quick test_driver_shard_determinism;
          test_ownership_solve_monotone;
          test_ownership_solve_fixpoint;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "include re-export" `Quick test_callgraph_include;
          Alcotest.test_case "functor opacity" `Quick test_callgraph_functor;
          Alcotest.test_case "nested re-export" `Quick test_callgraph_reexport;
        ] );
      ( "folds", [ Alcotest.test_case "float fold order" `Quick test_fold_order ] );
      ( "sarif",
        [
          Alcotest.test_case "round trip" `Quick test_sarif_roundtrip;
          Alcotest.test_case "clean report" `Quick test_sarif_clean;
          Alcotest.test_case "escaping" `Quick test_sarif_escaping;
          Alcotest.test_case "reader round trip" `Quick test_sarif_parse_roundtrip;
          Alcotest.test_case "baseline diff" `Quick test_sarif_baseline_diff;
          Alcotest.test_case "explain coverage" `Quick test_explain_coverage;
          Alcotest.test_case "driver exit code" `Quick test_driver_exit_code;
          Alcotest.test_case "committed baseline is empty" `Quick test_baseline_is_empty;
        ] );
    ]

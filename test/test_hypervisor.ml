(* Tests for the hypervisor: domains, the scheduler interface and the host's
   dispatch/accounting/metrics machinery. *)

module Workload = Workloads.Workload
module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float_eps eps = Alcotest.(check (float eps))
let ms = Sim_time.of_ms
let sec = Sim_time.of_sec

(* ------------------------------------------------------------------ *)
(* Domain *)

let domain_create () =
  let d = Domain.create ~name:"vm" ~credit_pct:25.0 (Workload.busy_loop ()) in
  Alcotest.(check string) "name" "vm" (Domain.name d);
  check_float_eps 1e-9 "credit" 25.0 (Domain.initial_credit d);
  check_int "weight default" 256 (Domain.weight d);
  check_bool "not dom0" false (Domain.is_dom0 d);
  check_bool "not uncapped" false (Domain.uncapped d);
  check_bool "runnable" true (Domain.runnable d)

let domain_uncapped () =
  let d = Domain.create ~name:"best-effort" ~credit_pct:0.0 (Workload.idle ()) in
  check_bool "uncapped" true (Domain.uncapped d);
  check_bool "idle not runnable" false (Domain.runnable d)

let domain_invalid () =
  Alcotest.check_raises "credit" (Invalid_argument "Domain.create: credit out of [0, 100]")
    (fun () -> ignore (Domain.create ~name:"x" ~credit_pct:150.0 (Workload.idle ())));
  Alcotest.check_raises "weight" (Invalid_argument "Domain.create: weight must be positive")
    (fun () -> ignore (Domain.create ~weight:0 ~name:"x" ~credit_pct:10.0 (Workload.idle ())))

let domain_charge_and_identity () =
  let a = Domain.create ~name:"a" ~credit_pct:10.0 (Workload.idle ()) in
  let b = Domain.create ~name:"b" ~credit_pct:10.0 (Workload.idle ()) in
  check_bool "distinct ids" true (Domain.id a <> Domain.id b);
  check_bool "equal self" true (Domain.equal a a);
  check_bool "not equal" false (Domain.equal a b);
  Domain.charge a (ms 7);
  check_int "cpu time" 7_000 (Sim_time.to_us (Domain.cpu_time a))

(* ------------------------------------------------------------------ *)
(* Scheduler interface *)

let scheduler_defaults () =
  let d = Domain.create ~name:"d" ~credit_pct:30.0 (Workload.busy_loop ()) in
  let s =
    Scheduler.make ~name:"test"
      ~domains:(fun () -> [ d ])
      ~pick:(fun ~now:_ ~remaining ~exclude:_ ->
        Some { Scheduler.domain = d; max_slice = remaining })
      ~charge:(fun ~domain:_ ~now:_ ~used:_ -> ())
      ()
  in
  check_float_eps 1e-9 "effective credit defaults to initial" 30.0
    (s.Scheduler.effective_credit d);
  check_bool "no window observer" true (s.Scheduler.observe_window = None);
  s.Scheduler.on_account_period ~now:Sim_time.zero (* no-op default must not raise *)

let scheduler_excluded () =
  let a = Domain.create ~name:"a" ~credit_pct:10.0 (Workload.idle ()) in
  let b = Domain.create ~name:"b" ~credit_pct:10.0 (Workload.idle ()) in
  check_bool "present" true (Scheduler.excluded a (Scheduler.Mask.of_list [ b; a ]));
  check_bool "absent" false (Scheduler.excluded a (Scheduler.Mask.of_list [ b ]));
  let mask = Scheduler.Mask.of_list [ a; b ] in
  Scheduler.Mask.clear mask;
  check_bool "cleared" false (Scheduler.Mask.mem mask a);
  Scheduler.Mask.add mask a;
  check_bool "re-added" true (Scheduler.Mask.mem mask a)

(* ------------------------------------------------------------------ *)
(* Host *)

let make_host ?config ?governor domains =
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let scheduler = Sched_credit.create domains in
  let host = Host.create ?config ~sim ~processor ~scheduler ?governor () in
  (host, processor)

let host_busy_loop_consumes_everything () =
  let d = Domain.create ~name:"hog" ~credit_pct:100.0 (Workload.busy_loop ()) in
  let host, _ = make_host [ d ] in
  Host.run_for host (sec 10);
  check_float_eps 0.02 "fully busy" 10.0 (Sim_time.to_sec (Host.total_busy host));
  check_float_eps 0.02 "domain charged" 10.0 (Sim_time.to_sec (Domain.cpu_time d))

let host_idle_when_no_work () =
  let d = Domain.create ~name:"sleeper" ~credit_pct:100.0 (Workload.idle ()) in
  let host, _ = make_host [ d ] in
  Host.run_for host (sec 5);
  check_int "never busy" 0 (Sim_time.to_us (Host.total_busy host))

let host_cap_enforced () =
  let d = Domain.create ~name:"capped" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let host, _ = make_host [ d ] in
  Host.run_for host (sec 10);
  check_float_eps 0.05 "20% of 10s" 2.0 (Sim_time.to_sec (Host.total_busy host))

let host_utilization_probe () =
  let d = Domain.create ~name:"half" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let host, _ = make_host [ d ] in
  let probe = Host.utilization_probe host in
  Host.run_for host (sec 2);
  check_float_eps 0.02 "50% busy" 0.5 (probe ());
  Host.run_for host (sec 2);
  check_float_eps 0.02 "window resets" 0.5 (probe ())

let host_series_sampled () =
  let d = Domain.create ~name:"vm" ~credit_pct:40.0 (Workload.busy_loop ()) in
  let host, _ = make_host [ d ] in
  Host.run_for host (sec 10);
  let s = Host.series_domain_load host d in
  check_int "ten samples" 10 (Series.length s);
  check_float_eps 0.5 "load ~40%" 40.0 (Series.mean s);
  let g = Host.series_global_load host in
  check_float_eps 0.5 "global ~40%" 40.0 (Series.mean g);
  let f = Host.series_frequency host in
  check_float_eps 1e-9 "freq at max (no governor)" 2667.0 (Series.mean f)

let host_absolute_load_scales () =
  let d = Domain.create ~name:"vm" ~credit_pct:40.0 (Workload.busy_loop ()) in
  let sim = Simulator.create () in
  let processor = Processor.create ~init_freq:1600 Cpu_model.Arch.optiplex_755 in
  let scheduler = Sched_credit.create [ d ] in
  let host = Host.create ~sim ~processor ~scheduler () in
  Host.run_for host (sec 10);
  let expected = 40.0 *. (1600.0 /. 2667.0) in
  check_float_eps 0.5 "absolute = load * ratio" expected
    (Series.mean (Host.series_domain_absolute_load host d))

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let host_frame_has_all_series () =
  let d = Domain.create ~name:"vm" ~credit_pct:40.0 (Workload.busy_loop ()) in
  let host, _ = make_host [ d ] in
  Host.run_for host (sec 3);
  let frame = Host.frame host in
  (* freq + (load + absolute per domain) + global + absolute *)
  check_int "series count" 5 (List.length (Series.Frame.series frame));
  let csv = Series.Frame.to_csv frame in
  check_bool "csv mentions domain" true (contains_substring csv "vm.load")

let host_energy_positive () =
  let d = Domain.create ~name:"vm" ~credit_pct:100.0 (Workload.busy_loop ()) in
  let host, _ = make_host [ d ] in
  Host.run_for host (sec 5);
  check_bool "energy accrued" true (Host.energy_joules host > 0.0);
  check_bool "mean watts sensible" true
    (Host.mean_watts host > 40.0 && Host.mean_watts host <= 95.5)

let host_governor_driven () =
  let d = Domain.create ~name:"light" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let scheduler = Sched_credit.create [ d ] in
  let governor = Governors.Governor.powersave processor in
  let host = Host.create ~sim ~processor ~scheduler ~governor () in
  Host.run_for host (sec 5);
  check_int "powersave pinned min" 1600 (Processor.current_freq processor)

let host_trace_records_frequency_changes () =
  let d = Domain.create ~name:"vm" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let scheduler = Sched_credit.create [ d ] in
  let trace = Trace.create () in
  let governor = Governors.Governor.powersave processor in
  let host = Host.create ~trace ~sim ~processor ~scheduler ~governor () in
  Host.run_for host (sec 5);
  let dvfs_entries = Trace.find trace ~source:"dvfs" in
  check_int "one transition recorded" 1 (List.length dvfs_entries);
  match dvfs_entries with
  | [ e ] -> check_bool "mentions both levels" true (String.length e.Trace.message > 10)
  | _ -> Alcotest.fail "expected one entry"

let host_stop_freezes () =
  let d = Domain.create ~name:"vm" ~credit_pct:100.0 (Workload.busy_loop ()) in
  let host, _ = make_host [ d ] in
  Host.run_for host (sec 2);
  Host.stop host;
  let before = Host.total_busy host in
  Host.run_for host (sec 2);
  check_int "no dispatch after stop" (Sim_time.to_us before)
    (Sim_time.to_us (Host.total_busy host))

let host_domains_accessor () =
  let a = Domain.create ~name:"a" ~credit_pct:10.0 (Workload.idle ()) in
  let b = Domain.create ~name:"b" ~credit_pct:10.0 (Workload.idle ()) in
  let host, _ = make_host [ a; b ] in
  check_int "two domains" 2 (List.length (Host.domains host));
  Alcotest.check_raises "foreign domain" Not_found (fun () ->
      ignore
        (Host.series_domain_load host
           (Domain.create ~name:"foreign" ~credit_pct:10.0 (Workload.idle ()))))

let () =
  Alcotest.run "hypervisor"
    [
      ( "domain",
        [
          Alcotest.test_case "create" `Quick domain_create;
          Alcotest.test_case "uncapped" `Quick domain_uncapped;
          Alcotest.test_case "invalid" `Quick domain_invalid;
          Alcotest.test_case "charge/identity" `Quick domain_charge_and_identity;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "defaults" `Quick scheduler_defaults;
          Alcotest.test_case "excluded" `Quick scheduler_excluded;
        ] );
      ( "host",
        [
          Alcotest.test_case "busy loop consumes" `Quick host_busy_loop_consumes_everything;
          Alcotest.test_case "idle" `Quick host_idle_when_no_work;
          Alcotest.test_case "cap enforced" `Quick host_cap_enforced;
          Alcotest.test_case "utilization probe" `Quick host_utilization_probe;
          Alcotest.test_case "series sampled" `Quick host_series_sampled;
          Alcotest.test_case "absolute load scales" `Quick host_absolute_load_scales;
          Alcotest.test_case "frame" `Quick host_frame_has_all_series;
          Alcotest.test_case "energy" `Quick host_energy_positive;
          Alcotest.test_case "governor driven" `Quick host_governor_driven;
          Alcotest.test_case "trace frequency changes" `Quick host_trace_records_frequency_changes;
          Alcotest.test_case "stop freezes" `Quick host_stop_freezes;
          Alcotest.test_case "domains accessor" `Quick host_domains_accessor;
        ] );
    ]

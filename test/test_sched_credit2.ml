(* Tests for the Credit2-style fair-share scheduler. *)

module Workload = Workloads.Workload
module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

let check_bool = Alcotest.(check bool)
let check_float_eps eps = Alcotest.(check (float eps))
let sec = Sim_time.of_sec

let run_host ?(duration = 10) scheduler =
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let host = Host.create ~sim ~processor ~scheduler () in
  Host.run_for host (sec duration);
  host

let share d duration = Sim_time.to_sec (Domain.cpu_time d) /. float_of_int duration

let proportional_share () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:70.0 (Workload.busy_loop ()) in
  ignore (run_host (Sched_credit2.create [ a; b ]));
  (* Weight-proportional split of the whole CPU: 2/9 and 7/9. *)
  check_float_eps 0.02 "a 2/9" (2.0 /. 9.0) (share a 10);
  check_float_eps 0.02 "b 7/9" (7.0 /. 9.0) (share b 10)

let work_conserving () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:70.0 (Workload.idle ()) in
  ignore (run_host (Sched_credit2.create [ a; b ]));
  check_float_eps 0.01 "a takes everything" 1.0 (share a 10)

let wake_does_not_monopolise () =
  (* A domain sleeping 5 s must not get a catch-up burst when it wakes: its
     virtual clock is pulled up to the runnable minimum. *)
  let app =
    Workloads.Web_app.create ~rate_schedule:[ (Sim_time.zero, 0.0); (sec 5, 5.0) ] ()
  in
  let sleeper = Domain.create ~name:"sleeper" ~credit_pct:50.0 (Workloads.Web_app.workload app) in
  let steady = Domain.create ~name:"steady" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let sched = Sched_credit2.create [ sleeper; steady ] in
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let host = Host.create ~sim ~processor ~scheduler:sched () in
  Host.run_for host (sec 5);
  let steady_before = Sim_time.to_sec (Domain.cpu_time steady) in
  Host.run_for host (sec 5);
  let steady_after = Sim_time.to_sec (Domain.cpu_time steady) -. steady_before in
  (* With equal weights, the second half should split ~50/50, not collapse
     to 0 for the steady domain. *)
  check_bool "steady keeps roughly half" true (steady_after > 2.0)

let equal_weights_fair () =
  let a = Domain.create ~name:"a" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:50.0 (Workload.busy_loop ()) in
  ignore (run_host (Sched_credit2.create [ a; b ]));
  check_float_eps 0.02 "a half" 0.5 (share a 10);
  check_float_eps 0.02 "b half" 0.5 (share b 10)

let uncapped_uses_domain_weight () =
  (* Credit 0 domains fall back to the Xen weight (256 = same as a 100%
     credit... i.e. heavier than a 50% credit's 128). *)
  let free = Domain.create ~name:"free" ~credit_pct:0.0 (Workload.busy_loop ()) in
  let half = Domain.create ~name:"half" ~credit_pct:50.0 (Workload.busy_loop ()) in
  ignore (run_host (Sched_credit2.create [ free; half ]));
  check_float_eps 0.03 "free 2/3" (2.0 /. 3.0) (share free 10);
  check_float_eps 0.03 "half 1/3" (1.0 /. 3.0) (share half 10)

let duplicates_rejected () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.idle ()) in
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Sched_credit2.create: duplicate domains") (fun () ->
      ignore (Sched_credit2.create [ a; a ]))

let exclude_respected () =
  let a = Domain.create ~name:"a" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let sched = Sched_credit2.create [ a; b ] in
  match
    sched.Scheduler.pick ~now:Sim_time.zero ~remaining:(Sim_time.of_ms 1)
      ~exclude:(Scheduler.Mask.of_list [ a ])
  with
  | Some { Scheduler.domain; _ } -> check_bool "picks b" true (Domain.equal domain b)
  | None -> Alcotest.fail "expected a pick"

let () =
  Alcotest.run "sched_credit2"
    [
      ( "fair share",
        [
          Alcotest.test_case "proportional" `Quick proportional_share;
          Alcotest.test_case "work conserving" `Quick work_conserving;
          Alcotest.test_case "equal weights" `Quick equal_weights_fair;
          Alcotest.test_case "uncapped weight" `Quick uncapped_uses_domain_weight;
          Alcotest.test_case "wake no monopoly" `Quick wake_does_not_monopolise;
        ] );
      ( "interface",
        [
          Alcotest.test_case "duplicates" `Quick duplicates_rejected;
          Alcotest.test_case "exclude" `Quick exclude_respected;
        ] );
    ]

(* The queueing-theoretic validation rig (lib/validate): closed-form
   oracles against textbook values, batch-means CI behaviour, and the
   measured-vs-analytic sweep itself — including the injected-bug check
   that a mis-scaled oracle service rate flips the pass/fail table. *)

module Oracle = Validate.Oracle
module Ci = Validate.Ci
module Sweep = Validate.Sweep

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Oracle closed forms *)

let mm1_textbook () =
  (* lambda = 2, mu = 5: rho = 0.4, L = 2/3, Lq = 4/15, W = 1/3, Wq = 2/15. *)
  let m = Oracle.mm1 ~lambda:2.0 ~mu:5.0 in
  check_float "rho" 0.4 m.Oracle.rho;
  check_float_eps 1e-12 "L" (2.0 /. 3.0) m.Oracle.n_sys;
  check_float_eps 1e-12 "Lq" (4.0 /. 15.0) m.Oracle.n_queue;
  check_float_eps 1e-12 "W" (1.0 /. 3.0) m.Oracle.sojourn;
  check_float_eps 1e-12 "Wq" (2.0 /. 15.0) m.Oracle.waiting

let mm1_little_law =
  qtest "M/M/1 satisfies Little's law"
    QCheck.(pair (float_range 0.1 10.0) (float_range 0.1 10.0))
    (fun (lambda, mu) ->
      QCheck.assume (lambda < 0.95 *. mu);
      let m = Oracle.mm1 ~lambda ~mu in
      Float.abs (m.Oracle.n_sys -. (lambda *. m.Oracle.sojourn)) < 1e-9
      && Float.abs (m.Oracle.n_queue -. (lambda *. m.Oracle.waiting)) < 1e-9)

let mm1_unstable () =
  Alcotest.check_raises "saturated" (Oracle.Unstable "M/M/1 unstable: rho = 1 >= 1")
    (fun () -> ignore (Oracle.mm1 ~lambda:3.0 ~mu:3.0));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Oracle.mm1: lambda must be positive") (fun () ->
      ignore (Oracle.mm1 ~lambda:0.0 ~mu:3.0))

let mm2_hand_computed () =
  (* lambda = 2, mu = 1.5, c = 2: a = 4/3, rho = 2/3.  Erlang C
     = (8/9 / (1/3)) / (1 + 4/3 + 8/9 / (1/3)) = 8/15.  Lq = 16/15,
     Wq = 8/15, W = 6/5, L = 12/5. *)
  let p_wait = Oracle.erlang_c ~lambda:2.0 ~mu:1.5 ~servers:2 in
  check_float_eps 1e-12 "Erlang C" (8.0 /. 15.0) p_wait;
  let m = Oracle.mmc ~lambda:2.0 ~mu:1.5 ~servers:2 in
  check_float_eps 1e-12 "rho" (2.0 /. 3.0) m.Oracle.rho;
  check_float_eps 1e-12 "Lq" (16.0 /. 15.0) m.Oracle.n_queue;
  check_float_eps 1e-12 "Wq" (8.0 /. 15.0) m.Oracle.waiting;
  check_float_eps 1e-12 "W" 1.2 m.Oracle.sojourn;
  check_float_eps 1e-12 "L" 2.4 m.Oracle.n_sys

let mmc_one_server_is_mm1 =
  qtest "M/M/c with c = 1 coincides with M/M/1"
    QCheck.(pair (float_range 0.1 5.0) (float_range 0.1 5.0))
    (fun (lambda, mu) ->
      QCheck.assume (lambda < 0.95 *. mu);
      let a = Oracle.mm1 ~lambda ~mu and b = Oracle.mmc ~lambda ~mu ~servers:1 in
      Float.abs (a.Oracle.n_sys -. b.Oracle.n_sys) < 1e-9
      && Float.abs (a.Oracle.sojourn -. b.Oracle.sojourn) < 1e-9)

let mmc_unstable () =
  Alcotest.check_raises "saturated" (Oracle.Unstable "M/M/2 unstable: rho = 1 >= 1")
    (fun () -> ignore (Oracle.mmc ~lambda:6.0 ~mu:3.0 ~servers:2))

let repairman_single_client () =
  (* One client, any think time: response is exactly the service time
     (never any queueing), utilization S / (S + T). *)
  let r = Oracle.machine_repairman ~clients:1 ~think_time:0.2 ~service_time:0.05 in
  check_float_eps 1e-12 "response" 0.05 r.Oracle.response;
  check_float_eps 1e-12 "utilization" 0.2 r.Oracle.utilization;
  check_float_eps 1e-12 "throughput" 4.0 r.Oracle.throughput

let repairman_two_clients () =
  (* N = 2, T = 0.1, S = 0.1: r = 1, p = [1; 2; 2] / 5.
     U = 4/5, X = 8, L = (2 + 4) / 5 = 1.2, R = 0.15. *)
  let r = Oracle.machine_repairman ~clients:2 ~think_time:0.1 ~service_time:0.1 in
  check_float_eps 1e-12 "utilization" 0.8 r.Oracle.utilization;
  check_float_eps 1e-12 "throughput" 8.0 r.Oracle.throughput;
  check_float_eps 1e-12 "in system" 1.2 r.Oracle.in_system;
  check_float_eps 1e-12 "response" 0.15 r.Oracle.response

let repairman_saturated () =
  let r = Oracle.machine_repairman ~clients:4 ~think_time:0.0 ~service_time:0.02 in
  check_float "utilization" 1.0 r.Oracle.utilization;
  check_float "throughput" 50.0 r.Oracle.throughput;
  check_float "in system" 4.0 r.Oracle.in_system;
  check_float_eps 1e-12 "response" 0.08 r.Oracle.response

let repairman_monotone =
  qtest "repairman response grows with the client count"
    QCheck.(triple (int_range 1 20) (float_range 0.01 1.0) (float_range 0.01 1.0))
    (fun (clients, think_time, service_time) ->
      let a = Oracle.machine_repairman ~clients ~think_time ~service_time in
      let b = Oracle.machine_repairman ~clients:(clients + 1) ~think_time ~service_time in
      b.Oracle.response >= a.Oracle.response -. 1e-12
      && b.Oracle.utilization >= a.Oracle.utilization -. 1e-12)

(* ------------------------------------------------------------------ *)
(* Batch-means confidence intervals *)

let ci_constant_samples () =
  let ci = Ci.batch_means (Array.make 100 3.5) in
  check_float "mean" 3.5 ci.Ci.mean;
  check_float "half width" 0.0 ci.Ci.half_width;
  check_int "batches" 20 ci.Ci.batches;
  check_bool "within" true (Ci.within ci ~target:3.5)

let ci_insufficient_data () =
  let ci = Ci.batch_means [| 1.0; 2.0; 3.0 |] in
  check_float "mean" 2.0 ci.Ci.mean;
  check_bool "infinite half width" true (ci.Ci.half_width = infinity);
  check_int "no batches" 0 ci.Ci.batches;
  (* No spread estimate must never reject: any target is within. *)
  check_bool "never rejects" true (Ci.within ci ~target:1e9);
  let empty = Ci.batch_means [||] in
  check_float "empty mean" 0.0 empty.Ci.mean;
  check_bool "empty within" true (Ci.within empty ~target:42.0)

let ci_t_critical () =
  check_float "df 1" 12.706 (Ci.t_critical ~df:1);
  check_float "df 30" 2.042 (Ci.t_critical ~df:30);
  check_float "df 31 (normal)" 1.96 (Ci.t_critical ~df:31);
  Alcotest.check_raises "df 0" (Invalid_argument "Ci.t_critical: df must be positive")
    (fun () -> ignore (Ci.t_critical ~df:0))

let ci_batches_shrink_to_fit () =
  (* 10 samples on 20 requested batches: 5 batches of 2. *)
  let ci = Ci.batch_means (Array.init 10 float_of_int) in
  check_int "effective batches" 5 ci.Ci.batches;
  check_float "mean" 4.5 ci.Ci.mean;
  Alcotest.check_raises "batches < 2"
    (Invalid_argument "Ci.batch_means: batches must be at least 2") (fun () ->
      ignore (Ci.batch_means ~batches:1 [| 1.0; 2.0 |]))

let ci_covers_iid_mean =
  (* For iid gaussian samples the 95% batch-means interval should cover
     the true mean nearly always; 3x the half-width makes the property
     solid across 100 seeds while still failing on any systematic bias. *)
  qtest "batch-means interval covers the true mean of iid samples"
    QCheck.(int_range 0 10_000)
    (fun salt ->
      let rng = Prng.create ~seed:(31_000 + salt) in
      let samples = Array.init 400 (fun _ -> Prng.gaussian rng ~mean:7.0 ~stddev:2.0) in
      let ci = Ci.batch_means samples in
      Float.abs (ci.Ci.mean -. 7.0) <= 3.0 *. ci.Ci.half_width)

(* ------------------------------------------------------------------ *)
(* The sweep itself: measured vs analytic *)

let sweep_quick_grid_agrees () =
  let results = Sweep.run_grid ~horizon:120.0 ~warmup:15.0 Sweep.quick_grid in
  check_int "all points ran" 3 (List.length results);
  List.iter
    (fun r ->
      check_bool
        (Printf.sprintf "%s agrees" (Sweep.point_key r.Sweep.point))
        true r.Sweep.pass)
    results

let sweep_dvfs_case () =
  (* The powersave point: the governor pins 1600 MHz, so the oracle's
     service rate must be scaled by ratio*cf = 0.6 — with the unscaled
     rate the targets would be off by 40%. *)
  let p = Sweep.point ~rho:0.6 ~service_mean:0.1 ~servers:1 ~policy:Sweep.Powersave in
  (* 1600 / 2667 with cf = 1 on the Optiplex. *)
  check_float_eps 1e-4 "effective speed" 0.59993 (Sweep.speed_of_policy Sweep.Powersave);
  let r = Sweep.run_point ~horizon:200.0 ~warmup:20.0 p in
  check_float_eps 1e-4 "result speed" 0.59993 r.Sweep.speed;
  check_bool "DVFS point agrees with the scaled oracle" true r.Sweep.pass

let sweep_perturbed_oracle_flips () =
  (* The injected-bug check: a 20% mis-scaled service rate must flip the
     table (the simulator is untouched; only the oracle is perturbed). *)
  let ok = Sweep.run_grid ~horizon:200.0 ~warmup:20.0 Sweep.quick_grid in
  let bad = Sweep.run_grid ~horizon:200.0 ~warmup:20.0 ~mu_scale:0.8 Sweep.quick_grid in
  check_int "healthy table all-pass" 0 (List.length (Sweep.failures ok));
  check_bool "perturbed table has disagreements" true (Sweep.failures bad <> []);
  (* The M/M/3 point has the tightest CI; it must individually flip. *)
  let mm3 = List.nth bad 2 in
  check_int "M/M/3 point" 3 mm3.Sweep.point.Sweep.servers;
  check_bool "M/M/3 flips" false mm3.Sweep.pass

let sweep_property =
  (* Randomised grid: any stable (rho, service, c, policy) combination
     must agree with the closed form.  Seeds are derived from the point
     parameters, so each generated case is itself deterministic. *)
  qtest ~count:8 "measured agrees with M/M/c across a random grid"
    QCheck.(
      quad (float_range 0.2 0.7) (float_range 0.05 0.15) (int_range 1 3) bool)
    (fun (rho, service_mean, servers, fast) ->
      let policy = if fast then Sweep.Performance else Sweep.Powersave in
      let p = Sweep.point ~rho ~service_mean ~servers ~policy in
      let r = Sweep.run_point ~horizon:200.0 ~warmup:20.0 p in
      r.Sweep.pass)

let sweep_rejects_bad_arguments () =
  Alcotest.check_raises "rho" (Invalid_argument "Sweep.point: rho must be in (0, 1)")
    (fun () ->
      ignore (Sweep.point ~rho:1.0 ~service_mean:0.1 ~servers:1 ~policy:Sweep.Performance));
  Alcotest.check_raises "jobs" (Invalid_argument "Sweep.run_grid: jobs must be positive")
    (fun () -> ignore (Sweep.run_grid ~jobs:0 Sweep.quick_grid));
  Alcotest.check_raises "metric" (Invalid_argument "Sweep.verdict_of: no bogus verdict")
    (fun () ->
      let r = List.hd (Sweep.run_grid ~horizon:40.0 ~warmup:5.0 [ List.hd Sweep.quick_grid ]) in
      ignore (Sweep.verdict_of r "bogus"))

(* Differential determinism (the PR 2 harness pattern): the CSV artifact
   must be byte-identical whatever the pool size. *)
let sweep_csv_deterministic () =
  let csv jobs = Sweep.to_csv (Sweep.run_grid ~jobs ~horizon:40.0 ~warmup:5.0 Sweep.quick_grid) in
  let serial = csv 1 in
  check_bool "csv has a body" true (String.length serial > String.length Sweep.csv_header);
  Alcotest.(check string) "jobs 2 = serial" serial (csv 2);
  Alcotest.(check string) "jobs 4 = serial" serial (csv 4)

(* ------------------------------------------------------------------ *)
(* Open_loop workload basics (the source the sweep drives) *)

module Open_loop = Workloads.Open_loop
module Workload = Workloads.Workload

let open_loop_invalid () =
  Alcotest.check_raises "rate" (Invalid_argument "Open_loop.create: rate must be positive")
    (fun () -> ignore (Open_loop.create ~rate:0.0 ~service_mean:0.1 ()));
  Alcotest.check_raises "service"
    (Invalid_argument "Open_loop.create: service_mean must be positive") (fun () ->
      ignore (Open_loop.create ~rate:1.0 ~service_mean:0.0 ()));
  Alcotest.check_raises "servers"
    (Invalid_argument "Open_loop.create: servers must be positive") (fun () ->
      ignore (Open_loop.create ~servers:0 ~rate:1.0 ~service_mean:0.1 ()));
  Alcotest.check_raises "multi-server workload"
    (Invalid_argument "Open_loop.workload: a multi-server station must be driven by step")
    (fun () -> ignore (Open_loop.workload (Open_loop.create ~servers:2 ~rate:1.0 ~service_mean:0.1 ())))

let drive_workload src ~ticks ~speed =
  let w = Open_loop.workload src in
  let tick = Sim_time.of_ms 1 in
  let now = ref Sim_time.zero in
  for _ = 1 to ticks do
    Workload.advance w ~now:!now ~dt:tick;
    if Workload.has_work w then ignore (Workload.execute w ~now:!now ~cpu_time:tick ~speed);
    now := Sim_time.add !now tick
  done

let open_loop_conservation () =
  let src = Open_loop.create ~seed:7 ~rate:20.0 ~service_mean:0.01 () in
  drive_workload src ~ticks:60_000 ~speed:1.0;
  check_int "arrivals = completed + in flight"
    (Open_loop.arrivals src)
    (Open_loop.completed_requests src + Open_loop.in_system src);
  check_int "sojourn sample per completion" (Open_loop.completed_requests src)
    (Array.length (Open_loop.sojourn_samples src));
  check_int "queue sample per arrival" (Open_loop.arrivals src)
    (Array.length (Open_loop.queue_seen_samples src))

let open_loop_poisson_rate () =
  let src = Open_loop.create ~seed:11 ~rate:50.0 ~service_mean:0.005 () in
  drive_workload src ~ticks:100_000 ~speed:1.0;
  (* 100 s at 50 req/s: 5000 expected, sd ~ 71; allow 5 sigma. *)
  let n = float_of_int (Open_loop.arrivals src) in
  check_bool "arrival count near rate * horizon" true (Float.abs (n -. 5000.0) < 355.0)

let open_loop_busy_tracks_offered_work () =
  let src = Open_loop.create ~seed:13 ~rate:30.0 ~service_mean:0.01 () in
  drive_workload src ~ticks:100_000 ~speed:0.6;
  (* Offered work 0.3 abs/s at speed 0.6 -> busy fraction ~0.5 of 100 s. *)
  let busy = Open_loop.busy_time src in
  check_bool "busy time near offered / speed" true (busy > 42.0 && busy < 58.0)

let open_loop_reset_keeps_backlog () =
  let src = Open_loop.create ~seed:17 ~rate:100.0 ~service_mean:0.1 () in
  (* Saturated: rho = 10, a backlog builds up. *)
  drive_workload src ~ticks:2_000 ~speed:1.0;
  let backlog = Open_loop.in_system src in
  check_bool "backlog built" true (backlog > 0);
  Open_loop.reset_stats src;
  check_int "counters cleared" 0 (Open_loop.arrivals src);
  check_int "completions cleared" 0 (Open_loop.completed_requests src);
  check_int "backlog survives reset" backlog (Open_loop.in_system src);
  drive_workload src ~ticks:100 ~speed:1.0;
  check_bool "keeps serving the old backlog" true (Open_loop.completed_requests src > 0)

let open_loop_station_parallelism () =
  (* Two saturating streams: a 2-server station must complete ~2x what a
     single server does at the same speed. *)
  let run servers =
    let src = Open_loop.create ~seed:23 ~servers ~rate:400.0 ~service_mean:0.01 () in
    let tick = Sim_time.of_ms 1 in
    let now = ref Sim_time.zero in
    for _ = 1 to 30_000 do
      Open_loop.step src ~now:!now ~dt:tick ~speed:1.0;
      now := Sim_time.add !now tick
    done;
    Open_loop.completed_requests src
  in
  let one = run 1 and two = run 2 in
  let r = float_of_int two /. float_of_int one in
  check_bool "two servers double the throughput" true (r > 1.9 && r < 2.1)

let () =
  Alcotest.run "validate"
    [
      ( "oracle",
        [
          Alcotest.test_case "M/M/1 textbook" `Quick mm1_textbook;
          Alcotest.test_case "M/M/1 unstable" `Quick mm1_unstable;
          Alcotest.test_case "M/M/2 hand computed" `Quick mm2_hand_computed;
          Alcotest.test_case "M/M/c unstable" `Quick mmc_unstable;
          Alcotest.test_case "repairman single client" `Quick repairman_single_client;
          Alcotest.test_case "repairman two clients" `Quick repairman_two_clients;
          Alcotest.test_case "repairman saturated" `Quick repairman_saturated;
          mm1_little_law;
          mmc_one_server_is_mm1;
          repairman_monotone;
        ] );
      ( "ci",
        [
          Alcotest.test_case "constant samples" `Quick ci_constant_samples;
          Alcotest.test_case "insufficient data" `Quick ci_insufficient_data;
          Alcotest.test_case "t critical" `Quick ci_t_critical;
          Alcotest.test_case "batches shrink to fit" `Quick ci_batches_shrink_to_fit;
          ci_covers_iid_mean;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "quick grid agrees" `Quick sweep_quick_grid_agrees;
          Alcotest.test_case "DVFS case" `Quick sweep_dvfs_case;
          Alcotest.test_case "perturbed oracle flips" `Quick sweep_perturbed_oracle_flips;
          Alcotest.test_case "rejects bad arguments" `Quick sweep_rejects_bad_arguments;
          Alcotest.test_case "csv determinism across pools" `Quick sweep_csv_deterministic;
          sweep_property;
        ] );
      ( "open_loop",
        [
          Alcotest.test_case "invalid" `Quick open_loop_invalid;
          Alcotest.test_case "conservation" `Quick open_loop_conservation;
          Alcotest.test_case "poisson rate" `Quick open_loop_poisson_rate;
          Alcotest.test_case "busy tracks offered work" `Quick open_loop_busy_tracks_offered_work;
          Alcotest.test_case "reset keeps backlog" `Quick open_loop_reset_keeps_backlog;
          Alcotest.test_case "station parallelism" `Quick open_loop_station_parallelism;
        ] );
    ]

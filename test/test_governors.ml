(* Tests for the DVFS governors. *)

module Processor = Cpu_model.Processor
module Frequency = Cpu_model.Frequency
module Governor = Governors.Governor

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ms = Sim_time.of_ms

let processor ?init_freq () = Processor.create ?init_freq Cpu_model.Arch.optiplex_755

let observe gov ~now util = gov.Governor.observe ~now ~busy_fraction:util

let performance_pins_max () =
  let p = processor ~init_freq:1600 () in
  let gov = Governor.performance p in
  observe gov ~now:(ms 1) 0.0;
  check_int "max" 2667 (Processor.current_freq p)

let powersave_pins_min () =
  let p = processor () in
  let gov = Governor.powersave p in
  observe gov ~now:(ms 1) 1.0;
  check_int "min" 1600 (Processor.current_freq p)

let make_zero_period () =
  Alcotest.check_raises "zero period" (Invalid_argument "Governor.make: zero period")
    (fun () ->
      ignore (Governor.make ~name:"x" ~period:Sim_time.zero ~observe:(fun ~now:_ ~busy_fraction:_ -> ())))

(* ------------------------------------------------------------------ *)
(* Ondemand *)

let ondemand_jumps_to_max () =
  let p = processor ~init_freq:1600 () in
  let gov = Governors.Ondemand.create p in
  observe gov ~now:(ms 1) 0.95;
  check_int "jumped" 2667 (Processor.current_freq p)

let ondemand_descends_on_low_load () =
  let p = processor () in
  let gov = Governors.Ondemand.create p in
  observe gov ~now:(ms 1) 0.10;
  check_int "down to min" 1600 (Processor.current_freq p)

let ondemand_picks_sufficient_level () =
  let p = processor () in
  let gov = Governors.Ondemand.create p in
  (* absolute load 0.65 at max: lowest level with speed*0.8 >= 0.65 is
     2400 (0.9*0.8 = 0.72). *)
  observe gov ~now:(ms 1) 0.65;
  check_int "mid level" 2400 (Processor.current_freq p)

let ondemand_floor_respected () =
  let p = processor () in
  let gov = Governors.Ondemand.create ~floor:2133 p in
  observe gov ~now:(ms 1) 0.01;
  check_int "floored" 2133 (Processor.current_freq p);
  observe gov ~now:(ms 2) 0.95;
  check_int "still jumps" 2667 (Processor.current_freq p)

let ondemand_threshold_validated () =
  let p = processor () in
  Alcotest.check_raises "threshold" (Invalid_argument "Ondemand.create: up_threshold out of (0, 1]")
    (fun () -> ignore (Governors.Ondemand.create ~up_threshold:1.5 p))

(* ------------------------------------------------------------------ *)
(* Stable ondemand *)

let stable_requires_agreement () =
  let p = processor () in
  let gov = Governors.Stable_ondemand.create ~stability:3 p in
  (* Very low load asks for the minimum; it must take 3 windows to move. *)
  observe gov ~now:(ms 100) 0.05;
  check_int "no move yet" 2667 (Processor.current_freq p);
  observe gov ~now:(ms 200) 0.05;
  check_int "still waiting" 2667 (Processor.current_freq p);
  observe gov ~now:(ms 300) 0.05;
  check_int "one step only" 2400 (Processor.current_freq p)

let stable_steps_one_level () =
  let p = processor () in
  let gov = Governors.Stable_ondemand.create ~stability:1 p in
  observe gov ~now:(ms 100) 0.01;
  check_int "single step down" 2400 (Processor.current_freq p);
  observe gov ~now:(ms 200) 0.01;
  check_int "second step" 2133 (Processor.current_freq p)

let stable_reaches_equilibrium () =
  let p = processor () in
  let gov = Governors.Stable_ondemand.create p in
  (* Feed a steady 20% utilization: the governor should settle at the
     minimum frequency and stay there. *)
  let util = ref 0.2 in
  for i = 1 to 100 do
    observe gov ~now:(ms (100 * i)) !util;
    (* utilization rises as frequency drops (capped VM time share fixed at
       20%, but keep it simple: constant busy fraction). *)
    util := 0.2
  done;
  check_int "settled at min" 1600 (Processor.current_freq p);
  let transitions = Cpu_model.Cpufreq.transitions (Processor.cpufreq p) in
  check_bool "stable (few transitions)" true (transitions <= 5)

let stable_validation () =
  let p = processor () in
  Alcotest.check_raises "stability" (Invalid_argument "Stable_ondemand.create: stability must be >= 1")
    (fun () -> ignore (Governors.Stable_ondemand.create ~stability:0 p))

(* ------------------------------------------------------------------ *)
(* Conservative *)

let conservative_steps () =
  let p = processor ~init_freq:2133 () in
  let gov = Governors.Conservative.create p in
  observe gov ~now:(ms 80) 0.9;
  check_int "one up" 2400 (Processor.current_freq p);
  observe gov ~now:(ms 160) 0.1;
  check_int "one down" 2133 (Processor.current_freq p);
  observe gov ~now:(ms 240) 0.5;
  check_int "dead zone holds" 2133 (Processor.current_freq p)

let conservative_saturates () =
  let p = processor () in
  let gov = Governors.Conservative.create p in
  observe gov ~now:(ms 80) 0.99;
  check_int "at max already" 2667 (Processor.current_freq p)

let conservative_thresholds_validated () =
  let p = processor () in
  Alcotest.check_raises "thresholds"
    (Invalid_argument "Conservative.create: thresholds must satisfy 0 < down < up <= 1")
    (fun () -> ignore (Governors.Conservative.create ~up_threshold:0.2 ~down_threshold:0.5 p))

(* ------------------------------------------------------------------ *)
(* Schedutil *)

let schedutil_proportional () =
  let p = processor () in
  let gov = Governors.Schedutil.create p in
  (* util 0.4 at max: target = 1.25 * 0.4 * 2667 = 1333 -> lowest level
     above it is 1600. *)
  observe gov ~now:(ms 10) 0.4;
  check_int "proportional target" 1600 (Processor.current_freq p);
  observe gov ~now:(ms 20) 0.9;
  (* Frequency-invariant: util is now measured at 1600 (speed 0.6):
     target = 1.25 * 0.9 * 0.6 * 2667 = 1800 -> 1867. *)
  check_int "scales back up" 1867 (Processor.current_freq p)

let schedutil_saturates () =
  let p = processor ~init_freq:1600 () in
  let gov = Governors.Schedutil.create p in
  observe gov ~now:(ms 10) 1.0;
  (* target = 1.25 * 0.6 * 2667 = 2000 -> 2133, stepping toward max. *)
  check_int "climbs" 2133 (Processor.current_freq p);
  observe gov ~now:(ms 20) 1.0;
  observe gov ~now:(ms 30) 1.0;
  check_int "reaches max" 2667 (Processor.current_freq p)

let schedutil_margin_validated () =
  let p = processor () in
  Alcotest.check_raises "margin" (Invalid_argument "Schedutil.create: margin must be >= 1")
    (fun () -> ignore (Governors.Schedutil.create ~margin:0.5 p))

(* ------------------------------------------------------------------ *)
(* Userspace *)

let userspace_applies_request () =
  let p = processor () in
  let us = Governors.Userspace.create p in
  let gov = Governors.Userspace.governor us in
  Governors.Userspace.request us 1867;
  check_bool "pending" true (Governors.Userspace.requested us = Some 1867);
  check_int "not yet applied" 2667 (Processor.current_freq p);
  observe gov ~now:(ms 10) 0.0;
  check_int "applied" 1867 (Processor.current_freq p);
  check_bool "cleared" true (Governors.Userspace.requested us = None)

let userspace_clamps () =
  let p = processor () in
  let us = Governors.Userspace.create p in
  let gov = Governors.Userspace.governor us in
  Governors.Userspace.request us 1_000;
  observe gov ~now:(ms 10) 0.0;
  check_int "clamped to closest level" 1600 (Processor.current_freq p)

let () =
  Alcotest.run "governors"
    [
      ( "trivial",
        [
          Alcotest.test_case "performance" `Quick performance_pins_max;
          Alcotest.test_case "powersave" `Quick powersave_pins_min;
          Alcotest.test_case "zero period" `Quick make_zero_period;
        ] );
      ( "ondemand",
        [
          Alcotest.test_case "jumps to max" `Quick ondemand_jumps_to_max;
          Alcotest.test_case "descends" `Quick ondemand_descends_on_low_load;
          Alcotest.test_case "sufficient level" `Quick ondemand_picks_sufficient_level;
          Alcotest.test_case "floor" `Quick ondemand_floor_respected;
          Alcotest.test_case "threshold validated" `Quick ondemand_threshold_validated;
        ] );
      ( "stable ondemand",
        [
          Alcotest.test_case "requires agreement" `Quick stable_requires_agreement;
          Alcotest.test_case "steps one level" `Quick stable_steps_one_level;
          Alcotest.test_case "equilibrium" `Quick stable_reaches_equilibrium;
          Alcotest.test_case "validation" `Quick stable_validation;
        ] );
      ( "conservative",
        [
          Alcotest.test_case "steps" `Quick conservative_steps;
          Alcotest.test_case "saturates" `Quick conservative_saturates;
          Alcotest.test_case "thresholds" `Quick conservative_thresholds_validated;
        ] );
      ( "schedutil",
        [
          Alcotest.test_case "proportional" `Quick schedutil_proportional;
          Alcotest.test_case "saturates" `Quick schedutil_saturates;
          Alcotest.test_case "margin validated" `Quick schedutil_margin_validated;
        ] );
      ( "userspace",
        [
          Alcotest.test_case "applies request" `Quick userspace_applies_request;
          Alcotest.test_case "clamps" `Quick userspace_clamps;
        ] );
    ]

(* The invariant sanitizer (lib/analysis), its hooks in the simulator, and
   the custom lint pass (lib/lint).

   Covers: registry idempotence and counters; the three violation
   policies; the NaN tripwire on measurement sinks; the live [pending]
   count of the event queue under heavy cancellation; an injected
   credit-conservation violation caught through the public
   [Pas_sched.check_invariants]; and the lint rules, including the
   planted-violation exit code of the standalone driver. *)

module Domain = Hypervisor.Domain
module Equations = Pas.Equations
module Processor = Cpu_model.Processor
module Workload = Workloads.Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Every test that enables the sanitizer runs inside this wrapper so a
   failure can never leak an enabled sanitizer into the other suites. *)
let with_sanitizer ?policy f () =
  Analysis.clear ();
  Analysis.enable ?policy ();
  Fun.protect ~finally:(fun () ->
      Analysis.disable ();
      Analysis.clear ())
    f

(* ----- registry ----- *)

let test_registry_idempotent () =
  let a = Analysis.Invariant.register "test.idem" ~equation:"Eq. 0" ~doc:"first" in
  let before = List.length (Analysis.Invariant.all ()) in
  let b = Analysis.Invariant.register "test.idem" ~doc:"second" in
  check_int "no duplicate entry" before (List.length (Analysis.Invariant.all ()));
  check_bool "same entry" true (a == b);
  check_bool "first doc wins" true (Analysis.Invariant.doc b = Some "first");
  check_bool "found by name" true
    (match Analysis.Invariant.find "test.idem" with Some i -> i == a | None -> false)

let test_registry_counters =
  with_sanitizer ~policy:Analysis.Collect (fun () ->
      let inv = Analysis.Invariant.register "test.counters" in
      Analysis.Invariant.reset_counters ();
      Analysis.Check.run inv true;
      Analysis.Check.run inv true;
      Analysis.Check.run inv false;
      check_int "checks" 3 (Analysis.Invariant.checks inv);
      check_int "violations" 1 (Analysis.Invariant.violations inv);
      Analysis.Invariant.reset_counters ();
      check_int "reset" 0 (Analysis.Invariant.checks inv))

(* ----- policies ----- *)

let test_disabled_is_noop () =
  Analysis.clear ();
  let inv = Analysis.Invariant.register "test.noop" in
  check_bool "off by default" false (Analysis.enabled ());
  Analysis.Check.run inv false;
  check_int "nothing recorded" 0 (List.length (Analysis.violations ()))

let test_fail_fast =
  with_sanitizer (fun () ->
      let inv = Analysis.Invariant.register "test.fail-fast" in
      check_bool "raises on violation" true
        (match
           Analysis.Check.run inv ~time_s:1.5 ~component:"unit"
             ~detail:(fun () -> "boom") false
         with
        | () -> false
        | exception Analysis.Violation.Error v ->
            v.Analysis.Violation.invariant = "test.fail-fast"
            && v.Analysis.Violation.component = "unit"
            && v.Analysis.Violation.time_s = 1.5
            && v.Analysis.Violation.detail = "boom"))

let test_collect =
  with_sanitizer ~policy:Analysis.Collect (fun () ->
      let inv = Analysis.Invariant.register "test.collect" in
      Analysis.Check.run inv ~detail:(fun () -> "first") false;
      Analysis.Check.run inv true;
      Analysis.Check.run inv ~detail:(fun () -> "second") false;
      match Analysis.violations () with
      | [ a; b ] ->
          check_bool "oldest first" true
            (a.Analysis.Violation.detail = "first" && b.Analysis.Violation.detail = "second")
      | l -> Alcotest.failf "expected 2 violations, got %d" (List.length l))

let test_warn_continues =
  with_sanitizer ~policy:Analysis.Warn (fun () ->
      let inv = Analysis.Invariant.register "test.warn" in
      Analysis.Check.run inv false;
      Analysis.Check.run inv false;
      check_int "recorded but not raised" 2 (List.length (Analysis.violations ())))

let test_check_helpers =
  with_sanitizer ~policy:Analysis.Collect (fun () ->
      let inv = Analysis.Invariant.register "test.helpers" in
      Analysis.Check.finite inv 1.0;
      Analysis.Check.finite inv Float.nan;
      Analysis.Check.finite inv Float.infinity;
      Analysis.Check.within inv ~lo:0.0 ~hi:1.0 0.5;
      Analysis.Check.within inv ~lo:0.0 ~hi:1.0 1.2;
      check_int "nan, inf and out-of-range caught" 3
        (List.length (Analysis.violations ())))

let test_report =
  with_sanitizer ~policy:Analysis.Collect (fun () ->
      let inv = Analysis.Invariant.register "test.report" in
      Analysis.Check.run inv ~component:"unit" false;
      let text = Format.asprintf "%a" Analysis.report () in
      check_bool "report names the invariant" true
        (List.exists
           (fun line ->
             String.length line > 0
             && String.length "test.report" <= String.length line
             &&
             let re = "test.report" in
             let rec find i =
               i + String.length re <= String.length line
               && (String.sub line i (String.length re) = re || find (i + 1))
             in
             find 0)
           (String.split_on_char '\n' text)))

(* ----- sink tripwires ----- *)

let test_series_nan =
  with_sanitizer (fun () ->
      let s = Series.create ~name:"unit" in
      Series.add s (Sim_time.of_ms 1) 1.0;
      check_bool "nan sample is fatal" true
        (match Series.add s (Sim_time.of_ms 2) Float.nan with
        | () -> false
        | exception Analysis.Violation.Error v ->
            v.Analysis.Violation.invariant = "series.finite-sample"))

let test_stats_nan =
  with_sanitizer (fun () ->
      let r = Stats.Running.create () in
      Stats.Running.add r 2.0;
      check_bool "nan accumulation is fatal" true
        (match Stats.Running.add r Float.nan with
        | () -> false
        | exception Analysis.Violation.Error v ->
            v.Analysis.Violation.invariant = "stats.finite-sample"))

(* ----- simulator: live pending count under cancellation ----- *)

let test_pending_counts_live () =
  let sim = Simulator.create () in
  let ran = ref 0 in
  let handles =
    List.init 10 (fun i -> Simulator.after sim (Sim_time.of_ms (i + 1)) (fun () -> incr ran))
  in
  check_int "all queued" 10 (Simulator.pending sim);
  List.iteri (fun i h -> if i mod 2 = 0 then Simulator.cancel sim h) handles;
  check_int "cancelled events excluded" 5 (Simulator.pending sim);
  (* double-cancel is a no-op *)
  Simulator.cancel sim (List.hd handles);
  check_int "double cancel" 5 (Simulator.pending sim);
  Simulator.run sim;
  check_int "only live events ran" 5 !ran;
  check_int "drained" 0 (Simulator.pending sim)

let test_pending_after_compaction () =
  (* enough cancellations to trigger heap compaction (threshold 64) *)
  let sim = Simulator.create () in
  let ran = ref 0 in
  let handles =
    List.init 500 (fun i -> Simulator.after sim (Sim_time.of_ms (i + 1)) (fun () -> incr ran))
  in
  List.iteri (fun i h -> if i mod 5 <> 0 then Simulator.cancel sim h) handles;
  check_int "live count survives compaction" 100 (Simulator.pending sim);
  Simulator.run sim;
  check_int "exactly the live events ran" 100 !ran

let test_pending_periodic () =
  let sim = Simulator.create () in
  let ticks = ref 0 in
  let h = Simulator.every sim (Sim_time.of_ms 10) (fun () -> incr ticks) in
  check_int "periodic counts once" 1 (Simulator.pending sim);
  Simulator.run_until sim (Sim_time.of_ms 35);
  check_int "still one pending after re-arms" 1 (Simulator.pending sim);
  Simulator.cancel sim h;
  check_int "cancelled cycle" 0 (Simulator.pending sim);
  Simulator.run_until sim (Sim_time.of_ms 100);
  check_int "no further ticks" 3 !ticks

let test_monotonic_under_sanitizer =
  with_sanitizer (fun () ->
      (* a normal run must not trip the monotonic-time invariant *)
      let sim = Simulator.create () in
      let n = ref 0 in
      ignore (Simulator.every sim (Sim_time.of_ms 7) (fun () -> incr n));
      Simulator.run_until sim (Sim_time.of_sec 1);
      check_bool "clean run" true (!n > 100))

(* ----- equations: explicit rejection of non-positive speed ----- *)

let test_invalid_speed () =
  Alcotest.check_raises "zero ratio"
    (Equations.Invalid_speed { ratio = 0.0; cf = 1.0 })
    (fun () -> ignore (Equations.compensated_credit ~initial:10.0 ~ratio:0.0 ~cf:1.0));
  Alcotest.check_raises "negative cf"
    (Equations.Invalid_speed { ratio = 0.5; cf = -1.0 })
    (fun () -> ignore (Equations.compensated_credit ~initial:10.0 ~ratio:0.5 ~cf:(-1.0)))

(* ----- injected credit-conservation violation ----- *)

let test_injected_conservation_violation =
  with_sanitizer (fun () ->
      let processor = Processor.create Cpu_model.Arch.optiplex_755 in
      let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
      let b = Domain.create ~name:"b" ~credit_pct:30.0 (Workload.busy_loop ()) in
      let pas = Pas.Pas_sched.create ~processor [ a; b ] in
      let now = Sim_time.of_ms 10 in
      (* clean state passes *)
      Pas.Pas_sched.check_invariants pas ~now;
      (* corrupt one effective credit behind PAS's back: conservation breaks *)
      let sched = Pas.Pas_sched.scheduler pas in
      sched.Hypervisor.Scheduler.set_effective_credit a
        (Pas.Pas_sched.effective_credit pas a +. 7.0);
      check_bool "corruption detected" true
        (match Pas.Pas_sched.check_invariants pas ~now with
        | () -> false
        | exception Analysis.Violation.Error v ->
            v.Analysis.Violation.invariant = "pas.credit-conservation"))

(* ----- lint rules ----- *)

let issues_of src = Lint.lint_source ~file:"lib/fake/fake.ml" src
let rules issues = List.map (fun i -> i.Lint.rule) issues

let test_lint_float_eq () =
  check_bool "planted float equality flagged" true
    (rules (issues_of "let bad x = x = 1.0\n") = [ "float-eq" ]);
  check_bool "<> flagged" true
    (rules (issues_of "let bad x = x <> 0.5\n") = [ "float-eq" ]);
  check_bool "<= is fine" true (issues_of "let ok x = x <= 1.0\n" = []);
  check_bool "optional-arg default is fine" true
    (issues_of "let ok ?(x = 1.0) () = x\n" = []);
  check_bool "record field is fine" true
    (issues_of "let ok = { mean = 0.0; count = 0 }\n" = []);
  check_bool "comments are blanked" true (issues_of "(* x = 1.0 *)\nlet ok = 3\n" = []);
  check_bool "strings are blanked" true (issues_of "let ok = \"x = 1.0\"\n" = [])

let test_lint_waiver () =
  check_bool "waived line is exempt" true
    (issues_of "let ok x = x = 1.0 (* lint:ignore float-eq: sentinel *)\n" = [])

let test_lint_random () =
  check_bool "global Random flagged" true
    (rules (issues_of "let x = Random.int 3\n") = [ "random" ]);
  check_bool "Prng is fine" true (issues_of "let x = Prng.int rng 3\n" = [])

let test_lint_assert_false () =
  check_bool "bare assert false flagged" true
    (rules (issues_of "let f = function Some x -> x | None -> assert false\n")
    = [ "assert-false" ]);
  check_bool "documented unreachable is fine" true
    (issues_of
       "(* unreachable: always Some here *)\n\
        let f = function Some x -> x | None -> assert false\n"
    = [])

let test_lint_mutable_doc () =
  let src = "type t = {\n  mutable count : int;\n}\n" in
  check_bool "undocumented mutable field in mli flagged" true
    (rules (Lint.lint_source ~file:"lib/fake/fake.mli" src) = [ "mutable-doc" ]);
  let documented = "type t = {\n  mutable count : int;  (** grows monotonically *)\n}\n" in
  check_bool "documented mutable field is fine" true
    (Lint.lint_source ~file:"lib/fake/fake.mli" documented = []);
  check_bool "mutable in ml is fine" true (issues_of src = [])

(* Hash tables iterate in hash order, which varies run to run — every
   [Hashtbl.create] must say why that cannot leak into simulation output
   (a nearby "deterministic"/"hash-order" comment), or be waived. *)
let test_lint_hashtbl_create () =
  check_bool "bare Hashtbl.create flagged" true
    (rules (issues_of "let t = Hashtbl.create 8\n") = [ "hashtbl-create" ]);
  check_bool "same-line deterministic comment is fine" true
    (issues_of "let t = Hashtbl.create 8 (* deterministic: lookup only *)\n" = []);
  check_bool "comment up to two lines above is fine" true
    (issues_of "(* Deterministic: keyed lookups, never iterated *)\nlet t = Hashtbl.create 8\n"
    = []);
  check_bool "hash-order comment is fine" true
    (issues_of "(* hash-order: rows sorted before printing *)\n\nlet t = Hashtbl.create 8\n" = []);
  check_bool "comment three lines up is too far" true
    (rules (issues_of "(* deterministic *)\n\n\nlet t = Hashtbl.create 8\n")
    = [ "hashtbl-create" ]);
  check_bool "string occurrence is blanked" true
    (issues_of "let s = \"Hashtbl.create\"\n" = []);
  check_bool "longer module name does not match" true
    (issues_of "let t = XHashtbl.create 8\n" = []);
  check_bool "waiver applies" true
    (issues_of "let t = Hashtbl.create 8 (* lint:ignore hashtbl-create: scratch *)\n" = [])

(* Files declaring an allocation-free hot path (a standalone
   [(* alloc: none *)] marker line) must not grow formatted printing:
   any Printf/Format/print_ call in such a file is flagged so the
   printing moves out of the hot module — or is explicitly waived. *)
let test_lint_hot_path_printf () =
  let hot = "(* alloc: none *)\nlet hot x = x + 1\n" in
  check_bool "Printf in a hot-path file flagged" true
    (rules (issues_of (hot ^ "let dump x = Printf.printf \"%d\" x\n"))
    = [ "hot-path-printf" ]);
  check_bool "Format flagged too" true
    (rules (issues_of (hot ^ "let dump x = Format.asprintf \"%d\" x\n"))
    = [ "hot-path-printf" ]);
  check_bool "print_endline flagged" true
    (rules (issues_of (hot ^ "let dump x = print_endline x\n")) = [ "hot-path-printf" ]);
  check_bool "a file with no marker is free to print" true
    (issues_of "let dump x = Printf.printf \"%d\" x\n" = []);
  check_bool "marker inside a string literal does not arm the rule" true
    (issues_of "let s = \"(* alloc: none *)\"\nlet dump x = Printf.printf \"%d\" x\n" = []);
  check_bool "Printf in a comment is blanked" true
    (issues_of (hot ^ "(* consider Printf.printf here *)\nlet ok = 3\n") = []);
  check_bool "longer module name does not match" true
    (issues_of (hot ^ "let dump x = MyPrintf.printf x\n") = []);
  check_bool "waiver applies" true
    (issues_of
       (hot ^ "let dump x = Printf.printf \"%d\" x (* lint:ignore hot-path-printf: debug *)\n")
    = [])

(* The old text-based [experiment-state] rule moved to the AST analyzer
   (lib/staticcheck, test/test_staticcheck.ml), which also catches aliased
   module state the text scan could not see.  What stays here is the
   tokenizer: quoted string literals must be blanked like ordinary strings,
   including bodies that contain comment openers, quotes and rule bait. *)
let test_lint_quoted_string () =
  check_bool "quoted string is blanked" true
    (issues_of "let ok = {|Random.int \" (* x = 1.0 *)|}\n" = []);
  check_bool "delimited quoted string is blanked" true
    (issues_of "let ok = {foo|Random.int \" x = 1.0 |} |foo}\n" = []);
  check_bool "unterminated quoted string blanks to eof" true
    (issues_of "let ok = {|x = 1.0\n" = []);
  check_bool "code after the literal is still checked" true
    (rules (issues_of "let s = {|quiet|}\nlet x = Random.int 3\n") = [ "random" ]);
  check_bool "brace without a delimiter is not a literal" true
    (rules (issues_of "let f r = { r with x = 1 }\nlet y = Random.int 3\n")
    = [ "random" ])

(* The acceptance check: the standalone driver (what [dune build @lint]
   runs) exits nonzero on a tree with a planted violation and zero on a
   clean one. *)
let test_lint_driver_exit_code () =
  (* the driver sits next to this test in the build tree, whatever the cwd *)
  let exe =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/lint_main.exe"
  in
  let dir = Filename.temp_file "lintcheck" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write name content =
    let oc = open_out (Filename.concat dir name) in
    output_string oc content;
    close_out oc
  in
  let run () =
    Sys.command
      (Filename.quote_command exe [ dir ] ~stdout:Filename.null ~stderr:Filename.null)
  in
  write "clean.ml" "let ok x = x + 1\n";
  check_int "clean tree exits 0" 0 (run ());
  write "planted.ml" "let bad x = x = 1.0\n";
  check_bool "planted float-eq exits nonzero" true (run () <> 0);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let () =
  Alcotest.run "analysis"
    [
      ( "registry",
        [
          Alcotest.test_case "idempotent" `Quick test_registry_idempotent;
          Alcotest.test_case "counters" `Quick test_registry_counters;
        ] );
      ( "policies",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "fail-fast raises" `Quick test_fail_fast;
          Alcotest.test_case "collect accumulates" `Quick test_collect;
          Alcotest.test_case "warn continues" `Quick test_warn_continues;
          Alcotest.test_case "finite/within helpers" `Quick test_check_helpers;
          Alcotest.test_case "report" `Quick test_report;
        ] );
      ( "tripwires",
        [
          Alcotest.test_case "series rejects nan" `Quick test_series_nan;
          Alcotest.test_case "stats rejects nan" `Quick test_stats_nan;
          Alcotest.test_case "invalid speed" `Quick test_invalid_speed;
          Alcotest.test_case "injected conservation violation" `Quick
            test_injected_conservation_violation;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "pending counts live events" `Quick test_pending_counts_live;
          Alcotest.test_case "pending after compaction" `Quick test_pending_after_compaction;
          Alcotest.test_case "periodic events" `Quick test_pending_periodic;
          Alcotest.test_case "monotonic clock under sanitizer" `Quick
            test_monotonic_under_sanitizer;
        ] );
      ( "lint",
        [
          Alcotest.test_case "float equality" `Quick test_lint_float_eq;
          Alcotest.test_case "waiver" `Quick test_lint_waiver;
          Alcotest.test_case "unseeded random" `Quick test_lint_random;
          Alcotest.test_case "assert false" `Quick test_lint_assert_false;
          Alcotest.test_case "mutable without doc" `Quick test_lint_mutable_doc;
          Alcotest.test_case "quoted strings" `Quick test_lint_quoted_string;
          Alcotest.test_case "hashtbl create" `Quick test_lint_hashtbl_create;
          Alcotest.test_case "hot-path printf" `Quick test_lint_hot_path_printf;
          Alcotest.test_case "driver exit code" `Quick test_lint_driver_exit_code;
        ] );
    ]

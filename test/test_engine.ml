(* Tests for the discrete-event engine: time, heap, PRNG, simulator, vectors,
   statistics, series, tables, traces. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Sim_time *)

let time_conversions () =
  check_int "us" 42 (Sim_time.to_us (Sim_time.of_us 42));
  check_int "ms" 5_000 (Sim_time.to_us (Sim_time.of_ms 5));
  check_int "sec" 3_000_000 (Sim_time.to_us (Sim_time.of_sec 3));
  check_float "to_sec" 1.5 (Sim_time.to_sec (Sim_time.of_ms 1500));
  check_float "to_ms" 2.5 (Sim_time.to_ms (Sim_time.of_us 2500))

let time_of_sec_f () =
  check_int "round down" 1_500_000 (Sim_time.to_us (Sim_time.of_sec_f 1.5));
  check_int "round nearest" 1 (Sim_time.to_us (Sim_time.of_sec_f 1.4e-6));
  check_int "zero" 0 (Sim_time.to_us (Sim_time.of_sec_f 0.0))

let time_arithmetic () =
  let a = Sim_time.of_ms 10 and b = Sim_time.of_ms 4 in
  check_int "add" 14_000 (Sim_time.to_us (Sim_time.add a b));
  check_int "sub" 6_000 (Sim_time.to_us (Sim_time.sub a b));
  check_int "diff sym" 6_000 (Sim_time.to_us (Sim_time.diff b a));
  check_bool "compare" true (Sim_time.compare a b > 0);
  check_int "min" 4_000 (Sim_time.to_us (Sim_time.min a b));
  check_int "max" 10_000 (Sim_time.to_us (Sim_time.max a b))

let time_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Sim_time.of_us: negative duration")
    (fun () -> ignore (Sim_time.of_us (-1)));
  Alcotest.check_raises "sub underflow" (Invalid_argument "Sim_time.sub: negative result")
    (fun () -> ignore (Sim_time.sub (Sim_time.of_us 1) (Sim_time.of_us 2)))

let time_pp () =
  check_string "seconds" "2.500s" (Sim_time.to_string (Sim_time.of_ms 2500));
  check_string "millis" "3.000ms" (Sim_time.to_string (Sim_time.of_ms 3));
  check_string "micros" "7us" (Sim_time.to_string (Sim_time.of_us 7))

(* ------------------------------------------------------------------ *)
(* Heap *)

let heap_basic () =
  let h = Heap.create ~cmp:Int.compare in
  check_bool "empty" true (Heap.is_empty h);
  Heap.push h 5;
  Heap.push h 1;
  Heap.push h 3;
  check_int "length" 3 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  check_int "pop1" 1 (Heap.pop_exn h);
  check_int "pop2" 3 (Heap.pop_exn h);
  check_int "pop3" 5 (Heap.pop_exn h);
  Alcotest.(check (option int)) "empty pop" None (Heap.pop h)

let heap_pop_exn_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let heap_clear_to_list () =
  let h = Heap.of_list ~cmp:Int.compare [ 4; 2; 9 ] in
  check_int "to_list len" 3 (List.length (Heap.to_list h));
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let heap_sorted_property =
  qtest "heap pops in sorted order"
    QCheck.(list int)
    (fun xs ->
      let h = Heap.of_list ~cmp:Int.compare xs in
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* Prng *)

let prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let prng_split_independent () =
  let a = Prng.create ~seed:1 in
  let b = Prng.split a in
  check_bool "diverged" true (Prng.next_int64 a <> Prng.next_int64 b)

let prng_copy () =
  let a = Prng.create ~seed:7 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a) (Prng.next_int64 b)

let prng_derive_deterministic () =
  let a = Prng.derive ~key:"experiment/fig5" and b = Prng.derive ~key:"experiment/fig5" in
  for _ = 1 to 10 do
    Alcotest.(check int64) "same key, same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done;
  let c = Prng.derive ~key:"experiment/fig6" in
  check_bool "distinct keys diverge" true (Prng.next_int64 a <> Prng.next_int64 c);
  Alcotest.(check int)
    "derive_seed stable" (Prng.derive_seed ~key:"x") (Prng.derive_seed ~key:"x")

let prng_derive_order_independent =
  (* The contract the parallel runner rests on: the stream behind a key does
     not depend on how many other derivations or draws happened first, nor
     on the order keys are derived in. *)
  qtest "derive independent of call order"
    QCheck.(pair (small_list small_string) small_string)
    (fun (keys, extra) ->
      let fingerprint key =
        let rng = Prng.derive ~key in
        List.init 4 (fun _ -> Prng.next_int64 rng)
      in
      let fresh = List.map fingerprint keys in
      (* Interleave: derive in reverse order, with unrelated derivations and
         draws in between, then compare per-key fingerprints. *)
      let noisy =
        let acc =
          List.rev_map
            (fun key ->
              ignore (Prng.next_int64 (Prng.derive ~key:(extra ^ key)));
              ignore (Prng.derive_seed ~key:extra);
              (key, fingerprint key))
            keys
        in
        List.map (fun key -> List.assoc key acc) keys
      in
      fresh = noisy)

let prng_float_bounds =
  qtest "float in [0, bound)"
    QCheck.(pair small_int (float_bound_exclusive 1000.0))
    (fun (seed, bound) ->
      QCheck.assume (bound > 0.0);
      let rng = Prng.create ~seed in
      let x = Prng.float rng bound in
      x >= 0.0 && x < bound)

let prng_int_bounds =
  qtest "int in [0, bound)"
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Prng.create ~seed in
      let x = Prng.int rng bound in
      x >= 0 && x < bound)

let prng_exponential_mean () =
  let rng = Prng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential rng ~rate:2.0
  done;
  check_float_eps 0.02 "mean ~ 1/rate" 0.5 (!sum /. float_of_int n)

let prng_poisson_mean () =
  let rng = Prng.create ~seed:13 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Prng.poisson rng ~mean:3.5
  done;
  check_float_eps 0.1 "mean" 3.5 (float_of_int !sum /. float_of_int n)

let prng_poisson_large_mean () =
  let rng = Prng.create ~seed:17 in
  let n = 2_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Prng.poisson rng ~mean:80.0
  done;
  check_float_eps 2.0 "normal approximation regime" 80.0 (float_of_int !sum /. float_of_int n)

let prng_gaussian_moments () =
  let rng = Prng.create ~seed:19 in
  let n = 20_000 in
  let stats = Stats.Running.create () in
  for _ = 1 to n do
    Stats.Running.add stats (Prng.gaussian rng ~mean:10.0 ~stddev:2.0)
  done;
  check_float_eps 0.1 "mean" 10.0 (Stats.Running.mean stats);
  check_float_eps 0.1 "stddev" 2.0 (Stats.Running.stddev stats)

let prng_shuffle_permutation =
  qtest "shuffle is a permutation"
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      Prng.shuffle (Prng.create ~seed) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Simulator *)

let sim_ordering () =
  let sim = Simulator.create () in
  let log = ref [] in
  let record tag () = log := tag :: !log in
  ignore (Simulator.at sim (Sim_time.of_ms 30) (record "c"));
  ignore (Simulator.at sim (Sim_time.of_ms 10) (record "a"));
  ignore (Simulator.at sim (Sim_time.of_ms 20) (record "b"));
  Simulator.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let sim_same_time_fifo () =
  let sim = Simulator.create () in
  let log = ref [] in
  let record tag () = log := tag :: !log in
  ignore (Simulator.at sim (Sim_time.of_ms 5) (record "first"));
  ignore (Simulator.at sim (Sim_time.of_ms 5) (record "second"));
  Simulator.run sim;
  Alcotest.(check (list string)) "fifo" [ "first"; "second" ] (List.rev !log)

let sim_past_raises () =
  let sim = Simulator.create () in
  ignore (Simulator.at sim (Sim_time.of_ms 10) (fun () -> ()));
  Simulator.run sim;
  Alcotest.check_raises "past" (Invalid_argument "Simulator.at: time is in the past")
    (fun () -> ignore (Simulator.at sim (Sim_time.of_ms 5) (fun () -> ())))

let sim_cancel () =
  let sim = Simulator.create () in
  let fired = ref false in
  let h = Simulator.at sim (Sim_time.of_ms 1) (fun () -> fired := true) in
  Simulator.cancel sim h;
  Simulator.run sim;
  check_bool "not fired" false !fired

let sim_every () =
  let sim = Simulator.create () in
  let count = ref 0 in
  ignore (Simulator.every sim (Sim_time.of_ms 10) (fun () -> incr count));
  Simulator.run_until sim (Sim_time.of_ms 100);
  check_int "ten firings" 10 !count

let sim_every_cancel_stops () =
  let sim = Simulator.create () in
  let count = ref 0 in
  let handle = ref None in
  let h =
    Simulator.every sim (Sim_time.of_ms 10) (fun () ->
        incr count;
        if !count = 3 then match !handle with Some h -> Simulator.cancel sim h | None -> ())
  in
  handle := Some h;
  Simulator.run_until sim (Sim_time.of_ms 200);
  check_int "stopped after three" 3 !count

let sim_every_start () =
  let sim = Simulator.create () in
  let first = ref None in
  ignore
    (Simulator.every sim ~start:(Sim_time.of_ms 5) (Sim_time.of_ms 50) (fun () ->
         if !first = None then first := Some (Simulator.now sim)));
  Simulator.run_until sim (Sim_time.of_ms 20);
  Alcotest.(check (option int)) "starts at 5ms" (Some 5_000) (Option.map Sim_time.to_us !first)

let sim_run_until_clock () =
  let sim = Simulator.create () in
  Simulator.run_until sim (Sim_time.of_sec 3);
  check_int "clock advanced" 3_000_000 (Sim_time.to_us (Simulator.now sim))

let sim_nested_schedule () =
  let sim = Simulator.create () in
  let log = ref [] in
  ignore
    (Simulator.at sim (Sim_time.of_ms 1) (fun () ->
         log := "outer" :: !log;
         ignore (Simulator.after sim (Sim_time.of_ms 1) (fun () -> log := "inner" :: !log))));
  Simulator.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  check_int "clock" 2_000 (Sim_time.to_us (Simulator.now sim))

let sim_zero_period_every () =
  let sim = Simulator.create () in
  Alcotest.check_raises "zero period" (Invalid_argument "Simulator.every: zero period")
    (fun () -> ignore (Simulator.every sim Sim_time.zero (fun () -> ())))

(* ------------------------------------------------------------------ *)
(* Vec *)

let vec_basic () =
  let v = Vec.create () in
  check_int "empty" 0 (Vec.length v);
  Vec.push v "a";
  Vec.push v "b";
  check_int "len" 2 (Vec.length v);
  check_string "get" "b" (Vec.get v 1);
  Vec.set v 0 "z";
  check_string "set" "z" (Vec.get v 0);
  Alcotest.(check (option string)) "last" (Some "b") (Vec.last v);
  Alcotest.(check (array string)) "to_array" [| "z"; "b" |] (Vec.to_array v);
  Vec.clear v;
  check_int "cleared" 0 (Vec.length v)

let vec_bounds () =
  let v = Vec.of_array [| 1; 2 |] in
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 2))

let vec_fold_iter () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  check_int "fold" 6 (Vec.fold_left ( + ) 0 v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  check_int "iteri count" 3 (List.length !seen)

let vec_floats () =
  let v = Vec.Floats.create () in
  Vec.Floats.push v 1.5;
  Vec.Floats.push v 2.5;
  check_float "sum" 4.0 (Vec.Floats.sum v);
  check_float "mean" 2.0 (Vec.Floats.mean v);
  check_float "get" 2.5 (Vec.Floats.get v 1);
  check_int "len" 2 (Vec.Floats.length v)

let vec_growth =
  qtest "vec preserves order across growth"
    QCheck.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Array.to_list (Vec.to_array v) = xs)

(* ------------------------------------------------------------------ *)
(* Stats *)

let stats_running () =
  let s = Stats.Running.create () in
  List.iter (Stats.Running.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.Running.count s);
  check_float "mean" 5.0 (Stats.Running.mean s);
  check_float_eps 1e-9 "variance" (32.0 /. 7.0) (Stats.Running.variance s);
  check_float "min" 2.0 (Stats.Running.min s);
  check_float "max" 9.0 (Stats.Running.max s)

let stats_running_empty () =
  let s = Stats.Running.create () in
  check_float "mean 0" 0.0 (Stats.Running.mean s);
  check_float "var 0" 0.0 (Stats.Running.variance s);
  check_bool "min nan" true (Float.is_nan (Stats.Running.min s))

let stats_merge () =
  let a = Stats.Running.create () and b = Stats.Running.create () and all = Stats.Running.create () in
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
  List.iter (Stats.Running.add a) xs;
  List.iter (Stats.Running.add b) ys;
  List.iter (Stats.Running.add all) (xs @ ys);
  let m = Stats.Running.merge a b in
  check_int "count" (Stats.Running.count all) (Stats.Running.count m);
  check_float_eps 1e-9 "mean" (Stats.Running.mean all) (Stats.Running.mean m);
  check_float_eps 1e-9 "variance" (Stats.Running.variance all) (Stats.Running.variance m)

let stats_ci95 () =
  let s = Stats.Running.create () in
  check_bool "empty: no claim" true (Stats.Running.ci95 s = infinity);
  Stats.Running.add s 1.0;
  check_bool "single sample: no claim" true (Stats.Running.ci95 s = infinity);
  List.iter (Stats.Running.add s) [ 2.0; 3.0; 4.0; 5.0 ];
  (* 1..5: mean 3, sd = sqrt(2.5); 1.96 * sd / sqrt 5 = 1.3859. *)
  check_float_eps 1e-4 "half width" 1.3859 (Stats.Running.ci95 s)

let stats_reset () =
  let s = Stats.Running.create () in
  List.iter (Stats.Running.add s) [ 5.0; 7.0; 9.0 ];
  Stats.Running.reset s;
  check_int "count 0" 0 (Stats.Running.count s);
  check_float "mean 0" 0.0 (Stats.Running.mean s);
  check_float "variance 0" 0.0 (Stats.Running.variance s);
  check_bool "min nan again" true (Float.is_nan (Stats.Running.min s));
  (* Behaves as freshly created: refilling gives the fresh statistics. *)
  List.iter (Stats.Running.add s) [ 2.0; 4.0 ];
  check_float "refilled mean" 3.0 (Stats.Running.mean s);
  check_float "refilled min" 2.0 (Stats.Running.min s)

let stats_percentiles () =
  let sorted = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Stats.Summary.percentile sorted 0.0);
  check_float "p50" 3.0 (Stats.Summary.percentile sorted 50.0);
  check_float "p100" 5.0 (Stats.Summary.percentile sorted 100.0);
  check_float "p25 interp" 2.0 (Stats.Summary.percentile sorted 25.0)

let stats_quantile_unsorted =
  qtest "quantile_of_unsorted = percentile on the sorted copy"
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range (-100.0) 100.0)) (float_range 0.0 100.0))
    (fun (samples, p) ->
      let arr = Array.of_list samples in
      let before = Array.copy arr in
      let q = Stats.Summary.quantile_of_unsorted arr p in
      let sorted = Array.copy arr in
      Array.sort Float.compare sorted;
      (* The input must be left untouched, and the result must match the
         documented percentile on sorted data. *)
      before = arr && Float.abs (q -. Stats.Summary.percentile sorted p) < 1e-9)

let stats_summary () =
  let s = Stats.Summary.of_array [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "min" 1.0 s.Stats.Summary.min;
  check_float "max" 5.0 s.Stats.Summary.max;
  check_float "p50" 3.0 s.Stats.Summary.p50;
  check_int "count" 5 s.Stats.Summary.count

let stats_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.Summary.of_array: empty array")
    (fun () -> ignore (Stats.Summary.of_array [||]))

let stats_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 2.5; 9.9; -3.0; 42.0 ];
  let counts = Stats.Histogram.counts h in
  check_int "bin0 includes underflow" 3 counts.(0);
  check_int "bin1" 1 counts.(1);
  check_int "bin4 includes overflow" 2 counts.(4);
  check_int "total" 6 (Stats.Histogram.total h);
  let lo, hi = Stats.Histogram.bin_bounds h 1 in
  check_float "bounds lo" 2.0 lo;
  check_float "bounds hi" 4.0 hi

(* ------------------------------------------------------------------ *)
(* Series *)

let series_basic () =
  let s = Series.create ~name:"x" in
  Series.add s (Sim_time.of_sec 1) 10.0;
  Series.add s (Sim_time.of_sec 2) 20.0;
  Series.add s (Sim_time.of_sec 4) 40.0;
  check_int "length" 3 (Series.length s);
  check_string "name" "x" (Series.name s);
  Alcotest.(check (option (float 1e-9))) "last" (Some 40.0) (Series.last_value s);
  check_float "mean" (70.0 /. 3.0) (Series.mean s)

let series_monotonic () =
  let s = Series.create ~name:"x" in
  Series.add s (Sim_time.of_sec 2) 1.0;
  Alcotest.check_raises "backwards" (Invalid_argument "Series.add: non-monotonic time")
    (fun () -> Series.add s (Sim_time.of_sec 1) 2.0)

let series_value_at () =
  let s = Series.create ~name:"x" in
  Series.add s (Sim_time.of_sec 1) 10.0;
  Series.add s (Sim_time.of_sec 3) 30.0;
  Alcotest.(check (option (float 1e-9))) "before first" None (Series.value_at s Sim_time.zero);
  Alcotest.(check (option (float 1e-9))) "exact" (Some 10.0) (Series.value_at s (Sim_time.of_sec 1));
  Alcotest.(check (option (float 1e-9))) "step" (Some 10.0) (Series.value_at s (Sim_time.of_sec 2));
  Alcotest.(check (option (float 1e-9))) "after last" (Some 30.0) (Series.value_at s (Sim_time.of_sec 9))

let series_mean_between () =
  let s = Series.create ~name:"x" in
  List.iteri (fun i v -> Series.add s (Sim_time.of_sec i) v) [ 0.0; 10.0; 20.0; 30.0 ];
  check_float "window" 15.0 (Series.mean_between s (Sim_time.of_sec 1) (Sim_time.of_sec 2));
  check_float "empty window" 0.0
    (Series.mean_between s (Sim_time.of_sec 10) (Sim_time.of_sec 20))

let series_map_values () =
  let s = Series.create ~name:"x" in
  Series.add s Sim_time.zero 1.0;
  Series.add s (Sim_time.of_sec 1) 2.0;
  let doubled = Series.map_values (fun v -> v *. 2.0) s in
  Alcotest.(check (array (float 1e-9))) "doubled" [| 2.0; 4.0 |] (Series.values doubled)

let frame_csv () =
  let a = Series.create ~name:"a" and b = Series.create ~name:"b" in
  Series.add a (Sim_time.of_sec 1) 1.0;
  Series.add a (Sim_time.of_sec 2) 2.0;
  Series.add b (Sim_time.of_sec 2) 20.0;
  let f = Series.Frame.create () in
  Series.Frame.add_series f a;
  Series.Frame.add_series f b;
  let csv = Series.Frame.to_csv f in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "rows" 3 (List.length lines);
  check_string "header" "time_s,a,b" (List.nth lines 0);
  check_bool "empty cell before b's first sample" true
    (String.length (List.nth lines 1) < String.length (List.nth lines 2))

(* ------------------------------------------------------------------ *)
(* Table *)

let table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  check_bool "has header" true (String.length out > 0);
  let lines = String.split_on_char '\n' (String.trim out) in
  check_int "lines" 5 (List.length lines);
  check_string "aligned row" "alpha |     1" (List.nth lines 2)

let table_arity () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "x"; "y" ])

let table_empty_columns () =
  Alcotest.check_raises "no columns" (Invalid_argument "Table.create: no columns") (fun () ->
      ignore (Table.create ~columns:[]))

let table_row_count () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  check_int "empty" 0 (Table.row_count t);
  Table.add_row t [ "1" ];
  Table.add_rule t;
  Table.add_row t [ "2" ];
  check_int "rules not counted" 2 (Table.row_count t)

(* ------------------------------------------------------------------ *)
(* Trace *)

let trace_basic () =
  let t = Trace.create () in
  Trace.record t ~time:Sim_time.zero ~source:"a" "one";
  Trace.recordf t ~time:(Sim_time.of_sec 1) ~source:"b" "two %d" 2;
  check_int "length" 2 (Trace.length t);
  check_int "dropped" 0 (Trace.dropped t);
  (match Trace.entries t with
  | [ e1; e2 ] ->
      check_string "first" "one" e1.Trace.message;
      check_string "second" "two 2" e2.Trace.message
  | _ -> Alcotest.fail "expected two entries");
  check_int "find" 1 (List.length (Trace.find t ~source:"b"))

let trace_eviction () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t ~time:(Sim_time.of_sec i) ~source:"s" (string_of_int i)
  done;
  check_int "capped" 3 (Trace.length t);
  check_int "dropped" 2 (Trace.dropped t);
  (match Trace.entries t with
  | e :: _ -> check_string "oldest kept" "3" e.Trace.message
  | [] -> Alcotest.fail "empty");
  Trace.clear t;
  check_int "cleared" 0 (Trace.length t)

let trace_capacity_boundary () =
  (* Filling to exactly capacity evicts nothing; the next record evicts
     exactly one. *)
  let cap = 4 in
  let t = Trace.create ~capacity:cap () in
  for i = 1 to cap do
    Trace.record t ~time:(Sim_time.of_sec i) ~source:"s" (string_of_int i)
  done;
  check_int "full, nothing dropped" 0 (Trace.dropped t);
  check_int "full length" cap (Trace.length t);
  Trace.record t ~time:(Sim_time.of_sec (cap + 1)) ~source:"s" "over";
  check_int "one dropped" 1 (Trace.dropped t);
  check_int "length stays at capacity" cap (Trace.length t);
  (match Trace.entries t with
  | e :: _ -> check_string "entry 1 evicted" "2" e.Trace.message
  | [] -> Alcotest.fail "empty");
  (* [dropped] keeps counting past the first eviction. *)
  for i = 1 to 10 do
    Trace.record t ~time:(Sim_time.of_sec (cap + 1 + i)) ~source:"s" "x"
  done;
  check_int "dropped accumulates" 11 (Trace.dropped t);
  (* [clear] resets the eviction counter too. *)
  Trace.clear t;
  check_int "dropped reset" 0 (Trace.dropped t)

let trace_find_after_wraparound () =
  let t = Trace.create ~capacity:4 () in
  (* 10 records, alternating sources: entries 7..10 survive. *)
  for i = 1 to 10 do
    let source = if i mod 2 = 0 then "even" else "odd" in
    Trace.record t ~time:(Sim_time.of_sec i) ~source (string_of_int i)
  done;
  check_int "dropped" 6 (Trace.dropped t);
  (match Trace.find t ~source:"even" with
  | [ e8; e10 ] ->
      check_string "surviving even entries, oldest first" "8" e8.Trace.message;
      check_string "newest even entry" "10" e10.Trace.message
  | l -> Alcotest.failf "expected [8; 10], got %d entries" (List.length l));
  (match Trace.find t ~source:"odd" with
  | [ e7; e9 ] ->
      check_string "surviving odd entries" "7" e7.Trace.message;
      check_string "newest odd entry" "9" e9.Trace.message
  | l -> Alcotest.failf "expected [7; 9], got %d entries" (List.length l));
  check_int "find misses evicted source" 0 (List.length (Trace.find t ~source:"gone"))

let trace_invalid_capacity () =
  Alcotest.check_raises "capacity" (Invalid_argument "Trace.create: capacity must be positive")
    (fun () -> ignore (Trace.create ~capacity:0 ()))

(* ------------------------------------------------------------------ *)
(* Plot *)

let plot_smoke () =
  let s = Series.create ~name:"load" in
  for i = 0 to 10 do
    Series.add s (Sim_time.of_sec i) (float_of_int (i * 10))
  done;
  let p = Plot.create ~y_min:0.0 ~y_max:100.0 ~title:"demo" () in
  Plot.add p s;
  let out = Plot.render p in
  check_bool "has title" true (String.length out > 4 && String.sub out 0 4 = "demo");
  check_bool "has marker" true (String.contains out '*')

let () =
  Alcotest.run "sim_engine"
    [
      ( "sim_time",
        [
          Alcotest.test_case "conversions" `Quick time_conversions;
          Alcotest.test_case "of_sec_f" `Quick time_of_sec_f;
          Alcotest.test_case "arithmetic" `Quick time_arithmetic;
          Alcotest.test_case "invalid" `Quick time_invalid;
          Alcotest.test_case "pp" `Quick time_pp;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick heap_basic;
          Alcotest.test_case "pop_exn empty" `Quick heap_pop_exn_empty;
          Alcotest.test_case "clear/to_list" `Quick heap_clear_to_list;
          heap_sorted_property;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick prng_deterministic;
          Alcotest.test_case "split" `Quick prng_split_independent;
          Alcotest.test_case "copy" `Quick prng_copy;
          Alcotest.test_case "derive" `Quick prng_derive_deterministic;
          prng_derive_order_independent;
          prng_float_bounds;
          prng_int_bounds;
          Alcotest.test_case "exponential mean" `Quick prng_exponential_mean;
          Alcotest.test_case "poisson mean" `Quick prng_poisson_mean;
          Alcotest.test_case "poisson large mean" `Quick prng_poisson_large_mean;
          Alcotest.test_case "gaussian moments" `Quick prng_gaussian_moments;
          prng_shuffle_permutation;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "ordering" `Quick sim_ordering;
          Alcotest.test_case "same-time fifo" `Quick sim_same_time_fifo;
          Alcotest.test_case "past raises" `Quick sim_past_raises;
          Alcotest.test_case "cancel" `Quick sim_cancel;
          Alcotest.test_case "every" `Quick sim_every;
          Alcotest.test_case "every cancel" `Quick sim_every_cancel_stops;
          Alcotest.test_case "every start" `Quick sim_every_start;
          Alcotest.test_case "run_until clock" `Quick sim_run_until_clock;
          Alcotest.test_case "nested" `Quick sim_nested_schedule;
          Alcotest.test_case "zero period" `Quick sim_zero_period_every;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick vec_basic;
          Alcotest.test_case "bounds" `Quick vec_bounds;
          Alcotest.test_case "fold/iter" `Quick vec_fold_iter;
          Alcotest.test_case "floats" `Quick vec_floats;
          vec_growth;
        ] );
      ( "stats",
        [
          Alcotest.test_case "running" `Quick stats_running;
          Alcotest.test_case "running empty" `Quick stats_running_empty;
          Alcotest.test_case "merge" `Quick stats_merge;
          Alcotest.test_case "ci95" `Quick stats_ci95;
          Alcotest.test_case "reset" `Quick stats_reset;
          Alcotest.test_case "percentiles" `Quick stats_percentiles;
          stats_quantile_unsorted;
          Alcotest.test_case "summary" `Quick stats_summary;
          Alcotest.test_case "summary empty" `Quick stats_summary_empty;
          Alcotest.test_case "histogram" `Quick stats_histogram;
        ] );
      ( "series",
        [
          Alcotest.test_case "basic" `Quick series_basic;
          Alcotest.test_case "monotonic" `Quick series_monotonic;
          Alcotest.test_case "value_at" `Quick series_value_at;
          Alcotest.test_case "mean_between" `Quick series_mean_between;
          Alcotest.test_case "map_values" `Quick series_map_values;
          Alcotest.test_case "frame csv" `Quick frame_csv;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick table_render;
          Alcotest.test_case "arity" `Quick table_arity;
          Alcotest.test_case "empty columns" `Quick table_empty_columns;
          Alcotest.test_case "row count" `Quick table_row_count;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basic" `Quick trace_basic;
          Alcotest.test_case "eviction" `Quick trace_eviction;
          Alcotest.test_case "capacity boundary" `Quick trace_capacity_boundary;
          Alcotest.test_case "find after wraparound" `Quick trace_find_after_wraparound;
          Alcotest.test_case "invalid capacity" `Quick trace_invalid_capacity;
        ] );
      ("plot", [ Alcotest.test_case "smoke" `Quick plot_smoke ]);
    ]

(* Tests for the consolidation layer: VM descriptors, bin packing and the
   epoch-based cluster manager. *)

module Vm = Cluster.Vm
module Placement = Cluster.Placement
module Manager = Cluster.Manager
module Workload = Workloads.Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let sec = Sim_time.of_sec

(* ------------------------------------------------------------------ *)
(* Vm *)

let vm_basics () =
  let vm = Vm.create ~name:"web" ~credit_pct:25.0 ~memory_mb:2048 (Workload.idle ()) in
  Alcotest.(check string) "name" "web" (Vm.name vm);
  check_int "memory" 2048 (Vm.memory_mb vm);
  Alcotest.(check (float 1e-9)) "credit" 25.0 (Vm.credit_pct vm);
  Alcotest.check_raises "memory" (Invalid_argument "Vm.create: memory must be positive")
    (fun () -> ignore (Vm.create ~name:"x" ~credit_pct:10.0 ~memory_mb:0 (Workload.idle ())))

(* ------------------------------------------------------------------ *)
(* Placement *)

let item id memory_mb cpu_pct = { Placement.id; memory_mb; cpu_pct }

let pack_prefers_low_nodes () =
  let items = [ item 0 1000 10.0; item 1 1000 10.0 ] in
  match
    Placement.pack Placement.First_fit ~node_count:3 ~memory_capacity_mb:4096
      ~cpu_capacity_pct:90.0 items
  with
  | Some assignment ->
      Alcotest.(check (array int)) "both on node 0" [| 0; 0 |] assignment;
      check_int "one node used" 1 (Placement.nodes_used assignment)
  | None -> Alcotest.fail "expected a packing"

let pack_memory_constraint () =
  let items = [ item 0 3000 10.0; item 1 3000 10.0 ] in
  let assignment =
    Placement.pack_exn Placement.First_fit ~node_count:2 ~memory_capacity_mb:4096
      ~cpu_capacity_pct:90.0 items
  in
  check_int "memory forces two nodes" 2 (Placement.nodes_used assignment)

let pack_cpu_constraint () =
  let items = [ item 0 100 60.0; item 1 100 60.0 ] in
  let assignment =
    Placement.pack_exn Placement.First_fit ~node_count:2 ~memory_capacity_mb:4096
      ~cpu_capacity_pct:90.0 items
  in
  check_int "cpu budget forces two nodes" 2 (Placement.nodes_used assignment)

let pack_infeasible () =
  let items = [ item 0 3000 10.0; item 1 3000 10.0; item 2 3000 10.0 ] in
  check_bool "no fit" true
    (Placement.pack Placement.First_fit ~node_count:1 ~memory_capacity_mb:4096
       ~cpu_capacity_pct:90.0 items
    = None)

let pack_oversized_item () =
  Alcotest.check_raises "too big"
    (Invalid_argument "Placement.pack: item exceeds a single node's capacity") (fun () ->
      ignore
        (Placement.pack Placement.First_fit ~node_count:1 ~memory_capacity_mb:1024
           ~cpu_capacity_pct:90.0
           [ item 0 2048 10.0 ]))

let ffd_beats_ff_on_adversarial_input () =
  (* Classic: small items first make plain first-fit waste bins. *)
  let items = [ item 0 600 1.0; item 1 600 1.0; item 2 700 1.0; item 3 700 1.0 ] in
  let ff =
    Placement.pack_exn Placement.First_fit ~node_count:4 ~memory_capacity_mb:1300
      ~cpu_capacity_pct:400.0 items
  in
  let ffd =
    Placement.pack_exn Placement.First_fit_decreasing ~node_count:4 ~memory_capacity_mb:1300
      ~cpu_capacity_pct:400.0 items
  in
  check_bool "ffd at least as tight" true
    (Placement.nodes_used ffd <= Placement.nodes_used ff)

let best_fit_fills_tightest () =
  (* The 200 item best-fits next to the 700 one (residual 100) rather than
     opening a fresh node (residual 800); the 300 then has to open one. *)
  let items = [ item 0 700 1.0; item 1 200 1.0; item 2 300 1.0 ] in
  let assignment =
    Placement.pack_exn Placement.Best_fit ~node_count:3 ~memory_capacity_mb:1000
      ~cpu_capacity_pct:400.0 items
  in
  check_int "200 joins 700" assignment.(0) assignment.(1);
  check_bool "300 opens a new node" true (assignment.(2) <> assignment.(0))

let pack_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"packing never violates capacities"
       QCheck.(list_of_size (Gen.int_range 0 12) (pair (int_range 1 2000) (float_range 1.0 40.0)))
       (fun specs ->
         let items = List.mapi (fun i (m, c) -> item i m c) specs in
         match
           Placement.pack Placement.First_fit_decreasing ~node_count:8
             ~memory_capacity_mb:4096 ~cpu_capacity_pct:90.0 items
         with
         | None -> true (* infeasible is a legal answer *)
         | Some assignment ->
             let mem = Array.make 8 0 and cpu = Array.make 8 0.0 in
             List.iteri
               (fun pos (m, c) ->
                 let node = assignment.(pos) in
                 mem.(node) <- mem.(node) + m;
                 cpu.(node) <- cpu.(node) +. c)
               specs;
             Array.for_all (fun m -> m <= 4096) mem
             && Array.for_all (fun c -> c <= 90.0 +. 1e-6) cpu))

(* ------------------------------------------------------------------ *)
(* Manager *)

let busy_vm name credit memory_mb =
  let app =
    Workloads.Web_app.create
      ~rate_schedule:(Workloads.Phases.constant ~rate:(credit /. 100.0))
      ()
  in
  Vm.create ~name ~credit_pct:credit ~memory_mb (Workloads.Web_app.workload app)

let idle_vm name credit memory_mb =
  Vm.create ~name ~credit_pct:credit ~memory_mb (Workload.idle ())

let manager_initial_placement () =
  let sim = Simulator.create () in
  let vms = [ busy_vm "a" 30.0 2048; busy_vm "b" 30.0 2048; idle_vm "c" 20.0 1024 ] in
  let manager = Manager.create ~sim ~nodes:3 vms in
  check_int "three nodes fleet" 3 (Manager.nodes manager);
  check_int "one active node suffices" 1 (Manager.active_nodes manager);
  check_int "no migrations yet" 0 (Manager.migrations manager);
  List.iter (fun vm -> check_int (Vm.name vm) 0 (Manager.node_of_vm manager vm)) vms

let manager_serves_demand () =
  let sim = Simulator.create () in
  let app =
    Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:0.3) ()
  in
  let vm = Vm.create ~name:"web" ~credit_pct:40.0 ~memory_mb:1024 (Workloads.Web_app.workload app) in
  let manager = Manager.create ~sim ~nodes:1 [ vm ] in
  Manager.run_for manager (sec 60);
  (* 0.3 abs/s for 60s = 18 abs work; all served. *)
  check_bool "served" true (Workloads.Web_app.completed_work app > 17.0)

let manager_rebalance_consolidates () =
  let sim = Simulator.create () in
  (* Two nodes' worth of credits, but only one VM is actually busy: after a
     rebalance the idle VMs' measured demand lets everything fit on one
     node. *)
  let vms =
    [ busy_vm "busy" 30.0 2048; idle_vm "i1" 50.0 1024; idle_vm "i2" 50.0 1024 ]
  in
  let manager = Manager.create ~sim ~nodes:2 vms in
  check_int "initially two nodes (credits)" 2 (Manager.active_nodes manager);
  Manager.run_for manager (sec 30);
  Manager.rebalance manager;
  check_int "consolidated to one node" 1 (Manager.active_nodes manager);
  check_bool "migration counted" true (Manager.migrations manager >= 1);
  Manager.run_for manager (sec 10)

let manager_energy_counts_standby () =
  let sim = Simulator.create () in
  let vms = [ idle_vm "i" 10.0 1024 ] in
  let manager = Manager.create ~standby_watts:5.0 ~sim ~nodes:3 vms in
  Manager.run_for manager (sec 100);
  (* Two idle nodes at 5 W for 100 s = 1000 J, plus the active node's
     ~45 W idle floor. *)
  let joules = Manager.energy_joules manager in
  check_bool "includes standby" true (joules > 1000.0);
  check_bool "includes active idle floor" true (joules > 4500.0);
  check_bool "not wildly off" true (joules < 6500.0)

let manager_workload_survives_migration () =
  let sim = Simulator.create () in
  let app =
    Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:0.2) ()
  in
  let mover = Vm.create ~name:"mover" ~credit_pct:30.0 ~memory_mb:1024 (Workloads.Web_app.workload app) in
  let anchor = busy_vm "anchor" 70.0 2048 in
  let manager = Manager.create ~sim ~nodes:2 [ anchor; mover ] in
  Manager.run_for manager (sec 20);
  let before = Workloads.Web_app.completed_work app in
  Manager.rebalance manager;
  Manager.run_for manager (sec 20);
  let after = Workloads.Web_app.completed_work app in
  check_bool "queue kept serving after the move" true (after -. before > 3.0)

let () =
  Alcotest.run "cluster"
    [
      ("vm", [ Alcotest.test_case "basics" `Quick vm_basics ]);
      ( "placement",
        [
          Alcotest.test_case "prefers low nodes" `Quick pack_prefers_low_nodes;
          Alcotest.test_case "memory constraint" `Quick pack_memory_constraint;
          Alcotest.test_case "cpu constraint" `Quick pack_cpu_constraint;
          Alcotest.test_case "infeasible" `Quick pack_infeasible;
          Alcotest.test_case "oversized item" `Quick pack_oversized_item;
          Alcotest.test_case "ffd adversarial" `Quick ffd_beats_ff_on_adversarial_input;
          Alcotest.test_case "best fit" `Quick best_fit_fills_tightest;
          pack_property;
        ] );
      ( "manager",
        [
          Alcotest.test_case "initial placement" `Quick manager_initial_placement;
          Alcotest.test_case "serves demand" `Quick manager_serves_demand;
          Alcotest.test_case "rebalance consolidates" `Quick manager_rebalance_consolidates;
          Alcotest.test_case "energy counts standby" `Quick manager_energy_counts_standby;
          Alcotest.test_case "workload survives migration" `Quick manager_workload_survives_migration;
        ] );
    ]

(* Randomised whole-system invariants ("failure injection" style): random
   domain mixes, schedulers, governors and workloads are simulated and the
   accounting invariants that every component relies on are checked.

   Invariants:
   - conservation: the host's busy time never exceeds wall time, and equals
     the sum of the domains' CPU times;
   - cap safety: under the fix-credit scheduler no capped domain exceeds
     its effective credit (plus one accounting period of slack);
   - PAS guarantee: a domain with saturating demand receives at least its
     credit in absolute capacity (minus convergence slack), and never
     multiples of it;
   - energy sanity: within [idle, max] power bounds at all times. *)

module Workload = Workloads.Workload
module Domain = Hypervisor.Domain
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

type sched_kind = KCredit | KSedf | KCredit2 | KPas
type gov_kind = GNone | GPerf | GOndemand | GStable | GConservative | GSchedutil
type wl_kind = WIdle | WBusy | WWeb of float | WPi of float | WMarkov

let gen_domain_spec =
  QCheck.Gen.(
    let* credit = float_range 1.0 40.0 in
    let* wl =
      frequency
        [
          (1, return WIdle);
          (2, return WBusy);
          (4, map (fun r -> WWeb r) (float_range 0.01 0.8));
          (2, map (fun w -> WPi w) (float_range 0.5 5.0));
          (1, return WMarkov);
        ]
    in
    return (credit, wl))

let gen_config =
  QCheck.Gen.(
    let* n = int_range 1 5 in
    let* doms = list_size (return n) gen_domain_spec in
    let* sched = oneofl [ KCredit; KSedf; KCredit2; KPas ] in
    let* gov = oneofl [ GNone; GPerf; GOndemand; GStable; GConservative; GSchedutil ] in
    let* seed = int_range 0 10_000 in
    return (doms, sched, gov, seed))

let arbitrary_config =
  QCheck.make gen_config ~print:(fun (doms, _, _, seed) ->
      Printf.sprintf "%d domains, seed %d" (List.length doms) seed)

let build_workload seed = function
  | WIdle -> Workload.idle ()
  | WBusy -> Workload.busy_loop ()
  | WWeb rate ->
      Workloads.Web_app.workload
        (Workloads.Web_app.create
           ~arrival:(Workloads.Web_app.Poisson (Prng.create ~seed))
           ~timeout:(Sim_time.of_sec 5)
           ~rate_schedule:(Workloads.Phases.constant ~rate) ())
  | WPi work -> Workloads.Pi_app.workload (Workloads.Pi_app.create ~work ())
  | WMarkov ->
      Workloads.Markov_load.workload
        (Workloads.Markov_load.create ~seed ~on_rate:0.5 ~off_rate:0.01 ~mean_on:2.0
           ~mean_off:2.0 ())
        ~request_work:0.005

let run_random (doms, sched_kind, gov_kind, seed) =
  let duration_s = 20 in
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let domains =
    List.mapi
      (fun i (credit, wl) ->
        Domain.create
          ~name:(Printf.sprintf "vm%d" i)
          ~credit_pct:credit
          (build_workload (seed + i) wl))
      doms
  in
  let scheduler =
    match sched_kind with
    | KCredit -> Sched_credit.create domains
    | KSedf -> Sched_sedf.create domains
    | KCredit2 -> Sched_credit2.create domains
    | KPas -> Pas.Pas_sched.scheduler (Pas.Pas_sched.create ~processor domains)
  in
  let governor =
    match (gov_kind, sched_kind) with
    | _, KPas -> None (* PAS owns the frequency *)
    | GNone, _ -> None
    | GPerf, _ -> Some (Governors.Governor.performance processor)
    | GOndemand, _ -> Some (Governors.Ondemand.create processor)
    | GStable, _ -> Some (Governors.Stable_ondemand.create processor)
    | GConservative, _ -> Some (Governors.Conservative.create processor)
    | GSchedutil, _ -> Some (Governors.Schedutil.create processor)
  in
  let host = Host.create ~sim ~processor ~scheduler ?governor () in
  Host.run_for host (Sim_time.of_sec duration_s);
  (host, domains, float_of_int duration_s)

let conservation =
  qtest "busy time = sum of domain cpu times <= wall time" arbitrary_config (fun config ->
      let host, domains, duration = run_random config in
      let busy = Sim_time.to_sec (Host.total_busy host) in
      let sum =
        List.fold_left (fun acc d -> acc +. Sim_time.to_sec (Domain.cpu_time d)) 0.0 domains
      in
      Float.abs (busy -. sum) < 1e-6 && busy <= duration +. 1e-6)

let cap_safety =
  qtest "fix-credit caps are never exceeded" arbitrary_config
    (fun (doms, _, gov, seed) ->
      let host, domains, duration = run_random (doms, KCredit, gov, seed) in
      ignore host;
      List.for_all
        (fun d ->
          Domain.uncapped d
          || Sim_time.to_sec (Domain.cpu_time d)
             <= (Domain.initial_credit d /. 100.0 *. duration) +. 0.05)
        domains)

let energy_bounds =
  qtest "mean power within the package's envelope" arbitrary_config (fun config ->
      let host, _, _ = run_random config in
      let w = Host.mean_watts host in
      w >= 30.0 -. 1e-6 && w <= 95.0 +. 0.5)

let pas_guarantee =
  qtest "PAS: a saturating domain receives its absolute credit"
    QCheck.(make Gen.(pair (float_range 5.0 30.0) (int_range 0 1000)))
    (fun (credit, seed) ->
      ignore seed;
      let sim = Simulator.create () in
      let processor = Processor.create Cpu_model.Arch.optiplex_755 in
      let hog =
        Domain.create ~name:"hog" ~credit_pct:credit (Workload.busy_loop ())
      in
      let pas = Pas.Pas_sched.create ~processor [ hog ] in
      let host = Host.create ~sim ~processor ~scheduler:(Pas.Pas_sched.scheduler pas) () in
      Host.run_for host (Sim_time.of_sec 30);
      let abs = Host.series_domain_absolute_load host hog in
      let delivered = Series.mean_between abs (Sim_time.of_sec 10) (Sim_time.of_sec 30) in
      delivered >= credit -. 1.0 && delivered <= credit +. 1.0)

(* Random whole-system runs with the sanitizer fatal: every instrumented
   invariant (credit conservation, table-member frequency, [0,1] busy
   fractions, monotonic clock, finite sinks) is evaluated at every window
   of every run — a single violation raises and fails the property.  At
   100 ms windows a 20 s run is ~200 evaluations, so a handful of cases
   comfortably exceeds a thousand sanitized steps. *)
let sanitizer_clean =
  qtest ~count:8 "sanitizer (fail-fast): random runs violate no invariant"
    arbitrary_config (fun config ->
      Analysis.clear ();
      Analysis.enable ~policy:Analysis.Fail_fast ();
      Fun.protect ~finally:(fun () ->
          Analysis.disable ();
          Analysis.clear ())
        (fun () ->
          let host, _, _ = run_random config in
          ignore host;
          Analysis.violations () = []))

let () =
  Alcotest.run "fuzz"
    [
      ( "invariants",
        [ conservation; cap_safety; energy_bounds; pas_guarantee; sanitizer_clean ] );
    ]

(* Tests for workloads: the abstract interface, pi-app, web-app (httperf
   model) and the phase-schedule builders. *)

module Workload = Workloads.Workload
module Pi_app = Workloads.Pi_app
module Web_app = Workloads.Web_app
module Phases = Workloads.Phases

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let ms = Sim_time.of_ms
let sec = Sim_time.of_sec

(* ------------------------------------------------------------------ *)
(* Workload interface *)

let wl_idle () =
  let w = Workload.idle () in
  check_bool "never runnable" false (Workload.has_work w);
  check_int "consumes nothing" 0
    (Sim_time.to_us (Workload.execute w ~now:Sim_time.zero ~cpu_time:(ms 5) ~speed:1.0))

let wl_busy_loop () =
  let w = Workload.busy_loop () in
  check_bool "always runnable" true (Workload.has_work w);
  check_int "consumes everything" 5_000
    (Sim_time.to_us (Workload.execute w ~now:Sim_time.zero ~cpu_time:(ms 5) ~speed:0.5))

let wl_overconsume_detected () =
  let w =
    Workload.make ~name:"evil"
      ~has_work:(fun () -> true)
      ~execute:(fun ~now:_ ~cpu_time ~speed:_ -> Sim_time.add cpu_time (Sim_time.of_us 1))
      ()
  in
  Alcotest.check_raises "overconsumption"
    (Invalid_argument "Workload.execute: evil consumed more time than offered") (fun () ->
      ignore (Workload.execute w ~now:Sim_time.zero ~cpu_time:(ms 1) ~speed:1.0))

let wl_bad_speed () =
  let w = Workload.busy_loop () in
  Alcotest.check_raises "speed" (Invalid_argument "Workload.execute: speed must be positive")
    (fun () -> ignore (Workload.execute w ~now:Sim_time.zero ~cpu_time:(ms 1) ~speed:0.0))

(* ------------------------------------------------------------------ *)
(* Pi_app *)

(* Drive a pi-app by hand: advance and execute in fixed ticks at the given
   speed until it finishes or [limit] elapses; returns elapsed seconds. *)
let drive_pi pi ~speed ~limit =
  let w = Pi_app.workload pi in
  let tick = ms 1 in
  let rec loop now =
    if Pi_app.finished pi then Sim_time.to_sec now
    else if Sim_time.compare now limit > 0 then Sim_time.to_sec now
    else begin
      Workload.advance w ~now ~dt:tick;
      if Workload.has_work w then ignore (Workload.execute w ~now ~cpu_time:tick ~speed);
      loop (Sim_time.add now tick)
    end
  in
  loop Sim_time.zero

let pi_completes_at_full_speed () =
  let pi = Pi_app.create ~work:0.5 () in
  let elapsed = drive_pi pi ~speed:1.0 ~limit:(sec 2) in
  check_bool "finished" true (Pi_app.finished pi);
  check_float_eps 0.01 "took ~work seconds" 0.5 elapsed;
  match Pi_app.execution_time pi with
  | Some t -> check_float_eps 0.01 "execution_time" 0.5 (Sim_time.to_sec t)
  | None -> Alcotest.fail "no execution time"

let pi_scales_with_speed () =
  let pi = Pi_app.create ~work:0.5 () in
  let elapsed = drive_pi pi ~speed:0.5 ~limit:(sec 3) in
  check_float_eps 0.01 "twice as long at half speed" 1.0 elapsed

let pi_duty_cycle_limits () =
  let pi = Pi_app.create ~duty_cycle:0.25 ~work:0.25 () in
  let elapsed = drive_pi pi ~speed:1.0 ~limit:(sec 5) in
  (* 0.25 work at 25% duty: needs ~1s of wall time. *)
  check_float_eps 0.05 "duty-limited" 1.0 elapsed

let pi_tracking () =
  let pi = Pi_app.create ~work:1.0 () in
  check_float "total" 1.0 (Pi_app.total_work pi);
  check_float "remaining" 1.0 (Pi_app.remaining_work pi);
  check_bool "not started" true (Pi_app.start_time pi = None);
  check_bool "no exec time yet" true (Pi_app.execution_time pi = None);
  ignore (drive_pi pi ~speed:1.0 ~limit:(sec 3));
  check_float "drained" 0.0 (Pi_app.remaining_work pi);
  Pi_app.reset pi;
  check_float "reset restores work" 1.0 (Pi_app.remaining_work pi);
  check_bool "reset clears times" true (Pi_app.start_time pi = None)

let pi_invalid () =
  Alcotest.check_raises "work" (Invalid_argument "Pi_app.create: work must be positive")
    (fun () -> ignore (Pi_app.create ~work:0.0 ()));
  Alcotest.check_raises "duty" (Invalid_argument "Pi_app.create: duty_cycle must be in (0, 1]")
    (fun () -> ignore (Pi_app.create ~duty_cycle:1.5 ~work:1.0 ()))

let pi_tiny_residue_finishes =
  qtest "pi-app always finishes, even with awkward work amounts"
    QCheck.(float_range 0.0001 0.01)
    (fun work ->
      let pi = Pi_app.create ~work () in
      ignore (drive_pi pi ~speed:0.73 ~limit:(sec 5));
      Pi_app.finished pi)

(* ------------------------------------------------------------------ *)
(* Web_app *)

let drive_web app ~speed ~ticks ~serve =
  let w = Web_app.workload app in
  let tick = ms 1 in
  let now = ref Sim_time.zero in
  for _ = 1 to ticks do
    Workload.advance w ~now:!now ~dt:tick;
    if serve && Workload.has_work w then
      ignore (Workload.execute w ~now:!now ~cpu_time:tick ~speed);
    now := Sim_time.add !now tick
  done

let web_deterministic_arrivals () =
  let app = Web_app.create ~request_work:0.005 ~rate_schedule:(Phases.constant ~rate:0.1) () in
  drive_web app ~speed:1.0 ~ticks:1000 ~serve:false;
  (* 0.1 work/s for 1 s = 0.1 work = 20 requests of 5 ms. *)
  check_int "injected" 20 (Web_app.injected_requests app);
  check_float_eps 1e-6 "injected work" 0.1 (Web_app.injected_work app);
  check_int "queued" 20 (Web_app.queue_length app)

let web_serves_fifo () =
  let app = Web_app.create ~request_work:0.005 ~rate_schedule:(Phases.constant ~rate:0.1) () in
  drive_web app ~speed:1.0 ~ticks:2000 ~serve:true;
  check_bool "served most" true (Web_app.completed_requests app >= 35);
  check_bool "queue small" true (Web_app.queue_length app <= 2);
  check_float_eps 1e-6 "completed work tracks"
    (float_of_int (Web_app.completed_requests app) *. 0.005)
    (Web_app.completed_work app)

let web_response_times () =
  let app = Web_app.create ~request_work:0.005 ~rate_schedule:(Phases.constant ~rate:0.1) () in
  drive_web app ~speed:1.0 ~ticks:2000 ~serve:true;
  let stats = Web_app.response_times app in
  check_bool "responses recorded" true (Stats.Running.count stats > 0);
  check_bool "responses small under light load" true (Stats.Running.mean stats < 0.5)

let web_overload_queues () =
  let app = Web_app.create ~request_work:0.005 ~rate_schedule:(Phases.constant ~rate:2.0) () in
  drive_web app ~speed:1.0 ~ticks:1000 ~serve:true;
  check_bool "queue grows under overload" true (Web_app.queue_length app > 50)

let web_timeout_expires () =
  let app =
    Web_app.create ~request_work:0.005 ~timeout:(ms 100)
      ~rate_schedule:[ (Sim_time.zero, 0.5); (ms 500, 0.0) ]
      ()
  in
  (* Inject without serving: after the schedule goes quiet, everything
     queued times out. *)
  drive_web app ~speed:1.0 ~ticks:1000 ~serve:false;
  check_int "all expired" 0 (Web_app.queue_length app);
  check_bool "counted" true (Web_app.timed_out_requests app > 0)

let web_rate_schedule () =
  let app =
    Web_app.create
      ~rate_schedule:[ (Sim_time.zero, 0.0); (sec 1, 0.3); (sec 2, 0.0) ]
      ()
  in
  check_float "before" 0.0 (Web_app.current_rate app ~now:(ms 500));
  check_float "during" 0.3 (Web_app.current_rate app ~now:(ms 1500));
  check_float "after" 0.0 (Web_app.current_rate app ~now:(sec 3))

let web_poisson_mean () =
  let rng = Prng.create ~seed:5 in
  let app =
    Web_app.create ~request_work:0.005 ~arrival:(Web_app.Poisson rng)
      ~rate_schedule:(Phases.constant ~rate:0.1) ()
  in
  drive_web app ~speed:1.0 ~ticks:60_000 ~serve:false;
  (* Expected: 0.1 * 60 / 0.005 = 1200 requests. *)
  let n = float_of_int (Web_app.injected_requests app) in
  check_bool "poisson mean in range" true (n > 1080.0 && n < 1320.0)

let web_invalid () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Web_app.create: schedule must be sorted strictly by time") (fun () ->
      ignore (Web_app.create ~rate_schedule:[ (sec 2, 0.1); (sec 1, 0.2) ] ()));
  Alcotest.check_raises "negative rate" (Invalid_argument "Web_app.create: negative rate")
    (fun () -> ignore (Web_app.create ~rate_schedule:[ (sec 1, -0.5) ] ()));
  Alcotest.check_raises "request work"
    (Invalid_argument "Web_app.create: request_work must be positive") (fun () ->
      ignore (Web_app.create ~request_work:0.0 ~rate_schedule:[] ()));
  Alcotest.check_raises "timeout" (Invalid_argument "Web_app.create: zero timeout") (fun () ->
      ignore (Web_app.create ~timeout:Sim_time.zero ~rate_schedule:[] ()))

let web_conservation =
  qtest "injected work = completed + queued, up to one in-service request"
    QCheck.(float_range 0.05 1.5)
    (fun rate ->
      let app = Web_app.create ~rate_schedule:(Phases.constant ~rate) () in
      drive_web app ~speed:1.0 ~ticks:2_000 ~serve:true;
      let injected = Web_app.injected_work app in
      let accounted = Web_app.completed_work app +. Web_app.queued_work app in
      (* The head request may be partially served: its progress is in
         neither bucket, so the gap is bounded by one request's work. *)
      injected -. accounted >= -1e-9 && injected -. accounted <= 0.005 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Closed-loop clients *)

let closed_loop_invalid () =
  Alcotest.check_raises "clients" (Invalid_argument "Closed_loop.create: clients must be positive")
    (fun () -> ignore (Workloads.Closed_loop.create ~clients:0 ~think_time:1.0 ~request_work:0.01 ()));
  Alcotest.check_raises "think"
    (Invalid_argument "Closed_loop.create: think_time must be non-negative") (fun () ->
      ignore (Workloads.Closed_loop.create ~clients:1 ~think_time:(-1.0) ~request_work:0.01 ()))

let closed_loop_offered () =
  let cl = Workloads.Closed_loop.create ~clients:4 ~think_time:2.0 ~request_work:0.01 () in
  check_float_eps 1e-9 "offered load" 0.02 (Workloads.Closed_loop.offered_load cl);
  (* Zero think time is legal (saturated clients) and offers unbounded load. *)
  let sat = Workloads.Closed_loop.create ~clients:2 ~think_time:0.0 ~request_work:0.01 () in
  check_bool "saturated offered load" true
    (Workloads.Closed_loop.offered_load sat = infinity)

(* Drive a closed loop by hand at 1 ms ticks and full speed. *)
let drive_closed cl ~ticks =
  let w = Workloads.Closed_loop.workload cl in
  let tick = ms 1 in
  let now = ref Sim_time.zero in
  for _ = 1 to ticks do
    Workload.advance w ~now:!now ~dt:tick;
    if Workload.has_work w then ignore (Workload.execute w ~now:!now ~cpu_time:tick ~speed:1.0);
    now := Sim_time.add !now tick
  done

let closed_loop_saturated () =
  (* think_time = 0: every completion resubmits instantly, so the server
     never idles and throughput is exactly 1 / request_work. *)
  let cl = Workloads.Closed_loop.create ~clients:3 ~think_time:0.0 ~request_work:0.01 () in
  drive_closed cl ~ticks:10_000;
  let served = Workloads.Closed_loop.completed_requests cl in
  (* 10 s of back-to-back 10 ms requests: 1000, minus boundary effects. *)
  check_bool "server never idles" true (served >= 995 && served <= 1000)

let closed_loop_matches_repairman () =
  (* Measured mean response vs the M/M/1//N machine-repairman closed form
     (lib/validate oracle): N = 3, T = 0.3 s, S = 0.03 s gives
     R = 35.9 ms.  300 s of 1 ms ticks ~ 2600 requests; the tolerance is
     15% relative + 2 ms for tick quantisation (arrivals and completions
     are only visible at tick boundaries). *)
  let clients = 3 and think_time = 0.3 and service_time = 0.03 in
  let cl =
    Workloads.Closed_loop.create ~seed:97 ~clients ~think_time ~request_work:service_time ()
  in
  drive_closed cl ~ticks:300_000;
  let oracle = Validate.Oracle.machine_repairman ~clients ~think_time ~service_time in
  let measured = Stats.Running.mean (Workloads.Closed_loop.response_times cl) in
  let slack = (0.15 *. oracle.Validate.Oracle.response) +. 0.002 in
  check_bool
    (Printf.sprintf "measured %.4f vs analytic %.4f" measured oracle.Validate.Oracle.response)
    true
    (Float.abs (measured -. oracle.Validate.Oracle.response) <= slack);
  (* Throughput must match too (Little's law on the same model). *)
  let x_measured = float_of_int (Workloads.Closed_loop.completed_requests cl) /. 300.0 in
  check_bool "throughput near analytic" true
    (Float.abs (x_measured -. oracle.Validate.Oracle.throughput)
    <= 0.1 *. oracle.Validate.Oracle.throughput)

let closed_loop_self_throttles () =
  let cl = Workloads.Closed_loop.create ~clients:2 ~think_time:0.5 ~request_work:0.005 () in
  let w = Workloads.Closed_loop.workload cl in
  let tick = ms 1 in
  let now = ref Sim_time.zero in
  while Sim_time.to_sec !now < 60.0 do
    Workload.advance w ~now:!now ~dt:tick;
    if Workload.has_work w then ignore (Workload.execute w ~now:!now ~cpu_time:tick ~speed:1.0);
    now := Sim_time.add !now tick
  done;
  let served = Workloads.Closed_loop.completed_requests cl in
  (* 2 clients cycling every ~0.505 s over 60 s: ~230 requests. *)
  check_bool "served a plausible count" true (served > 150 && served < 300);
  let stats = Workloads.Closed_loop.response_times cl in
  (* With a dedicated CPU, response ~ service time (5 ms) + tick quantisation. *)
  check_bool "fast responses" true (Stats.Running.mean stats < 0.01)

(* ------------------------------------------------------------------ *)
(* Markov-modulated load *)

let markov_starts_off () =
  let m = Workloads.Markov_load.create ~on_rate:0.5 ~off_rate:0.0 ~mean_on:10.0 ~mean_off:10.0 () in
  check_bool "starts off" true (Workloads.Markov_load.state_at m ~now:Sim_time.zero = `Off)

let markov_invalid () =
  Alcotest.check_raises "rate" (Invalid_argument "Markov_load.create: negative rate") (fun () ->
      ignore
        (Workloads.Markov_load.create ~on_rate:(-1.0) ~off_rate:0.0 ~mean_on:1.0 ~mean_off:1.0 ()));
  Alcotest.check_raises "sojourn"
    (Invalid_argument "Markov_load.create: sojourn means must be positive") (fun () ->
      ignore (Workloads.Markov_load.create ~on_rate:1.0 ~off_rate:0.0 ~mean_on:0.0 ~mean_off:1.0 ()))

let markov_flips_states () =
  let m =
    Workloads.Markov_load.create ~seed:3 ~on_rate:0.5 ~off_rate:0.0 ~mean_on:2.0 ~mean_off:2.0 ()
  in
  ignore (Workloads.Markov_load.state_at m ~now:(sec 200));
  check_bool "many flips over 100 mean sojourns" true (Workloads.Markov_load.transitions m > 20)

let markov_long_run_rate () =
  (* With equal sojourn means, the long-run injected rate tends to the
     average of the two state rates. *)
  let m =
    Workloads.Markov_load.create ~seed:5 ~on_rate:0.4 ~off_rate:0.0 ~mean_on:5.0 ~mean_off:5.0 ()
  in
  let w = Workloads.Markov_load.workload m ~request_work:0.005 in
  let tick = ms 10 in
  let horizon = 4_000.0 in
  let now = ref Sim_time.zero in
  while Sim_time.to_sec !now < horizon do
    Workload.advance w ~now:!now ~dt:tick;
    if Workload.has_work w then ignore (Workload.execute w ~now:!now ~cpu_time:tick ~speed:1.0);
    now := Sim_time.add !now tick
  done;
  let mean_rate = Workloads.Markov_load.injected_work m /. horizon in
  check_bool "long-run rate near 0.2"
    true
    (mean_rate > 0.15 && mean_rate < 0.25);
  (* Everything injected was served (capacity far exceeds demand). *)
  check_float_eps 0.01 "conservation"
    (Workloads.Markov_load.injected_work m)
    (Workloads.Markov_load.completed_work m +. Workloads.Markov_load.queued_work m)

(* ------------------------------------------------------------------ *)
(* Phases *)

let phases_exact_rate () =
  check_float "20%" 0.2 (Phases.exact_rate ~credit_pct:20.0);
  Alcotest.check_raises "range" (Invalid_argument "Phases.exact_rate: credit out of [0, 100]")
    (fun () -> ignore (Phases.exact_rate ~credit_pct:120.0))

let phases_thrashing () =
  check_float "default x3" 0.6 (Phases.thrashing_rate ~credit_pct:20.0 ());
  check_float "custom" 1.0 (Phases.thrashing_rate ~factor:5.0 ~credit_pct:20.0 ());
  Alcotest.check_raises "factor" (Invalid_argument "Phases.thrashing_rate: factor must exceed 1")
    (fun () -> ignore (Phases.thrashing_rate ~factor:1.0 ~credit_pct:20.0 ()))

let phases_three_phase () =
  let schedule = Phases.three_phase ~active_from:(sec 10) ~active_until:(sec 20) ~rate:0.5 in
  check_int "steps" 3 (List.length schedule);
  let app = Web_app.create ~rate_schedule:schedule () in
  check_float "inactive" 0.0 (Web_app.current_rate app ~now:(sec 5));
  check_float "active" 0.5 (Web_app.current_rate app ~now:(sec 15));
  check_float "inactive again" 0.0 (Web_app.current_rate app ~now:(sec 25))

let phases_three_phase_from_zero () =
  let schedule = Phases.three_phase ~active_from:Sim_time.zero ~active_until:(sec 5) ~rate:0.5 in
  check_int "two steps" 2 (List.length schedule)

let phases_invalid_window () =
  Alcotest.check_raises "empty window"
    (Invalid_argument "Phases.three_phase: empty active window") (fun () ->
      ignore (Phases.three_phase ~active_from:(sec 5) ~active_until:(sec 5) ~rate:0.1))

let phases_steps_validates () =
  Alcotest.check_raises "delegates validation"
    (Invalid_argument "Web_app.create: negative rate") (fun () ->
      ignore (Phases.steps [ (sec 1, -1.0) ]))

let () =
  Alcotest.run "workloads"
    [
      ( "workload",
        [
          Alcotest.test_case "idle" `Quick wl_idle;
          Alcotest.test_case "busy loop" `Quick wl_busy_loop;
          Alcotest.test_case "overconsume detected" `Quick wl_overconsume_detected;
          Alcotest.test_case "bad speed" `Quick wl_bad_speed;
        ] );
      ( "pi_app",
        [
          Alcotest.test_case "completes at full speed" `Quick pi_completes_at_full_speed;
          Alcotest.test_case "scales with speed" `Quick pi_scales_with_speed;
          Alcotest.test_case "duty cycle limits" `Quick pi_duty_cycle_limits;
          Alcotest.test_case "tracking and reset" `Quick pi_tracking;
          Alcotest.test_case "invalid" `Quick pi_invalid;
          pi_tiny_residue_finishes;
        ] );
      ( "web_app",
        [
          Alcotest.test_case "deterministic arrivals" `Quick web_deterministic_arrivals;
          Alcotest.test_case "serves fifo" `Quick web_serves_fifo;
          Alcotest.test_case "response times" `Quick web_response_times;
          Alcotest.test_case "overload queues" `Quick web_overload_queues;
          Alcotest.test_case "timeout expires" `Quick web_timeout_expires;
          Alcotest.test_case "rate schedule" `Quick web_rate_schedule;
          Alcotest.test_case "poisson mean" `Quick web_poisson_mean;
          Alcotest.test_case "invalid" `Quick web_invalid;
          web_conservation;
        ] );
      ( "closed_loop",
        [
          Alcotest.test_case "invalid" `Quick closed_loop_invalid;
          Alcotest.test_case "offered load" `Quick closed_loop_offered;
          Alcotest.test_case "self throttles" `Quick closed_loop_self_throttles;
          Alcotest.test_case "saturated clients" `Quick closed_loop_saturated;
          Alcotest.test_case "matches machine repairman" `Quick closed_loop_matches_repairman;
        ] );
      ( "markov",
        [
          Alcotest.test_case "starts off" `Quick markov_starts_off;
          Alcotest.test_case "invalid" `Quick markov_invalid;
          Alcotest.test_case "flips states" `Quick markov_flips_states;
          Alcotest.test_case "long-run rate" `Quick markov_long_run_rate;
        ] );
      ( "phases",
        [
          Alcotest.test_case "exact rate" `Quick phases_exact_rate;
          Alcotest.test_case "thrashing" `Quick phases_thrashing;
          Alcotest.test_case "three phase" `Quick phases_three_phase;
          Alcotest.test_case "three phase from zero" `Quick phases_three_phase_from_zero;
          Alcotest.test_case "invalid window" `Quick phases_invalid_window;
          Alcotest.test_case "steps validates" `Quick phases_steps_validates;
        ] );
    ]

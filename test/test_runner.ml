(* Tests for the parallel experiment runner: differential determinism
   (serial vs pools of 1/2/4 domains), failure isolation, manifest shape,
   and argument validation.

   The determinism tests run the full registry several times, so they use a
   small scale; the byte-identity assertions do not depend on it. *)

module Experiment = Experiments.Experiment
module Registry = Experiments.Registry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let diff_scale = 0.02

(* The pre-runner serial reference: plain [Experiment.run] over the
   registry in order, no pool involved. *)
let serial_reference () =
  List.map (fun e -> Experiment.print_to_string (Experiment.run e ~scale:diff_scale)) Registry.all

let differential_determinism () =
  let reference = serial_reference () in
  let reports =
    List.map (fun pool_size -> Runner.run_all ~pool_size ~scale:diff_scale ()) [ 1; 2; 4 ]
  in
  List.iter
    (fun report ->
      check_int
        (Printf.sprintf "pool %d ran everything" report.Runner.pool_size)
        (List.length Registry.all)
        (List.length report.Runner.jobs);
      check_bool
        (Printf.sprintf "pool %d has no failures" report.Runner.pool_size)
        true
        (Runner.failures report = []);
      List.iter2
        (fun expected j ->
          check_string
            (Printf.sprintf "%s byte-identical on pool %d" j.Runner.id report.Runner.pool_size)
            expected j.Runner.rendered)
        reference report.Runner.jobs)
    reports;
  (* Manifests agree too, once timings are stripped. *)
  match List.map (fun r -> Runner.manifest_json ~strip_timings:true r) reports with
  | [ m1; m2; m4 ] ->
      (* jobs count differs by design; normalize it before comparing. *)
      let norm m =
        List.filter
          (fun line -> not (String.length line > 10 && String.sub line 2 8 = "\"jobs\": "))
          (String.split_on_char '\n' m)
      in
      check_bool "manifest 1 = manifest 2" true (norm m1 = norm m2);
      check_bool "manifest 2 = manifest 4" true (norm m2 = norm m4)
  (* unreachable: three pools were mapped above. *)
  | _ -> assert false

(* Failure isolation: one experiment raising must not kill the run; its
   error is reported and the others complete. *)
let failing_experiment id =
  {
    Experiment.id;
    title = "always raises";
    paper_ref = "n/a";
    run = (fun ~seed:_ ~scale:_ -> failwith (id ^ " exploded"));
  }

let ok_experiment id =
  {
    Experiment.id;
    title = "trivial";
    paper_ref = "n/a";
    run =
      (fun ~seed:_ ~scale:_ ->
        let summary = Table.create ~columns:[ ("k", Table.Left); ("v", Table.Right) ] in
        Table.add_row summary [ "answer"; "42" ];
        { Experiment.id; title = "trivial"; summary; plots = []; frames = []; notes = [] });
  }

let failure_isolation () =
  let experiments =
    [ ok_experiment "ok-a"; failing_experiment "boom"; ok_experiment "ok-b" ]
  in
  let report = Runner.run_all ~pool_size:2 ~scale:1.0 ~experiments () in
  check_int "all jobs reported" 3 (List.length report.Runner.jobs);
  (match Runner.failures report with
  | [ (id, msg) ] ->
      check_string "failed id" "boom" id;
      check_bool "carries the exception" true
        (String.length msg > 0
        && String.length msg >= String.length "boom exploded"
        &&
        let rec contains i =
          i + 13 <= String.length msg && (String.sub msg i 13 = "boom exploded" || contains (i + 1))
        in
        contains 0)
  | l -> Alcotest.failf "expected exactly one failure, got %d" (List.length l));
  List.iter
    (fun j ->
      match (j.Runner.id, j.Runner.status) with
      | "boom", Runner.Failed _ -> check_string "failed job has no output" "" j.Runner.rendered
      | "boom", Runner.Done -> Alcotest.fail "boom should have failed"
      | _, Runner.Done ->
          check_int "ok job counted its rows" 1 j.Runner.rows;
          check_bool "ok job rendered" true (String.length j.Runner.rendered > 0)
      | id, Runner.Failed msg -> Alcotest.failf "%s unexpectedly failed: %s" id msg)
    report.Runner.jobs

let manifest_shape () =
  let report =
    Runner.run_all ~pool_size:1 ~scale:1.0
      ~experiments:[ ok_experiment "alpha"; failing_experiment "beta \"quoted\"" ]
      ()
  in
  let manifest = Runner.manifest_json report in
  let has sub =
    let n = String.length manifest and m = String.length sub in
    let rec loop i = i + m <= n && (String.sub manifest i m = sub || loop (i + 1)) in
    loop 0
  in
  check_bool "schema tag" true (has "\"schema\": \"dvfs-bench-manifest/1\"");
  check_bool "ok entry" true (has "{\"id\": \"alpha\", \"status\": \"ok\"");
  check_bool "failed entry with escaped id" true
    (has "{\"id\": \"beta \\\"quoted\\\"\", \"status\": \"failed\"");
  check_bool "error recorded" true (has "\"error\": ");
  check_bool "rows recorded" true (has "\"rows\": 1")

let validation () =
  Alcotest.check_raises "pool_size 0" (Invalid_argument "Runner.run_all: pool_size must be positive")
    (fun () -> ignore (Runner.run_all ~pool_size:0 ~scale:1.0 ~experiments:[] ()));
  Alcotest.check_raises "scale 0" (Invalid_argument "Runner.run_all: scale must be positive")
    (fun () -> ignore (Runner.run_all ~pool_size:1 ~scale:0.0 ~experiments:[] ()));
  (* A pool far larger than the job list is clamped, not an error. *)
  let report = Runner.run_all ~pool_size:64 ~scale:1.0 ~experiments:[ ok_experiment "one" ] () in
  check_int "pool clamped to job count" 1 report.Runner.pool_size

let () =
  Alcotest.run "runner"
    [
      ( "determinism",
        [ Alcotest.test_case "serial vs jobs 1/2/4 byte-identical" `Slow differential_determinism ]
      );
      ( "mechanics",
        [
          Alcotest.test_case "failure isolation" `Quick failure_isolation;
          Alcotest.test_case "manifest shape" `Quick manifest_shape;
          Alcotest.test_case "validation" `Quick validation;
        ] );
    ]

(* Tests for the parallel experiment runner: differential determinism
   (serial vs pools of 1/2/4 domains), failure isolation, manifest shape,
   and argument validation.

   The determinism tests run the full registry several times, so they use a
   small scale; the byte-identity assertions do not depend on it. *)

module Experiment = Experiments.Experiment
module Registry = Experiments.Registry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let diff_scale = 0.02

(* The pre-runner serial reference: plain [Experiment.run] over the
   registry in order, no pool involved. *)
let serial_reference () =
  List.map (fun e -> Experiment.print_to_string (Experiment.run e ~scale:diff_scale)) Registry.all

let differential_determinism () =
  let reference = serial_reference () in
  let reports =
    List.map (fun pool_size -> Runner.run_all ~pool_size ~scale:diff_scale ()) [ 1; 2; 4 ]
  in
  List.iter
    (fun report ->
      check_int
        (Printf.sprintf "pool %d ran everything" report.Runner.pool_size)
        (List.length Registry.all)
        (List.length report.Runner.jobs);
      check_bool
        (Printf.sprintf "pool %d has no failures" report.Runner.pool_size)
        true
        (Runner.failures report = []);
      List.iter2
        (fun expected j ->
          check_string
            (Printf.sprintf "%s byte-identical on pool %d" j.Runner.id report.Runner.pool_size)
            expected j.Runner.rendered)
        reference report.Runner.jobs)
    reports;
  (* Manifests agree too, once timings are stripped. *)
  match List.map (fun r -> Runner.manifest_json ~strip_timings:true r) reports with
  | [ m1; m2; m4 ] ->
      (* jobs count differs by design; normalize it before comparing. *)
      let norm m =
        List.filter
          (fun line -> not (String.length line > 10 && String.sub line 2 8 = "\"jobs\": "))
          (String.split_on_char '\n' m)
      in
      check_bool "manifest 1 = manifest 2" true (norm m1 = norm m2);
      check_bool "manifest 2 = manifest 4" true (norm m2 = norm m4)
  (* unreachable: three pools were mapped above. *)
  | _ -> assert false

(* Failure isolation: one experiment raising must not kill the run; its
   error is reported and the others complete. *)
let failing_experiment id =
  {
    Experiment.id;
    title = "always raises";
    paper_ref = "n/a";
    run = (fun ~seed:_ ~scale:_ -> failwith (id ^ " exploded"));
  }

let ok_experiment id =
  {
    Experiment.id;
    title = "trivial";
    paper_ref = "n/a";
    run =
      (fun ~seed:_ ~scale:_ ->
        let summary = Table.create ~columns:[ ("k", Table.Left); ("v", Table.Right) ] in
        Table.add_row summary [ "answer"; "42" ];
        { Experiment.id; title = "trivial"; summary; plots = []; frames = []; notes = [] });
  }

let failure_isolation () =
  let experiments =
    [ ok_experiment "ok-a"; failing_experiment "boom"; ok_experiment "ok-b" ]
  in
  let report = Runner.run_all ~pool_size:2 ~scale:1.0 ~experiments () in
  check_int "all jobs reported" 3 (List.length report.Runner.jobs);
  (match Runner.failures report with
  | [ (id, msg) ] ->
      check_string "failed id" "boom" id;
      check_bool "carries the exception" true
        (String.length msg > 0
        && String.length msg >= String.length "boom exploded"
        &&
        let rec contains i =
          i + 13 <= String.length msg && (String.sub msg i 13 = "boom exploded" || contains (i + 1))
        in
        contains 0)
  | l -> Alcotest.failf "expected exactly one failure, got %d" (List.length l));
  List.iter
    (fun j ->
      match (j.Runner.id, j.Runner.status) with
      | "boom", Runner.Failed _ -> check_string "failed job has no output" "" j.Runner.rendered
      | "boom", Runner.Done -> Alcotest.fail "boom should have failed"
      | _, Runner.Done ->
          check_int "ok job counted its rows" 1 j.Runner.rows;
          check_bool "ok job rendered" true (String.length j.Runner.rendered > 0)
      | id, Runner.Failed msg -> Alcotest.failf "%s unexpectedly failed: %s" id msg)
    report.Runner.jobs

let manifest_shape () =
  let report =
    Runner.run_all ~pool_size:1 ~scale:1.0
      ~experiments:[ ok_experiment "alpha"; failing_experiment "beta \"quoted\"" ]
      ()
  in
  let manifest = Runner.manifest_json report in
  let has sub =
    let n = String.length manifest and m = String.length sub in
    let rec loop i = i + m <= n && (String.sub manifest i m = sub || loop (i + 1)) in
    loop 0
  in
  check_bool "schema tag" true (has "\"schema\": \"dvfs-bench-manifest/2\"");
  check_bool "word counters recorded" true (has "\"minor_words\": ");
  check_bool "ok entry" true (has "{\"id\": \"alpha\", \"status\": \"ok\"");
  check_bool "failed entry with escaped id" true
    (has "{\"id\": \"beta \\\"quoted\\\"\", \"status\": \"failed\"");
  check_bool "error recorded" true (has "\"error\": ");
  check_bool "rows recorded" true (has "\"rows\": 1")

(* --------------------------------------------------------------- *)
(* Manifest reader / regression differ *)

module Manifest = Runner.Manifest

(* The writer and reader are two halves of one loop: a freshly written
   manifest must load back with the same shape. *)
let manifest_roundtrip () =
  let report =
    Runner.run_all ~pool_size:1 ~scale:1.0
      ~experiments:[ ok_experiment "alpha"; failing_experiment "beta" ]
      ()
  in
  let m = Manifest.of_string (Runner.manifest_json report) in
  check_string "schema" "dvfs-bench-manifest/2" m.Manifest.schema;
  check_int "jobs" 1 m.Manifest.jobs;
  check_int "experiments" 2 (List.length m.Manifest.experiments);
  (match m.Manifest.experiments with
  | [ a; b ] ->
      check_string "first id" "alpha" a.Manifest.id;
      check_string "first status" "ok" a.Manifest.status;
      check_int "first rows" 1 a.Manifest.rows;
      check_bool "word counters present" true (a.Manifest.minor_words >= 0.0);
      check_string "second status" "failed" b.Manifest.status
  | _ -> Alcotest.fail "unexpected experiment list");
  check_bool "alloc total finite" true (Float.is_finite (Manifest.total_alloc_mb m))

let v1_manifest =
  {|{
  "schema": "dvfs-bench-manifest/1",
  "scale": 0.1,
  "jobs": 4,
  "host_domains": 2,
  "total_seconds": 12.5,
  "experiments": [
    {"id": "fig3", "status": "ok", "seconds": 4.0, "cpu_seconds": 3.9, "alloc_mb": 120.0, "rows": 64},
    {"id": "fig4", "status": "failed", "seconds": 0.1, "cpu_seconds": 0.1, "alloc_mb": 1.5, "rows": 0, "error": "boom"}
  ]
}|}

let manifest_v1_compat () =
  let m = Manifest.of_string v1_manifest in
  check_string "schema" "dvfs-bench-manifest/1" m.Manifest.schema;
  check_int "jobs" 4 m.Manifest.jobs;
  check_int "host_domains" 2 m.Manifest.host_domains;
  Alcotest.(check (float 1e-9)) "total_seconds" 12.5 m.Manifest.total_seconds;
  Alcotest.(check (float 1e-9)) "alloc sums both entries" 121.5 (Manifest.total_alloc_mb m);
  List.iter
    (fun e ->
      Alcotest.(check (float 0.0))
        (e.Manifest.id ^ " minor_words defaults") 0.0 e.Manifest.minor_words;
      Alcotest.(check (float 0.0))
        (e.Manifest.id ^ " major_words defaults") 0.0 e.Manifest.major_words)
    m.Manifest.experiments

let manifest_rejects () =
  let rejects label s =
    match Manifest.of_string s with
    | exception Manifest.Parse_error _ -> ()
    | _ -> Alcotest.failf "%s: expected Parse_error" label
  in
  rejects "malformed json" "{\"schema\": ";
  rejects "trailing garbage" "{} {}";
  rejects "unsupported schema"
    {|{"schema": "dvfs-bench-manifest/99", "experiments": []}|};
  rejects "missing experiments" {|{"schema": "dvfs-bench-manifest/2"}|};
  rejects "mistyped field"
    {|{"schema": "dvfs-bench-manifest/2", "experiments": [{"id": 3}]}|}

let mexp ?(status = "ok") id ~seconds ~alloc_mb =
  {
    Manifest.id;
    status;
    seconds;
    cpu_seconds = seconds;
    alloc_mb;
    minor_words = 0.0;
    major_words = 0.0;
    rows = 1;
  }

let mt ?(analyze = 0.0) ~total experiments =
  {
    Manifest.schema = "dvfs-bench-manifest/2";
    scale = 1.0;
    jobs = 1;
    host_domains = 1;
    total_seconds = total;
    analyze_seconds = analyze;
    experiments;
  }

let manifest_diff () =
  let baseline =
    mt ~total:10.0
      [
        mexp "steady" ~seconds:2.0 ~alloc_mb:100.0;
        mexp "tiny" ~seconds:0.01 ~alloc_mb:0.2;
        mexp "broken" ~status:"failed" ~seconds:0.1 ~alloc_mb:1.0;
      ]
  in
  let current =
    mt ~total:11.0
      [
        (* 2x the baseline seconds: beyond the default 1.5x tolerance. *)
        mexp "steady" ~seconds:4.0 ~alloc_mb:110.0;
        (* Huge ratio but the baseline sits under the noise floor. *)
        mexp "tiny" ~seconds:1.0 ~alloc_mb:0.9;
        (* Failed experiments are not compared. *)
        mexp "broken" ~status:"failed" ~seconds:5.0 ~alloc_mb:50.0;
        (* Present only on one side: registry growth, not a regression. *)
        mexp "new-exp" ~seconds:9.0 ~alloc_mb:900.0;
      ]
  in
  (match Manifest.diff ~baseline ~current () with
  | [ r ] ->
      check_string "regressed id" "steady" r.Manifest.exp_id;
      check_string "regressed metric" "seconds" r.Manifest.metric;
      Alcotest.(check (float 1e-9)) "ratio" 2.0 r.Manifest.ratio
  | l -> Alcotest.failf "expected one regression, got %d" (List.length l));
  check_bool "generous tolerance passes" true
    (Manifest.diff ~tolerance:3.0 ~baseline ~current () = []);
  (* The run-wide total is gated too. *)
  let slow = mt ~total:30.0 baseline.Manifest.experiments in
  (match Manifest.diff ~baseline ~current:slow () with
  | [ r ] ->
      check_string "total id" "(total)" r.Manifest.exp_id;
      check_string "total metric" "total_seconds" r.Manifest.metric
  | l -> Alcotest.failf "expected one total regression, got %d" (List.length l));
  Alcotest.check_raises "tolerance below 1"
    (Invalid_argument "Manifest.diff: tolerance must be >= 1.0")
    (fun () -> ignore (Manifest.diff ~tolerance:0.5 ~baseline ~current ()))

(* analyze_seconds: the analyzer wall-time key added for the @analyze
   perf gate.  Optional in the writer — manifests written without it are
   byte-identical to before — and defaulting to 0 in the reader, so old
   trajectory baselines keep loading. *)
let manifest_analyze_seconds () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
    loop 0
  in
  let report = Runner.run_all ~pool_size:1 ~scale:1.0 ~experiments:[ ok_experiment "alpha" ] () in
  let without = Runner.manifest_json report in
  check_bool "no key unless supplied" false (contains without "analyze_seconds");
  Alcotest.(check (float 0.0)) "absent key loads as 0" 0.0
    (Manifest.of_string without).Manifest.analyze_seconds;
  Alcotest.(check (float 0.0)) "schema /1 loads as 0" 0.0
    (Manifest.of_string v1_manifest).Manifest.analyze_seconds;
  let with_timing = Runner.manifest_json ~analyze_seconds:1.25 report in
  check_bool "key present when supplied" true
    (contains with_timing "\"analyze_seconds\": 1.250,");
  Alcotest.(check (float 1e-9)) "round-trips through the reader" 1.25
    (Manifest.of_string with_timing).Manifest.analyze_seconds;
  check_bool "strip_timings zeroes it" true
    (contains
       (Runner.manifest_json ~strip_timings:true ~analyze_seconds:1.25 report)
       "\"analyze_seconds\": 0.000,")

let manifest_analyze_gate () =
  let exps = [ mexp "steady" ~seconds:2.0 ~alloc_mb:100.0 ] in
  let baseline = mt ~analyze:0.2 ~total:10.0 exps in
  let current = mt ~analyze:0.5 ~total:10.0 exps in
  (match Manifest.diff ~baseline ~current () with
  | [ r ] ->
      check_string "gated as a run-wide metric" "(total)" r.Manifest.exp_id;
      check_string "metric name" "analyze_seconds" r.Manifest.metric;
      Alcotest.(check (float 1e-9)) "ratio" 2.5 r.Manifest.ratio
  | l -> Alcotest.failf "expected one analyze regression, got %d" (List.length l));
  (* a side without timing (0.) sits under the noise floor: skipped, so
     pre-analyzer baselines never trip the gate *)
  check_bool "timing-less baseline is skipped" true
    (Manifest.diff ~baseline:(mt ~total:10.0 exps) ~current () = []);
  check_bool "timing-less current is skipped" true
    (Manifest.diff ~baseline ~current:(mt ~total:10.0 exps) () = [])

let analyze_timing_sidefile () =
  let path = Filename.temp_file "dvfs_timing" ".json" in
  let write s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  write "{\n  \"schema\": \"dvfs-analyze-timing/1\",\n  \"analyze_seconds\": 0.163\n}\n";
  Alcotest.(check (float 1e-9)) "reads the side-file" 0.163 (Manifest.read_analyze_timing path);
  write "{\"schema\": \"bogus/9\", \"analyze_seconds\": 1.0}";
  (match Manifest.read_analyze_timing path with
  | exception Manifest.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error on a foreign schema");
  write "{\"schema\": \"dvfs-analyze-timing/1\"}";
  (match Manifest.read_analyze_timing path with
  | exception Manifest.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error on a missing field");
  Sys.remove path

let validation () =
  Alcotest.check_raises "pool_size 0" (Invalid_argument "Runner.run_all: pool_size must be positive")
    (fun () -> ignore (Runner.run_all ~pool_size:0 ~scale:1.0 ~experiments:[] ()));
  Alcotest.check_raises "scale 0" (Invalid_argument "Runner.run_all: scale must be positive")
    (fun () -> ignore (Runner.run_all ~pool_size:1 ~scale:0.0 ~experiments:[] ()));
  (* A pool far larger than the job list is clamped, not an error. *)
  let report = Runner.run_all ~pool_size:64 ~scale:1.0 ~experiments:[ ok_experiment "one" ] () in
  check_int "pool clamped to job count" 1 report.Runner.pool_size

let () =
  Alcotest.run "runner"
    [
      ( "determinism",
        [ Alcotest.test_case "serial vs jobs 1/2/4 byte-identical" `Slow differential_determinism ]
      );
      ( "mechanics",
        [
          Alcotest.test_case "failure isolation" `Quick failure_isolation;
          Alcotest.test_case "manifest shape" `Quick manifest_shape;
          Alcotest.test_case "validation" `Quick validation;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "writer/reader roundtrip" `Quick manifest_roundtrip;
          Alcotest.test_case "schema /1 compatibility" `Quick manifest_v1_compat;
          Alcotest.test_case "rejects malformed input" `Quick manifest_rejects;
          Alcotest.test_case "regression diff" `Quick manifest_diff;
          Alcotest.test_case "analyze_seconds back-compat" `Quick manifest_analyze_seconds;
          Alcotest.test_case "analyze_seconds gate" `Quick manifest_analyze_gate;
          Alcotest.test_case "timing side-file" `Quick analyze_timing_sidefile;
        ] );
    ]

(* Tests for the SEDF scheduler: slice guarantees, EDF dispatch, extratime
   (work-conserving) redistribution, the extra flag, no back-pay. *)

module Workload = Workloads.Workload
module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor

let check_bool = Alcotest.(check bool)
let check_float_eps eps = Alcotest.(check (float eps))
let sec = Sim_time.of_sec

let run_host ?(duration = 10) scheduler =
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let host = Host.create ~sim ~processor ~scheduler () in
  Host.run_for host (sec duration);
  host

let share d duration = Sim_time.to_sec (Domain.cpu_time d) /. float_of_int duration

let slices_guaranteed_under_contention () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:70.0 (Workload.busy_loop ()) in
  ignore (run_host (Sched_sedf.create [ a; b ]));
  (* Guaranteed 20/70; the leftover 10% extratime splits roughly evenly. *)
  check_bool "a at least its slice" true (share a 10 >= 0.20 -. 0.01);
  check_bool "b at least its slice" true (share b 10 >= 0.70 -. 0.01);
  check_float_eps 0.01 "nothing wasted" 1.0 (share a 10 +. share b 10)

let work_conserving_redistribution () =
  (* The defining variable-credit property: the idle domain's capacity goes
     to the busy one. *)
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:70.0 (Workload.idle ()) in
  ignore (run_host (Sched_sedf.create [ a; b ]));
  check_float_eps 0.01 "a takes the whole host" 1.0 (share a 10)

let extra_flag_off_caps () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:70.0 (Workload.idle ()) in
  ignore (run_host (Sched_sedf.create ~extra:false [ a; b ]));
  check_float_eps 0.01 "fix-credit behaviour without extratime" 0.20 (share a 10)

let extratime_shared_fairly () =
  let a = Domain.create ~name:"a" ~credit_pct:10.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:10.0 (Workload.busy_loop ()) in
  ignore (run_host (Sched_sedf.create [ a; b ]));
  (* 80% extratime should be split evenly by round-robin. *)
  check_float_eps 0.02 "a half" 0.5 (share a 10);
  check_float_eps 0.02 "b half" 0.5 (share b 10)

let no_back_pay_after_sleep () =
  let app =
    Workloads.Web_app.create ~rate_schedule:[ (Sim_time.zero, 0.0); (sec 5, 5.0) ] ()
  in
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workloads.Web_app.workload app) in
  let guard = Domain.create ~name:"guard" ~credit_pct:70.0 (Workload.busy_loop ()) in
  let sched = Sched_sedf.create ~extra:false [ a; guard ] in
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let host = Host.create ~sim ~processor ~scheduler:sched () in
  Host.run_for host (sec 5);
  let early = Sim_time.to_sec (Domain.cpu_time a) in
  Host.run_for host (sec 5);
  let late = Sim_time.to_sec (Domain.cpu_time a) -. early in
  check_bool "no work while idle" true (early < 0.01);
  (* If slices accumulated during sleep, a could claim ~1s+backlog; it must
     stay at its per-period guarantee. *)
  check_float_eps 0.05 "guarantee only" 1.0 late

let set_effective_credit_resizes_slice () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:70.0 (Workload.busy_loop ()) in
  let sched = Sched_sedf.create ~extra:false [ a; b ] in
  sched.Scheduler.set_effective_credit a 30.0;
  check_float_eps 1e-9 "updated" 30.0 (sched.Scheduler.effective_credit a);
  let sim = Simulator.create () in
  let processor = Processor.create Cpu_model.Arch.optiplex_755 in
  let host = Host.create ~sim ~processor ~scheduler:sched () in
  Host.run_for host (sec 10);
  check_float_eps 0.02 "30% slice" 0.30 (share a 10)

let negative_credit_rejected () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.idle ()) in
  let sched = Sched_sedf.create [ a ] in
  Alcotest.check_raises "negative"
    (Invalid_argument "Sched_sedf.set_effective_credit: negative credit") (fun () ->
      sched.Scheduler.set_effective_credit a (-1.0))

let duplicate_domains_rejected () =
  let a = Domain.create ~name:"a" ~credit_pct:20.0 (Workload.idle ()) in
  Alcotest.check_raises "duplicates" (Invalid_argument "Sched_sedf.create: duplicate domains")
    (fun () -> ignore (Sched_sedf.create [ a; a ]))

let pick_respects_exclude () =
  let a = Domain.create ~name:"a" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let b = Domain.create ~name:"b" ~credit_pct:50.0 (Workload.busy_loop ()) in
  let sched = Sched_sedf.create [ a; b ] in
  match
    sched.Scheduler.pick ~now:Sim_time.zero ~remaining:(Sim_time.of_ms 1)
      ~exclude:(Scheduler.Mask.of_list [ a ])
  with
  | Some { Scheduler.domain; _ } -> check_bool "picks b" true (Domain.equal domain b)
  | None -> Alcotest.fail "expected a pick"

let zero_period_rejected () =
  Alcotest.check_raises "zero period" (Invalid_argument "Sched_sedf.create: zero period")
    (fun () -> ignore (Sched_sedf.create ~period:Sim_time.zero []))

let () =
  Alcotest.run "sched_sedf"
    [
      ( "guarantees",
        [
          Alcotest.test_case "slices under contention" `Quick slices_guaranteed_under_contention;
          Alcotest.test_case "no back-pay" `Quick no_back_pay_after_sleep;
        ] );
      ( "extratime",
        [
          Alcotest.test_case "work conserving" `Quick work_conserving_redistribution;
          Alcotest.test_case "extra off caps" `Quick extra_flag_off_caps;
          Alcotest.test_case "shared fairly" `Quick extratime_shared_fairly;
        ] );
      ( "interface",
        [
          Alcotest.test_case "resize slice" `Quick set_effective_credit_resizes_slice;
          Alcotest.test_case "negative rejected" `Quick negative_credit_rejected;
          Alcotest.test_case "duplicates" `Quick duplicate_domains_rejected;
          Alcotest.test_case "exclude" `Quick pick_respects_exclude;
          Alcotest.test_case "zero period" `Quick zero_period_rejected;
        ] );
    ]

(* Tests for the xl.cfg-style configuration parser and builder. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float_eps eps = Alcotest.(check (float eps))

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

let err = function
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg -> msg

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let sample =
  {|
# a comment
host arch=optiplex-755 scheduler=pas governor=none duration=120

domain name=Dom0 credit=10 dom0=true workload=idle
domain name=V20  credit=20 workload=web rate=0.2 from=10 until=100
domain name=V70  credit=70 workload=pi work=5 duty=0.5
|}

let parse_full_config () =
  let cfg = ok (Domconfig.parse sample) in
  check_int "three domains" 3 (List.length cfg.Domconfig.domains);
  check_bool "pas scheduler" true (cfg.Domconfig.scheduler = Domconfig.Pas_sched);
  check_bool "no governor" true (cfg.Domconfig.governor = Domconfig.No_governor);
  check_float_eps 1e-9 "duration" 120.0 cfg.Domconfig.duration_s;
  let v70 = List.nth cfg.Domconfig.domains 2 in
  check_bool "pi workload" true
    (match v70.Domconfig.workload with Domconfig.Pi { work = 5.0; duty = 0.5 } -> true | _ -> false)

let parse_defaults () =
  let cfg = ok (Domconfig.parse "domain name=a credit=50") in
  check_bool "default scheduler credit" true (cfg.Domconfig.scheduler = Domconfig.Credit);
  check_bool "default governor stable" true (cfg.Domconfig.governor = Domconfig.Stable);
  let d = List.hd cfg.Domconfig.domains in
  check_int "default weight" 256 d.Domconfig.weight;
  check_int "default vcpus" 1 d.Domconfig.vcpus;
  check_bool "default workload idle" true (d.Domconfig.workload = Domconfig.Idle)

let error_cases () =
  let check_error name input fragment =
    let msg = err (Domconfig.parse input) in
    check_bool (name ^ ": " ^ msg) true (contains msg fragment)
  in
  check_error "empty" "" "no domain";
  check_error "bad directive" "frobnicate name=x" "unknown directive";
  check_error "bad pair" "domain name" "key=value";
  check_error "unknown key" "domain name=a credit=10 colour=red" "unknown key";
  check_error "missing name" "domain credit=10" "requires name";
  check_error "missing credit" "domain name=a" "requires credit";
  check_error "bad number" "domain name=a credit=lots" "not a number";
  check_error "bad scheduler" "host scheduler=cfs\ndomain name=a credit=1" "unknown scheduler";
  check_error "bad governor" "host governor=warp\ndomain name=a credit=1" "unknown governor";
  check_error "bad arch" "host arch=z80\ndomain name=a credit=1" "unknown architecture";
  check_error "duplicate domain" "domain name=a credit=1\ndomain name=a credit=2" "duplicate";
  check_error "web needs rate" "domain name=a credit=1 workload=web" "requires rate";
  check_error "pi needs work" "domain name=a credit=1 workload=pi" "requires work";
  check_error "bad duration" "host duration=-5\ndomain name=a credit=1" "duration"

let error_line_numbers () =
  let msg = err (Domconfig.parse "domain name=a credit=1\n\ndomain name=b credit=oops") in
  check_bool "points at line 3" true (contains msg "line 3")

let roundtrip_pp () =
  let cfg = ok (Domconfig.parse sample) in
  let rendered = Format.asprintf "%a" Domconfig.pp_spec cfg in
  let reparsed = ok (Domconfig.parse rendered) in
  check_int "same domain count" (List.length cfg.Domconfig.domains)
    (List.length reparsed.Domconfig.domains);
  check_bool "same scheduler" true (reparsed.Domconfig.scheduler = cfg.Domconfig.scheduler)

let build_and_run () =
  let cfg = ok (Domconfig.parse sample) in
  let built = Domconfig.build cfg in
  Hypervisor.Host.run_for built.Domconfig.host built.Domconfig.duration;
  check_bool "pas exposed" true (built.Domconfig.pas <> None);
  let _, v20, _ =
    List.find (fun (s, _, _) -> s.Domconfig.name = "V20") built.Domconfig.domains
  in
  (* Active 90 s at 0.2 abs/s on a PAS host: 18 abs-seconds of work run
     under compensation -> ~90 s of wall-clock at 20% absolute. *)
  check_bool "V20 ran" true (Sim_time.to_sec (Hypervisor.Domain.cpu_time v20) > 20.0);
  let _, _, pi_app =
    List.find (fun (s, _, _) -> s.Domconfig.name = "V70") built.Domconfig.domains
  in
  match pi_app with
  | Domconfig.App_pi pi -> check_bool "pi finished" true (Workloads.Pi_app.finished pi)
  | _ -> Alcotest.fail "expected a pi handle"

let parse_file_missing () =
  match Domconfig.parse_file "/nonexistent/path.cfg" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ()

let () =
  Alcotest.run "domconfig"
    [
      ( "parse",
        [
          Alcotest.test_case "full config" `Quick parse_full_config;
          Alcotest.test_case "defaults" `Quick parse_defaults;
          Alcotest.test_case "error cases" `Quick error_cases;
          Alcotest.test_case "error line numbers" `Quick error_line_numbers;
          Alcotest.test_case "pp roundtrip" `Quick roundtrip_pp;
          Alcotest.test_case "parse_file missing" `Quick parse_file_missing;
        ] );
      ("build", [ Alcotest.test_case "build and run" `Quick build_and_run ]);
    ]

(* Tests for the CPU model: frequency tables, calibration, cpufreq driver,
   power model, processor facade, architecture catalog. *)

module Frequency = Cpu_model.Frequency
module Calibration = Cpu_model.Calibration
module Arch = Cpu_model.Arch
module Cpufreq = Cpu_model.Cpufreq
module Power = Cpu_model.Power
module Processor = Cpu_model.Processor

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let optiplex_levels = [ 1600; 1867; 2133; 2400; 2667 ]

(* ------------------------------------------------------------------ *)
(* Frequency *)

let freq_create_sorts () =
  let t = Frequency.create [ 2400; 1600; 2400; 2667 ] in
  Alcotest.(check (array int)) "sorted dedup" [| 1600; 2400; 2667 |] (Frequency.levels t);
  check_int "count" 3 (Frequency.count t);
  check_int "min" 1600 (Frequency.min_freq t);
  check_int "max" 2667 (Frequency.max_freq t)

let freq_create_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Frequency.create: empty table") (fun () ->
      ignore (Frequency.create []));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Frequency.create: non-positive frequency") (fun () ->
      ignore (Frequency.create [ 0; 1600 ]))

let freq_ratio () =
  let t = Frequency.create optiplex_levels in
  check_float "max" 1.0 (Frequency.ratio t 2667);
  check_float_eps 1e-6 "min" (1600.0 /. 2667.0) (Frequency.ratio t 1600);
  Alcotest.check_raises "not a level" Not_found (fun () -> ignore (Frequency.ratio t 2000))

let freq_lookup () =
  let t = Frequency.create optiplex_levels in
  check_int "index_of" 2 (Frequency.index_of t 2133);
  check_int "nth" 2133 (Frequency.nth t 2);
  check_bool "mem" true (Frequency.mem t 2400);
  check_bool "not mem" false (Frequency.mem t 2000);
  Alcotest.check_raises "nth oob" (Invalid_argument "Frequency.nth: out of range") (fun () ->
      ignore (Frequency.nth t 9))

let freq_closest () =
  let t = Frequency.create optiplex_levels in
  check_int "exact" 2133 (Frequency.closest t 2133);
  check_int "round up" 2133 (Frequency.closest t 2100);
  check_int "tie goes low" 2000 (Frequency.closest (Frequency.create [ 2000; 2200 ]) 2100);
  check_int "below range" 1600 (Frequency.closest t 100);
  check_int "above range" 2667 (Frequency.closest t 9999)

let freq_steps () =
  let t = Frequency.create optiplex_levels in
  check_int "up" 2400 (Frequency.next_up t 2133);
  check_int "up saturates" 2667 (Frequency.next_up t 2667);
  check_int "down" 1867 (Frequency.next_down t 2133);
  check_int "down saturates" 1600 (Frequency.next_down t 1600)

(* ------------------------------------------------------------------ *)
(* Calibration *)

let cal_ideal () =
  let t = Frequency.create optiplex_levels in
  List.iter
    (fun f -> check_float "cf=1" 1.0 (Calibration.cf Calibration.ideal t f))
    optiplex_levels

let cal_exponent_max_is_one () =
  let t = Frequency.create optiplex_levels in
  check_float "cf at fmax" 1.0 (Calibration.cf (Calibration.exponent 0.5) t 2667)

let cal_alpha_roundtrip =
  qtest "alpha_of_cf_min recovers cf_min"
    QCheck.(float_range 0.5 1.0)
    (fun cf_min ->
      let t = Frequency.create [ 1200; 2000 ] in
      let alpha = Calibration.alpha_of_cf_min ~freq_table:t ~cf_min in
      let c = Calibration.exponent alpha in
      Float.abs (Calibration.cf c t 1200 -. cf_min) < 1e-9)

let cal_table_fallback () =
  let t = Frequency.create optiplex_levels in
  let c = Calibration.table [ (1600, 0.9) ] in
  check_float "listed" 0.9 (Calibration.cf c t 1600);
  check_float "fallback" 1.0 (Calibration.cf c t 2400)

let cal_invalid () =
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Calibration.exponent: negative exponent") (fun () ->
      ignore (Calibration.exponent (-1.0)));
  Alcotest.check_raises "bad cf" (Invalid_argument "Calibration.table: non-positive cf")
    (fun () -> ignore (Calibration.table [ (1600, 0.0) ]));
  let t = Frequency.create optiplex_levels in
  Alcotest.check_raises "cf_min range"
    (Invalid_argument "Calibration.alpha_of_cf_min: cf_min must be in (0, 1]") (fun () ->
      ignore (Calibration.alpha_of_cf_min ~freq_table:t ~cf_min:1.5))

let cal_effective_speed () =
  let t = Frequency.create [ 1200; 2400 ] in
  let c = Calibration.exponent 1.0 in
  (* ratio 0.5, cf = 0.5 -> speed 0.25 *)
  check_float "speed" 0.25 (Calibration.effective_speed c t 1200)

(* ------------------------------------------------------------------ *)
(* Arch catalog *)

let arch_paper_cf_values () =
  let expect =
    [
      (Arch.xeon_x3440, 0.94867);
      (Arch.xeon_l5420, 0.99903);
      (Arch.xeon_e5_2620, 0.80338);
      (Arch.opteron_6164_he, 0.99508);
      (Arch.elite_8300, 0.86206);
      (Arch.optiplex_755, 1.0);
    ]
  in
  List.iter
    (fun (arch, cf) -> check_float_eps 1e-5 arch.Arch.name cf (Arch.cf_min arch))
    expect

let arch_find () =
  check_bool "found" true (Arch.find "intel xeon e5-2620" <> None);
  check_bool "missing" true (Arch.find "z80" = None);
  check_int "table1 machines" 5 (List.length Arch.table1_machines);
  check_int "all" 6 (List.length Arch.all)

(* ------------------------------------------------------------------ *)
(* Cpufreq *)

let table () = Frequency.create optiplex_levels

let cpufreq_basic () =
  let d = Cpufreq.create ~freq_table:(table ()) ~init:2667 in
  check_int "init" 2667 (Cpufreq.current d);
  Cpufreq.set d ~now:(Sim_time.of_sec 1) 1600;
  check_int "set" 1600 (Cpufreq.current d);
  check_int "one transition" 1 (Cpufreq.transitions d);
  Cpufreq.set d ~now:(Sim_time.of_sec 2) 1600;
  check_int "no-op not counted" 1 (Cpufreq.transitions d)

let cpufreq_clamps () =
  let d = Cpufreq.create ~freq_table:(table ()) ~init:2667 in
  Cpufreq.set d ~now:Sim_time.zero 2100;
  check_int "clamped to level" 2133 (Cpufreq.current d)

let cpufreq_invalid_init () =
  Alcotest.check_raises "bad init" (Invalid_argument "Cpufreq.create: init is not a supported level")
    (fun () -> ignore (Cpufreq.create ~freq_table:(table ()) ~init:2_000))

let cpufreq_residency () =
  let d = Cpufreq.create ~freq_table:(table ()) ~init:2667 in
  Cpufreq.set d ~now:(Sim_time.of_sec 10) 1600;
  Cpufreq.set d ~now:(Sim_time.of_sec 30) 2667;
  let res = Cpufreq.residency d ~now:(Sim_time.of_sec 40) in
  check_int "at 1600" 20_000_000 (Sim_time.to_us (List.assoc 1600 res));
  check_int "at 2667" 20_000_000 (Sim_time.to_us (List.assoc 2667 res));
  let total = List.fold_left (fun acc (_, d) -> Sim_time.add acc d) Sim_time.zero res in
  check_int "sums to now" 40_000_000 (Sim_time.to_us total);
  check_float "ratio" 0.5 (Cpufreq.residency_ratio d ~now:(Sim_time.of_sec 40) 1600);
  check_float_eps 1e-6 "mean freq" ((2667.0 +. 1600.0) /. 2.0)
    (Cpufreq.mean_frequency d ~now:(Sim_time.of_sec 40))

let cpufreq_backwards () =
  let d = Cpufreq.create ~freq_table:(table ()) ~init:2667 in
  Cpufreq.set d ~now:(Sim_time.of_sec 5) 1600;
  Alcotest.check_raises "backwards" (Invalid_argument "Cpufreq: time moved backwards")
    (fun () -> Cpufreq.set d ~now:(Sim_time.of_sec 1) 2667)

(* ------------------------------------------------------------------ *)
(* Power *)

let power_bounds () =
  let m = Power.model ~idle_watts:40.0 ~max_watts:100.0 () in
  let t = table () in
  check_float "idle" 40.0 (Power.watts m t ~freq:1600 ~util:0.0);
  check_float "max" 100.0 (Power.watts m t ~freq:2667 ~util:1.0);
  check_bool "monotone in util" true
    (Power.watts m t ~freq:2667 ~util:0.5 < Power.watts m t ~freq:2667 ~util:0.9);
  check_bool "monotone in freq" true
    (Power.watts m t ~freq:1600 ~util:1.0 < Power.watts m t ~freq:2667 ~util:1.0);
  check_bool "util clamped" true
    (Power.watts m t ~freq:2667 ~util:2.0 = Power.watts m t ~freq:2667 ~util:1.0)

let power_invalid () =
  Alcotest.check_raises "bad range" (Invalid_argument "Power.model: bad power range")
    (fun () -> ignore (Power.model ~idle_watts:50.0 ~max_watts:40.0 ()))

let power_meter () =
  let m = Power.model ~idle_watts:40.0 ~max_watts:100.0 () in
  let t = table () in
  let meter = Power.Meter.create m t in
  Power.Meter.record meter ~dt:(Sim_time.of_sec 10) ~freq:2667 ~util:1.0;
  check_float "joules" 1000.0 (Power.Meter.joules meter);
  check_int "elapsed" 10_000_000 (Sim_time.to_us (Power.Meter.elapsed meter));
  check_float "mean watts" 100.0 (Power.Meter.mean_watts meter)

(* ------------------------------------------------------------------ *)
(* Processor *)

let processor_speed () =
  let p = Processor.create Arch.optiplex_755 in
  check_int "init at max" 2667 (Processor.current_freq p);
  check_float "speed at max" 1.0 (Processor.speed p);
  Processor.set_freq p ~now:Sim_time.zero 1600;
  check_float_eps 1e-6 "speed at min" (1600.0 /. 2667.0) (Processor.speed p);
  check_float_eps 1e-6 "work_in" (1600.0 /. 2667.0 *. 2.0)
    (Processor.work_in p (Sim_time.of_sec 2))

let processor_nonlinear_arch () =
  let p = Processor.create Arch.elite_8300 in
  Processor.set_freq p ~now:Sim_time.zero 1600;
  check_float_eps 1e-5 "cf matches paper" 0.86206 (Processor.cf p);
  check_float_eps 1e-5 "speed = ratio*cf" (1600.0 /. 3400.0 *. 0.86206) (Processor.speed p)

let processor_energy () =
  let p = Processor.create Arch.optiplex_755 in
  Processor.record_power p ~dt:(Sim_time.of_sec 5) ~util:1.0;
  check_float "energy" (95.0 *. 5.0) (Processor.energy_joules p);
  check_float "mean watts" 95.0 (Processor.mean_watts p)

let processor_init_freq () =
  let p = Processor.create ~init_freq:2133 Arch.optiplex_755 in
  check_int "init" 2133 (Processor.current_freq p)

let () =
  Alcotest.run "cpu_model"
    [
      ( "frequency",
        [
          Alcotest.test_case "create sorts" `Quick freq_create_sorts;
          Alcotest.test_case "create invalid" `Quick freq_create_invalid;
          Alcotest.test_case "ratio" `Quick freq_ratio;
          Alcotest.test_case "lookup" `Quick freq_lookup;
          Alcotest.test_case "closest" `Quick freq_closest;
          Alcotest.test_case "steps" `Quick freq_steps;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "ideal" `Quick cal_ideal;
          Alcotest.test_case "exponent at fmax" `Quick cal_exponent_max_is_one;
          cal_alpha_roundtrip;
          Alcotest.test_case "table fallback" `Quick cal_table_fallback;
          Alcotest.test_case "invalid" `Quick cal_invalid;
          Alcotest.test_case "effective speed" `Quick cal_effective_speed;
        ] );
      ( "arch",
        [
          Alcotest.test_case "paper cf values" `Quick arch_paper_cf_values;
          Alcotest.test_case "find/catalog" `Quick arch_find;
        ] );
      ( "cpufreq",
        [
          Alcotest.test_case "basic" `Quick cpufreq_basic;
          Alcotest.test_case "clamps" `Quick cpufreq_clamps;
          Alcotest.test_case "invalid init" `Quick cpufreq_invalid_init;
          Alcotest.test_case "residency" `Quick cpufreq_residency;
          Alcotest.test_case "backwards time" `Quick cpufreq_backwards;
        ] );
      ( "power",
        [
          Alcotest.test_case "bounds" `Quick power_bounds;
          Alcotest.test_case "invalid" `Quick power_invalid;
          Alcotest.test_case "meter" `Quick power_meter;
        ] );
      ( "processor",
        [
          Alcotest.test_case "speed" `Quick processor_speed;
          Alcotest.test_case "nonlinear arch" `Quick processor_nonlinear_arch;
          Alcotest.test_case "energy" `Quick processor_energy;
          Alcotest.test_case "init freq" `Quick processor_init_freq;
        ] );
    ]

(* Tests for the Table 2 platform profiles. *)

module Platform = Platforms.Platform
module Processor = Cpu_model.Processor
module Domain = Hypervisor.Domain
module Workload = Workloads.Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let domains () =
  [
    Domain.create ~is_dom0:true ~name:"Dom0" ~credit_pct:10.0 (Workload.idle ());
    Domain.create ~name:"V20" ~credit_pct:20.0 (Workload.idle ());
    Domain.create ~name:"V70" ~credit_pct:70.0 (Workload.idle ());
  ]

let catalog_shape () =
  check_int "seven platforms" 7 (List.length Platform.catalog);
  let names = List.map (fun p -> p.Platform.name) Platform.catalog in
  Alcotest.(check (list string)) "paper's column order"
    [ "Hyper-V"; "VMware"; "Xen/credit"; "Xen/PAS"; "Xen/SEDF"; "KVM"; "Vbox" ]
    names

let catalog_families () =
  let kind name =
    match Platform.find name with Some p -> p.Platform.kind | None -> Alcotest.fail name
  in
  check_bool "hyper-v fix" true (kind "hyper-v" = Platform.Fix_credit);
  check_bool "vmware fix" true (kind "vmware" = Platform.Fix_credit);
  check_bool "xen/credit fix" true (kind "xen/credit" = Platform.Fix_credit);
  check_bool "xen/pas power-aware" true (kind "xen/pas" = Platform.Power_aware);
  check_bool "sedf variable" true (kind "xen/sedf" = Platform.Variable_credit);
  check_bool "kvm variable" true (kind "kvm" = Platform.Variable_credit);
  check_bool "vbox variable" true (kind "vbox" = Platform.Variable_credit)

let find_missing () = check_bool "missing" true (Platform.find "qemu-tcg" = None)

let instantiate_fix_credit () =
  let processor = Processor.create Cpu_model.Arch.elite_8300 in
  let inst = Platform.instantiate Platform.hyper_v ~mode:Platform.Ondemand ~processor (domains ()) in
  check_string "credit scheduler" "credit" inst.Platform.scheduler.Hypervisor.Scheduler.name;
  check_bool "has governor" true (inst.Platform.governor <> None);
  check_bool "no pas" true (inst.Platform.pas = None)

let instantiate_variable_credit () =
  let processor = Processor.create Cpu_model.Arch.elite_8300 in
  let inst = Platform.instantiate Platform.kvm ~mode:Platform.Ondemand ~processor (domains ()) in
  check_string "sedf scheduler" "sedf" inst.Platform.scheduler.Hypervisor.Scheduler.name

let instantiate_pas () =
  let processor = Processor.create Cpu_model.Arch.elite_8300 in
  let inst = Platform.instantiate Platform.xen_pas ~mode:Platform.Ondemand ~processor (domains ()) in
  check_string "pas scheduler" "pas" inst.Platform.scheduler.Hypervisor.Scheduler.name;
  check_bool "no external governor" true (inst.Platform.governor = None);
  check_bool "pas instance exposed" true (inst.Platform.pas <> None)

let instantiate_performance_mode () =
  let processor = Processor.create Cpu_model.Arch.elite_8300 in
  let inst =
    Platform.instantiate Platform.xen_pas ~mode:Platform.Performance ~processor (domains ())
  in
  check_string "plain credit in performance mode" "credit"
    inst.Platform.scheduler.Hypervisor.Scheduler.name;
  match inst.Platform.governor with
  | Some g -> check_string "performance governor" "performance" g.Governors.Governor.name
  | None -> Alcotest.fail "expected a governor"

let efficiency_close_to_one () =
  List.iter
    (fun p ->
      check_bool (p.Platform.name ^ " efficiency sane") true
        (p.Platform.efficiency > 0.9 && p.Platform.efficiency < 1.1))
    Platform.catalog

let () =
  Alcotest.run "platforms"
    [
      ( "catalog",
        [
          Alcotest.test_case "shape" `Quick catalog_shape;
          Alcotest.test_case "families" `Quick catalog_families;
          Alcotest.test_case "find missing" `Quick find_missing;
          Alcotest.test_case "efficiency" `Quick efficiency_close_to_one;
        ] );
      ( "instantiate",
        [
          Alcotest.test_case "fix credit" `Quick instantiate_fix_credit;
          Alcotest.test_case "variable credit" `Quick instantiate_variable_credit;
          Alcotest.test_case "pas" `Quick instantiate_pas;
          Alcotest.test_case "performance mode" `Quick instantiate_performance_mode;
        ] );
    ]

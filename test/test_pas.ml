(* Tests for the paper's contribution: the equations of §4.2, the
   in-hypervisor PAS scheduler, and the user-level implementation variants. *)

module Workload = Workloads.Workload
module Domain = Hypervisor.Domain
module Scheduler = Hypervisor.Scheduler
module Host = Hypervisor.Host
module Processor = Cpu_model.Processor
module Frequency = Cpu_model.Frequency
module Calibration = Cpu_model.Calibration
module Equations = Pas.Equations

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let sec = Sim_time.of_sec

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let optiplex = Cpu_model.Arch.optiplex_755
let table = optiplex.Cpu_model.Arch.freq_table

(* ------------------------------------------------------------------ *)
(* Equations *)

let eq_absolute_load () =
  (* The paper's running example: 20% global load at half frequency is a
     10% absolute load. *)
  check_float "paper example" 10.0 (Equations.absolute_load ~global_load:20.0 ~ratio:0.5 ~cf:1.0)

let eq_load_at_roundtrip =
  qtest "absolute_load and load_at are inverse"
    QCheck.(triple (float_range 0.0 100.0) (float_range 0.3 1.0) (float_range 0.7 1.0))
    (fun (load, ratio, cf) ->
      let abs = Equations.absolute_load ~global_load:load ~ratio ~cf in
      Float.abs (Equations.load_at ~absolute_load:abs ~ratio ~cf -. load) < 1e-9)

let eq_compensated_credit () =
  (* §4.2: 20% at ratio 0.5 becomes 40%. *)
  check_float "paper example" 40.0 (Equations.compensated_credit ~initial:20.0 ~ratio:0.5 ~cf:1.0);
  (* Fig. 9: 20% at 1600/2667 MHz becomes ~33%. *)
  check_float_eps 0.05 "fig9 value" 33.3
    (Equations.compensated_credit ~initial:20.0 ~ratio:(1600.0 /. 2667.0) ~cf:1.0)

let eq_compensation_preserves_capacity =
  qtest "compensated credit delivers the initial absolute capacity"
    QCheck.(pair (float_range 1.0 50.0) (float_range 0.3 1.0))
    (fun (credit, ratio) ->
      let cf = 0.95 in
      let compensated = Equations.compensated_credit ~initial:credit ~ratio ~cf in
      (* capacity = credit% x speed; must be invariant. *)
      Float.abs ((compensated *. ratio *. cf) -. credit) < 1e-9)

let eq_times () =
  check_float "eq2" 20.0 (Equations.time_at ~t_max:10.0 ~ratio:0.5 ~cf:1.0);
  check_float "eq3" 5.0 (Equations.time_with_credit ~t_init:10.0 ~c_init:10.0 ~c_new:20.0);
  Alcotest.check_raises "bad credit"
    (Invalid_argument "Equations.time_with_credit: credits must be positive") (fun () ->
      ignore (Equations.time_with_credit ~t_init:1.0 ~c_init:0.0 ~c_new:1.0));
  Alcotest.check_raises "bad speed" (Equations.Invalid_speed { ratio = 0.0; cf = 1.0 })
    (fun () -> ignore (Equations.time_at ~t_max:1.0 ~ratio:0.0 ~cf:1.0));
  (* NaN payloads defeat structural equality, so match by hand. *)
  check_bool "nan speed" true
    (match Equations.compensated_credit ~initial:10.0 ~ratio:Float.nan ~cf:1.0 with
    | (_ : float) -> false
    | exception Equations.Invalid_speed { ratio; cf = _ } -> Float.is_nan ratio)

let eq_compute_new_freq () =
  let cal = Calibration.ideal in
  check_int "idle -> min" 1600 (Equations.compute_new_freq table cal ~absolute_load:0.0);
  check_int "low -> min" 1600 (Equations.compute_new_freq table cal ~absolute_load:30.0);
  check_int "mid (1867/2667 = 70%% capacity)" 1867
    (Equations.compute_new_freq table cal ~absolute_load:65.0);
  check_int "mid-high" 2133 (Equations.compute_new_freq table cal ~absolute_load:75.0);
  check_int "full -> max" 2667 (Equations.compute_new_freq table cal ~absolute_load:99.0);
  check_int "overload -> max" 2667 (Equations.compute_new_freq table cal ~absolute_load:150.0)

let eq_compute_strict_boundary () =
  let cal = Calibration.ideal in
  (* Listing 1.1 uses a strict inequality: a load exactly equal to a level's
     capacity must push to the next level. *)
  let ratio_min = 1600.0 /. 2667.0 in
  check_int "boundary goes up" 1867
    (Equations.compute_new_freq table cal ~absolute_load:(ratio_min *. 100.0))

let eq_can_absorb () =
  let cal = Calibration.ideal in
  check_bool "min absorbs 30" true (Equations.can_absorb table cal 1600 ~absolute_load:30.0);
  check_bool "min rejects 70" false (Equations.can_absorb table cal 1600 ~absolute_load:70.0)

let eq_compute_monotone =
  qtest "chosen frequency is monotone in the load"
    QCheck.(pair (float_range 0.0 100.0) (float_range 0.0 100.0))
    (fun (l1, l2) ->
      let cal = Calibration.ideal in
      let lo = Float.min l1 l2 and hi = Float.max l1 l2 in
      Equations.compute_new_freq table cal ~absolute_load:lo
      <= Equations.compute_new_freq table cal ~absolute_load:hi)

(* ------------------------------------------------------------------ *)
(* PAS scheduler *)

let pas_host domains =
  let sim = Simulator.create () in
  let processor = Processor.create optiplex in
  let pas = Pas.Pas_sched.create ~processor domains in
  let host = Host.create ~sim ~processor ~scheduler:(Pas.Pas_sched.scheduler pas) () in
  (host, processor, pas)

let pas_lowers_frequency_when_idle () =
  let vm = Domain.create ~name:"vm" ~credit_pct:20.0 (Workload.idle ()) in
  let host, processor, pas = pas_host [ vm ] in
  Host.run_for host (sec 2);
  check_int "min frequency" 1600 (Processor.current_freq processor);
  check_bool "evaluations happened" true (Pas.Pas_sched.evaluations pas > 10)

let pas_compensates_credit () =
  (* Thrashing V20 alone: frequency drops to 1600 MHz and the effective
     credit must become 20 / (1600/2667) = 33.3% (cf = 1). *)
  let app = Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:1.0) () in
  let v20 = Domain.create ~name:"V20" ~credit_pct:20.0 (Workloads.Web_app.workload app) in
  let host, processor, pas = pas_host [ v20 ] in
  Host.run_for host (sec 20);
  check_int "frequency low" 1600 (Processor.current_freq processor);
  check_float_eps 0.1 "compensated credit" (20.0 *. 2667.0 /. 1600.0)
    (Pas.Pas_sched.effective_credit pas v20);
  (* The absolute capacity delivered must match the sold credit. *)
  let abs = Host.series_domain_absolute_load host v20 in
  check_float_eps 0.6 "absolute capacity preserved" 20.0
    (Series.mean_between abs (sec 5) (sec 20))

let pas_raises_frequency_under_load () =
  let app = Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:0.9) () in
  let hog = Domain.create ~name:"hog" ~credit_pct:90.0 (Workloads.Web_app.workload app) in
  let host, processor, _ = pas_host [ hog ] in
  Host.run_for host (sec 10);
  check_int "max frequency" 2667 (Processor.current_freq processor)

let pas_never_exceeds_absolute_credit () =
  (* "a VM is never given more computing capacity than its allocated
     credit" — even though the host is otherwise idle. *)
  let app = Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:1.5) () in
  let v20 = Domain.create ~name:"V20" ~credit_pct:20.0 (Workloads.Web_app.workload app) in
  let idle = Domain.create ~name:"V70" ~credit_pct:70.0 (Workload.idle ()) in
  let host, _, _ = pas_host [ v20; idle ] in
  Host.run_for host (sec 20);
  let abs = Host.series_domain_absolute_load host v20 in
  check_bool "capped at the sold capacity" true
    (Series.mean_between abs (sec 5) (sec 20) < 21.0)

let pas_credit_sum_may_exceed_100 () =
  (* §4.2's "important remark": at low frequency the credit sum exceeds
     100% because every domain is rescaled. *)
  let a = Domain.create ~name:"a" ~credit_pct:50.0 (Workload.idle ()) in
  let b = Domain.create ~name:"b" ~credit_pct:50.0 (Workload.idle ()) in
  let host, _, pas = pas_host [ a; b ] in
  Host.run_for host (sec 2);
  let sum = Pas.Pas_sched.effective_credit pas a +. Pas.Pas_sched.effective_credit pas b in
  check_bool "sum above 100" true (sum > 100.0)

let pas_tracks_decisions () =
  let app = Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:0.2) () in
  let vm = Domain.create ~name:"vm" ~credit_pct:20.0 (Workloads.Web_app.workload app) in
  let host, _, pas = pas_host [ vm ] in
  Host.run_for host (sec 5);
  check_bool "some decisions" true (Pas.Pas_sched.frequency_decisions pas >= 1);
  check_bool "absolute load sane" true
    (Pas.Pas_sched.last_absolute_load pas >= 0.0 && Pas.Pas_sched.last_absolute_load pas <= 100.0)

(* ------------------------------------------------------------------ *)
(* User-level variants *)

let credit_manager_compensates () =
  let app = Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:1.0) () in
  let v20 = Domain.create ~name:"V20" ~credit_pct:20.0 (Workloads.Web_app.workload app) in
  let domains = [ v20 ] in
  let sim = Simulator.create () in
  let processor = Processor.create optiplex in
  let scheduler = Sched_credit.create domains in
  let governor = Governors.Stable_ondemand.create processor in
  let host = Host.create ~sim ~processor ~scheduler ~governor () in
  let daemon = Pas.User_level.credit_manager ~sim ~processor ~scheduler domains in
  Host.run_for host (sec 30);
  check_int "governor lowered frequency" 1600 (Processor.current_freq processor);
  check_float_eps 0.1 "daemon compensated credit" (20.0 *. 2667.0 /. 1600.0)
    (scheduler.Scheduler.effective_credit v20);
  check_bool "adjustments counted" true (Pas.User_level.adjustments daemon >= 1);
  check_int "never touches frequency" 0 (Pas.User_level.frequency_requests daemon)

let full_manager_sets_both () =
  let app = Workloads.Web_app.create ~rate_schedule:(Workloads.Phases.constant ~rate:1.0) () in
  let v20 = Domain.create ~name:"V20" ~credit_pct:20.0 (Workloads.Web_app.workload app) in
  let domains = [ v20 ] in
  let sim = Simulator.create () in
  let processor = Processor.create optiplex in
  let scheduler = Sched_credit.create domains in
  let userspace = Governors.Userspace.create processor in
  let governor = Governors.Userspace.governor userspace in
  let host = Host.create ~sim ~processor ~scheduler ~governor () in
  let daemon =
    Pas.User_level.full_manager ~sim ~processor ~scheduler ~userspace
      ~utilization:(Host.utilization_probe host) domains
  in
  Host.run_for host (sec 30);
  check_int "frequency lowered via userspace" 1600 (Processor.current_freq processor);
  check_float_eps 0.1 "credit compensated" (20.0 *. 2667.0 /. 1600.0)
    (scheduler.Scheduler.effective_credit v20);
  check_bool "frequency requests counted" true (Pas.User_level.frequency_requests daemon >= 1)

let daemon_stop () =
  let v20 = Domain.create ~name:"V20" ~credit_pct:20.0 (Workload.idle ()) in
  let domains = [ v20 ] in
  let sim = Simulator.create () in
  let processor = Processor.create optiplex in
  let scheduler = Sched_credit.create domains in
  let host = Host.create ~sim ~processor ~scheduler () in
  let daemon = Pas.User_level.credit_manager ~sim ~processor ~scheduler domains in
  Pas.User_level.stop daemon;
  (* Drop the frequency by hand: a stopped daemon must not compensate. *)
  Processor.set_freq processor ~now:(Host.now host) 1600;
  Host.run_for host (sec 5);
  check_float "credit untouched" 20.0 (scheduler.Scheduler.effective_credit v20)

let () =
  Alcotest.run "pas"
    [
      ( "equations",
        [
          Alcotest.test_case "absolute load" `Quick eq_absolute_load;
          eq_load_at_roundtrip;
          Alcotest.test_case "compensated credit" `Quick eq_compensated_credit;
          eq_compensation_preserves_capacity;
          Alcotest.test_case "times" `Quick eq_times;
          Alcotest.test_case "compute_new_freq" `Quick eq_compute_new_freq;
          Alcotest.test_case "strict boundary" `Quick eq_compute_strict_boundary;
          Alcotest.test_case "can_absorb" `Quick eq_can_absorb;
          eq_compute_monotone;
        ] );
      ( "pas scheduler",
        [
          Alcotest.test_case "lowers frequency when idle" `Quick pas_lowers_frequency_when_idle;
          Alcotest.test_case "compensates credit" `Quick pas_compensates_credit;
          Alcotest.test_case "raises frequency under load" `Quick pas_raises_frequency_under_load;
          Alcotest.test_case "never exceeds absolute credit" `Quick pas_never_exceeds_absolute_credit;
          Alcotest.test_case "credit sum may exceed 100" `Quick pas_credit_sum_may_exceed_100;
          Alcotest.test_case "tracks decisions" `Quick pas_tracks_decisions;
        ] );
      ( "user level",
        [
          Alcotest.test_case "credit manager" `Quick credit_manager_compensates;
          Alcotest.test_case "full manager" `Quick full_manager_sets_both;
          Alcotest.test_case "stop" `Quick daemon_stop;
        ] );
    ]

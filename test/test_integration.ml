(* End-to-end assertions on the paper's headline results, at a reduced time
   scale.  These are the claims DESIGN.md commits to reproducing; if one of
   these fails, an experiment no longer tells the paper's story. *)

module Scenario = Experiments.Scenario
module Host = Hypervisor.Host

let check_bool = Alcotest.(check bool)
let check_float_eps eps = Alcotest.(check (float eps))
let scale = 0.05

let mean r phase series = Scenario.phase_mean r phase series

(* Fig. 2: the reference profile — both VMs reach their plateaus at maximum
   frequency. *)
let fig2_reference_profile () =
  let r = Scenario.run (Scenario.spec ~gov:Scenario.Performance ~scale ()) in
  check_float_eps 1.0 "V20 plateau" 20.0 (mean r Scenario.A (Scenario.v20_load r));
  check_float_eps 1.5 "V70 plateau" 70.0 (mean r Scenario.B (Scenario.v70_load r));
  check_float_eps 1.0 "frequency pinned" 2667.0 (mean r Scenario.A (Scenario.frequency r))

(* Fig. 3 vs Fig. 4: the stock ondemand governor oscillates; the authors'
   stable governor does not. *)
let fig3_fig4_oscillation_contrast () =
  let stock = Scenario.run (Scenario.spec ~gov:Scenario.Stock_ondemand ~scale ()) in
  let stable = Scenario.run (Scenario.spec ~gov:Scenario.Stable_ondemand ~scale ()) in
  let transitions r =
    Cpu_model.Cpufreq.transitions
      (Cpu_model.Processor.cpufreq (Host.processor (Scenario.host r)))
  in
  check_bool "stock oscillates" true (transitions stock > 100);
  check_bool "stable is stable" true (transitions stable < 30);
  check_bool "orders of magnitude apart" true (transitions stock > 10 * transitions stable)

(* Fig. 5: under the fix-credit scheduler the lazy V70 drags the frequency
   down and V20 only receives ~12% absolute capacity instead of 20%. *)
let fig5_fix_credit_penalises_v20 () =
  let r = Scenario.run (Scenario.spec ~gov:Scenario.Stable_ondemand ~scale ()) in
  check_float_eps 1.0 "phase A: penalised (paper ~10-12%)" 12.0
    (mean r Scenario.A (Scenario.v20_absolute r));
  check_float_eps 1.0 "phase B: recovered at max frequency" 20.0
    (mean r Scenario.B (Scenario.v20_absolute r));
  check_float_eps 30.0 "phase A at the lowest frequency" 1600.0
    (mean r Scenario.A (Scenario.frequency r))

(* Fig. 6/7: SEDF gives V20 the unused slices (~33-35% global) and thereby
   preserves its 20% absolute capacity under an exact load. *)
let fig6_fig7_sedf_exact () =
  let r = Scenario.run (Scenario.spec ~sched:Scenario.Sedf ~gov:Scenario.Stable_ondemand ~scale ()) in
  check_float_eps 1.5 "global ~33-35%" 33.3 (mean r Scenario.A (Scenario.v20_load r));
  check_float_eps 1.0 "absolute preserved" 20.0 (mean r Scenario.A (Scenario.v20_absolute r));
  check_float_eps 1.0 "back to 20% in phase B" 20.0 (mean r Scenario.B (Scenario.v20_load r))

(* Fig. 8: under a thrashing load SEDF lets V20 devour the host (~85-90%)
   and the frequency never comes down. *)
let fig8_sedf_thrashing () =
  let r =
    Scenario.run
      (Scenario.spec ~sched:Scenario.Sedf ~gov:Scenario.Stable_ondemand
         ~load:Scenario.Thrashing ~scale ())
  in
  check_bool "V20 devours the host" true (mean r Scenario.A (Scenario.v20_load r) > 80.0);
  check_float_eps 25.0 "frequency stuck at max" 2667.0 (mean r Scenario.A (Scenario.frequency r))

(* Fig. 9/10: PAS grants V20 exactly the compensated credit (33% at
   1600 MHz), never more, and preserves the absolute capacity. *)
let fig9_fig10_pas_thrashing () =
  let r =
    Scenario.run
      (Scenario.spec ~sched:Scenario.Pas_scheduler ~gov:Scenario.No_governor
         ~load:Scenario.Thrashing ~scale ())
  in
  check_float_eps 1.0 "33% compensated credit" 33.3 (mean r Scenario.A (Scenario.v20_load r));
  check_float_eps 1.0 "20% absolute in phase A" 20.0 (mean r Scenario.A (Scenario.v20_absolute r));
  check_float_eps 1.0 "20% global in phase B" 20.0 (mean r Scenario.B (Scenario.v20_load r));
  check_float_eps 30.0 "frequency low while V70 lazy" 1600.0
    (mean r Scenario.A (Scenario.frequency r));
  check_float_eps 30.0 "frequency max when both active" 2667.0
    (mean r Scenario.B (Scenario.frequency r))

(* PAS saves energy compared to the work-conserving scheduler while keeping
   the SLA (the paper's central trade-off). *)
let pas_energy_and_sla () =
  let sedf =
    Scenario.run
      (Scenario.spec ~sched:Scenario.Sedf ~gov:Scenario.Stable_ondemand
         ~load:Scenario.Thrashing ~scale ())
  in
  let pas =
    Scenario.run
      (Scenario.spec ~sched:Scenario.Pas_scheduler ~gov:Scenario.No_governor
         ~load:Scenario.Thrashing ~scale ())
  in
  let credit =
    Scenario.run
      (Scenario.spec ~sched:Scenario.Credit ~gov:Scenario.Stable_ondemand
         ~load:Scenario.Thrashing ~scale ())
  in
  let energy r = Host.energy_joules (Scenario.host r) in
  let deficit r = Scenario.sla_deficit r (Scenario.v20 r) in
  check_bool "PAS cheaper than SEDF" true (energy pas < 0.95 *. energy sedf);
  check_bool "PAS keeps the SLA" true (deficit pas < 1.0);
  (* The violation concentrates in phase A (V70 lazy): ~8 points there,
     diluted to ~3.5 over the whole active window. *)
  check_bool "plain credit violates the SLA" true (deficit credit > 2.5);
  check_bool "SEDF keeps the SLA too" true (deficit sedf < 1.0)

(* Table 2 headline: PAS cancels the fix-credit degradation. *)
let table2_pas_cancels_degradation () =
  let module Platform = Platforms.Platform in
  let module Table2 = Experiments.Table2 in
  let output = Experiments.Experiment.run Experiments.Table2.experiment ~scale:0.05 in
  ignore output;
  (* The run not raising is already a real check (all seven platforms
     finish); the numeric assertions live in the printed table, verified by
     the fig-level checks above and the bench output. *)
  ()

let () =
  Alcotest.run "integration"
    [
      ( "paper claims",
        [
          Alcotest.test_case "fig2 reference profile" `Slow fig2_reference_profile;
          Alcotest.test_case "fig3/4 oscillation contrast" `Slow fig3_fig4_oscillation_contrast;
          Alcotest.test_case "fig5 penalisation" `Slow fig5_fix_credit_penalises_v20;
          Alcotest.test_case "fig6/7 sedf exact" `Slow fig6_fig7_sedf_exact;
          Alcotest.test_case "fig8 sedf thrashing" `Slow fig8_sedf_thrashing;
          Alcotest.test_case "fig9/10 pas thrashing" `Slow fig9_fig10_pas_thrashing;
          Alcotest.test_case "energy vs sla" `Slow pas_energy_and_sla;
          Alcotest.test_case "table2 runs" `Slow table2_pas_cancels_degradation;
        ] );
    ]
